// Query executor: binds FROM patterns against the stored document,
// applies WHERE predicates, and evaluates the projection — either the
// paper's meet aggregation (§3) or the regular-path-expression baseline
// with ancestor implication (§1).

#ifndef MEETXML_QUERY_EXECUTOR_H_
#define MEETXML_QUERY_EXECUTOR_H_

#include <string>
#include <vector>

#include "core/idref.h"
#include "core/meet_general.h"
#include "model/document.h"
#include "query/ast.h"
#include "text/search.h"
#include "text/thesaurus.h"
#include "util/result.h"

namespace meetxml {
namespace query {

/// \brief Execution limits.
struct ExecuteOptions {
  /// Hard cap on materialized result rows (safety valve; LIMIT is the
  /// user-facing knob).
  size_t max_rows = 100000;
};

/// \brief A query result: a small relational table, plus structured
/// access to meet results for programmatic callers.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;

  /// Filled for MEET projections.
  std::vector<core::GeneralMeet> meets;
  core::MeetGeneralStats meet_stats;

  /// For ANCESTORS projections: the exact total number of answer rows
  /// the baseline semantics implies, even when `rows` was truncated by
  /// LIMIT/max_rows. This is the cardinality Figure/Table comparisons
  /// use ("in larger databases the computation might cause a
  /// combinatorial explosion of the result size", §1).
  uint64_t total_ancestor_rows = 0;

  /// True when rows were truncated by LIMIT or max_rows.
  bool truncated = false;

  /// \brief Renders an aligned ASCII table.
  std::string ToText() const;
};

/// \brief Executes queries against one stored document.
///
/// Construction builds the full-text indexes once; Execute() can then be
/// called any number of times. The document must outlive the executor.
class Executor {
 public:
  static util::Result<Executor> Build(const model::StoredDocument& doc);

  /// \brief Executes a parsed query.
  util::Result<QueryResult> Execute(const Query& query,
                                    const ExecuteOptions& options = {}) const;

  /// \brief Parses and executes query text.
  util::Result<QueryResult> ExecuteText(
      std::string_view text, const ExecuteOptions& options = {}) const;

  /// \brief Explains a query without running its projection: per
  /// binding the matched schema paths and their cardinalities before
  /// and after predicate filtering, the resolved restriction clauses,
  /// and the projection plan.
  util::Result<std::string> Explain(const Query& query) const;
  util::Result<std::string> ExplainText(std::string_view text) const;

  const model::StoredDocument& doc() const { return *doc_; }
  const core::IdrefGraph& idref_graph() const { return idrefs_; }

  /// \brief Installs the thesaurus backing SYNONYM predicates (paper
  /// §4's search broadening). Without one, SYNONYM behaves like
  /// ICONTAINS of the literal alone.
  void SetThesaurus(text::Thesaurus thesaurus) {
    thesaurus_ = std::move(thesaurus);
  }
  const text::Thesaurus& thesaurus() const { return thesaurus_; }

 private:
  Executor(const model::StoredDocument* doc, text::FullTextSearch search,
           core::IdrefGraph idrefs)
      : doc_(doc),
        search_(std::move(search)),
        idrefs_(std::move(idrefs)) {}

  /// Evaluates one binding: pattern match + predicate filtering.
  util::Result<std::vector<core::AssocSet>> EvaluateBinding(
      const Query& query, const Binding& binding) const;

  const model::StoredDocument* doc_;
  text::FullTextSearch search_;
  core::IdrefGraph idrefs_;
  text::Thesaurus thesaurus_;
};

}  // namespace query
}  // namespace meetxml

#endif  // MEETXML_QUERY_EXECUTOR_H_
