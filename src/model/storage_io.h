// Binary persistence of a StoredDocument.
//
// The paper's case study bulk-loads DBLP once and queries it
// interactively ever after; a production deployment needs the loaded
// form to survive restarts without re-parsing hundreds of megabytes of
// XML. This module serializes the Monet transform — path summary,
// per-OID columns and per-path string relations — into a compact,
// versioned, checksummed binary image. Loading an image is a straight
// column read: no XML parsing, no re-interning. Since MXM2 an image is
// a sequence of independently checksummed sections, so derived
// structures (e.g. the full-text indexes, see text/index_io.h) persist
// alongside the document and reload without a rebuild.
//
// Versioning policy
// -----------------
//  * The 4-byte magic carries the major format version ("MXM1",
//    "MXM2", ...). A major revision may change the container layout
//    arbitrarily; readers accept every major they know and reject
//    unknown magics. Writers always emit the newest major unless asked
//    for an older one via SaveOptions::format_version (supported for
//    fleet rollbacks; v1 cannot carry extra sections).
//  * The u32 version field after the magic is the minor revision of
//    that major. Minor revisions are backward compatible: a reader for
//    (major, minor) loads every image with the same major and
//    minor' <= minor. Current minors: MXM1 -> 1, MXM2 -> 2.
//  * Within MXM2, compatibility evolves by adding sections: a loader
//    skips section ids it does not recognize (their bytes are surfaced
//    through LoadedImage::extra_sections), so old readers open new
//    images as long as the document section is intact. The document
//    section is mandatory.
//  * Every section is length-framed and FNV-1a checksummed
//    independently; loaders verify bounds and checksums before
//    touching a payload, and semantic validation (path/OID ranges,
//    parent ordering) runs on every load. Corrupted or truncated
//    images are rejected, never partially applied
//    (tests/storage_fuzz_test.cc pins this).
//
// MXM1 layout (little-endian):
//   magic "MXM1" | u32 version | u64 payload_size | u64 fnv1a_checksum
//   payload: the document payload described below
// MXM2 layout:
//   magic "MXM2" | u32 version | u32 section_count
//   section directory: per section u32 id | u64 size | u64 fnv1a
//   section payloads, concatenated in directory order
// Document payload (section kDocumentSectionId in MXM2):
//   path summary: u32 count, then per path: u32 parent, u8 kind,
//                 string label
//   nodes: u32 count, then parent[], path[], rank[] columns
//   strings: u32 count, then (u32 path, u32 owner, string value)
//            rows in global append (document) order
//   strings are u32 length + bytes.

#ifndef MEETXML_MODEL_STORAGE_IO_H_
#define MEETXML_MODEL_STORAGE_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "model/document.h"
#include "util/result.h"

namespace meetxml {
namespace model {

/// \brief Builds a section id from its four-character tag.
constexpr uint32_t MakeSectionId(char a, char b, char c, char d) {
  return (static_cast<uint32_t>(static_cast<unsigned char>(a)) << 24) |
         (static_cast<uint32_t>(static_cast<unsigned char>(b)) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(c)) << 8) |
         static_cast<uint32_t>(static_cast<unsigned char>(d));
}

/// The mandatory document section of an MXM2 image.
inline constexpr uint32_t kDocumentSectionId = MakeSectionId('D', 'O', 'C', '0');
/// Persisted full-text indexes (payload codec: text/index_io.h).
inline constexpr uint32_t kTextIndexSectionId = MakeSectionId('T', 'I', 'D', 'X');

/// \brief One named, independently checksummed byte range of an image.
struct ImageSection {
  uint32_t id = 0;
  std::string bytes;
};

/// \brief Serialization knobs.
struct SaveOptions {
  /// Container major to emit: 2 (current) or 1 (legacy MXM1; supported
  /// for rollbacks, cannot carry extra sections).
  uint32_t format_version = 2;
  /// Additional sections appended after the document section (v2 only).
  std::vector<ImageSection> extra_sections;
};

/// \brief A loaded image: the document plus any sections the document
/// loader itself does not interpret (absent in v1 images).
struct LoadedImage {
  StoredDocument doc;
  uint32_t format_version = 0;
  std::vector<ImageSection> extra_sections;
};

/// \brief Serializes a finalized document to a binary image.
util::Result<std::string> SaveToBytes(const StoredDocument& doc,
                                      const SaveOptions& options = {});

/// \brief Restores a document from a binary image, accepting every
/// known major version (MXM1 and MXM2); extra sections are ignored.
/// The result is finalized and ready for queries. Corrupted or
/// truncated images are rejected (version, bounds and checksums are
/// verified).
util::Result<StoredDocument> LoadFromBytes(std::string_view bytes);

/// \brief Like LoadFromBytes, but also surfaces the sections the
/// document loader did not consume — e.g. the persisted full-text
/// indexes — for higher layers to interpret.
util::Result<LoadedImage> LoadImageFromBytes(std::string_view bytes);

/// \brief Saves to a file.
util::Status SaveToFile(const StoredDocument& doc, const std::string& path,
                        const SaveOptions& options = {});

/// \brief Loads from a file.
util::Result<StoredDocument> LoadFromFile(const std::string& path);

/// \brief Loads from a file, keeping extra sections.
util::Result<LoadedImage> LoadImageFromFile(const std::string& path);

}  // namespace model
}  // namespace meetxml

#endif  // MEETXML_MODEL_STORAGE_IO_H_
