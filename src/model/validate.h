// Invariant validation for StoredDocument — a deep self-check over the
// Monet transform. Run after loading untrusted storage images, in tests,
// and in debugging sessions; it verifies every structural property the
// meet algorithms rely on.

#ifndef MEETXML_MODEL_VALIDATE_H_
#define MEETXML_MODEL_VALIDATE_H_

#include "model/document.h"
#include "util/status.h"

namespace meetxml {
namespace model {

/// \brief Checks every invariant of a finalized document:
///  * node 0 is the root, every other node's parent has a smaller OID
///    (DFS order),
///  * each node's path's parent equals its parent's path,
///  * depth(node) == depth(path(node)) for all nodes,
///  * the children CSR inverts the parent column and respects rank
///    order,
///  * every edge relation holds exactly the nodes of its path, and the
///    union of edge relations covers every node exactly once,
///  * string relations reference live owners of the right path (cdata
///    strings owned by cdata nodes of that path; attribute strings
///    owned by elements of the parent path); every cdata node has
///    exactly one string,
///  * the path summary is acyclic with parents interned before
///    children and correct depths.
///
/// Returns the first violation found, or OK.
util::Status ValidateDocument(const StoredDocument& doc);

/// \brief The deep O(rows) checks over the raw storage columns that
/// the adoption calls skip under ColumnChecks::kFramingOnly: string
/// owners in range, end offsets monotonic and blob-consistent, and
/// the global append-sequence columns forming one permutation of
/// [0, string_count). Safe on any document whose columns were adopted
/// (framing always holds); does not touch derived structures.
util::Status ValidateStorageColumns(const StoredDocument& doc);

/// \brief The deep checks over derived structures installed by
/// AdoptDerivedColumns: the children CSR frames correctly and is
/// exactly the counting-sort inversion of the parent column, every
/// edge relation holds exactly its path's nodes once with
/// head == parent(tail), groups appear in first-appearance (ascending
/// first-OID) order with strictly increasing tails, and each string
/// relation's sortedness flag matches its owner column exactly — the
/// byte-determinism conditions that make re-serializing an adopted
/// image reproduce it bit-for-bit. Reads the raw CSR spans with its
/// own bounds checks, so it is safe on crafted images where
/// children() would not be; run it before ValidateDocument.
util::Status ValidateDerivedStructures(const StoredDocument& doc);

}  // namespace model
}  // namespace meetxml

#endif  // MEETXML_MODEL_VALIDATE_H_
