#include "core/meet_general.h"

#include <algorithm>
#include <unordered_map>

namespace meetxml {
namespace core {

using util::Result;
using util::Status;

namespace {

struct Witness {
  Assoc assoc;
  size_t source;
};

// A live input item: its current roll-up position plus the witnesses it
// carries (more than one only after duplicate-association merging).
struct Item {
  Oid cur;
  std::vector<uint32_t> witness_ids;
};

Status ValidateInput(const StoredDocument& doc, const AssocSet& set,
                     size_t index) {
  if (set.path >= doc.paths().size()) {
    return Status::NotFound("meet input set ", index, ": unknown path id ",
                            set.path);
  }
  bool is_attr =
      doc.paths().kind(set.path) == model::StepKind::kAttribute;
  PathId node_path = is_attr ? doc.paths().parent(set.path) : set.path;
  for (Oid node : set.nodes) {
    if (node >= doc.node_count()) {
      return Status::NotFound("meet input set ", index,
                              ": no node with OID ", node);
    }
    if (doc.path(node) != node_path) {
      return Status::InvalidArgument(
          "meet input set ", index, ": node OID ", node,
          " does not match the set's path (sets must be uniformly typed)");
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<GeneralMeet>> MeetGeneral(
    const StoredDocument& doc, const std::vector<AssocSet>& inputs,
    const MeetOptions& options, MeetGeneralStats* stats) {
  if (!doc.finalized()) {
    return Status::InvalidArgument("document is not finalized");
  }
  MeetGeneralStats local_stats;
  MeetGeneralStats* st = stats != nullptr ? stats : &local_stats;
  *st = MeetGeneralStats{};

  const model::PathSummary& paths = doc.paths();

  // Seed: one item per distinct association; duplicates across (or
  // within) sets merge their witnesses into one item.
  std::vector<Witness> witnesses;
  std::vector<std::vector<Item>> buckets(paths.size());
  {
    // (path, node) -> (bucket path, item index) for duplicate merging.
    std::unordered_map<uint64_t, std::pair<PathId, uint32_t>> seen;
    for (size_t i = 0; i < inputs.size(); ++i) {
      MEETXML_RETURN_NOT_OK(ValidateInput(doc, inputs[i], i));
      const AssocSet& set = inputs[i];
      for (Oid node : set.nodes) {
        Assoc assoc{set.path, node};
        uint32_t wid = static_cast<uint32_t>(witnesses.size());
        witnesses.push_back(Witness{assoc, i});
        uint64_t key = (static_cast<uint64_t>(set.path) << 32) | node;
        auto it = seen.find(key);
        if (it != seen.end()) {
          buckets[it->second.first][it->second.second]
              .witness_ids.push_back(wid);
          continue;
        }
        Item item;
        item.cur = node;
        item.witness_ids.push_back(wid);
        seen.emplace(key,
                     std::make_pair(set.path, static_cast<uint32_t>(
                                                  buckets[set.path].size())));
        buckets[set.path].push_back(std::move(item));
        ++st->items_seeded;
      }
    }
  }

  std::vector<GeneralMeet> results;

  // Roll up the schema tree children-before-parents. Path ids are
  // interned parents-first, so descending id order visits every path
  // after all of its children.
  for (size_t p = paths.size(); p-- > 0;) {
    PathId pid = static_cast<PathId>(p);
    std::vector<Item> bucket = std::move(buckets[pid]);
    if (bucket.empty()) continue;
    ++st->paths_touched;

    const bool is_attr = paths.kind(pid) == model::StepKind::kAttribute;
    const uint32_t node_depth =
        is_attr ? paths.depth(pid) - 1 : paths.depth(pid);

    // Group items by current node.
    std::unordered_map<Oid, std::vector<size_t>> by_node;
    by_node.reserve(bucket.size());
    for (size_t i = 0; i < bucket.size(); ++i) {
      by_node[bucket[i].cur].push_back(i);
    }

    for (auto& [node, item_indices] : by_node) {
      // A node is a meet when >= 2 items converge on it — or when a
      // single seeded item already carries >= 2 witnesses (the same
      // association matched several search terms, e.g. "Bob" and
      // "Byte" hitting one cdata: the meet is that node itself).
      bool merged_duplicate =
          item_indices.size() == 1 &&
          bucket[item_indices[0]].witness_ids.size() >= 2;
      if (item_indices.size() >= 2 || merged_duplicate) {
        // `node` is the lowest common ancestor of at least two input
        // items: a minimal meet. Consume the items.
        GeneralMeet meet;
        meet.meet = node;
        meet.meet_path = doc.path(node);
        int largest = 0;
        int second = 0;
        for (size_t idx : item_indices) {
          for (uint32_t wid : bucket[idx].witness_ids) {
            const Witness& w = witnesses[wid];
            // A witness seeded in this very bucket never traversed an
            // edge (distance 0); a lifted witness is as many edges away
            // as its association depth exceeds the meet node's depth.
            int dist = w.assoc.path == pid
                           ? 0
                           : static_cast<int>(AssocDepth(doc, w.assoc)) -
                                 static_cast<int>(node_depth);
            meet.witnesses.push_back(MeetWitness{w.assoc, w.source, dist});
            if (dist >= largest) {
              second = largest;
              largest = dist;
            } else if (dist > second) {
              second = dist;
            }
          }
        }
        meet.witness_distance = largest + second;
        bool report = options.PathAllowed(meet.meet_path) &&
                      meet.witness_distance <= options.max_distance;
        if (report) {
          std::sort(meet.witnesses.begin(), meet.witnesses.end(),
                    [](const MeetWitness& a, const MeetWitness& b) {
                      if (a.assoc.node != b.assoc.node) {
                        return a.assoc.node < b.assoc.node;
                      }
                      return a.assoc.path < b.assoc.path;
                    });
          results.push_back(std::move(meet));
        }
        continue;
      }

      // Lone item: climb one edge, unless already at a root-level
      // element path (then it produces no meet and is dropped).
      size_t idx = item_indices.front();
      PathId parent_path = paths.parent(pid);
      if (parent_path == bat::kInvalidPathId) continue;
      Item lifted = std::move(bucket[idx]);
      if (!is_attr) lifted.cur = doc.parent(lifted.cur);
      buckets[parent_path].push_back(std::move(lifted));
      ++st->lifts;
    }
  }

  // Rank by the paper's heuristic: fewest joins (tightest witness span)
  // first; meet OID breaks ties deterministically.
  std::sort(results.begin(), results.end(),
            [](const GeneralMeet& a, const GeneralMeet& b) {
              if (a.witness_distance != b.witness_distance) {
                return a.witness_distance < b.witness_distance;
              }
              return a.meet < b.meet;
            });
  if (options.max_results > 0 && results.size() > options.max_results) {
    results.resize(options.max_results);
  }
  return results;
}

Result<std::vector<GeneralMeet>> MeetGeneralNodes(
    const StoredDocument& doc, const std::vector<Oid>& nodes,
    const MeetOptions& options) {
  std::unordered_map<PathId, AssocSet> grouped;
  for (Oid node : nodes) {
    if (node >= doc.node_count()) {
      return Status::NotFound("no node with OID ", node);
    }
    PathId path = doc.path(node);
    AssocSet& set = grouped[path];
    set.path = path;
    set.nodes.push_back(node);
  }
  std::vector<AssocSet> inputs;
  inputs.reserve(grouped.size());
  for (auto& [path, set] : grouped) inputs.push_back(std::move(set));
  // Deterministic input order (the algorithm is order-invariant, but
  // keep the witness `source` indices stable).
  std::sort(inputs.begin(), inputs.end(),
            [](const AssocSet& a, const AssocSet& b) {
              return a.path < b.path;
            });
  return MeetGeneral(doc, inputs, options);
}

}  // namespace core
}  // namespace meetxml
