#include "xml/escape.h"

#include <cctype>

namespace meetxml {
namespace xml {

using util::Result;
using util::Status;

std::string EscapeText(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out.append("&amp;");
        break;
      case '<':
        out.append("&lt;");
        break;
      case '>':
        out.append("&gt;");
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string EscapeAttribute(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out.append("&amp;");
        break;
      case '<':
        out.append("&lt;");
        break;
      case '>':
        out.append("&gt;");
        break;
      case '"':
        out.append("&quot;");
        break;
      case '\n':
        out.append("&#10;");
        break;
      case '\t':
        out.append("&#9;");
        break;
      case '\r':
        out.append("&#13;");
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

bool AppendUtf8(uint32_t cp, std::string* out) {
  if (cp > 0x10FFFF || (cp >= 0xD800 && cp <= 0xDFFF)) return false;
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
  return true;
}

namespace {
// Decodes one entity starting at s[pos] == '&'. On success appends the
// decoded bytes to out and returns the index one past the ';'.
Result<size_t> DecodeOneEntity(std::string_view s, size_t pos,
                               std::string* out) {
  size_t semi = s.find(';', pos + 1);
  if (semi == std::string_view::npos) {
    return Status::InvalidArgument("unterminated entity reference");
  }
  std::string_view body = s.substr(pos + 1, semi - pos - 1);
  if (body.empty()) {
    return Status::InvalidArgument("empty entity reference '&;'");
  }
  if (body[0] == '#') {
    uint32_t cp = 0;
    bool any = false;
    if (body.size() > 1 && (body[1] == 'x' || body[1] == 'X')) {
      for (size_t i = 2; i < body.size(); ++i) {
        char c = body[i];
        uint32_t digit;
        if (c >= '0' && c <= '9') {
          digit = static_cast<uint32_t>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
          digit = static_cast<uint32_t>(c - 'a' + 10);
        } else if (c >= 'A' && c <= 'F') {
          digit = static_cast<uint32_t>(c - 'A' + 10);
        } else {
          return Status::InvalidArgument(
              "bad hex digit in character reference: &", body, ";");
        }
        cp = cp * 16 + digit;
        if (cp > 0x10FFFF) {
          return Status::InvalidArgument("character reference out of range");
        }
        any = true;
      }
    } else {
      for (size_t i = 1; i < body.size(); ++i) {
        char c = body[i];
        if (c < '0' || c > '9') {
          return Status::InvalidArgument(
              "bad digit in character reference: &", body, ";");
        }
        cp = cp * 10 + static_cast<uint32_t>(c - '0');
        if (cp > 0x10FFFF) {
          return Status::InvalidArgument("character reference out of range");
        }
        any = true;
      }
    }
    if (!any) {
      return Status::InvalidArgument("empty character reference");
    }
    if (!AppendUtf8(cp, out)) {
      return Status::InvalidArgument("invalid code point in reference");
    }
  } else if (body == "lt") {
    out->push_back('<');
  } else if (body == "gt") {
    out->push_back('>');
  } else if (body == "amp") {
    out->push_back('&');
  } else if (body == "apos") {
    out->push_back('\'');
  } else if (body == "quot") {
    out->push_back('"');
  } else {
    return Status::InvalidArgument("unknown entity: &", body, ";");
  }
  return semi + 1;
}
}  // namespace

Result<std::string> DecodeEntities(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  size_t i = 0;
  while (i < s.size()) {
    if (s[i] == '&') {
      MEETXML_ASSIGN_OR_RETURN(i, DecodeOneEntity(s, i, &out));
    } else {
      out.push_back(s[i]);
      ++i;
    }
  }
  return out;
}

namespace {
bool IsNameStartByte(unsigned char c) {
  return std::isalpha(c) != 0 || c == '_' || c == ':' || c >= 0x80;
}
bool IsNameByte(unsigned char c) {
  return IsNameStartByte(c) || std::isdigit(c) != 0 || c == '-' || c == '.';
}
}  // namespace

bool IsValidName(std::string_view name) {
  if (name.empty()) return false;
  if (!IsNameStartByte(static_cast<unsigned char>(name[0]))) return false;
  for (size_t i = 1; i < name.size(); ++i) {
    if (!IsNameByte(static_cast<unsigned char>(name[i]))) return false;
  }
  return true;
}

}  // namespace xml
}  // namespace meetxml
