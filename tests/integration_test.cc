// End-to-end integration tests: whole pipelines across modules —
// generate -> serialize -> parse -> shred -> persist -> reload ->
// index -> search -> meet -> rank -> reassemble, plus the query
// language over generated corpora.

#include <gtest/gtest.h>

#include "core/idref.h"
#include "core/meet_general.h"
#include "core/ranking.h"
#include "core/restrictions.h"
#include "data/dblp_gen.h"
#include "data/multimedia_gen.h"
#include "model/reassembly.h"
#include "model/shredder.h"
#include "model/stats.h"
#include "model/storage_io.h"
#include "query/executor.h"
#include "tests/test_util.h"
#include "text/search.h"
#include "text/thesaurus.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace meetxml {
namespace {

using meetxml::testing::MustShred;

class DblpPipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::DblpOptions options;
    options.end_year = 1992;
    options.icde_papers_per_year = 15;
    options.other_papers_per_year = 45;
    options.journal_articles_per_year = 15;
    auto generated = data::GenerateDblp(options);
    ASSERT_TRUE(generated.ok());
    // Serialize + reparse: the pipeline a real deployment runs.
    xml::SerializeOptions serialize_options;
    serialize_options.indent = 1;
    std::string xml_text = xml::Serialize(*generated, serialize_options);
    auto doc = model::ShredXmlText(xml_text);
    ASSERT_TRUE(doc.ok()) << doc.status();
    doc_ = new model::StoredDocument(std::move(*doc));
  }
  static void TearDownTestSuite() {
    delete doc_;
    doc_ = nullptr;
  }

  static model::StoredDocument* doc_;
};

model::StoredDocument* DblpPipeline::doc_ = nullptr;

TEST_F(DblpPipeline, SerializeReparseShredIsStable) {
  // Shredding the reparse of the reassembled root reproduces the same
  // node/string/path counts.
  auto rebuilt = model::ReassembleToXml(*doc_, doc_->root(), 0);
  ASSERT_TRUE(rebuilt.ok());
  auto again = model::ShredXmlText(*rebuilt);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->node_count(), doc_->node_count());
  EXPECT_EQ(again->string_count(), doc_->string_count());
  EXPECT_EQ(again->paths().size(), doc_->paths().size());
}

TEST_F(DblpPipeline, PersistReloadQueryAgrees) {
  auto bytes = model::SaveToBytes(*doc_);
  ASSERT_TRUE(bytes.ok());
  auto reloaded = model::LoadFromBytes(*bytes);
  ASSERT_TRUE(reloaded.ok());

  auto run_query = [](const model::StoredDocument& doc) {
    auto executor = query::Executor::Build(doc);
    EXPECT_TRUE(executor.ok());
    auto result = executor->ExecuteText(
        "select meet(a, b) from dblp//cdata a, dblp//cdata b "
        "where a contains 'ICDE' and b contains '1990' exclude dblp");
    EXPECT_TRUE(result.ok()) << result.status();
    return result.ok() ? result->meets.size() : size_t{0};
  };
  size_t original_count = run_query(*doc_);
  size_t reloaded_count = run_query(*reloaded);
  EXPECT_GT(original_count, 0u);
  EXPECT_EQ(original_count, reloaded_count);
}

TEST_F(DblpPipeline, CaseStudyResultsAreIcdePublications) {
  auto search = text::FullTextSearch::Build(*doc_);
  ASSERT_TRUE(search.ok());
  auto matches =
      search->SearchAll({"ICDE", "1991"}, text::MatchMode::kContains);
  ASSERT_TRUE(matches.ok());
  std::vector<size_t> source_terms;
  auto inputs =
      text::FullTextSearch::ToMeetInput(*matches, &source_terms);
  auto meets = core::MeetGeneral(*doc_, inputs,
                                 core::ExcludeRootOptions(*doc_));
  ASSERT_TRUE(meets.ok());
  ASSERT_GT(meets->size(), 0u);

  // Rank and require both *terms* covered: every surviving result must
  // be an ICDE entry (inproceedings or proceedings or a cdata inside
  // one).
  core::RankingOptions ranking_options;
  ranking_options.source_groups = &source_terms;
  auto ranked = core::FilterBySourceCoverage(
      core::RankMeets(*doc_, std::move(*meets), ranking_options), 2);
  ASSERT_GT(ranked.size(), 0u);
  size_t icde_entries = 0;
  for (const core::RankedMeet& entry : ranked) {
    bat::Oid node = entry.meet.meet;
    // Climb to the enclosing publication element.
    while (node != doc_->root() && doc_->tag(node) != "inproceedings" &&
           doc_->tag(node) != "proceedings") {
      node = doc_->parent(node);
    }
    if (node == doc_->root()) continue;
    auto xml_text = model::ReassembleToXml(*doc_, node, 0);
    ASSERT_TRUE(xml_text.ok());
    if (xml_text->find("ICDE") != std::string::npos &&
        xml_text->find("1991") != std::string::npos) {
      ++icde_entries;
    }
  }
  // The vast majority (paper: "just two false positives").
  EXPECT_GE(icde_entries * 10, ranked.size() * 9);
}

TEST_F(DblpPipeline, StatsReflectTheCorpus) {
  auto stats = model::ComputeStats(*doc_);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->node_count, doc_->node_count());
  EXPECT_GT(stats->max_fanout, 100u);  // flat dblp root
  EXPECT_EQ(stats->max_depth, 4u);     // dblp/pub/field/cdata
}

TEST_F(DblpPipeline, ThesaurusBroadensVenueSearch) {
  auto search = text::FullTextSearch::Build(*doc_);
  ASSERT_TRUE(search.ok());
  text::Thesaurus thesaurus;
  thesaurus.AddRing({"datenbanktagung", "ICDE"});

  text::ExpandedSearchOptions options;
  options.mode = text::MatchMode::kContains;
  auto direct = search->Search("datenbanktagung",
                               text::MatchMode::kContains);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct->total(), 0u);
  auto expanded =
      text::SearchExpanded(*search, thesaurus, "datenbanktagung", options);
  ASSERT_TRUE(expanded.ok());
  EXPECT_GT(expanded->total(), 0u);
}

// ---- Multimedia pipeline ---------------------------------------------------

TEST(MultimediaPipeline, PlantedDistancesSurviveTheFullPipeline) {
  data::MultimediaOptions options;
  options.items = 100;
  options.max_planted_distance = 12;
  auto corpus = data::GenerateMultimedia(options);
  ASSERT_TRUE(corpus.ok());

  // Serialize + reparse, then verify every planted pair's distance via
  // full-text + meet.
  xml::SerializeOptions serialize_options;
  serialize_options.indent = 1;
  std::string xml_text = xml::Serialize(corpus->doc, serialize_options);
  auto doc = model::ShredXmlText(xml_text);
  ASSERT_TRUE(doc.ok());
  auto search = text::FullTextSearch::Build(*doc);
  ASSERT_TRUE(search.ok());

  for (const data::PlantedPair& pair : corpus->pairs) {
    auto matches = search->SearchAll({pair.term_a, pair.term_b},
                                     text::MatchMode::kContains);
    ASSERT_TRUE(matches.ok());
    auto meets = core::MeetGeneral(
        *doc, text::FullTextSearch::ToMeetInput(*matches));
    ASSERT_TRUE(meets.ok());
    ASSERT_EQ(meets->size(), 1u) << "pair at distance " << pair.distance;
    EXPECT_EQ((*meets)[0].witness_distance, pair.distance);
  }
}

// ---- Citation graph over the query surface ---------------------------------

TEST(IdrefPipeline, CitationsConnectAcrossPublications) {
  // Build a mini corpus with citations and resolve a cross-publication
  // proximity meet that the tree meet would place at the root.
  std::string xml_text = R"(
    <bib>
      <section><paper id="p1"><title>meet operator</title>
        <cites ref="p2"/></paper></section>
      <section><paper id="p2"><title>path summaries</title></paper>
      </section>
      <section><paper id="p3"><title>unrelated work</title></paper>
      </section>
    </bib>)";
  auto doc = MustShred(xml_text);
  auto graph = core::IdrefGraph::Build(doc);
  ASSERT_TRUE(graph.ok());

  bat::Oid p1 = graph->Resolve("p1");
  bat::Oid p2 = graph->Resolve("p2");
  bat::Oid p3 = graph->Resolve("p3");
  ASSERT_NE(p1, bat::kInvalidOid);

  // Via the citation, p1 -> cites -> p2 is 2 edges; the tree route
  // through bib is 4. p1 .. p3 has no citation, so it stays at 4.
  auto linked = core::GraphDistance(doc, *graph, p1, p2);
  auto unlinked = core::GraphDistance(doc, *graph, p1, p3);
  ASSERT_TRUE(linked.ok() && unlinked.ok());
  EXPECT_EQ(*linked, 2);
  EXPECT_EQ(*unlinked, 4);
  auto meet = core::GraphMeet(doc, *graph, p1, p2);
  ASSERT_TRUE(meet.ok());
  EXPECT_NE(meet->meet, doc.root());
}

}  // namespace
}  // namespace meetxml
