// Session table for the meetxmld service: stable session ids, idle
// timeouts on a monotonic clock, and the per-session result-memory
// bound that turns an oversized answer into a clean error instead of
// an OOM (pazpar2 keeps the same bookkeeping per HTTP session).
//
// Time never comes from inside: every operation that ages a session
// takes `now_ms` (util::MonotonicMillis in production), so the
// deterministic test harness can evict sessions without sleeping.

#ifndef MEETXML_SERVER_SESSION_H_
#define MEETXML_SERVER_SESSION_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "server/protocol.h"
#include "util/result.h"

namespace meetxml {
namespace server {

/// \brief Session policy knobs.
struct SessionOptions {
  /// Sessions idle beyond this are evicted by EvictIdle; 0 disables
  /// idle eviction.
  uint64_t idle_timeout_ms = 60'000;
  /// Upper bound on one session's materialized result bytes per
  /// request. A query whose rendered answer exceeds it earns a
  /// ResourceExhausted error — the session survives, the memory is
  /// released. Values above kMaxQueryTableBytes (including 0, "no
  /// session cap") are clamped to it, so an answer that passes here
  /// always fits one response frame and TCP and in-process transports
  /// behave identically.
  uint64_t max_result_bytes = kMaxQueryTableBytes;
  /// Hard cap on live sessions; Open beyond it is Unavailable.
  size_t max_sessions = 1024;
};

/// \brief Thread-safe registry of live sessions. Ids are never reused
/// within one table's lifetime.
class SessionTable {
 public:
  explicit SessionTable(const SessionOptions& options)
      : options_(options) {}

  /// \brief Opens a session stamped with `now_ms`; Unavailable when
  /// the table is full.
  util::Result<uint64_t> Open(uint64_t now_ms);

  /// \brief Closes a session; NotFound when absent (already evicted).
  util::Status Close(uint64_t id);

  /// \brief Marks activity; NotFound when the session was evicted or
  /// closed (the caller turns that into a "session expired" error).
  util::Status Touch(uint64_t id, uint64_t now_ms);

  /// \brief Evicts every session idle past the timeout; returns the
  /// evicted ids so the front-end can close their connections.
  std::vector<uint64_t> EvictIdle(uint64_t now_ms);

  size_t size() const;
  bool Contains(uint64_t id) const;
  uint64_t total_evicted() const;
  const SessionOptions& options() const { return options_; }

 private:
  struct Session {
    uint64_t last_active_ms = 0;
  };

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Session> sessions_;
  uint64_t next_id_ = 1;
  uint64_t total_evicted_ = 0;
  SessionOptions options_;
};

}  // namespace server
}  // namespace meetxml

#endif  // MEETXML_SERVER_SESSION_H_
