// Interactive query shell over a catalog of documents.
//
// Run:  ./query_shell [file.xml | store.mxm ...]
//
// Every XML argument is shredded and added to the catalog under its
// file stem; a .mxm argument loads a whole store image (catalog or
// legacy single-document). With no arguments the built-in paper
// example is loaded. Queries route through store::MultiExecutor to
// every document the current scope matches, so answers come back as
// (doc, concept) rows.
//
// Catalog commands:
//   \open <file>      add an XML file / load a store image
//   \docs             list the catalog (name, id, nodes, paths, index)
//   \use <glob>       scope queries to matching documents (default *)
//   \save <file>      persist the catalog as one image
//   \history          show past input lines
//   \stats            session metrics: per-stage latency histograms
//                     (parse/route/decode/index build/execute/merge)
//                     and catalog counters from the process registry
// Classic commands:
//   .paths            path summaries of the scoped documents
//   .stats            statistics of the scoped documents
//   .explain <query>  binding plan (requires a single-document scope)
//   .help             grammar cheat sheet
//   .quit             exit
// Queries may span several lines; a trailing ';' submits. Example:
//   SELECT MEET(a, b) FROM doc//cdata a, doc//cdata b
//     WHERE a CONTAINS 'Bit' AND b CONTAINS '1999';

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "data/paper_example.h"
#include "model/bulk_load.h"
#include "model/stats.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/catalog.h"
#include "store/multi_executor.h"
#include "util/strings.h"

using namespace meetxml;  // example code; the library itself never does this

namespace {

void PrintHelp() {
  std::printf(R"(Grammar:
  SELECT <proj> FROM <pattern> [AS] <var> (, ...)
         [WHERE <predicates: AND/OR/NOT over
                 var CONTAINS|ICONTAINS|WORD|PHRASE|SYNONYM 'str',
                 var = 'str', DISTANCE(v1, v2) <= k>]
         [EXCLUDE <pattern> (, ...)] [WITHIN k] [LIMIT n]
  proj:    var | MEET(v...) | ANCESTORS(v...) | GMEET(v1, v2)
           | TAG(v) | PATH(v) | XML(v) | COUNT(v)
  pattern: tag/tag, * (any tag), // (any depth), @attr, cdata
Queries end with ';' and may span lines. \use <glob> picks the
documents they run against. Example:
  SELECT MEET(o1, o2) FROM bibliography//cdata o1,
    bibliography//cdata o2
    WHERE o1 CONTAINS 'Bit' AND o2 CONTAINS '1999';
)");
}

// A name for `path` that is unique in the catalog: the file stem,
// suffixed with _2, _3, ... on collision.
std::string UniqueName(const store::Catalog& catalog,
                       const std::string& path) {
  std::string stem = std::filesystem::path(path).stem().string();
  if (stem.empty()) stem = "doc";
  std::string name = stem;
  for (int n = 2; catalog.Find(name) != nullptr; ++n) {
    name = stem + "_" + std::to_string(n);
  }
  return name;
}

// Human-readable byte count for the \open report.
std::string FormatBytes(uint64_t bytes) {
  char out[32];
  if (bytes >= 1024 * 1024) {
    std::snprintf(out, sizeof(out), "%.1f MiB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else if (bytes >= 1024) {
    std::snprintf(out, sizeof(out), "%.1f KiB",
                  static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(out, sizeof(out), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return out;
}

// Adds an XML file or loads a store image into `catalog`.
bool OpenFile(store::Catalog* catalog, const std::string& path) {
  if (util::EndsWith(path, ".mxm")) {
    store::CatalogLoadStats stats;
    store::CatalogLoadOptions options;
    options.stats = &stats;
    // Zero-copy open: documents borrow from the pinned file mapping
    // (legacy DOC0/DOC1 sections silently fall back to copying).
    options.mode = model::LoadMode::kView;
    auto loaded = store::Catalog::LoadFromFile(path, options);
    if (!loaded.ok()) {
      std::printf("error: %s\n", loaded.status().ToString().c_str());
      return false;
    }
    if (!catalog->empty()) {
      std::printf("replacing %zu existing document(s) (\\save first to "
                  "keep them)\n",
                  catalog->size());
    }
    *catalog = std::move(*loaded);
    std::printf("loaded store image: %zu document(s) in %.2f ms "
                "(%u decode thread(s))\n",
                catalog->size(), stats.total_ms, stats.threads_used);
    // Per-document decode report: who pays the legacy DOC0/DOC1 copy
    // tax, who borrows zero-copy from the mapping, who reloads a
    // persisted index.
    for (const auto& doc_stats : stats.documents) {
      std::printf("  %-20s %-8s %8.2f ms  %s, %s copied / %s mapped%s\n",
                  doc_stats.name.c_str(),
                  doc_stats.columnar ? "columnar" : "DOC0",
                  doc_stats.decode_ms,
                  doc_stats.mode == model::LoadMode::kView ? "view"
                                                           : "copy",
                  FormatBytes(doc_stats.bytes_copied).c_str(),
                  FormatBytes(doc_stats.bytes_copied +
                              doc_stats.bytes_viewed)
                      .c_str(),
                  doc_stats.indexed ? "  (+persisted index)" : "");
    }
    return true;
  }
  auto doc = model::BulkShredXmlFile(path);
  if (!doc.ok()) {
    std::printf("error: %s\n", doc.status().ToString().c_str());
    return false;
  }
  std::string name = UniqueName(*catalog, path);
  auto added = catalog->Add(name, std::move(*doc));
  if (!added.ok()) {
    std::printf("error: %s\n", added.status().ToString().c_str());
    return false;
  }
  const store::NamedDocument* entry = catalog->Find(name);
  std::printf("added '%s' (doc %u): %zu nodes, %zu paths\n", name.c_str(),
              entry->id, entry->doc.node_count(),
              entry->doc.paths().size());
  return true;
}

void ListDocs(const store::Catalog& catalog, std::string_view scope) {
  if (catalog.empty()) {
    std::printf("(catalog is empty — \\open a file)\n");
    return;
  }
  for (const store::NamedDocument* entry : catalog.entries()) {
    bool indexed = entry->index.has_value() ||
                   (entry->executor != nullptr &&
                    entry->executor->text_index() != nullptr);
    std::printf("  %c %-20s id=%-4u %8zu nodes  %5zu paths  %s\n",
                util::GlobMatch(scope, entry->name) ? '*' : ' ',
                entry->name.c_str(), entry->id, entry->doc.node_count(),
                entry->doc.paths().size(),
                indexed ? "indexed" : "lazy index");
  }
  std::printf("('*' marks documents in the current scope '%s')\n",
              std::string(scope).c_str());
}

// Session metrics from the process-wide registry: every query this
// shell ran recorded its stage breakdown there (the same series a
// meetxmld exposes over DUMP), plus the catalog's open/decode work.
void PrintSessionStats() {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  std::printf("%-42s %8s %10s %8s %8s %8s\n", "histogram (us)", "count",
              "sum", "p50", "p90", "p99");
  for (const obs::NamedSummary& entry : registry.HistogramSummaries()) {
    if (entry.summary.count == 0) continue;
    std::printf("%-42s %8llu %10llu %8llu %8llu %8llu\n",
                entry.name.c_str(),
                static_cast<unsigned long long>(entry.summary.count),
                static_cast<unsigned long long>(entry.summary.sum),
                static_cast<unsigned long long>(entry.summary.p50),
                static_cast<unsigned long long>(entry.summary.p90),
                static_cast<unsigned long long>(entry.summary.p99));
  }
  std::printf("rows returned       %llu\n"
              "catalog opens       %llu\n"
              "lazy decodes        %llu\n"
              "text index builds   %llu\n",
              static_cast<unsigned long long>(
                  registry.counter("meetxml_query_rows_total").Value()),
              static_cast<unsigned long long>(
                  registry.counter("meetxml_catalog_opens_total").Value()),
              static_cast<unsigned long long>(
                  registry.counter("meetxml_catalog_lazy_decode_total")
                      .Value()),
              static_cast<unsigned long long>(
                  registry.counter("meetxml_text_index_builds_total")
                      .Value()));
}

}  // namespace

int main(int argc, char** argv) {
  store::Catalog catalog;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      if (!OpenFile(&catalog, argv[i])) return 1;
    }
  } else {
    auto doc = model::ShredXmlText(data::PaperExampleXml());
    MEETXML_CHECK_OK(doc.status());
    MEETXML_CHECK_OK(catalog.Add("bibliography", std::move(*doc)).status());
  }
  store::MultiExecutor multi(&catalog);
  std::string scope = "*";

  std::printf("meetxml shell — %zu document(s). Type .help for the "
              "grammar, \\docs for the catalog, .quit to exit.\n",
              catalog.size());

  std::vector<std::string> history;
  std::string pending;  // multi-line query being accumulated
  std::string line;
  while (true) {
    std::printf(pending.empty() ? "meet> " : "....> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string_view stripped = util::StripAsciiWhitespace(line);
    if (stripped.empty()) continue;
    history.emplace_back(stripped);

    // Commands run immediately; they never join a multi-line query.
    if (pending.empty() && (stripped[0] == '.' || stripped[0] == '\\')) {
      std::string command(stripped);
      if (command == ".quit" || command == ".exit") break;
      if (command == ".help") {
        PrintHelp();
      } else if (command == "\\docs" || command == ".docs") {
        ListDocs(catalog, scope);
      } else if (command == "\\stats" || command == ".stats-session") {
        PrintSessionStats();
      } else if (command == "\\history") {
        for (size_t i = 0; i < history.size(); ++i) {
          std::printf("%4zu  %s\n", i + 1, history[i].c_str());
        }
      } else if (util::StartsWith(command, "\\use ")) {
        std::string requested(
            util::StripAsciiWhitespace(command.substr(5)));
        if (catalog.MatchNames(requested).empty()) {
          std::printf("scope '%s' matches no document (\\docs lists "
                      "them); scope unchanged\n",
                      requested.c_str());
        } else {
          scope = requested;
          std::printf("scope: %s (%zu document(s))\n", scope.c_str(),
                      catalog.MatchNames(scope).size());
        }
      } else if (util::StartsWith(command, "\\open ")) {
        OpenFile(&catalog,
                 std::string(util::StripAsciiWhitespace(command.substr(6))));
      } else if (util::StartsWith(command, "\\save ")) {
        std::string path(util::StripAsciiWhitespace(command.substr(6)));
        auto saved = catalog.SaveToFile(path);
        if (saved.ok()) {
          std::printf("saved %zu document(s) -> %s\n", catalog.size(),
                      path.c_str());
        } else {
          std::printf("error: %s\n", saved.ToString().c_str());
        }
      } else if (command == ".stats") {
        for (const std::string& name : catalog.MatchNames(scope)) {
          auto stats = model::ComputeStats(catalog.Find(name)->doc);
          std::printf("-- %s --\n", name.c_str());
          if (stats.ok()) {
            std::printf("%s", model::RenderStats(*stats, 15).c_str());
          }
        }
      } else if (command == ".paths") {
        for (const std::string& name : catalog.MatchNames(scope)) {
          const model::StoredDocument& doc = catalog.Find(name)->doc;
          std::printf("-- %s --\n", name.c_str());
          for (bat::PathId id = 0; id < doc.paths().size(); ++id) {
            std::printf("  %s\n", doc.paths().ToString(id).c_str());
          }
        }
      } else if (util::StartsWith(command, ".explain ")) {
        std::vector<std::string> scoped = catalog.MatchNames(scope);
        if (scoped.size() != 1) {
          std::printf("explain needs a single-document scope; \\use a "
                      "document name first\n");
          continue;
        }
        auto executor = catalog.ExecutorFor(scoped.front());
        if (!executor.ok()) {
          std::printf("error: %s\n",
                      executor.status().ToString().c_str());
          continue;
        }
        auto plan = (*executor)->ExplainText(command.substr(9));
        if (plan.ok()) {
          std::printf("%s", plan->c_str());
        } else {
          std::printf("error: %s\n", plan.status().ToString().c_str());
        }
      } else {
        std::printf("unknown command: %s (.help lists commands)\n",
                    command.c_str());
      }
      continue;
    }

    // Query text: accumulate until a line ends with ';'.
    if (!pending.empty()) pending += ' ';
    pending.append(stripped);
    if (pending.back() != ';') continue;
    pending.pop_back();
    std::string query_text;
    std::swap(query_text, pending);

    // Trace every query so \stats can break the session down by stage
    // — including the catalog's first-touch decode and index build.
    obs::QueryTrace trace;
    auto result = multi.ExecuteText(scope, query_text, {}, &trace);
    if (!result.ok()) {
      obs::RecordStageHistograms(&obs::MetricsRegistry::Global(), trace,
                                 /*rows=*/0);
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    obs::RecordStageHistograms(&obs::MetricsRegistry::Global(), trace,
                               result->rows.size());
    std::printf("%s(%zu rows over %zu document(s), %llu us staged)\n",
                result->ToText().c_str(), result->rows.size(),
                result->per_document.size(),
                static_cast<unsigned long long>(trace.TotalStageUs()));
  }
  return 0;
}
