#include "model/storage_io.h"

#include <cstring>
#include <fstream>

namespace meetxml {
namespace model {

using util::Result;
using util::Status;

namespace {

constexpr char kMagic[4] = {'M', 'X', 'M', '1'};
constexpr uint32_t kVersion = 1;

uint64_t Fnv1a(std::string_view bytes) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

class Writer {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }
  std::string Take() { return std::move(out_); }

 private:
  void Raw(const void* data, size_t size) {
    out_.append(static_cast<const char*>(data), size);
  }
  std::string out_;
};

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  Result<uint8_t> U8() {
    MEETXML_RETURN_NOT_OK(Need(1));
    return static_cast<uint8_t>(bytes_[pos_++]);
  }
  Result<uint32_t> U32() {
    MEETXML_RETURN_NOT_OK(Need(4));
    uint32_t v;
    std::memcpy(&v, bytes_.data() + pos_, 4);
    pos_ += 4;
    return v;
  }
  Result<uint64_t> U64() {
    MEETXML_RETURN_NOT_OK(Need(8));
    uint64_t v;
    std::memcpy(&v, bytes_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }
  Result<std::string> Str() {
    MEETXML_ASSIGN_OR_RETURN(uint32_t size, U32());
    MEETXML_RETURN_NOT_OK(Need(size));
    std::string out(bytes_.substr(pos_, size));
    pos_ += size;
    return out;
  }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  Status Need(size_t n) {
    if (pos_ + n > bytes_.size()) {
      return Status::UnexpectedEof("truncated storage image at offset ",
                                   pos_);
    }
    return Status::OK();
  }

  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::string> SaveToBytes(const StoredDocument& doc) {
  if (!doc.finalized()) {
    return Status::InvalidArgument(
        "only finalized documents can be saved");
  }

  Writer payload;
  // Path summary, in id order (parents first by construction).
  const PathSummary& paths = doc.paths();
  payload.U32(static_cast<uint32_t>(paths.size()));
  for (PathId id = 0; id < paths.size(); ++id) {
    payload.U32(paths.parent(id));
    payload.U8(static_cast<uint8_t>(paths.kind(id)));
    payload.Str(paths.label(id));
  }
  // Node columns.
  payload.U32(static_cast<uint32_t>(doc.node_count()));
  for (Oid oid = 0; oid < doc.node_count(); ++oid) {
    payload.U32(doc.parent(oid));
  }
  for (Oid oid = 0; oid < doc.node_count(); ++oid) {
    payload.U32(doc.path(oid));
  }
  for (Oid oid = 0; oid < doc.node_count(); ++oid) {
    payload.U32(static_cast<uint32_t>(doc.rank(oid)));
  }
  // String associations, in global append order (preserves per-element
  // attribute order on reload).
  auto strings = doc.StringsInAppendOrder();
  payload.U32(static_cast<uint32_t>(strings.size()));
  for (const auto& [path, owner, value] : strings) {
    payload.U32(path);
    payload.U32(owner);
    payload.Str(value);
  }

  std::string body = payload.Take();
  Writer header;
  header.U8(static_cast<uint8_t>(kMagic[0]));
  header.U8(static_cast<uint8_t>(kMagic[1]));
  header.U8(static_cast<uint8_t>(kMagic[2]));
  header.U8(static_cast<uint8_t>(kMagic[3]));
  header.U32(kVersion);
  header.U64(body.size());
  header.U64(Fnv1a(body));
  std::string out = header.Take();
  out += body;
  return out;
}

Result<StoredDocument> LoadFromBytes(std::string_view bytes) {
  Reader reader(bytes);
  for (char expected : kMagic) {
    MEETXML_ASSIGN_OR_RETURN(uint8_t byte, reader.U8());
    if (static_cast<char>(byte) != expected) {
      return Status::InvalidArgument("not a meetxml storage image");
    }
  }
  MEETXML_ASSIGN_OR_RETURN(uint32_t version, reader.U32());
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported storage version ",
                                   version);
  }
  MEETXML_ASSIGN_OR_RETURN(uint64_t payload_size, reader.U64());
  MEETXML_ASSIGN_OR_RETURN(uint64_t checksum, reader.U64());
  constexpr size_t kHeaderSize = 4 + 4 + 8 + 8;
  if (bytes.size() != kHeaderSize + payload_size) {
    return Status::InvalidArgument("storage image size mismatch");
  }
  if (Fnv1a(bytes.substr(kHeaderSize)) != checksum) {
    return Status::InvalidArgument("storage image checksum mismatch");
  }

  StoredDocument doc;
  PathSummary* paths = doc.mutable_paths();
  MEETXML_ASSIGN_OR_RETURN(uint32_t path_count, reader.U32());
  for (uint32_t i = 0; i < path_count; ++i) {
    MEETXML_ASSIGN_OR_RETURN(uint32_t parent, reader.U32());
    MEETXML_ASSIGN_OR_RETURN(uint8_t kind, reader.U8());
    MEETXML_ASSIGN_OR_RETURN(std::string label, reader.Str());
    if (parent != bat::kInvalidPathId && parent >= i) {
      return Status::InvalidArgument(
          "corrupt image: path parent out of order");
    }
    if (kind > static_cast<uint8_t>(StepKind::kCdata)) {
      return Status::InvalidArgument("corrupt image: bad step kind");
    }
    PathId interned =
        paths->Intern(parent, static_cast<StepKind>(kind), label);
    if (interned != i) {
      return Status::InvalidArgument(
          "corrupt image: duplicate path entry");
    }
  }

  MEETXML_ASSIGN_OR_RETURN(uint32_t node_count, reader.U32());
  std::vector<Oid> parents(node_count);
  std::vector<PathId> node_paths(node_count);
  std::vector<uint32_t> ranks(node_count);
  for (uint32_t i = 0; i < node_count; ++i) {
    MEETXML_ASSIGN_OR_RETURN(parents[i], reader.U32());
  }
  for (uint32_t i = 0; i < node_count; ++i) {
    MEETXML_ASSIGN_OR_RETURN(node_paths[i], reader.U32());
    if (node_paths[i] >= path_count) {
      return Status::InvalidArgument("corrupt image: node path id");
    }
  }
  for (uint32_t i = 0; i < node_count; ++i) {
    MEETXML_ASSIGN_OR_RETURN(ranks[i], reader.U32());
  }
  for (uint32_t i = 0; i < node_count; ++i) {
    if (i > 0 && parents[i] >= i) {
      return Status::InvalidArgument(
          "corrupt image: parent OIDs must precede children");
    }
    doc.AppendNode(node_paths[i], parents[i],
                   static_cast<int>(ranks[i]));
  }

  MEETXML_ASSIGN_OR_RETURN(uint32_t string_count, reader.U32());
  for (uint32_t i = 0; i < string_count; ++i) {
    MEETXML_ASSIGN_OR_RETURN(uint32_t path, reader.U32());
    if (path >= path_count) {
      return Status::InvalidArgument("corrupt image: string path id");
    }
    MEETXML_ASSIGN_OR_RETURN(uint32_t owner, reader.U32());
    MEETXML_ASSIGN_OR_RETURN(std::string value, reader.Str());
    if (owner >= node_count) {
      return Status::InvalidArgument("corrupt image: string owner");
    }
    doc.AppendString(path, owner, std::move(value));
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in storage image");
  }

  MEETXML_RETURN_NOT_OK(doc.Finalize());
  return doc;
}

Status SaveToFile(const StoredDocument& doc, const std::string& path) {
  MEETXML_ASSIGN_OR_RETURN(std::string bytes, SaveToBytes(doc));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::NotFound("cannot open for write: ", path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::Internal("short write to ", path);
  return Status::OK();
}

Result<StoredDocument> LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open file: ", path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return LoadFromBytes(bytes);
}

}  // namespace model
}  // namespace meetxml
