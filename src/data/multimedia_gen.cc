#include "data/multimedia_gen.h"

#include "util/rng.h"

namespace meetxml {
namespace data {

using util::Result;
using util::Rng;
using util::Status;

namespace {

const std::vector<std::string>& FeatureNames() {
  static const std::vector<std::string> kNames = {
      "colorHistogram", "edgeDensity", "brightness", "contrast",
      "saturation",     "texture",     "sharpness",  "entropy"};
  return kNames;
}

const std::vector<std::string>& Keywords() {
  static const std::vector<std::string> kWords = {
      "landscape", "portrait", "indoor",  "outdoor", "urban",
      "nature",    "water",    "sky",     "night",   "crowd",
      "building",  "animal",   "vehicle", "food",    "sport"};
  return kWords;
}

void AddFeatureVector(xml::Node* parent, Rng* rng) {
  xml::Node* features = parent->AddElement("features");
  int count = static_cast<int>(rng->NextInRange(3, 6));
  for (int i = 0; i < count; ++i) {
    xml::Node* feature = features->AddElement("feature");
    feature->AddAttribute("name", rng->Pick(FeatureNames()));
    feature->AddElementWithText(
        "value", std::to_string(rng->NextDouble()).substr(0, 6));
    feature->AddElementWithText(
        "confidence", std::to_string(rng->NextDouble()).substr(0, 4));
  }
}

void AddRegion(xml::Node* parent, Rng* rng, int depth, int max_depth) {
  xml::Node* region = parent->AddElement("region");
  region->AddAttribute("x", std::to_string(rng->NextInRange(0, 640)));
  region->AddAttribute("y", std::to_string(rng->NextInRange(0, 480)));
  AddFeatureVector(region, rng);
  if (depth < max_depth && rng->NextBool(0.4)) {
    int subregions = static_cast<int>(rng->NextInRange(1, 3));
    for (int i = 0; i < subregions; ++i) {
      AddRegion(region, rng, depth + 1, max_depth);
    }
  }
}

void AddMediaItem(xml::Node* root, Rng* rng,
                  const MultimediaOptions& options, int index) {
  xml::Node* item = root->AddElement("mediaItem");
  item->AddAttribute("id", "item" + std::to_string(index));
  xml::Node* source = item->AddElement("source");
  source->AddElementWithText(
      "url", "http://media.example.org/" + rng->NextWord(6, 12) + ".jpg");
  source->AddElementWithText("format", rng->NextBool() ? "jpeg" : "png");
  source->AddElementWithText(
      "bytes", std::to_string(rng->NextInRange(10000, 5000000)));

  AddFeatureVector(item, rng);
  int regions = rng->NextGeometric(0.6, 3);
  for (int i = 0; i < regions; ++i) {
    AddRegion(item, rng, 1, options.max_region_depth);
  }

  xml::Node* annotation = item->AddElement("annotation");
  int keywords = 1 + rng->NextGeometric(0.5, 4);
  for (int i = 0; i < keywords; ++i) {
    annotation->AddElementWithText("keyword", rng->Pick(Keywords()));
  }
  if (rng->NextBool(0.3)) {
    annotation->AddElementWithText(
        "caption", rng->Pick(Keywords()) + " scene with " +
                       rng->Pick(Keywords()) + " elements");
  }
}

// Plants the calibration markers. Each probe holds a chain of <segment>
// elements. term_a is the cdata text of the chain head (1 edge from the
// head element); term_b is a `marker` attribute on the element
// `distance - 2` chain levels down (1 attribute arc). Total string-to-
// string distance: 1 + (distance - 2) + 1 == distance. Distance 0 plants
// both terms inside one string; distance 1 cannot exist between two
// distinct leaf strings in this data model (two distinct string
// associations are always >= 2 edges apart).
std::vector<PlantedPair> PlantCalibration(xml::Node* root,
                                          int max_distance) {
  std::vector<PlantedPair> pairs;
  xml::Node* calibration = root->AddElement("calibration");

  // Distance 0: one string containing both terms.
  {
    std::string term_a = "qmarkera0";
    std::string term_b = "qmarkerb0";
    xml::Node* probe = calibration->AddElement("probe");
    probe->AddAttribute("distance", "0");
    probe->AddElementWithText("label", term_a + " " + term_b);
    pairs.push_back(PlantedPair{term_a, term_b, 0});
  }

  for (int distance = 2; distance <= max_distance; ++distance) {
    int chain_edges = distance - 2;
    std::string term_a = "qmarkera" + std::to_string(distance);
    std::string term_b = "qmarkerb" + std::to_string(distance);
    xml::Node* probe = calibration->AddElement("probe");
    probe->AddAttribute("distance", std::to_string(distance));
    xml::Node* cursor = probe->AddElement("segment");
    cursor->AddText(term_a);
    for (int i = 0; i < chain_edges; ++i) {
      cursor = cursor->AddElement("segment");
    }
    cursor->AddAttribute("marker", term_b);
    pairs.push_back(PlantedPair{term_a, term_b, distance});
  }
  return pairs;
}

}  // namespace

Result<MultimediaCorpus> GenerateMultimedia(
    const MultimediaOptions& options) {
  if (options.items < 0) {
    return Status::InvalidArgument("items must be non-negative");
  }
  if (options.max_planted_distance < 0) {
    return Status::InvalidArgument(
        "max_planted_distance must be non-negative");
  }

  Rng rng(options.seed);
  MultimediaCorpus corpus;
  corpus.doc.root = xml::Node::MakeElement("collection");
  xml::Node* root = corpus.doc.root.get();

  for (int i = 0; i < options.items; ++i) {
    AddMediaItem(root, &rng, options, i);
  }
  corpus.pairs = PlantCalibration(root, options.max_planted_distance);
  return corpus;
}

}  // namespace data
}  // namespace meetxml
