// Persistence of the full-text indexes (MXM2 "TIDX" section).
//
// The paper's Fig. 6 experiment pays ~1207 ms for the full-text scan
// that feeds the 2 ms meet — and this reproduction used to rebuild the
// inverted word and trigram indexes from scratch on every
// Executor::Build. Persisting them alongside the document in the MXM2
// storage image (model/storage_io.h) turns index construction into a
// straight decode: sorted posting lists are delta-encoded against a
// packed (path, owner) key and reload without tokenizing a single
// string.
//
// TIDX payload (little-endian, varints are LEB128):
//   u8 codec version (1)
//   u8 fold_case | varint min_token_length   (tokenizer options)
//   u8 has_trigrams
//   varint word count, then per word in lexicographic order:
//     string | varint posting count | delta-encoded postings
//   varint trigram count, then per trigram in ascending key order:
//     u32 key | varint posting count | delta-encoded postings
// Postings are sorted unique (path, owner) pairs packed into a u64
// key `path << 32 | owner`; the first posting stores its key raw, the
// rest store the (strictly positive) difference to the predecessor.

#ifndef MEETXML_TEXT_INDEX_IO_H_
#define MEETXML_TEXT_INDEX_IO_H_

#include <optional>
#include <string>
#include <string_view>

#include "model/storage_io.h"
#include "text/inverted_index.h"
#include "util/result.h"

namespace meetxml {
namespace text {

/// \brief Serializes an index into the TIDX section payload.
/// Deterministic: equal indexes produce equal bytes.
std::string SerializeIndex(const InvertedIndex& index);

/// \brief Decodes a TIDX payload. Structural corruption (truncation,
/// non-monotonic postings, duplicate words) is rejected; callers that
/// pair the index with a document should also run
/// ValidateIndexAgainst to bounds-check postings.
util::Result<InvertedIndex> DeserializeIndex(std::string_view bytes);

/// \brief Verifies that every posting refers to an existing path and
/// node of `doc` — the cross-section consistency check run when an
/// image carries both a document and an index.
util::Status ValidateIndexAgainst(const model::StoredDocument& doc,
                                  const InvertedIndex& index);

/// \brief A store image's contents: the document plus, when the image
/// carried a TIDX section, the ready-to-probe full-text index.
struct PersistentStore {
  model::StoredDocument doc;
  std::optional<InvertedIndex> index;
};

/// \brief Saves an MXM2 image with the document and, when `index` is
/// non-null, the persisted full-text indexes.
util::Result<std::string> SaveStoreToBytes(const model::StoredDocument& doc,
                                           const InvertedIndex* index);

/// \brief Loads an image saved by SaveStoreToBytes (or any MXM1/MXM2
/// image; `index` stays empty when the image has no TIDX section —
/// v1 images never do — so callers rebuild lazily). `options` selects
/// the load mode: in view mode the document borrows its columns from
/// `bytes` under model/storage_io.h's lifetime contract (the index is
/// always decoded into owned postings).
util::Result<PersistentStore> LoadStoreFromBytes(
    std::string_view bytes, const model::LoadOptions& options = {});

/// \brief File variants. Saving is atomic (temp file + rename);
/// view-mode loading pins the shared mapping into the document.
util::Status SaveStoreToFile(const model::StoredDocument& doc,
                             const InvertedIndex* index,
                             const std::string& path);
util::Result<PersistentStore> LoadStoreFromFile(
    const std::string& path, const model::LoadOptions& options = {});

}  // namespace text
}  // namespace meetxml

#endif  // MEETXML_TEXT_INDEX_IO_H_
