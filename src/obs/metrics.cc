#include "obs/metrics.h"

#include <bit>
#include <chrono>
#include <type_traits>

namespace meetxml {
namespace obs {

size_t ThisThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShardCount;
  return shard;
}

uint64_t MonotonicMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

size_t Histogram::BucketIndex(uint64_t value) {
  return static_cast<size_t>(std::bit_width(value));
}

uint64_t Histogram::BucketUpperBound(size_t index) {
  if (index == 0) return 0;
  if (index >= 64) return ~uint64_t{0};
  return (uint64_t{1} << index) - 1;
}

std::vector<uint64_t> Histogram::MergedBuckets() const {
  std::vector<uint64_t> merged(kBucketCount, 0);
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < kBucketCount; ++i) {
      merged[i] += shard.counts[i].load(std::memory_order_acquire);
    }
  }
  return merged;
}

HistogramSummary Histogram::Summary() const {
  std::vector<uint64_t> buckets = MergedBuckets();
  HistogramSummary out;
  for (uint64_t count : buckets) out.count += count;
  for (const Shard& shard : shards_) {
    out.sum += shard.sum.load(std::memory_order_acquire);
  }
  if (out.count == 0) return out;
  // A quantile resolves to the upper bound of the bucket holding the
  // ceil(q * count)-th smallest sample — deterministic, and exact for
  // single-valued buckets, which is what the pinned-clock tests use.
  auto quantile = [&](double q) {
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(out.count));
    if (rank == 0) rank = 1;
    if (rank > out.count) rank = out.count;
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
      seen += buckets[i];
      if (seen >= rank) return BucketUpperBound(i);
    }
    return BucketUpperBound(buckets.size() - 1);
  };
  out.p50 = quantile(0.50);
  out.p90 = quantile(0.90);
  out.p99 = quantile(0.99);
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Entry& MetricsRegistry::Lookup(std::string_view name,
                                                std::string_view labels,
                                                Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[Key(std::string(name), std::string(labels))];
  entry.kind = kind;
  switch (kind) {
    case Kind::kCounter:
      if (entry.counter == nullptr) entry.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      if (entry.gauge == nullptr) entry.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      if (entry.histogram == nullptr) {
        entry.histogram = std::make_unique<Histogram>();
      }
      break;
  }
  return entry;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view labels) {
  return *Lookup(name, labels, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name,
                              std::string_view labels) {
  return *Lookup(name, labels, Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::string_view labels) {
  return *Lookup(name, labels, Kind::kHistogram).histogram;
}

namespace {

template <typename... Args>
void Append(std::string* out, Args&&... args) {
  auto piece = [out](auto&& value) {
    if constexpr (std::is_arithmetic_v<std::decay_t<decltype(value)>>) {
      out->append(std::to_string(value));
    } else {
      out->append(std::string_view(value));
    }
  };
  (piece(std::forward<Args>(args)), ...);
}

std::string WithLabels(const std::string& name, const std::string& labels,
                       std::string_view extra = "") {
  std::string out = name;
  if (labels.empty() && extra.empty()) return out;
  out += '{';
  out += labels;
  if (!labels.empty() && !extra.empty()) out += ',';
  out += extra;
  out += '}';
  return out;
}

}  // namespace

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  std::string typed_name;  // last name a # TYPE line was emitted for
  for (const auto& [key, entry] : entries_) {
    const auto& [name, labels] = key;
    const char* type = entry.kind == Kind::kCounter   ? "counter"
                       : entry.kind == Kind::kGauge   ? "gauge"
                                                      : "summary";
    if (entry.kind == Kind::kHistogram) {
      HistogramSummary summary = entry.histogram->Summary();
      if (summary.count == 0) continue;
      if (name != typed_name) {
        Append(&out, "# TYPE ", name, " ", type, "\n");
        typed_name = name;
      }
      Append(&out, WithLabels(name, labels, "quantile=\"0.5\""), " ",
             summary.p50, "\n");
      Append(&out, WithLabels(name, labels, "quantile=\"0.9\""), " ",
             summary.p90, "\n");
      Append(&out, WithLabels(name, labels, "quantile=\"0.99\""), " ",
             summary.p99, "\n");
      Append(&out, WithLabels(name + "_sum", labels), " ", summary.sum,
             "\n");
      Append(&out, WithLabels(name + "_count", labels), " ", summary.count,
             "\n");
      continue;
    }
    if (name != typed_name) {
      Append(&out, "# TYPE ", name, " ", type, "\n");
      typed_name = name;
    }
    if (entry.kind == Kind::kCounter) {
      Append(&out, WithLabels(name, labels), " ", entry.counter->Value(),
             "\n");
    } else {
      Append(&out, WithLabels(name, labels), " ", entry.gauge->Value(),
             "\n");
    }
  }
  return out;
}

std::vector<NamedSummary> MetricsRegistry::HistogramSummaries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<NamedSummary> out;
  for (const auto& [key, entry] : entries_) {
    if (entry.histogram == nullptr) continue;
    HistogramSummary summary = entry.histogram->Summary();
    if (summary.count == 0) continue;
    out.push_back(NamedSummary{WithLabels(key.first, key.second), summary});
  }
  return out;
}

}  // namespace obs
}  // namespace meetxml
