#include "util/net.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#define MEETXML_HAVE_SOCKETS 1
#endif

namespace meetxml {
namespace util {

uint64_t MonotonicMillis() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#if defined(MEETXML_HAVE_SOCKETS)

namespace {

Status Errno(std::string_view what) {
  return Status::Internal(what, ": ", std::strerror(errno));
}

}  // namespace

Result<int> ListenTcp(uint16_t port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Errno("bind");
    ::close(fd);
    return st;
  }
  if (::listen(fd, backlog) != 0) {
    Status st = Errno("listen");
    ::close(fd);
    return st;
  }
  return fd;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<int> AcceptConnection(int listen_fd) {
  for (;;) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

Result<int> ConnectTcp(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const char* name = host == "localhost" ? "127.0.0.1" : host.c_str();
  if (::inet_pton(AF_INET, name, &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: ", host);
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status st = Errno("connect");
    ::close(fd);
    return st;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status ReadFull(int fd, void* data, size_t size) {
  char* at = static_cast<char*>(data);
  size_t got = 0;
  while (got < size) {
    ssize_t n = ::read(fd, at + got, size - got);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      return Status::UnexpectedEof("peer closed after ", got, " of ",
                                   size, " bytes");
    }
    if (errno == EINTR) continue;
    return Errno("read");
  }
  return Status::OK();
}

Result<size_t> ReadSome(int fd, void* data, size_t cap) {
  for (;;) {
    ssize_t n = ::read(fd, data, cap);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    return Errno("read");
  }
}

Status WriteFull(int fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
#if defined(MSG_NOSIGNAL)
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("write");
  }
  return Status::OK();
}

void ShutdownRead(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RD);
}

void ShutdownSocket(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void CloseSocket(int fd) {
  if (fd >= 0) ::close(fd);
}

#else  // !MEETXML_HAVE_SOCKETS

namespace {
Status NoSockets() {
  return Status::NotImplemented("sockets are not available on this platform");
}
}  // namespace

Result<int> ListenTcp(uint16_t, int) { return NoSockets(); }
Result<uint16_t> LocalPort(int) { return NoSockets(); }
Result<int> AcceptConnection(int) { return NoSockets(); }
Result<int> ConnectTcp(const std::string&, uint16_t) { return NoSockets(); }
Status ReadFull(int, void*, size_t) { return NoSockets(); }
Result<size_t> ReadSome(int, void*, size_t) { return NoSockets(); }
Status WriteFull(int, std::string_view) { return NoSockets(); }
void ShutdownRead(int) {}
void ShutdownSocket(int) {}
void CloseSocket(int) {}

#endif  // MEETXML_HAVE_SOCKETS

}  // namespace util
}  // namespace meetxml
