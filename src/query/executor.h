// Query executor: binds FROM patterns against the stored document,
// applies WHERE predicates, and evaluates the projection — either the
// paper's meet aggregation (§3) or the regular-path-expression baseline
// with ancestor implication (§1).

#ifndef MEETXML_QUERY_EXECUTOR_H_
#define MEETXML_QUERY_EXECUTOR_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/idref.h"
#include "core/meet_general.h"
#include "model/document.h"
#include "query/ast.h"
#include "text/search.h"
#include "text/thesaurus.h"
#include "util/result.h"

namespace meetxml {
namespace query {

/// \brief Execution limits.
struct ExecuteOptions {
  /// Hard cap on materialized result rows (safety valve; LIMIT is the
  /// user-facing knob).
  size_t max_rows = 100000;

  /// Caller-supplied bound on useful rows (0 = none): the server maps
  /// its wire-protocol result-byte cap to a row count here so daemon
  /// queries without an explicit LIMIT still get limit pushdown. Unlike
  /// max_rows this marks the answer as bounded, enabling the streaming
  /// top-k merge.
  size_t limit_hint = 0;

  /// Worker threads for the multi-document fan-out (0 = hardware).
  unsigned merge_threads = 0;

  /// Force the legacy materialize-then-sort merge (and unbounded
  /// per-document meet collection). The escape hatch the equivalence
  /// tests and the ab15 streaming-vs-materialized bench compare
  /// against.
  bool materialized_merge = false;

  /// Shared witness-distance ceiling for cross-document early
  /// termination; installed by store::MultiExecutor, not by end users.
  const std::atomic<int>* rank_ceiling = nullptr;
};

/// \brief Renders columns + rows as an aligned ASCII table — the one
/// formatter behind QueryResult::ToText and store::MultiResult::ToText.
std::string RenderTable(const std::vector<std::string>& columns,
                        const std::vector<std::vector<std::string>>& rows,
                        bool truncated);

/// \brief A query result: a small relational table, plus structured
/// access to meet results for programmatic callers.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;

  /// Filled for MEET projections.
  std::vector<core::GeneralMeet> meets;
  core::MeetGeneralStats meet_stats;

  /// For ANCESTORS projections: the exact total number of answer rows
  /// the baseline semantics implies, even when `rows` was truncated by
  /// LIMIT/max_rows. This is the cardinality Figure/Table comparisons
  /// use ("in larger databases the computation might cause a
  /// combinatorial explosion of the result size", §1).
  uint64_t total_ancestor_rows = 0;

  /// Exact number of answer rows the query implies before any cap
  /// (LIMIT, max_rows, limit_hint) — for MEET the qualifying-meet
  /// count, for other projections the full enumeration count. Valid
  /// only when rows_found_exact is true.
  uint64_t rows_found = 0;

  /// False when an enumeration guard (ancestor-tuple or graph-pair
  /// cap) cut counting short, so rows_found is a lower bound only.
  bool rows_found_exact = true;

  /// True when qualifying rows beyond `rows` exist — the row set was
  /// cut by *any* cap: explicit LIMIT, limit_hint, or max_rows. This is
  /// a per-document "more rows exist" flag; it deliberately does NOT
  /// distinguish a satisfied explicit LIMIT from the other caps. The
  /// merged store::MultiResult::truncated refines it to answer
  /// completeness, where a LIMIT satisfied exactly is complete.
  bool truncated = false;

  /// \brief Renders an aligned ASCII table.
  std::string ToText() const;
};

/// \brief Pull-based iterator over a ranked result, yielding rows in
/// ascending witness distance (then row index). For MEET projections
/// the per-row distance is the meet's witness_distance; rows of
/// unranked projections all rank at distance 0 and keep their
/// enumeration order. The cursor owns the result; TakeRow() moves the
/// row strings out, so a consumed cursor's backing rows are spent.
class RankedCursor {
 public:
  explicit RankedCursor(QueryResult result) : result_(std::move(result)) {}

  bool Done() const { return next_ >= result_.rows.size(); }
  size_t index() const { return next_; }
  int distance() const {
    return next_ < result_.meets.size()
               ? result_.meets[next_].witness_distance
               : 0;
  }
  std::vector<std::string> TakeRow() {
    return std::move(result_.rows[next_++]);
  }

  const QueryResult& result() const { return result_; }

  /// \brief Surrenders the result for per-document bookkeeping. Rows
  /// and meets are cleared (partially moved-from after TakeRow); the
  /// counts, stats and flags survive.
  QueryResult Consume() && {
    result_.rows.clear();
    result_.meets.clear();
    return std::move(result_);
  }

 private:
  QueryResult result_;
  size_t next_ = 0;
};

/// \brief Executes queries against one stored document.
///
/// The full-text indexes are built lazily, on the first query with a
/// text predicate — purely structural queries never pay the index tax —
/// or installed up front from a persisted MXM2 image. Execute() can be
/// called any number of times (laziness is thread-safe). The document
/// must outlive the executor.
class Executor {
 public:
  static util::Result<Executor> Build(const model::StoredDocument& doc);

  /// \brief Builds an executor around a pre-built full-text engine,
  /// e.g. `text::FullTextSearch::WithIndex(doc, *store.index)` after
  /// `text::LoadStoreFromBytes` — no index construction happens.
  static util::Result<Executor> Build(const model::StoredDocument& doc,
                                      text::FullTextSearch search);

  /// \brief Executes a parsed query.
  util::Result<QueryResult> Execute(const Query& query,
                                    const ExecuteOptions& options = {}) const;

  /// \brief Parses and executes query text.
  util::Result<QueryResult> ExecuteText(
      std::string_view text, const ExecuteOptions& options = {}) const;

  /// \brief Executes a query and wraps the (distance-ordered) result in
  /// a RankedCursor for incremental consumption — the per-document leg
  /// of the streaming top-k merge. Carries the "query.cursor" failpoint
  /// so fault injection can fail one document mid-fan-out.
  util::Result<RankedCursor> ExecuteRanked(
      const Query& query, const ExecuteOptions& options = {}) const;

  /// \brief Explains a query without running its projection: per
  /// binding the matched schema paths and their cardinalities before
  /// and after predicate filtering, the resolved restriction clauses,
  /// and the projection plan.
  util::Result<std::string> Explain(const Query& query) const;
  util::Result<std::string> ExplainText(std::string_view text) const;

  const model::StoredDocument& doc() const { return *doc_; }
  const core::IdrefGraph& idref_graph() const { return idrefs_; }

  /// \brief True once the full-text engine exists (installed at Build
  /// or forced by a text predicate). Structural queries leave it false.
  bool text_index_built() const;

  /// \brief The built inverted index, or nullptr when none exists yet.
  /// Lets store::Catalog persist an index this executor built lazily
  /// without rebuilding it. The pointer stays valid for the executor's
  /// lifetime (the engine, once built, is never torn down).
  const text::InvertedIndex* text_index() const;

  /// \brief The full-text engine, built on first use — the handle
  /// cross-document probes (text/cross_document.h) take per target.
  util::Result<const text::FullTextSearch*> TextSearch() const {
    return EnsureSearch();
  }

  /// \brief Installs a pre-built engine after construction; no-op when
  /// one already exists. Lets store::Catalog build the executor first
  /// (the fallible step) and hand over a persisted index only once the
  /// build has succeeded — a failed Build never consumes the index.
  void InstallTextSearch(text::FullTextSearch search);

  /// \brief Installs the thesaurus backing SYNONYM predicates (paper
  /// §4's search broadening). Without one, SYNONYM behaves like
  /// ICONTAINS of the literal alone.
  void SetThesaurus(text::Thesaurus thesaurus) {
    thesaurus_ = std::move(thesaurus);
  }
  const text::Thesaurus& thesaurus() const { return thesaurus_; }

 private:
  // Lazily constructed full-text engine. Behind a unique_ptr so the
  // executor stays movable (std::mutex is not), and mutex-guarded so
  // concurrent Execute() calls race safely to the one build.
  struct LazySearch {
    std::mutex mu;
    std::optional<text::FullTextSearch> search;
  };

  Executor(const model::StoredDocument* doc, core::IdrefGraph idrefs,
           std::unique_ptr<LazySearch> lazy)
      : doc_(doc), idrefs_(std::move(idrefs)), lazy_(std::move(lazy)) {}

  /// Evaluates one binding: pattern match + predicate filtering.
  util::Result<std::vector<core::AssocSet>> EvaluateBinding(
      const Query& query, const Binding& binding) const;

  /// The full-text engine, building it on first use.
  util::Result<const text::FullTextSearch*> EnsureSearch() const;

  const model::StoredDocument* doc_;
  core::IdrefGraph idrefs_;
  std::unique_ptr<LazySearch> lazy_;
  text::Thesaurus thesaurus_;
};

}  // namespace query
}  // namespace meetxml

#endif  // MEETXML_QUERY_EXECUTOR_H_
