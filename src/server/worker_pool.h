// Fixed worker pool executing queued jobs — the execution engine
// behind the meetxmld TCP front-end (pazpar2 hands socket events to a
// select-thread the same way: the event loop never blocks on work).
//
// Connections are scheduled as strands (tcp_server.cc): a connection
// re-submits itself while it has pending frames, so jobs from one
// connection never run concurrently while different connections spread
// across the pool.
//
// Instrumentation (WorkerPoolOptions::metrics): a queue-depth gauge
// plus queue-wait and execute histograms, stamped on the pool's
// injected clock — a saturated pool shows nonzero queue wait, an idle
// one zero, and tests pin both without sleeping (tests/obs_test.cc).

#ifndef MEETXML_SERVER_WORKER_POOL_H_
#define MEETXML_SERVER_WORKER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace meetxml {
namespace server {

/// \brief Worker pool knobs.
struct WorkerPoolOptions {
  /// Worker threads; util::ResolveThreads semantics (0 = hardware).
  unsigned threads = 0;
  /// Microsecond clock for queue-wait / execute timing. Null means
  /// obs::MonotonicMicros. Only read when `metrics` is set.
  std::function<uint64_t()> clock_us;
  /// Metrics sink; null disables all timing (no clock reads — the
  /// uninstrumented pool behaves exactly like before).
  obs::MetricsRegistry* metrics = nullptr;
  /// Queue cap honored by TrySubmit (0 = unbounded). Plain Submit
  /// ignores it: strand wakeups must never be dropped, so only callers
  /// that can shed (and tell the peer to retry) use the bounded path.
  size_t max_queue = 0;
};

/// \brief A fixed pool of worker threads draining a FIFO job queue.
class WorkerPool {
 public:
  /// \brief Spawns util::ResolveThreads(threads) workers, untimed.
  explicit WorkerPool(unsigned threads)
      : WorkerPool(WorkerPoolOptions{threads, {}, nullptr}) {}
  /// \brief Spawns workers; with options.metrics set, exports
  /// meetxml_worker_queue_depth, meetxml_worker_queue_wait_us and
  /// meetxml_worker_execute_us.
  explicit WorkerPool(WorkerPoolOptions options);
  /// \brief Drains the queue, then joins (Shutdown implied).
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// \brief Enqueues a job. Jobs submitted after Shutdown are dropped.
  void Submit(std::function<void()> job);

  /// \brief Bounded enqueue: refuses (returns false, job not queued)
  /// when the queue already holds options.max_queue jobs or the pool is
  /// shutting down — the overload-shedding intake. With max_queue == 0
  /// it only refuses after Shutdown.
  bool TrySubmit(std::function<void()> job);

  /// \brief Jobs currently queued (not the ones executing).
  size_t queue_depth() const;

  /// \brief Stops intake, runs every queued job to completion, joins
  /// the workers. Idempotent.
  void Shutdown();

  size_t worker_count() const { return workers_.size(); }

 private:
  struct Job {
    std::function<void()> fn;
    uint64_t enqueued_us = 0;
  };

  void WorkerLoop();
  uint64_t NowUs() const {
    return options_.clock_us ? options_.clock_us()
                             : obs::MonotonicMicros();
  }

  WorkerPoolOptions options_;
  // Resolved once at construction; null when metrics are off.
  obs::Gauge* queue_depth_ = nullptr;
  obs::Histogram* queue_wait_us_ = nullptr;
  obs::Histogram* execute_us_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace server
}  // namespace meetxml

#endif  // MEETXML_SERVER_WORKER_POOL_H_
