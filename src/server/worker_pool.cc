#include "server/worker_pool.h"

#include <utility>

#include "util/threads.h"

namespace meetxml {
namespace server {

WorkerPool::WorkerPool(unsigned threads) {
  unsigned count = util::ResolveThreads(threads);
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() { Shutdown(); }

void WorkerPool::Submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void WorkerPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void WorkerPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_, queue drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

}  // namespace server
}  // namespace meetxml
