// AB1 — ablation: pairwise LCA strategies.
//
// Compares the paper's path-steered meet2 walk against (a) the naive
// mark-and-walk LCA a system without path information would run, and
// (b) an Euler-tour + sparse-table RMQ structure with O(1) queries but
// O(n log n) preprocessing. Expected shape: steering beats the naive
// walk (no hashing of full ancestor chains); RMQ wins per query on
// dense pair workloads but pays a preprocessing + memory bill the
// paper's interactive, ad hoc setting avoids.

#include <benchmark/benchmark.h>

#include "core/lca_baselines.h"
#include "core/meet_pair.h"
#include "data/random_tree.h"
#include "model/shredder.h"
#include "util/rng.h"

using namespace meetxml;

namespace {

// One shared document per tree size, built lazily.
const model::StoredDocument& SharedDoc(int target_elements) {
  static std::map<int, model::StoredDocument>* docs =
      new std::map<int, model::StoredDocument>();
  auto it = docs->find(target_elements);
  if (it == docs->end()) {
    data::RandomTreeOptions options;
    options.seed = 424242;
    options.target_elements = target_elements;
    options.max_depth = 24;
    auto generated = data::GenerateRandomTree(options);
    MEETXML_CHECK_OK(generated.status());
    auto shredded = model::Shred(*generated);
    MEETXML_CHECK_OK(shredded.status());
    it = docs->emplace(target_elements, std::move(*shredded)).first;
  }
  return it->second;
}

std::vector<std::pair<bat::Oid, bat::Oid>> RandomPairs(
    const model::StoredDocument& doc, size_t count) {
  util::Rng rng(7);
  std::vector<std::pair<bat::Oid, bat::Oid>> pairs;
  pairs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    pairs.emplace_back(
        static_cast<bat::Oid>(rng.NextBelow(doc.node_count())),
        static_cast<bat::Oid>(rng.NextBelow(doc.node_count())));
  }
  return pairs;
}

void BM_MeetPairSteered(benchmark::State& state) {
  const auto& doc = SharedDoc(static_cast<int>(state.range(0)));
  auto pairs = RandomPairs(doc, 1024);
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ & 1023];
    auto meet = core::MeetPair(doc, a, b);
    benchmark::DoNotOptimize(meet);
  }
}
BENCHMARK(BM_MeetPairSteered)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_NaiveLca(benchmark::State& state) {
  const auto& doc = SharedDoc(static_cast<int>(state.range(0)));
  auto pairs = RandomPairs(doc, 1024);
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ & 1023];
    auto meet = core::NaiveLca(doc, a, b);
    benchmark::DoNotOptimize(meet);
  }
}
BENCHMARK(BM_NaiveLca)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_EulerRmqQuery(benchmark::State& state) {
  const auto& doc = SharedDoc(static_cast<int>(state.range(0)));
  static std::map<int, core::EulerRmqLca>* lcas =
      new std::map<int, core::EulerRmqLca>();
  auto it = lcas->find(static_cast<int>(state.range(0)));
  if (it == lcas->end()) {
    auto built = core::EulerRmqLca::Build(doc);
    MEETXML_CHECK_OK(built.status());
    it = lcas->emplace(static_cast<int>(state.range(0)),
                       std::move(*built)).first;
  }
  auto pairs = RandomPairs(doc, 1024);
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ & 1023];
    auto meet = it->second.Query(a, b);
    benchmark::DoNotOptimize(meet);
  }
  state.counters["prep_bytes"] =
      static_cast<double>(it->second.MemoryBytes());
}
BENCHMARK(BM_EulerRmqQuery)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_EulerRmqBuild(benchmark::State& state) {
  const auto& doc = SharedDoc(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto built = core::EulerRmqLca::Build(doc);
    benchmark::DoNotOptimize(built);
  }
}
BENCHMARK(BM_EulerRmqBuild)->Arg(1000)->Arg(10000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
