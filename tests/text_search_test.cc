// Tests for the tokenizer, inverted index and full-text search facade.

#include <gtest/gtest.h>

#include "core/meet_general.h"
#include "data/dblp_gen.h"
#include "data/paper_example.h"
#include "model/shredder.h"
#include "tests/test_util.h"
#include "text/search.h"
#include "text/tokenizer.h"

namespace meetxml {
namespace text {
namespace {

using meetxml::testing::MustShred;

// ---- Tokenizer ---------------------------------------------------------

TEST(Tokenizer, SplitsOnNonAlnum) {
  auto tokens = Tokenize("Hacking & RSI");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "hacking");
  EXPECT_EQ(tokens[1], "rsi");
}

TEST(Tokenizer, KeepsDigits) {
  auto tokens = Tokenize("ICDE 1999, pages 14-23");
  EXPECT_EQ(tokens, (std::vector<std::string>{"icde", "1999", "pages",
                                              "14", "23"}));
}

TEST(Tokenizer, RespectsMinLength) {
  TokenizerOptions options;
  options.min_token_length = 3;
  auto tokens = Tokenize("a bb ccc dddd", options);
  EXPECT_EQ(tokens, (std::vector<std::string>{"ccc", "dddd"}));
}

TEST(Tokenizer, CanPreserveCase) {
  TokenizerOptions options;
  options.fold_case = false;
  auto tokens = Tokenize("Ben Bit", options);
  EXPECT_EQ(tokens, (std::vector<std::string>{"Ben", "Bit"}));
}

TEST(Tokenizer, UniqueDeduplicates) {
  auto tokens = TokenizeUnique("a b a b c");
  EXPECT_EQ(tokens, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Tokenizer, EmptyInput) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("  ,;! ").empty());
}

// ---- Inverted index ------------------------------------------------------

TEST(InvertedIndex, IndexesCdataAndAttributes) {
  auto doc = MustShred(data::PaperExampleXml());
  auto index = InvertedIndex::Build(doc);
  ASSERT_TRUE(index.ok());
  EXPECT_FALSE(index->LookupWord("bit").empty());
  EXPECT_FALSE(index->LookupWord("BB99").empty());  // attribute value
  EXPECT_TRUE(index->LookupWord("absent").empty());
  EXPECT_GT(index->vocabulary_size(), 10u);
  EXPECT_GT(index->posting_count(), 0u);
}

TEST(InvertedIndex, WordLookupFoldsCase) {
  auto doc = MustShred(data::PaperExampleXml());
  auto index = InvertedIndex::Build(doc);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->LookupWord("BIT").size(),
            index->LookupWord("bit").size());
}

TEST(InvertedIndex, TrigramCandidatesAreSuperset) {
  auto doc = MustShred(data::PaperExampleXml());
  auto index = InvertedIndex::Build(doc);
  ASSERT_TRUE(index.ok());
  auto candidates = index->TrigramCandidates("Hack");
  ASSERT_TRUE(candidates.has_value());
  // "How to Hack" and "Hacking & RSI" both contain "Hack".
  EXPECT_GE(candidates->size(), 2u);
}

TEST(InvertedIndex, ShortNeedleFallsBackToScan) {
  auto doc = MustShred(data::PaperExampleXml());
  auto index = InvertedIndex::Build(doc);
  ASSERT_TRUE(index.ok());
  EXPECT_FALSE(index->TrigramCandidates("ab").has_value());
}

TEST(InvertedIndex, AbsentTrigramShortCircuits) {
  auto doc = MustShred(data::PaperExampleXml());
  auto index = InvertedIndex::Build(doc);
  ASSERT_TRUE(index.ok());
  auto candidates = index->TrigramCandidates("zzzqqq");
  ASSERT_TRUE(candidates.has_value());
  EXPECT_TRUE(candidates->empty());
}

TEST(InvertedIndex, PostingListsAreSortedAndUnique) {
  // The sort+unique finalize pass (and the lookup/intersection code
  // relying on it) requires every posting list — word and trigram — to
  // be strictly increasing. Repetition-heavy strings ("aaaa", repeated
  // words) exercise the within-string dedup.
  auto doc = MustShred(
      "<r><a>the the the aaaa bbbb the</a><a x=\"aaaa aaaa\">aaaa</a>"
      "<b>mississippi mississippi</b></r>");
  auto index = InvertedIndex::Build(doc);
  ASSERT_TRUE(index.ok());
  auto check = [](const std::vector<Posting>& postings) {
    for (size_t i = 1; i < postings.size(); ++i) {
      EXPECT_TRUE(postings[i - 1] < postings[i]);
    }
  };
  for (const auto& [word, postings] : index->words()) check(postings);
  for (const auto& [key, postings] : index->trigrams()) check(postings);

  data::DblpOptions dblp_options;
  dblp_options.end_year = 1987;
  auto dblp_xml = data::GenerateDblpXml(dblp_options);
  ASSERT_TRUE(dblp_xml.ok());
  auto dblp = InvertedIndex::Build(MustShred(*dblp_xml));
  ASSERT_TRUE(dblp.ok());
  for (const auto& [word, postings] : dblp->words()) check(postings);
  for (const auto& [key, postings] : dblp->trigrams()) check(postings);
}

// ---- Search facade -------------------------------------------------------

TEST(FullTextSearch, ContainsMatchesSubstrings) {
  auto doc = MustShred(data::PaperExampleXml());
  auto search = FullTextSearch::Build(doc);
  ASSERT_TRUE(search.ok());
  auto matches = search->Search("Hack", MatchMode::kContains);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->total(), 2u);  // both titles
}

TEST(FullTextSearch, ContainsIsCaseSensitive) {
  auto doc = MustShred(data::PaperExampleXml());
  auto search = FullTextSearch::Build(doc);
  ASSERT_TRUE(search.ok());
  auto exact = search->Search("hack", MatchMode::kContains);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact->total(), 0u);
  auto folded = search->Search("hack", MatchMode::kContainsIgnoreCase);
  ASSERT_TRUE(folded.ok());
  EXPECT_EQ(folded->total(), 2u);
}

TEST(FullTextSearch, WordModeMatchesWholeWordsOnly) {
  auto doc = MustShred(data::PaperExampleXml());
  auto search = FullTextSearch::Build(doc);
  ASSERT_TRUE(search.ok());
  auto word = search->Search("Hack", MatchMode::kWord);
  ASSERT_TRUE(word.ok());
  EXPECT_EQ(word->total(), 1u);  // "How to Hack" only, not "Hacking"
}

TEST(FullTextSearch, MatchesAttributeValues) {
  auto doc = MustShred(data::PaperExampleXml());
  auto search = FullTextSearch::Build(doc);
  ASSERT_TRUE(search.ok());
  auto matches = search->Search("BB99", MatchMode::kContains);
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->total(), 1u);
  // Attribute match owners are the elements carrying the attribute.
  const core::AssocSet& set = matches->sets.front();
  EXPECT_EQ(doc.paths().kind(set.path), model::StepKind::kAttribute);
  EXPECT_EQ(doc.tag(set.nodes.front()), "article");
}

TEST(FullTextSearch, GroupsMatchesByPath) {
  auto doc = MustShred(data::PaperExampleXml());
  auto search = FullTextSearch::Build(doc);
  ASSERT_TRUE(search.ok());
  // "1999" appears in two year cdatas (same path).
  auto matches = search->Search("1999", MatchMode::kContains);
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->sets.size(), 1u);
  EXPECT_EQ(matches->sets[0].nodes.size(), 2u);
}

TEST(FullTextSearch, PhraseMatchesConsecutiveWords) {
  auto doc = MustShred(data::PaperExampleXml());
  auto search = FullTextSearch::Build(doc);
  ASSERT_TRUE(search.ok());
  auto matches = search->Search("how to hack", MatchMode::kPhrase);
  ASSERT_TRUE(matches.ok()) << matches.status();
  EXPECT_EQ(matches->total(), 1u);
}

TEST(FullTextSearch, PhraseRequiresAdjacency) {
  auto doc = MustShred("<a><t>alpha beta gamma</t><t>alpha gamma</t></a>");
  auto search = FullTextSearch::Build(doc);
  ASSERT_TRUE(search.ok());
  auto adjacent = search->Search("alpha beta", MatchMode::kPhrase);
  ASSERT_TRUE(adjacent.ok());
  EXPECT_EQ(adjacent->total(), 1u);
  auto gapped = search->Search("alpha gamma", MatchMode::kPhrase);
  ASSERT_TRUE(gapped.ok());
  EXPECT_EQ(gapped->total(), 1u);  // second cdata only
  auto reversed = search->Search("beta alpha", MatchMode::kPhrase);
  ASSERT_TRUE(reversed.ok());
  EXPECT_EQ(reversed->total(), 0u);
}

TEST(FullTextSearch, PhraseFoldsCaseAndPunctuation) {
  auto doc = MustShred("<a><t>Hacking &amp; RSI</t></a>");
  auto search = FullTextSearch::Build(doc);
  ASSERT_TRUE(search.ok());
  auto matches = search->Search("hacking rsi", MatchMode::kPhrase);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->total(), 1u);
}

TEST(FullTextSearch, SingleWordPhraseEqualsWordSearch) {
  auto doc = MustShred(data::PaperExampleXml());
  auto search = FullTextSearch::Build(doc);
  ASSERT_TRUE(search.ok());
  auto phrase = search->Search("hack", MatchMode::kPhrase);
  auto word = search->Search("hack", MatchMode::kWord);
  ASSERT_TRUE(phrase.ok() && word.ok());
  EXPECT_EQ(phrase->total(), word->total());
}

TEST(FullTextSearch, PhraseWithNoIndexableWordsFails) {
  auto doc = MustShred("<a>x</a>");
  auto search = FullTextSearch::Build(doc);
  ASSERT_TRUE(search.ok());
  EXPECT_FALSE(search->Search("!!!", MatchMode::kPhrase).ok());
}

TEST(FullTextSearch, RejectsEmptyTerm) {
  auto doc = MustShred("<a>x</a>");
  auto search = FullTextSearch::Build(doc);
  ASSERT_TRUE(search.ok());
  EXPECT_FALSE(search->Search("", MatchMode::kContains).ok());
}

TEST(FullTextSearch, TrigramPathAgreesWithScan) {
  // The same query through the trigram fast path and the brute scan
  // must produce identical association sets.
  data::DblpOptions options;
  options.end_year = 1988;
  options.icde_papers_per_year = 10;
  options.other_papers_per_year = 30;
  options.journal_articles_per_year = 10;
  auto generated = data::GenerateDblp(options);
  ASSERT_TRUE(generated.ok());
  auto shredded = model::Shred(*generated);
  ASSERT_TRUE(shredded.ok());
  const model::StoredDocument& doc = *shredded;

  IndexOptions with;
  IndexOptions without;
  without.build_trigrams = false;
  auto fast = FullTextSearch::Build(doc, with);
  auto slow = FullTextSearch::Build(doc, without);
  ASSERT_TRUE(fast.ok() && slow.ok());

  for (const char* term : {"ICDE", "1986", "Press", "SIGMOD"}) {
    auto a = fast->Search(term, MatchMode::kContains);
    auto b = slow->Search(term, MatchMode::kContains);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->sets.size(), b->sets.size()) << term;
    for (size_t i = 0; i < a->sets.size(); ++i) {
      EXPECT_EQ(a->sets[i].path, b->sets[i].path);
      EXPECT_EQ(a->sets[i].nodes, b->sets[i].nodes);
    }
  }
}

// ---- End-to-end: the paper's §3.1 full-text + meet examples -------------

TEST(FullTextSearch, EndToEndBenBitMeetsAtAuthor) {
  auto doc = MustShred(data::PaperExampleXml());
  auto search = FullTextSearch::Build(doc);
  ASSERT_TRUE(search.ok());
  auto matches =
      search->SearchAll({"Ben", "Bit"}, MatchMode::kContains);
  ASSERT_TRUE(matches.ok());
  auto inputs = FullTextSearch::ToMeetInput(*matches);
  auto meets = core::MeetGeneral(doc, inputs);
  ASSERT_TRUE(meets.ok());
  ASSERT_EQ(meets->size(), 1u);
  EXPECT_EQ(doc.tag((*meets)[0].meet), "author");
}

TEST(FullTextSearch, EndToEndIcdeCaseStudyShape) {
  // A miniature of the paper's §5 case study: ICDE + year, root
  // excluded; results are exactly the ICDE publications of that year.
  data::DblpOptions options;
  options.end_year = 1990;
  options.icde_papers_per_year = 8;
  options.other_papers_per_year = 20;
  options.journal_articles_per_year = 5;
  auto generated = data::GenerateDblp(options);
  ASSERT_TRUE(generated.ok());
  auto shredded = model::Shred(*generated);
  ASSERT_TRUE(shredded.ok());
  const model::StoredDocument& doc = *shredded;
  auto search = FullTextSearch::Build(doc);
  ASSERT_TRUE(search.ok());

  auto matches =
      search->SearchAll({"ICDE", "1990"}, MatchMode::kContains);
  ASSERT_TRUE(matches.ok());
  auto inputs = FullTextSearch::ToMeetInput(*matches);
  auto meets =
      core::MeetGeneral(doc, inputs, core::ExcludeRootOptions(doc));
  ASSERT_TRUE(meets.ok());

  size_t icde_pubs = 0;
  for (const core::GeneralMeet& meet : *meets) {
    if (doc.is_cdata(meet.meet)) continue;
    if (doc.tag(meet.meet) == "inproceedings" ||
        doc.tag(meet.meet) == "proceedings") {
      ++icde_pubs;
    }
  }
  // 8 inproceedings + 1 proceedings entry for ICDE 1990.
  EXPECT_GE(icde_pubs, 8u);
}

}  // namespace
}  // namespace text
}  // namespace meetxml
