// Shared helpers for the test suites.

#ifndef MEETXML_TESTS_TEST_UTIL_H_
#define MEETXML_TESTS_TEST_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "model/document.h"
#include "model/shredder.h"

namespace meetxml {
namespace testing {

/// Shreds XML text, failing the test on any error.
inline model::StoredDocument MustShred(std::string_view xml_text) {
  auto result = model::ShredXmlText(xml_text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).ValueOrDie();
}

/// Finds the single node whose cdata text equals `text`; fails if the
/// count differs from one.
inline bat::Oid FindCdataNode(const model::StoredDocument& doc,
                              std::string_view text) {
  std::vector<bat::Oid> hits;
  for (bat::PathId path : doc.string_paths()) {
    if (doc.paths().kind(path) != model::StepKind::kCdata) continue;
    const auto& table = doc.StringsAt(path);
    for (size_t row = 0; row < table.size(); ++row) {
      if (table.tail(row) == text) hits.push_back(table.head(row));
    }
  }
  EXPECT_EQ(hits.size(), 1u) << "cdata '" << text << "'";
  return hits.empty() ? bat::kInvalidOid : hits.front();
}

/// Finds the first node whose tag equals `tag`, in OID (document) order,
/// skipping `skip` earlier hits.
inline bat::Oid FindElement(const model::StoredDocument& doc,
                            std::string_view tag, int skip = 0) {
  for (bat::Oid oid = 0; oid < doc.node_count(); ++oid) {
    if (!doc.is_cdata(oid) && doc.tag(oid) == tag) {
      if (skip == 0) return oid;
      --skip;
    }
  }
  ADD_FAILURE() << "no element <" << tag << ">";
  return bat::kInvalidOid;
}

/// Brute-force reference LCA via parent walks (no steering, no hashing).
inline bat::Oid ReferenceLca(const model::StoredDocument& doc, bat::Oid a,
                             bat::Oid b) {
  while (doc.depth(a) > doc.depth(b)) a = doc.parent(a);
  while (doc.depth(b) > doc.depth(a)) b = doc.parent(b);
  while (a != b) {
    a = doc.parent(a);
    b = doc.parent(b);
  }
  return a;
}

/// Brute-force reference distance (edges between two nodes).
inline int ReferenceDistance(const model::StoredDocument& doc, bat::Oid a,
                             bat::Oid b) {
  bat::Oid lca = ReferenceLca(doc, a, b);
  return static_cast<int>(doc.depth(a)) + static_cast<int>(doc.depth(b)) -
         2 * static_cast<int>(doc.depth(lca));
}

}  // namespace testing
}  // namespace meetxml

#endif  // MEETXML_TESTS_TEST_UTIL_H_
