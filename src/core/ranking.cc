#include "core/ranking.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace meetxml {
namespace core {

std::vector<RankedMeet> RankMeets(const StoredDocument& doc,
                                  std::vector<GeneralMeet> meets,
                                  const RankingOptions& options) {
  std::vector<RankedMeet> ranked;
  ranked.reserve(meets.size());
  for (GeneralMeet& meet : meets) {
    RankedMeet entry;
    std::unordered_set<size_t> sources;
    Oid lo = meet.witnesses.empty() ? 0
                                    : meet.witnesses.front().assoc.node;
    Oid hi = lo;
    for (const MeetWitness& witness : meet.witnesses) {
      size_t group = witness.source;
      if (options.source_groups != nullptr &&
          group < options.source_groups->size()) {
        group = (*options.source_groups)[group];
      }
      sources.insert(group);
      lo = std::min(lo, witness.assoc.node);
      hi = std::max(hi, witness.assoc.node);
    }
    entry.sources_covered = sources.size();
    entry.document_span = hi - lo;

    double score =
        options.witness_distance_weight * meet.witness_distance;
    score += options.document_span_weight *
             std::log2(1.0 + static_cast<double>(entry.document_span));
    score -= options.source_coverage_bonus *
             static_cast<double>(entry.sources_covered);
    score -= options.depth_bonus *
             static_cast<double>(doc.depth(meet.meet));
    entry.score = score;
    entry.meet = std::move(meet);
    ranked.push_back(std::move(entry));
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedMeet& a, const RankedMeet& b) {
              if (a.score != b.score) return a.score < b.score;
              return a.meet.meet < b.meet.meet;
            });
  return ranked;
}

std::vector<RankedMeet> FilterBySourceCoverage(
    std::vector<RankedMeet> ranked, size_t min_sources) {
  ranked.erase(std::remove_if(ranked.begin(), ranked.end(),
                              [min_sources](const RankedMeet& entry) {
                                return entry.sources_covered <
                                       min_sources;
                              }),
               ranked.end());
  return ranked;
}

}  // namespace core
}  // namespace meetxml
