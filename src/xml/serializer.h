// DOM-to-text serialization with proper escaping.

#ifndef MEETXML_XML_SERIALIZER_H_
#define MEETXML_XML_SERIALIZER_H_

#include <string>

#include "xml/dom.h"

namespace meetxml {
namespace xml {

/// \brief Serialization knobs.
struct SerializeOptions {
  /// Pretty-print with this many spaces per nesting level; 0 = compact
  /// one-line output.
  int indent = 0;
  /// Emit an `<?xml version="1.0"?>` declaration.
  bool emit_declaration = false;
};

/// \brief Serializes an element subtree.
std::string Serialize(const Node& node, const SerializeOptions& options = {});

/// \brief Serializes a whole document.
std::string Serialize(const Document& doc,
                      const SerializeOptions& options = {});

}  // namespace xml
}  // namespace meetxml

#endif  // MEETXML_XML_SERIALIZER_H_
