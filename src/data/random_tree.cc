#include "data/random_tree.h"

#include <string>
#include <vector>

#include "util/rng.h"

namespace meetxml {
namespace data {

using util::Result;
using util::Rng;
using util::Status;

namespace {

std::string TagName(int index) {
  // append instead of operator+("t", ...): the rvalue-string overload
  // trips a GCC 12 -Wrestrict false positive under heavy inlining.
  std::string out = "t";
  out += std::to_string(index);
  return out;
}

struct Budget {
  int remaining;
};

void Grow(xml::Node* node, Rng* rng, const RandomTreeOptions& options,
          int depth, Budget* budget) {
  if (rng->NextBool(options.attribute_prob)) {
    node->AddAttribute("a0", rng->NextWord(2, 8));
  }
  if (rng->NextBool(options.attribute_prob * 0.5)) {
    node->AddAttribute("a1", std::to_string(rng->NextInRange(0, 9999)));
  }
  if (rng->NextBool(options.text_prob)) {
    node->AddText(rng->NextWord(3, 10) + " " + rng->NextWord(3, 10));
  }
  if (depth >= options.max_depth || budget->remaining <= 0) return;

  int fanout = static_cast<int>(rng->NextInRange(0, options.max_fanout));
  for (int i = 0; i < fanout && budget->remaining > 0; ++i) {
    --budget->remaining;
    xml::Node* child = node->AddElement(
        TagName(static_cast<int>(rng->NextBelow(
            static_cast<uint64_t>(options.tag_vocabulary)))));
    Grow(child, rng, options, depth + 1, budget);
  }
}

}  // namespace

Result<xml::Document> GenerateRandomTree(const RandomTreeOptions& options) {
  if (options.target_elements < 1) {
    return Status::InvalidArgument("target_elements must be >= 1");
  }
  if (options.max_fanout < 1 || options.max_depth < 1 ||
      options.tag_vocabulary < 1) {
    return Status::InvalidArgument(
        "max_fanout, max_depth and tag_vocabulary must be >= 1");
  }

  Rng rng(options.seed);
  xml::Document doc;
  doc.root = xml::Node::MakeElement("root");
  Budget budget{options.target_elements - 1};
  // Keep growing from the root until the element budget is spent, so
  // small fan-out draws cannot starve the target size.
  Grow(doc.root.get(), &rng, options, 1, &budget);
  while (budget.remaining > 0) {
    --budget.remaining;
    xml::Node* child = doc.root->AddElement(
        TagName(static_cast<int>(rng.NextBelow(
            static_cast<uint64_t>(options.tag_vocabulary)))));
    Grow(child, &rng, options, 2, &budget);
  }
  return doc;
}

}  // namespace data
}  // namespace meetxml
