#include "store/multi_executor.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>
#include <utility>

#include "obs/metrics.h"
#include "query/parser.h"
#include "util/threads.h"

namespace meetxml {
namespace store {

using util::Result;
using util::Status;

namespace {

// Production proof of the top-k pruning: examined counts answers that
// were actually materialized across fan-outs, pruned counts qualifying
// answers skipped by limit pushdown, per-document heaps, or the shared
// distance ceiling.
obs::Counter* RowsExaminedCounter() {
  static obs::Counter* counter = &obs::MetricsRegistry::Global().counter(
      "meetxml_query_rows_examined_total");
  return counter;
}
obs::Counter* RowsPrunedCounter() {
  static obs::Counter* counter = &obs::MetricsRegistry::Global().counter(
      "meetxml_query_rows_pruned_total");
  return counter;
}

}  // namespace

std::string MultiResult::ToText() const {
  return query::RenderTable(columns, rows, truncated);
}

Result<MultiResult> MultiExecutor::Execute(
    std::string_view scope, const query::Query& query,
    const query::ExecuteOptions& options, obs::QueryTrace* trace) const {
  std::vector<std::string> names;
  {
    obs::TraceSpan route_span(trace, obs::Stage::kRoute);
    names = catalog_->MatchNames(scope);
  }
  if (names.empty()) {
    return Status::NotFound("scope '", scope,
                            "' matches no catalog document");
  }
  if (trace != nullptr) trace->SetDocs(names);

  // Resolve executors first (the catalog's lazy build is race-free),
  // then fan the read-only execution out across documents. First-touch
  // decode and index-build costs are attributed per document here.
  std::vector<const query::Executor*> executors;
  executors.reserve(names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    MEETXML_ASSIGN_OR_RETURN(
        const query::Executor* executor,
        catalog_->ExecutorFor(names[i], trace,
                              trace != nullptr ? trace->doc(i) : nullptr));
    executors.push_back(executor);
  }

  // A bounded answer is one the user (LIMIT) or the server (limit
  // hint) capped; everything below it is discardable. Only bounded
  // ranked queries stream — an unbounded query wants every row anyway,
  // and unranked rows carry no order to race a heap over.
  const bool rank_by_distance =
      !query.projections.empty() &&
      query.projections.front().kind == query::Projection::Kind::kMeet;
  const size_t user_limit =
      query.limit.has_value() ? static_cast<size_t>(*query.limit)
                              : std::numeric_limits<size_t>::max();
  size_t row_cap = std::min(options.max_rows, user_limit);
  if (options.limit_hint > 0) {
    row_cap = std::min(row_cap, options.limit_hint);
  }
  const bool bounded =
      query.limit.has_value() || options.limit_hint > 0;
  const bool streaming =
      rank_by_distance && bounded && !options.materialized_merge;

  // The global top-k heap of the streaming merge: worst row at the
  // front, ordered by the determinism pin's full key — (distance,
  // document index, row index) — so heap-top-k reproduces the legacy
  // stable sort byte for byte. Each entry owns its row cells, moved
  // out of the per-document result by the cursor.
  struct MergeRow {
    int distance;
    size_t doc;
    size_t row;
    std::vector<std::string> cells;
  };
  auto row_before = [](const MergeRow& a, const MergeRow& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    if (a.doc != b.doc) return a.doc < b.doc;
    return a.row < b.row;
  };
  std::vector<MergeRow> heap;
  std::mutex heap_mu;
  std::atomic<int> ceiling{std::numeric_limits<int>::max()};

  std::vector<Result<query::QueryResult>> outcomes(
      names.size(), Status::Internal("query did not run"));
  util::ParallelFor(names.size(), options.merge_threads, [&](size_t i) {
    if (!streaming) {
      if (trace == nullptr) {
        outcomes[i] = executors[i]->Execute(query, options);
        return;
      }
      // QueryTrace's stage accumulators are atomic, so concurrent
      // workers may add to kExecute; the per-doc slot is this worker's
      // alone until the fan-out joins.
      obs::DocTrace* doc = trace->doc(i);
      obs::TraceSpan execute_span(trace, obs::Stage::kExecute,
                                  &doc->execute_us);
      outcomes[i] = executors[i]->Execute(query, options);
      execute_span.Stop();
      if (outcomes[i].ok()) doc->rows = outcomes[i]->rows.size();
      return;
    }

    // Streaming leg: run this document under the shared distance
    // ceiling, then drain its cursor into the global heap. The relaxed
    // ceiling is a pure pruning hint — a stale read costs work, never
    // rows — so the merged answer stays exact.
    query::ExecuteOptions doc_options = options;
    doc_options.rank_ceiling = &ceiling;
    Result<query::RankedCursor> cursor =
        Status::Internal("query did not run");
    if (trace == nullptr) {
      cursor = executors[i]->ExecuteRanked(query, doc_options);
    } else {
      obs::DocTrace* doc = trace->doc(i);
      obs::TraceSpan execute_span(trace, obs::Stage::kExecute,
                                  &doc->execute_us);
      cursor = executors[i]->ExecuteRanked(query, doc_options);
      execute_span.Stop();
    }
    if (!cursor.ok()) {
      outcomes[i] = cursor.status();
      return;
    }
    size_t doc_rows = cursor->result().rows.size();
    {
      obs::TraceSpan merge_span(trace, obs::Stage::kMerge);
      std::lock_guard<std::mutex> lock(heap_mu);
      while (!cursor->Done() && row_cap > 0) {
        int distance = cursor->distance();
        size_t r = cursor->index();
        if (heap.size() >= row_cap) {
          const MergeRow& worst = heap.front();
          bool better =
              distance < worst.distance ||
              (distance == worst.distance &&
               (i < worst.doc || (i == worst.doc && r < worst.row)));
          // The cursor ascends in (distance, row): once one row loses
          // to the current worst, every later row of this document
          // loses too.
          if (!better) break;
          std::pop_heap(heap.begin(), heap.end(), row_before);
          heap.pop_back();
        }
        heap.push_back(MergeRow{distance, i, r, cursor->TakeRow()});
        std::push_heap(heap.begin(), heap.end(), row_before);
      }
      if (row_cap > 0 && heap.size() >= row_cap) {
        ceiling.store(heap.front().distance, std::memory_order_relaxed);
      }
    }
    query::QueryResult rest = std::move(*cursor).Consume();
    if (trace != nullptr) {
      obs::DocTrace* doc = trace->doc(i);
      doc->rows = doc_rows;
      doc->rows_examined = rest.meet_stats.meets_materialized;
      doc->rows_pruned = rest.meet_stats.meets_pruned;
    }
    outcomes[i] = std::move(rest);
  });

  obs::TraceSpan merge_span(trace, obs::Stage::kMerge);
  MultiResult merged;
  for (size_t i = 0; i < names.size(); ++i) {
    MEETXML_RETURN_NOT_OK(outcomes[i].status());
    DocumentResult entry;
    entry.id = catalog_->Find(names[i])->id;
    entry.name = names[i];
    entry.result = std::move(*outcomes[i]);
    merged.per_document.push_back(std::move(entry));
  }

  merged.columns.push_back("doc");
  const query::QueryResult& first = merged.per_document.front().result;
  merged.columns.insert(merged.columns.end(), first.columns.begin(),
                        first.columns.end());

  if (streaming) {
    std::sort(heap.begin(), heap.end(), row_before);
    // Micro-fix per the streaming contract: the heap already *is* the
    // final answer, so reserve exactly its size and move the cells —
    // no per-row string copies, no over-reservation.
    merged.rows.reserve(heap.size());
    for (MergeRow& ref : heap) {
      std::vector<std::string> row;
      row.reserve(1 + ref.cells.size());
      row.push_back(merged.per_document[ref.doc].name);
      for (std::string& cell : ref.cells) {
        row.push_back(std::move(cell));
      }
      merged.rows.push_back(std::move(row));
    }
  } else {
    // Materialized merge: MEET rows are globally re-ranked by the
    // paper's witness-distance heuristic (rows and meets are parallel
    // vectors in a MEET QueryResult); everything else keeps document
    // order.
    struct RowRef {
      int distance;
      size_t doc;
      size_t row;
    };
    std::vector<RowRef> order;
    for (size_t d = 0; d < merged.per_document.size(); ++d) {
      const query::QueryResult& result = merged.per_document[d].result;
      for (size_t r = 0; r < result.rows.size(); ++r) {
        int distance =
            rank_by_distance && r < result.meets.size()
                ? result.meets[r].witness_distance
                : 0;
        order.push_back(RowRef{distance, d, r});
      }
    }
    if (rank_by_distance) {
      std::stable_sort(order.begin(), order.end(),
                       [](const RowRef& a, const RowRef& b) {
                         return a.distance < b.distance;
                       });
    }
    merged.rows.reserve(std::min(order.size(), row_cap));
    for (const RowRef& ref : order) {
      if (merged.rows.size() >= row_cap) break;
      const DocumentResult& from = merged.per_document[ref.doc];
      std::vector<std::string> row;
      row.reserve(1 + from.result.rows[ref.row].size());
      row.push_back(from.name);
      row.insert(row.end(), from.result.rows[ref.row].begin(),
                 from.result.rows[ref.row].end());
      merged.rows.push_back(std::move(row));
    }
  }

  // Truncation means an *incomplete* answer: rows the user asked for
  // were dropped — provably (rows_found exceeds the emitted set) or
  // possibly (an enumeration guard cut counting short, so the row
  // comparison can't be trusted). Either way, an explicit LIMIT
  // satisfied exactly is a complete answer: the user asked for k rows
  // and got k. That also covers LIMIT 0, whose short-circuit skips
  // execution and leaves rows_found a lower bound (rows_found_exact
  // false).
  bool exact = true;
  for (const DocumentResult& entry : merged.per_document) {
    merged.rows_found += entry.result.rows_found;
    exact = exact && entry.result.rows_found_exact;
    if (rank_by_distance) {
      merged.rows_examined += entry.result.meet_stats.meets_materialized;
    } else {
      merged.rows_examined += entry.result.rows.size();
    }
  }
  if (merged.rows_found > merged.rows_examined) {
    merged.rows_pruned = merged.rows_found - merged.rows_examined;
  }
  merged.truncated = (!exact || merged.rows_found > merged.rows.size()) &&
                     merged.rows.size() < user_limit;
  RowsExaminedCounter()->Add(merged.rows_examined);
  RowsPrunedCounter()->Add(merged.rows_pruned);
  if (!streaming && trace != nullptr) {
    for (size_t i = 0; i < merged.per_document.size(); ++i) {
      const query::QueryResult& result = merged.per_document[i].result;
      obs::DocTrace* doc = trace->doc(i);
      doc->rows_examined = rank_by_distance
                               ? result.meet_stats.meets_materialized
                               : result.rows.size();
      uint64_t doc_found = result.rows_found;
      doc->rows_pruned = doc_found > doc->rows_examined
                             ? doc_found - doc->rows_examined
                             : 0;
    }
  }
  return merged;
}

Result<MultiResult> MultiExecutor::ExecuteText(
    std::string_view scope, std::string_view query_text,
    const query::ExecuteOptions& options, obs::QueryTrace* trace) const {
  obs::TraceSpan parse_span(trace, obs::Stage::kParse);
  Result<query::Query> query = query::ParseQuery(query_text);
  parse_span.Stop();
  MEETXML_RETURN_NOT_OK(query.status());
  return Execute(scope, *query, options, trace);
}

Result<std::vector<CrossMatch>> MultiExecutor::FindEverywhere(
    std::string_view source, bat::Oid subtree, std::string_view scope,
    const text::CrossFindOptions& options) const {
  const NamedDocument* source_entry = catalog_->Find(source);
  if (source_entry == nullptr) {
    return Status::NotFound("no document named '", source,
                            "' in the catalog");
  }
  // Get() materializes and validates a lazily-opened source before
  // its columns are walked below.
  MEETXML_ASSIGN_OR_RETURN(const model::StoredDocument* source_doc,
                           catalog_->Get(source));
  if (subtree >= source_doc->node_count()) {
    return Status::NotFound("no node with OID ", subtree, " in '",
                            source, "'");
  }

  std::vector<std::string> scoped = catalog_->MatchNames(scope);
  if (scoped.empty()) {
    // Same contract as Execute: an empty scope is almost always a
    // typo'd glob, not "no concepts found". (A scope matching only the
    // source legitimately yields zero targets below.)
    return Status::NotFound("scope '", scope,
                            "' matches no catalog document");
  }
  std::vector<std::string> targets;
  for (std::string& name : scoped) {
    if (name != source_entry->name) targets.push_back(std::move(name));
  }
  std::vector<const query::Executor*> executors;
  executors.reserve(targets.size());
  for (const std::string& name : targets) {
    MEETXML_ASSIGN_OR_RETURN(const query::Executor* executor,
                             catalog_->ExecutorFor(name));
    executors.push_back(executor);
  }

  // The per-target probe forces the target's full-text engine; running
  // it inside the fan-out parallelizes those index builds too (the
  // executor's lazy build is thread-safe).
  std::vector<Result<std::vector<core::GeneralMeet>>> outcomes(
      targets.size(), Status::Internal("probe did not run"));
  util::ParallelFor(targets.size(), 0, [&](size_t i) {
    Result<const text::FullTextSearch*> search =
        executors[i]->TextSearch();
    if (!search.ok()) {
      outcomes[i] = search.status();
      return;
    }
    outcomes[i] = text::FindInOtherDocument(
        *source_doc, subtree, executors[i]->doc(), **search,
        options);
  });

  std::vector<CrossMatch> matches;
  for (size_t i = 0; i < targets.size(); ++i) {
    MEETXML_RETURN_NOT_OK(outcomes[i].status());
    DocId id = catalog_->Find(targets[i])->id;
    for (core::GeneralMeet& meet : *outcomes[i]) {
      matches.push_back(CrossMatch{id, targets[i], std::move(meet)});
    }
  }
  std::stable_sort(matches.begin(), matches.end(),
                   [](const CrossMatch& a, const CrossMatch& b) {
                     return a.meet.witness_distance <
                            b.meet.witness_distance;
                   });
  return matches;
}

}  // namespace store
}  // namespace meetxml
