#include "xml/dom.h"

namespace meetxml {
namespace xml {

std::unique_ptr<Node> Node::MakeElement(std::string tag) {
  auto node = std::unique_ptr<Node>(new Node(NodeKind::kElement));
  node->tag_ = std::move(tag);
  return node;
}

std::unique_ptr<Node> Node::MakeText(std::string text) {
  auto node = std::unique_ptr<Node>(new Node(NodeKind::kText));
  node->text_ = std::move(text);
  return node;
}

std::unique_ptr<Node> Node::MakeComment(std::string text) {
  auto node = std::unique_ptr<Node>(new Node(NodeKind::kComment));
  node->text_ = std::move(text);
  return node;
}

std::unique_ptr<Node> Node::MakeProcessingInstruction(std::string target,
                                                      std::string data) {
  auto node =
      std::unique_ptr<Node>(new Node(NodeKind::kProcessingInstruction));
  node->tag_ = std::move(target);
  node->text_ = std::move(data);
  return node;
}

void Node::AddAttribute(std::string name, std::string value) {
  attributes_.push_back(Attribute{std::move(name), std::move(value)});
}

const std::string* Node::FindAttribute(std::string_view name) const {
  for (const Attribute& attr : attributes_) {
    if (attr.name == name) return &attr.value;
  }
  return nullptr;
}

Node* Node::AddChild(std::unique_ptr<Node> child) {
  children_.push_back(std::move(child));
  return children_.back().get();
}

Node* Node::AddElement(std::string tag) {
  return AddChild(MakeElement(std::move(tag)));
}

Node* Node::AddText(std::string text) {
  return AddChild(MakeText(std::move(text)));
}

Node* Node::AddElementWithText(std::string tag, std::string text) {
  Node* element = AddElement(std::move(tag));
  element->AddText(std::move(text));
  return element;
}

size_t Node::CountElementChildren() const {
  size_t n = 0;
  for (const auto& child : children_) {
    if (child->is_element()) ++n;
  }
  return n;
}

const Node* Node::FindChild(std::string_view tag) const {
  for (const auto& child : children_) {
    if (child->is_element() && child->tag() == tag) return child.get();
  }
  return nullptr;
}

std::string Node::CollectText() const {
  std::string out;
  if (is_text()) {
    out = text_;
    return out;
  }
  for (const auto& child : children_) {
    if (child->is_text()) {
      out.append(child->text());
    } else if (child->is_element()) {
      out.append(child->CollectText());
    }
  }
  return out;
}

size_t Node::SubtreeSize() const {
  size_t n = 1;
  for (const auto& child : children_) n += child->SubtreeSize();
  return n;
}

}  // namespace xml
}  // namespace meetxml
