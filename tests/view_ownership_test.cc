// Ownership-semantics tests for the zero-copy (view-mode) load path:
// view- and copy-mode documents are indistinguishable to every reader,
// queries return byte-identical rows, and the first mutation promotes
// a borrowed structure to owned storage (copy-on-write) without
// disturbing other borrowers of the same image.

#include <filesystem>
#include <memory>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "data/paper_example.h"
#include "model/reassembly.h"
#include "model/shredder.h"
#include "model/storage_io.h"
#include "query/executor.h"
#include "store/catalog.h"
#include "text/index_io.h"
#include "tests/test_util.h"

namespace meetxml {
namespace model {
namespace {

using meetxml::testing::MustShred;

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// The default (DOC2) image of the paper example, long-lived so
// view-backed documents in these tests can borrow from it.
const std::string& PaperImage() {
  static const std::string* image = [] {
    auto bytes = SaveToBytes(MustShred(data::PaperExampleXml()));
    MEETXML_CHECK_OK(bytes.status());
    return new std::string(std::move(*bytes));
  }();
  return *image;
}

StoredDocument MustLoad(std::string_view bytes, LoadMode mode,
                        LoadStats* stats = nullptr) {
  LoadOptions options;
  options.mode = mode;
  options.stats = stats;
  auto loaded = LoadFromBytes(bytes, options);
  MEETXML_CHECK_OK(loaded.status());
  return std::move(*loaded);
}

TEST(ViewOwnership, ViewAndCopyModeDocumentsCompareEqual) {
  LoadStats view_stats;
  StoredDocument copied = MustLoad(PaperImage(), LoadMode::kCopy);
  StoredDocument viewed = MustLoad(PaperImage(), LoadMode::kView,
                                   &view_stats);

  EXPECT_FALSE(copied.view_backed());
  EXPECT_TRUE(viewed.view_backed());
  EXPECT_EQ(view_stats.mode_used, LoadMode::kView);
  EXPECT_EQ(view_stats.bytes_copied, 0u);

  ASSERT_EQ(viewed.node_count(), copied.node_count());
  ASSERT_EQ(viewed.string_count(), copied.string_count());
  for (Oid oid = 0; oid < copied.node_count(); ++oid) {
    EXPECT_EQ(viewed.parent(oid), copied.parent(oid));
    EXPECT_EQ(viewed.path(oid), copied.path(oid));
    EXPECT_EQ(viewed.rank(oid), copied.rank(oid));
  }
  for (PathId path : copied.string_paths()) {
    EXPECT_EQ(viewed.StringsAt(path), copied.StringsAt(path));
  }
  // Reassembly — which walks relations, attributes and the append
  // order — agrees byte for byte.
  auto copied_xml = ReassembleToXml(copied, copied.root(), 0);
  auto viewed_xml = ReassembleToXml(viewed, viewed.root(), 0);
  ASSERT_TRUE(copied_xml.ok() && viewed_xml.ok());
  EXPECT_EQ(*viewed_xml, *copied_xml);
}

TEST(ViewOwnership, QueriesReturnByteIdenticalRows) {
  StoredDocument copied = MustLoad(PaperImage(), LoadMode::kCopy);
  StoredDocument viewed = MustLoad(PaperImage(), LoadMode::kView);
  auto copied_executor = query::Executor::Build(copied);
  auto viewed_executor = query::Executor::Build(viewed);
  ASSERT_TRUE(copied_executor.ok() && viewed_executor.ok());

  const char* queries[] = {
      "SELECT MEET(a, b) FROM bibliography//cdata a, bibliography//cdata b"
      " WHERE a CONTAINS 'Bit' AND b CONTAINS '1999'",
      "SELECT XML(e) FROM bibliography/entry e",
      "SELECT PATH(x) FROM bibliography//* x LIMIT 20",
  };
  for (const char* text : queries) {
    auto from_copy = copied_executor->ExecuteText(text);
    auto from_view = viewed_executor->ExecuteText(text);
    ASSERT_TRUE(from_copy.ok()) << from_copy.status();
    ASSERT_TRUE(from_view.ok()) << from_view.status();
    EXPECT_EQ(from_view->ToText(), from_copy->ToText()) << text;
  }
}

TEST(ViewOwnership, AppendStringPromotesTheTouchedRelationOnly) {
  StoredDocument viewed = MustLoad(PaperImage(), LoadMode::kView);
  ASSERT_TRUE(viewed.view_backed());
  ASSERT_FALSE(viewed.string_paths().empty());
  PathId touched = viewed.string_paths().front();
  size_t rows_before = viewed.StringsAt(touched).size();

  viewed.AppendString(touched, viewed.root(), "added after view load");
  // Copy-on-write: the touched relation is now owned...
  EXPECT_FALSE(viewed.StringsAt(touched).is_view());
  EXPECT_EQ(viewed.StringsAt(touched).size(), rows_before + 1);
  // ...while untouched relations keep borrowing (and the document
  // overall stays pinned to its backing).
  bool any_view = false;
  for (PathId path : viewed.string_paths()) {
    if (viewed.StringsAt(path).is_view()) any_view = true;
  }
  EXPECT_TRUE(any_view);
  EXPECT_TRUE(viewed.view_backed());

  // The mutated document re-finalizes and round-trips bit-identically
  // to the same mutation applied to a copy-mode load.
  MEETXML_CHECK_OK(viewed.Finalize());
  StoredDocument copied = MustLoad(PaperImage(), LoadMode::kCopy);
  copied.AppendString(touched, copied.root(), "added after view load");
  MEETXML_CHECK_OK(copied.Finalize());
  auto viewed_bytes = SaveToBytes(viewed);
  auto copied_bytes = SaveToBytes(copied);
  ASSERT_TRUE(viewed_bytes.ok() && copied_bytes.ok());
  EXPECT_EQ(*viewed_bytes, *copied_bytes);
}

TEST(ViewOwnership, EnsureOwnedDetachesTheWholeDocument) {
  // Load from a scoped buffer, promote, destroy the buffer: the
  // document must not reference it anymore.
  auto buffer = std::make_unique<std::string>(PaperImage());
  StoredDocument viewed = MustLoad(*buffer, LoadMode::kView);
  ASSERT_TRUE(viewed.view_backed());
  viewed.EnsureOwned();
  EXPECT_FALSE(viewed.view_backed());
  EXPECT_EQ(viewed.backing(), nullptr);
  buffer.reset();

  auto reserialized = SaveToBytes(viewed);
  ASSERT_TRUE(reserialized.ok());
  EXPECT_EQ(*reserialized, PaperImage());
}

TEST(ViewOwnership, FileLoadPinsTheMappingPastTheLoaderScope) {
  std::string path = TempPath("meetxml_view_pin.mxm");
  MEETXML_CHECK_OK(SaveToFile(MustShred(data::PaperExampleXml()), path));

  LoadOptions options;
  options.mode = LoadMode::kView;
  auto loaded = LoadFromFile(path, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->view_backed());
  EXPECT_NE(loaded->backing(), nullptr);

  // Overwrite AND remove the file: the document still reads through
  // its pinned mapping of the old inode (saves are atomic renames).
  MEETXML_CHECK_OK(SaveToFile(MustShred("<other>doc</other>"), path));
  std::filesystem::remove(path);
  auto reserialized = SaveToBytes(*loaded);
  ASSERT_TRUE(reserialized.ok());
  EXPECT_EQ(*reserialized, PaperImage());
}

TEST(ViewOwnership, CatalogViewLoadRoundTripsAcrossSaves) {
  std::string path = TempPath("meetxml_view_catalog.mxm");
  std::string other_path = TempPath("meetxml_view_catalog_copy.mxm");
  {
    store::Catalog catalog;
    ASSERT_TRUE(
        catalog.Add("paper", MustShred(data::PaperExampleXml())).ok());
    ASSERT_TRUE(catalog.Add("tiny", MustShred("<a><b>x</b></a>")).ok());
    MEETXML_CHECK_OK(catalog.SaveToFile(path));
  }

  store::CatalogLoadStats stats;
  store::CatalogLoadOptions options;
  options.mode = LoadMode::kView;
  options.stats = &stats;
  auto catalog = store::Catalog::LoadFromFile(path, options);
  ASSERT_TRUE(catalog.ok()) << catalog.status();
  ASSERT_EQ(stats.documents.size(), 2u);
  for (const auto& doc_stats : stats.documents) {
    EXPECT_EQ(doc_stats.mode, LoadMode::kView) << doc_stats.name;
    EXPECT_EQ(doc_stats.bytes_copied, 0u) << doc_stats.name;
    EXPECT_GT(doc_stats.bytes_viewed, 0u) << doc_stats.name;
  }

  auto original_bytes = catalog->SaveToBytes();
  ASSERT_TRUE(original_bytes.ok());

  // Save to a different path, then over the original path; the
  // view-backed documents keep borrowing from the pinned mapping
  // through both, and a reload of either copy agrees byte for byte.
  MEETXML_CHECK_OK(catalog->SaveToFile(other_path));
  MEETXML_CHECK_OK(catalog->SaveToFile(path));
  auto reloaded = store::Catalog::LoadFromFile(other_path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  auto reloaded_bytes = reloaded->SaveToBytes();
  ASSERT_TRUE(reloaded_bytes.ok());
  EXPECT_EQ(*reloaded_bytes, *original_bytes);

  // Mutating the catalog after the view load: adding a document and
  // re-serializing keeps every borrowed entry bit-identical.
  auto added = MustShred("<c><d>y</d></c>");
  ASSERT_TRUE(catalog->Add("third", std::move(added)).ok());
  auto grown_bytes = catalog->SaveToBytes();
  ASSERT_TRUE(grown_bytes.ok());
  auto grown = store::Catalog::LoadFromBytes(*grown_bytes);
  ASSERT_TRUE(grown.ok()) << grown.status();
  EXPECT_EQ(grown->size(), 3u);
  EXPECT_NE(grown->Find("paper"), nullptr);

  std::filesystem::remove(path);
  std::filesystem::remove(other_path);
}

TEST(ViewOwnership, PersistentStoreViewLoadServesTextQueries) {
  std::string path = TempPath("meetxml_view_store.mxm");
  StoredDocument doc = MustShred(data::PaperExampleXml());
  auto index = text::InvertedIndex::Build(doc);
  ASSERT_TRUE(index.ok());
  MEETXML_CHECK_OK(text::SaveStoreToFile(doc, &*index, path));

  LoadOptions options;
  options.mode = LoadMode::kView;
  auto store = text::LoadStoreFromFile(path, options);
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_TRUE(store->doc.view_backed());
  ASSERT_TRUE(store->index.has_value());

  auto executor = query::Executor::Build(
      store->doc, text::FullTextSearch::WithIndex(store->doc,
                                                  std::move(*store->index)));
  ASSERT_TRUE(executor.ok()) << executor.status();
  auto result = executor->ExecuteText(
      "SELECT MEET(a, b) FROM bibliography//cdata a, bibliography//cdata b"
      " WHERE a CONTAINS 'Bit' AND b CONTAINS '1999'");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->rows.empty());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace model
}  // namespace meetxml
