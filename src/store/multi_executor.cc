#include "store/multi_executor.h"

#include <algorithm>
#include <utility>

#include "query/parser.h"
#include "util/threads.h"

namespace meetxml {
namespace store {

using util::Result;
using util::Status;

std::string MultiResult::ToText() const {
  return query::RenderTable(columns, rows, truncated);
}

Result<MultiResult> MultiExecutor::Execute(
    std::string_view scope, const query::Query& query,
    const query::ExecuteOptions& options, obs::QueryTrace* trace) const {
  std::vector<std::string> names;
  {
    obs::TraceSpan route_span(trace, obs::Stage::kRoute);
    names = catalog_->MatchNames(scope);
  }
  if (names.empty()) {
    return Status::NotFound("scope '", scope,
                            "' matches no catalog document");
  }
  if (trace != nullptr) trace->SetDocs(names);

  // Resolve executors first (the catalog's lazy build is race-free),
  // then fan the read-only execution out across documents. First-touch
  // decode and index-build costs are attributed per document here.
  std::vector<const query::Executor*> executors;
  executors.reserve(names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    MEETXML_ASSIGN_OR_RETURN(
        const query::Executor* executor,
        catalog_->ExecutorFor(names[i], trace,
                              trace != nullptr ? trace->doc(i) : nullptr));
    executors.push_back(executor);
  }

  std::vector<Result<query::QueryResult>> outcomes(
      names.size(), Status::Internal("query did not run"));
  util::ParallelFor(names.size(), 0, [&](size_t i) {
    if (trace == nullptr) {
      outcomes[i] = executors[i]->Execute(query, options);
      return;
    }
    // QueryTrace's stage accumulators are atomic, so concurrent
    // workers may add to kExecute; the per-doc slot is this worker's
    // alone until the fan-out joins.
    obs::DocTrace* doc = trace->doc(i);
    obs::TraceSpan execute_span(trace, obs::Stage::kExecute,
                                &doc->execute_us);
    outcomes[i] = executors[i]->Execute(query, options);
    execute_span.Stop();
    if (outcomes[i].ok()) doc->rows = outcomes[i]->rows.size();
  });

  obs::TraceSpan merge_span(trace, obs::Stage::kMerge);
  MultiResult merged;
  for (size_t i = 0; i < names.size(); ++i) {
    MEETXML_RETURN_NOT_OK(outcomes[i].status());
    DocumentResult entry;
    entry.id = catalog_->Find(names[i])->id;
    entry.name = names[i];
    entry.result = std::move(*outcomes[i]);
    merged.truncated = merged.truncated || entry.result.truncated;
    merged.per_document.push_back(std::move(entry));
  }

  merged.columns.push_back("doc");
  const query::QueryResult& first = merged.per_document.front().result;
  merged.columns.insert(merged.columns.end(), first.columns.begin(),
                        first.columns.end());

  // Merge order: MEET rows are globally re-ranked by the paper's
  // witness-distance heuristic (rows and meets are parallel vectors in
  // a MEET QueryResult); everything else keeps document order.
  bool rank_by_distance =
      !query.projections.empty() &&
      query.projections.front().kind == query::Projection::Kind::kMeet;
  struct RowRef {
    int distance;
    size_t doc;
    size_t row;
  };
  std::vector<RowRef> order;
  for (size_t d = 0; d < merged.per_document.size(); ++d) {
    const query::QueryResult& result = merged.per_document[d].result;
    for (size_t r = 0; r < result.rows.size(); ++r) {
      int distance =
          rank_by_distance && r < result.meets.size()
              ? result.meets[r].witness_distance
              : 0;
      order.push_back(RowRef{distance, d, r});
    }
  }
  if (rank_by_distance) {
    std::stable_sort(order.begin(), order.end(),
                     [](const RowRef& a, const RowRef& b) {
                       return a.distance < b.distance;
                     });
  }

  size_t row_cap = options.max_rows;
  if (query.limit.has_value()) {
    row_cap = std::min(row_cap, static_cast<size_t>(*query.limit));
  }
  merged.rows.reserve(std::min(order.size(), row_cap));
  for (const RowRef& ref : order) {
    if (merged.rows.size() >= row_cap) {
      merged.truncated = true;
      break;
    }
    const DocumentResult& from = merged.per_document[ref.doc];
    std::vector<std::string> row;
    row.reserve(1 + from.result.rows[ref.row].size());
    row.push_back(from.name);
    row.insert(row.end(), from.result.rows[ref.row].begin(),
               from.result.rows[ref.row].end());
    merged.rows.push_back(std::move(row));
  }
  return merged;
}

Result<MultiResult> MultiExecutor::ExecuteText(
    std::string_view scope, std::string_view query_text,
    const query::ExecuteOptions& options, obs::QueryTrace* trace) const {
  obs::TraceSpan parse_span(trace, obs::Stage::kParse);
  Result<query::Query> query = query::ParseQuery(query_text);
  parse_span.Stop();
  MEETXML_RETURN_NOT_OK(query.status());
  return Execute(scope, *query, options, trace);
}

Result<std::vector<CrossMatch>> MultiExecutor::FindEverywhere(
    std::string_view source, bat::Oid subtree, std::string_view scope,
    const text::CrossFindOptions& options) const {
  const NamedDocument* source_entry = catalog_->Find(source);
  if (source_entry == nullptr) {
    return Status::NotFound("no document named '", source,
                            "' in the catalog");
  }
  // Get() materializes and validates a lazily-opened source before
  // its columns are walked below.
  MEETXML_ASSIGN_OR_RETURN(const model::StoredDocument* source_doc,
                           catalog_->Get(source));
  if (subtree >= source_doc->node_count()) {
    return Status::NotFound("no node with OID ", subtree, " in '",
                            source, "'");
  }

  std::vector<std::string> scoped = catalog_->MatchNames(scope);
  if (scoped.empty()) {
    // Same contract as Execute: an empty scope is almost always a
    // typo'd glob, not "no concepts found". (A scope matching only the
    // source legitimately yields zero targets below.)
    return Status::NotFound("scope '", scope,
                            "' matches no catalog document");
  }
  std::vector<std::string> targets;
  for (std::string& name : scoped) {
    if (name != source_entry->name) targets.push_back(std::move(name));
  }
  std::vector<const query::Executor*> executors;
  executors.reserve(targets.size());
  for (const std::string& name : targets) {
    MEETXML_ASSIGN_OR_RETURN(const query::Executor* executor,
                             catalog_->ExecutorFor(name));
    executors.push_back(executor);
  }

  // The per-target probe forces the target's full-text engine; running
  // it inside the fan-out parallelizes those index builds too (the
  // executor's lazy build is thread-safe).
  std::vector<Result<std::vector<core::GeneralMeet>>> outcomes(
      targets.size(), Status::Internal("probe did not run"));
  util::ParallelFor(targets.size(), 0, [&](size_t i) {
    Result<const text::FullTextSearch*> search =
        executors[i]->TextSearch();
    if (!search.ok()) {
      outcomes[i] = search.status();
      return;
    }
    outcomes[i] = text::FindInOtherDocument(
        *source_doc, subtree, executors[i]->doc(), **search,
        options);
  });

  std::vector<CrossMatch> matches;
  for (size_t i = 0; i < targets.size(); ++i) {
    MEETXML_RETURN_NOT_OK(outcomes[i].status());
    DocId id = catalog_->Find(targets[i])->id;
    for (core::GeneralMeet& meet : *outcomes[i]) {
      matches.push_back(CrossMatch{id, targets[i], std::move(meet)});
    }
  }
  std::stable_sort(matches.begin(), matches.end(),
                   [](const CrossMatch& a, const CrossMatch& b) {
                     return a.meet.witness_distance <
                            b.meet.witness_distance;
                   });
  return matches;
}

}  // namespace store
}  // namespace meetxml
