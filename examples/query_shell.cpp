// Interactive query shell over an XML file (or the built-in example).
//
// Run:  ./query_shell [file.xml]
//
// Commands:
//   .paths            show the path summary (the relation catalog)
//   .stats            document statistics
//   .explain <query>  show the binding plan without executing
//   .help             grammar cheat sheet
//   .quit             exit
//   <query>           e.g.  SELECT MEET(a, b) FROM doc//cdata a,
//                            doc//cdata b WHERE a CONTAINS 'x'
//                            AND b CONTAINS 'y'

#include <cstdio>
#include <iostream>
#include <string>

#include "data/paper_example.h"
#include "model/shredder.h"
#include "model/stats.h"
#include "query/executor.h"

using namespace meetxml;  // example code; the library itself never does this

namespace {

void PrintHelp() {
  std::printf(R"(Grammar:
  SELECT <proj> FROM <pattern> [AS] <var> (, ...)
         [WHERE <predicates: AND/OR/NOT over
                 var CONTAINS|ICONTAINS|WORD|PHRASE|SYNONYM 'str',
                 var = 'str', DISTANCE(v1, v2) <= k>]
         [EXCLUDE <pattern> (, ...)] [WITHIN k] [LIMIT n]
  proj:    var | MEET(v...) | ANCESTORS(v...) | GMEET(v1, v2)
           | TAG(v) | PATH(v) | XML(v) | COUNT(v)
  pattern: tag/tag, * (any tag), // (any depth), @attr, cdata
Example:
  SELECT MEET(o1, o2) FROM bibliography//cdata o1,
    bibliography//cdata o2
    WHERE o1 CONTAINS 'Bit' AND o2 CONTAINS '1999'
)");
}

}  // namespace

int main(int argc, char** argv) {
  util::Result<model::StoredDocument> doc_result =
      argc > 1 ? model::ShredXmlFile(argv[1])
               : model::ShredXmlText(data::PaperExampleXml());
  if (!doc_result.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 doc_result.status().ToString().c_str());
    return 1;
  }
  const model::StoredDocument& doc = *doc_result;
  auto executor_result = query::Executor::Build(doc);
  MEETXML_CHECK_OK(executor_result.status());
  const query::Executor& executor = *executor_result;

  std::printf("meetxml shell — %zu nodes, %zu paths. Type .help for the "
              "grammar, .quit to exit.\n",
              doc.node_count(), doc.paths().size());

  std::string line;
  while (true) {
    std::printf("meet> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == ".quit" || line == ".exit") break;
    if (line == ".help") {
      PrintHelp();
      continue;
    }
    if (line == ".stats") {
      auto stats = model::ComputeStats(doc);
      if (stats.ok()) {
        std::printf("%s", model::RenderStats(*stats, 15).c_str());
      }
      continue;
    }
    if (line == ".paths") {
      for (bat::PathId id = 0; id < doc.paths().size(); ++id) {
        std::printf("  %s\n", doc.paths().ToString(id).c_str());
      }
      continue;
    }
    if (line.rfind(".explain ", 0) == 0) {
      auto plan = executor.ExplainText(line.substr(9));
      if (plan.ok()) {
        std::printf("%s", plan->c_str());
      } else {
        std::printf("error: %s\n", plan.status().ToString().c_str());
      }
      continue;
    }
    auto result = executor.ExecuteText(line);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    std::printf("%s(%zu rows)\n", result->ToText().c_str(),
                result->rows.size());
  }
  return 0;
}
