// Object reassembly: the inverse of the Monet transform (paper §2,
// "we 're-assemble' an object with OID o from those associations whose
// first component is o"). Turns a meet result OID back into a DOM
// subtree / XML text the user can read.

#ifndef MEETXML_MODEL_REASSEMBLY_H_
#define MEETXML_MODEL_REASSEMBLY_H_

#include <memory>
#include <string>

#include "model/document.h"
#include "util/result.h"
#include "xml/dom.h"

namespace meetxml {
namespace model {

/// \brief Rebuilds the DOM subtree rooted at `node` from the stored
/// associations. The document must be finalized.
util::Result<std::unique_ptr<xml::Node>> Reassemble(
    const StoredDocument& doc, Oid node);

/// \brief Reassembles and serializes in one step (pretty-printed when
/// `indent > 0`).
util::Result<std::string> ReassembleToXml(const StoredDocument& doc,
                                          Oid node, int indent = 2);

/// \brief One-line description of a node for query answers: its tag and
/// path, e.g. `article <bibliography/institute/article>`.
std::string DescribeNode(const StoredDocument& doc, Oid node);

}  // namespace model
}  // namespace meetxml

#endif  // MEETXML_MODEL_REASSEMBLY_H_
