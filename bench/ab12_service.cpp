// AB12 — ablation: the meetxmld service under closed-loop load.
//
// N client threads drive one shared QueryService through the
// in-process transport (the full protocol codec, no sockets), each
// issuing its next query as soon as the previous answer lands — the
// classic closed loop. Measured: aggregate throughput
// (items_per_second) and per-request latency percentiles (p50/p99
// counters, microseconds) as the client count grows 1 -> 8.
//
// Expected shape: the catalog's concurrent read path (const executors,
// pre-warmed indexes, no per-session copies) lets throughput scale
// with cores while p50 stays near the single-client service time;
// p99 growth beyond the core count is queueing, not locking. The
// sockets-free transport isolates dispatch + execution + protocol
// codec — the part this repo owns — from kernel TCP behavior.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "data/dblp_gen.h"
#include "model/shredder.h"
#include "server/service.h"
#include "store/catalog.h"

using namespace meetxml;

namespace {

constexpr int kDocs = 4;
constexpr int kQueriesPerClient = 25;

// The mixed workload of the concurrency suite: structural lookups,
// full-text meets, and a cross-scope nearest-concept query.
const char* const kQueries[] = {
    "SELECT MEET(a, b) FROM dblp//cdata a, dblp//cdata b "
    "WHERE a CONTAINS 'ICDE' AND b CONTAINS '1981' EXCLUDE dblp",
    "SELECT MEET(a, b) FROM dblp//title/cdata a, dblp//year/cdata b "
    "WHERE a CONTAINS 'database' AND b CONTAINS '1982' LIMIT 10",
    "SELECT MEET(a, b) FROM dblp//cdata a, dblp//cdata b "
    "WHERE a CONTAINS 'Author5' AND b CONTAINS 'SIGMOD' "
    "EXCLUDE dblp LIMIT 20",
};
constexpr int kQueryCount = 3;

const store::Catalog& SharedCatalog() {
  static store::Catalog* catalog = [] {
    auto* out = new store::Catalog;
    for (int i = 0; i < kDocs; ++i) {
      data::DblpOptions options;
      options.start_year = 1980 + 2 * i;
      options.end_year = options.start_year + 1;
      options.icde_papers_per_year = 20;
      options.other_papers_per_year = 40;
      options.journal_articles_per_year = 20;
      auto xml_text = data::GenerateDblpXml(options);
      MEETXML_CHECK_OK(xml_text.status());
      auto doc = model::ShredXmlText(*xml_text);
      MEETXML_CHECK_OK(doc.status());
      MEETXML_CHECK_OK(
          out->Add("dblp_" + std::to_string(i), std::move(*doc)).status());
    }
    MEETXML_CHECK_OK(out->Warm(/*build_text_indexes=*/true));
    return out;
  }();
  return *catalog;
}

void BM_ServiceClosedLoop(benchmark::State& state) {
  int clients = static_cast<int>(state.range(0));
  server::QueryService service(&SharedCatalog());
  std::vector<double> latencies_us;
  for (auto _ : state) {
    std::vector<std::vector<double>> per_client(clients);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&service, &per_client, c] {
        auto client = server::InProcessClient::Connect(&service);
        MEETXML_CHECK_OK(client.status());
        MEETXML_CHECK_OK(client->Hello().status());
        per_client[c].reserve(kQueriesPerClient);
        for (int q = 0; q < kQueriesPerClient; ++q) {
          const char* query = kQueries[(c + q) % kQueryCount];
          // Every client also rotates through scopes so the service
          // sees single-document and fan-out requests interleaved.
          const char* scope = (q % 4 == 0) ? "dblp_0" : "*";
          auto start = std::chrono::steady_clock::now();
          auto response = client->Query(scope, query);
          auto stop = std::chrono::steady_clock::now();
          MEETXML_CHECK_OK(response.status());
          per_client[c].push_back(
              std::chrono::duration<double, std::micro>(stop - start)
                  .count());
        }
        MEETXML_CHECK_OK(client->Bye());
      });
    }
    for (std::thread& thread : threads) thread.join();
    for (const std::vector<double>& batch : per_client) {
      latencies_us.insert(latencies_us.end(), batch.begin(), batch.end());
    }
  }
  std::sort(latencies_us.begin(), latencies_us.end());
  auto percentile = [&](double p) {
    if (latencies_us.empty()) return 0.0;
    size_t at = static_cast<size_t>(p * (latencies_us.size() - 1));
    return latencies_us[at];
  };
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(clients) *
                          kQueriesPerClient);
  state.counters["clients"] = clients;
  state.counters["p50_us"] = percentile(0.50);
  state.counters["p99_us"] = percentile(0.99);
}
BENCHMARK(BM_ServiceClosedLoop)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
