// Result<T>: value-or-Status, the return type of fallible producers.

#ifndef MEETXML_UTIL_RESULT_H_
#define MEETXML_UTIL_RESULT_H_

#include <utility>
#include <variant>

#include "util/status.h"

namespace meetxml {
namespace util {

/// \brief Holds either a successfully produced T or a non-OK Status.
///
/// Mirrors arrow::Result. Typical use:
/// \code
///   Result<Document> ParseFile(std::string_view path);
///   ...
///   MEETXML_ASSIGN_OR_RETURN(Document doc, ParseFile(p));
/// \endcode
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit by design, like arrow::Result).
  Result(T value) : state_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status. Aborts if `status` is OK, because an
  /// OK Result must carry a value.
  Result(Status status)  // NOLINT(runtime/explicit)
      : state_(std::move(status)) {
    if (std::get<Status>(state_).ok()) {
      Status::Internal("Result constructed from OK status").Abort("Result");
    }
  }

  bool ok() const { return std::holds_alternative<T>(state_); }

  /// \brief The status: OK() when a value is present.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(state_);
  }

  /// \brief The contained value; aborts if this Result holds an error.
  const T& ValueOrDie() const& {
    EnsureOk();
    return std::get<T>(state_);
  }
  T& ValueOrDie() & {
    EnsureOk();
    return std::get<T>(state_);
  }
  T ValueOrDie() && {
    EnsureOk();
    return std::move(std::get<T>(state_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// \brief Moves the value out, or returns `alternative` on error.
  T ValueOr(T alternative) && {
    if (!ok()) return alternative;
    return std::move(std::get<T>(state_));
  }

 private:
  void EnsureOk() const {
    if (!ok()) std::get<Status>(state_).Abort("Result::ValueOrDie");
  }

  std::variant<Status, T> state_;
};

}  // namespace util
}  // namespace meetxml

#define MEETXML_CONCAT_IMPL(a, b) a##b
#define MEETXML_CONCAT(a, b) MEETXML_CONCAT_IMPL(a, b)

/// \brief Evaluates `rexpr` (a Result<T>); on error returns the Status, on
/// success binds the value to `lhs` (a declaration, e.g. `auto v`).
#define MEETXML_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  MEETXML_ASSIGN_OR_RETURN_IMPL(                                    \
      MEETXML_CONCAT(_result_tmp_, __LINE__), lhs, rexpr)

#define MEETXML_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).ValueOrDie()

#endif  // MEETXML_UTIL_RESULT_H_
