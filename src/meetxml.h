// Umbrella header: the whole public API in one include.
//
//   #include "meetxml.h"
//
//   auto doc  = meetxml::model::ShredXmlFile("data.xml");
//   auto exec = meetxml::query::Executor::Build(*doc);
//   auto res  = exec->ExecuteText("SELECT MEET(a, b) FROM ...");
//
// Fine-grained includes remain available for targeted dependencies;
// see README.md for the layering.

#ifndef MEETXML_MEETXML_H_
#define MEETXML_MEETXML_H_

// Utilities.
#include "util/byte_io.h"
#include "util/file_io.h"
#include "util/mmap_file.h"
#include "util/net.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/threads.h"
#include "util/timer.h"

// Observability: metrics registry and query-stage tracing.
#include "obs/metrics.h"
#include "obs/trace.h"

// XML parsing and serialization.
#include "xml/dom.h"
#include "xml/escape.h"
#include "xml/parser.h"
#include "xml/sax.h"
#include "xml/serializer.h"

// BAT kernel.
#include "bat/bat.h"
#include "bat/oid.h"
#include "bat/ops.h"

// Data model and storage.
#include "model/bulk_load.h"
#include "model/document.h"
#include "model/path_summary.h"
#include "model/reassembly.h"
#include "model/shredder.h"
#include "model/stats.h"
#include "model/storage_io.h"
#include "model/validate.h"

// Full-text search.
#include "text/cross_document.h"
#include "text/index_io.h"
#include "text/inverted_index.h"
#include "text/search.h"
#include "text/thesaurus.h"
#include "text/tokenizer.h"

// The meet operators.
#include "core/browse.h"
#include "core/idref.h"
#include "core/input_set.h"
#include "core/lca_baselines.h"
#include "core/meet_general.h"
#include "core/meet_general_relational.h"
#include "core/meet_pair.h"
#include "core/meet_set.h"
#include "core/ranking.h"
#include "core/restrictions.h"

// Query language.
#include "query/ast.h"
#include "query/executor.h"
#include "query/lexer.h"
#include "query/parser.h"
#include "query/path_match.h"

// Multi-document store.
#include "store/catalog.h"
#include "store/multi_executor.h"

// The meetxmld query service.
#include "server/protocol.h"
#include "server/service.h"
#include "server/session.h"
#include "server/tcp_server.h"
#include "server/worker_pool.h"

#endif  // MEETXML_MEETXML_H_
