#include "server/protocol.h"

#include <utility>

#include "util/byte_io.h"

namespace meetxml {
namespace server {

using util::ByteReader;
using util::ByteWriter;
using util::Result;
using util::Status;
using util::StatusCode;

namespace {

bool KnownOpcode(uint8_t raw) {
  return raw >= static_cast<uint8_t>(Opcode::kHello) &&
         raw <= static_cast<uint8_t>(Opcode::kBye);
}

bool KnownStatusCode(uint64_t raw) {
  return raw >= static_cast<uint64_t>(StatusCode::kInvalidArgument) &&
         raw <= static_cast<uint64_t>(StatusCode::kUnavailable);
}

Status CheckDrained(const ByteReader& reader, std::string_view what) {
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after ", what);
  }
  return Status::OK();
}

}  // namespace

std::string EncodeFrame(std::string_view payload) {
  ByteWriter out;
  out.U32(static_cast<uint32_t>(payload.size()));
  out.Bytes(payload);
  return out.Take();
}

std::string EncodeRequest(const Request& request) {
  ByteWriter out;
  out.U8(static_cast<uint8_t>(request.opcode));
  switch (request.opcode) {
    case Opcode::kHello:
      out.Varint(request.protocol_version);
      break;
    case Opcode::kQuery:
      out.StrVarint(request.scope);
      out.StrVarint(request.query);
      break;
    case Opcode::kPing:
    case Opcode::kStats:
    case Opcode::kBye:
      break;
  }
  return out.Take();
}

Result<Request> DecodeRequest(std::string_view payload) {
  ByteReader reader(payload);
  MEETXML_ASSIGN_OR_RETURN(uint8_t raw_opcode, reader.U8());
  if (!KnownOpcode(raw_opcode)) {
    return Status::InvalidArgument("unknown request opcode ", raw_opcode);
  }
  Request request;
  request.opcode = static_cast<Opcode>(raw_opcode);
  switch (request.opcode) {
    case Opcode::kHello: {
      MEETXML_ASSIGN_OR_RETURN(request.protocol_version, reader.Varint());
      break;
    }
    case Opcode::kQuery: {
      MEETXML_ASSIGN_OR_RETURN(request.scope, reader.StrVarint());
      MEETXML_ASSIGN_OR_RETURN(request.query, reader.StrVarint());
      break;
    }
    case Opcode::kPing:
    case Opcode::kStats:
    case Opcode::kBye:
      break;
  }
  MEETXML_RETURN_NOT_OK(CheckDrained(reader, "request"));
  return request;
}

std::string EncodeResponse(const Response& response) {
  ByteWriter out;
  out.U8(response.ok ? 0 : 1);
  out.U8(static_cast<uint8_t>(response.opcode));
  if (!response.ok) {
    out.Varint(static_cast<uint64_t>(response.code));
    out.StrVarint(response.message);
    return out.Take();
  }
  switch (response.opcode) {
    case Opcode::kHello:
      out.Varint(response.session_id);
      out.StrVarint(response.banner);
      break;
    case Opcode::kQuery:
      out.Varint(response.row_count);
      out.U8(response.truncated ? 1 : 0);
      out.StrVarint(response.table);
      break;
    case Opcode::kStats:
      out.Varint(response.stats.sessions_active);
      out.Varint(response.stats.queries_served);
      out.Varint(response.stats.request_errors);
      out.Varint(response.stats.sessions_evicted);
      break;
    case Opcode::kPing:
    case Opcode::kBye:
      break;
  }
  return out.Take();
}

std::string EncodeErrorResponse(Opcode opcode, const Status& status) {
  Response response;
  response.ok = false;
  response.opcode = opcode;
  response.code = status.code();
  response.message = status.message();
  return EncodeResponse(response);
}

Result<Response> DecodeResponse(std::string_view payload) {
  ByteReader reader(payload);
  MEETXML_ASSIGN_OR_RETURN(uint8_t raw_status, reader.U8());
  if (raw_status > 1) {
    return Status::InvalidArgument("unknown response status ", raw_status);
  }
  MEETXML_ASSIGN_OR_RETURN(uint8_t raw_opcode, reader.U8());
  if (!KnownOpcode(raw_opcode)) {
    return Status::InvalidArgument("unknown response opcode ", raw_opcode);
  }
  Response response;
  response.ok = raw_status == 0;
  response.opcode = static_cast<Opcode>(raw_opcode);
  if (!response.ok) {
    MEETXML_ASSIGN_OR_RETURN(uint64_t raw_code, reader.Varint());
    if (!KnownStatusCode(raw_code)) {
      return Status::InvalidArgument("unknown status code ", raw_code);
    }
    response.code = static_cast<StatusCode>(raw_code);
    MEETXML_ASSIGN_OR_RETURN(response.message, reader.StrVarint());
    MEETXML_RETURN_NOT_OK(CheckDrained(reader, "error response"));
    return response;
  }
  switch (response.opcode) {
    case Opcode::kHello: {
      MEETXML_ASSIGN_OR_RETURN(response.session_id, reader.Varint());
      MEETXML_ASSIGN_OR_RETURN(response.banner, reader.StrVarint());
      break;
    }
    case Opcode::kQuery: {
      MEETXML_ASSIGN_OR_RETURN(response.row_count, reader.Varint());
      MEETXML_ASSIGN_OR_RETURN(uint8_t truncated, reader.U8());
      if (truncated > 1) {
        return Status::InvalidArgument("bad truncated flag ", truncated);
      }
      response.truncated = truncated == 1;
      MEETXML_ASSIGN_OR_RETURN(response.table, reader.StrVarint());
      break;
    }
    case Opcode::kStats: {
      MEETXML_ASSIGN_OR_RETURN(response.stats.sessions_active,
                               reader.Varint());
      MEETXML_ASSIGN_OR_RETURN(response.stats.queries_served,
                               reader.Varint());
      MEETXML_ASSIGN_OR_RETURN(response.stats.request_errors,
                               reader.Varint());
      MEETXML_ASSIGN_OR_RETURN(response.stats.sessions_evicted,
                               reader.Varint());
      break;
    }
    case Opcode::kPing:
    case Opcode::kBye:
      break;
  }
  MEETXML_RETURN_NOT_OK(CheckDrained(reader, "response"));
  return response;
}

Result<std::optional<std::string>> FrameBuffer::Next() {
  // Compact lazily: keeping a cursor instead of erasing per frame
  // makes pipelined bursts O(bytes), not O(frames * bytes).
  if (pos_ > 0 && pos_ == buffer_.size()) {
    buffer_.clear();
    pos_ = 0;
  }
  if (buffered() < 4) return std::optional<std::string>();
  uint32_t length = DecodeFrameLength(buffer_.data() + pos_);
  if (length == 0) {
    return Status::InvalidArgument("zero-length frame");
  }
  if (length > kMaxFrameBytes) {
    return Status::ResourceExhausted("frame of ", length,
                                     " bytes exceeds the ",
                                     kMaxFrameBytes, "-byte limit");
  }
  if (buffered() < 4 + static_cast<size_t>(length)) {
    return std::optional<std::string>();
  }
  std::string payload = buffer_.substr(pos_ + 4, length);
  pos_ += 4 + static_cast<size_t>(length);
  if (pos_ == buffer_.size() || pos_ >= kMaxFrameBytes) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  return std::optional<std::string>(std::move(payload));
}

}  // namespace server
}  // namespace meetxml
