#include "core/meet_pair.h"

namespace meetxml {
namespace core {

using util::Result;
using util::Status;

namespace {

Status ValidateAssoc(const StoredDocument& doc, const Assoc& a,
                     const char* which) {
  if (a.node >= doc.node_count()) {
    return Status::NotFound("meet input ", which, ": no node with OID ",
                            a.node);
  }
  if (a.path >= doc.paths().size()) {
    return Status::NotFound("meet input ", which, ": no path with id ",
                            a.path);
  }
  // For non-attribute paths the association's path must be the node's own
  // path; for attribute paths it must be an attribute arc of the node.
  if (doc.paths().kind(a.path) == model::StepKind::kAttribute) {
    if (doc.paths().parent(a.path) != doc.path(a.node)) {
      return Status::InvalidArgument(
          "meet input ", which,
          ": attribute path does not belong to the node's element path");
    }
  } else if (doc.path(a.node) != a.path) {
    return Status::InvalidArgument("meet input ", which,
                                   ": path does not match node's path");
  }
  return Status::OK();
}

}  // namespace

Result<PairMeet> MeetPair(const StoredDocument& doc, const Assoc& a,
                          const Assoc& b) {
  MEETXML_RETURN_NOT_OK(ValidateAssoc(doc, a, "left"));
  MEETXML_RETURN_NOT_OK(ValidateAssoc(doc, b, "right"));

  Assoc left = a;
  Assoc right = b;
  int joins = 0;
  // Steered walk: the side whose current path is deeper lifts first; on
  // equal depth both lift. Terminates because depths strictly decrease
  // and both walks end at the root.
  while (!(left == right)) {
    uint32_t dl = AssocDepth(doc, left);
    uint32_t dr = AssocDepth(doc, right);
    if (dl > dr) {
      left = Lift(doc, left);
      ++joins;
    } else if (dr > dl) {
      right = Lift(doc, right);
      ++joins;
    } else {
      if (dl <= 1) {
        // Both at root level but different — impossible in a tree with a
        // single root element.
        return Status::Internal("meet walk reached two distinct roots");
      }
      left = Lift(doc, left);
      right = Lift(doc, right);
      joins += 2;
    }
  }
  return PairMeet{left.node, joins};
}

Result<PairMeet> MeetPair(const StoredDocument& doc, Oid a, Oid b) {
  if (a >= doc.node_count() || b >= doc.node_count()) {
    return Status::NotFound("meet input OID out of range");
  }
  return MeetPair(doc, AssocForNode(doc, a), AssocForNode(doc, b));
}

Result<int> Distance(const StoredDocument& doc, const Assoc& a,
                     const Assoc& b) {
  MEETXML_ASSIGN_OR_RETURN(PairMeet meet, MeetPair(doc, a, b));
  return meet.joins;
}

Result<int> Distance(const StoredDocument& doc, Oid a, Oid b) {
  MEETXML_ASSIGN_OR_RETURN(PairMeet meet, MeetPair(doc, a, b));
  return meet.joins;
}

Result<std::optional<PairMeet>> MeetPairWithin(const StoredDocument& doc,
                                               const Assoc& a,
                                               const Assoc& b,
                                               int max_distance) {
  if (max_distance < 0) {
    return Status::InvalidArgument("max_distance must be non-negative");
  }
  MEETXML_ASSIGN_OR_RETURN(PairMeet meet, MeetPair(doc, a, b));
  if (meet.joins > max_distance) return std::optional<PairMeet>();
  return std::optional<PairMeet>(meet);
}

}  // namespace core
}  // namespace meetxml
