// The Monet transform: shredding a DOM tree into per-path BAT relations
// (paper Definition 4, "bulk load" of §5's case study).

#ifndef MEETXML_MODEL_SHREDDER_H_
#define MEETXML_MODEL_SHREDDER_H_

#include <string_view>

#include "model/document.h"
#include "util/result.h"
#include "xml/dom.h"

namespace meetxml {
namespace model {

/// \brief Shredding knobs.
struct ShredOptions {
  /// Skip cdata nodes whose text is all-whitespace (defensive; the parser
  /// usually already discards them).
  bool skip_whitespace_cdata = true;
};

/// \brief Shreds a parsed DOM into a finalized StoredDocument.
///
/// OIDs are assigned in depth-first order; attributes become
/// (element, value) associations at `<path>/@name`; each text node
/// becomes a cdata node with its own OID plus a (cdata, text) string
/// association at `<path>/cdata`. Comments and PIs are ignored — they
/// are not part of the paper's data model.
util::Result<StoredDocument> Shred(const xml::Document& doc,
                                   const ShredOptions& options = {});

/// \brief Convenience: parse + shred in one step.
util::Result<StoredDocument> ShredXmlText(std::string_view xml_text,
                                          const ShredOptions& options = {});

/// \brief Streaming bulk load: shreds directly from the SAX event
/// stream without materializing a DOM. Produces a document identical to
/// ShredXmlText's but with roughly half the peak memory — the
/// production path for large corpora (the paper bulk-loads a 200 MB
/// file and the full DBLP).
util::Result<StoredDocument> ShredXmlTextStreaming(
    std::string_view xml_text, const ShredOptions& options = {});

/// \brief Convenience: read file + parse + shred.
util::Result<StoredDocument> ShredXmlFile(const std::string& path,
                                          const ShredOptions& options = {});

}  // namespace model
}  // namespace meetxml

#endif  // MEETXML_MODEL_SHREDDER_H_
