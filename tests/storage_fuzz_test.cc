// Fuzz-style corruption tests for the storage image loader: every
// truncation, every single-byte flip and a battery of crafted headers
// must be rejected cleanly (no crash, no partially applied document)
// for both MXM1 and MXM2 images — the teeth behind the versioning
// policy documented in model/storage_io.h.

#include <cstdint>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "data/paper_example.h"
#include "model/storage_io.h"
#include "store/catalog.h"
#include "text/index_io.h"
#include "text/inverted_index.h"
#include "tests/test_util.h"

namespace meetxml {
namespace model {
namespace {

using meetxml::testing::MustShred;

std::string Image(uint32_t format_version) {
  StoredDocument doc = MustShred(data::PaperExampleXml());
  SaveOptions options;
  options.format_version = format_version;
  auto bytes = SaveToBytes(doc, options);
  EXPECT_TRUE(bytes.ok()) << bytes.status();
  return *bytes;
}

class StorageFuzz : public ::testing::TestWithParam<uint32_t> {};

TEST_P(StorageFuzz, EveryTruncationFails) {
  std::string bytes = Image(GetParam());
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    auto loaded = LoadFromBytes(std::string_view(bytes).substr(0, cut));
    EXPECT_FALSE(loaded.ok()) << "cut at " << cut << " of " << bytes.size();
  }
}

TEST_P(StorageFuzz, EveryByteFlipFails) {
  // In a doc-only image every byte is load-bearing: magic, version and
  // directory flips trip structural checks, payload flips trip the
  // section checksum. Flip every byte through three masks. The one
  // legal exception: an MXM2 minor-field flip can land on another
  // accepted minor (2 <-> 3, minors are backward compatible by
  // policy), in which case the load must succeed with the document
  // fully intact.
  StoredDocument original = MustShred(data::PaperExampleXml());
  std::string bytes = Image(GetParam());
  for (uint8_t mask : {0x01, 0x40, 0xff}) {
    for (size_t at = 0; at < bytes.size(); ++at) {
      std::string corrupt = bytes;
      corrupt[at] = static_cast<char>(corrupt[at] ^ mask);
      auto loaded = LoadFromBytes(corrupt);
      bool minor_field = GetParam() == 2 && at >= 4 && at < 8;
      if (loaded.ok()) {
        EXPECT_TRUE(minor_field)
            << "flip mask " << int(mask) << " at " << at;
        EXPECT_EQ(loaded->node_count(), original.node_count());
        EXPECT_EQ(loaded->string_count(), original.string_count());
      }
    }
  }
}

TEST_P(StorageFuzz, PseudoRandomMutationsNeverCrash) {
  // Deterministic LCG mutations: multi-byte scribbles anywhere in the
  // image. Anything but a clean error is a bug; loads must never
  // crash, hang or hand back a half-built document.
  std::string bytes = Image(GetParam());
  uint64_t state = 0x9e3779b97f4a7c15ULL + GetParam();
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  for (int round = 0; round < 500; ++round) {
    std::string corrupt = bytes;
    size_t edits = 1 + next() % 8;
    for (size_t e = 0; e < edits; ++e) {
      corrupt[next() % corrupt.size()] =
          static_cast<char>(next() & 0xff);
    }
    auto loaded = LoadFromBytes(corrupt);
    if (loaded.ok()) {
      // Only reachable if the scribbles reproduced the original bytes;
      // a loaded document is always fully finalized.
      EXPECT_TRUE(loaded->finalized());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Formats, StorageFuzz, ::testing::Values(1u, 2u),
                         [](const auto& info) {
                           return info.param == 1 ? "MXM1" : "MXM2";
                         });

TEST(StorageFuzzCrafted, BadMagicAndHeaders) {
  EXPECT_FALSE(LoadFromBytes("").ok());
  EXPECT_FALSE(LoadFromBytes("MXM").ok());
  EXPECT_FALSE(LoadFromBytes("MXM3????????????").ok());
  EXPECT_FALSE(LoadFromBytes(std::string("MXM2") +
                             std::string(8, '\0'))
                   .ok());  // version 0
  std::string zero_sections = "MXM2";
  zero_sections += std::string{2, 0, 0, 0};  // version 2
  zero_sections += std::string(4, '\0');     // zero sections
  EXPECT_FALSE(LoadFromBytes(zero_sections).ok());
  // Huge section count must be rejected before any allocation.
  std::string huge = "MXM2";
  huge += std::string{2, 0, 0, 0};              // version 2
  huge += std::string{'\xff', '\xff', '\xff', '\xff'};  // section count
  EXPECT_FALSE(LoadFromBytes(huge).ok());
}

TEST(StorageFuzzCrafted, WriterRejectsUnloadableSectionSets) {
  // Images the loader would refuse must fail at save time, not at the
  // next restart.
  StoredDocument doc = MustShred("<a><b>x</b></a>");
  SaveOptions dup_doc;
  dup_doc.extra_sections.push_back(ImageSection{kDocumentSectionId, "x"});
  EXPECT_FALSE(SaveToBytes(doc, dup_doc).ok());

  SaveOptions dup_id;
  dup_id.extra_sections.push_back(ImageSection{kTextIndexSectionId, "x"});
  dup_id.extra_sections.push_back(ImageSection{kTextIndexSectionId, "y"});
  EXPECT_FALSE(SaveToBytes(doc, dup_id).ok());
}

TEST(StorageFuzzCrafted, BadSectionLengths) {
  StoredDocument doc = MustShred(data::PaperExampleXml());
  auto index = text::InvertedIndex::Build(doc);
  ASSERT_TRUE(index.ok());
  auto bytes = text::SaveStoreToBytes(doc, &*index);
  ASSERT_TRUE(bytes.ok());

  // The DOC0 size field lives at offset 4+4+4+4 = 16 (u64). Growing or
  // shrinking it must fail: either the payloads no longer tile the
  // image or a checksum breaks.
  for (int64_t delta : {-1000, -1, 1, 1000}) {
    std::string corrupt = *bytes;
    uint64_t size;
    std::memcpy(&size, corrupt.data() + 16, 8);
    size = static_cast<uint64_t>(static_cast<int64_t>(size) + delta);
    std::memcpy(corrupt.data() + 16, &size, 8);
    EXPECT_FALSE(LoadFromBytes(corrupt).ok()) << "delta " << delta;
    EXPECT_FALSE(text::LoadStoreFromBytes(corrupt).ok());
  }
}

TEST(StorageFuzzCrafted, WithIndexSectionFlipsNeverCrash) {
  // With a TIDX section aboard, a flip can land in the section id and
  // legally degrade the image to doc-only (unknown sections are
  // skipped by design). So: never crash, and when the load succeeds
  // the document — and the index, if still recognized — are intact.
  StoredDocument doc = MustShred(data::PaperExampleXml());
  auto index = text::InvertedIndex::Build(doc);
  ASSERT_TRUE(index.ok());
  auto bytes = text::SaveStoreToBytes(doc, &*index);
  ASSERT_TRUE(bytes.ok());

  for (size_t at = 0; at < bytes->size(); ++at) {
    std::string corrupt = *bytes;
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0x40);
    auto store = text::LoadStoreFromBytes(corrupt);
    if (store.ok()) {
      EXPECT_TRUE(store->doc.finalized());
      EXPECT_EQ(store->doc.node_count(), doc.node_count());
      if (store->index.has_value()) {
        EXPECT_EQ(store->index->posting_count(), index->posting_count());
      }
    }
  }
}

// --- Catalog (CTLG) images --------------------------------------------

std::string CatalogImage() {
  store::Catalog catalog;
  StoredDocument first = MustShred(data::PaperExampleXml());
  auto index = text::InvertedIndex::Build(first);
  EXPECT_TRUE(index.ok());
  EXPECT_TRUE(
      catalog.Add("paper", std::move(first), std::move(*index)).ok());
  EXPECT_TRUE(
      catalog.Add("tiny", MustShred("<a><b>x</b><b>y</b></a>")).ok());
  auto bytes = catalog.SaveToBytes();
  EXPECT_TRUE(bytes.ok()) << bytes.status();
  return *bytes;
}

TEST(CatalogFuzz, EveryTruncationFails) {
  std::string bytes = CatalogImage();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    auto loaded =
        store::Catalog::LoadFromBytes(std::string_view(bytes).substr(0, cut));
    EXPECT_FALSE(loaded.ok()) << "cut at " << cut << " of " << bytes.size();
  }
}

TEST(CatalogFuzz, ByteFlipsNeverCrashAndPreserveEntries) {
  // A flip anywhere in a catalog image either fails cleanly (directory,
  // CTLG payload and every DOC0/TIDX are checksummed; a CTLG id flip
  // degrades to the legacy path, which then rejects the duplicate DOC0
  // sections) or — for the minor-field flip 3 <-> 2 — loads the whole
  // catalog intact.
  std::string bytes = CatalogImage();
  for (uint8_t mask : {0x01, 0x40, 0xff}) {
    for (size_t at = 0; at < bytes.size(); ++at) {
      std::string corrupt = bytes;
      corrupt[at] = static_cast<char>(corrupt[at] ^ mask);
      auto loaded = store::Catalog::LoadFromBytes(corrupt);
      if (loaded.ok()) {
        EXPECT_TRUE(at >= 4 && at < 8)
            << "flip mask " << int(mask) << " at " << at;
        ASSERT_EQ(loaded->size(), 2u);
        EXPECT_NE(loaded->Find("paper"), nullptr);
        EXPECT_NE(loaded->Find("tiny"), nullptr);
      }
    }
  }
}

TEST(CatalogFuzz, PseudoRandomMutationsNeverCrash) {
  std::string bytes = CatalogImage();
  uint64_t state = 0x243f6a8885a308d3ULL;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  for (int round = 0; round < 500; ++round) {
    std::string corrupt = bytes;
    size_t edits = 1 + next() % 8;
    for (size_t e = 0; e < edits; ++e) {
      corrupt[next() % corrupt.size()] = static_cast<char>(next() & 0xff);
    }
    auto loaded = store::Catalog::LoadFromBytes(corrupt);
    if (loaded.ok()) {
      for (const store::NamedDocument* entry : loaded->entries()) {
        EXPECT_TRUE(entry->doc.finalized());
      }
    }
  }
}

TEST(CatalogFuzz, DanglingSectionsAreRejected) {
  // An unreferenced DOC0 (or TIDX) alongside a CTLG directory is
  // writer corruption, not forward compatibility; the loader must say
  // so instead of silently dropping a document.
  store::Catalog catalog;
  EXPECT_TRUE(catalog.Add("only", MustShred("<a><b>x</b></a>")).ok());
  auto image = catalog.SaveToBytes();
  ASSERT_TRUE(image.ok());
  auto sections = LoadSectionsFromBytes(*image);
  ASSERT_TRUE(sections.ok());
  std::vector<ImageSection> tampered;
  for (const SectionView& section : sections->sections) {
    tampered.push_back(
        ImageSection{section.id, std::string(section.bytes)});
  }
  tampered.push_back(tampered.back());  // duplicate the DOC0 section
  auto rewritten = SaveSectionsToBytes(tampered, 3);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_FALSE(store::Catalog::LoadFromBytes(*rewritten).ok());
}

}  // namespace
}  // namespace model
}  // namespace meetxml
