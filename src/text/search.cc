#include "text/search.h"

#include <algorithm>

#include "util/strings.h"

namespace meetxml {
namespace text {

using util::Result;
using util::Status;

Result<FullTextSearch> FullTextSearch::Build(const StoredDocument& doc,
                                             const IndexOptions& options) {
  MEETXML_ASSIGN_OR_RETURN(InvertedIndex index,
                           InvertedIndex::Build(doc, options));
  return FullTextSearch(&doc, std::move(index));
}

std::vector<Posting> FullTextSearch::ScanContains(std::string_view needle,
                                                  bool ignore_case) const {
  std::vector<Posting> out;
  for (PathId path : doc_->string_paths()) {
    const model::OidStrBat& table = doc_->StringsAt(path);
    for (size_t row = 0; row < table.size(); ++row) {
      std::string_view value = table.tail(row);
      bool hit = ignore_case ? util::ContainsIgnoreCase(value, needle)
                             : util::Contains(value, needle);
      if (hit) out.push_back(Posting{path, table.head(row)});
    }
  }
  return out;
}

std::vector<core::AssocSet> FullTextSearch::GroupByPath(
    std::vector<Posting> postings) {
  std::sort(postings.begin(), postings.end());
  postings.erase(std::unique(postings.begin(), postings.end()),
                 postings.end());
  std::vector<core::AssocSet> sets;
  for (const Posting& posting : postings) {
    if (sets.empty() || sets.back().path != posting.path) {
      sets.push_back(core::AssocSet{posting.path, {}});
    }
    sets.back().nodes.push_back(posting.owner);
  }
  return sets;
}

Result<TermMatches> FullTextSearch::Search(std::string_view term,
                                           MatchMode mode) const {
  if (term.empty()) {
    return Status::InvalidArgument("empty search term");
  }
  TermMatches matches;
  matches.term = std::string(term);

  std::vector<Posting> postings;
  switch (mode) {
    case MatchMode::kWord:
      postings = index_.LookupWord(term);
      break;
    case MatchMode::kPhrase: {
      std::vector<std::string> phrase_tokens = Tokenize(term);
      if (phrase_tokens.empty()) {
        return Status::InvalidArgument(
            "phrase contains no indexable words: '", term, "'");
      }
      // Candidates: strings containing every word; start from the
      // rarest posting list.
      const std::vector<Posting>* smallest = nullptr;
      for (const std::string& token : phrase_tokens) {
        const std::vector<Posting>& list = index_.LookupWord(token);
        if (smallest == nullptr || list.size() < smallest->size()) {
          smallest = &list;
        }
      }
      for (const Posting& candidate : *smallest) {
        bool all_words = true;
        for (const std::string& token : phrase_tokens) {
          const std::vector<Posting>& list = index_.LookupWord(token);
          if (!std::binary_search(list.begin(), list.end(), candidate)) {
            all_words = false;
            break;
          }
        }
        if (!all_words) continue;
        for (std::string_view value :
             doc_->StringValuesAt(candidate.path, candidate.owner)) {
          if (MatchesPhrase(value, phrase_tokens)) {
            postings.push_back(candidate);
            break;
          }
        }
      }
      break;
    }
    case MatchMode::kContains: {
      std::optional<std::vector<Posting>> candidates =
          index_.TrigramCandidates(term);
      if (!candidates.has_value()) {
        postings = ScanContains(term, /*ignore_case=*/false);
        break;
      }
      // Trigram candidates are a superset; verify against the strings.
      for (const Posting& posting : *candidates) {
        for (std::string_view value :
             doc_->StringValuesAt(posting.path, posting.owner)) {
          if (util::Contains(value, term)) {
            postings.push_back(posting);
            break;
          }
        }
      }
      break;
    }
    case MatchMode::kContainsIgnoreCase:
      postings = ScanContains(term, /*ignore_case=*/true);
      break;
  }

  matches.sets = GroupByPath(std::move(postings));
  return matches;
}

Result<std::vector<TermMatches>> FullTextSearch::SearchAll(
    const std::vector<std::string>& terms, MatchMode mode) const {
  std::vector<TermMatches> out;
  out.reserve(terms.size());
  for (const std::string& term : terms) {
    MEETXML_ASSIGN_OR_RETURN(TermMatches matches, Search(term, mode));
    out.push_back(std::move(matches));
  }
  return out;
}

std::vector<core::AssocSet> FullTextSearch::ToMeetInput(
    const std::vector<TermMatches>& matches) {
  return ToMeetInput(matches, nullptr);
}

std::vector<core::AssocSet> FullTextSearch::ToMeetInput(
    const std::vector<TermMatches>& matches,
    std::vector<size_t>* source_terms) {
  std::vector<core::AssocSet> inputs;
  if (source_terms != nullptr) source_terms->clear();
  for (size_t t = 0; t < matches.size(); ++t) {
    for (const core::AssocSet& set : matches[t].sets) {
      inputs.push_back(set);
      if (source_terms != nullptr) source_terms->push_back(t);
    }
  }
  return inputs;
}

}  // namespace text
}  // namespace meetxml
