// The failpoint registry, proven deterministic.
//
// FailPoints::Arm/Hit are compiled into every build — only the *sites*
// woven through the I/O and serving layers are gated on
// -DMEETXML_FAILPOINTS=ON — so the registry semantics (countdown,
// globs, probability streams, spec parsing, thread-safety) are pinned
// here in all configurations by calling Hit() directly. The tests that
// need a real library site to fire (WriteFileAtomic's boundaries)
// GTEST_SKIP in production builds, where FailPoints::enabled() is
// false and the sites cost nothing.

#include "util/failpoint.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/file_io.h"
#include "util/result.h"

namespace meetxml {
namespace util {
namespace {

class FailPointTest : public ::testing::Test {
 protected:
  void SetUp() override { FailPoints::Reset(); }
  void TearDown() override { FailPoints::Reset(); }
};

TEST_F(FailPointTest, UnarmedHitIsOkAndOnlyCountsTheTotal) {
  EXPECT_EQ(FailPoints::TotalHits(), 0u);
  EXPECT_TRUE(FailPoints::Hit("some.site").ok());
  EXPECT_TRUE(FailPoints::Hit("some.site").ok());
  EXPECT_EQ(FailPoints::TotalHits(), 2u);
  // Per-site counts are an armed-path feature (the fast path takes no
  // lock and touches no map).
  EXPECT_EQ(FailPoints::HitCount("some.site"), 0u);
}

TEST_F(FailPointTest, ArmedErrorFiresWithTheRequestedCode) {
  FailPointSpec spec;
  spec.code = StatusCode::kUnavailable;
  ASSERT_TRUE(FailPoints::Arm("site.a", spec).ok());

  Status hit = FailPoints::Hit("site.a");
  EXPECT_FALSE(hit.ok());
  EXPECT_EQ(hit.code(), StatusCode::kUnavailable);
  EXPECT_NE(hit.message().find("site.a"), std::string::npos);
  // Non-matching sites pass untouched.
  EXPECT_TRUE(FailPoints::Hit("site.b").ok());
}

TEST_F(FailPointTest, SkipThenCountCountdown) {
  FailPointSpec spec;
  spec.skip = 2;
  spec.count = 2;
  ASSERT_TRUE(FailPoints::Arm("cd.site", spec).ok());

  EXPECT_TRUE(FailPoints::Hit("cd.site").ok());   // skipped 1
  EXPECT_TRUE(FailPoints::Hit("cd.site").ok());   // skipped 2
  EXPECT_FALSE(FailPoints::Hit("cd.site").ok());  // fires 1
  EXPECT_FALSE(FailPoints::Hit("cd.site").ok());  // fires 2
  EXPECT_TRUE(FailPoints::Hit("cd.site").ok());   // exhausted
  EXPECT_EQ(FailPoints::HitCount("cd.site"), 5u);
}

TEST_F(FailPointTest, GlobPatternsArmFamiliesOfSites) {
  ASSERT_TRUE(FailPoints::Arm("storage.append.*", FailPointSpec{}).ok());
  EXPECT_FALSE(FailPoints::Hit("storage.append.write").ok());
  EXPECT_FALSE(FailPoints::Hit("storage.append.sync_commit").ok());
  EXPECT_TRUE(FailPoints::Hit("file_io.atomic.write").ok());
}

TEST_F(FailPointTest, ProbabilityZeroNeverFiresOneAlwaysDoes) {
  FailPointSpec never;
  never.probability = 0.0;
  ASSERT_TRUE(FailPoints::Arm("p.never", never).ok());
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(FailPoints::Hit("p.never").ok());
  }
  FailPointSpec always;
  always.probability = 1.0;
  ASSERT_TRUE(FailPoints::Arm("p.always", always).ok());
  for (int i = 0; i < 64; ++i) {
    EXPECT_FALSE(FailPoints::Hit("p.always").ok());
  }
}

TEST_F(FailPointTest, SeededProbabilityStreamIsDeterministic) {
  auto run = [] {
    FailPoints::Reset();
    FailPointSpec spec;
    spec.probability = 0.5;
    spec.seed = 1234;
    EXPECT_TRUE(FailPoints::Arm("p.half", spec).ok());
    std::vector<bool> fired;
    for (int i = 0; i < 128; ++i) {
      fired.push_back(!FailPoints::Hit("p.half").ok());
    }
    return fired;
  };
  std::vector<bool> first = run();
  std::vector<bool> second = run();
  EXPECT_EQ(first, second);
  // A fair seeded stream at p=0.5 over 128 draws both fires and passes.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

TEST_F(FailPointTest, DisarmAndResetQuiesceTheSite) {
  ASSERT_TRUE(FailPoints::Arm("d.site", FailPointSpec{}).ok());
  EXPECT_FALSE(FailPoints::Hit("d.site").ok());
  FailPoints::Disarm("d.site");
  EXPECT_TRUE(FailPoints::Hit("d.site").ok());

  ASSERT_TRUE(FailPoints::Arm("d.site", FailPointSpec{}).ok());
  FailPoints::Reset();
  EXPECT_TRUE(FailPoints::Hit("d.site").ok());
  EXPECT_EQ(FailPoints::TotalHits(), 1u);  // Reset cleared the counter
}

TEST_F(FailPointTest, ArmRejectsBadArguments) {
  EXPECT_FALSE(FailPoints::Arm("", FailPointSpec{}).ok());
  FailPointSpec bad;
  bad.probability = 1.5;
  EXPECT_FALSE(FailPoints::Arm("x", bad).ok());
}

TEST_F(FailPointTest, ArmFromSpecParsesTheGrammar) {
  ASSERT_TRUE(FailPoints::ArmFromSpec(
                  "a.site=unavailable:1:1,b.*=exhausted")
                  .ok());
  EXPECT_TRUE(FailPoints::Hit("a.site").ok());  // skip=1
  Status second = FailPoints::Hit("a.site");
  EXPECT_EQ(second.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(FailPoints::Hit("a.site").ok());  // count=1 exhausted
  EXPECT_EQ(FailPoints::Hit("b.anything").code(),
            StatusCode::kResourceExhausted);
}

TEST_F(FailPointTest, ArmFromSpecRejectsMalformedTerms) {
  EXPECT_FALSE(FailPoints::ArmFromSpec("nonsense").ok());
  EXPECT_FALSE(FailPoints::ArmFromSpec("a.site=explode").ok());
  EXPECT_FALSE(FailPoints::ArmFromSpec("=error").ok());
  EXPECT_FALSE(FailPoints::ArmFromSpec("a.site=error:x").ok());
  EXPECT_FALSE(FailPoints::ArmFromSpec("a.site=error:0:0:2.0").ok());
  // Valid terms around a bad one still arm (best-effort, like the
  // environment path).
  FailPoints::Reset();
  EXPECT_FALSE(FailPoints::ArmFromSpec("good.site=error,bad").ok());
  EXPECT_FALSE(FailPoints::Hit("good.site").ok());
}

TEST_F(FailPointTest, ConcurrentCountdownFiresExactlyOnce) {
  FailPointSpec spec;
  spec.count = 1;
  ASSERT_TRUE(FailPoints::Arm("race.site", spec).ok());

  constexpr int kThreads = 8;
  constexpr int kHitsPerThread = 200;
  std::atomic<int> fired{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kHitsPerThread; ++i) {
        if (!FailPoints::Hit("race.site").ok()) fired.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(FailPoints::HitCount("race.site"),
            static_cast<uint64_t>(kThreads) * kHitsPerThread);
}

// ---- real library sites (failpoints builds only) ------------------------

TEST_F(FailPointTest, WriteFileAtomicKeepsTheOldImageOnAnEarlyFailure) {
  if (!FailPoints::enabled()) {
    GTEST_SKIP() << "library sites are compiled out in this build";
  }
  std::string path = ::testing::TempDir() + "/failpoint_close.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "old contents").ok());

  // A failure before the rename boundary never touches the target: the
  // temp sibling is discarded and the old image survives intact.
  ASSERT_TRUE(
      FailPoints::ArmFromSpec("file_io.atomic.close=error").ok());
  Status write = WriteFileAtomic(path, "new contents");
  EXPECT_FALSE(write.ok());
  FailPoints::Reset();

  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "old contents");
}

TEST_F(FailPointTest, WriteFileAtomicSurfacesAnInjectedRenameFailure) {
  if (!FailPoints::enabled()) {
    GTEST_SKIP() << "library sites are compiled out in this build";
  }
  std::string path = ::testing::TempDir() + "/failpoint_rename.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "old contents").ok());

  ASSERT_TRUE(
      FailPoints::ArmFromSpec("file_io.atomic.rename=error").ok());
  Status write = WriteFileAtomic(path, "new contents");
  EXPECT_FALSE(write.ok());
  FailPoints::Reset();

  // Sites fire *after* the operation they name: the injected failure
  // models dying just past the rename, so the new image is already in
  // place — complete, never torn. (The crash-matrix suite proves the
  // old-or-new invariant at every boundary; this pins the semantics.)
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "new contents");
}

TEST_F(FailPointTest, WriteFileAtomicSurfacesAnInjectedDirsyncFailure) {
  if (!FailPoints::enabled()) {
    GTEST_SKIP() << "library sites are compiled out in this build";
  }
  std::string path = ::testing::TempDir() + "/failpoint_dirsync.txt";
  ASSERT_TRUE(
      FailPoints::ArmFromSpec("file_io.atomic.dirsync=error").ok());
  Status write = WriteFileAtomic(path, "contents");
  EXPECT_FALSE(write.ok());
  EXPECT_NE(write.message().find("fsync directory"), std::string::npos);
  FailPoints::Reset();

  // The dirsync boundary sits after the rename: the new file is in
  // place (only its directory entry's durability is in doubt), which
  // is exactly the crash-state the site models.
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "contents");
}

}  // namespace
}  // namespace util
}  // namespace meetxml
