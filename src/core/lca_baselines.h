// Baseline LCA strategies, for the ablation benchmarks (AB1 in
// docs/paper_map.md).
//
// The paper's meet2 steers its ancestor walk with the path summary. We
// compare against (a) the textbook mark-and-walk LCA that a system
// without path information would run, and (b) an Euler-tour + sparse
// table RMQ structure (Aho/Hopcroft/Ullman lineage, the paper's [4]) that
// answers pair queries in O(1) after O(n log n) preprocessing.

#ifndef MEETXML_CORE_LCA_BASELINES_H_
#define MEETXML_CORE_LCA_BASELINES_H_

#include <cstdint>
#include <vector>

#include "core/input_set.h"
#include "util/result.h"

namespace meetxml {
namespace core {

/// \brief Mark-and-walk LCA: hashes all ancestors of `a`, then walks up
/// from `b`. No depth/path steering — every ancestor of `a` is visited
/// even when `b` is shallow.
util::Result<Oid> NaiveLca(const StoredDocument& doc, Oid a, Oid b);

/// \brief Euler-tour + sparse-table RMQ LCA with O(1) queries.
///
/// Build once per document; queries never touch the tree again. The
/// trade-off against meet2 is preprocessing time and O(n log n) memory —
/// the reason the paper's interactive setting prefers the steered walk.
class EulerRmqLca {
 public:
  /// \brief Preprocesses the document (O(n log n) time and space).
  static util::Result<EulerRmqLca> Build(const StoredDocument& doc);

  /// \brief LCA of two nodes in O(1).
  util::Result<Oid> Query(Oid a, Oid b) const;

  /// \brief Bytes of preprocessing state (for the ablation report).
  size_t MemoryBytes() const;

 private:
  EulerRmqLca() = default;

  // Euler tour: tour_[i] is the node visited at step i; first_[v] is the
  // first tour index of node v; depth_of_tour_[i] is its depth.
  std::vector<Oid> tour_;
  std::vector<uint32_t> first_;
  std::vector<uint32_t> depth_of_tour_;
  // sparse_[k][i]: tour index of the minimum-depth entry in
  // [i, i + 2^k).
  std::vector<std::vector<uint32_t>> sparse_;
  size_t node_count_ = 0;
};

}  // namespace core
}  // namespace meetxml

#endif  // MEETXML_CORE_LCA_BASELINES_H_
