// Binary persistence of a StoredDocument.
//
// The paper's case study bulk-loads DBLP once and queries it
// interactively ever after; a production deployment needs the loaded
// form to survive restarts without re-parsing hundreds of megabytes of
// XML. This module serializes the Monet transform — path summary,
// per-OID columns and per-path string relations — into a compact,
// versioned, checksummed binary image. Loading an image is a straight
// column read: no XML parsing, no re-interning. Since MXM2 an image is
// a sequence of independently checksummed sections, so derived
// structures (e.g. the full-text indexes, see text/index_io.h) persist
// alongside the document and reload without a rebuild.
//
// Versioning policy
// -----------------
//  * The 4-byte magic carries the major format version ("MXM1",
//    "MXM2", ...). A major revision may change the container layout
//    arbitrarily; readers accept every major they know and reject
//    unknown magics. Writers always emit the newest major unless asked
//    for an older one via SaveOptions::format_version (supported for
//    fleet rollbacks; v1 cannot carry extra sections).
//  * The u32 version field after the magic is the minor revision of
//    that major. Minor revisions are backward compatible: a reader for
//    (major, minor) loads every image with the same major and
//    minor' <= minor. Current minors: MXM1 -> 1, MXM2 -> 6.
//  * Within MXM2, compatibility evolves by adding sections: a loader
//    skips section ids it does not recognize (their bytes are surfaced
//    through LoadedImage::extra_sections), so old readers open new
//    images as long as the document section is intact. For the
//    single-document API in this header the document section is
//    mandatory and unique; writers stamp row-oriented (DOC0) images
//    minor 2.
//  * Minor 3 (the multi-document catalog, store/catalog.h) is the
//    first container-level extension: an image may carry several
//    document and TIDX sections, tied together by a CTLG section that
//    names them. Catalog writers stamp minor 3 only when more than one
//    document is aboard, so single-document catalogs still open under
//    older minor-2 readers; the single-document loaders below keep
//    rejecting multi-document-section images ("duplicate document
//    section").
//  * Minor 4 introduces the columnar document payload, section id
//    "DOC1". A DOC1 section replaces a DOC0 section one-for-one (same
//    document, different payload codec); the minor bump is what stops
//    a minor-3 reader from opening an image whose only document
//    section it cannot decode. DOC0 and DOC1 images of the same
//    document load to byte-identically re-serializable documents
//    (tests/storage_io_test.cc pins the equivalence).
//  * Minor 5 introduces the aligned columnar payload, section id
//    "DOC2" (the writer default), and container-level section
//    alignment: every raw integer column inside a DOC2 payload — and,
//    in minor >= 5 images, every section payload in the container —
//    starts on a 4-byte boundary (zero padding, excluded from section
//    sizes and checksums). Alignment is what makes true zero-copy
//    open possible: a view-mode load can hand out typed spans over
//    the mapped image only if the columns are aligned for their
//    element type. Writers emit DOC2 by default;
//    SaveOptions::payload_format pins DOC1 (kColumnarUnaligned, for
//    minor-4 reader fleets) or DOC0 (kRowOriented, readable
//    everywhere), and format_version pins MXM1 — every reader keeps
//    accepting all older layouts.
//  * Minor 6 makes open time O(directory) instead of O(corpus), with
//    three coordinated changes:
//      - The derived-columns section, id "DRV1": the structures
//        Finalize() used to rebuild on every load — the children CSR,
//        the per-path edge BATs (the paper's pre-joined path
//        relations) and the string-relation sortedness flags — persist
//        next to their document section and are served zero-copy in
//        view mode. A DRV1 section is an all-u32 payload and always
//        pairs with a DOC2 section; writers emit one by default
//        (SaveOptions::derived_section), and every pre-6 image still
//        loads by rebuilding as before.
//      - A trailing directory: the u32 section count of minors <= 5 is
//        replaced by a u64 offset to a directory that lives *after*
//        the payloads and carries per-section (id, offset, size,
//        checksum) plus its own checksum. Sections no longer tile the
//        file — dead gaps and trailing bytes are legal — which is what
//        makes in-place incremental rewrite possible: an updater
//        appends replacement sections and a fresh directory, then
//        patches the one header word to point at it. A crash before
//        the patch leaves the old directory authoritative and the old
//        image fully intact; the superseded bytes are dead space until
//        a compaction rewrite reclaims them.
//      - Checksum-gated lazy loading: a reader may open the container
//        verifying only the directory checksum (SectionScanOptions::
//        verify_checksums = false), defer each section's checksum to
//        first touch (VerifySectionChecksum), and defer the deep
//        semantic scans behind the document's validation gate
//        (LoadOptions::defer_validation + StoredDocument::
//        EnsureValidated) — so opening a thousand-document catalog
//        costs the directory walk, nothing else, while corruption
//        still fails loudly at the gate before any query sees it.
//  * Every section is length-framed and checksummed independently;
//    loaders verify bounds and checksums before touching a payload
//    (checksum verification can be deferred — never skipped — on the
//    lazy path above), and semantic validation (path/OID ranges,
//    parent ordering, string offsets and the append-order
//    permutation) runs on every load, eagerly by default or behind
//    the per-document validation gate when deferred.
//    Corrupted or truncated images are rejected, never partially
//    applied (tests/storage_fuzz_test.cc pins this). The checksum
//    algorithm is keyed by the minor: images up to minor 3 use
//    byte-serial FNV-1a (bit-compatible with every existing image);
//    minor-4+ images use a four-lane chunked FNV-1a variant that
//    verifies at memory speed instead of one multiply per byte —
//    the container scan must not cost more than the columnar decode
//    it protects.
//
// MXM1 layout (little-endian):
//   magic "MXM1" | u32 version | u64 payload_size | u64 fnv1a_checksum
//   payload: the DOC0 document payload described below
// MXM2 layout (minors 2-5):
//   magic "MXM2" | u32 version | u32 section_count
//   section directory: per section u32 id | u64 size | u64 fnv1a
//   section payloads, concatenated in directory order (for version
//   >= 5, each payload is preceded by zero padding to the next 4-byte
//   file offset; the padding belongs to the container, not to any
//   section)
// MXM2 layout (minor 6, the incremental-rewrite container):
//   magic "MXM2" | u32 version | u64 dir_offset
//   section payloads, each starting on a 4-byte file offset; gaps
//   between payloads (alignment padding, superseded sections) carry
//   no meaning and no checksum
//   directory, at dir_offset (4-byte aligned): u32 section_count,
//   then per section u32 id | u64 offset | u64 size | u64 fnv1a,
//   then u64 fnv1a of the directory bytes so far (from dir_offset up
//   to, not including, this field)
//   Bytes after the directory are legal and ignored — a crashed
//   in-place rewrite leaves appended-but-unreferenced sections there.
// DRV1 derived-columns payload (all little-endian u32, paired with
// the DOC2 section of the same document):
//   u32 node_count
//   child_offsets[]: node_count + 1 raw u32 — children CSR offsets
//   child_list[]: node_count - 1 raw u32 — children CSR payload
//   u32 edge_group_count, then per group, in first-appearance
//   (document) order of the path:
//     u32 path | u32 row_count (> 0)
//     heads[]: row_count raw u32 — each node's parent
//     tails[]: row_count raw u32 — the nodes of this path, ascending
//   u32 string_group_count, then per string path, in the DOC2
//   payload's group order: u32 path | u32 sorted_flag (1 when the
//   owner column is sorted and probes may binary-search)
// DOC0 document payload (row-oriented):
//   path summary: u32 count, then per path: u32 parent, u8 kind,
//                 string label
//   nodes: u32 count, then parent[], path[], rank[] columns
//   strings: u32 count, then (u32 path, u32 owner, string value)
//            rows in global append (document) order
//   strings are u32 length + bytes.
// DOC1 document payload (columnar, memcpy-decodable):
//   path summary: identical to DOC0
//   nodes: u32 count, then parent[], path[], rank[] as three raw
//          little-endian u32 arrays of `count` elements each
//   strings: u32 total_count | u32 group_count, then one group per
//            path that owns strings, in first-append order:
//     u32 path | u32 row_count (> 0)
//     owner[]: row_count raw u32 — the owning node of each row
//     seq[]:   row_count raw u32 — the row's position in the global
//              append order; across all groups the seq values form a
//              permutation of [0, total_count), which is what keeps
//              reassembly (per-element attribute order) bit-identical
//     ends[]:  row_count raw u32 — cumulative value end offsets;
//              row r's value is blob[ends[r-1], ends[r])
//     blob: ends[row_count-1] bytes, all values concatenated
//   No per-row path id, no per-string length framing: loading is a
//   handful of memcpys per relation instead of one allocation and one
//   dispatch per string.
// DOC2 document payload (columnar, view-decodable):
//   identical to DOC1, except that zero padding to the next 4-byte
//   payload offset is inserted after the path summary and after every
//   group's blob, so each raw u32 column sits 4-byte aligned within
//   the payload (and, via the container alignment above, within the
//   file). A view-mode load serves the columns as spans over the
//   mapped image with zero copies; a copy-mode load memcpys them
//   exactly as DOC1 does.
//
// Zero-copy (view-mode) lifetime contract
// ---------------------------------------
// LoadOptions::mode selects who owns the decoded columns:
//  * kCopy (default): every column is copied out of the image; the
//    image bytes may be released the moment the loader returns.
//  * kView: DOC2 node columns, string columns and value blobs are
//    borrowed as spans/views over the image bytes — no per-column
//    memcpy happens (LoadStats::bytes_copied counts what little the
//    decoder still owns: interned path labels and derived structures
//    are built either way). The caller must guarantee the image bytes
//    outlive every decoded document. The file loaders do this
//    automatically: they open the file through
//    util::MmapFile::OpenShared and pin the mapping into each decoded
//    document (StoredDocument::PinBacking), so the mapping is
//    released exactly when the last borrowing document is destroyed
//    or promoted via EnsureOwned(). Byte-level loaders pass the
//    ownership burden to the caller unless LoadOptions::backing is
//    set. Mutating a view-backed document (AppendString, column
//    adoption, bulk-load merge) promotes the touched structures to
//    owned storage first — copy-on-write at column granularity —
//    and never invalidates other borrowers of the same image.
//  * DOC0/DOC1 sections silently fall back to copy mode (their
//    columns are unaligned or row-framed); LoadStats::mode_used
//    reports what actually happened.

#ifndef MEETXML_MODEL_STORAGE_IO_H_
#define MEETXML_MODEL_STORAGE_IO_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "model/document.h"
#include "util/result.h"

namespace meetxml {
namespace model {

/// \brief Builds a section id from its four-character tag.
constexpr uint32_t MakeSectionId(char a, char b, char c, char d) {
  return (static_cast<uint32_t>(static_cast<unsigned char>(a)) << 24) |
         (static_cast<uint32_t>(static_cast<unsigned char>(b)) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(c)) << 8) |
         static_cast<uint32_t>(static_cast<unsigned char>(d));
}

/// The row-oriented document section of an MXM2 image (legacy writer
/// default through minor 3).
inline constexpr uint32_t kDocumentSectionId = MakeSectionId('D', 'O', 'C', '0');
/// The unaligned columnar document section (writer default of minor 4).
inline constexpr uint32_t kColumnarDocumentSectionId =
    MakeSectionId('D', 'O', 'C', '1');
/// The aligned columnar document section (writer default since
/// minor 5; the only payload a view-mode load can borrow from).
inline constexpr uint32_t kAlignedColumnarDocumentSectionId =
    MakeSectionId('D', 'O', 'C', '2');
/// Persisted full-text indexes (payload codec: text/index_io.h).
inline constexpr uint32_t kTextIndexSectionId = MakeSectionId('T', 'I', 'D', 'X');
/// Multi-document catalog directory (payload codec: store/catalog.h).
inline constexpr uint32_t kCatalogSectionId = MakeSectionId('C', 'T', 'L', 'G');
/// Persisted derived columns (children CSR, per-path edge BATs,
/// string sortedness) of the DOC2 section it pairs with (minor 6+).
inline constexpr uint32_t kDerivedSectionId = MakeSectionId('D', 'R', 'V', '1');

/// \brief True for every document section id (DOC0, DOC1 and DOC2).
inline constexpr bool IsDocumentSectionId(uint32_t id) {
  return id == kDocumentSectionId || id == kColumnarDocumentSectionId ||
         id == kAlignedColumnarDocumentSectionId;
}

/// \brief Which codec a document section payload uses.
enum class DocumentPayloadFormat : uint32_t {
  kRowOriented = 0,  ///< DOC0: one framed (path, owner, value) row per string.
  kColumnar = 1,     ///< DOC2: aligned raw columns — the writer default.
  /// DOC1: the minor-4 columnar payload without column alignment.
  /// Rollback knob for fleets still running minor-4 readers; loads in
  /// copy mode only.
  kColumnarUnaligned = 2,
};

/// \brief One named, independently checksummed byte range of an image.
struct ImageSection {
  uint32_t id = 0;
  std::string bytes;
};

/// \brief A borrowed view of one image section (zero-copy: the view
/// aliases the image bytes handed to the loader).
struct SectionView {
  uint32_t id = 0;
  std::string_view bytes;
  /// Byte offset of the payload within its container (0 for MXM1
  /// synthetic sections).
  uint64_t offset = 0;
  /// The directory's checksum claim for this payload. Verified during
  /// the scan unless SectionScanOptions::verify_checksums was off; a
  /// lazy reader then gates first touch on VerifySectionChecksum.
  uint64_t checksum = 0;
};

/// \brief A raw MXM2 container view: the minor revision plus every
/// section in directory order, bounds verified (and checksums, unless
/// deferred), payloads not yet interpreted. MXM1 images surface as
/// minor 1 with a single synthetic document section. Views borrow
/// from the loaded bytes.
struct SectionImage {
  uint32_t minor = 0;
  /// File offset of the trailing directory (minor 6+; 0 otherwise).
  uint64_t dir_offset = 0;
  std::vector<SectionView> sections;
};

/// \brief Where one section's payload lives in a minor-6 container —
/// the bookkeeping an in-place rewrite carries between saves.
struct SectionPlacement {
  uint32_t id = 0;
  uint64_t offset = 0;
  uint64_t size = 0;
  uint64_t checksum = 0;
};

/// \brief Container-scan knobs (the lazy-open path).
struct SectionScanOptions {
  /// When false, per-section checksums are recorded (SectionView::
  /// checksum) but not verified — the caller promises to call
  /// VerifySectionChecksum on every section before interpreting its
  /// payload. The minor-6 directory checksum is always verified: the
  /// scan itself never trusts unchecked framing.
  bool verify_checksums = true;
};

/// \brief Serialization knobs.
struct SaveOptions {
  /// Container major to emit: 2 (current) or 1 (legacy MXM1; supported
  /// for rollbacks, cannot carry extra sections, always row-oriented).
  uint32_t format_version = 2;
  /// Document payload codec for MXM2 images. Aligned columnar (DOC2,
  /// the default) stamps minor 5; unaligned columnar (DOC1) stamps
  /// minor 4 and row-oriented (DOC0) stamps minor 2, so older readers
  /// still open the image — the rollback knobs.
  DocumentPayloadFormat payload_format = DocumentPayloadFormat::kColumnar;
  /// Persist the derived columns (children CSR, per-path edge BATs,
  /// string sortedness) as a DRV1 section next to the document
  /// section, so loads skip the Finalize() rebuild. Applies to the
  /// kColumnar (DOC2) payload in MXM2 images and stamps minor 6;
  /// ignored (no DRV1, historical minors) for the rollback payloads
  /// and MXM1.
  bool derived_section = true;
  /// Additional sections appended after the document section (v2 only).
  std::vector<ImageSection> extra_sections;
};

/// \brief Who owns the decoded columns (see the lifetime contract in
/// the header comment).
enum class LoadMode : uint32_t {
  kCopy = 0,  ///< Columns are copied out of the image (self-contained).
  kView = 1,  ///< DOC2 columns borrow from the image bytes (zero-copy).
};

/// \brief Per-load observability for the zero-copy path.
struct LoadStats {
  /// Image bytes memcpy'd into owned column/blob storage. Near zero
  /// for a view-mode DOC2 load (path labels and derived structures
  /// are not image copies and are not counted).
  uint64_t bytes_copied = 0;
  /// Image bytes served as borrowed views (0 in copy mode).
  uint64_t bytes_viewed = 0;
  /// What actually happened: kView only when the document section was
  /// DOC2 and view adoption succeeded; DOC0/DOC1 fall back to kCopy.
  LoadMode mode_used = LoadMode::kCopy;
};

/// \brief Deserialization knobs.
struct LoadOptions {
  LoadMode mode = LoadMode::kCopy;
  /// Optional keep-alive pinned into every view-backed document (the
  /// file loaders put the shared mapping here). Byte-level view-mode
  /// loads without a backing leave the lifetime burden on the caller.
  std::shared_ptr<const void> backing;
  /// Defer the deep O(rows) semantic scans (string owner bounds,
  /// offset monotonicity, the append-order permutation, derived-
  /// structure cross-checks) to the document's validation gate
  /// (StoredDocument::EnsureValidated) instead of running them at
  /// decode time. Framing, bounds and structural node-column checks
  /// still run — a decode never hands out columns it could not
  /// address safely — but a corrupt image may now be detected at
  /// first touch rather than at load. The lazy catalog open uses
  /// this to keep decode cost proportional to the directory.
  bool defer_validation = false;
  /// When non-null, receives copy/view byte counts for this load.
  LoadStats* stats = nullptr;
};

/// \brief A loaded image: the document plus any sections the document
/// loader itself does not interpret (absent in v1 images).
struct LoadedImage {
  StoredDocument doc;
  uint32_t format_version = 0;
  std::vector<ImageSection> extra_sections;
};

/// \brief Serializes a finalized document to a binary image.
util::Result<std::string> SaveToBytes(const StoredDocument& doc,
                                      const SaveOptions& options = {});

// --- Container layer (used by multi-document images) -----------------
//
// The single-document Save/Load functions above are wrappers over this
// raw section API; store/catalog.h uses it directly to write images
// carrying several DOC0/TIDX pairs plus a CTLG directory.

/// \brief Writes an MXM2 container around `sections`, in order. `minor`
/// is the revision stamp: 2 for images a single-document reader can
/// open, 3 when the section set needs catalog semantics (several
/// document sections), 4 when any document section is unaligned
/// columnar (DOC1), 5 when any is aligned columnar (DOC2; minor >= 5
/// containers also align every section payload to a 4-byte file
/// offset), 6 when any section is a DRV1 derived-columns section (a
/// minor-6 container carries the trailing, patchable directory).
/// Section ids may repeat — interpreting duplicates is the caller's
/// contract (the single-document writer rejects them earlier).
util::Result<std::string> SaveSectionsToBytes(
    const std::vector<ImageSection>& sections, uint32_t minor = 2);

/// \brief Parses any MXM1/MXM2 container: verifies magic, version
/// bounds, directory framing and per-section checksums, and returns
/// the raw sections without interpreting payloads.
util::Result<SectionImage> LoadSectionsFromBytes(std::string_view bytes);

/// \brief Like above, with scan knobs — pass verify_checksums = false
/// for an O(directory) lazy open that gates each section on
/// VerifySectionChecksum at first touch instead.
util::Result<SectionImage> LoadSectionsFromBytes(
    std::string_view bytes, const SectionScanOptions& options);

/// \brief Verifies one section's payload against the checksum its
/// container directory claimed — the first-touch gate of a lazy open
/// (sections scanned with verify_checksums = false).
util::Status VerifySectionChecksum(uint32_t minor,
                                   const SectionView& section);

/// \brief Encodes one document as a document section payload in the
/// requested codec (the document must be finalized). The matching
/// section id is kDocumentSectionId for kRowOriented,
/// kColumnarDocumentSectionId for kColumnarUnaligned and
/// kAlignedColumnarDocumentSectionId for kColumnar.
util::Result<std::string> SerializeDocumentSection(
    const StoredDocument& doc,
    DocumentPayloadFormat format = DocumentPayloadFormat::kColumnar);

/// \brief The section id SerializeDocumentSection pairs with `format`.
uint32_t DocumentSectionIdFor(DocumentPayloadFormat format);

/// \brief Decodes a DOC0 (row-oriented) section payload; the result is
/// finalized. Semantic validation (path/OID ranges, parent ordering)
/// runs here. Always copies (row framing cannot be borrowed).
util::Result<StoredDocument> ParseDocumentSection(
    std::string_view payload, const LoadOptions& options = {});

/// \brief Decodes a DOC1 (unaligned columnar) section payload; the
/// result is finalized. Semantic validation (path/OID ranges, parent
/// ordering, string offsets, the append-order permutation) runs here.
/// View mode falls back to copying (the columns are unaligned).
util::Result<StoredDocument> ParseColumnarDocumentSection(
    std::string_view payload, const LoadOptions& options = {});

/// \brief Decodes a DOC2 (aligned columnar) section payload; the
/// result is finalized, with the same semantic validation as DOC1. In
/// view mode the node columns, string columns and value blobs borrow
/// from `payload` — see the lifetime contract above.
util::Result<StoredDocument> ParseAlignedColumnarDocumentSection(
    std::string_view payload, const LoadOptions& options = {});

/// \brief Dispatches on the section id to the right payload codec;
/// `section_id` must satisfy IsDocumentSectionId.
util::Result<StoredDocument> ParseAnyDocumentSection(
    uint32_t section_id, std::string_view payload,
    const LoadOptions& options = {});

/// \brief Encodes a document's derived columns as a DRV1 section
/// payload (the document must be finalized). Pairs with the DOC2
/// section of the same document.
util::Result<std::string> SerializeDerivedSection(const StoredDocument& doc);

/// \brief Decodes a document section together with its DRV1 section:
/// the derived structures are adopted from `derived_payload` instead
/// of being rebuilt, zero-copy in view mode. Requires a DOC2 section
/// (`section_id` must be kAlignedColumnarDocumentSectionId — the
/// derived payload's offsets are only meaningful against the aligned
/// codec). With options.defer_validation the deep cross-checks hang
/// on the document's validation gate; otherwise they run here.
util::Result<StoredDocument> ParseDocumentWithDerived(
    uint32_t section_id, std::string_view payload,
    std::string_view derived_payload, const LoadOptions& options = {});

/// \brief Restores a document from a binary image, accepting every
/// known major version (MXM1 and MXM2); extra sections are ignored.
/// The result is finalized and ready for queries. Corrupted or
/// truncated images are rejected (version, bounds and checksums are
/// verified).
util::Result<StoredDocument> LoadFromBytes(std::string_view bytes,
                                           const LoadOptions& options = {});

/// \brief Like LoadFromBytes, but also surfaces the sections the
/// document loader did not consume — e.g. the persisted full-text
/// indexes — for higher layers to interpret.
util::Result<LoadedImage> LoadImageFromBytes(std::string_view bytes,
                                             const LoadOptions& options = {});

/// \brief Saves to a file. The write is atomic: bytes land in a
/// temporary sibling that is renamed over `path`, so a concurrent
/// view-mode borrower of the old image keeps its (old-inode) mapping
/// and readers never observe a torn file.
util::Status SaveToFile(const StoredDocument& doc, const std::string& path,
                        const SaveOptions& options = {});

/// \brief Loads from a file. The image is memory-mapped (util/
/// mmap_file.h) and decoded straight out of the page cache; platforms
/// without mmap fall back to a buffered read. In view mode the
/// mapping is opened shared and pinned into the decoded document
/// (LoadOptions::backing is ignored; the file's own mapping wins).
util::Result<StoredDocument> LoadFromFile(const std::string& path,
                                          const LoadOptions& options = {});

/// \brief Loads from a file (memory-mapped), keeping extra sections.
util::Result<LoadedImage> LoadImageFromFile(const std::string& path,
                                            const LoadOptions& options = {});

// --- Incremental rewrite (minor-6 containers) -------------------------

/// \brief One section of the next directory an in-place rewrite
/// publishes: either kept where it already lives (`keep` set, no bytes
/// written) or appended fresh from `bytes`.
struct PendingSection {
  uint32_t id = 0;
  /// Reuse this placement from the current image (id must match).
  std::optional<SectionPlacement> keep;
  /// Payload to append when `keep` is empty.
  std::string bytes;
};

/// \brief What an in-place rewrite did.
struct AppendStats {
  /// Final placement of every requested section, in request order.
  std::vector<SectionPlacement> placements;
  uint64_t file_size = 0;      ///< file size after the append
  uint64_t dir_offset = 0;     ///< offset of the newly-published directory
  uint64_t bytes_appended = 0; ///< payload + directory bytes written
};

/// \brief Incrementally rewrites a minor-6 container in place: appends
/// the non-kept sections and a fresh directory naming exactly
/// `sections`, fsyncs, then patches the header's directory offset —
/// the single-word commit point. A crash anywhere before the patch
/// leaves the previous directory (and image) intact; superseded
/// payloads become dead space until a full rewrite compacts them.
/// `expected_size`/`expected_dir_offset` fence against concurrent
/// writers: the call refuses to touch a file whose size or header no
/// longer match the image the caller planned against. Readers with a
/// live mapping are unaffected — old sections are never overwritten.
util::Result<AppendStats> AppendSectionsToFile(
    const std::string& path, uint64_t expected_size,
    uint64_t expected_dir_offset,
    const std::vector<PendingSection>& sections);

}  // namespace model
}  // namespace meetxml

#endif  // MEETXML_MODEL_STORAGE_IO_H_
