// Binary persistence of a StoredDocument.
//
// The paper's case study bulk-loads DBLP once and queries it
// interactively ever after; a production deployment needs the loaded
// form to survive restarts without re-parsing hundreds of megabytes of
// XML. This module serializes the Monet transform — path summary,
// per-OID columns and per-path string relations — into a compact,
// versioned, checksummed binary image. Loading an image is a straight
// column read: no XML parsing, no re-interning.
//
// Format (little-endian):
//   magic "MXM1" | u32 version | u64 payload_size | u64 fnv1a_checksum
//   payload:
//     path summary: u32 count, then per path: u32 parent, u8 kind,
//                   string label
//     nodes: u32 count, then parent[], path[], rank[] columns
//     strings: u32 count, then (u32 path, u32 owner, string value)
//              rows in global append (document) order
//   strings are u32 length + bytes.

#ifndef MEETXML_MODEL_STORAGE_IO_H_
#define MEETXML_MODEL_STORAGE_IO_H_

#include <string>

#include "model/document.h"
#include "util/result.h"

namespace meetxml {
namespace model {

/// \brief Serializes a finalized document to a binary image.
util::Result<std::string> SaveToBytes(const StoredDocument& doc);

/// \brief Restores a document from a binary image. The result is
/// finalized and ready for queries. Corrupted or truncated images are
/// rejected (version, bounds and checksum are verified).
util::Result<StoredDocument> LoadFromBytes(std::string_view bytes);

/// \brief Saves to a file.
util::Status SaveToFile(const StoredDocument& doc, const std::string& path);

/// \brief Loads from a file.
util::Result<StoredDocument> LoadFromFile(const std::string& path);

}  // namespace model
}  // namespace meetxml

#endif  // MEETXML_MODEL_STORAGE_IO_H_
