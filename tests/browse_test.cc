// Tests for the answer-browsing helpers (paper §4's displaying and
// browsing starting points).

#include <gtest/gtest.h>

#include "core/browse.h"
#include "core/meet_general.h"
#include "data/paper_example.h"
#include "model/shredder.h"
#include "tests/test_util.h"
#include "text/search.h"

namespace meetxml {
namespace core {
namespace {

using meetxml::testing::FindCdataNode;
using meetxml::testing::FindElement;
using meetxml::testing::MustShred;

std::vector<GeneralMeet> MeetsFor(const model::StoredDocument& doc,
                                  const std::vector<std::string>& terms) {
  auto search = text::FullTextSearch::Build(doc);
  EXPECT_TRUE(search.ok());
  auto matches = search->SearchAll(terms, text::MatchMode::kContains);
  EXPECT_TRUE(matches.ok());
  auto meets =
      MeetGeneral(doc, text::FullTextSearch::ToMeetInput(*matches));
  EXPECT_TRUE(meets.ok());
  return std::move(*meets);
}

TEST(Browse, BuildsContextAndSnippet) {
  auto doc = MustShred(data::PaperExampleXml());
  auto meets = MeetsFor(doc, {"Ben", "Bit"});
  ASSERT_EQ(meets.size(), 1u);
  auto answers = BuildAnswers(doc, meets);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 1u);
  const Answer& answer = (*answers)[0];
  EXPECT_EQ(answer.context,
            (std::vector<std::string>{"bibliography", "institute",
                                      "article", "author"}));
  EXPECT_NE(answer.snippet.find("<firstname>Ben</firstname>"),
            std::string::npos);
  EXPECT_FALSE(answer.snippet_truncated);
  EXPECT_EQ(answer.witness_count, 2u);
}

TEST(Browse, TruncatesLongSnippets) {
  auto doc = MustShred(data::PaperExampleXml());
  auto meets = MeetsFor(doc, {"Bit", "1999"});
  ASSERT_FALSE(meets.empty());
  BrowseOptions options;
  options.max_snippet_bytes = 20;
  auto answers = BuildAnswers(doc, meets, options);
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE((*answers)[0].snippet_truncated);
  EXPECT_LE((*answers)[0].snippet.size(), 23u);  // 20 + "..."
}

TEST(Browse, MaxAnswersLimits) {
  auto doc = MustShred(
      "<r><a><x>k1</x><y>k2</y></a><b><x>k1</x><y>k2</y></b></r>");
  auto meets = MeetsFor(doc, {"k1", "k2"});
  ASSERT_EQ(meets.size(), 2u);
  BrowseOptions options;
  options.max_answers = 1;
  auto answers = BuildAnswers(doc, meets, options);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 1u);
}

TEST(Browse, EnclosingConceptClimbsToDomainTag) {
  auto doc = MustShred(data::PaperExampleXml());
  bat::Oid bit = FindCdataNode(doc, "Bit");
  bat::Oid article = FindElement(doc, "article");
  EXPECT_EQ(EnclosingConcept(doc, bit, {"article"}), article);
  EXPECT_EQ(EnclosingConcept(doc, article, {"article"}), article);
  // No matching tag: falls back to the root.
  EXPECT_EQ(EnclosingConcept(doc, bit, {"nosuchtag"}), doc.root());
}

TEST(Browse, RenderAnswerFormats) {
  auto doc = MustShred(data::PaperExampleXml());
  auto answers = BuildAnswers(doc, MeetsFor(doc, {"Ben", "Bit"}));
  ASSERT_TRUE(answers.ok());
  std::string text = RenderAnswer((*answers)[0]);
  EXPECT_NE(text.find("bibliography > institute > article > author"),
            std::string::npos);
  EXPECT_NE(text.find("distance 4"), std::string::npos);
}

TEST(Browse, EmptyMeetsEmptyAnswers) {
  auto doc = MustShred("<a/>");
  auto answers = BuildAnswers(doc, {});
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(answers->empty());
}

}  // namespace
}  // namespace core
}  // namespace meetxml
