// FIG6 — reproduces paper Figure 6: "Combining meet and fulltext search
// (normalized)".
//
// Workload: the multimedia feature corpus with marker pairs planted at
// controlled tree distance n (x-axis 0..20; distance 1 cannot exist
// between two distinct leaf strings in this data model, see
// data/multimedia_gen.h). For each distance the harness measures
//   (a) full-text search alone ("fulltext only"), and
//   (b) full-text search plus the meet of the two match sets
//       ("fulltext and meet").
// As in the paper, full-text time is normalized to its average across
// all distances, so the plot isolates the meet's (tiny, distance-
// linear) overhead on top of a flat search cost. Expected shape: both
// series flat and nearly identical — the meet costs a few percent at
// most (paper: 1207 ms search vs 2 ms meet).

#include <cstdio>
#include <vector>

#include "core/meet_general.h"
#include "data/multimedia_gen.h"
#include "model/shredder.h"
#include "text/search.h"
#include "util/timer.h"

using namespace meetxml;

namespace {
constexpr int kRepetitions = 25;
}  // namespace

int main() {
  data::MultimediaOptions options;
  options.items = 4000;
  options.max_planted_distance = 20;
  auto corpus = data::GenerateMultimedia(options);
  MEETXML_CHECK_OK(corpus.status());

  auto doc_result = model::Shred(corpus->doc);
  MEETXML_CHECK_OK(doc_result.status());
  const model::StoredDocument& doc = *doc_result;

  // The paper's full-text search is a relational select over all string
  // BATs (a scan); the trigram accelerator is a later-era optimization
  // that would hide the cost profile Figure 6 plots, so it is off here
  // (AB4 quantifies what it buys).
  text::IndexOptions index_options;
  index_options.build_trigrams = false;
  auto search_result = text::FullTextSearch::Build(doc, index_options);
  MEETXML_CHECK_OK(search_result.status());
  const text::FullTextSearch& search = *search_result;

  std::printf("# FIG6: combining meet and fulltext search (normalized)\n");
  std::printf("# corpus: %zu nodes, %zu schema paths, %zu strings\n",
              doc.node_count(), doc.paths().size(), doc.string_count());
  std::printf("# %d repetitions per point; times in ms\n", kRepetitions);

  struct Point {
    int distance;
    double fulltext_ms;
    double total_ms;
    int measured_distance;
  };
  std::vector<Point> points;

  for (const data::PlantedPair& pair : corpus->pairs) {
    double fulltext_ms = 0;
    double meet_ms = 0;
    int measured_distance = -1;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      util::Timer timer;
      auto matches = search.SearchAll({pair.term_a, pair.term_b},
                                      text::MatchMode::kContains);
      MEETXML_CHECK_OK(matches.status());
      fulltext_ms += timer.ElapsedMillis();

      timer.Reset();
      auto inputs = text::FullTextSearch::ToMeetInput(*matches);
      auto meets = core::MeetGeneral(doc, inputs);
      MEETXML_CHECK_OK(meets.status());
      meet_ms += timer.ElapsedMillis();
      if (!meets->empty()) {
        measured_distance = (*meets)[0].witness_distance;
      }
    }
    if (measured_distance != pair.distance) {
      std::printf("# WARNING: planted distance %d measured as %d\n",
                  pair.distance, measured_distance);
    }
    points.push_back(Point{pair.distance, fulltext_ms / kRepetitions,
                           (fulltext_ms + meet_ms) / kRepetitions,
                           measured_distance});
  }

  // Normalize the full-text component to its average, as in the paper.
  double avg_fulltext = 0;
  for (const Point& point : points) avg_fulltext += point.fulltext_ms;
  avg_fulltext /= static_cast<double>(points.size());

  std::printf("#\n# distance  fulltext_only_ms  fulltext_and_meet_ms  "
              "meet_overhead_pct\n");
  for (const Point& point : points) {
    double meet_only = point.total_ms - point.fulltext_ms;
    std::printf("%9d  %16.3f  %20.3f  %17.2f\n", point.distance,
                avg_fulltext, avg_fulltext + meet_only,
                100.0 * meet_only / avg_fulltext);
  }
  std::printf("# expected shape: both series flat; meet adds a small, "
              "slowly growing overhead (paper: 2ms on 1207ms search)\n");
  return 0;
}
