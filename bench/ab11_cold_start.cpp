// AB11 — ablation: cold start, image bytes -> hot executor.
//
// The paper's value proposition is "bulk-load DBLP once, query
// interactively ever after", which makes the image-to-executor path
// the product's cold-start latency. This bench isolates the two
// levers this repo pulls on it:
//
// Part 1 — payload codec: the row-oriented DOC0 payload replays one
// framed (path, owner, value) row per string (an allocation and a
// dispatch each), the columnar DOC1 payload memcpys whole columns and
// adopts one value arena per path. Expected shape: DOC1 decodes the
// dblp corpus several times faster (the acceptance bar is >= 3x for
// executor-from-image).
//
// Part 2 — catalog fan-out: a multi-document store's sections are
// independently checksummed byte ranges, so Catalog::LoadFromBytes
// decodes them on a thread pool. Expected shape: open time for an
// 8-document catalog scales near-linearly with threads until the
// serial container scan dominates.

#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <utility>

#include "data/dblp_gen.h"
#include "model/shredder.h"
#include "model/storage_io.h"
#include "query/executor.h"
#include "store/catalog.h"
#include "text/index_io.h"
#include "xml/serializer.h"

using namespace meetxml;

namespace {

// Same corpus shape as ab9 so the two benches stay comparable.
const model::StoredDocument& SharedDoc() {
  static model::StoredDocument* doc = [] {
    data::DblpOptions options;
    options.icde_papers_per_year = 50;
    options.other_papers_per_year = 150;
    options.journal_articles_per_year = 50;
    auto generated = data::GenerateDblp(options);
    MEETXML_CHECK_OK(generated.status());
    xml::SerializeOptions serialize_options;
    serialize_options.indent = 1;
    std::string xml_text = xml::Serialize(*generated, serialize_options);
    auto shredded = model::ShredXmlTextStreaming(xml_text);
    MEETXML_CHECK_OK(shredded.status());
    return new model::StoredDocument(std::move(*shredded));
  }();
  return *doc;
}

const std::string& Image(model::DocumentPayloadFormat format) {
  auto make = [](model::DocumentPayloadFormat payload_format) {
    model::SaveOptions options;
    options.payload_format = payload_format;
    auto bytes = model::SaveToBytes(SharedDoc(), options);
    MEETXML_CHECK_OK(bytes.status());
    return new std::string(std::move(*bytes));
  };
  static const std::string* row =
      make(model::DocumentPayloadFormat::kRowOriented);
  static const std::string* columnar =
      make(model::DocumentPayloadFormat::kColumnar);
  return format == model::DocumentPayloadFormat::kColumnar ? *columnar
                                                           : *row;
}

// ---- Part 1: payload codec ----------------------------------------------

void ExecutorFromImage(benchmark::State& state,
                       model::DocumentPayloadFormat format) {
  const std::string& bytes = Image(format);
  for (auto _ : state) {
    auto store = text::LoadStoreFromBytes(bytes);
    MEETXML_CHECK_OK(store.status());
    auto executor = query::Executor::Build(store->doc);
    MEETXML_CHECK_OK(executor.status());
    benchmark::DoNotOptimize(executor);
  }
  state.counters["image_MB"] = static_cast<double>(bytes.size()) / 1e6;
  state.counters["MB_per_s"] = benchmark::Counter(
      static_cast<double>(bytes.size()) / 1e6,
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_ExecutorFromImageDoc0(benchmark::State& state) {
  ExecutorFromImage(state, model::DocumentPayloadFormat::kRowOriented);
}
BENCHMARK(BM_ExecutorFromImageDoc0)->Unit(benchmark::kMillisecond);

void BM_ExecutorFromImageDoc1(benchmark::State& state) {
  ExecutorFromImage(state, model::DocumentPayloadFormat::kColumnar);
}
BENCHMARK(BM_ExecutorFromImageDoc1)->Unit(benchmark::kMillisecond);

// The pure payload decode, without the executor build on top.
void DocumentDecode(benchmark::State& state,
                    model::DocumentPayloadFormat format) {
  const std::string& bytes = Image(format);
  for (auto _ : state) {
    auto doc = model::LoadFromBytes(bytes);
    MEETXML_CHECK_OK(doc.status());
    benchmark::DoNotOptimize(doc);
  }
}

void BM_DocumentDecodeDoc0(benchmark::State& state) {
  DocumentDecode(state, model::DocumentPayloadFormat::kRowOriented);
}
BENCHMARK(BM_DocumentDecodeDoc0)->Unit(benchmark::kMillisecond);

void BM_DocumentDecodeDoc1(benchmark::State& state) {
  DocumentDecode(state, model::DocumentPayloadFormat::kColumnar);
}
BENCHMARK(BM_DocumentDecodeDoc1)->Unit(benchmark::kMillisecond);

// ---- Part 2: catalog open fan-out ---------------------------------------

// A catalog of `count` mid-sized documents, serialized once per
// (count, format) pair.
const std::string& CatalogImage(int count,
                                model::DocumentPayloadFormat format) {
  static std::map<std::pair<int, int>, std::string>* cache =
      new std::map<std::pair<int, int>, std::string>();
  auto key = std::make_pair(count, static_cast<int>(format));
  auto it = cache->find(key);
  if (it != cache->end()) return it->second;

  store::Catalog catalog;
  for (int i = 0; i < count; ++i) {
    data::DblpOptions options;
    options.seed = 7 + i;
    options.icde_papers_per_year = 10;
    options.other_papers_per_year = 40;
    options.journal_articles_per_year = 10;
    auto generated = data::GenerateDblp(options);
    MEETXML_CHECK_OK(generated.status());
    auto shredded =
        model::ShredXmlTextStreaming(xml::Serialize(*generated));
    MEETXML_CHECK_OK(shredded.status());
    MEETXML_CHECK_OK(
        catalog.Add("dblp_" + std::to_string(i), std::move(*shredded))
            .status());
  }
  auto bytes = catalog.SaveToBytes(format);
  MEETXML_CHECK_OK(bytes.status());
  return (*cache)[key] = std::move(*bytes);
}

// Args: (document count, decode threads).
void BM_CatalogOpen(benchmark::State& state) {
  const std::string& bytes = CatalogImage(
      static_cast<int>(state.range(0)),
      model::DocumentPayloadFormat::kColumnar);
  store::CatalogLoadOptions options;
  options.threads = static_cast<unsigned>(state.range(1));
  for (auto _ : state) {
    auto catalog = store::Catalog::LoadFromBytes(bytes, options);
    MEETXML_CHECK_OK(catalog.status());
    benchmark::DoNotOptimize(catalog);
  }
  state.counters["docs"] = static_cast<double>(state.range(0));
  state.counters["threads"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_CatalogOpen)
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({2, 2})
    ->Args({8, 1})
    ->Args({8, 2})
    ->Args({8, 4})
    ->Args({8, 8})
    ->Unit(benchmark::kMillisecond);

// The serial row-oriented reference: what an 8-document store paid
// before this PR (legacy payload, one decode thread).
void BM_CatalogOpenDoc0Serial(benchmark::State& state) {
  const std::string& bytes = CatalogImage(
      static_cast<int>(state.range(0)),
      model::DocumentPayloadFormat::kRowOriented);
  store::CatalogLoadOptions options;
  options.threads = 1;
  for (auto _ : state) {
    auto catalog = store::Catalog::LoadFromBytes(bytes, options);
    MEETXML_CHECK_OK(catalog.status());
    benchmark::DoNotOptimize(catalog);
  }
  state.counters["docs"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_CatalogOpenDoc0Serial)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
