// AB4 — ablation: full-text machinery.
//
// Measures inverted-index build time, word-query latency, and the
// paper's `contains` substring search with and without the trigram
// accelerator. Expected shape: word queries are O(matches); the trigram
// path beats the full scan by orders of magnitude for selective
// needles and degrades gracefully for common ones.

#include <benchmark/benchmark.h>

#include "data/dblp_gen.h"
#include "model/shredder.h"
#include "text/search.h"

using namespace meetxml;

namespace {

const model::StoredDocument& SharedDoc() {
  static model::StoredDocument* doc = [] {
    data::DblpOptions options;
    options.icde_papers_per_year = 60;
    options.other_papers_per_year = 180;
    options.journal_articles_per_year = 60;
    auto generated = data::GenerateDblp(options);
    MEETXML_CHECK_OK(generated.status());
    auto shredded = model::Shred(*generated);
    MEETXML_CHECK_OK(shredded.status());
    return new model::StoredDocument(std::move(*shredded));
  }();
  return *doc;
}

const text::FullTextSearch& SharedSearch(bool trigrams) {
  static text::FullTextSearch* with = nullptr;
  static text::FullTextSearch* without = nullptr;
  text::FullTextSearch*& slot = trigrams ? with : without;
  if (slot == nullptr) {
    text::IndexOptions options;
    options.build_trigrams = trigrams;
    auto built = text::FullTextSearch::Build(SharedDoc(), options);
    MEETXML_CHECK_OK(built.status());
    slot = new text::FullTextSearch(std::move(*built));
  }
  return *slot;
}

void BM_IndexBuild(benchmark::State& state) {
  const auto& doc = SharedDoc();
  text::IndexOptions options;
  options.build_trigrams = state.range(0) != 0;
  for (auto _ : state) {
    auto built = text::FullTextSearch::Build(doc, options);
    benchmark::DoNotOptimize(built);
  }
  state.counters["strings"] = static_cast<double>(doc.string_count());
}
BENCHMARK(BM_IndexBuild)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_WordQuery(benchmark::State& state) {
  const auto& search = SharedSearch(true);
  for (auto _ : state) {
    auto matches = search.Search("icde", text::MatchMode::kWord);
    benchmark::DoNotOptimize(matches);
  }
}
BENCHMARK(BM_WordQuery);

void BM_ContainsTrigram(benchmark::State& state) {
  const auto& search = SharedSearch(true);
  const char* needle = state.range(0) == 0 ? "ICDE" : "ing";
  for (auto _ : state) {
    auto matches = search.Search(needle, text::MatchMode::kContains);
    benchmark::DoNotOptimize(matches);
  }
}
BENCHMARK(BM_ContainsTrigram)->Arg(0)->Arg(1);

void BM_ContainsScan(benchmark::State& state) {
  const auto& search = SharedSearch(false);
  const char* needle = state.range(0) == 0 ? "ICDE" : "ing";
  for (auto _ : state) {
    auto matches = search.Search(needle, text::MatchMode::kContains);
    benchmark::DoNotOptimize(matches);
  }
}
BENCHMARK(BM_ContainsScan)->Arg(0)->Arg(1);

void BM_ContainsIgnoreCase(benchmark::State& state) {
  const auto& search = SharedSearch(true);
  for (auto _ : state) {
    auto matches =
        search.Search("icde", text::MatchMode::kContainsIgnoreCase);
    benchmark::DoNotOptimize(matches);
  }
}
BENCHMARK(BM_ContainsIgnoreCase);

}  // namespace

BENCHMARK_MAIN();
