// Reference-aware proximity meets (the paper's §7 future work).
//
// "XML documents may also contain references (IDs and IDREFs) that
// potentially break the tree structure ... If we interpret the meet
// operator as some variant of nearest neighbor search, we might find
// generalizations on graph structures" (§3/§7). This module implements
// that generalization: ID/IDREF attribute arcs are materialized as
// extra graph edges, and the *proximity meet* of two nodes is the node
// minimizing the summed graph distance to both — on a pure tree this
// coincides with the LCA, with references it can cut across subtrees.
// Cycles (which the paper warns add "significant complexity") are
// handled by plain BFS visited-sets, and a distance cap keeps the
// search bounded, mirroring d-meet.

#ifndef MEETXML_CORE_IDREF_H_
#define MEETXML_CORE_IDREF_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/input_set.h"
#include "util/result.h"

namespace meetxml {
namespace core {

/// \brief Which attributes define identity and references.
struct IdrefOptions {
  /// Attribute names whose value is a node's ID.
  std::vector<std::string> id_attributes = {"id"};
  /// Attribute names whose (whitespace-separated) values reference IDs.
  std::vector<std::string> idref_attributes = {"idref", "ref"};
};

/// \brief The ID/IDREF overlay graph of a document.
class IdrefGraph {
 public:
  /// \brief Scans the attribute relations and materializes reference
  /// edges. Dangling references are counted, not errors (real-world
  /// XML has them).
  static util::Result<IdrefGraph> Build(const StoredDocument& doc,
                                        const IdrefOptions& options = {});

  /// \brief Reference edges leaving `node` (targets of its IDREFs).
  const std::vector<Oid>& OutRefs(Oid node) const;
  /// \brief Reference edges entering `node` (nodes that reference it).
  const std::vector<Oid>& InRefs(Oid node) const;

  size_t edge_count() const { return edge_count_; }
  size_t dangling_count() const { return dangling_count_; }
  size_t id_count() const { return ids_.size(); }

  /// \brief Resolves an ID string to its node; kInvalidOid if unknown.
  Oid Resolve(std::string_view id) const;

 private:
  std::unordered_map<std::string, Oid> ids_;
  std::unordered_map<Oid, std::vector<Oid>> out_;
  std::unordered_map<Oid, std::vector<Oid>> in_;
  size_t edge_count_ = 0;
  size_t dangling_count_ = 0;
};

/// \brief Result of a proximity meet.
struct ProximityMeet {
  /// The connecting node (minimum summed distance to both inputs).
  Oid meet;
  /// Graph distance from the first input to the meet.
  int distance_a;
  /// Graph distance from the second input to the meet.
  int distance_b;
};

/// \brief Nearest connecting concept of two nodes on the tree + IDREF
/// graph (edges: parent/child both ways, references both ways).
/// Returns NotFound when the nodes are further than `max_distance`
/// apart through every route. On a reference-free document this equals
/// the LCA with distance_a + distance_b == the tree distance.
util::Result<ProximityMeet> GraphMeet(const StoredDocument& doc,
                                      const IdrefGraph& graph, Oid a,
                                      Oid b, int max_distance = 64);

/// \brief Graph distance (tree + reference edges) between two nodes;
/// NotFound if above `max_distance`.
util::Result<int> GraphDistance(const StoredDocument& doc,
                                const IdrefGraph& graph, Oid a, Oid b,
                                int max_distance = 64);

}  // namespace core
}  // namespace meetxml

#endif  // MEETXML_CORE_IDREF_H_
