// Read-only memory-mapped files for the image loaders.
//
// Opening a multi-hundred-megabyte store image used to mean reading the
// whole file into a std::string before the first section checksum ran.
// MmapFile maps the file instead: the loader decodes straight out of
// the page cache, pages fault in as the section scan touches them, and
// the copy (plus its transient doubling of peak RSS) disappears. On
// platforms without mmap — or when mapping fails for any reason — the
// wrapper silently falls back to the buffered read, so callers are
// portable without caring which path they got.
//
// Lifetime contract. The view returned by bytes() is valid for the
// lifetime of the MmapFile object. Copy-mode loaders finish decoding
// before letting it go out of scope; the zero-copy (view-mode) loaders
// instead pin the mapping with OpenShared — every decoded document
// holds a std::shared_ptr<const MmapFile> to its backing image, so the
// mapping is released exactly when the last borrower dies
// (model/storage_io.h documents who pins what).

#ifndef MEETXML_UTIL_MMAP_FILE_H_
#define MEETXML_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "util/result.h"

namespace meetxml {
namespace util {

/// \brief A read-only file, memory-mapped when the platform allows it
/// and buffered into memory otherwise. Move-only RAII: the mapping (or
/// buffer) is released on destruction.
class MmapFile {
 public:
  /// \brief Access-pattern hints forwarded to the kernel (madvise).
  enum class Advice {
    kNormal,      ///< No special treatment.
    kWillNeed,    ///< The whole file will be read soon (prefault ahead).
    kRandom,      ///< Expect random point accesses (don't read ahead).
    kSequential,  ///< Expect a front-to-back scan (aggressive read-ahead).
  };

  /// \brief Opens and maps `path`, applying `advice` to the fresh
  /// mapping. NotFound (with the path and the errno text) when the
  /// file cannot be opened, InvalidArgument for empty files — an
  /// empty file can never be a valid image, and rejecting it here
  /// gives a clearer message than a decoder's "bad magic". Mapping
  /// failures fall back to a buffered read.
  static Result<MmapFile> Open(const std::string& path,
                               Advice advice = Advice::kNormal);

  /// \brief Open variant for borrowers: the mapping arrives behind a
  /// shared_ptr so decoded objects can pin it past the caller's scope
  /// (the view-mode loaders store a copy of this handle per document,
  /// advised kWillNeed so the decode's validation scan prefaults).
  static Result<std::shared_ptr<const MmapFile>> OpenShared(
      const std::string& path, Advice advice = Advice::kNormal);

  MmapFile() = default;
  ~MmapFile() { Release(); }

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }
  MmapFile& operator=(MmapFile&& other) noexcept {
    if (this != &other) {
      Release();
      mapped_ = other.mapped_;
      mapped_size_ = other.mapped_size_;
      buffer_ = std::move(other.buffer_);
      other.mapped_ = nullptr;
      other.mapped_size_ = 0;
    }
    return *this;
  }

  /// \brief The file's contents; valid while this object lives.
  std::string_view bytes() const {
    if (mapped_ != nullptr) {
      return std::string_view(static_cast<const char*>(mapped_),
                              mapped_size_);
    }
    return buffer_;
  }

  /// \brief True when the contents are served by a mapping rather than
  /// a heap buffer (introspection for tests and diagnostics).
  bool is_mapped() const { return mapped_ != nullptr; }

  /// \brief Best-effort access hint for the mapping. A no-op on
  /// platforms without madvise and for the buffered fallback; never
  /// fails — a rejected hint costs nothing but the syscall.
  void Advise(Advice advice) const;

 private:
  void Release();

  void* mapped_ = nullptr;
  size_t mapped_size_ = 0;
  std::string buffer_;
};

}  // namespace util
}  // namespace meetxml

#endif  // MEETXML_UTIL_MMAP_FILE_H_
