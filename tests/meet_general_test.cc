// Tests for the general meet (paper Fig. 5): minimal meets over many
// input sets, order invariance, no combinatorial explosion, options.

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "core/meet_general.h"
#include "core/meet_pair.h"
#include "data/paper_example.h"
#include "data/random_tree.h"
#include "model/shredder.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace meetxml {
namespace core {
namespace {

using meetxml::testing::FindCdataNode;
using meetxml::testing::FindElement;
using meetxml::testing::MustShred;
using meetxml::testing::ReferenceLca;

AssocSet SingletonSet(const model::StoredDocument& doc, Oid node) {
  return AssocSet{doc.path(node), {node}};
}

// ---- Semantics on the paper example ------------------------------------

TEST(MeetGeneral, TwoSingletonsReduceToPairMeet) {
  auto doc = MustShred(data::PaperExampleXml());
  Oid ben = FindCdataNode(doc, "Ben");
  Oid bit = FindCdataNode(doc, "Bit");
  auto results = MeetGeneral(
      doc, {SingletonSet(doc, ben), SingletonSet(doc, bit)});
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ(doc.tag((*results)[0].meet), "author");
  EXPECT_EQ((*results)[0].witnesses.size(), 2u);
  EXPECT_EQ((*results)[0].witness_distance, 4);
}

TEST(MeetGeneral, DuplicateAssociationMeetsAtItself) {
  // "Bob" and "Byte" both hit the same cdata node: the meet is that
  // node, at distance 0.
  auto doc = MustShred(data::PaperExampleXml());
  Oid bob_byte = FindCdataNode(doc, "Bob Byte");
  auto results = MeetGeneral(
      doc, {SingletonSet(doc, bob_byte), SingletonSet(doc, bob_byte)});
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].meet, bob_byte);
  EXPECT_EQ((*results)[0].witness_distance, 0);
  // One merged item carrying both sources.
  ASSERT_EQ((*results)[0].witnesses.size(), 2u);
  EXPECT_NE((*results)[0].witnesses[0].source,
            (*results)[0].witnesses[1].source);
}

TEST(MeetGeneral, PaperQueryBitAnd1999) {
  // The reformulated intro query: meet over matches of 'Bit' and '1999'.
  // Expected answer: exactly { article } (the paper's §3.2 result).
  auto doc = MustShred(data::PaperExampleXml());
  Oid bit = FindCdataNode(doc, "Bit");

  AssocSet years;
  for (PathId path : doc.string_paths()) {
    const auto& table = doc.StringsAt(path);
    for (size_t row = 0; row < table.size(); ++row) {
      if (table.tail(row) == "1999") {
        years.path = path;
        years.nodes.push_back(table.head(row));
      }
    }
  }
  ASSERT_EQ(years.nodes.size(), 2u);

  auto results =
      MeetGeneral(doc, {SingletonSet(doc, bit), years});
  ASSERT_TRUE(results.ok());
  // Bit + its own article's 1999 -> article. The other 1999 climbs
  // alone and is dropped: no bibliography/institute noise.
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ(doc.tag((*results)[0].meet), "article");
  Oid first_article = FindElement(doc, "article", 0);
  EXPECT_EQ((*results)[0].meet, first_article);
}

TEST(MeetGeneral, ThreeItemsConvergeToOneMeet) {
  auto doc = MustShred(data::PaperExampleXml());
  Oid ben = FindCdataNode(doc, "Ben");
  Oid bit = FindCdataNode(doc, "Bit");
  Oid title = FindCdataNode(doc, "How to Hack");
  auto results = MeetGeneral(doc, {SingletonSet(doc, ben),
                                   SingletonSet(doc, bit),
                                   SingletonSet(doc, title)});
  ASSERT_TRUE(results.ok());
  // Ben+Bit meet at author (deepest); the title cdata then climbs alone
  // and dies at the root: exactly one meet.
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ(doc.tag((*results)[0].meet), "author");
  EXPECT_EQ((*results)[0].witnesses.size(), 2u);
}

TEST(MeetGeneral, SameSetConvergenceCountsAsMeet) {
  // Fig. 5's extension: a node is a meet if it is the LCA of at least
  // two input nodes, regardless of which input relation they came from.
  auto doc = MustShred(data::PaperExampleXml());
  AssocSet years;
  for (PathId path : doc.string_paths()) {
    const auto& table = doc.StringsAt(path);
    for (size_t row = 0; row < table.size(); ++row) {
      if (table.tail(row) == "1999") {
        years.path = path;
        years.nodes.push_back(table.head(row));
      }
    }
  }
  ASSERT_EQ(years.nodes.size(), 2u);
  auto results = MeetGeneral(doc, {years});
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ(doc.tag((*results)[0].meet), "institute");
}

TEST(MeetGeneral, LoneItemProducesNothing) {
  auto doc = MustShred(data::PaperExampleXml());
  Oid bit = FindCdataNode(doc, "Bit");
  auto results = MeetGeneral(doc, {SingletonSet(doc, bit)});
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
}

TEST(MeetGeneral, EmptyInputProducesNothing) {
  auto doc = MustShred(data::PaperExampleXml());
  auto results = MeetGeneral(doc, {});
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
}

// ---- Options -----------------------------------------------------------

TEST(MeetGeneral, ExcludeRootSuppressesRootMeets) {
  auto doc = MustShred("<r><a>x</a><b>y</b></r>");
  Oid x = FindCdataNode(doc, "x");
  Oid y = FindCdataNode(doc, "y");
  auto all = MeetGeneral(doc, {SingletonSet(doc, x), SingletonSet(doc, y)});
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 1u);
  EXPECT_EQ((*all)[0].meet, doc.root());

  auto restricted =
      MeetGeneral(doc, {SingletonSet(doc, x), SingletonSet(doc, y)},
                  ExcludeRootOptions(doc));
  ASSERT_TRUE(restricted.ok());
  EXPECT_TRUE(restricted->empty());
}

TEST(MeetGeneral, MaxDistanceDropsWideMeets) {
  auto doc = MustShred(data::PaperExampleXml());
  Oid ben = FindCdataNode(doc, "Ben");
  Oid bit = FindCdataNode(doc, "Bit");
  MeetOptions options;
  options.max_distance = 3;
  auto results = MeetGeneral(
      doc, {SingletonSet(doc, ben), SingletonSet(doc, bit)}, options);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
}

TEST(MeetGeneral, OverDistanceItemStillConsumesItsPartnerAtItsMeet) {
  // Regression: a lone item whose climb distance already exceeds
  // max_distance must not be dropped early. It can never appear in a
  // *reported* meet, but at its (unreported) meet it still consumes
  // its partner — dropping it would free that partner to climb on and
  // form extra meets higher in the tree, changing d-meet answers.
  auto doc = MustShred(
      "<r><host><d1><d2><d3><d4><d5>far</d5></d4></d3></d2></d1>"
      "<near>mid</near></host><top>beta</top></r>");
  std::vector<AssocSet> inputs = {
      SingletonSet(doc, FindCdataNode(doc, "far")),
      SingletonSet(doc, FindCdataNode(doc, "mid")),
      SingletonSet(doc, FindCdataNode(doc, "beta"))};

  // far/mid meet at <host> with span 6+2=8: over the bound, so the
  // meet is unreported — but far and mid are consumed there. beta then
  // climbs to the root alone: the answer is empty. An early drop of
  // far (its distance exceeds 5 once it lifts into <host>) would
  // instead leave mid free to meet beta at <r> with span 3+2=5 <= 5.
  MeetOptions bounded;
  bounded.max_distance = 5;
  MeetGeneralStats stats;
  auto results = MeetGeneral(doc, inputs, bounded, &stats);
  ASSERT_TRUE(results.ok()) << results.status();
  EXPECT_TRUE(results->empty());
  EXPECT_EQ(stats.meets_found, 0u);

  // Widening the bound to the host meet's span reports exactly that
  // meet — <r> never appears in any d-meet answer for these inputs.
  MeetOptions wide;
  wide.max_distance = 8;
  auto host_only = MeetGeneral(doc, inputs, wide);
  ASSERT_TRUE(host_only.ok()) << host_only.status();
  ASSERT_EQ(host_only->size(), 1u);
  EXPECT_EQ(doc.tag((*host_only)[0].meet), "host");
  EXPECT_EQ((*host_only)[0].witness_distance, 8);
}

TEST(MeetGeneral, MaxResultsTruncatesAfterRanking) {
  auto doc = MustShred(
      "<r><p><q>a1</q><q>a2</q></p><s>b1</s><s>b2</s></r>");
  // Two meets: {a1,a2} at <p> (distance 4), {b1,b2} at <r> (distance 4)
  // ... both pairs converge; limit to 1 result.
  std::vector<AssocSet> inputs;
  for (const char* text : {"a1", "a2", "b1", "b2"}) {
    inputs.push_back(SingletonSet(doc, FindCdataNode(doc, text)));
  }
  MeetOptions options;
  options.max_results = 1;
  auto results = MeetGeneral(doc, inputs, options);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 1u);
}

TEST(MeetGeneral, ResultsRankedByWitnessDistance) {
  auto doc = MustShred(
      "<r><deep><deeper><x>a1</x><x>a2</x></deeper></deep>"
      "<wide><l><m>b1</m></l><n><o>b2</o></n></wide></r>");
  std::vector<AssocSet> inputs;
  for (const char* text : {"a1", "a2", "b1", "b2"}) {
    inputs.push_back(SingletonSet(doc, FindCdataNode(doc, text)));
  }
  auto results = MeetGeneral(doc, inputs);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 2u);
  // a1/a2 are 4 edges apart (meet at deeper); b1/b2 are 6 apart.
  EXPECT_EQ(doc.tag((*results)[0].meet), "deeper");
  EXPECT_EQ(doc.tag((*results)[1].meet), "wide");
  EXPECT_LE((*results)[0].witness_distance,
            (*results)[1].witness_distance);
}

// ---- Attribute associations --------------------------------------------

TEST(MeetGeneral, AttributeAndCdataMeetAtOwnerSubtree) {
  auto doc = MustShred(data::PaperExampleXml());
  Oid article = FindElement(doc, "article");
  PathId key_path = doc.paths().Find(doc.path(article),
                                     model::StepKind::kAttribute, "key");
  ASSERT_NE(key_path, bat::kInvalidPathId);
  Oid bit = FindCdataNode(doc, "Bit");

  AssocSet key_set{key_path, {article}};
  auto results =
      MeetGeneral(doc, {key_set, SingletonSet(doc, bit)});
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].meet, article);
  EXPECT_EQ((*results)[0].witness_distance, 4);  // @key arc + 3 edges
}

// ---- Invariance and explosion control ----------------------------------

TEST(MeetGeneral, InputOrderDoesNotChangeResults) {
  auto doc = MustShred(data::PaperExampleXml());
  std::vector<AssocSet> inputs;
  for (const char* text : {"Ben", "Bit", "Bob Byte", "How to Hack"}) {
    inputs.push_back(SingletonSet(doc, FindCdataNode(doc, text)));
  }
  auto forward = MeetGeneral(doc, inputs);
  std::reverse(inputs.begin(), inputs.end());
  auto backward = MeetGeneral(doc, inputs);
  ASSERT_TRUE(forward.ok() && backward.ok());
  ASSERT_EQ(forward->size(), backward->size());
  for (size_t i = 0; i < forward->size(); ++i) {
    EXPECT_EQ((*forward)[i].meet, (*backward)[i].meet);
    EXPECT_EQ((*forward)[i].witness_distance,
              (*backward)[i].witness_distance);
  }
}

TEST(MeetGeneral, NoCombinatorialExplosion) {
  // n left matches and n right matches under one parent produce O(n)
  // consumed witnesses in O(1) meets — not n^2 pairs.
  std::string xml_text = "<r>";
  for (int i = 0; i < 100; ++i) xml_text += "<l>left</l>";
  for (int i = 0; i < 100; ++i) xml_text += "<m>right</m>";
  xml_text += "</r>";
  auto doc = MustShred(xml_text);

  std::vector<AssocSet> inputs(2);
  for (PathId path : doc.string_paths()) {
    const auto& table = doc.StringsAt(path);
    for (size_t row = 0; row < table.size(); ++row) {
      int which = table.tail(row) == "left" ? 0 : 1;
      inputs[which].path = path;
      inputs[which].nodes.push_back(table.head(row));
    }
  }
  ASSERT_EQ(inputs[0].nodes.size(), 100u);
  ASSERT_EQ(inputs[1].nodes.size(), 100u);

  auto results = MeetGeneral(doc, inputs);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].meet, doc.root());
  EXPECT_EQ((*results)[0].witnesses.size(), 200u);
}

// ---- Stats ---------------------------------------------------------------

TEST(MeetGeneral, ReportsExecutionStats) {
  auto doc = MustShred(data::PaperExampleXml());
  Oid ben = FindCdataNode(doc, "Ben");
  Oid bit = FindCdataNode(doc, "Bit");
  MeetGeneralStats stats;
  auto results = MeetGeneral(
      doc, {SingletonSet(doc, ben), SingletonSet(doc, bit)}, {}, &stats);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(stats.items_seeded, 2u);
  // Ben lifts cdata->firstname (2 steps), Bit cdata->lastname (2);
  // they converge at author: 4 lifts total.
  EXPECT_EQ(stats.lifts, 4u);
  EXPECT_GT(stats.paths_touched, 0u);
}

TEST(MeetGeneral, StatsLiftsBoundedByDepthSum) {
  auto doc = MustShred(data::PaperExampleXml());
  std::vector<Oid> all;
  for (Oid oid = 0; oid < doc.node_count(); ++oid) all.push_back(oid);
  MeetGeneralStats stats;
  std::vector<AssocSet> inputs;
  {
    // Group by path (uniformly typed sets).
    std::map<PathId, AssocSet> grouped;
    for (Oid oid : all) {
      auto& set = grouped[doc.path(oid)];
      set.path = doc.path(oid);
      set.nodes.push_back(oid);
    }
    for (auto& [path, set] : grouped) inputs.push_back(std::move(set));
  }
  auto results = MeetGeneral(doc, inputs, {}, &stats);
  ASSERT_TRUE(results.ok());
  size_t depth_sum = 0;
  for (Oid oid : all) depth_sum += doc.depth(oid);
  EXPECT_LE(stats.lifts, depth_sum);
  EXPECT_EQ(stats.items_seeded, all.size());
}

// ---- Property tests -----------------------------------------------------

class MeetGeneralProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MeetGeneralProperty, WitnessesPartitionAndMeetsAreLcas) {
  data::RandomTreeOptions options;
  options.seed = GetParam();
  options.target_elements = 250;
  options.tag_vocabulary = 4;
  auto generated = data::GenerateRandomTree(options);
  ASSERT_TRUE(generated.ok());
  auto shredded = model::Shred(*generated);
  ASSERT_TRUE(shredded.ok());
  const model::StoredDocument& doc = *shredded;

  util::Rng rng(GetParam() * 7 + 5);
  std::vector<Oid> sample;
  for (int i = 0; i < 40; ++i) {
    sample.push_back(static_cast<Oid>(rng.NextBelow(doc.node_count())));
  }
  std::sort(sample.begin(), sample.end());
  sample.erase(std::unique(sample.begin(), sample.end()), sample.end());

  auto results = MeetGeneralNodes(doc, sample);
  ASSERT_TRUE(results.ok());

  std::vector<Oid> consumed;
  for (const GeneralMeet& meet : *results) {
    ASSERT_GE(meet.witnesses.size(), 2u);
    // The meet is an ancestor of every witness, and for at least one
    // witness pair it is the exact LCA.
    bool exact = false;
    for (const MeetWitness& w : meet.witnesses) {
      EXPECT_TRUE(doc.IsAncestorOrSelf(meet.meet, w.assoc.node));
      consumed.push_back(w.assoc.node);
    }
    for (size_t i = 0; i < meet.witnesses.size() && !exact; ++i) {
      for (size_t j = i + 1; j < meet.witnesses.size(); ++j) {
        if (ReferenceLca(doc, meet.witnesses[i].assoc.node,
                         meet.witnesses[j].assoc.node) == meet.meet) {
          exact = true;
          break;
        }
      }
    }
    EXPECT_TRUE(exact);
  }

  // Consumed witnesses are unique (each input node in at most one meet).
  std::sort(consumed.begin(), consumed.end());
  EXPECT_TRUE(std::adjacent_find(consumed.begin(), consumed.end()) ==
              consumed.end());
  // Every input is either consumed by some meet or climbs to the root
  // alone; since >= 2 arrivals at the root converge there, at most one
  // input can end unconsumed.
  EXPECT_GE(consumed.size() + 1, sample.size());
}

TEST_P(MeetGeneralProperty, MinimalityNoDeeperCommonAncestorExists) {
  data::RandomTreeOptions options;
  options.seed = GetParam() + 99;
  options.target_elements = 150;
  auto generated = data::GenerateRandomTree(options);
  ASSERT_TRUE(generated.ok());
  auto shredded = model::Shred(*generated);
  ASSERT_TRUE(shredded.ok());
  const model::StoredDocument& doc = *shredded;

  util::Rng rng(GetParam());
  std::vector<Oid> sample;
  for (int i = 0; i < 20; ++i) {
    sample.push_back(static_cast<Oid>(rng.NextBelow(doc.node_count())));
  }
  std::sort(sample.begin(), sample.end());
  sample.erase(std::unique(sample.begin(), sample.end()), sample.end());

  auto results = MeetGeneralNodes(doc, sample);
  ASSERT_TRUE(results.ok());
  // Minimality (Definition 6 as generalized in §3.2): the roll-up moves
  // all items up in lockstep, so two witnesses that ended up in the same
  // meet must have their exact LCA at that meet — a deeper common
  // ancestor would have consumed them in an earlier bucket.
  for (const GeneralMeet& meet : *results) {
    for (size_t i = 0; i < meet.witnesses.size(); ++i) {
      for (size_t j = i + 1; j < meet.witnesses.size(); ++j) {
        Oid lca = ReferenceLca(doc, meet.witnesses[i].assoc.node,
                               meet.witnesses[j].assoc.node);
        EXPECT_EQ(lca, meet.meet);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeetGeneralProperty,
                         ::testing::Values(17, 23, 42, 71, 101));

}  // namespace
}  // namespace core
}  // namespace meetxml
