// Tests for the observability layer (src/obs): histogram bucketing,
// sharded-counter merging under threads, trace spans on an injected
// clock, the query-log ring, the Prometheus exposition, and the worker
// pool's queue-wait accounting. Everything timing-shaped runs on a
// hand-stepped fake clock — no sleeps, so the pinned values are exact
// and the suite is sanitizer-friendly.

#include <atomic>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/worker_pool.h"

namespace meetxml {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// Histogram bucketing.

TEST(ObsHistogramTest, BucketIndexIsBitWidth) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  EXPECT_EQ(Histogram::BucketIndex(~uint64_t{0}), 64u);
}

TEST(ObsHistogramTest, BucketUpperBoundsInvertTheIndex) {
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7u);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1023u);
  EXPECT_EQ(Histogram::BucketUpperBound(64), ~uint64_t{0});
  // Every value lands in the bucket whose upper bound admits it.
  for (uint64_t value : {0ull, 1ull, 5ull, 100ull, 65535ull, 1ull << 40}) {
    size_t bucket = Histogram::BucketIndex(value);
    EXPECT_LE(value, Histogram::BucketUpperBound(bucket)) << value;
    if (bucket > 0) {
      EXPECT_GT(value, Histogram::BucketUpperBound(bucket - 1)) << value;
    }
  }
}

TEST(ObsHistogramTest, SummaryQuantilesAreBucketUpperBounds) {
  Histogram histogram;
  // 90 fast samples at 5 us (bucket 3, upper bound 7) and 10 slow ones
  // at 1000 us (bucket 10, upper bound 1023): the p50/p90 resolve to
  // the fast bucket, the p99 to the slow one.
  for (int i = 0; i < 90; ++i) histogram.Record(5);
  for (int i = 0; i < 10; ++i) histogram.Record(1000);
  HistogramSummary summary = histogram.Summary();
  EXPECT_EQ(summary.count, 100u);
  EXPECT_EQ(summary.sum, 90u * 5 + 10u * 1000);
  EXPECT_EQ(summary.p50, 7u);
  EXPECT_EQ(summary.p90, 7u);
  EXPECT_EQ(summary.p99, 1023u);
}

TEST(ObsHistogramTest, EmptySummaryIsAllZero) {
  Histogram histogram;
  HistogramSummary summary = histogram.Summary();
  EXPECT_EQ(summary.count, 0u);
  EXPECT_EQ(summary.sum, 0u);
  EXPECT_EQ(summary.p50, 0u);
}

// ---------------------------------------------------------------------------
// Sharded merge correctness under concurrency (meaningful under TSan:
// 8 writers race onto the shard cells while a reader merges).

TEST(ObsShardingTest, CounterLosesNoIncrementsAcrossThreads) {
  Counter counter;
  Histogram histogram;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Add(1);
        histogram.Record(static_cast<uint64_t>(t));
        if (i % 4096 == 0) {
          counter.Value();  // concurrent reads must also be clean
          histogram.Summary();
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), uint64_t{kThreads} * kPerThread);
  HistogramSummary summary = histogram.Summary();
  EXPECT_EQ(summary.count, uint64_t{kThreads} * kPerThread);
  uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    expected_sum += uint64_t{kPerThread} * static_cast<uint64_t>(t);
  }
  EXPECT_EQ(summary.sum, expected_sum);
}

TEST(ObsShardingTest, GaugeTracksAddAndSet) {
  Gauge gauge;
  gauge.Add(5);
  gauge.Add(-2);
  EXPECT_EQ(gauge.Value(), 3);
  gauge.Set(-7);
  EXPECT_EQ(gauge.Value(), -7);
}

// ---------------------------------------------------------------------------
// Trace spans on a hand-stepped clock.

TEST(ObsTraceTest, SpansAttributeElapsedTimeToStages) {
  uint64_t now = 0;
  QueryTrace trace([&now] { return now; });
  {
    TraceSpan parse(&trace, Stage::kParse);
    now += 3;
  }
  EXPECT_EQ(trace.stage_us(Stage::kParse), 3u);
  {
    TraceSpan route(&trace, Stage::kRoute);
    now += 10;
    EXPECT_EQ(route.Stop(), 10u);
    now += 100;               // after Stop: not attributed
    EXPECT_EQ(route.Stop(), 10u);  // idempotent
  }
  EXPECT_EQ(trace.stage_us(Stage::kRoute), 10u);
  EXPECT_EQ(trace.TotalStageUs(), 13u);
}

TEST(ObsTraceTest, NestedSpansDecomposeTheirParent) {
  uint64_t now = 0;
  QueryTrace trace([&now] { return now; });
  {
    TraceSpan execute(&trace, Stage::kExecute);
    now += 4;
    {
      TraceSpan merge(&trace, Stage::kMerge);
      now += 15;
    }
    now += 1;
  }
  // The child's 15 us are inside the parent's 20 us wall time — the
  // sibling stages decompose it, they do not subtract from it.
  EXPECT_EQ(trace.stage_us(Stage::kMerge), 15u);
  EXPECT_EQ(trace.stage_us(Stage::kExecute), 20u);
}

TEST(ObsTraceTest, NullTraceSpansAreFree) {
  int clock_reads = 0;
  QueryTrace trace([&clock_reads] {
    ++clock_reads;
    return uint64_t{0};
  });
  {
    TraceSpan span(nullptr, Stage::kDecode);
    EXPECT_EQ(span.Stop(), 0u);
  }
  EXPECT_EQ(clock_reads, 0);
}

TEST(ObsTraceTest, DocSlotsCollectPerDocumentFields) {
  uint64_t now = 0;
  QueryTrace trace([&now] { return now; });
  trace.SetDocs({"alpha", "beta"});
  {
    TraceSpan decode(&trace, Stage::kDecode, &trace.doc(0)->decode_us);
    now += 40;
  }
  {
    TraceSpan execute(&trace, Stage::kExecute, &trace.doc(1)->execute_us);
    now += 6;
  }
  EXPECT_EQ(trace.docs()[0].name, "alpha");
  EXPECT_EQ(trace.docs()[0].decode_us, 40u);
  EXPECT_EQ(trace.docs()[1].execute_us, 6u);
  EXPECT_EQ(trace.stage_us(Stage::kDecode), 40u);
  EXPECT_EQ(trace.stage_us(Stage::kExecute), 6u);
}

TEST(ObsTraceTest, RecordStageHistogramsSkipsFirstTouchZeroes) {
  MetricsRegistry registry;
  uint64_t now = 0;
  QueryTrace trace([&now] { return now; });
  trace.SetDocs({"alpha", "beta"});
  trace.doc(0)->decode_us = 30;
  trace.doc(0)->execute_us = 5;
  trace.doc(1)->execute_us = 2;  // beta was warm: no decode, no build
  RecordStageHistograms(&registry, trace, /*rows=*/12);
  EXPECT_EQ(registry.histogram("meetxml_query_stage_us", "stage=\"decode\"")
                .Summary()
                .count,
            1u);
  EXPECT_EQ(
      registry.histogram("meetxml_query_stage_us", "stage=\"index_build\"")
          .Summary()
          .count,
      0u);
  EXPECT_EQ(registry.histogram("meetxml_query_stage_us", "stage=\"execute\"")
                .Summary()
                .count,
            2u);
  EXPECT_EQ(registry.histogram("meetxml_query_stage_us", "stage=\"parse\"")
                .Summary()
                .count,
            1u);
  EXPECT_EQ(registry.counter("meetxml_query_rows_total").Value(), 12u);
}

// ---------------------------------------------------------------------------
// Query-log ring.

TEST(ObsQueryLogTest, RingKeepsTheMostRecentEntriesOldestFirst) {
  QueryLog log(4);
  EXPECT_EQ(log.capacity(), 4u);
  for (uint64_t i = 0; i < 10; ++i) {
    QueryLogEntry entry;
    entry.when_ms = i;
    entry.query = std::to_string(i);
    log.Push(std::move(entry));
  }
  EXPECT_EQ(log.total_pushed(), 10u);
  std::vector<QueryLogEntry> snapshot = log.Snapshot();
  ASSERT_EQ(snapshot.size(), 4u);
  for (size_t i = 0; i < snapshot.size(); ++i) {
    EXPECT_EQ(snapshot[i].when_ms, 6 + i);
    EXPECT_EQ(snapshot[i].query, std::to_string(6 + i));
  }
}

TEST(ObsQueryLogTest, ZeroCapacityClampsToOne) {
  QueryLog log(0);
  EXPECT_EQ(log.capacity(), 1u);
  QueryLogEntry entry;
  entry.when_ms = 1;
  log.Push(entry);
  entry.when_ms = 2;
  log.Push(entry);
  std::vector<QueryLogEntry> snapshot = log.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].when_ms, 2u);
}

// ---------------------------------------------------------------------------
// Prometheus exposition.

TEST(ObsRegistryTest, RenderPrometheusGolden) {
  MetricsRegistry registry;
  registry.counter("meetxml_test_total").Add(3);
  registry.gauge("meetxml_test_depth").Set(-2);
  Histogram& histogram = registry.histogram("meetxml_test_us", "op=\"q\"");
  histogram.Record(5);   // bucket 3, upper bound 7
  histogram.Record(9);   // bucket 4, upper bound 15
  registry.histogram("meetxml_test_empty_us");  // empty: skipped
  EXPECT_EQ(registry.RenderPrometheus(),
            "# TYPE meetxml_test_depth gauge\n"
            "meetxml_test_depth -2\n"
            "# TYPE meetxml_test_total counter\n"
            "meetxml_test_total 3\n"
            "# TYPE meetxml_test_us summary\n"
            "meetxml_test_us{op=\"q\",quantile=\"0.5\"} 7\n"
            "meetxml_test_us{op=\"q\",quantile=\"0.9\"} 7\n"
            "meetxml_test_us{op=\"q\",quantile=\"0.99\"} 7\n"
            "meetxml_test_us_sum{op=\"q\"} 14\n"
            "meetxml_test_us_count{op=\"q\"} 2\n");
}

TEST(ObsRegistryTest, LookupReturnsTheSameMetricAndSummariesSkipEmpty) {
  MetricsRegistry registry;
  Counter& a = registry.counter("meetxml_repeat_total");
  Counter& b = registry.counter("meetxml_repeat_total");
  EXPECT_EQ(&a, &b);
  // Same name, different labels: distinct series.
  Histogram& q = registry.histogram("meetxml_req_us", "op=\"query\"");
  Histogram& p = registry.histogram("meetxml_req_us", "op=\"ping\"");
  EXPECT_NE(&q, &p);
  q.Record(100);
  std::vector<NamedSummary> summaries = registry.HistogramSummaries();
  ASSERT_EQ(summaries.size(), 1u);  // the empty ping series is skipped
  EXPECT_EQ(summaries[0].name, "meetxml_req_us{op=\"query\"}");
  EXPECT_EQ(summaries[0].summary.count, 1u);
}

// ---------------------------------------------------------------------------
// Worker-pool queue accounting on an injected clock (no sleeps: the
// saturated case parks the only worker on a future the test releases).

TEST(ObsWorkerPoolTest, IdlePoolShowsZeroQueueWait) {
  MetricsRegistry registry;
  std::atomic<uint64_t> now{0};
  server::WorkerPoolOptions options;
  options.threads = 1;
  options.metrics = &registry;
  options.clock_us = [&now] { return now.load(); };
  {
    server::WorkerPool pool(std::move(options));
    pool.Submit([] {});
    pool.Shutdown();
  }
  HistogramSummary wait =
      registry.histogram("meetxml_worker_queue_wait_us").Summary();
  EXPECT_EQ(wait.count, 1u);
  EXPECT_EQ(wait.sum, 0u);  // clock never moved: dequeue == enqueue
  EXPECT_EQ(registry.gauge("meetxml_worker_queue_depth").Value(), 0);
}

TEST(ObsWorkerPoolTest, SaturatedPoolAccountsQueueWaitExactly) {
  MetricsRegistry registry;
  std::atomic<uint64_t> now{0};
  server::WorkerPoolOptions options;
  options.threads = 1;
  options.metrics = &registry;
  options.clock_us = [&now] { return now.load(); };
  server::WorkerPool pool(std::move(options));
  ASSERT_EQ(pool.worker_count(), 1u);

  std::promise<void> blocker_started;
  std::promise<void> release_blocker;
  std::future<void> release = release_blocker.get_future();
  // Job A occupies the only worker. Its start stamp is read before the
  // body runs, while the clock is still 0.
  pool.Submit([&] {
    blocker_started.set_value();
    release.wait();
  });
  blocker_started.get_future().wait();

  // With the worker busy, enqueue job B at t=100; it cannot start
  // until A finishes. Depth gauge counts it while it queues.
  now.store(100);
  pool.Submit([&now] { now.store(400); });
  EXPECT_EQ(registry.gauge("meetxml_worker_queue_depth").Value(), 1);

  // Release A at t=350: B's queue wait is exactly 350 - 100 = 250 us.
  now.store(350);
  release_blocker.set_value();
  pool.Shutdown();

  HistogramSummary wait =
      registry.histogram("meetxml_worker_queue_wait_us").Summary();
  EXPECT_EQ(wait.count, 2u);
  EXPECT_EQ(wait.sum, 250u);  // A waited 0, B waited 250
  HistogramSummary execute =
      registry.histogram("meetxml_worker_execute_us").Summary();
  EXPECT_EQ(execute.count, 2u);
  EXPECT_EQ(execute.sum, 350u + 50u);  // A: 0->350, B: 350->400
  EXPECT_EQ(registry.gauge("meetxml_worker_queue_depth").Value(), 0);
}

TEST(ObsWorkerPoolTest, UntimedPoolNeverReadsItsClock) {
  std::atomic<int> clock_reads{0};
  server::WorkerPoolOptions options;
  options.threads = 2;
  options.metrics = nullptr;  // timing disabled
  options.clock_us = [&clock_reads] {
    clock_reads.fetch_add(1);
    return uint64_t{0};
  };
  {
    server::WorkerPool pool(std::move(options));
    for (int i = 0; i < 16; ++i) pool.Submit([] {});
  }
  EXPECT_EQ(clock_reads.load(), 0);
}

}  // namespace
}  // namespace obs
}  // namespace meetxml
