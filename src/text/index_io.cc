#include "text/index_io.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "util/byte_io.h"
#include "util/file_io.h"
#include "util/mmap_file.h"

namespace meetxml {
namespace text {

using util::ByteReader;
using util::ByteWriter;
using util::Result;
using util::Status;

namespace {

constexpr uint8_t kCodecVersion = 1;

uint64_t PostingKey(const Posting& posting) {
  return (static_cast<uint64_t>(posting.path) << 32) |
         static_cast<uint64_t>(posting.owner);
}

Posting PostingFromKey(uint64_t key) {
  return Posting{static_cast<PathId>(key >> 32),
                 static_cast<Oid>(key & 0xffffffffULL)};
}

void WritePostings(ByteWriter* out, const std::vector<Posting>& postings) {
  out->Varint(postings.size());
  uint64_t previous = 0;
  for (size_t i = 0; i < postings.size(); ++i) {
    uint64_t key = PostingKey(postings[i]);
    out->Varint(i == 0 ? key : key - previous);
    previous = key;
  }
}

// Hot path of index load: decodes a whole delta list with raw pointers
// (one bounds check per byte-read loop, no per-call Need), since a
// DBLP-sized index decodes millions of varints.
Result<std::vector<Posting>> ReadPostings(ByteReader* reader) {
  MEETXML_ASSIGN_OR_RETURN(uint64_t count, reader->Varint());
  // Each posting costs at least one delta byte.
  if (count > reader->remaining()) {
    return Status::InvalidArgument("corrupt index: posting count");
  }
  const char* p = reader->bytes().data() + reader->pos();
  const char* end = reader->bytes().data() + reader->bytes().size();
  std::vector<Posting> postings;
  postings.reserve(static_cast<size_t>(count));
  uint64_t key = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t delta = 0;
    int shift = 0;
    while (true) {
      if (p == end) {
        return Status::UnexpectedEof("truncated index payload");
      }
      uint8_t byte = static_cast<uint8_t>(*p++);
      delta |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
      if (shift >= 64) {
        return Status::InvalidArgument("corrupt index: varint overflow");
      }
    }
    if (i > 0 && delta == 0) {
      return Status::InvalidArgument(
          "corrupt index: postings not strictly increasing");
    }
    uint64_t next = i == 0 ? delta : key + delta;
    if (i > 0 && next < key) {
      return Status::InvalidArgument("corrupt index: posting overflow");
    }
    key = next;
    postings.push_back(PostingFromKey(key));
  }
  reader->set_pos(static_cast<size_t>(p - reader->bytes().data()));
  return postings;
}

}  // namespace

std::string SerializeIndex(const InvertedIndex& index) {
  ByteWriter out;
  out.U8(kCodecVersion);
  out.U8(index.tokenizer_options().fold_case ? 1 : 0);
  out.Varint(index.tokenizer_options().min_token_length);
  out.U8(index.has_trigrams() ? 1 : 0);

  // Hash-map iteration order is unspecified; emit in sorted key order
  // so equal indexes serialize to equal bytes (images are diffable and
  // the parallel/sequential equivalence tests can compare bytes).
  std::vector<const InvertedIndex::WordMap::value_type*> words;
  words.reserve(index.words().size());
  for (const auto& entry : index.words()) words.push_back(&entry);
  std::sort(words.begin(), words.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  out.Varint(words.size());
  for (const auto* entry : words) {
    out.StrVarint(entry->first);
    WritePostings(&out, entry->second);
  }

  std::vector<const InvertedIndex::TrigramMap::value_type*> trigrams;
  trigrams.reserve(index.trigrams().size());
  for (const auto& entry : index.trigrams()) trigrams.push_back(&entry);
  std::sort(trigrams.begin(), trigrams.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  out.Varint(trigrams.size());
  for (const auto* entry : trigrams) {
    out.U32(entry->first);
    WritePostings(&out, entry->second);
  }
  return out.Take();
}

Result<InvertedIndex> DeserializeIndex(std::string_view bytes) {
  ByteReader reader(bytes);
  MEETXML_ASSIGN_OR_RETURN(uint8_t codec, reader.U8());
  if (codec != kCodecVersion) {
    return Status::InvalidArgument("unsupported index codec ", codec);
  }
  TokenizerOptions tokenizer;
  MEETXML_ASSIGN_OR_RETURN(uint8_t fold_case, reader.U8());
  tokenizer.fold_case = fold_case != 0;
  MEETXML_ASSIGN_OR_RETURN(uint64_t min_length, reader.Varint());
  tokenizer.min_token_length = static_cast<size_t>(min_length);
  MEETXML_ASSIGN_OR_RETURN(uint8_t has_trigrams, reader.U8());

  InvertedIndex::WordMap words;
  MEETXML_ASSIGN_OR_RETURN(uint64_t word_count, reader.Varint());
  if (word_count > reader.remaining()) {
    return Status::InvalidArgument("corrupt index: word count");
  }
  words.reserve(static_cast<size_t>(word_count));
  for (uint64_t i = 0; i < word_count; ++i) {
    MEETXML_ASSIGN_OR_RETURN(std::string word, reader.StrVarint());
    MEETXML_ASSIGN_OR_RETURN(std::vector<Posting> postings,
                             ReadPostings(&reader));
    if (!words.emplace(std::move(word), std::move(postings)).second) {
      return Status::InvalidArgument("corrupt index: duplicate word");
    }
  }

  InvertedIndex::TrigramMap trigrams;
  MEETXML_ASSIGN_OR_RETURN(uint64_t trigram_count, reader.Varint());
  if (trigram_count > reader.remaining()) {
    return Status::InvalidArgument("corrupt index: trigram count");
  }
  trigrams.reserve(static_cast<size_t>(trigram_count));
  for (uint64_t i = 0; i < trigram_count; ++i) {
    MEETXML_ASSIGN_OR_RETURN(uint32_t key, reader.U32());
    MEETXML_ASSIGN_OR_RETURN(std::vector<Posting> postings,
                             ReadPostings(&reader));
    if (!trigrams.emplace(key, std::move(postings)).second) {
      return Status::InvalidArgument("corrupt index: duplicate trigram");
    }
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in index payload");
  }
  return InvertedIndex::Restore(std::move(words), std::move(trigrams),
                                tokenizer, has_trigrams != 0);
}

Status ValidateIndexAgainst(const model::StoredDocument& doc,
                            const InvertedIndex& index) {
  auto check = [&](const std::vector<Posting>& postings) -> Status {
    for (const Posting& posting : postings) {
      if (posting.path >= doc.paths().size()) {
        return Status::InvalidArgument("corrupt index: posting path");
      }
      if (posting.owner >= doc.node_count()) {
        return Status::InvalidArgument("corrupt index: posting owner");
      }
    }
    return Status::OK();
  };
  for (const auto& [word, postings] : index.words()) {
    MEETXML_RETURN_NOT_OK(check(postings));
  }
  for (const auto& [key, postings] : index.trigrams()) {
    MEETXML_RETURN_NOT_OK(check(postings));
  }
  return Status::OK();
}

Result<std::string> SaveStoreToBytes(const model::StoredDocument& doc,
                                     const InvertedIndex* index) {
  model::SaveOptions options;
  if (index != nullptr) {
    options.extra_sections.push_back(
        model::ImageSection{model::kTextIndexSectionId,
                            SerializeIndex(*index)});
  }
  return model::SaveToBytes(doc, options);
}

Result<PersistentStore> LoadStoreFromBytes(std::string_view bytes,
                                           const model::LoadOptions& options) {
  MEETXML_ASSIGN_OR_RETURN(model::LoadedImage image,
                           model::LoadImageFromBytes(bytes, options));
  PersistentStore store;
  store.doc = std::move(image.doc);
  for (const model::ImageSection& section : image.extra_sections) {
    if (section.id != model::kTextIndexSectionId) continue;
    MEETXML_ASSIGN_OR_RETURN(InvertedIndex index,
                             DeserializeIndex(section.bytes));
    MEETXML_RETURN_NOT_OK(ValidateIndexAgainst(store.doc, index));
    store.index = std::move(index);
    break;
  }
  return store;
}

Status SaveStoreToFile(const model::StoredDocument& doc,
                       const InvertedIndex* index, const std::string& path) {
  MEETXML_ASSIGN_OR_RETURN(std::string bytes, SaveStoreToBytes(doc, index));
  return util::WriteFileAtomic(path, bytes);
}

Result<PersistentStore> LoadStoreFromFile(const std::string& path,
                                          const model::LoadOptions& options) {
  if (options.mode == model::LoadMode::kView) {
    // Zero-copy open: the document borrows from the shared mapping and
    // pins it (model/storage_io.h's lifetime contract).
    MEETXML_ASSIGN_OR_RETURN(
        std::shared_ptr<const util::MmapFile> file,
        util::MmapFile::OpenShared(path,
                                   util::MmapFile::Advice::kWillNeed));
    model::LoadOptions pinned = options;
    pinned.backing = file;
    return LoadStoreFromBytes(file->bytes(), pinned);
  }
  // Decode out of a file mapping; PersistentStore owns everything it
  // keeps, so the mapping ends with this scope.
  MEETXML_ASSIGN_OR_RETURN(
      util::MmapFile file,
      util::MmapFile::Open(path, util::MmapFile::Advice::kSequential));
  return LoadStoreFromBytes(file.bytes(), options);
}

}  // namespace text
}  // namespace meetxml
