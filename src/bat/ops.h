// Relational operations over BATs — the MIL-like primitives the meet
// algorithms are written against (paper §3.2 expresses parent() as a
// binary join and relies on intersections/differences of association
// sets).

#ifndef MEETXML_BAT_OPS_H_
#define MEETXML_BAT_OPS_H_

#include <functional>
#include <string_view>
#include <unordered_set>

#include "bat/bat.h"

namespace meetxml {
namespace bat {

/// \brief Hash join: pairs (a_head, b_tail) for every a in `left`, b in
/// `right` with a.tail == b.head. This is the paper's
/// `join(A1(o1,o2), A2(o2,o3)) = A(o1,o3)` with inner columns projected
/// out.
template <typename H, typename M, typename T>
Bat<H, T> Join(const Bat<H, M>& left, const Bat<M, T>& right) {
  Bat<H, T> out;
  HeadIndex<M, T> right_index(right);
  for (size_t row = 0; row < left.size(); ++row) {
    for (size_t rrow : right_index.Lookup(left.tail(row))) {
      out.Append(left.head(row), right.tail(rrow));
    }
  }
  return out;
}

/// \brief Join variant reusing a prebuilt index over `right`.
template <typename H, typename M, typename T>
Bat<H, T> JoinIndexed(const Bat<H, M>& left, const Bat<M, T>& right,
                      const HeadIndex<M, T>& right_index) {
  Bat<H, T> out;
  for (size_t row = 0; row < left.size(); ++row) {
    for (size_t rrow : right_index.Lookup(left.tail(row))) {
      out.Append(left.head(row), right.tail(rrow));
    }
  }
  return out;
}

/// \brief Semijoin: rows of `left` whose head appears as a head of
/// `right`.
template <typename H, typename T, typename T2>
Bat<H, T> Semijoin(const Bat<H, T>& left, const Bat<H, T2>& right) {
  std::unordered_set<H> keys(right.heads().begin(), right.heads().end());
  Bat<H, T> out;
  for (size_t row = 0; row < left.size(); ++row) {
    if (keys.count(left.head(row))) out.Append(left.head(row),
                                               left.tail(row));
  }
  return out;
}

/// \brief Semijoin against an explicit key set.
template <typename H, typename T>
Bat<H, T> SemijoinKeys(const Bat<H, T>& left,
                       const std::unordered_set<H>& keys) {
  Bat<H, T> out;
  for (size_t row = 0; row < left.size(); ++row) {
    if (keys.count(left.head(row))) out.Append(left.head(row),
                                               left.tail(row));
  }
  return out;
}

/// \brief Anti-semijoin: rows of `left` whose head does NOT appear in
/// `keys`.
template <typename H, typename T>
Bat<H, T> AntijoinKeys(const Bat<H, T>& left,
                       const std::unordered_set<H>& keys) {
  Bat<H, T> out;
  for (size_t row = 0; row < left.size(); ++row) {
    if (!keys.count(left.head(row))) out.Append(left.head(row),
                                                left.tail(row));
  }
  return out;
}

/// \brief Bag union (no duplicate elimination; call SortUnique for sets).
template <typename H, typename T>
Bat<H, T> Union(const Bat<H, T>& left, const Bat<H, T>& right) {
  Bat<H, T> out;
  out.Reserve(left.size() + right.size());
  for (size_t row = 0; row < left.size(); ++row) {
    out.Append(left.head(row), left.tail(row));
  }
  for (size_t row = 0; row < right.size(); ++row) {
    out.Append(right.head(row), right.tail(row));
  }
  return out;
}

/// \brief Head values common to both BATs.
template <typename H, typename T1, typename T2>
std::unordered_set<H> IntersectHeads(const Bat<H, T1>& left,
                                     const Bat<H, T2>& right) {
  std::unordered_set<H> left_keys(left.heads().begin(), left.heads().end());
  std::unordered_set<H> out;
  for (const H& h : right.heads()) {
    if (left_keys.count(h)) out.insert(h);
  }
  return out;
}

/// \brief Rows whose tail string satisfies `pred` (e.g. the paper's
/// `contains`). The workhorse of full-text scans over leaf BATs.
/// Works identically over owned and view-backed (mapped-image)
/// relations — tails are read through the arena view either way — and
/// always produces an owned result, so a selection never extends the
/// input's backing lifetime. (String BATs are arena-backed, so the
/// head type is fixed to Oid; the template parameter survives for
/// source compatibility.)
template <typename H = Oid>
StrBat SelectTail(const StrBat& table,
                  const std::function<bool(std::string_view)>& pred) {
  StrBat out;
  for (size_t row = 0; row < table.size(); ++row) {
    if (pred(table.tail(row))) out.Append(table.head(row), table.tail(row));
  }
  return out;
}

/// \brief Projects the head column (MonetDB `mirror` then head extract).
template <typename H, typename T>
std::vector<H> ProjectHeads(const Bat<H, T>& table) {
  std::span<const H> heads = table.heads();
  return std::vector<H>(heads.begin(), heads.end());
}

/// \brief (h, h) pairs for every head — MonetDB's `mirror`, used to seed
/// the (current, origin) relations of the set-at-a-time meet.
template <typename H, typename T>
Bat<H, H> Mirror(const Bat<H, T>& table) {
  Bat<H, H> out;
  out.Reserve(table.size());
  for (size_t row = 0; row < table.size(); ++row) {
    out.Append(table.head(row), table.head(row));
  }
  return out;
}

/// \brief (v, v) pairs for every value in `values`.
template <typename H>
Bat<H, H> MirrorValues(const std::vector<H>& values) {
  Bat<H, H> out;
  out.Reserve(values.size());
  for (const H& v : values) out.Append(v, v);
  return out;
}

}  // namespace bat
}  // namespace meetxml

#endif  // MEETXML_BAT_OPS_H_
