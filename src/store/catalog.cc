#include "store/catalog.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_set>
#include <utility>

#include "model/storage_io.h"
#include "obs/metrics.h"
#include "text/index_io.h"
#include "util/byte_io.h"
#include "util/file_io.h"
#include "util/mmap_file.h"
#include "util/strings.h"
#include "util/threads.h"
#include "util/timer.h"

namespace meetxml {
namespace store {

using model::ImageSection;
using model::SectionView;
using model::StoredDocument;
using util::ByteReader;
using util::ByteWriter;
using util::Result;
using util::Status;

namespace {

// Codec 1 is the pre-DRV1 directory; codec 2 appends the derived
// section reference per entry. The writer emits 1 whenever no entry
// carries a DRV1 section so rollback images stay readable.
constexpr uint8_t kCatalogCodecV1 = 1;
constexpr uint8_t kCatalogCodecV2 = 2;

// Process-wide catalog metrics, resolved once per process: the
// registry lookup takes a mutex, which first-touch and open paths must
// not pay per call.
struct CatalogMetrics {
  obs::Counter* opens;
  obs::Counter* lazy_decodes;
  obs::Counter* quarantined;
  obs::Histogram* open_us;
  obs::Histogram* decode_us;
  obs::Histogram* warm_us;
  obs::Gauge* bytes_copied;
  obs::Gauge* bytes_viewed;
};

const CatalogMetrics& Metrics() {
  static const CatalogMetrics* metrics = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    return new CatalogMetrics{
        &registry.counter("meetxml_catalog_opens_total"),
        &registry.counter("meetxml_catalog_lazy_decode_total"),
        &registry.counter("meetxml_catalog_quarantined"),
        &registry.histogram("meetxml_catalog_open_us"),
        &registry.histogram("meetxml_catalog_decode_us"),
        &registry.histogram("meetxml_catalog_warm_us"),
        &registry.gauge("meetxml_catalog_bytes_copied"),
        &registry.gauge("meetxml_catalog_bytes_viewed"),
    };
  }();
  return *metrics;
}

void RecordOpenMetrics(const util::Timer& timer, uint64_t bytes_copied,
                       uint64_t bytes_viewed) {
  const CatalogMetrics& metrics = Metrics();
  metrics.opens->Add(1);
  metrics.open_us->Record(static_cast<uint64_t>(timer.ElapsedMicros()));
  metrics.bytes_copied->Add(static_cast<int64_t>(bytes_copied));
  metrics.bytes_viewed->Add(static_cast<int64_t>(bytes_viewed));
}

Status ValidateName(std::string_view name) {
  if (name.empty()) {
    return Status::InvalidArgument("document names cannot be empty");
  }
  if (name.find_first_of("*?") != std::string_view::npos) {
    return Status::InvalidArgument(
        "document name '", name,
        "' contains glob metacharacters (reserved for scopes)");
  }
  return Status::OK();
}

}  // namespace

// Everything a first touch needs to finish a lazily-opened entry: the
// raw section views (borrowing from `backing`), the container minor
// for the checksum recipe, and the decode mode. `failed`/`error` make
// a corrupt entry sticky — every touch reports the same status instead
// of re-verifying a known-bad section.
struct NamedDocument::PendingDecode {
  SectionView doc;
  SectionView derived;
  SectionView index;
  bool has_derived = false;
  bool has_index = false;
  uint32_t minor = 0;
  model::LoadMode mode = model::LoadMode::kCopy;
  std::shared_ptr<const void> backing;
  Status error = Status::OK();
  bool failed = false;
};

NamedDocument::NamedDocument() = default;
NamedDocument::~NamedDocument() = default;

Status Catalog::MaterializeLocked(const NamedDocument* entry) const {
  NamedDocument::PendingDecode* pending = entry->pending.get();
  if (pending == nullptr) return Status::OK();
  if (pending->failed) return pending->error;
  auto fail = [&](Status status) {
    pending->failed = true;
    pending->error = status;
    return status;
  };
  // First-touch checksum gate: the open skipped these, so a tampered
  // byte in this entry's sections must surface here, before any parse
  // looks at the payload.
  Status sum = model::VerifySectionChecksum(pending->minor, pending->doc);
  if (sum.ok() && pending->has_derived) {
    sum = model::VerifySectionChecksum(pending->minor, pending->derived);
  }
  if (sum.ok() && pending->has_index) {
    sum = model::VerifySectionChecksum(pending->minor, pending->index);
  }
  if (!sum.ok()) return fail(sum);

  // Decode with validation deferred: framing is checked here, the deep
  // structural scans latch once inside EnsureValidated on the entry's
  // first real use (Get / Executor::Build).
  util::Timer decode_timer;
  model::LoadStats load_stats;
  model::LoadOptions doc_options;
  doc_options.mode = pending->mode;
  doc_options.backing = pending->backing;
  doc_options.defer_validation = true;
  doc_options.stats = &load_stats;
  Result<StoredDocument> doc =
      pending->has_derived
          ? model::ParseDocumentWithDerived(pending->doc.id,
                                            pending->doc.bytes,
                                            pending->derived.bytes,
                                            doc_options)
          : model::ParseAnyDocumentSection(pending->doc.id,
                                           pending->doc.bytes, doc_options);
  if (!doc.ok()) return fail(doc.status());
  std::optional<text::InvertedIndex> index;
  if (pending->has_index) {
    Result<text::InvertedIndex> decoded =
        text::DeserializeIndex(pending->index.bytes);
    if (!decoded.ok()) return fail(decoded.status());
    Status valid = text::ValidateIndexAgainst(*doc, *decoded);
    if (!valid.ok()) return fail(valid);
    index = std::move(*decoded);
  }
  entry->doc = std::move(*doc);
  entry->index = std::move(index);
  entry->pending.reset();
  entry->materialized.store(true, std::memory_order_release);
  const CatalogMetrics& metrics = Metrics();
  metrics.lazy_decodes->Add(1);
  metrics.decode_us->Record(
      static_cast<uint64_t>(decode_timer.ElapsedMicros()));
  metrics.bytes_copied->Add(static_cast<int64_t>(load_stats.bytes_copied));
  metrics.bytes_viewed->Add(static_cast<int64_t>(load_stats.bytes_viewed));
  return Status::OK();
}

Status Catalog::Materialize(const NamedDocument* entry) const {
  if (entry->materialized.load(std::memory_order_acquire)) {
    return Status::OK();
  }
  std::lock_guard<std::mutex> lock(*entry->lazy_mu);
  return MaterializeLocked(entry);
}

NamedDocument* Catalog::FindMutable(std::string_view name) {
  for (const auto& entry : entries_) {
    if (entry->name == name) return entry.get();
  }
  return nullptr;
}

const NamedDocument* Catalog::Find(std::string_view name) const {
  for (const auto& entry : entries_) {
    if (entry->name == name) return entry.get();
  }
  return nullptr;
}

const NamedDocument* Catalog::FindById(DocId id) const {
  for (const auto& entry : entries_) {
    if (entry->id == id) return entry.get();
  }
  return nullptr;
}

Result<const model::StoredDocument*> Catalog::Get(
    std::string_view name) const {
  const NamedDocument* entry = Find(name);
  if (entry == nullptr) {
    return Status::NotFound("no document named '", name,
                            "' in the catalog");
  }
  MEETXML_RETURN_NOT_OK(Materialize(entry));
  // Deep validation latches once; for eagerly-loaded documents the
  // gate is already down and this is two atomic-free reads.
  MEETXML_RETURN_NOT_OK(entry->doc.EnsureValidated());
  return &entry->doc;
}

Result<DocId> Catalog::Add(std::string name, StoredDocument doc) {
  MEETXML_RETURN_NOT_OK(ValidateName(name));
  if (!doc.finalized()) {
    return Status::InvalidArgument(
        "only finalized documents can join the catalog");
  }
  if (Find(name) != nullptr) {
    return Status::InvalidArgument("document '", name,
                                 "' is already in the catalog");
  }
  auto entry = std::make_unique<NamedDocument>();
  entry->id = next_id_++;
  entry->name = std::move(name);
  entry->doc = std::move(doc);
  DocId id = entry->id;
  entries_.push_back(std::move(entry));
  return id;
}

Result<DocId> Catalog::Add(std::string name, StoredDocument doc,
                           text::InvertedIndex index) {
  MEETXML_RETURN_NOT_OK(text::ValidateIndexAgainst(doc, index));
  MEETXML_ASSIGN_OR_RETURN(DocId id, Add(std::move(name), std::move(doc)));
  entries_.back()->index = std::move(index);
  return id;
}

Status Catalog::Remove(std::string_view name) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if ((*it)->name == name) {
      entries_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("no document named '", name,
                          "' in the catalog");
}

Status Catalog::Rename(std::string_view from, std::string to) {
  MEETXML_RETURN_NOT_OK(ValidateName(to));
  NamedDocument* entry = FindMutable(from);
  if (entry == nullptr) {
    return Status::NotFound("no document named '", from,
                            "' in the catalog");
  }
  if (to != from && Find(to) != nullptr) {
    return Status::InvalidArgument("document '", to,
                                 "' is already in the catalog");
  }
  entry->name = std::move(to);
  return Status::OK();
}

std::vector<const NamedDocument*> Catalog::entries() const {
  std::vector<const NamedDocument*> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(entry.get());
  return out;
}

std::vector<std::string> Catalog::MatchNames(std::string_view glob) const {
  std::vector<std::string> out;
  for (const auto& entry : entries_) {
    if (util::GlobMatch(glob, entry->name)) out.push_back(entry->name);
  }
  return out;
}

Result<const query::Executor*> Catalog::ExecutorFor(
    std::string_view name) const {
  return ExecutorFor(name, nullptr, nullptr);
}

Result<const query::Executor*> Catalog::ExecutorFor(
    std::string_view name, obs::QueryTrace* trace,
    obs::DocTrace* doc_trace) const {
  const NamedDocument* entry = Find(name);
  if (entry == nullptr) {
    return Status::NotFound("no document named '", name,
                            "' in the catalog");
  }
  // Concurrent readers race to the first build; the per-entry mutex
  // elects one builder and everyone else observes the finished
  // executor. After the build the critical section is two pointer
  // reads, so steady-state contention is negligible.
  std::lock_guard<std::mutex> lock(*entry->lazy_mu);
  {
    // Span only when there is pending work: a warm entry must not read
    // the clock (a step-clock test would otherwise see phantom decode
    // time on every repeat query).
    obs::TraceSpan decode_span(
        entry->pending != nullptr ? trace : nullptr, obs::Stage::kDecode,
        doc_trace != nullptr ? &doc_trace->decode_us : nullptr);
    MEETXML_RETURN_NOT_OK(MaterializeLocked(entry));
  }
  if (entry->executor == nullptr) {
    obs::TraceSpan build_span(
        trace, obs::Stage::kIndexBuild,
        doc_trace != nullptr ? &doc_trace->index_build_us : nullptr);
    // Build first (the fallible step), hand the index over only on
    // success — a failed build must not hollow the persisted index.
    MEETXML_ASSIGN_OR_RETURN(query::Executor built,
                             query::Executor::Build(entry->doc));
    entry->executor = std::make_unique<query::Executor>(std::move(built));
    if (entry->index.has_value()) {
      entry->executor->InstallTextSearch(text::FullTextSearch::WithIndex(
          entry->doc, std::move(*entry->index)));
      // The index now lives inside the executor (text_index() hands it
      // back for Save); holding a second copy would double memory.
      entry->index.reset();
    }
  }
  return entry->executor.get();
}

Status Catalog::Warm(bool build_text_indexes, unsigned threads) const {
  util::Timer warm_timer;
  std::vector<const NamedDocument*> all = entries();
  std::vector<Status> outcomes(all.size());
  util::ParallelFor(all.size(), threads, [&](size_t i) {
    Result<const query::Executor*> executor = ExecutorFor(all[i]->name);
    if (!executor.ok()) {
      outcomes[i] = executor.status();
      return;
    }
    if (build_text_indexes) {
      outcomes[i] = (*executor)->TextSearch().status();
    }
  });
  for (const Status& status : outcomes) {
    MEETXML_RETURN_NOT_OK(status);
  }
  Metrics().warm_us->Record(
      static_cast<uint64_t>(warm_timer.ElapsedMicros()));
  return Status::OK();
}

Status Catalog::EnsureIndex(std::string_view name) {
  NamedDocument* entry = FindMutable(name);
  if (entry == nullptr) {
    return Status::NotFound("no document named '", name,
                            "' in the catalog");
  }
  MEETXML_RETURN_NOT_OK(Materialize(entry));
  if (entry->index.has_value()) return Status::OK();
  if (entry->executor != nullptr) {
    // Force the executor's own lazy build: the index lands where its
    // text predicates will use it, and text_index() exposes it to
    // Save — a sidecar copy would be built twice and used once.
    return entry->executor->TextSearch().status();
  }
  MEETXML_ASSIGN_OR_RETURN(text::InvertedIndex index,
                           text::InvertedIndex::Build(entry->doc));
  entry->index = std::move(index);
  return Status::OK();
}

Result<std::string> Catalog::SerializeImage(
    model::DocumentPayloadFormat payload_format, bool derived_sections,
    std::vector<EntrySectionMap>* mapping) const {
  // Pending entries must decode before they can re-serialize.
  for (const auto& entry : entries_) {
    MEETXML_RETURN_NOT_OK(Materialize(entry.get()));
  }
  // DRV1 pairs only with DOC2; with another payload format (rollback
  // images) the derived request is moot and the image stays on the
  // previous minors and CTLG codec.
  bool with_derived =
      derived_sections &&
      payload_format == model::DocumentPayloadFormat::kColumnar &&
      !entries_.empty();
  // Section order: CTLG first, then per entry its document section,
  // (when an index exists anywhere — on the entry or inside its
  // executor) TIDX, and under codec 2 its DRV1.
  uint32_t document_section_id =
      model::DocumentSectionIdFor(payload_format);
  std::vector<ImageSection> sections;
  sections.emplace_back();  // CTLG placeholder, payload filled below
  if (mapping != nullptr) mapping->clear();

  ByteWriter directory;
  directory.U8(with_derived ? kCatalogCodecV2 : kCatalogCodecV1);
  directory.Varint(next_id_);
  directory.Varint(entries_.size());
  for (const auto& entry : entries_) {
    EntrySectionMap map;
    MEETXML_ASSIGN_OR_RETURN(
        std::string doc_payload,
        model::SerializeDocumentSection(entry->doc, payload_format));
    directory.Varint(entry->id);
    directory.StrVarint(entry->name);
    directory.Varint(sections.size());
    map.doc_at = sections.size();
    sections.push_back(
        ImageSection{document_section_id, std::move(doc_payload)});
    const text::InvertedIndex* index =
        entry->index.has_value()
            ? &*entry->index
            : (entry->executor != nullptr ? entry->executor->text_index()
                                          : nullptr);
    if (index != nullptr) {
      directory.Varint(sections.size() + 1);  // 0 means "no index"
      map.index_at = sections.size();
      sections.push_back(ImageSection{model::kTextIndexSectionId,
                                      text::SerializeIndex(*index)});
    } else {
      directory.Varint(0);
    }
    if (with_derived) {
      MEETXML_ASSIGN_OR_RETURN(std::string derived_payload,
                               model::SerializeDerivedSection(entry->doc));
      directory.Varint(sections.size() + 1);  // 0 means "no DRV1"
      map.derived_at = sections.size();
      sections.push_back(ImageSection{model::kDerivedSectionId,
                                      std::move(derived_payload)});
    }
    if (mapping != nullptr) mapping->push_back(map);
  }
  sections.front() =
      ImageSection{model::kCatalogSectionId, directory.Take()};

  // Minor stamp: the bump exists only to stop readers from opening
  // images they cannot decode, so derived images need minor 6, plain
  // columnar minor 5 (DOC2) or 4 (DOC1), only when such a section is
  // actually aboard (an empty catalog carries none). Row-oriented
  // images: one document degrades gracefully under legacy minor-2
  // readers (the CTLG section is skipped as unknown); several DOC0
  // sections need the minor-3 contract.
  uint32_t minor = entries_.size() > 1 ? 3 : 2;
  if (!entries_.empty()) {
    if (with_derived) {
      minor = 6;
    } else if (payload_format == model::DocumentPayloadFormat::kColumnar) {
      minor = 5;
    } else if (payload_format ==
               model::DocumentPayloadFormat::kColumnarUnaligned) {
      minor = 4;
    }
  }
  return model::SaveSectionsToBytes(sections, minor);
}

Result<std::string> Catalog::SaveToBytes(
    model::DocumentPayloadFormat payload_format,
    bool derived_sections) const {
  return SerializeImage(payload_format, derived_sections, nullptr);
}

Result<Catalog> Catalog::LoadFromBytes(std::string_view bytes,
                                       const CatalogLoadOptions& options) {
  util::Timer total_timer;
  if (options.stats != nullptr) *options.stats = CatalogLoadStats{};
  // A lazy open skips per-section checksums here — framing (and, for
  // trailing-directory images, the directory checksum) is still fully
  // validated. Deferred sections are verified on first touch. A
  // quarantining open skips them too: a bad checksum must condemn one
  // entry, not the scan, so verification moves into the per-entry
  // decode below (the CTLG section is re-verified strictly).
  model::SectionScanOptions scan;
  scan.verify_checksums = !options.lazy && !options.quarantine_corrupt;
  MEETXML_ASSIGN_OR_RETURN(model::SectionImage image,
                           model::LoadSectionsFromBytes(bytes, scan));

  const SectionView* catalog_section = nullptr;
  for (const SectionView& section : image.sections) {
    if (section.id != model::kCatalogSectionId) continue;
    if (catalog_section != nullptr) {
      return Status::InvalidArgument(
          "corrupt image: duplicate catalog section");
    }
    catalog_section = &section;
  }

  model::LoadOptions doc_options;
  doc_options.mode = options.mode;
  doc_options.backing = options.backing;

  Catalog catalog;
  if (catalog_section == nullptr) {
    // Legacy single-document image (MXM1, or MXM2 written by the
    // single-document API): one entry, named after the root tag.
    util::Timer decode_timer;
    model::LoadStats doc_stats;
    model::LoadOptions legacy_options = doc_options;
    legacy_options.stats = &doc_stats;
    MEETXML_ASSIGN_OR_RETURN(
        model::LoadedImage legacy,
        model::LoadImageFromBytes(bytes, legacy_options));
    std::optional<text::InvertedIndex> index;
    for (const ImageSection& section : legacy.extra_sections) {
      if (section.id != model::kTextIndexSectionId) continue;
      MEETXML_ASSIGN_OR_RETURN(text::InvertedIndex decoded,
                               text::DeserializeIndex(section.bytes));
      MEETXML_RETURN_NOT_OK(
          text::ValidateIndexAgainst(legacy.doc, decoded));
      index = std::move(decoded);
      break;
    }
    double decode_ms = decode_timer.ElapsedMillis();
    bool columnar = false;
    for (const SectionView& section : image.sections) {
      if (model::IsDocumentSectionId(section.id) &&
          section.id != model::kDocumentSectionId) {
        columnar = true;
      }
    }
    std::string name = legacy.doc.tag(legacy.doc.root());
    if (!ValidateName(name).ok()) name = "doc";
    if (options.stats != nullptr) {
      options.stats->documents.push_back(CatalogLoadStats::DocumentStats{
          name, decode_ms, columnar, index.has_value(),
          doc_stats.mode_used, doc_stats.bytes_copied,
          doc_stats.bytes_viewed});
    }
    if (index.has_value()) {
      MEETXML_RETURN_NOT_OK(catalog
                                .Add(std::move(name),
                                     std::move(legacy.doc),
                                     std::move(*index))
                                .status());
    } else {
      MEETXML_RETURN_NOT_OK(
          catalog.Add(std::move(name), std::move(legacy.doc)).status());
    }
    // A trailing-directory single-document image can still feed the
    // incremental writer (it appends the CTLG the image lacks), so
    // record where its sections sit.
    if (image.dir_offset != 0) {
      NamedDocument* added = catalog.entries_.back().get();
      for (const SectionView& section : image.sections) {
        model::SectionPlacement placement{section.id, section.offset,
                                          section.bytes.size(),
                                          section.checksum};
        if (model::IsDocumentSectionId(section.id)) {
          added->placed.doc = placement;
        } else if (section.id == model::kDerivedSectionId) {
          added->placed.derived = placement;
        } else if (section.id == model::kTextIndexSectionId) {
          added->placed.index = placement;
        }
      }
      catalog.origin_ = OriginImage{std::string(), image.minor,
                                    bytes.size(), image.dir_offset};
    }
    if (options.stats != nullptr) {
      options.stats->sections_verified = image.sections.size();
      options.stats->total_ms = total_timer.ElapsedMillis();
    }
    RecordOpenMetrics(total_timer, doc_stats.bytes_copied,
                      doc_stats.bytes_viewed);
    return catalog;
  }

  if (options.lazy || options.quarantine_corrupt) {
    // The directory is the one section neither a lazy nor a
    // quarantining open can treat leniently: everything else hangs off
    // it, so its checksum is verified here even though the scan above
    // skipped per-section sums.
    MEETXML_RETURN_NOT_OK(
        model::VerifySectionChecksum(image.minor, *catalog_section));
  }

  ByteReader reader(catalog_section->bytes);
  MEETXML_ASSIGN_OR_RETURN(uint8_t codec, reader.U8());
  if (codec != kCatalogCodecV1 && codec != kCatalogCodecV2) {
    return Status::InvalidArgument("unsupported catalog codec ", codec);
  }
  MEETXML_ASSIGN_OR_RETURN(uint64_t next_id, reader.Varint());
  // next_id must stay below the invalid sentinel so every future Add
  // hands out a usable id; anything larger is corruption (and would
  // silently truncate in the u32 member below).
  if (next_id >= kInvalidDocId) {
    return Status::InvalidArgument("corrupt catalog: next_doc_id ",
                                   next_id);
  }
  MEETXML_ASSIGN_OR_RETURN(uint64_t entry_count, reader.Varint());
  if (entry_count > image.sections.size()) {
    // Every entry owns at least a document section; more entries than
    // sections is structurally impossible.
    return Status::InvalidArgument("corrupt catalog: entry count ",
                                   entry_count);
  }

  std::vector<bool> claimed(image.sections.size(), false);
  claimed[static_cast<size_t>(catalog_section - image.sections.data())] =
      true;
  enum class Want { kDocument, kIndex, kDerived };
  auto claim = [&](uint64_t at, Want want) -> Status {
    if (at >= image.sections.size()) {
      return Status::InvalidArgument(
          "corrupt catalog: section index out of range");
    }
    uint32_t id = image.sections[at].id;
    bool type_ok = want == Want::kDocument
                       ? model::IsDocumentSectionId(id)
                       : (want == Want::kIndex
                              ? id == model::kTextIndexSectionId
                              : id == model::kDerivedSectionId);
    if (!type_ok) {
      return Status::InvalidArgument(
          "corrupt catalog: section type mismatch");
    }
    if (claimed[at]) {
      return Status::InvalidArgument(
          "corrupt catalog: section referenced twice");
    }
    claimed[at] = true;
    return Status::OK();
  };

  // Phase 1 (serial): parse and validate the directory. Structural
  // errors surface before any document decode starts.
  struct DirectoryEntry {
    DocId id = kInvalidDocId;
    std::string name;
    size_t doc_at = 0;
    // Persisted encoding kept verbatim: 0 = no index, otherwise the
    // section position + 1. (A plain position with 0-as-none would
    // misread images whose TIDX legitimately sits at position 0.)
    size_t index_at_plus_one = 0;
    // Codec 2 only: the entry's DRV1 section, same +1 encoding.
    size_t derived_at_plus_one = 0;
  };
  std::vector<DirectoryEntry> directory;
  directory.reserve(static_cast<size_t>(entry_count));
  std::unordered_set<DocId> ids_seen;
  ids_seen.reserve(static_cast<size_t>(entry_count));
  for (uint64_t i = 0; i < entry_count; ++i) {
    DirectoryEntry entry;
    MEETXML_ASSIGN_OR_RETURN(uint64_t id, reader.Varint());
    MEETXML_ASSIGN_OR_RETURN(entry.name, reader.StrVarint());
    MEETXML_ASSIGN_OR_RETURN(uint64_t doc_at, reader.Varint());
    MEETXML_ASSIGN_OR_RETURN(uint64_t index_at_plus_one, reader.Varint());
    if (id >= next_id) {
      return Status::InvalidArgument(
          "corrupt catalog: document id beyond next_doc_id");
    }
    entry.id = static_cast<DocId>(id);
    if (!ids_seen.insert(entry.id).second) {
      return Status::InvalidArgument(
          "corrupt catalog: duplicate document id");
    }
    MEETXML_RETURN_NOT_OK(claim(doc_at, Want::kDocument));
    entry.doc_at = static_cast<size_t>(doc_at);
    if (index_at_plus_one != 0) {
      uint64_t index_at = index_at_plus_one - 1;
      MEETXML_RETURN_NOT_OK(claim(index_at, Want::kIndex));
      entry.index_at_plus_one = static_cast<size_t>(index_at_plus_one);
    }
    if (codec >= kCatalogCodecV2) {
      MEETXML_ASSIGN_OR_RETURN(uint64_t derived_at_plus_one,
                               reader.Varint());
      if (derived_at_plus_one != 0) {
        MEETXML_RETURN_NOT_OK(
            claim(derived_at_plus_one - 1, Want::kDerived));
        entry.derived_at_plus_one =
            static_cast<size_t>(derived_at_plus_one);
      }
    }
    directory.push_back(std::move(entry));
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in catalog section");
  }
  // Document and index sections a CTLG image does not reference are
  // writer bugs or tampering, not forward compatibility (new ids are
  // how the format grows); reject them.
  for (size_t at = 0; at < image.sections.size(); ++at) {
    uint32_t id = image.sections[at].id;
    if (!claimed[at] && (model::IsDocumentSectionId(id) ||
                         id == model::kTextIndexSectionId ||
                         id == model::kDerivedSectionId)) {
      return Status::InvalidArgument(
          "corrupt catalog: unreferenced document, derived or index "
          "section");
    }
  }

  // Trailing-directory images feed the incremental writer: remember
  // where every entry's sections sit.
  auto record_placements = [&image](NamedDocument* target,
                                    const DirectoryEntry& dir_entry) {
    if (image.dir_offset == 0) return;
    auto placement_of = [&image](size_t at) {
      const SectionView& section = image.sections[at];
      return model::SectionPlacement{section.id, section.offset,
                                     section.bytes.size(),
                                     section.checksum};
    };
    target->placed.doc = placement_of(dir_entry.doc_at);
    if (dir_entry.derived_at_plus_one != 0) {
      target->placed.derived =
          placement_of(dir_entry.derived_at_plus_one - 1);
    }
    if (dir_entry.index_at_plus_one != 0) {
      target->placed.index = placement_of(dir_entry.index_at_plus_one - 1);
    }
  };

  if (options.lazy) {
    // O(directory) open: every entry is parked undecoded behind its
    // pending record; checksum verification and decode happen on first
    // touch, under the entry's lazy mutex. The duplicate-name check
    // runs against a set, not Find's linear scan — this loop is the
    // whole open, so it must stay O(directory). The set keys views
    // into the entries' own (heap-stable) name storage to avoid one
    // string copy per document.
    std::unordered_set<std::string_view> names_seen;
    names_seen.reserve(directory.size());
    catalog.entries_.reserve(directory.size());
    for (DirectoryEntry& dir_entry : directory) {
      MEETXML_RETURN_NOT_OK(ValidateName(dir_entry.name));
      auto entry = std::make_unique<NamedDocument>();
      entry->id = dir_entry.id;
      entry->name = std::move(dir_entry.name);
      if (!names_seen.insert(std::string_view(entry->name)).second) {
        return Status::InvalidArgument("document '", entry->name,
                                       "' is already in the catalog");
      }
      auto pending = std::make_unique<NamedDocument::PendingDecode>();
      pending->doc = image.sections[dir_entry.doc_at];
      pending->minor = image.minor;
      pending->mode = options.mode;
      pending->backing = options.backing;
      if (dir_entry.derived_at_plus_one != 0) {
        pending->has_derived = true;
        pending->derived =
            image.sections[dir_entry.derived_at_plus_one - 1];
      }
      if (dir_entry.index_at_plus_one != 0) {
        pending->has_index = true;
        pending->index = image.sections[dir_entry.index_at_plus_one - 1];
      }
      entry->pending = std::move(pending);
      entry->materialized.store(false, std::memory_order_relaxed);
      record_placements(entry.get(), dir_entry);
      if (options.stats != nullptr) {
        options.stats->documents.push_back(CatalogLoadStats::DocumentStats{
            entry->name, 0.0,
            image.sections[dir_entry.doc_at].id !=
                model::kDocumentSectionId,
            dir_entry.index_at_plus_one != 0, options.mode, 0, 0});
      }
      catalog.entries_.push_back(std::move(entry));
    }
    catalog.next_id_ = static_cast<DocId>(next_id);
    if (image.dir_offset != 0) {
      catalog.origin_ = OriginImage{std::string(), image.minor,
                                    bytes.size(), image.dir_offset};
    }
    if (options.stats != nullptr) {
      options.stats->deferred_documents = directory.size();
      options.stats->sections_verified = 1;  // the CTLG section
      options.stats->sections_deferred = image.sections.size() - 1;
      options.stats->total_ms = total_timer.ElapsedMillis();
    }
    // Byte gauges stay untouched here: a lazy open copies and views
    // nothing yet; the bytes land when entries materialize.
    RecordOpenMetrics(total_timer, 0, 0);
    return catalog;
  }

  // Phase 2 (parallel): decode every entry's sections on a thread
  // pool — the sections are independently checksummed byte ranges, so
  // workers share nothing but the input image. Same pool pattern as
  // model/bulk_load; errors are collected per entry and the first one
  // in directory order wins, matching what a serial decode would have
  // reported.
  struct DecodedEntry {
    Status status = Status::OK();
    StoredDocument doc;
    std::optional<text::InvertedIndex> index;
    double decode_ms = 0;
    model::LoadStats load_stats;
  };
  std::vector<DecodedEntry> decoded(directory.size());
  auto decode_one = [&](size_t i) {
    DecodedEntry& out = decoded[i];
    util::Timer decode_timer;
    const SectionView& doc_section = image.sections[directory[i].doc_at];
    if (options.quarantine_corrupt) {
      // The scan skipped per-section checksums so a flipped bit lands
      // on this entry alone; verify them here, before any parse reads
      // the payload.
      Status sum = model::VerifySectionChecksum(image.minor, doc_section);
      if (sum.ok() && directory[i].derived_at_plus_one != 0) {
        sum = model::VerifySectionChecksum(
            image.minor,
            image.sections[directory[i].derived_at_plus_one - 1]);
      }
      if (sum.ok() && directory[i].index_at_plus_one != 0) {
        sum = model::VerifySectionChecksum(
            image.minor,
            image.sections[directory[i].index_at_plus_one - 1]);
      }
      if (!sum.ok()) {
        out.status = sum;
        return;
      }
    }
    model::LoadOptions entry_options = doc_options;
    entry_options.stats = &out.load_stats;
    Result<StoredDocument> doc =
        directory[i].derived_at_plus_one != 0
            ? model::ParseDocumentWithDerived(
                  doc_section.id, doc_section.bytes,
                  image.sections[directory[i].derived_at_plus_one - 1]
                      .bytes,
                  entry_options)
            : model::ParseAnyDocumentSection(
                  doc_section.id, doc_section.bytes, entry_options);
    if (!doc.ok()) {
      out.status = doc.status();
      return;
    }
    out.doc = std::move(*doc);
    if (directory[i].index_at_plus_one != 0) {
      Result<text::InvertedIndex> index = text::DeserializeIndex(
          image.sections[directory[i].index_at_plus_one - 1].bytes);
      if (!index.ok()) {
        out.status = index.status();
        return;
      }
      Status valid = text::ValidateIndexAgainst(out.doc, *index);
      if (!valid.ok()) {
        out.status = valid;
        return;
      }
      out.index = std::move(*index);
    }
    out.decode_ms = decode_timer.ElapsedMillis();
  };
  unsigned workers =
      util::ParallelFor(directory.size(), options.threads, decode_one);
  if (!options.quarantine_corrupt) {
    for (const DecodedEntry& entry : decoded) {
      MEETXML_RETURN_NOT_OK(entry.status);
    }
  }

  // Phase 3 (serial): assemble the catalog. Add() re-validates the
  // name and enforces uniqueness; it assigns sequential ids, so the
  // persisted id is restored afterwards. Under quarantine_corrupt a
  // failed entry is parked behind a sticky error instead — same
  // machinery as a lazy entry whose first touch failed, so every
  // Get / ExecutorFor on it reports the quarantine status.
  for (size_t i = 0; i < directory.size(); ++i) {
    if (options.stats != nullptr) {
      options.stats->documents.push_back(CatalogLoadStats::DocumentStats{
          directory[i].name, decoded[i].decode_ms,
          image.sections[directory[i].doc_at].id !=
              model::kDocumentSectionId,
          decoded[i].index.has_value(), decoded[i].load_stats.mode_used,
          decoded[i].load_stats.bytes_copied,
          decoded[i].load_stats.bytes_viewed});
    }
    if (!decoded[i].status.ok()) {
      // Quarantine: the entry exists (Find/MatchNames see its name) but
      // every materialization reports the open-time failure. Add() is
      // bypassed — it wants a decoded document — so the name checks run
      // here. No placements are recorded: an incremental save must not
      // keep sections nobody could decode, and the full rewrite fails
      // loudly when it tries to materialize the entry.
      MEETXML_RETURN_NOT_OK(ValidateName(directory[i].name));
      if (catalog.Find(directory[i].name) != nullptr) {
        return Status::InvalidArgument("document '", directory[i].name,
                                       "' is already in the catalog");
      }
      auto entry = std::make_unique<NamedDocument>();
      entry->id = directory[i].id;
      entry->name = std::move(directory[i].name);
      auto pending = std::make_unique<NamedDocument::PendingDecode>();
      pending->failed = true;
      pending->error =
          Status(decoded[i].status.code(), "document quarantined at open: " +
                                               decoded[i].status.message());
      entry->pending = std::move(pending);
      entry->materialized.store(false, std::memory_order_relaxed);
      catalog.entries_.push_back(std::move(entry));
      Metrics().quarantined->Add(1);
      continue;
    }
    Result<DocId> added =
        decoded[i].index.has_value()
            ? catalog.Add(std::move(directory[i].name),
                          std::move(decoded[i].doc),
                          std::move(*decoded[i].index))
            : catalog.Add(std::move(directory[i].name),
                          std::move(decoded[i].doc));
    MEETXML_RETURN_NOT_OK(added.status());
    catalog.entries_.back()->id = directory[i].id;
    record_placements(catalog.entries_.back().get(), directory[i]);
  }
  catalog.next_id_ = static_cast<DocId>(next_id);
  if (image.dir_offset != 0) {
    catalog.origin_ = OriginImage{std::string(), image.minor,
                                  bytes.size(), image.dir_offset};
  }
  if (options.stats != nullptr) {
    options.stats->threads_used = std::max(1u, workers);
    options.stats->sections_verified = image.sections.size();
    options.stats->total_ms = total_timer.ElapsedMillis();
  }
  uint64_t total_copied = 0;
  uint64_t total_viewed = 0;
  for (const DecodedEntry& entry : decoded) {
    total_copied += entry.load_stats.bytes_copied;
    total_viewed += entry.load_stats.bytes_viewed;
  }
  RecordOpenMetrics(total_timer, total_copied, total_viewed);
  return catalog;
}

Status Catalog::SaveToFile(const std::string& path) const {
  return SaveToFile(path, CatalogSaveOptions{});
}

Result<bool> Catalog::TrySaveInPlace(
    const std::string& path, const CatalogSaveOptions& options) const {
  // Only the minor-6 image this catalog's placements refer to can be
  // appended to, and only in the derived DOC2 format that image holds.
  if (!origin_.has_value() || origin_->path != path ||
      origin_->minor < 6) {
    return false;
  }
  if (options.payload_format != model::DocumentPayloadFormat::kColumnar ||
      !options.derived_sections || entries_.empty()) {
    return false;
  }

  // Assemble the keep-or-append section list and the new CTLG
  // directory — same section order per entry as SerializeImage, so the
  // two writers produce interchangeable images.
  std::vector<model::PendingSection> sections;
  sections.emplace_back();  // CTLG placeholder, always fresh
  std::vector<EntrySectionMap> ats(entries_.size());
  ByteWriter directory;
  directory.U8(kCatalogCodecV2);
  directory.Varint(next_id_);
  directory.Varint(entries_.size());
  for (size_t i = 0; i < entries_.size(); ++i) {
    const NamedDocument& entry = *entries_[i];
    bool pending = entry.pending != nullptr;
    if (pending && (!entry.placed.doc.has_value() ||
                    !entry.placed.derived.has_value())) {
      // A pending entry has nothing to serialize from; without kept
      // placements the full rewrite (which materializes) must run.
      return false;
    }
    directory.Varint(entry.id);
    directory.StrVarint(entry.name);
    directory.Varint(sections.size());
    ats[i].doc_at = sections.size();
    if (entry.placed.doc.has_value()) {
      if (entry.placed.doc->id !=
          model::kAlignedColumnarDocumentSectionId) {
        return false;  // legacy payload aboard; rewrite in DOC2
      }
      sections.push_back(model::PendingSection{
          entry.placed.doc->id, entry.placed.doc, std::string()});
    } else {
      MEETXML_ASSIGN_OR_RETURN(
          std::string payload,
          model::SerializeDocumentSection(
              entry.doc, model::DocumentPayloadFormat::kColumnar));
      sections.push_back(model::PendingSection{
          model::kAlignedColumnarDocumentSectionId, std::nullopt,
          std::move(payload)});
    }
    const text::InvertedIndex* index =
        entry.index.has_value()
            ? &*entry.index
            : (entry.executor != nullptr ? entry.executor->text_index()
                                         : nullptr);
    if (entry.placed.index.has_value() || index != nullptr) {
      directory.Varint(sections.size() + 1);
      ats[i].index_at = sections.size();
      if (entry.placed.index.has_value()) {
        sections.push_back(model::PendingSection{
            model::kTextIndexSectionId, entry.placed.index,
            std::string()});
      } else {
        sections.push_back(model::PendingSection{
            model::kTextIndexSectionId, std::nullopt,
            text::SerializeIndex(*index)});
      }
    } else {
      directory.Varint(0);
    }
    directory.Varint(sections.size() + 1);
    ats[i].derived_at = sections.size();
    if (entry.placed.derived.has_value()) {
      sections.push_back(model::PendingSection{
          model::kDerivedSectionId, entry.placed.derived, std::string()});
    } else {
      MEETXML_ASSIGN_OR_RETURN(std::string derived_payload,
                               model::SerializeDerivedSection(entry.doc));
      sections.push_back(model::PendingSection{model::kDerivedSectionId,
                                               std::nullopt,
                                               std::move(derived_payload)});
    }
  }
  sections.front() = model::PendingSection{model::kCatalogSectionId,
                                           std::nullopt, directory.Take()};

  uint64_t kept_bytes = 0, new_bytes = 0;
  size_t kept_count = 0, new_count = 0;
  for (const model::PendingSection& section : sections) {
    if (section.keep.has_value()) {
      kept_bytes += section.keep->size;
      ++kept_count;
    } else {
      new_bytes += section.bytes.size();
      ++new_count;
    }
  }
  // Everything in the old region except the header and the kept
  // sections goes dead with this append: the superseded CTLG, the old
  // directory, dropped sections, and whatever was dead already.
  uint64_t header_bytes = 16;
  uint64_t projected_dead =
      origin_->file_size > kept_bytes + header_bytes
          ? origin_->file_size - kept_bytes - header_bytes
          : 0;
  // Directory: u32 count + 28 bytes per entry + u64 checksum; up to 4
  // alignment bytes per appended payload.
  uint64_t appended_estimate =
      new_bytes + 12 + 28 * sections.size() + 4 * (new_count + 1);
  uint64_t projected_size = origin_->file_size + appended_estimate;
  if (static_cast<double>(projected_dead) >
      options.compact_threshold * static_cast<double>(projected_size)) {
    if (options.stats != nullptr) options.stats->compacted = true;
    return false;  // too much dead weight; compact via full rewrite
  }

  MEETXML_ASSIGN_OR_RETURN(
      model::AppendStats append,
      model::AppendSectionsToFile(path, origin_->file_size,
                                  origin_->dir_offset, sections));
  for (size_t i = 0; i < entries_.size(); ++i) {
    entries_[i]->placed.doc = append.placements[ats[i].doc_at];
    entries_[i]->placed.derived = append.placements[ats[i].derived_at];
    entries_[i]->placed.index =
        ats[i].index_at != SIZE_MAX
            ? std::optional<model::SectionPlacement>(
                  append.placements[ats[i].index_at])
            : std::nullopt;
  }
  origin_->file_size = append.file_size;
  origin_->dir_offset = append.dir_offset;
  if (options.stats != nullptr) {
    options.stats->in_place = true;
    options.stats->bytes_appended = append.bytes_appended;
    options.stats->file_size = append.file_size;
    uint64_t live = header_bytes + (append.file_size - append.dir_offset);
    for (const model::SectionPlacement& placement : append.placements) {
      live += placement.size;
    }
    options.stats->dead_bytes =
        append.file_size > live ? append.file_size - live : 0;
    options.stats->sections_appended = new_count;
    options.stats->sections_kept = kept_count;
  }
  return true;
}

Status Catalog::SaveToFile(const std::string& path,
                           const CatalogSaveOptions& options) const {
  if (options.stats != nullptr) *options.stats = CatalogSaveStats{};
  if (options.in_place) {
    MEETXML_ASSIGN_OR_RETURN(bool appended, TrySaveInPlace(path, options));
    if (appended) return Status::OK();
  }
  // Full rewrite. Atomic (temp + rename): a view-backed catalog loaded
  // from this very path keeps borrowing from the old inode's mapping
  // while the new image takes over the directory entry.
  std::vector<EntrySectionMap> mapping;
  MEETXML_ASSIGN_OR_RETURN(
      std::string bytes,
      SerializeImage(options.payload_format, options.derived_sections,
                     &mapping));
  MEETXML_RETURN_NOT_OK(util::WriteFileAtomic(path, bytes));
  // Refresh the placement bookkeeping against what was just written,
  // so the next in-place save can append to it. A cheap unverified
  // re-scan recovers each section's offset and checksum.
  origin_.reset();
  for (const auto& entry : entries_) entry->placed = SectionPlacements{};
  model::SectionScanOptions scan;
  scan.verify_checksums = false;
  Result<model::SectionImage> written =
      model::LoadSectionsFromBytes(bytes, scan);
  if (written.ok() && written->dir_offset != 0) {
    auto placement_of = [&](size_t at) {
      const SectionView& section = written->sections[at];
      return model::SectionPlacement{section.id, section.offset,
                                     section.bytes.size(),
                                     section.checksum};
    };
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (mapping[i].doc_at != SIZE_MAX) {
        entries_[i]->placed.doc = placement_of(mapping[i].doc_at);
      }
      if (mapping[i].derived_at != SIZE_MAX) {
        entries_[i]->placed.derived = placement_of(mapping[i].derived_at);
      }
      if (mapping[i].index_at != SIZE_MAX) {
        entries_[i]->placed.index = placement_of(mapping[i].index_at);
      }
    }
    origin_ = OriginImage{path, written->minor, bytes.size(),
                          written->dir_offset};
  }
  if (options.stats != nullptr) {
    options.stats->file_size = bytes.size();
    options.stats->sections_appended =
        written.ok() ? written->sections.size() : 0;
  }
  return Status::OK();
}

Result<Catalog> Catalog::LoadFromFile(const std::string& path,
                                      const CatalogLoadOptions& options) {
  if (options.mode == model::LoadMode::kView || options.lazy) {
    // Zero-copy open: every view-backed document pins the shared
    // mapping, so the catalog keeps it alive exactly as long as any
    // of its documents borrows from it. A lazy open pins it too,
    // whatever the decode mode — the pending entries' raw section
    // views borrow from the mapping until their first touch.
    MEETXML_ASSIGN_OR_RETURN(
        std::shared_ptr<const util::MmapFile> file,
        util::MmapFile::OpenShared(path,
                                   util::MmapFile::Advice::kWillNeed));
    CatalogLoadOptions pinned = options;
    pinned.backing = file;
    MEETXML_ASSIGN_OR_RETURN(Catalog catalog,
                             LoadFromBytes(file->bytes(), pinned));
    if (catalog.origin_.has_value()) catalog.origin_->path = path;
    return catalog;
  }
  // Decode out of a file mapping; the catalog owns everything it
  // keeps, so the mapping ends with this scope.
  MEETXML_ASSIGN_OR_RETURN(
      util::MmapFile file,
      util::MmapFile::Open(path, util::MmapFile::Advice::kSequential));
  MEETXML_ASSIGN_OR_RETURN(Catalog catalog,
                           LoadFromBytes(file.bytes(), options));
  if (catalog.origin_.has_value()) catalog.origin_->path = path;
  return catalog;
}

}  // namespace store
}  // namespace meetxml
