// AB6 — ablation: persistence vs. re-parsing.
//
// Compares cold-start paths for a bulk-loaded store at several corpus
// sizes: (a) parse XML + shred, (b) save binary image, (c) load binary
// image. Expected shape: loading the image is several times faster
// than re-parsing and scales linearly; image size is comparable to the
// XML.

#include <cstdio>

#include "data/dblp_gen.h"
#include "model/shredder.h"
#include "model/storage_io.h"
#include "util/timer.h"
#include "xml/parser.h"
#include "xml/serializer.h"

using namespace meetxml;

int main() {
  std::printf("# AB6: binary image persistence vs re-parse\n");
  std::printf("# %-9s %9s %9s %11s %9s %9s %9s\n", "papers/yr", "xml_MB",
              "img_MB", "parse_ms", "save_ms", "load_ms", "speedup");

  for (int scale : {10, 40, 120, 300}) {
    data::DblpOptions options;
    options.icde_papers_per_year = scale;
    options.other_papers_per_year = scale * 3;
    options.journal_articles_per_year = scale;
    auto generated = data::GenerateDblp(options);
    MEETXML_CHECK_OK(generated.status());
    xml::SerializeOptions serialize_options;
    serialize_options.indent = 1;
    std::string xml_text = xml::Serialize(*generated, serialize_options);

    util::Timer timer;
    auto doc = model::ShredXmlText(xml_text);
    MEETXML_CHECK_OK(doc.status());
    double parse_ms = timer.ElapsedMillis();

    timer.Reset();
    auto bytes = model::SaveToBytes(*doc);
    MEETXML_CHECK_OK(bytes.status());
    double save_ms = timer.ElapsedMillis();

    timer.Reset();
    auto reloaded = model::LoadFromBytes(*bytes);
    MEETXML_CHECK_OK(reloaded.status());
    double load_ms = timer.ElapsedMillis();

    std::printf("  %-9d %9.1f %9.1f %11.1f %9.1f %9.1f %8.1fx\n", scale,
                static_cast<double>(xml_text.size()) / 1e6,
                static_cast<double>(bytes->size()) / 1e6, parse_ms,
                save_ms, load_ms, parse_ms / load_ms);
  }
  std::printf("# expected shape: image load linear and several times "
              "faster than re-parsing\n");
  return 0;
}
