#include "util/failpoint.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "util/strings.h"

namespace meetxml {
namespace util {

namespace {

struct ArmedPoint {
  std::string pattern;
  FailPointSpec spec;
  uint64_t skipped = 0;  // matching hits consumed by spec.skip
  uint64_t fired = 0;
  uint64_t rng_state = 0;
};

// Intentionally leaked (never destroyed): sites are hit from arbitrary
// library code, including during static destruction of test binaries.
struct Registry {
  std::mutex mu;
  std::vector<ArmedPoint> armed;
  std::unordered_map<std::string, uint64_t> site_hits;
  // Fast-path gate: sites skip the mutex entirely while nothing is
  // armed, so an instrumented build leaves thread interleavings (and
  // TSan's view of them) untouched until a test actually arms a fault.
  std::atomic<uint64_t> armed_count{0};
  std::atomic<uint64_t> total_hits{0};
  std::once_flag env_once;
};

Registry& Reg() {
  static Registry* registry = new Registry();
  return *registry;
}

// splitmix64 step: a deterministic per-entry stream for probability
// draws, so a seeded probabilistic failpoint fires on the same hits in
// every run.
uint64_t NextRandom(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

bool ParseAction(std::string_view word, FailPointSpec* spec) {
  if (word == "error") {
    spec->action = FailPointSpec::Action::kError;
    spec->code = StatusCode::kInternal;
  } else if (word == "notfound") {
    spec->action = FailPointSpec::Action::kError;
    spec->code = StatusCode::kNotFound;
  } else if (word == "unavailable") {
    spec->action = FailPointSpec::Action::kError;
    spec->code = StatusCode::kUnavailable;
  } else if (word == "exhausted") {
    spec->action = FailPointSpec::Action::kError;
    spec->code = StatusCode::kResourceExhausted;
  } else if (word == "crash") {
    spec->action = FailPointSpec::Action::kCrash;
  } else {
    return false;
  }
  return true;
}

bool ParseUint(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

// One spec term: <pattern>=<action>[:<skip>[:<count>[:<probability>]]]
Status ArmOneTerm(std::string_view term) {
  size_t eq = term.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    return Status::InvalidArgument("failpoint spec term missing '=': ", term);
  }
  std::string_view pattern = term.substr(0, eq);
  std::string_view rest = term.substr(eq + 1);

  std::string_view fields[4];
  size_t field_count = 0;
  while (field_count < 4) {
    size_t colon = rest.find(':');
    fields[field_count++] = rest.substr(0, colon);
    if (colon == std::string_view::npos) break;
    rest = rest.substr(colon + 1);
  }

  FailPointSpec spec;
  if (field_count == 0 || !ParseAction(fields[0], &spec)) {
    return Status::InvalidArgument("unknown failpoint action in: ", term);
  }
  if (field_count > 1 && !ParseUint(fields[1], &spec.skip)) {
    return Status::InvalidArgument("bad failpoint skip in: ", term);
  }
  if (field_count > 2 && !ParseUint(fields[2], &spec.count)) {
    return Status::InvalidArgument("bad failpoint count in: ", term);
  }
  if (field_count > 3) {
    std::string prob_text(fields[3]);
    char* end = nullptr;
    double probability = std::strtod(prob_text.c_str(), &end);
    if (end == prob_text.c_str() || *end != '\0' || probability < 0.0 ||
        probability > 1.0) {
      return Status::InvalidArgument("bad failpoint probability in: ", term);
    }
    spec.probability = probability;
  }
  return FailPoints::Arm(pattern, spec);
}

void ArmFromEnvironment() {
  const char* env = std::getenv("MEETXML_FAILPOINTS");
  if (env == nullptr || env[0] == '\0') return;
  // Environment specs are best-effort: a typo in the variable must not
  // silently disable injection, so surface it on stderr and keep going
  // with whatever terms did parse.
  Status status = FailPoints::ArmFromSpec(env);
  if (!status.ok()) {
    std::fprintf(stderr, "meetxml: MEETXML_FAILPOINTS: %s\n",
                 status.message().c_str());
  }
}

}  // namespace

Status FailPoints::Arm(std::string_view pattern, FailPointSpec spec) {
  if (pattern.empty()) {
    return Status::InvalidArgument("empty failpoint pattern");
  }
  if (spec.probability < 0.0 || spec.probability > 1.0) {
    return Status::InvalidArgument("failpoint probability out of [0,1]");
  }
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mu);
  ArmedPoint point;
  point.pattern.assign(pattern.data(), pattern.size());
  point.spec = spec;
  point.rng_state = spec.seed;
  reg.armed.push_back(std::move(point));
  reg.armed_count.store(reg.armed.size(), std::memory_order_release);
  return Status::OK();
}

Status FailPoints::ArmFromSpec(std::string_view spec_text) {
  Status first_error = Status::OK();
  while (!spec_text.empty()) {
    size_t comma = spec_text.find(',');
    std::string_view term = spec_text.substr(0, comma);
    spec_text = comma == std::string_view::npos ? std::string_view()
                                                : spec_text.substr(comma + 1);
    if (term.empty()) continue;
    Status status = ArmOneTerm(term);
    if (!status.ok() && first_error.ok()) first_error = std::move(status);
  }
  return first_error;
}

void FailPoints::Disarm(std::string_view pattern) {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (size_t i = reg.armed.size(); i > 0; --i) {
    if (reg.armed[i - 1].pattern == pattern) {
      reg.armed.erase(reg.armed.begin() + static_cast<long>(i - 1));
    }
  }
  reg.armed_count.store(reg.armed.size(), std::memory_order_release);
}

void FailPoints::Reset() {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.armed.clear();
  reg.site_hits.clear();
  reg.armed_count.store(0, std::memory_order_release);
  reg.total_hits.store(0, std::memory_order_relaxed);
}

uint64_t FailPoints::TotalHits() {
  return Reg().total_hits.load(std::memory_order_relaxed);
}

uint64_t FailPoints::HitCount(std::string_view site) {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.site_hits.find(std::string(site));
  return it == reg.site_hits.end() ? 0 : it->second;
}

Status FailPoints::Hit(std::string_view site) {
  Registry& reg = Reg();
  std::call_once(reg.env_once, ArmFromEnvironment);
  reg.total_hits.fetch_add(1, std::memory_order_relaxed);
  if (reg.armed_count.load(std::memory_order_acquire) == 0) {
    return Status::OK();
  }
  std::lock_guard<std::mutex> lock(reg.mu);
  ++reg.site_hits[std::string(site)];
  for (ArmedPoint& point : reg.armed) {
    if (!GlobMatch(point.pattern, site)) continue;
    if (point.fired >= point.spec.count) continue;
    if (point.skipped < point.spec.skip) {
      ++point.skipped;
      continue;
    }
    if (point.spec.probability < 1.0) {
      constexpr double kScale = 1.0 / 9007199254740992.0;  // 2^-53
      double draw =
          static_cast<double>(NextRandom(point.rng_state) >> 11) * kScale;
      if (draw >= point.spec.probability) continue;
    }
    ++point.fired;
    if (point.spec.action == FailPointSpec::Action::kCrash) {
      std::_Exit(kCrashExitCode);
    }
    return Status(point.spec.code,
                  "injected failure at failpoint " + std::string(site));
  }
  return Status::OK();
}

}  // namespace util
}  // namespace meetxml
