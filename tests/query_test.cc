// Tests for the query language: lexer, parser, path-pattern matching and
// the executor (both meet aggregation and the regular-path-expression
// baseline of the paper's introduction).

#include <gtest/gtest.h>

#include "data/paper_example.h"
#include "model/shredder.h"
#include "query/executor.h"
#include "query/lexer.h"
#include "query/parser.h"
#include "query/path_match.h"
#include "tests/test_util.h"

namespace meetxml {
namespace query {
namespace {

using meetxml::testing::MustShred;

// ---- Lexer --------------------------------------------------------------

TEST(Lexer, TokenizesBasicQuery) {
  auto tokens = Lex("select meet(o1, o2) from a//cdata o1");
  ASSERT_TRUE(tokens.ok()) << tokens.status();
  ASSERT_GE(tokens->size(), 10u);
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kSelect);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kMeet);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kLparen);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens->back().kind, TokenKind::kEof);
}

TEST(Lexer, KeywordsAreCaseInsensitive) {
  auto tokens = Lex("SELECT Select sElEcT");
  ASSERT_TRUE(tokens.ok());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ((*tokens)[i].kind, TokenKind::kSelect);
  }
}

TEST(Lexer, StringsWithBothQuoteStyles) {
  auto tokens = Lex("'single' \"double\"");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[0].text, "single");
  EXPECT_EQ((*tokens)[1].text, "double");
}

TEST(Lexer, DistinguishesSlashes) {
  auto tokens = Lex("a/b//c");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kSlash);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kDoubleSlash);
}

TEST(Lexer, RejectsUnterminatedString) {
  EXPECT_FALSE(Lex("select 'oops").ok());
}

TEST(Lexer, RejectsStrayCharacters) {
  EXPECT_FALSE(Lex("select %").ok());
  EXPECT_FALSE(Lex("a < b").ok());  // only <= is a token
}

// ---- Parser -------------------------------------------------------------

TEST(Parser, ParsesThePaperQuery) {
  auto query = ParseQuery(
      "select meet(o1, o2) "
      "from bibliography//cdata as o1, bibliography//cdata as o2 "
      "where o1 contains 'Bit' and o2 contains '1999'");
  ASSERT_TRUE(query.ok()) << query.status();
  ASSERT_EQ(query->projections.size(), 1u);
  EXPECT_EQ(query->projections[0].kind, Projection::Kind::kMeet);
  EXPECT_EQ(query->projections[0].vars,
            (std::vector<std::string>{"o1", "o2"}));
  ASSERT_EQ(query->bindings.size(), 2u);
  EXPECT_EQ(query->bindings[0].var, "o1");
  ASSERT_EQ(query->where.size(), 2u);
  ASSERT_EQ(query->where[0].op, BoolExpr::Op::kLeaf);
  EXPECT_EQ(query->where[0].leaf.kind, Predicate::Kind::kContains);
  EXPECT_EQ(query->where[0].leaf.literal, "Bit");
}

TEST(Parser, AsIsOptional) {
  auto query = ParseQuery("select o from a//cdata o");
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_EQ(query->bindings[0].var, "o");
}

TEST(Parser, ParsesRestrictionClauses) {
  auto query = ParseQuery(
      "select meet(o1, o2) from dblp//cdata o1, dblp//cdata o2 "
      "where o1 contains 'ICDE' and o2 contains '1999' "
      "exclude dblp within 8 limit 100");
  ASSERT_TRUE(query.ok()) << query.status();
  ASSERT_EQ(query->excludes.size(), 1u);
  ASSERT_TRUE(query->within.has_value());
  EXPECT_EQ(*query->within, 8);
  ASSERT_TRUE(query->limit.has_value());
  EXPECT_EQ(*query->limit, 100);
}

TEST(Parser, ParsesDistancePredicate) {
  auto query = ParseQuery(
      "select meet(a, b) from x//cdata a, x//cdata b "
      "where distance(a, b) <= 4");
  ASSERT_TRUE(query.ok()) << query.status();
  ASSERT_EQ(query->where.size(), 1u);
  ASSERT_EQ(query->where[0].op, BoolExpr::Op::kLeaf);
  EXPECT_EQ(query->where[0].leaf.kind, Predicate::Kind::kDistanceLe);
  EXPECT_EQ(query->where[0].leaf.bound, 4);
}

TEST(Parser, ParsesBooleanPredicates) {
  auto query = ParseQuery(
      "select o from a//cdata o "
      "where (o contains 'x' or o contains 'y') and not o contains 'z'");
  ASSERT_TRUE(query.ok()) << query.status();
  ASSERT_EQ(query->where.size(), 2u);
  EXPECT_EQ(query->where[0].op, BoolExpr::Op::kOr);
  EXPECT_EQ(query->where[1].op, BoolExpr::Op::kNot);
}

TEST(Parser, AndBindsTighterThanOr) {
  auto query = ParseQuery(
      "select o from a//cdata o "
      "where o contains 'x' or o contains 'y' and o contains 'z'");
  ASSERT_TRUE(query.ok()) << query.status();
  // x or (y and z): one top-level conjunct, an OR whose right child is
  // an AND.
  ASSERT_EQ(query->where.size(), 1u);
  ASSERT_EQ(query->where[0].op, BoolExpr::Op::kOr);
  EXPECT_EQ(query->where[0].children[1].op, BoolExpr::Op::kAnd);
}

TEST(Parser, RejectsCrossVariableBoolean) {
  auto query = ParseQuery(
      "select o from a//cdata o, a//cdata p "
      "where o contains 'x' or p contains 'y'");
  ASSERT_FALSE(query.ok());
  EXPECT_NE(query.status().message().find("one variable"),
            std::string::npos);
}

TEST(Parser, RejectsDistanceUnderNot) {
  auto query = ParseQuery(
      "select meet(o, p) from a//cdata o, a//cdata p "
      "where not distance(o, p) <= 3");
  EXPECT_FALSE(query.ok());
}

TEST(Parser, ParsesAttributeAndWildcardSteps) {
  auto pattern = ParsePathPattern("dblp/*/inproceedings/@key");
  ASSERT_TRUE(pattern.ok()) << pattern.status();
  ASSERT_EQ(pattern->steps.size(), 4u);
  EXPECT_EQ(pattern->steps[0].kind, PatternStep::Kind::kName);
  EXPECT_EQ(pattern->steps[1].kind, PatternStep::Kind::kAnyElement);
  EXPECT_EQ(pattern->steps[3].kind, PatternStep::Kind::kAttribute);
  EXPECT_EQ(pattern->steps[3].label, "key");
}

struct BadQuery {
  const char* name;
  const char* text;
};

class ParserErrorTest : public ::testing::TestWithParam<BadQuery> {};

TEST_P(ParserErrorTest, Rejects) {
  auto query = ParseQuery(GetParam().text);
  EXPECT_FALSE(query.ok()) << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, ParserErrorTest,
    ::testing::Values(
        BadQuery{"empty", ""},
        BadQuery{"no_from", "select o"},
        BadQuery{"undeclared_select_var", "select x from a o"},
        BadQuery{"undeclared_where_var",
                 "select o from a o where q contains 'x'"},
        BadQuery{"duplicate_var", "select o from a o, b o"},
        BadQuery{"missing_pattern", "select o from  o where"},
        BadQuery{"bad_predicate", "select o from a o where o like 'x'"},
        BadQuery{"missing_literal", "select o from a o where o contains"},
        BadQuery{"meet_no_vars", "select meet() from a o"},
        BadQuery{"distance_one_var",
                 "select meet(o) from a o where distance(o) <= 2"},
        BadQuery{"trailing_junk", "select o from a o garbage"},
        BadQuery{"attr_mid_pattern_missing_name",
                 "select o from a/@ o"}),
    [](const ::testing::TestParamInfo<BadQuery>& info) {
      return info.param.name;
    });

// ---- Path pattern matching ----------------------------------------------

class PathMatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    doc_ = MustShred(data::PaperExampleXml());
  }

  std::vector<std::string> Match(const std::string& pattern_text) {
    auto pattern = ParsePathPattern(pattern_text);
    EXPECT_TRUE(pattern.ok()) << pattern.status();
    auto matched = MatchPattern(doc_.paths(), *pattern);
    EXPECT_TRUE(matched.ok()) << matched.status();
    std::vector<std::string> names;
    for (bat::PathId id : *matched) {
      names.push_back(doc_.paths().ToString(id));
    }
    return names;
  }

  model::StoredDocument doc_;
};

TEST_F(PathMatchTest, ExactPath) {
  auto names = Match("bibliography/institute/article");
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "bibliography/institute/article");
}

TEST_F(PathMatchTest, DescendantCdata) {
  auto names = Match("bibliography//cdata");
  // author, firstname, lastname, title, year cdata paths = 5.
  EXPECT_EQ(names.size(), 5u);
}

TEST_F(PathMatchTest, SingleWildcard) {
  auto names = Match("bibliography/*/article");
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "bibliography/institute/article");
}

TEST_F(PathMatchTest, WildcardDoesNotSkipLevels) {
  EXPECT_TRUE(Match("bibliography/*/author").empty());
}

TEST_F(PathMatchTest, AttributeStep) {
  auto names = Match("bibliography//article/@key");
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "bibliography/institute/article/@key");
}

TEST_F(PathMatchTest, RootAnchored) {
  // 'institute' alone does not match: patterns anchor at the root.
  EXPECT_TRUE(Match("institute").empty());
  EXPECT_EQ(Match("bibliography/institute").size(), 1u);
}

TEST_F(PathMatchTest, DescendantMatchesZeroSteps) {
  // a//b matches a/b as well (empty gap).
  EXPECT_EQ(Match("bibliography//institute").size(), 1u);
}

TEST_F(PathMatchTest, RecursiveSchema) {
  auto doc = MustShred("<a><a><a>x</a></a></a>");
  auto pattern = ParsePathPattern("a//a");
  ASSERT_TRUE(pattern.ok());
  auto matched = MatchPattern(doc.paths(), *pattern);
  ASSERT_TRUE(matched.ok());
  EXPECT_EQ(matched->size(), 2u);  // a/a and a/a/a
}

// ---- Executor -------------------------------------------------------------

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    doc_ = MustShred(data::PaperExampleXml());
    auto executor = Executor::Build(doc_);
    ASSERT_TRUE(executor.ok());
    executor_ = std::make_unique<Executor>(std::move(*executor));
  }

  QueryResult Run(const std::string& text) {
    auto result = executor_->ExecuteText(text);
    EXPECT_TRUE(result.ok()) << result.status() << "\nquery: " << text;
    return result.ok() ? std::move(*result) : QueryResult{};
  }

  model::StoredDocument doc_;
  std::unique_ptr<Executor> executor_;
};

TEST_F(ExecutorTest, PaperMeetQueryReturnsExactlyTheArticle) {
  QueryResult result = Run(
      "select meet(o1, o2) "
      "from bibliography//cdata o1, bibliography//cdata o2 "
      "where o1 contains 'Bit' and o2 contains '1999'");
  ASSERT_EQ(result.meets.size(), 1u);
  EXPECT_EQ(doc_.tag(result.meets[0].meet), "article");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0], "article");
}

TEST_F(ExecutorTest, PaperBaselineQueryImpliesAncestors) {
  // The §1 regular-path-expression baseline: each (x1, x2) match pair
  // implies all of its common ancestors. Bit x its own article's 1999
  // gives {article, institute, bibliography}; Bit x the other article's
  // 1999 gives {institute, bibliography}: 5 rows, of which only
  // `article` is the answer the user wanted.
  QueryResult result = Run(
      "select ancestors(o1, o2) "
      "from bibliography//cdata o1, bibliography//cdata o2 "
      "where o1 contains 'Bit' and o2 contains '1999'");
  EXPECT_EQ(result.total_ancestor_rows, 5u);
  std::multiset<std::string> tags;
  for (const auto& row : result.rows) tags.insert(row[0]);
  EXPECT_EQ(tags.count("article"), 1u);
  EXPECT_EQ(tags.count("institute"), 2u);
  EXPECT_EQ(tags.count("bibliography"), 2u);
}

TEST_F(ExecutorTest, MeetIsSubsetOfBaseline) {
  QueryResult meet = Run(
      "select meet(o1, o2) from bibliography//cdata o1, "
      "bibliography//cdata o2 "
      "where o1 contains 'Bit' and o2 contains '1999'");
  QueryResult baseline = Run(
      "select ancestors(o1, o2) from bibliography//cdata o1, "
      "bibliography//cdata o2 "
      "where o1 contains 'Bit' and o2 contains '1999'");
  EXPECT_LT(meet.rows.size(), baseline.total_ancestor_rows);
}

TEST_F(ExecutorTest, SelectVarListsBindings) {
  QueryResult result = Run(
      "select o from bibliography//cdata o where o contains '1999'");
  EXPECT_EQ(result.rows.size(), 2u);
  for (const auto& row : result.rows) EXPECT_EQ(row[0], "cdata");
}

TEST_F(ExecutorTest, SelectCount) {
  QueryResult result =
      Run("select count(o) from bibliography//cdata o");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0], "7");
}

TEST_F(ExecutorTest, SelectTagOfMatchedPaths) {
  QueryResult result = Run("select tag(o) from bibliography/institute/* o");
  // institute's element children: article only.
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0], "article");
}

TEST_F(ExecutorTest, SelectXmlReassembles) {
  QueryResult result = Run(
      "select xml(o) from bibliography//article/year o limit 1");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0], "<year>1999</year>");
}

TEST_F(ExecutorTest, AttributePredicate) {
  QueryResult result = Run(
      "select o from bibliography//article/@key o where o = 'BB99'");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][1], "bibliography/institute/article/@key");
}

TEST_F(ExecutorTest, WordPredicate) {
  QueryResult hack = Run(
      "select o from bibliography//cdata o where o word 'Hack'");
  EXPECT_EQ(hack.rows.size(), 1u);  // "How to Hack" only
  QueryResult icase = Run(
      "select o from bibliography//cdata o where o icontains 'hack'");
  EXPECT_EQ(icase.rows.size(), 2u);
}

TEST_F(ExecutorTest, ExcludeClauseFiltersMeets) {
  // Bit and Bob Byte meet at institute; exclude it -> empty.
  QueryResult result = Run(
      "select meet(o1, o2) "
      "from bibliography//cdata o1, bibliography//cdata o2 "
      "where o1 contains 'Bit' and o2 contains 'Bob' "
      "exclude bibliography/institute");
  EXPECT_TRUE(result.meets.empty());
}

TEST_F(ExecutorTest, WithinClauseFiltersMeets) {
  QueryResult wide = Run(
      "select meet(o1, o2) "
      "from bibliography//cdata o1, bibliography//cdata o2 "
      "where o1 contains 'Ben' and o2 contains 'Bit' within 4");
  EXPECT_EQ(wide.meets.size(), 1u);
  QueryResult tight = Run(
      "select meet(o1, o2) "
      "from bibliography//cdata o1, bibliography//cdata o2 "
      "where o1 contains 'Ben' and o2 contains 'Bit' within 3");
  EXPECT_TRUE(tight.meets.empty());
}

TEST_F(ExecutorTest, DistancePredicateActsAsDMeet) {
  QueryResult result = Run(
      "select meet(o1, o2) "
      "from bibliography//cdata o1, bibliography//cdata o2 "
      "where o1 contains 'Ben' and o2 contains 'Bit' "
      "and distance(o1, o2) <= 3");
  EXPECT_TRUE(result.meets.empty());
}

TEST_F(ExecutorTest, LimitTruncates) {
  QueryResult result =
      Run("select o from bibliography//cdata o limit 3");
  EXPECT_EQ(result.rows.size(), 3u);
  EXPECT_TRUE(result.truncated);
}

TEST_F(ExecutorTest, EmptyMatchSetIsNotAnError) {
  // One term matches nothing, the other a single node: no pair or
  // intra-set convergence exists, so the answer is empty but the query
  // succeeds.
  QueryResult result = Run(
      "select meet(o1, o2) "
      "from bibliography//cdata o1, bibliography//cdata o2 "
      "where o1 contains 'nosuchstring' and o2 contains 'Ben'");
  EXPECT_TRUE(result.meets.empty());
}

TEST_F(ExecutorTest, IntraSetConvergenceIsReportedAsInThePaper) {
  // The general meet calls a node a meet when it is the LCA of at least
  // two input nodes regardless of source (§3.2): the two 1999 cdatas
  // alone converge at institute.
  QueryResult result = Run(
      "select meet(o1, o2) "
      "from bibliography//cdata o1, bibliography//cdata o2 "
      "where o1 contains 'nosuchstring' and o2 contains '1999'");
  ASSERT_EQ(result.meets.size(), 1u);
  EXPECT_EQ(doc_.tag(result.meets[0].meet), "institute");
}

TEST_F(ExecutorTest, RejectsMultipleProjections) {
  auto result = executor_->ExecuteText(
      "select o, tag(o) from bibliography//cdata o");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotImplemented());
}

TEST_F(ExecutorTest, OrPredicateUnionsMatches) {
  QueryResult result = Run(
      "select o from bibliography//cdata o "
      "where o contains 'Ben' or o contains 'Bob'");
  EXPECT_EQ(result.rows.size(), 2u);  // "Ben" and "Bob Byte"
}

TEST_F(ExecutorTest, NotPredicateComplements) {
  QueryResult all = Run("select count(o) from bibliography//cdata o");
  QueryResult with = Run(
      "select count(o) from bibliography//cdata o "
      "where o icontains 'hack'");
  QueryResult without = Run(
      "select count(o) from bibliography//cdata o "
      "where not o icontains 'hack'");
  int total = std::stoi(all.rows[0][0]);
  EXPECT_EQ(std::stoi(with.rows[0][0]) + std::stoi(without.rows[0][0]),
            total);
}

TEST_F(ExecutorTest, ParenthesizedBooleanInMeetQuery) {
  // Either spelling of the author matches; combined with the year the
  // nearest concept is still the article.
  QueryResult result = Run(
      "select meet(o1, o2) "
      "from bibliography//cdata o1, bibliography//cdata o2 "
      "where (o1 contains 'Bit' or o1 contains 'Bitt') "
      "and o2 contains '1999'");
  ASSERT_EQ(result.meets.size(), 1u);
  EXPECT_EQ(doc_.tag(result.meets[0].meet), "article");
}

TEST_F(ExecutorTest, PhrasePredicate) {
  QueryResult hit = Run(
      "select o from bibliography//cdata o "
      "where o phrase 'how to hack'");
  EXPECT_EQ(hit.rows.size(), 1u);
  QueryResult miss = Run(
      "select o from bibliography//cdata o "
      "where o phrase 'hack to how'");
  EXPECT_TRUE(miss.rows.empty());
}

TEST_F(ExecutorTest, PhraseCombinesWithMeet) {
  QueryResult result = Run(
      "select meet(o1, o2) "
      "from bibliography//cdata o1, bibliography//cdata o2 "
      "where o1 phrase 'how to hack' and o2 contains '1999'");
  ASSERT_EQ(result.meets.size(), 1u);
  EXPECT_EQ(doc_.tag(result.meets[0].meet), "article");
}

TEST_F(ExecutorTest, SynonymPredicateUsesTheThesaurus) {
  // Without a thesaurus, SYNONYM behaves like ICONTAINS of the literal.
  QueryResult bare = Run(
      "select o from bibliography//cdata o where o synonym 'exploit'");
  EXPECT_TRUE(bare.rows.empty());

  text::Thesaurus thesaurus;
  thesaurus.AddRing({"exploit", "hack"});
  executor_->SetThesaurus(std::move(thesaurus));
  QueryResult expanded = Run(
      "select o from bibliography//cdata o where o synonym 'exploit'");
  EXPECT_EQ(expanded.rows.size(), 2u);  // both titles contain "Hack"
}

TEST_F(ExecutorTest, SynonymFeedsTheMeet) {
  text::Thesaurus thesaurus;
  thesaurus.AddRing({"benjamin", "ben"});
  executor_->SetThesaurus(std::move(thesaurus));
  QueryResult result = Run(
      "select meet(o1, o2) "
      "from bibliography//cdata o1, bibliography//cdata o2 "
      "where o1 synonym 'benjamin' and o2 contains 'Bit'");
  ASSERT_EQ(result.meets.size(), 1u);
  EXPECT_EQ(doc_.tag(result.meets[0].meet), "author");
}

TEST_F(ExecutorTest, ExplainShowsBindingPlan) {
  auto plan = executor_->ExplainText(
      "select meet(o1, o2) "
      "from bibliography//cdata o1, bibliography//article/@key o2 "
      "where o1 contains 'Bit' exclude bibliography within 9 limit 7");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan->find("binding o1"), std::string::npos);
  EXPECT_NE(plan->find("bibliography//cdata"), std::string::npos);
  EXPECT_NE(plan->find("1 after predicates"), std::string::npos);
  EXPECT_NE(plan->find("within 9"), std::string::npos);
  EXPECT_NE(plan->find("limit 7"), std::string::npos);
  EXPECT_NE(plan->find("meet (nearest concepts)"), std::string::npos);
}

TEST_F(ExecutorTest, GraphMeetProjectionOnTreeOnlyDataEqualsMeet) {
  // Without references GMEET degenerates to the tree meet.
  QueryResult graph = Run(
      "select gmeet(o1, o2) "
      "from bibliography//cdata o1, bibliography//cdata o2 "
      "where o1 contains 'Ben' and o2 contains 'Bit'");
  ASSERT_EQ(graph.rows.size(), 1u);
  EXPECT_EQ(graph.rows[0][0], "author");
  EXPECT_EQ(graph.rows[0][3], "4");
}

TEST_F(ExecutorTest, GraphMeetRespectsWithin) {
  QueryResult blocked = Run(
      "select gmeet(o1, o2) "
      "from bibliography//cdata o1, bibliography//cdata o2 "
      "where o1 contains 'Ben' and o2 contains 'Bit' within 3");
  EXPECT_TRUE(blocked.rows.empty());
}

TEST_F(ExecutorTest, GraphMeetFollowsReferences) {
  auto doc = meetxml::testing::MustShred(R"(
    <lib>
      <shelf><book id="b1"><t>alpha</t><see ref="b2"/></book></shelf>
      <shelf><book id="b2"><t>beta</t></book></shelf>
    </lib>)");
  auto executor = Executor::Build(doc);
  ASSERT_TRUE(executor.ok());
  auto result = executor->ExecuteText(
      "select gmeet(o1, o2) from lib//cdata o1, lib//cdata o2 "
      "where o1 contains 'alpha' and o2 contains 'beta'");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_FALSE(result->rows.empty());
  // Tree route: cdata-t-book-shelf-lib-shelf-book-t-cdata = 8 edges;
  // via the reference: cdata-t-book-see-book-t-cdata = 6.
  EXPECT_EQ(result->rows[0][3], "6");
}

TEST_F(ExecutorTest, GraphMeetRequiresTwoVars) {
  auto bad = executor_->ExecuteText(
      "select gmeet(o1) from bibliography//cdata o1");
  EXPECT_FALSE(bad.ok());
}

TEST_F(ExecutorTest, ToTextRendersTable) {
  QueryResult result = Run(
      "select meet(o1, o2) "
      "from bibliography//cdata o1, bibliography//cdata o2 "
      "where o1 contains 'Bit' and o2 contains '1999'");
  std::string text = result.ToText();
  EXPECT_NE(text.find("meet"), std::string::npos);
  EXPECT_NE(text.find("article"), std::string::npos);
}

}  // namespace
}  // namespace query
}  // namespace meetxml
