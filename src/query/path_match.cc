#include "query/path_match.h"

namespace meetxml {
namespace query {

using bat::PathId;
using model::PathSummary;
using model::StepKind;
using util::Result;
using util::Status;

namespace {

// NFA over pattern positions 0..n (n = accept). Position i "points at"
// steps[i]. A kDescendant step contributes an epsilon move (skip it) and
// a self-loop on element steps.
using StateMask = uint64_t;

StateMask EpsilonClosure(const PathPattern& pattern, StateMask states) {
  // kDescendant positions can be skipped without consuming a step.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < pattern.steps.size(); ++i) {
      StateMask bit = StateMask{1} << i;
      if ((states & bit) &&
          pattern.steps[i].kind == PatternStep::Kind::kDescendant) {
        StateMask next = StateMask{1} << (i + 1);
        if (!(states & next)) {
          states |= next;
          changed = true;
        }
      }
    }
  }
  return states;
}

// Consumes one schema step (of the concrete path) from every active
// pattern position.
StateMask Step(const PathPattern& pattern, StateMask states,
               StepKind kind, const std::string& label) {
  StateMask next = 0;
  for (size_t i = 0; i < pattern.steps.size(); ++i) {
    StateMask bit = StateMask{1} << i;
    if (!(states & bit)) continue;
    const PatternStep& step = pattern.steps[i];
    switch (step.kind) {
      case PatternStep::Kind::kName:
        if (kind == StepKind::kElement && label == step.label) {
          next |= StateMask{1} << (i + 1);
        }
        break;
      case PatternStep::Kind::kAnyElement:
        if (kind == StepKind::kElement) {
          next |= StateMask{1} << (i + 1);
        }
        break;
      case PatternStep::Kind::kDescendant:
        // Self-loop: a descendant gap swallows any element step.
        if (kind == StepKind::kElement) {
          next |= bit;
        }
        break;
      case PatternStep::Kind::kAttribute:
        if (kind == StepKind::kAttribute && label == step.label) {
          next |= StateMask{1} << (i + 1);
        }
        break;
      case PatternStep::Kind::kCdata:
        if (kind == StepKind::kCdata) {
          next |= StateMask{1} << (i + 1);
        }
        break;
    }
  }
  return EpsilonClosure(pattern, next);
}

}  // namespace

Result<std::vector<PathId>> MatchPattern(const PathSummary& paths,
                                         const PathPattern& pattern) {
  if (pattern.steps.empty()) {
    return Status::InvalidArgument("empty path pattern");
  }
  if (pattern.steps.size() > 63) {
    return Status::ResourceExhausted("path pattern longer than 63 steps");
  }
  const StateMask accept = StateMask{1} << pattern.steps.size();
  const StateMask start = EpsilonClosure(pattern, StateMask{1});

  // Path ids are interned parents-first, so one ascending scan computes
  // each path's state set from its parent's.
  std::vector<StateMask> state_of(paths.size(), 0);
  std::vector<PathId> matched;
  for (PathId id = 0; id < paths.size(); ++id) {
    StateMask incoming =
        paths.parent(id) == bat::kInvalidPathId
            ? start
            : state_of[paths.parent(id)] & ~accept;
    StateMask after = Step(pattern, incoming, paths.kind(id),
                           paths.label(id));
    state_of[id] = after;
    if (after & accept) matched.push_back(id);
  }
  return matched;
}

}  // namespace query
}  // namespace meetxml
