// Non-validating XML 1.0 parser.
//
// Supports the subset of XML the paper's workloads need (and a bit more):
// elements, attributes, PCDATA with the five predefined entities and
// numeric character references, CDATA sections, comments, processing
// instructions, an XML declaration, and a skipped DOCTYPE. It rejects
// mismatched tags, duplicate attributes and malformed markup with
// line/column error positions. DTD-defined entities and namespaces
// processing are out of scope — tag names keep their prefixes verbatim,
// which is exactly what the Monet transform stores.

#ifndef MEETXML_XML_PARSER_H_
#define MEETXML_XML_PARSER_H_

#include <string_view>

#include "util/result.h"
#include "xml/dom.h"

namespace meetxml {
namespace xml {

/// \brief Knobs for the parser.
struct ParseOptions {
  /// Drop text nodes that consist entirely of ASCII whitespace. Data-
  /// oriented XML (bibliographies, feature files) is indented for humans;
  /// the indentation is not character data the paper's model cares about.
  bool discard_whitespace_text = true;
  /// Keep comment nodes in the DOM (they never reach the Monet transform).
  bool keep_comments = false;
  /// Keep processing-instruction nodes in the DOM.
  bool keep_processing_instructions = false;
  /// Maximum element nesting depth; guards against stack abuse in
  /// adversarial inputs. The parser itself is iterative, so this is a
  /// resource limit, not a recursion limit.
  int max_depth = 4096;
};

class SaxHandler;

/// \brief Parses a complete XML document from memory.
util::Result<Document> Parse(std::string_view input,
                             const ParseOptions& options = {});

/// \brief Event-based parse: streams well-nested events into `handler`
/// without building a DOM (see xml/sax.h). Prolog information (XML
/// declaration, DOCTYPE) is validated but not reported.
util::Status ParseSax(std::string_view input, SaxHandler* handler,
                      const ParseOptions& options = {});

/// \brief Reads and parses a file.
util::Result<Document> ParseFile(const std::string& path,
                                 const ParseOptions& options = {});

}  // namespace xml
}  // namespace meetxml

#endif  // MEETXML_XML_PARSER_H_
