// Small string helpers shared across modules.

#ifndef MEETXML_UTIL_STRINGS_H_
#define MEETXML_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace meetxml {
namespace util {

/// \brief True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// \brief True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// \brief Case-sensitive substring test (the paper's `contains`).
bool Contains(std::string_view haystack, std::string_view needle);

/// \brief Case-insensitive substring test (ASCII folding only).
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

/// \brief ASCII lower-casing; non-ASCII bytes pass through.
std::string ToLowerAscii(std::string_view s);

/// \brief Splits on a single character; empty pieces are kept.
std::vector<std::string_view> Split(std::string_view s, char sep);

/// \brief Removes leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view s);

/// \brief Joins `pieces` with `sep` between them.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);
std::string Join(const std::vector<std::string_view>& pieces,
                 std::string_view sep);

/// \brief True if every byte is an ASCII digit and `s` is non-empty.
bool IsAllDigits(std::string_view s);

/// \brief Shell-style glob match: `*` matches any run (including the
/// empty one), `?` matches exactly one byte, everything else matches
/// itself, case-sensitively. Used for catalog name scoping
/// (store/multi_executor.h).
bool GlobMatch(std::string_view pattern, std::string_view text);

}  // namespace util
}  // namespace meetxml

#endif  // MEETXML_UTIL_STRINGS_H_
