// Property tests for the incremental (in-place) catalog save: any
// interleaving of Add / Remove / Rename / save must leave a file whose
// restored catalog is indistinguishable — names, per-document
// statistics, query answers — from one restored off a fresh
// full-rewrite image of the same catalog, whether the image is opened
// serially or with 8 decode workers, eagerly or lazily. Plus the
// bookkeeping contracts: what an append keeps vs. writes, and the
// dead-space threshold that forces a compacting rewrite.

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "model/stats.h"
#include "model/storage_io.h"
#include "store/catalog.h"
#include "store/multi_executor.h"
#include "tests/test_util.h"
#include "util/file_io.h"

namespace meetxml {
namespace store {
namespace {

using meetxml::testing::MustShred;
using model::StoredDocument;

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string CorpusXml(int n) {
  std::string xml = "<doc><entry><title>corpus number " +
                    std::to_string(n) + "</title><year>" +
                    std::to_string(1990 + n % 30) + "</year><note>";
  for (int i = 0; i <= n % 5; ++i) {
    xml += "token" + std::to_string((n * 7 + i) % 11) + " ";
  }
  xml += "</note></entry></doc>";
  return xml;
}

// Everything observable about a catalog, as one string: entry names
// and ids in order, the full statistics table of every document, and a
// cross-document query answer.
std::string Fingerprint(const Catalog& catalog) {
  std::string out;
  for (const NamedDocument* entry : catalog.entries()) {
    out += std::to_string(entry->id) + " " + entry->name + "\n";
    auto doc = catalog.Get(entry->name);
    EXPECT_TRUE(doc.ok()) << doc.status();
    if (!doc.ok()) continue;
    auto stats = model::ComputeStats(**doc);
    EXPECT_TRUE(stats.ok()) << stats.status();
    if (stats.ok()) out += model::RenderStats(*stats);
  }
  MultiExecutor multi(&catalog);
  auto result = multi.ExecuteText(
      "*", "SELECT a FROM *//cdata a WHERE a CONTAINS 'token' LIMIT 64",
      {});
  EXPECT_TRUE(result.ok()) << result.status();
  if (result.ok()) out += result->ToText();
  return out;
}

// The property at the heart of the suite: the incrementally-maintained
// file and a fresh full-rewrite image of the same catalog restore
// identical catalogs under every open strategy.
void ExpectMatchesFullRewrite(const Catalog& catalog,
                              const std::string& inc_path) {
  auto full = catalog.SaveToBytes();
  ASSERT_TRUE(full.ok()) << full.status();
  auto reference = Catalog::LoadFromBytes(*full);
  ASSERT_TRUE(reference.ok()) << reference.status();
  std::string want = Fingerprint(*reference);
  ASSERT_FALSE(want.empty());

  for (unsigned threads : {1u, 8u}) {
    for (bool lazy : {false, true}) {
      CatalogLoadOptions options;
      options.threads = threads;
      options.lazy = lazy;
      auto loaded = Catalog::LoadFromFile(inc_path, options);
      ASSERT_TRUE(loaded.ok())
          << loaded.status() << " (threads=" << threads
          << ", lazy=" << lazy << ")";
      EXPECT_EQ(Fingerprint(*loaded), want)
          << "threads=" << threads << ", lazy=" << lazy;
    }
  }
}

TEST(IncrementalSave, RandomOpSequencesMatchFullRewrite) {
  std::string path = TempPath("meetxml_incsave_prop.mxm");
  Catalog catalog;
  int counter = 0;
  for (; counter < 3; ++counter) {
    ASSERT_TRUE(catalog
                    .Add("doc_" + std::to_string(counter),
                         MustShred(CorpusXml(counter)))
                    .ok());
  }
  MEETXML_CHECK_OK(catalog.SaveToFile(path));

  uint64_t state = 0x2545f4914f6cdd1dULL;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  auto random_name = [&]() {
    std::vector<const NamedDocument*> all = catalog.entries();
    return all[next() % all.size()]->name;
  };

  size_t in_place_saves = 0;
  for (int round = 0; round < 16; ++round) {
    switch (next() % 4) {
      case 0:
        ASSERT_TRUE(catalog
                        .Add("doc_" + std::to_string(counter),
                             MustShred(CorpusXml(counter)))
                        .ok());
        ++counter;
        break;
      case 1:
        if (catalog.size() > 1) {
          MEETXML_CHECK_OK(catalog.Remove(random_name()));
        }
        break;
      case 2:
        MEETXML_CHECK_OK(catalog.Rename(
            random_name(), "renamed_" + std::to_string(counter++)));
        break;
      case 3:
        break;  // save with no mutation: the append must be a no-op-ish
    }
    CatalogSaveStats stats;
    CatalogSaveOptions save;
    save.in_place = true;
    save.stats = &stats;
    MEETXML_CHECK_OK(catalog.SaveToFile(path, save));
    if (stats.in_place) ++in_place_saves;
    ExpectMatchesFullRewrite(catalog, path);
  }
  // The sequence must have exercised the append path, not just fallen
  // back to rewrites every round.
  EXPECT_GT(in_place_saves, 8u);
  std::filesystem::remove(path);
}

TEST(IncrementalSave, SingleAddAppendsInsteadOfRewriting) {
  std::string path = TempPath("meetxml_incsave_add.mxm");
  Catalog catalog;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(catalog
                    .Add("doc_" + std::to_string(i),
                         MustShred(CorpusXml(i)))
                    .ok());
  }
  MEETXML_CHECK_OK(catalog.SaveToFile(path));
  auto before = util::ReadFileToString(path);
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE(catalog.Add("late", MustShred(CorpusXml(99))).ok());
  CatalogSaveStats stats;
  CatalogSaveOptions save;
  save.in_place = true;
  save.stats = &stats;
  MEETXML_CHECK_OK(catalog.SaveToFile(path, save));

  EXPECT_TRUE(stats.in_place);
  EXPECT_FALSE(stats.compacted);
  // Kept verbatim: DOC2 + DRV1 for each of the 8 existing documents.
  EXPECT_EQ(stats.sections_kept, 16u);
  // Appended: the new document's DOC2 + DRV1 and the fresh CTLG.
  EXPECT_EQ(stats.sections_appended, 3u);
  EXPECT_GT(stats.bytes_appended, 0u);
  auto after = util::ReadFileToString(path);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(stats.file_size, after->size());
  EXPECT_EQ(after->size(), before->size() + stats.bytes_appended);
  // The old CTLG payload and directory went dead with the append.
  EXPECT_GT(stats.dead_bytes, 0u);
  EXPECT_LT(stats.dead_bytes, before->size());

  ExpectMatchesFullRewrite(catalog, path);
  std::filesystem::remove(path);
}

TEST(IncrementalSave, RepeatedAppendsAccumulateDeadBytesMonotonically) {
  std::string path = TempPath("meetxml_incsave_dead.mxm");
  Catalog catalog;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(catalog
                    .Add("doc_" + std::to_string(i),
                         MustShred(CorpusXml(i)))
                    .ok());
  }
  MEETXML_CHECK_OK(catalog.SaveToFile(path));
  uint64_t last_dead = 0;
  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE(
        catalog.Add("extra_" + std::to_string(round), MustShred(CorpusXml(round + 50)))
            .ok());
    CatalogSaveStats stats;
    CatalogSaveOptions save;
    save.in_place = true;
    save.compact_threshold = 0.99;  // keep appending, never compact
    save.stats = &stats;
    MEETXML_CHECK_OK(catalog.SaveToFile(path, save));
    ASSERT_TRUE(stats.in_place);
    EXPECT_GT(stats.dead_bytes, last_dead);
    last_dead = stats.dead_bytes;
  }
  ExpectMatchesFullRewrite(catalog, path);
  std::filesystem::remove(path);
}

TEST(IncrementalSave, CompactionThresholdForcesRewrite) {
  std::string path = TempPath("meetxml_incsave_compact.mxm");
  Catalog catalog;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(catalog
                    .Add("doc_" + std::to_string(i),
                         MustShred(CorpusXml(i)))
                    .ok());
  }
  MEETXML_CHECK_OK(catalog.SaveToFile(path));
  auto before = util::ReadFileToString(path);
  ASSERT_TRUE(before.ok());

  // Dropping most of the corpus turns the majority of the file dead;
  // the in-place request must bail to a compacting rewrite.
  for (int i = 0; i < 5; ++i) {
    MEETXML_CHECK_OK(catalog.Remove("doc_" + std::to_string(i)));
  }
  CatalogSaveStats stats;
  CatalogSaveOptions save;
  save.in_place = true;
  save.stats = &stats;
  MEETXML_CHECK_OK(catalog.SaveToFile(path, save));
  EXPECT_FALSE(stats.in_place);
  EXPECT_TRUE(stats.compacted);
  auto after = util::ReadFileToString(path);
  ASSERT_TRUE(after.ok());
  EXPECT_LT(after->size(), before->size());

  // And the rewrite re-anchors the placements: the next append works.
  ASSERT_TRUE(catalog.Add("fresh", MustShred(CorpusXml(77))).ok());
  CatalogSaveStats again;
  save.stats = &again;
  MEETXML_CHECK_OK(catalog.SaveToFile(path, save));
  EXPECT_TRUE(again.in_place);
  ExpectMatchesFullRewrite(catalog, path);
  std::filesystem::remove(path);
}

TEST(IncrementalSave, IndexedEntriesKeepTheirTidxAcrossAppends) {
  std::string path = TempPath("meetxml_incsave_tidx.mxm");
  Catalog catalog;
  ASSERT_TRUE(catalog.Add("indexed", MustShred(CorpusXml(1))).ok());
  MEETXML_CHECK_OK(catalog.EnsureIndex("indexed"));
  MEETXML_CHECK_OK(catalog.SaveToFile(path));

  ASSERT_TRUE(catalog.Add("plain", MustShred(CorpusXml(2))).ok());
  CatalogSaveStats stats;
  CatalogSaveOptions save;
  save.in_place = true;
  save.stats = &stats;
  MEETXML_CHECK_OK(catalog.SaveToFile(path, save));
  ASSERT_TRUE(stats.in_place);
  EXPECT_EQ(stats.sections_kept, 3u);  // DOC2 + TIDX + DRV1

  auto loaded = Catalog::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->Find("indexed")->index.has_value());
  EXPECT_FALSE(loaded->Find("plain")->index.has_value());
  ExpectMatchesFullRewrite(catalog, path);
  std::filesystem::remove(path);
}

TEST(IncrementalSave, InPlaceIntoAForeignPathFallsBackToRewrite) {
  // No origin bookkeeping for that path — the save must quietly do the
  // full rewrite rather than fail or corrupt anything.
  std::string path = TempPath("meetxml_incsave_foreign.mxm");
  Catalog catalog;
  ASSERT_TRUE(catalog.Add("only", MustShred(CorpusXml(3))).ok());
  CatalogSaveStats stats;
  CatalogSaveOptions save;
  save.in_place = true;
  save.stats = &stats;
  MEETXML_CHECK_OK(catalog.SaveToFile(path, save));
  EXPECT_FALSE(stats.in_place);
  ExpectMatchesFullRewrite(catalog, path);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace store
}  // namespace meetxml
