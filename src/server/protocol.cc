#include "server/protocol.h"

#include <utility>

#include "util/byte_io.h"

namespace meetxml {
namespace server {

using util::ByteReader;
using util::ByteWriter;
using util::Result;
using util::Status;
using util::StatusCode;

namespace {

bool KnownOpcode(uint8_t raw) {
  return raw >= static_cast<uint8_t>(Opcode::kHello) &&
         raw <= static_cast<uint8_t>(Opcode::kDump);
}

bool KnownStatusCode(uint64_t raw) {
  return raw >= static_cast<uint64_t>(StatusCode::kInvalidArgument) &&
         raw <= static_cast<uint64_t>(StatusCode::kUnavailable);
}

Status CheckDrained(const ByteReader& reader, std::string_view what) {
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after ", what);
  }
  return Status::OK();
}

}  // namespace

std::string EncodeFrame(std::string_view payload) {
  ByteWriter out;
  out.U32(static_cast<uint32_t>(payload.size()));
  out.Bytes(payload);
  return out.Take();
}

std::string EncodeRequest(const Request& request) {
  ByteWriter out;
  out.U8(static_cast<uint8_t>(request.opcode));
  switch (request.opcode) {
    case Opcode::kHello:
      out.Varint(request.protocol_version);
      break;
    case Opcode::kQuery:
      out.StrVarint(request.scope);
      out.StrVarint(request.query);
      break;
    case Opcode::kPing:
    case Opcode::kStats:
    case Opcode::kBye:
    case Opcode::kDump:
      break;
  }
  return out.Take();
}

Result<Request> DecodeRequest(std::string_view payload) {
  ByteReader reader(payload);
  MEETXML_ASSIGN_OR_RETURN(uint8_t raw_opcode, reader.U8());
  if (!KnownOpcode(raw_opcode)) {
    return Status::InvalidArgument("unknown request opcode ", raw_opcode);
  }
  Request request;
  request.opcode = static_cast<Opcode>(raw_opcode);
  switch (request.opcode) {
    case Opcode::kHello: {
      MEETXML_ASSIGN_OR_RETURN(request.protocol_version, reader.Varint());
      break;
    }
    case Opcode::kQuery: {
      MEETXML_ASSIGN_OR_RETURN(request.scope, reader.StrVarint());
      MEETXML_ASSIGN_OR_RETURN(request.query, reader.StrVarint());
      break;
    }
    case Opcode::kPing:
    case Opcode::kStats:
    case Opcode::kBye:
    case Opcode::kDump:
      break;
  }
  MEETXML_RETURN_NOT_OK(CheckDrained(reader, "request"));
  return request;
}

std::string EncodeResponse(const Response& response) {
  ByteWriter out;
  out.U8(response.ok ? 0 : response.busy ? 2 : 1);
  out.U8(static_cast<uint8_t>(response.opcode));
  if (!response.ok) {
    if (response.busy) {
      out.Varint(response.retry_after_ms);
      out.StrVarint(response.message);
      return out.Take();
    }
    out.Varint(static_cast<uint64_t>(response.code));
    out.StrVarint(response.message);
    return out.Take();
  }
  switch (response.opcode) {
    case Opcode::kHello:
      out.Varint(response.session_id);
      out.StrVarint(response.banner);
      break;
    case Opcode::kQuery:
      out.Varint(response.row_count);
      out.U8(response.truncated ? 1 : 0);
      out.StrVarint(response.table);
      break;
    case Opcode::kStats:
      out.Varint(response.stats.sessions_active);
      out.Varint(response.stats.queries_served);
      out.Varint(response.stats.request_errors);
      out.Varint(response.stats.sessions_evicted);
      // The v2 extension's presence is the version marker: a v1 body
      // ends after the fourth varint, byte-identical to protocol v1.
      if (response.stats.version >= 2) {
        out.Varint(response.stats.histograms.size());
        for (const StatsHistogramEntry& entry : response.stats.histograms) {
          out.StrVarint(entry.name);
          out.Varint(entry.count);
          out.Varint(entry.sum);
          out.Varint(entry.p50);
          out.Varint(entry.p90);
          out.Varint(entry.p99);
        }
      }
      break;
    case Opcode::kDump:
      out.StrVarint(response.dump);
      break;
    case Opcode::kPing:
    case Opcode::kBye:
      break;
  }
  return out.Take();
}

std::string EncodeErrorResponse(Opcode opcode, const Status& status) {
  Response response;
  response.ok = false;
  response.opcode = opcode;
  response.code = status.code();
  response.message = status.message();
  return EncodeResponse(response);
}

std::string EncodeBusyResponse(Opcode opcode, uint64_t retry_after_ms,
                               std::string_view message,
                               uint64_t negotiated_version) {
  if (negotiated_version < 2) {
    // A v1 decoder rejects status byte 2; shed with the plain error
    // shape it understands and fold the hint into the message.
    std::string hinted(message);
    hinted += " (retry in ~";
    hinted += std::to_string(retry_after_ms);
    hinted += "ms)";
    return EncodeErrorResponse(
        opcode, Status(StatusCode::kUnavailable, std::move(hinted)));
  }
  Response response;
  response.ok = false;
  response.busy = true;
  response.opcode = opcode;
  response.code = StatusCode::kUnavailable;
  response.retry_after_ms = retry_after_ms;
  response.message.assign(message.data(), message.size());
  return EncodeResponse(response);
}

Result<Response> DecodeResponse(std::string_view payload) {
  ByteReader reader(payload);
  MEETXML_ASSIGN_OR_RETURN(uint8_t raw_status, reader.U8());
  if (raw_status > 2) {
    return Status::InvalidArgument("unknown response status ", raw_status);
  }
  MEETXML_ASSIGN_OR_RETURN(uint8_t raw_opcode, reader.U8());
  if (!KnownOpcode(raw_opcode)) {
    return Status::InvalidArgument("unknown response opcode ", raw_opcode);
  }
  Response response;
  response.ok = raw_status == 0;
  response.opcode = static_cast<Opcode>(raw_opcode);
  if (raw_status == 2) {
    // busy (v2): the shed reply — retry-after hint plus message.
    response.busy = true;
    response.code = StatusCode::kUnavailable;
    MEETXML_ASSIGN_OR_RETURN(response.retry_after_ms, reader.Varint());
    MEETXML_ASSIGN_OR_RETURN(response.message, reader.StrVarint());
    MEETXML_RETURN_NOT_OK(CheckDrained(reader, "busy response"));
    return response;
  }
  if (!response.ok) {
    MEETXML_ASSIGN_OR_RETURN(uint64_t raw_code, reader.Varint());
    if (!KnownStatusCode(raw_code)) {
      return Status::InvalidArgument("unknown status code ", raw_code);
    }
    response.code = static_cast<StatusCode>(raw_code);
    MEETXML_ASSIGN_OR_RETURN(response.message, reader.StrVarint());
    MEETXML_RETURN_NOT_OK(CheckDrained(reader, "error response"));
    return response;
  }
  switch (response.opcode) {
    case Opcode::kHello: {
      MEETXML_ASSIGN_OR_RETURN(response.session_id, reader.Varint());
      MEETXML_ASSIGN_OR_RETURN(response.banner, reader.StrVarint());
      break;
    }
    case Opcode::kQuery: {
      MEETXML_ASSIGN_OR_RETURN(response.row_count, reader.Varint());
      MEETXML_ASSIGN_OR_RETURN(uint8_t truncated, reader.U8());
      if (truncated > 1) {
        return Status::InvalidArgument("bad truncated flag ", truncated);
      }
      response.truncated = truncated == 1;
      MEETXML_ASSIGN_OR_RETURN(response.table, reader.StrVarint());
      break;
    }
    case Opcode::kStats: {
      MEETXML_ASSIGN_OR_RETURN(response.stats.sessions_active,
                               reader.Varint());
      MEETXML_ASSIGN_OR_RETURN(response.stats.queries_served,
                               reader.Varint());
      MEETXML_ASSIGN_OR_RETURN(response.stats.request_errors,
                               reader.Varint());
      MEETXML_ASSIGN_OR_RETURN(response.stats.sessions_evicted,
                               reader.Varint());
      if (reader.AtEnd()) {
        response.stats.version = 1;
        break;
      }
      response.stats.version = 2;
      MEETXML_ASSIGN_OR_RETURN(uint64_t entry_count, reader.Varint());
      // Every entry takes at least 6 bytes; a count beyond the payload
      // is a hostile length, not a short read.
      if (entry_count > payload.size()) {
        return Status::InvalidArgument("stats histogram count ",
                                       entry_count,
                                       " exceeds the payload size");
      }
      response.stats.histograms.reserve(entry_count);
      for (uint64_t i = 0; i < entry_count; ++i) {
        StatsHistogramEntry entry;
        MEETXML_ASSIGN_OR_RETURN(entry.name, reader.StrVarint());
        MEETXML_ASSIGN_OR_RETURN(entry.count, reader.Varint());
        MEETXML_ASSIGN_OR_RETURN(entry.sum, reader.Varint());
        MEETXML_ASSIGN_OR_RETURN(entry.p50, reader.Varint());
        MEETXML_ASSIGN_OR_RETURN(entry.p90, reader.Varint());
        MEETXML_ASSIGN_OR_RETURN(entry.p99, reader.Varint());
        response.stats.histograms.push_back(std::move(entry));
      }
      break;
    }
    case Opcode::kDump: {
      MEETXML_ASSIGN_OR_RETURN(response.dump, reader.StrVarint());
      break;
    }
    case Opcode::kPing:
    case Opcode::kBye:
      break;
  }
  MEETXML_RETURN_NOT_OK(CheckDrained(reader, "response"));
  return response;
}

Result<std::optional<std::string>> FrameBuffer::Next() {
  // Compact lazily: keeping a cursor instead of erasing per frame
  // makes pipelined bursts O(bytes), not O(frames * bytes).
  if (pos_ > 0 && pos_ == buffer_.size()) {
    buffer_.clear();
    pos_ = 0;
  }
  if (buffered() < 4) return std::optional<std::string>();
  uint32_t length = DecodeFrameLength(buffer_.data() + pos_);
  if (length == 0) {
    return Status::InvalidArgument("zero-length frame");
  }
  if (length > kMaxFrameBytes) {
    return Status::ResourceExhausted("frame of ", length,
                                     " bytes exceeds the ",
                                     kMaxFrameBytes, "-byte limit");
  }
  if (buffered() < 4 + static_cast<size_t>(length)) {
    return std::optional<std::string>();
  }
  std::string payload = buffer_.substr(pos_ + 4, length);
  pos_ += 4 + static_cast<size_t>(length);
  if (pos_ == buffer_.size() || pos_ >= kMaxFrameBytes) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  return std::optional<std::string>(std::move(payload));
}

}  // namespace server
}  // namespace meetxml
