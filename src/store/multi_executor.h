// Cross-document query routing over a store::Catalog.
//
// The paper's DBLP case study queries a *collection* of bibliographies;
// pazpar2-style federated metasearch puts many named sources behind one
// query surface and merges their ranked results. MultiExecutor is that
// surface for the catalog: a parsed query is routed to one document, a
// name-glob subset, or all documents; per-document execution fans out
// on a thread pool (reusing query::Executor and the lazy per-document
// text indexes); and the per-document answers merge into
// document-qualified rows — for MEET projections re-ranked globally by
// the paper's witness-distance heuristic, so the best nearest concept
// wins regardless of which document it lives in.

#ifndef MEETXML_STORE_MULTI_EXECUTOR_H_
#define MEETXML_STORE_MULTI_EXECUTOR_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/meet_general.h"
#include "query/executor.h"
#include "store/catalog.h"
#include "text/cross_document.h"

namespace meetxml {
namespace store {

/// \brief One document's share of a fanned-out query.
struct DocumentResult {
  DocId id = kInvalidDocId;
  std::string name;
  query::QueryResult result;
};

/// \brief The merged answer of a multi-document query.
struct MultiResult {
  /// "doc" followed by the per-document result columns.
  std::vector<std::string> columns;
  /// Document-qualified rows: row[0] is the document name. MEET rows
  /// are globally re-ranked by ascending witness distance; other
  /// projections keep (document, row) order.
  std::vector<std::vector<std::string>> rows;
  /// Structured per-document access (meets, stats, exact counts). On
  /// the streaming top-k path the per-document `rows` and `meets` are
  /// consumed into the merged answer (counts, stats and flags remain);
  /// pass ExecuteOptions::materialized_merge to keep them intact.
  std::vector<DocumentResult> per_document;

  /// Exact total of answer rows the query implies across all scoped
  /// documents, before any cap (meaningful when every per-document
  /// rows_found_exact was true).
  uint64_t rows_found = 0;
  /// Rows actually materialized across the fan-out (for MEET: meets
  /// whose witnesses were built). rows_found - rows_examined is the
  /// early-termination win.
  uint64_t rows_examined = 0;
  /// Qualifying answers pruned before materialization by limit
  /// pushdown, the per-document heaps, or the shared distance ceiling.
  uint64_t rows_pruned = 0;

  /// True only when the merged answer is *incomplete*: rows were
  /// dropped by the max_rows safety valve or the server's byte-cap
  /// limit hint, or an enumeration guard cut counting short before the
  /// user's bound was reached. An explicit LIMIT k satisfied with k
  /// rows (including LIMIT 0) is a complete answer, not a truncated
  /// one.
  bool truncated = false;

  /// \brief Renders an aligned ASCII table, like QueryResult::ToText.
  std::string ToText() const;
};

/// \brief One cross-document hit of FindEverywhere: the nearest concept
/// a foreign document has for the probed item.
struct CrossMatch {
  DocId id = kInvalidDocId;
  std::string name;
  core::GeneralMeet meet;
};

/// \brief Executes queries against a set of catalog documents.
///
/// The catalog must outlive the MultiExecutor. Execution is logically
/// const end to end: missing per-document executors build through the
/// catalog's race-free lazy path, the fan-out is read-only, and the
/// merged answer is deterministic — byte-identical however many
/// threads (or concurrent MultiExecutors, e.g. the meetxmld worker
/// pool) are involved. Safe to share one instance across threads.
class MultiExecutor {
 public:
  explicit MultiExecutor(const Catalog* catalog) : catalog_(catalog) {}

  /// \brief Routes a parsed query to every document whose name matches
  /// `scope` ("*" = all, "dblp*" = subset, exact name = one document)
  /// and merges the answers. An empty match set is an error — it
  /// almost always means a typo'd scope. When `trace` is non-null the
  /// stages land on it: route (scope matching), per-document decode /
  /// index build (the catalog's first-touch costs), per-document
  /// execute, and the global merge (obs/trace.h).
  ///
  /// A ranked (MEET) query with a bound — an explicit LIMIT k or a
  /// limit_hint — takes the streaming top-k path: each document's
  /// RankedCursor drains into one global k-bounded heap, and once the
  /// heap is full its worst distance becomes a shared ceiling that
  /// early-terminates the remaining documents' enumeration. Memory is
  /// O(k); the merged rows are byte-identical to the materialized
  /// path at any thread count.
  util::Result<MultiResult> Execute(
      std::string_view scope, const query::Query& query,
      const query::ExecuteOptions& options = {},
      obs::QueryTrace* trace = nullptr) const;

  /// \brief Parses and routes query text; the parse lands on
  /// Stage::kParse of the trace.
  util::Result<MultiResult> ExecuteText(
      std::string_view scope, std::string_view query_text,
      const query::ExecuteOptions& options = {},
      obs::QueryTrace* trace = nullptr) const;

  /// \brief Cross-document meet (paper §4 / text/cross_document.h) over
  /// the whole store: extracts probe strings from the subtree rooted at
  /// `subtree` in `source`, full-text searches them in every *other*
  /// scoped document, and returns each document's nearest concepts,
  /// globally ordered by ascending witness distance. A scope matching
  /// no document at all is an error (like Execute); a scope matching
  /// only the source returns an empty list.
  util::Result<std::vector<CrossMatch>> FindEverywhere(
      std::string_view source, bat::Oid subtree,
      std::string_view scope = "*",
      const text::CrossFindOptions& options = {}) const;

 private:
  const Catalog* catalog_;
};

}  // namespace store
}  // namespace meetxml

#endif  // MEETXML_STORE_MULTI_EXECUTOR_H_
