// Multimedia exploration: schema-oblivious search over feature data.
//
// Generates the multimedia feature corpus (the paper's first workload —
// "descriptions of multimedia data items, extracted by feature
// detectors") and explores it without knowing the mark-up: keyword pairs
// go through full-text search, the meet operator names the enclosing
// concept, and the distance ranking orders the answers.
//
// Run:  ./multimedia_explore [term1 term2 ...]
//       ./multimedia_explore landscape night

#include <cstdio>
#include <string>
#include <vector>

#include "core/meet_general.h"
#include "core/restrictions.h"
#include "data/multimedia_gen.h"
#include "model/reassembly.h"
#include "model/shredder.h"
#include "text/search.h"
#include "util/timer.h"

using namespace meetxml;  // example code; the library itself never does this

int main(int argc, char** argv) {
  std::vector<std::string> terms;
  for (int i = 1; i < argc; ++i) terms.push_back(argv[i]);
  if (terms.empty()) terms = {"landscape", "night"};

  data::MultimediaOptions gen_options;
  gen_options.items = 800;
  auto corpus = data::GenerateMultimedia(gen_options);
  MEETXML_CHECK_OK(corpus.status());

  auto doc_result = model::Shred(corpus->doc);
  MEETXML_CHECK_OK(doc_result.status());
  const model::StoredDocument& doc = *doc_result;
  std::printf("Multimedia corpus: %zu nodes, %zu schema paths.\n",
              doc.node_count(), doc.paths().size());

  auto search_result = text::FullTextSearch::Build(doc);
  MEETXML_CHECK_OK(search_result.status());

  util::Timer timer;
  auto matches =
      search_result->SearchAll(terms, text::MatchMode::kContainsIgnoreCase);
  MEETXML_CHECK_OK(matches.status());
  double search_ms = timer.ElapsedMillis();

  std::printf("Full-text (%.1f ms):", search_ms);
  for (const auto& term : *matches) {
    std::printf("  '%s'->%zu", term.term.c_str(), term.total());
  }
  std::printf("\n");

  timer.Reset();
  auto inputs = text::FullTextSearch::ToMeetInput(*matches);
  core::MeetOptions options = core::ExcludeRootOptions(doc);
  options.max_results = 200;
  auto meets = core::MeetGeneral(doc, inputs, options);
  MEETXML_CHECK_OK(meets.status());
  std::printf("Meet: %zu nearest concepts (%.2f ms), ranked by witness "
              "distance.\n\n",
              meets->size(), timer.ElapsedMillis());

  size_t shown = 0;
  for (const core::GeneralMeet& meet : *meets) {
    if (shown >= 3) break;
    std::printf("-- %s (distance %d, %zu witnesses)\n",
                model::DescribeNode(doc, meet.meet).c_str(),
                meet.witness_distance, meet.witnesses.size());
    if (doc.tag(meet.meet) == "mediaItem" ||
        doc.tag(meet.meet) == "annotation") {
      auto xml_text = model::ReassembleToXml(doc, meet.meet);
      if (xml_text.ok()) std::printf("%s\n", xml_text->c_str());
    }
    std::printf("\n");
    ++shown;
  }
  if (meets->empty()) {
    std::printf("No concept combines those terms; try keywords like "
                "'landscape', 'night', 'urban', 'water'.\n");
  }
  return 0;
}
