// Document statistics: the relation catalog with cardinalities, depth
// and fan-out profiles. The paper's premise is that the schema of
// semistructured data "may be large, unknown or implicit and therefore
// opaque to the user" — this report is the operator's view of exactly
// that schema, as materialized by the Monet transform.

#ifndef MEETXML_MODEL_STATS_H_
#define MEETXML_MODEL_STATS_H_

#include <string>
#include <vector>

#include "model/document.h"

namespace meetxml {
namespace model {

/// \brief Per-path statistics (one relation of the transform).
struct PathStats {
  PathId path;
  std::string name;       // relation name (path string)
  StepKind kind;
  uint32_t depth;
  size_t node_count;      // edge-relation cardinality (0 for attributes)
  size_t string_count;    // string-relation cardinality
  size_t total_bytes;     // bytes of string payload
};

/// \brief Whole-document statistics.
struct DocumentStats {
  size_t node_count = 0;
  size_t element_count = 0;
  size_t cdata_count = 0;
  size_t string_count = 0;
  size_t path_count = 0;
  uint32_t max_depth = 0;
  double avg_depth = 0;
  size_t max_fanout = 0;
  double avg_fanout = 0;  // over elements with children
  std::vector<PathStats> paths;  // ascending path id
};

/// \brief Computes statistics for a finalized document.
util::Result<DocumentStats> ComputeStats(const StoredDocument& doc);

/// \brief Renders the catalog as an aligned text table, largest
/// relations first; `max_rows` limits the listing (0 = all).
std::string RenderStats(const DocumentStats& stats, size_t max_rows = 0);

}  // namespace model
}  // namespace meetxml

#endif  // MEETXML_MODEL_STATS_H_
