// AB10 — ablation: the multi-document store catalog.
//
// Part 1 measures persistence of an N-document collection: one catalog
// image (CTLG + N DOC0 sections) vs. N separate single-document
// images. Expected shape: near-identical byte volume and load time —
// the catalog buys one file handle, one directory and shared framing
// without a decode penalty, so "one store file" costs nothing over a
// directory of images.
//
// Part 2 measures query fan-out: the same nearest-concept query
// through store::MultiExecutor at N = 1/2/4/8 documents, against the
// serial loop over N single-document executors. Expected shape: meet
// time scales linearly in the number of documents (the paper's
// per-document linearity, Fig. 7, survives federation) and the
// threaded fan-out flattens wall time until N exceeds the core count.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "data/dblp_gen.h"
#include "model/shredder.h"
#include "store/catalog.h"
#include "store/multi_executor.h"
#include "text/index_io.h"
#include "xml/serializer.h"

using namespace meetxml;

namespace {

constexpr int kMaxDocs = 8;

// One bibliography per simulated "source": distinct year ranges so the
// documents differ, same shape so the per-document work is comparable.
const std::vector<std::string>& SourceXmls() {
  static std::vector<std::string>* xmls = [] {
    auto* out = new std::vector<std::string>;
    for (int i = 0; i < kMaxDocs; ++i) {
      data::DblpOptions options;
      options.start_year = 1980 + 3 * i;
      options.end_year = options.start_year + 2;
      options.icde_papers_per_year = 20;
      options.other_papers_per_year = 40;
      options.journal_articles_per_year = 20;
      auto generated = data::GenerateDblp(options);
      MEETXML_CHECK_OK(generated.status());
      xml::SerializeOptions serialize_options;
      serialize_options.indent = 1;
      out->push_back(xml::Serialize(*generated, serialize_options));
    }
    return out;
  }();
  return *xmls;
}

store::Catalog BuildCatalog(int docs) {
  store::Catalog catalog;
  for (int i = 0; i < docs; ++i) {
    auto doc = model::ShredXmlText(SourceXmls()[i]);
    MEETXML_CHECK_OK(doc.status());
    MEETXML_CHECK_OK(
        catalog.Add("dblp_" + std::to_string(i), std::move(*doc)).status());
  }
  return catalog;
}

const std::string& CatalogImage(int docs) {
  static std::string* images[kMaxDocs + 1] = {};
  if (images[docs] == nullptr) {
    store::Catalog catalog = BuildCatalog(docs);
    auto bytes = catalog.SaveToBytes();
    MEETXML_CHECK_OK(bytes.status());
    images[docs] = new std::string(std::move(*bytes));
  }
  return *images[docs];
}

const std::vector<std::string>& SeparateImages(int docs) {
  static std::vector<std::string>* images[kMaxDocs + 1] = {};
  if (images[docs] == nullptr) {
    auto* out = new std::vector<std::string>;
    for (int i = 0; i < docs; ++i) {
      auto doc = model::ShredXmlText(SourceXmls()[i]);
      MEETXML_CHECK_OK(doc.status());
      auto bytes = text::SaveStoreToBytes(*doc, nullptr);
      MEETXML_CHECK_OK(bytes.status());
      out->push_back(std::move(*bytes));
    }
    images[docs] = out;
  }
  return *images[docs];
}

const char kQuery[] =
    "SELECT MEET(a, b) FROM dblp//cdata a, dblp//cdata b "
    "WHERE a CONTAINS 'ICDE' AND b CONTAINS '1981' EXCLUDE dblp";

// ---- Part 1: one catalog image vs. N separate images --------------------

void BM_LoadCatalogImage(benchmark::State& state) {
  int docs = static_cast<int>(state.range(0));
  const std::string& bytes = CatalogImage(docs);
  for (auto _ : state) {
    auto catalog = store::Catalog::LoadFromBytes(bytes);
    MEETXML_CHECK_OK(catalog.status());
    benchmark::DoNotOptimize(catalog);
  }
  state.counters["docs"] = docs;
  state.counters["image_MB"] = static_cast<double>(bytes.size()) / 1e6;
}
BENCHMARK(BM_LoadCatalogImage)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_LoadSeparateImages(benchmark::State& state) {
  int docs = static_cast<int>(state.range(0));
  const std::vector<std::string>& images = SeparateImages(docs);
  size_t total = 0;
  for (const std::string& image : images) total += image.size();
  for (auto _ : state) {
    std::vector<model::StoredDocument> loaded;
    for (const std::string& image : images) {
      auto doc = model::LoadFromBytes(image);
      MEETXML_CHECK_OK(doc.status());
      loaded.push_back(std::move(*doc));
    }
    benchmark::DoNotOptimize(loaded);
  }
  state.counters["docs"] = docs;
  state.counters["image_MB"] = static_cast<double>(total) / 1e6;
}
BENCHMARK(BM_LoadSeparateImages)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// ---- Part 2: fan-out query scaling --------------------------------------

void BM_MultiExecutorFanOut(benchmark::State& state) {
  int docs = static_cast<int>(state.range(0));
  store::Catalog catalog = BuildCatalog(docs);
  store::MultiExecutor multi(&catalog);
  // Warm the per-document executors and indexes outside the loop; the
  // benchmark isolates routing + execution + merge.
  {
    auto warm = multi.ExecuteText("*", kQuery);
    MEETXML_CHECK_OK(warm.status());
  }
  size_t rows = 0;
  for (auto _ : state) {
    auto result = multi.ExecuteText("*", kQuery);
    MEETXML_CHECK_OK(result.status());
    rows = result->rows.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["docs"] = docs;
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_MultiExecutorFanOut)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_SerialExecutorLoop(benchmark::State& state) {
  int docs = static_cast<int>(state.range(0));
  store::Catalog catalog = BuildCatalog(docs);
  std::vector<const query::Executor*> executors;
  for (int i = 0; i < docs; ++i) {
    auto executor = catalog.ExecutorFor("dblp_" + std::to_string(i));
    MEETXML_CHECK_OK(executor.status());
    auto warm = (*executor)->ExecuteText(kQuery);
    MEETXML_CHECK_OK(warm.status());
    executors.push_back(*executor);
  }
  for (auto _ : state) {
    size_t rows = 0;
    for (const query::Executor* executor : executors) {
      auto result = executor->ExecuteText(kQuery);
      MEETXML_CHECK_OK(result.status());
      rows += result->rows.size();
    }
    benchmark::DoNotOptimize(rows);
  }
  state.counters["docs"] = docs;
}
BENCHMARK(BM_SerialExecutorLoop)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
