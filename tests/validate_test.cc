// Tests for the StoredDocument invariant validator.

#include <gtest/gtest.h>

#include "data/dblp_gen.h"
#include "data/multimedia_gen.h"
#include "data/paper_example.h"
#include "data/random_tree.h"
#include "model/shredder.h"
#include "model/storage_io.h"
#include "model/validate.h"
#include "tests/test_util.h"

namespace meetxml {
namespace model {
namespace {

using meetxml::testing::MustShred;

TEST(Validate, PaperExamplePasses) {
  auto doc = MustShred(data::PaperExampleXml());
  MEETXML_CHECK_OK(ValidateDocument(doc));
}

TEST(Validate, GeneratedCorporaPass) {
  {
    data::DblpOptions options;
    options.end_year = 1988;
    auto generated = data::GenerateDblp(options);
    ASSERT_TRUE(generated.ok());
    auto doc = Shred(*generated);
    ASSERT_TRUE(doc.ok());
    MEETXML_CHECK_OK(ValidateDocument(*doc));
  }
  {
    data::MultimediaOptions options;
    options.items = 200;
    auto corpus = data::GenerateMultimedia(options);
    ASSERT_TRUE(corpus.ok());
    auto doc = Shred(corpus->doc);
    ASSERT_TRUE(doc.ok());
    MEETXML_CHECK_OK(ValidateDocument(*doc));
  }
}

TEST(Validate, StreamedAndReloadedDocumentsPass) {
  std::string xml_text = data::PaperExampleXml();
  auto streamed = ShredXmlTextStreaming(xml_text);
  ASSERT_TRUE(streamed.ok());
  MEETXML_CHECK_OK(ValidateDocument(*streamed));

  auto bytes = SaveToBytes(*streamed);
  ASSERT_TRUE(bytes.ok());
  auto reloaded = LoadFromBytes(*bytes);
  ASSERT_TRUE(reloaded.ok());
  MEETXML_CHECK_OK(ValidateDocument(*reloaded));
}

TEST(Validate, RejectsUnfinalized) {
  StoredDocument doc;
  EXPECT_FALSE(ValidateDocument(doc).ok());
}

TEST(Validate, DetectsHandCraftedCorruption) {
  // Build a document whose node path disagrees with its parent's path:
  // the builder API permits it, Finalize does not check it, the
  // validator must catch it.
  StoredDocument doc;
  PathSummary* paths = doc.mutable_paths();
  PathId a = paths->Intern(bat::kInvalidPathId, StepKind::kElement, "a");
  PathId b = paths->Intern(a, StepKind::kElement, "b");
  PathId stray =
      paths->Intern(bat::kInvalidPathId, StepKind::kElement, "stray");
  doc.AppendNode(a, bat::kInvalidOid, 0);
  doc.AppendNode(stray, 0, 0);  // parent path 'a', own path root-level
  MEETXML_CHECK_OK(doc.Finalize());
  auto status = ValidateDocument(doc);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInternal());
  (void)b;
}

class ValidateProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ValidateProperty, RandomTreesAlwaysValidate) {
  data::RandomTreeOptions options;
  options.seed = GetParam();
  options.target_elements = 250;
  auto generated = data::GenerateRandomTree(options);
  ASSERT_TRUE(generated.ok());
  auto doc = Shred(*generated);
  ASSERT_TRUE(doc.ok());
  MEETXML_CHECK_OK(ValidateDocument(*doc));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValidateProperty,
                         ::testing::Values(41, 42, 43, 44));

}  // namespace
}  // namespace model
}  // namespace meetxml
