// Binary Association Tables (BATs): the storage and execution primitive
// of the Monet XML transform (paper §2, Definition 4).
//
// A BAT is a sequence of (head, tail) pairs. The Monet transform stores
// all associations of one schema path in one BAT; the meet algorithms are
// then expressed as joins/semijoins over these tables ("A salient feature
// ... is that they make heavy use of the relational operations of the
// underlying database engine", paper §3.2).

#ifndef MEETXML_BAT_BAT_H_
#define MEETXML_BAT_BAT_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "bat/oid.h"

namespace meetxml {
namespace bat {

/// \brief A binary association table with typed head and tail columns.
///
/// Stored column-wise like MonetDB; rows are addressed positionally.
template <typename H, typename T>
class Bat {
 public:
  Bat() = default;

  /// \brief Appends one association.
  void Append(H head, T tail) {
    head_.push_back(std::move(head));
    tail_.push_back(std::move(tail));
  }

  void Reserve(size_t n) {
    head_.reserve(n);
    tail_.reserve(n);
  }

  size_t size() const { return head_.size(); }
  bool empty() const { return head_.empty(); }

  const H& head(size_t row) const { return head_[row]; }
  const T& tail(size_t row) const { return tail_[row]; }

  const std::vector<H>& heads() const { return head_; }
  const std::vector<T>& tails() const { return tail_; }

  /// \brief Swaps the two columns (MonetDB `reverse`), O(1) by move.
  Bat<T, H> Reverse() && {
    Bat<T, H> out;
    out.head_ = std::move(tail_);
    out.tail_ = std::move(head_);
    return out;
  }

  /// \brief Copying reverse.
  Bat<T, H> Reversed() const {
    Bat<T, H> out;
    out.head_ = tail_;
    out.tail_ = head_;
    return out;
  }

  /// \brief Sorts rows by (head, tail). Requires both orderable.
  void Sort() {
    std::vector<size_t> order(size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
      if (head_[a] != head_[b]) return head_[a] < head_[b];
      return tail_[a] < tail_[b];
    });
    ApplyOrder(order);
  }

  /// \brief Removes exact duplicate rows; sorts as a side effect.
  void SortUnique() {
    Sort();
    size_t out = 0;
    for (size_t i = 0; i < size(); ++i) {
      if (i > 0 && head_[i] == head_[out - 1] && tail_[i] == tail_[out - 1]) {
        continue;
      }
      head_[out] = std::move(head_[i]);
      tail_[out] = std::move(tail_[i]);
      ++out;
    }
    head_.resize(out);
    tail_.resize(out);
  }

  bool operator==(const Bat& other) const {
    return head_ == other.head_ && tail_ == other.tail_;
  }

 private:
  template <typename H2, typename T2>
  friend class Bat;

  void ApplyOrder(const std::vector<size_t>& order) {
    std::vector<H> new_head;
    std::vector<T> new_tail;
    new_head.reserve(size());
    new_tail.reserve(size());
    for (size_t row : order) {
      new_head.push_back(std::move(head_[row]));
      new_tail.push_back(std::move(tail_[row]));
    }
    head_ = std::move(new_head);
    tail_ = std::move(new_tail);
  }

  std::vector<H> head_;
  std::vector<T> tail_;
};

/// BAT of tree edges or lifted association sets: (oid, oid).
using OidOidBat = Bat<Oid, Oid>;
/// BAT of ranks: (oid, int) — sibling order (Definition 1's rank).
using OidIntBat = Bat<Oid, int>;

/// \brief A (oid, string) BAT backed by a string arena: attribute
/// values and cdata leaves.
///
/// Instead of one heap-allocated std::string per row, all values of
/// the relation live concatenated in a single blob; a row is the
/// half-open byte range [ends[row-1], ends[row]). This is the BAT-as-
/// raw-column layout MonetDB bulk loads thrive on: the persistence
/// layer can adopt (or emit) the three columns with a memcpy each, and
/// a full-relation scan touches one contiguous allocation instead of
/// chasing a pointer per row. End offsets are u32, capping one
/// relation's value bytes at 4 GiB — far above any per-path relation
/// of the corpora this engine targets, and exactly the width the DOC1
/// image format frames. Appends beyond the cap set offsets_overflowed()
/// instead of silently wrapping; StoredDocument::Finalize turns the
/// flag into a load/build error.
class StrBat {
 public:
  StrBat() = default;

  /// \brief Appends one association; the value bytes are copied into
  /// the arena. Rows past the 4 GiB arena cap mark the relation
  /// overflowed (their offsets would not be representable).
  void Append(Oid head, std::string_view tail) {
    head_.push_back(head);
    blob_.append(tail.data(), tail.size());
    if (blob_.size() > kMaxArenaBytes) overflowed_ = true;
    ends_.push_back(static_cast<uint32_t>(blob_.size()));
  }

  void Reserve(size_t rows) {
    head_.reserve(rows);
    ends_.reserve(rows);
  }

  /// \brief Pre-sizes the arena; `bytes` is the expected total value
  /// length across all rows.
  void ReserveBytes(size_t bytes) { blob_.reserve(bytes); }

  size_t size() const { return head_.size(); }
  bool empty() const { return head_.empty(); }

  Oid head(size_t row) const { return head_[row]; }
  std::string_view tail(size_t row) const {
    size_t begin = row == 0 ? 0 : ends_[row - 1];
    return std::string_view(blob_).substr(begin, ends_[row] - begin);
  }

  const std::vector<Oid>& heads() const { return head_; }
  /// \brief Cumulative end offsets into the arena, one per row
  /// (ends[size()-1] == tail_blob().size()).
  const std::vector<uint32_t>& tail_ends() const { return ends_; }
  /// \brief The arena: every value, concatenated in row order.
  const std::string& tail_blob() const { return blob_; }

  /// \brief Takes ownership of pre-built columns — the zero-copy bulk
  /// ingestion path of the columnar (DOC1) image loader. Requires
  /// `heads.size() == ends.size()`, `ends` non-decreasing and
  /// `ends.back() == blob.size()` (callers validate; this class only
  /// stores).
  void AdoptColumns(std::vector<Oid> heads, std::vector<uint32_t> ends,
                    std::string blob) {
    head_ = std::move(heads);
    ends_ = std::move(ends);
    blob_ = std::move(blob);
  }

  /// \brief True when an Append pushed the arena past the u32 offset
  /// space; the relation's tails are unreliable and the owning
  /// document must refuse to finalize.
  bool offsets_overflowed() const { return overflowed_; }

  /// \brief Logical row equality. Equal row sequences imply equal
  /// columns (ends are cumulative lengths), so this is a plain
  /// column compare.
  bool operator==(const StrBat& other) const {
    return head_ == other.head_ && ends_ == other.ends_ &&
           blob_ == other.blob_;
  }

 private:
  static constexpr size_t kMaxArenaBytes = 0xffffffffu;

  std::vector<Oid> head_;
  std::vector<uint32_t> ends_;
  std::string blob_;
  bool overflowed_ = false;
};

/// BAT of leaf values: (oid, string) — attribute values and cdata.
using OidStrBat = StrBat;

/// \brief Hash index over a BAT's head column: head value -> row numbers.
///
/// MonetDB builds such indexes lazily for hash joins; we make the index an
/// explicit object so callers can reuse it across probes.
template <typename H, typename T>
class HeadIndex {
 public:
  explicit HeadIndex(const Bat<H, T>& table) {
    index_.reserve(table.size());
    for (size_t row = 0; row < table.size(); ++row) {
      index_[table.head(row)].push_back(row);
    }
  }

  /// \brief Rows whose head equals `key`; empty if none.
  const std::vector<size_t>& Lookup(const H& key) const {
    static const std::vector<size_t> kEmpty;
    auto it = index_.find(key);
    return it == index_.end() ? kEmpty : it->second;
  }

  bool Contains(const H& key) const { return index_.count(key) > 0; }

 private:
  std::unordered_map<H, std::vector<size_t>> index_;
};

}  // namespace bat
}  // namespace meetxml

#endif  // MEETXML_BAT_BAT_H_
