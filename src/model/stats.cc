#include "model/stats.h"

#include <algorithm>

namespace meetxml {
namespace model {

using util::Result;
using util::Status;

Result<DocumentStats> ComputeStats(const StoredDocument& doc) {
  if (!doc.finalized()) {
    return Status::InvalidArgument("document is not finalized");
  }
  DocumentStats stats;
  stats.node_count = doc.node_count();
  stats.path_count = doc.paths().size();
  stats.string_count = doc.string_count();

  uint64_t depth_sum = 0;
  uint64_t fanout_sum = 0;
  size_t parents = 0;
  for (Oid oid = 0; oid < doc.node_count(); ++oid) {
    if (doc.is_cdata(oid)) {
      ++stats.cdata_count;
    } else {
      ++stats.element_count;
    }
    uint32_t depth = doc.depth(oid);
    depth_sum += depth;
    stats.max_depth = std::max(stats.max_depth, depth);
    size_t fanout = doc.children(oid).size();
    if (fanout > 0) {
      fanout_sum += fanout;
      ++parents;
      stats.max_fanout = std::max(stats.max_fanout, fanout);
    }
  }
  stats.avg_depth = doc.node_count() == 0
                        ? 0.0
                        : static_cast<double>(depth_sum) /
                              static_cast<double>(doc.node_count());
  stats.avg_fanout = parents == 0 ? 0.0
                                  : static_cast<double>(fanout_sum) /
                                        static_cast<double>(parents);

  for (PathId path = 0; path < doc.paths().size(); ++path) {
    PathStats entry;
    entry.path = path;
    entry.name = doc.paths().ToString(path);
    entry.kind = doc.paths().kind(path);
    entry.depth = doc.paths().depth(path);
    entry.node_count = doc.EdgesAt(path).size();
    const OidStrBat& strings = doc.StringsAt(path);
    entry.string_count = strings.size();
    entry.total_bytes = 0;
    for (size_t row = 0; row < strings.size(); ++row) {
      entry.total_bytes += strings.tail(row).size();
    }
    stats.paths.push_back(std::move(entry));
  }
  return stats;
}

std::string RenderStats(const DocumentStats& stats, size_t max_rows) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "nodes=%zu (elements=%zu cdata=%zu)  strings=%zu  "
                "paths=%zu\n",
                stats.node_count, stats.element_count, stats.cdata_count,
                stats.string_count, stats.path_count);
  out += line;
  std::snprintf(line, sizeof(line),
                "depth: max=%u avg=%.2f   fanout: max=%zu avg=%.2f\n",
                stats.max_depth, stats.avg_depth, stats.max_fanout,
                stats.avg_fanout);
  out += line;

  std::vector<const PathStats*> ordered;
  ordered.reserve(stats.paths.size());
  for (const PathStats& entry : stats.paths) ordered.push_back(&entry);
  std::sort(ordered.begin(), ordered.end(),
            [](const PathStats* a, const PathStats* b) {
              size_t ca = a->node_count + a->string_count;
              size_t cb = b->node_count + b->string_count;
              if (ca != cb) return ca > cb;
              return a->path < b->path;
            });
  size_t shown = 0;
  for (const PathStats* entry : ordered) {
    if (max_rows > 0 && shown >= max_rows) {
      std::snprintf(line, sizeof(line), "  ... %zu more relations\n",
                    ordered.size() - shown);
      out += line;
      break;
    }
    std::snprintf(line, sizeof(line), "  %8zu nodes %8zu strings  %s\n",
                  entry->node_count, entry->string_count,
                  entry->name.c_str());
    out += line;
    ++shown;
  }
  return out;
}

}  // namespace model
}  // namespace meetxml
