#include "model/bulk_load.h"

#include <atomic>
#include <cctype>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/file_io.h"
#include "util/threads.h"
#include "util/timer.h"
#include "xml/parser.h"

namespace meetxml {
namespace model {

using util::Result;
using util::Status;

namespace internal {

namespace {

bool IsNameDelimiter(char c) {
  return std::isspace(static_cast<unsigned char>(c)) || c == '>' ||
         c == '/' || c == '=' || c == '<' || c == '?';
}

}  // namespace

Result<CorpusSplit> SplitTopLevel(std::string_view xml_text) {
  const size_t size = xml_text.size();
  size_t pos = 0;

  auto starts_with = [&](std::string_view token) {
    return xml_text.compare(pos, token.size(), token) == 0;
  };
  // Advances past the next occurrence of `token`; false on EOF.
  auto skip_past = [&](std::string_view token) {
    size_t found = xml_text.find(token, pos);
    if (found == std::string_view::npos) return false;
    pos = found + token.size();
    return true;
  };
  // Scans a start tag beginning at `pos` ('<'); leaves `pos` after '>'.
  // Quoted attribute values may contain '>' so quotes are tracked; the
  // parser rejects '<' inside values, and so do we.
  auto scan_start_tag = [&](bool* self_closing,
                            std::string* name) -> Status {
    size_t p = pos + 1;
    size_t name_begin = p;
    while (p < size && !IsNameDelimiter(xml_text[p])) ++p;
    if (p == name_begin) {
      return Status::InvalidArgument("empty tag name");
    }
    if (name != nullptr) {
      *name = std::string(xml_text.substr(name_begin, p - name_begin));
    }
    char quote = 0;
    while (p < size) {
      char c = xml_text[p];
      if (quote != 0) {
        if (c == quote) quote = 0;
      } else if (c == '"' || c == '\'') {
        quote = c;
      } else if (c == '<') {
        return Status::InvalidArgument("'<' inside tag");
      } else if (c == '>') {
        *self_closing = xml_text[p - 1] == '/';
        pos = p + 1;
        return Status::OK();
      }
      ++p;
    }
    return Status::InvalidArgument("unterminated start tag");
  };

  // Prolog: XML declaration, comments, PIs, one DOCTYPE (whose internal
  // subset may contain bracketed markup).
  while (true) {
    while (pos < size &&
           std::isspace(static_cast<unsigned char>(xml_text[pos]))) {
      ++pos;
    }
    if (pos >= size) {
      return Status::InvalidArgument("no root element");
    }
    if (xml_text[pos] != '<') {
      return Status::InvalidArgument("character data before root element");
    }
    if (starts_with("<!--")) {
      pos += 4;
      if (!skip_past("-->")) {
        return Status::InvalidArgument("unterminated comment in prolog");
      }
    } else if (starts_with("<!DOCTYPE")) {
      pos += 9;
      int brackets = 0;
      while (pos < size) {
        char c = xml_text[pos];
        if (c == '[') ++brackets;
        if (c == ']') --brackets;
        if (c == '>' && brackets == 0) break;
        ++pos;
      }
      if (pos >= size) {
        return Status::InvalidArgument("unterminated DOCTYPE");
      }
      ++pos;  // '>'
    } else if (starts_with("<!")) {
      return Status::InvalidArgument("unexpected markup in prolog");
    } else if (starts_with("<?")) {
      pos += 2;
      if (!skip_past("?>")) {
        return Status::InvalidArgument("unterminated PI in prolog");
      }
    } else {
      break;  // the root start tag
    }
  }

  CorpusSplit split;
  bool root_self_closing = false;
  MEETXML_RETURN_NOT_OK(scan_start_tag(&root_self_closing, &split.root_tag));
  split.root_open_end = pos;
  split.content_begin = pos;
  split.content_end = pos;

  bool closed = root_self_closing;
  int depth = 1;
  std::vector<size_t> element_starts;
  while (!closed) {
    size_t lt = xml_text.find('<', pos);
    if (lt == std::string_view::npos) {
      return Status::InvalidArgument("root element not closed");
    }
    pos = lt;
    if (starts_with("<!--")) {
      pos += 4;
      if (!skip_past("-->")) {
        return Status::InvalidArgument("unterminated comment");
      }
      continue;
    }
    if (starts_with("<![CDATA[")) {
      pos += 9;
      if (!skip_past("]]>")) {
        return Status::InvalidArgument("unterminated CDATA section");
      }
      continue;
    }
    if (starts_with("<!")) {
      return Status::InvalidArgument("unexpected markup in content");
    }
    if (starts_with("<?")) {
      pos += 2;
      if (!skip_past("?>")) {
        return Status::InvalidArgument("unterminated PI");
      }
      continue;
    }
    if (starts_with("</")) {
      size_t p = pos + 2;
      size_t name_begin = p;
      while (p < size && !IsNameDelimiter(xml_text[p])) ++p;
      std::string_view name = xml_text.substr(name_begin, p - name_begin);
      while (p < size &&
             std::isspace(static_cast<unsigned char>(xml_text[p]))) {
        ++p;
      }
      if (p >= size || xml_text[p] != '>') {
        return Status::InvalidArgument("malformed close tag");
      }
      --depth;
      if (depth == 0) {
        if (name != split.root_tag) {
          return Status::InvalidArgument("mismatched root close tag");
        }
        split.content_end = lt;
        pos = p + 1;
        closed = true;
        break;
      }
      pos = p + 1;
      continue;
    }
    // A start tag. Top-level element starts are the only safe shard
    // boundaries: the parser merges adjacent text/CDATA runs (comments
    // between them do not flush), but never across an element tag.
    if (depth == 1) element_starts.push_back(lt);
    bool self = false;
    MEETXML_RETURN_NOT_OK(scan_start_tag(&self, nullptr));
    if (!self) ++depth;
  }

  // Epilog: whitespace, comments and PIs only.
  while (pos < size) {
    while (pos < size &&
           std::isspace(static_cast<unsigned char>(xml_text[pos]))) {
      ++pos;
    }
    if (pos >= size) break;
    if (starts_with("<!--")) {
      pos += 4;
      if (!skip_past("-->")) {
        return Status::InvalidArgument("unterminated comment in epilog");
      }
    } else if (starts_with("<?")) {
      pos += 2;
      if (!skip_past("?>")) {
        return Status::InvalidArgument("unterminated PI in epilog");
      }
    } else {
      return Status::InvalidArgument("content after root element");
    }
  }

  if (root_self_closing) return split;

  // The first unit always starts at content_begin so that leading
  // character data travels with the first element's shard.
  split.unit_starts.push_back(split.content_begin);
  for (size_t start : element_starts) {
    if (start != split.content_begin) split.unit_starts.push_back(start);
  }
  return split;
}

}  // namespace internal

namespace {

// Replays one shard into the global document. Shard node 0 is the
// synthetic wrapper root; its children are top-level children of the
// real root. Replaying nodes in shard OID order — re-interning each
// node's path, then its string associations in their original append
// order — reproduces the exact Intern/Append call sequence of the
// sequential streaming shredder, which is what makes the merged
// document bit-identical to the sequential output. String values are
// borrowed from the shard's per-path arenas (valid for the duration of
// the merge) and land in the global document with one arena append
// each — no per-string allocation. The shard's arenas stay alive until
// its merge finishes (the caller releases the shard right after), so
// peak memory is one corpus plus a single shard's columns.
void MergeShard(StoredDocument&& shard, StoredDocument* global,
                PathId global_root_path, int* root_next_rank) {
  if (shard.node_count() <= 1) return;  // nothing but the wrapper root

  std::vector<std::vector<std::pair<PathId, std::string_view>>>
      owner_strings(shard.node_count());
  for (const auto& [path, owner, value] : shard.StringsInAppendOrder()) {
    owner_strings[owner].emplace_back(path, value);
  }

  const PathSummary& shard_paths = shard.paths();
  PathSummary* global_paths = global->mutable_paths();
  std::vector<PathId> path_map(shard_paths.size(), bat::kInvalidPathId);
  path_map[shard.path(0)] = global_root_path;
  // By replay order every path's parent is already mapped (the owning
  // ancestor node precedes in OID order), so no recursion is needed.
  auto map_path = [&](PathId local) {
    PathId& mapped = path_map[local];
    if (mapped == bat::kInvalidPathId) {
      mapped = global_paths->Intern(path_map[shard_paths.parent(local)],
                                    shard_paths.kind(local),
                                    shard_paths.label(local));
    }
    return mapped;
  };

  const Oid base = static_cast<Oid>(global->node_count());
  for (Oid local = 1; local < shard.node_count(); ++local) {
    PathId global_path = map_path(shard.path(local));
    Oid local_parent = shard.parent(local);
    Oid global_parent = local_parent == 0 ? global->root()
                                          : base + local_parent - 1;
    int rank =
        local_parent == 0 ? (*root_next_rank)++ : shard.rank(local);
    Oid global_oid = global->AppendNode(global_path, global_parent, rank);
    // The wrapper root never owns strings (it has no attributes, and
    // top-level text becomes cdata nodes), so every association is
    // replayed here, right after its owning node — sequential order.
    for (const auto& [local_path, value] : owner_strings[local]) {
      global->AppendString(map_path(local_path), global_oid, value);
    }
  }
}

}  // namespace

Result<StoredDocument> BulkShredXmlText(std::string_view xml_text,
                                        const BulkLoadOptions& options) {
  unsigned threads = util::ResolveThreads(options.threads);
  if (threads <= 1 || xml_text.size() < options.min_parallel_bytes) {
    return ShredXmlTextStreaming(xml_text, options.shred);
  }

  // Phase timings of the parallel path (split / shard shred / merge),
  // resolved once — bulk load is a start-up cost worth decomposing.
  struct BulkMetrics {
    obs::Histogram* split_us;
    obs::Histogram* shred_us;
    obs::Histogram* merge_us;
  };
  static const BulkMetrics* metrics = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    return new BulkMetrics{
        &registry.histogram("meetxml_bulk_split_us"),
        &registry.histogram("meetxml_bulk_shred_us"),
        &registry.histogram("meetxml_bulk_merge_us"),
    };
  }();

  util::Timer split_timer;
  Result<internal::CorpusSplit> split_result =
      internal::SplitTopLevel(xml_text);
  if (!split_result.ok()) {
    // Unchunkable or malformed: the sequential path either handles it
    // or diagnoses it with line/column positions.
    return ShredXmlTextStreaming(xml_text, options.shred);
  }
  const internal::CorpusSplit& split = *split_result;
  if (split.unit_starts.size() < 2) {
    return ShredXmlTextStreaming(xml_text, options.shred);
  }

  // Group units into chunks of roughly target_chunk_bytes, but aim for
  // enough chunks to keep every worker busy on small corpora.
  size_t content_size = split.content_end - split.content_begin;
  size_t chunk_bytes =
      std::max<size_t>(1, std::min(options.target_chunk_bytes,
                                   content_size / (threads * 2) + 1));
  struct Chunk {
    size_t begin;
    size_t end;
  };
  std::vector<Chunk> chunks;
  size_t current = split.unit_starts.front();
  for (size_t i = 1; i < split.unit_starts.size(); ++i) {
    if (split.unit_starts[i] - current >= chunk_bytes) {
      chunks.push_back(Chunk{current, split.unit_starts[i]});
      current = split.unit_starts[i];
    }
  }
  chunks.push_back(Chunk{current, split.content_end});
  if (chunks.size() < 2) {
    return ShredXmlTextStreaming(xml_text, options.shred);
  }
  metrics->split_us->Record(
      static_cast<uint64_t>(split_timer.ElapsedMicros()));

  // Shred every chunk on the pool, each into a thread-local builder.
  // Chunks are wrapped in a synthetic root so the parser sees a
  // well-formed document; the wrapper is dropped during the merge.
  util::Timer shred_timer;
  std::vector<StoredDocument> shards(chunks.size());
  std::vector<Status> statuses(chunks.size(), Status::OK());
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    for (size_t i = next.fetch_add(1); i < chunks.size();
         i = next.fetch_add(1)) {
      std::string_view slice = xml_text.substr(
          chunks[i].begin, chunks[i].end - chunks[i].begin);
      std::string wrapped;
      wrapped.reserve(slice.size() + 16);
      wrapped += "<_shard>";
      wrapped.append(slice);
      wrapped += "</_shard>";
      internal::ShredSink sink(options.shred);
      Status status = xml::ParseSax(wrapped, &sink);
      if (!status.ok()) {
        statuses[i] = status;
        continue;
      }
      shards[i] = sink.TakeUnfinalized();
    }
  };
  unsigned workers =
      static_cast<unsigned>(std::min<size_t>(threads, chunks.size()));
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (unsigned t = 0; t + 1 < workers; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& thread : pool) thread.join();
  for (const Status& status : statuses) {
    if (!status.ok()) {
      // A shard failed to parse, so the document is malformed; let the
      // sequential parser produce the authoritative diagnosis (its
      // line/column positions refer to the original input).
      return ShredXmlTextStreaming(xml_text, options.shred);
    }
  }
  metrics->shred_us->Record(
      static_cast<uint64_t>(shred_timer.ElapsedMicros()));

  // The real root: re-parse prolog + root start tag (+ synthesized
  // close) so attributes are entity-decoded exactly like the parser
  // decodes them on the sequential path.
  std::string root_doc(xml_text.substr(0, split.root_open_end));
  root_doc += "</" + split.root_tag + ">";
  Result<xml::Document> root_parsed = xml::Parse(root_doc);
  if (!root_parsed.ok() || !root_parsed->root ||
      !root_parsed->root->is_element()) {
    return ShredXmlTextStreaming(xml_text, options.shred);
  }
  const xml::Node& root_node = *root_parsed->root;

  StoredDocument global;
  PathSummary* global_paths = global.mutable_paths();
  PathId root_path = global_paths->Intern(bat::kInvalidPathId,
                                          StepKind::kElement,
                                          root_node.tag());
  global.AppendNode(root_path, kInvalidOid, 0);
  for (const xml::Attribute& attr : root_node.attributes()) {
    PathId attr_path =
        global_paths->Intern(root_path, StepKind::kAttribute, attr.name);
    global.AppendString(attr_path, global.root(), attr.value);
  }

  util::Timer merge_timer;
  int root_next_rank = 0;
  for (StoredDocument& shard : shards) {
    MergeShard(std::move(shard), &global, root_path, &root_next_rank);
    // Release the drained shard's columns before the next one merges,
    // keeping peak memory at one corpus plus a single shard's skeleton.
    shard = StoredDocument();
  }
  MEETXML_RETURN_NOT_OK(global.Finalize());
  metrics->merge_us->Record(
      static_cast<uint64_t>(merge_timer.ElapsedMicros()));
  return global;
}

Result<StoredDocument> BulkShredXmlFile(const std::string& path,
                                        const BulkLoadOptions& options) {
  MEETXML_ASSIGN_OR_RETURN(std::string content,
                           util::ReadFileToString(path));
  return BulkShredXmlText(content, options);
}

}  // namespace model
}  // namespace meetxml
