#include "query/parser.h"

#include <unordered_set>

#include "query/lexer.h"

namespace meetxml {
namespace query {

using util::Result;
using util::Status;

namespace {

class ParserImpl {
 public:
  explicit ParserImpl(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  Result<Query> ParseQueryText() {
    Query query;
    MEETXML_RETURN_NOT_OK(Expect(TokenKind::kSelect));
    MEETXML_RETURN_NOT_OK(ParseProjections(&query));
    MEETXML_RETURN_NOT_OK(Expect(TokenKind::kFrom));
    MEETXML_RETURN_NOT_OK(ParseBindings(&query));
    if (ConsumeIf(TokenKind::kWhere)) {
      MEETXML_RETURN_NOT_OK(ParseWhere(&query));
    }
    while (true) {
      if (ConsumeIf(TokenKind::kExclude)) {
        MEETXML_ASSIGN_OR_RETURN(PathPattern pattern, ParsePattern());
        query.excludes.push_back(std::move(pattern));
        while (ConsumeIf(TokenKind::kComma)) {
          MEETXML_ASSIGN_OR_RETURN(PathPattern more, ParsePattern());
          query.excludes.push_back(std::move(more));
        }
        continue;
      }
      if (ConsumeIf(TokenKind::kWithin)) {
        MEETXML_ASSIGN_OR_RETURN(int bound, ParseInteger());
        query.within = bound;
        continue;
      }
      if (ConsumeIf(TokenKind::kLimit)) {
        MEETXML_ASSIGN_OR_RETURN(int bound, ParseInteger());
        query.limit = bound;
        continue;
      }
      break;
    }
    MEETXML_RETURN_NOT_OK(Expect(TokenKind::kEof));
    MEETXML_RETURN_NOT_OK(Check(query));
    return query;
  }

  Result<PathPattern> ParsePatternOnly() {
    MEETXML_ASSIGN_OR_RETURN(PathPattern pattern, ParsePattern());
    MEETXML_RETURN_NOT_OK(Expect(TokenKind::kEof));
    return pattern;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool ConsumeIf(TokenKind kind) {
    if (Peek().kind != kind) return false;
    ++pos_;
    return true;
  }

  Status Expect(TokenKind kind) {
    if (Peek().kind != kind) {
      return Status::InvalidArgument("expected ", TokenKindName(kind),
                                     " but found ",
                                     TokenKindName(Peek().kind),
                                     " at offset ", Peek().position);
    }
    ++pos_;
    return Status::OK();
  }

  Result<int> ParseInteger() {
    if (Peek().kind != TokenKind::kInteger) {
      return Status::InvalidArgument("expected integer at offset ",
                                     Peek().position);
    }
    return std::stoi(Advance().text);
  }

  Result<std::string> ParseVariable() {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Status::InvalidArgument("expected variable name at offset ",
                                     Peek().position);
    }
    return Advance().text;
  }

  Result<std::vector<std::string>> ParseVarList() {
    MEETXML_RETURN_NOT_OK(Expect(TokenKind::kLparen));
    std::vector<std::string> vars;
    MEETXML_ASSIGN_OR_RETURN(std::string first, ParseVariable());
    vars.push_back(std::move(first));
    while (ConsumeIf(TokenKind::kComma)) {
      MEETXML_ASSIGN_OR_RETURN(std::string next, ParseVariable());
      vars.push_back(std::move(next));
    }
    MEETXML_RETURN_NOT_OK(Expect(TokenKind::kRparen));
    return vars;
  }

  Status ParseProjections(Query* query) {
    do {
      Projection projection;
      switch (Peek().kind) {
        case TokenKind::kMeet:
          Advance();
          projection.kind = Projection::Kind::kMeet;
          break;
        case TokenKind::kGraphMeet:
          Advance();
          projection.kind = Projection::Kind::kGraphMeet;
          break;
        case TokenKind::kAncestors:
          Advance();
          projection.kind = Projection::Kind::kAncestors;
          break;
        case TokenKind::kTag:
          Advance();
          projection.kind = Projection::Kind::kTag;
          break;
        case TokenKind::kPath:
          Advance();
          projection.kind = Projection::Kind::kPath;
          break;
        case TokenKind::kXml:
          Advance();
          projection.kind = Projection::Kind::kXml;
          break;
        case TokenKind::kCount:
          Advance();
          projection.kind = Projection::Kind::kCount;
          break;
        case TokenKind::kIdentifier: {
          projection.kind = Projection::Kind::kVar;
          projection.vars.push_back(Advance().text);
          query->projections.push_back(std::move(projection));
          continue;
        }
        default:
          return Status::InvalidArgument(
              "expected projection (variable, MEET, ANCESTORS, TAG, PATH, "
              "XML or COUNT) at offset ",
              Peek().position);
      }
      MEETXML_ASSIGN_OR_RETURN(projection.vars, ParseVarList());
      query->projections.push_back(std::move(projection));
    } while (ConsumeIf(TokenKind::kComma));
    return Status::OK();
  }

  Result<PathPattern> ParsePattern() {
    PathPattern pattern;
    bool expect_step = true;
    while (true) {
      const Token& token = Peek();
      if (expect_step) {
        if (token.kind == TokenKind::kIdentifier) {
          Advance();
          if (token.text == "cdata") {
            pattern.steps.push_back(
                PatternStep{PatternStep::Kind::kCdata, ""});
            pattern.text += "cdata";
          } else {
            pattern.steps.push_back(
                PatternStep{PatternStep::Kind::kName, token.text});
            pattern.text += token.text;
          }
          expect_step = false;
          continue;
        }
        if (token.kind == TokenKind::kStar) {
          Advance();
          pattern.steps.push_back(
              PatternStep{PatternStep::Kind::kAnyElement, ""});
          pattern.text += "*";
          expect_step = false;
          continue;
        }
        if (token.kind == TokenKind::kAt) {
          Advance();
          if (Peek().kind != TokenKind::kIdentifier) {
            return Status::InvalidArgument(
                "expected attribute name after '@' at offset ",
                Peek().position);
          }
          pattern.steps.push_back(PatternStep{
              PatternStep::Kind::kAttribute, Advance().text});
          pattern.text += "@" + pattern.steps.back().label;
          expect_step = false;
          continue;
        }
        return Status::InvalidArgument(
            "expected path step (name, '*', '@attr' or 'cdata') at "
            "offset ",
            token.position);
      }
      // After a step: '/' continues, '//' continues with a descendant
      // gap, anything else ends the pattern.
      if (token.kind == TokenKind::kSlash) {
        Advance();
        pattern.text += "/";
        expect_step = true;
        continue;
      }
      if (token.kind == TokenKind::kDoubleSlash) {
        Advance();
        pattern.steps.push_back(
            PatternStep{PatternStep::Kind::kDescendant, ""});
        pattern.text += "//";
        expect_step = true;
        continue;
      }
      break;
    }
    if (pattern.steps.empty()) {
      return Status::InvalidArgument("empty path pattern");
    }
    return pattern;
  }

  Status ParseBindings(Query* query) {
    do {
      Binding binding;
      MEETXML_ASSIGN_OR_RETURN(binding.pattern, ParsePattern());
      ConsumeIf(TokenKind::kAs);  // AS is optional
      MEETXML_ASSIGN_OR_RETURN(binding.var, ParseVariable());
      query->bindings.push_back(std::move(binding));
    } while (ConsumeIf(TokenKind::kComma));
    return Status::OK();
  }

  // WHERE grammar with conventional precedence (NOT > AND > OR):
  //   or_expr   := and_expr (OR and_expr)*
  //   and_expr  := unary (AND unary)*
  //   unary     := NOT unary | '(' or_expr ')' | atom
  //   atom      := var CONTAINS|ICONTAINS|WORD|= 'str'
  //              | DISTANCE(v1, v2) <= int
  // The parsed expression's top-level AND spine is then flattened into
  // Query::where conjuncts, so the executor can route each conjunct to
  // its variable.
  Status ParseWhere(Query* query) {
    MEETXML_ASSIGN_OR_RETURN(BoolExpr expr, ParseOrExpr());
    FlattenConjuncts(std::move(expr), &query->where);
    return Status::OK();
  }

  static void FlattenConjuncts(BoolExpr expr,
                               std::vector<BoolExpr>* out) {
    if (expr.op == BoolExpr::Op::kAnd) {
      for (BoolExpr& child : expr.children) {
        FlattenConjuncts(std::move(child), out);
      }
      return;
    }
    out->push_back(std::move(expr));
  }

  Result<BoolExpr> ParseOrExpr() {
    MEETXML_ASSIGN_OR_RETURN(BoolExpr left, ParseAndExpr());
    while (Peek().kind == TokenKind::kOr) {
      Advance();
      MEETXML_ASSIGN_OR_RETURN(BoolExpr right, ParseAndExpr());
      BoolExpr node;
      node.op = BoolExpr::Op::kOr;
      node.children.push_back(std::move(left));
      node.children.push_back(std::move(right));
      left = std::move(node);
    }
    return left;
  }

  Result<BoolExpr> ParseAndExpr() {
    MEETXML_ASSIGN_OR_RETURN(BoolExpr left, ParseUnary());
    while (Peek().kind == TokenKind::kAnd) {
      Advance();
      MEETXML_ASSIGN_OR_RETURN(BoolExpr right, ParseUnary());
      BoolExpr node;
      node.op = BoolExpr::Op::kAnd;
      node.children.push_back(std::move(left));
      node.children.push_back(std::move(right));
      left = std::move(node);
    }
    return left;
  }

  Result<BoolExpr> ParseUnary() {
    if (ConsumeIf(TokenKind::kNot)) {
      MEETXML_ASSIGN_OR_RETURN(BoolExpr inner, ParseUnary());
      BoolExpr node;
      node.op = BoolExpr::Op::kNot;
      node.children.push_back(std::move(inner));
      return node;
    }
    if (ConsumeIf(TokenKind::kLparen)) {
      MEETXML_ASSIGN_OR_RETURN(BoolExpr inner, ParseOrExpr());
      MEETXML_RETURN_NOT_OK(Expect(TokenKind::kRparen));
      return inner;
    }
    return ParseAtom();
  }

  Result<BoolExpr> ParseAtom() {
    BoolExpr node;
    node.op = BoolExpr::Op::kLeaf;
    Predicate& predicate = node.leaf;
    if (Peek().kind == TokenKind::kDistance) {
      Advance();
      MEETXML_ASSIGN_OR_RETURN(std::vector<std::string> vars,
                               ParseVarList());
      if (vars.size() != 2) {
        return Status::InvalidArgument(
            "DISTANCE takes exactly two variables");
      }
      predicate.kind = Predicate::Kind::kDistanceLe;
      predicate.var = vars[0];
      predicate.var2 = vars[1];
      MEETXML_RETURN_NOT_OK(Expect(TokenKind::kLessEqual));
      MEETXML_ASSIGN_OR_RETURN(predicate.bound, ParseInteger());
      return node;
    }

    MEETXML_ASSIGN_OR_RETURN(predicate.var, ParseVariable());
    switch (Peek().kind) {
      case TokenKind::kContains:
        predicate.kind = Predicate::Kind::kContains;
        break;
      case TokenKind::kIcontains:
        predicate.kind = Predicate::Kind::kIcontains;
        break;
      case TokenKind::kWord:
        predicate.kind = Predicate::Kind::kWord;
        break;
      case TokenKind::kPhrase:
        predicate.kind = Predicate::Kind::kPhrase;
        break;
      case TokenKind::kSynonym:
        predicate.kind = Predicate::Kind::kSynonym;
        break;
      case TokenKind::kEquals:
        predicate.kind = Predicate::Kind::kEquals;
        break;
      default:
        return Status::InvalidArgument(
            "expected CONTAINS, ICONTAINS, WORD, PHRASE, SYNONYM or '=' at "
            "offset ",
            Peek().position);
    }
    Advance();
    if (Peek().kind != TokenKind::kString) {
      return Status::InvalidArgument("expected string literal at offset ",
                                     Peek().position);
    }
    predicate.literal = Advance().text;
    return node;
  }

  // Collects the variables of all string-predicate leaves; rejects
  // DISTANCE atoms below boolean operators.
  static Status CollectLeafVars(const BoolExpr& expr,
                                std::vector<std::string>* vars,
                                bool top_level) {
    if (expr.op == BoolExpr::Op::kLeaf) {
      if (expr.leaf.kind == Predicate::Kind::kDistanceLe && !top_level) {
        return Status::InvalidArgument(
            "DISTANCE may only appear as a top-level conjunct");
      }
      vars->push_back(expr.leaf.var);
      return Status::OK();
    }
    for (const BoolExpr& child : expr.children) {
      MEETXML_RETURN_NOT_OK(CollectLeafVars(child, vars, false));
    }
    return Status::OK();
  }

  template <typename Require>
  static Status CheckConjunct(const BoolExpr& conjunct,
                              const Require& require) {
    if (conjunct.op == BoolExpr::Op::kLeaf) {
      const Predicate& predicate = conjunct.leaf;
      MEETXML_RETURN_NOT_OK(require(predicate.var));
      if (predicate.kind == Predicate::Kind::kDistanceLe) {
        MEETXML_RETURN_NOT_OK(require(predicate.var2));
        if (predicate.bound < 0) {
          return Status::InvalidArgument("DISTANCE bound must be >= 0");
        }
      }
      return Status::OK();
    }
    // A boolean tree: every leaf must test the same variable (the
    // set-based model has no cross-variable tuples to evaluate OR/NOT
    // over).
    std::vector<std::string> vars;
    MEETXML_RETURN_NOT_OK(CollectLeafVars(conjunct, &vars, true));
    for (const std::string& var : vars) {
      MEETXML_RETURN_NOT_OK(require(var));
      if (var != vars.front()) {
        return Status::InvalidArgument(
            "boolean predicate mixes variables '", vars.front(),
            "' and '", var,
            "'; OR/NOT must stay within one variable");
      }
    }
    return Status::OK();
  }

  // Semantic checks: variables declared once, references resolve.
  static Status Check(const Query& query) {
    std::unordered_set<std::string> declared;
    for (const Binding& binding : query.bindings) {
      if (!declared.insert(binding.var).second) {
        return Status::InvalidArgument("duplicate variable '", binding.var,
                                       "' in FROM");
      }
    }
    auto require = [&declared](const std::string& var) {
      if (!declared.count(var)) {
        return Status::InvalidArgument("undeclared variable '", var, "'");
      }
      return Status::OK();
    };
    for (const Projection& projection : query.projections) {
      for (const std::string& var : projection.vars) {
        MEETXML_RETURN_NOT_OK(require(var));
      }
      if ((projection.kind == Projection::Kind::kMeet ||
           projection.kind == Projection::Kind::kAncestors) &&
          projection.vars.empty()) {
        return Status::InvalidArgument(
            "MEET/ANCESTORS needs at least one variable");
      }
      if (projection.kind == Projection::Kind::kGraphMeet &&
          projection.vars.size() != 2) {
        return Status::InvalidArgument(
            "GMEET takes exactly two variables");
      }
    }
    for (const BoolExpr& conjunct : query.where) {
      MEETXML_RETURN_NOT_OK(CheckConjunct(conjunct, require));
    }
    if (query.within.has_value() && *query.within < 0) {
      return Status::InvalidArgument("WITHIN bound must be >= 0");
    }
    if (query.limit.has_value() && *query.limit < 0) {
      return Status::InvalidArgument("LIMIT must be >= 0");
    }
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> ParseQuery(std::string_view text) {
  MEETXML_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  ParserImpl parser(std::move(tokens));
  return parser.ParseQueryText();
}

Result<PathPattern> ParsePathPattern(std::string_view text) {
  MEETXML_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  ParserImpl parser(std::move(tokens));
  return parser.ParsePatternOnly();
}

}  // namespace query
}  // namespace meetxml
