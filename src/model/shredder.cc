#include "model/shredder.h"

#include <vector>

#include "util/strings.h"
#include "xml/parser.h"
#include "xml/sax.h"

namespace meetxml {
namespace model {

using util::Result;
using util::Status;

namespace {

bool IsAllWhitespace(std::string_view s) {
  return util::StripAsciiWhitespace(s).empty();
}

// Iterative DFS so that arbitrarily deep documents cannot overflow the
// native stack. The work stack holds (dom node, its parent's OID, its
// interned parent path, sibling rank); children are pushed in reverse so
// they are popped — and therefore assigned OIDs — in document order.
struct WorkItem {
  const xml::Node* node;
  Oid parent_oid;
  PathId parent_path;
  int rank;
};

}  // namespace

Result<StoredDocument> Shred(const xml::Document& doc,
                             const ShredOptions& options) {
  if (!doc.root || !doc.root->is_element()) {
    return Status::InvalidArgument("document has no root element");
  }

  StoredDocument stored;
  PathSummary* paths = stored.mutable_paths();

  std::vector<WorkItem> stack;
  stack.push_back(WorkItem{doc.root.get(), kInvalidOid, kInvalidPathId, 0});

  while (!stack.empty()) {
    WorkItem item = stack.back();
    stack.pop_back();
    const xml::Node& node = *item.node;

    if (node.is_text()) {
      if (options.skip_whitespace_cdata && IsAllWhitespace(node.text())) {
        continue;
      }
      PathId cdata_path =
          paths->Intern(item.parent_path, StepKind::kCdata, "cdata");
      Oid oid = stored.AppendNode(cdata_path, item.parent_oid, item.rank);
      stored.AppendString(cdata_path, oid, node.text());
      continue;
    }
    if (!node.is_element()) continue;  // comments / PIs are dropped

    PathId path =
        paths->Intern(item.parent_path, StepKind::kElement, node.tag());
    Oid oid = stored.AppendNode(path, item.parent_oid, item.rank);

    for (const xml::Attribute& attr : node.attributes()) {
      PathId attr_path =
          paths->Intern(path, StepKind::kAttribute, attr.name);
      stored.AppendString(attr_path, oid, attr.value);
    }

    // Push children reversed to preserve document order on pop.
    const auto& kids = node.children();
    for (size_t i = kids.size(); i-- > 0;) {
      stack.push_back(
          WorkItem{kids[i].get(), oid, path, static_cast<int>(i)});
    }
  }

  MEETXML_RETURN_NOT_OK(stored.Finalize());
  return stored;
}

Result<StoredDocument> ShredXmlText(std::string_view xml_text,
                                    const ShredOptions& options) {
  MEETXML_ASSIGN_OR_RETURN(xml::Document doc, xml::Parse(xml_text));
  return Shred(doc, options);
}

namespace internal {

util::Status ShredSink::StartElement(std::string tag,
                                     std::vector<xml::Attribute> attributes) {
  Frame* parent = stack_.empty() ? nullptr : &stack_.back();
  PathId path = stored_.mutable_paths()->Intern(
      parent == nullptr ? kInvalidPathId : parent->path, StepKind::kElement,
      tag);
  Oid oid =
      stored_.AppendNode(path, parent == nullptr ? kInvalidOid : parent->oid,
                         parent == nullptr ? 0 : parent->next_rank++);
  for (xml::Attribute& attribute : attributes) {
    PathId attr_path = stored_.mutable_paths()->Intern(
        path, StepKind::kAttribute, attribute.name);
    stored_.AppendString(attr_path, oid, std::move(attribute.value));
  }
  stack_.push_back(Frame{oid, path, 0});
  return util::Status::OK();
}

util::Status ShredSink::EndElement(std::string_view tag) {
  (void)tag;
  stack_.pop_back();
  return util::Status::OK();
}

util::Status ShredSink::Text(std::string text) {
  if (options_.skip_whitespace_cdata &&
      util::StripAsciiWhitespace(text).empty()) {
    return util::Status::OK();
  }
  Frame& parent = stack_.back();
  PathId cdata_path =
      stored_.mutable_paths()->Intern(parent.path, StepKind::kCdata, "cdata");
  Oid oid = stored_.AppendNode(cdata_path, parent.oid, parent.next_rank++);
  stored_.AppendString(cdata_path, oid, std::move(text));
  return util::Status::OK();
}

Result<StoredDocument> ShredSink::TakeFinalized() {
  MEETXML_RETURN_NOT_OK(stored_.Finalize());
  return std::move(stored_);
}

}  // namespace internal

Result<StoredDocument> ShredXmlTextStreaming(std::string_view xml_text,
                                             const ShredOptions& options) {
  internal::ShredSink sink(options);
  MEETXML_RETURN_NOT_OK(xml::ParseSax(xml_text, &sink));
  return sink.TakeFinalized();
}

Result<StoredDocument> ShredXmlFile(const std::string& path,
                                    const ShredOptions& options) {
  MEETXML_ASSIGN_OR_RETURN(xml::Document doc, xml::ParseFile(path));
  return Shred(doc, options);
}

}  // namespace model
}  // namespace meetxml
