// Synthetic multimedia feature-description generator.
//
// Substitution for the ~200 MB file of "descriptions of multimedia data
// items, extracted by feature detectors" used for the paper's Figure 6
// (see docs/paper_map.md). The generator reproduces the two properties the
// experiment depends on:
//  * a corpus large enough that full-text search dominates elapsed time,
//  * node pairs at *controlled tree distance*: unique marker strings are
//    planted at every distance on Figure 6's x-axis, so the bench can
//    measure "fulltext only" vs "fulltext and meet" per distance.

#ifndef MEETXML_DATA_MULTIMEDIA_GEN_H_
#define MEETXML_DATA_MULTIMEDIA_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "xml/dom.h"

namespace meetxml {
namespace data {

/// \brief A pair of unique search terms planted at a known tree
/// distance: Distance(match(term_a), match(term_b)) == distance.
struct PlantedPair {
  std::string term_a;
  std::string term_b;
  int distance;
};

/// \brief Generator knobs.
struct MultimediaOptions {
  uint64_t seed = 7;
  /// Number of media items (each expands to ~40-80 nodes).
  int items = 2000;
  /// Maximum nesting depth of the recursive <region> decomposition.
  int max_region_depth = 4;
  /// Largest planted marker distance (Figure 6 sweeps 0..20). Pairs are
  /// planted at distance 0 and every distance in [2, max],
  /// string-to-string distances of 1 do not exist in the data model
  /// (two distinct leaf strings are at least 2 edges apart).
  int max_planted_distance = 20;
};

/// \brief Generation result: the DOM plus the planted calibration pairs.
struct MultimediaCorpus {
  xml::Document doc;
  std::vector<PlantedPair> pairs;
};

/// \brief Generates the corpus. Deterministic in `seed`.
util::Result<MultimediaCorpus> GenerateMultimedia(
    const MultimediaOptions& options);

}  // namespace data
}  // namespace meetxml

#endif  // MEETXML_DATA_MULTIMEDIA_GEN_H_
