// Inverted word index and trigram index over the string associations of
// a stored document.
//
// The paper's experiments run the meet on the output of a full-text
// search ("we extract from the results of the full-text query starting
// points from where the user can start displaying and browsing"). The
// word index answers whole-word queries; the trigram index accelerates
// the paper's substring `contains` predicate by pruning which strings
// need verification.

#ifndef MEETXML_TEXT_INVERTED_INDEX_H_
#define MEETXML_TEXT_INVERTED_INDEX_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "model/document.h"
#include "text/tokenizer.h"
#include "util/result.h"

namespace meetxml {
namespace text {

using bat::Oid;
using bat::PathId;
using model::StoredDocument;

/// \brief One index hit: a string association identified by its path and
/// owning node (the cdata node, or the element owning an attribute).
struct Posting {
  PathId path;
  Oid owner;

  bool operator==(const Posting& other) const {
    return path == other.path && owner == other.owner;
  }
  bool operator<(const Posting& other) const {
    if (path != other.path) return path < other.path;
    return owner < other.owner;
  }
};

/// \brief Index construction knobs.
struct IndexOptions {
  TokenizerOptions tokenizer;
  /// Also build the trigram index for substring search acceleration.
  bool build_trigrams = true;
};

/// \brief Word + trigram inverted index.
class InvertedIndex {
 public:
  using WordMap = std::unordered_map<std::string, std::vector<Posting>>;
  using TrigramMap = std::unordered_map<uint32_t, std::vector<Posting>>;

  /// \brief Indexes every string association of a finalized document.
  static util::Result<InvertedIndex> Build(const StoredDocument& doc,
                                           const IndexOptions& options = {});

  /// \brief Reconstitutes an index from previously extracted state —
  /// the deserialization entry point (see text/index_io.h). Every
  /// posting vector must already be sorted and unique; posting_count
  /// is recomputed.
  static InvertedIndex Restore(WordMap words, TrigramMap trigrams,
                               TokenizerOptions tokenizer_options,
                               bool has_trigrams);

  /// \brief Postings of a whole word (case-folded per tokenizer
  /// options); empty vector if absent. Postings are sorted and unique.
  const std::vector<Posting>& LookupWord(std::string_view word) const;

  /// \brief Candidate postings whose string *may* contain `needle`
  /// (superset guaranteed when the trigram index is on and the needle
  /// has >= 3 bytes; otherwise returns nullopt meaning "scan").
  /// Candidates still need verification against the actual strings.
  std::optional<std::vector<Posting>> TrigramCandidates(
      std::string_view needle) const;

  size_t vocabulary_size() const { return words_.size(); }
  size_t posting_count() const { return posting_count_; }
  size_t trigram_count() const { return trigrams_.size(); }
  bool has_trigrams() const { return has_trigrams_; }

  /// \brief Raw index state, exposed for persistence (text/index_io.h)
  /// and invariant checks. Posting vectors are sorted and unique.
  const WordMap& words() const { return words_; }
  const TrigramMap& trigrams() const { return trigrams_; }
  const TokenizerOptions& tokenizer_options() const {
    return tokenizer_options_;
  }

 private:
  InvertedIndex() = default;

  WordMap words_;
  TrigramMap trigrams_;
  TokenizerOptions tokenizer_options_;
  size_t posting_count_ = 0;
  bool has_trigrams_ = false;
};

}  // namespace text
}  // namespace meetxml

#endif  // MEETXML_TEXT_INVERTED_INDEX_H_
