// Persistent store: bulk-load once, query forever.
//
// Demonstrates the full production loading path: parallel bulk load
// (model/bulk_load.h), index construction, persistence of document AND
// full-text indexes in one MXM2 image (text/index_io.h), and reload
// into an executor whose indexes are hot without rebuilding — the
// workflow of the paper's case study ("We prepared the bibliography by
// bulk loading it into Monet XML") made durable and parallel.
//
// Run:  ./persistent_store [store.mxm]

#include <cstdio>
#include <string>

#include "data/dblp_gen.h"
#include "model/bulk_load.h"
#include "model/shredder.h"
#include "model/stats.h"
#include "query/executor.h"
#include "text/index_io.h"
#include "text/search.h"
#include "util/threads.h"
#include "util/timer.h"
#include "xml/serializer.h"

using namespace meetxml;  // example code; the library itself never does this

int main(int argc, char** argv) {
  std::string store_path = argc > 1 ? argv[1] : "/tmp/meetxml_store.mxm";

  // 1. Generate the corpus and its XML text.
  data::DblpOptions options;
  options.icde_papers_per_year = 40;
  options.other_papers_per_year = 120;
  options.journal_articles_per_year = 40;
  auto generated = data::GenerateDblp(options);
  MEETXML_CHECK_OK(generated.status());
  xml::SerializeOptions serialize_options;
  serialize_options.indent = 1;
  std::string xml_text = xml::Serialize(*generated, serialize_options);

  // 2. Bulk load from XML: sequential vs. the parallel pipeline.
  util::Timer timer;
  auto sequential = model::ShredXmlText(xml_text);
  MEETXML_CHECK_OK(sequential.status());
  double sequential_ms = timer.ElapsedMillis();

  model::BulkLoadOptions bulk_options;
  bulk_options.min_parallel_bytes = 0;
  unsigned threads = util::ResolveThreads(0);
  bulk_options.threads = threads;
  timer.Reset();
  auto doc = model::BulkShredXmlText(xml_text, bulk_options);
  MEETXML_CHECK_OK(doc.status());
  double parallel_ms = timer.ElapsedMillis();

  // 3. Build the text indexes once, then persist document + indexes
  //    into one MXM2 image.
  timer.Reset();
  auto index = text::InvertedIndex::Build(*doc);
  MEETXML_CHECK_OK(index.status());
  double index_ms = timer.ElapsedMillis();

  timer.Reset();
  MEETXML_CHECK_OK(text::SaveStoreToFile(*doc, &*index, store_path));
  double save_ms = timer.ElapsedMillis();

  // 4. Reload (the cheap path): no XML parse, no tokenization.
  timer.Reset();
  auto store = text::LoadStoreFromFile(store_path);
  MEETXML_CHECK_OK(store.status());
  double load_ms = timer.ElapsedMillis();

  std::printf("XML size:        %.1f MB\n",
              static_cast<double>(xml_text.size()) / 1e6);
  std::printf("shred (1 thr):   %.1f ms\n", sequential_ms);
  std::printf("shred (%u thr):   %.1f ms (%.1fx)\n", threads, parallel_ms,
              sequential_ms / parallel_ms);
  std::printf("index build:     %.1f ms\n", index_ms);
  std::printf("save image:      %.1f ms -> %s\n", save_ms,
              store_path.c_str());
  std::printf("reload image:    %.1f ms, indexes included "
              "(%.1fx faster than re-parse + re-index)\n\n",
              load_ms, (sequential_ms + index_ms) / load_ms);

  // 5. The reloaded store answers queries with hot indexes.
  auto stats = model::ComputeStats(store->doc);
  MEETXML_CHECK_OK(stats.status());
  std::printf("Reloaded store catalog (top relations):\n%s\n",
              model::RenderStats(*stats, 5).c_str());

  auto executor = query::Executor::Build(
      store->doc,
      text::FullTextSearch::WithIndex(store->doc, std::move(*store->index)));
  MEETXML_CHECK_OK(executor.status());
  auto result = executor->ExecuteText(
      "SELECT MEET(a, b) FROM dblp//cdata a, dblp//cdata b "
      "WHERE a CONTAINS 'ICDE' AND b CONTAINS '1995' "
      "EXCLUDE dblp LIMIT 5");
  MEETXML_CHECK_OK(result.status());
  std::printf("Query against the reloaded store:\n%s",
              result->ToText().c_str());
  return 0;
}
