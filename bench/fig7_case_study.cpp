// FIG7 — reproduces paper Figure 7: the DBLP case study.
//
// Workload: "list all publications in the ICDE proceedings of a certain
// year". Full-text search for "ICDE" and for every year of a growing
// interval [y, 1999], y stepping 1999 -> 1984; the meet (root excluded,
// meet_X) of all match sets is computed and ONLY the meet time is
// reported against the output cardinality — exactly the paper's plot.
// Expected shape: elapsed meet time linear in the output cardinality
// (paper: ~3 s at 1000 publications on a 550 MHz SGI; absolute numbers
// differ on modern hardware, the linearity is the claim). The small
// step from the missing ICDE 1985 shows up near the right end.

#include <cstdio>
#include <string>
#include <vector>

#include "core/meet_general.h"
#include "core/restrictions.h"
#include "data/dblp_gen.h"
#include "model/shredder.h"
#include "text/search.h"
#include "util/timer.h"

using namespace meetxml;

namespace {
constexpr int kRepetitions = 5;
}  // namespace

int main() {
  data::DblpOptions options;
  options.start_year = 1984;
  options.end_year = 1999;
  options.icde_papers_per_year = 75;  // ~1200 ICDE papers total
  options.other_papers_per_year = 150;
  options.journal_articles_per_year = 60;
  auto generated = data::GenerateDblp(options);
  MEETXML_CHECK_OK(generated.status());

  util::Timer load_timer;
  auto doc_result = model::Shred(*generated);
  MEETXML_CHECK_OK(doc_result.status());
  const model::StoredDocument& doc = *doc_result;
  double load_ms = load_timer.ElapsedMillis();

  auto search_result = text::FullTextSearch::Build(doc);
  MEETXML_CHECK_OK(search_result.status());
  const text::FullTextSearch& search = *search_result;

  std::printf("# FIG7: meet after full-text search on the DBLP-shaped "
              "bibliography\n");
  std::printf("# bibliography: %zu nodes, %zu schema paths (bulk load "
              "%.0f ms)\n",
              doc.node_count(), doc.paths().size(), load_ms);
  std::printf("# interval grows 1999 -> 1984; no ICDE in 1985 (small "
              "step near the end)\n");
  std::printf("#\n# interval_start  input_assocs  output_cardinality  "
              "meet_ms\n");

  core::MeetOptions meet_options = core::ExcludeRootOptions(doc);

  for (int start_year = 1999; start_year >= 1984; --start_year) {
    std::vector<std::string> terms = {"ICDE"};
    for (int year = start_year; year <= 1999; ++year) {
      terms.push_back(std::to_string(year));
    }
    auto matches = search.SearchAll(terms, text::MatchMode::kContains);
    MEETXML_CHECK_OK(matches.status());
    auto inputs = text::FullTextSearch::ToMeetInput(*matches);
    size_t input_size = 0;
    for (const core::AssocSet& set : inputs) input_size += set.size();

    double best_ms = 1e18;
    size_t cardinality = 0;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      util::Timer timer;
      auto meets = core::MeetGeneral(doc, inputs, meet_options);
      MEETXML_CHECK_OK(meets.status());
      best_ms = std::min(best_ms, timer.ElapsedMillis());
      cardinality = meets->size();
    }
    std::printf("%15d  %12zu  %18zu  %7.2f\n", start_year, input_size,
                cardinality, best_ms);
  }
  std::printf("# expected shape: meet_ms linear in output cardinality; "
              "interactive (ms-scale) throughout\n");
  return 0;
}
