#include "server/worker_pool.h"

#include <utility>

#include "util/threads.h"

namespace meetxml {
namespace server {

WorkerPool::WorkerPool(WorkerPoolOptions options)
    : options_(std::move(options)) {
  if (options_.metrics != nullptr) {
    queue_depth_ = &options_.metrics->gauge("meetxml_worker_queue_depth");
    queue_wait_us_ =
        &options_.metrics->histogram("meetxml_worker_queue_wait_us");
    execute_us_ =
        &options_.metrics->histogram("meetxml_worker_execute_us");
  }
  unsigned count = util::ResolveThreads(options_.threads);
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() { Shutdown(); }

void WorkerPool::Submit(std::function<void()> job) {
  // Timestamp outside the lock: the clock read must not stretch the
  // critical section (and an injected step-clock then counts the
  // submit, which is what the queue-wait tests pin).
  uint64_t now = queue_wait_us_ != nullptr ? NowUs() : 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    queue_.push_back(Job{std::move(job), now});
    if (queue_depth_ != nullptr) {
      queue_depth_->Set(static_cast<int64_t>(queue_.size()));
    }
  }
  cv_.notify_one();
}

bool WorkerPool::TrySubmit(std::function<void()> job) {
  uint64_t now = queue_wait_us_ != nullptr ? NowUs() : 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return false;
    if (options_.max_queue != 0 && queue_.size() >= options_.max_queue) {
      return false;
    }
    queue_.push_back(Job{std::move(job), now});
    if (queue_depth_ != nullptr) {
      queue_depth_->Set(static_cast<int64_t>(queue_.size()));
    }
  }
  cv_.notify_one();
  return true;
}

size_t WorkerPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void WorkerPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void WorkerPool::WorkerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_, queue drained
      job = std::move(queue_.front());
      queue_.pop_front();
      if (queue_depth_ != nullptr) {
        queue_depth_->Set(static_cast<int64_t>(queue_.size()));
      }
    }
    if (queue_wait_us_ == nullptr) {
      job.fn();
      continue;
    }
    uint64_t start = NowUs();
    queue_wait_us_->Record(start >= job.enqueued_us
                               ? start - job.enqueued_us
                               : 0);
    job.fn();
    uint64_t end = NowUs();
    execute_us_->Record(end >= start ? end - start : 0);
  }
}

}  // namespace server
}  // namespace meetxml
