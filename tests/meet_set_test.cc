// Tests for the set-at-a-time meet (paper Fig. 4): minimality,
// order-invariance, witness bookkeeping, restrictions.

#include <algorithm>

#include <gtest/gtest.h>

#include "core/meet_pair.h"
#include "core/meet_set.h"
#include "data/paper_example.h"
#include "data/random_tree.h"
#include "model/shredder.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace meetxml {
namespace core {
namespace {

using meetxml::testing::FindCdataNode;
using meetxml::testing::FindElement;
using meetxml::testing::MustShred;
using meetxml::testing::ReferenceLca;

// Builds a uniformly-typed association set from cdata texts.
AssocSet CdataSet(const model::StoredDocument& doc,
                  const std::vector<std::string>& texts) {
  AssocSet set;
  set.path = bat::kInvalidPathId;
  for (const std::string& text : texts) {
    Oid node = FindCdataNode(doc, text);
    PathId path = doc.path(node);
    if (set.path == bat::kInvalidPathId) set.path = path;
    EXPECT_EQ(path, set.path) << "set must be uniformly typed";
    set.nodes.push_back(node);
  }
  return set;
}

// ---- Paper worked example: {Bit} x {1999, 1999} -----------------------

TEST(MeetSet, BitAnd1999FindsOnlyTheArticle) {
  auto doc = MustShred(data::PaperExampleXml());
  AssocSet bit = CdataSet(doc, {"Bit"});

  // Both year cdata nodes ("1999" twice) share one path.
  AssocSet years;
  PathId year_path = bat::kInvalidPathId;
  for (PathId path : doc.string_paths()) {
    if (doc.paths().ToString(path) ==
        "bibliography/institute/article/year/cdata") {
      year_path = path;
    }
  }
  ASSERT_NE(year_path, bat::kInvalidPathId);
  years.path = year_path;
  const auto& table = doc.StringsAt(year_path);
  for (size_t row = 0; row < table.size(); ++row) {
    years.nodes.push_back(table.head(row));
  }
  ASSERT_EQ(years.nodes.size(), 2u);

  auto results = MeetSet(doc, bit, years);
  ASSERT_TRUE(results.ok()) << results.status();
  // Minimality: only Ben Bit's article — the second "1999" is consumed
  // by nothing and never creates the bibliography-level meet the naive
  // cross product would report.
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ(doc.tag((*results)[0].meet), "article");
  EXPECT_EQ((*results)[0].left_witnesses.size(), 1u);
  EXPECT_EQ((*results)[0].right_witnesses.size(), 1u);
}

TEST(MeetSet, IsOrderInvariant) {
  auto doc = MustShred(data::PaperExampleXml());
  AssocSet bit = CdataSet(doc, {"Bit"});
  AssocSet ben = CdataSet(doc, {"Ben"});
  auto lr = MeetSet(doc, bit, ben);
  auto rl = MeetSet(doc, ben, bit);
  ASSERT_TRUE(lr.ok() && rl.ok());
  ASSERT_EQ(lr->size(), rl->size());
  ASSERT_EQ(lr->size(), 1u);
  EXPECT_EQ((*lr)[0].meet, (*rl)[0].meet);
  EXPECT_EQ((*lr)[0].left_witnesses, (*rl)[0].right_witnesses);
}

TEST(MeetSet, SharedNodeMeetsAtItself) {
  auto doc = MustShred(data::PaperExampleXml());
  AssocSet set = CdataSet(doc, {"Bob Byte"});
  auto results = MeetSet(doc, set, set);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].meet, set.nodes[0]);
  EXPECT_EQ((*results)[0].witness_distance, 0);
}

TEST(MeetSet, EmptyInputYieldsNoMeets) {
  auto doc = MustShred(data::PaperExampleXml());
  AssocSet bit = CdataSet(doc, {"Bit"});
  AssocSet empty;
  empty.path = bit.path;
  auto results = MeetSet(doc, bit, empty);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
}

TEST(MeetSet, RejectsNonUniformSet) {
  auto doc = MustShred("<a><b>x</b><c>y</c></a>");
  Oid x = FindCdataNode(doc, "x");
  Oid y = FindCdataNode(doc, "y");
  AssocSet broken;
  broken.path = doc.path(x);
  broken.nodes = {x, y};  // y has a different path
  auto result = MeetSet(doc, broken, broken);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(MeetSet, DeduplicatesInputNodes) {
  auto doc = MustShred(data::PaperExampleXml());
  AssocSet bit = CdataSet(doc, {"Bit"});
  bit.nodes.push_back(bit.nodes[0]);
  AssocSet ben = CdataSet(doc, {"Ben"});
  auto results = MeetSet(doc, bit, ben);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].left_witnesses.size(), 1u);
}

// ---- Restrictions ------------------------------------------------------

TEST(MeetSet, ExcludedPathFiltersResult) {
  auto doc = MustShred(data::PaperExampleXml());
  // Bit and Bob Byte meet at institute; exclude institute's path.
  AssocSet bit = CdataSet(doc, {"Bit"});
  AssocSet bob = CdataSet(doc, {"Bob Byte"});
  auto unrestricted = MeetSet(doc, bit, bob);
  ASSERT_TRUE(unrestricted.ok());
  ASSERT_EQ(unrestricted->size(), 1u);
  EXPECT_EQ(doc.tag((*unrestricted)[0].meet), "institute");

  MeetOptions options;
  options.excluded_paths.insert(doc.path((*unrestricted)[0].meet));
  auto restricted = MeetSet(doc, bit, bob, options);
  ASSERT_TRUE(restricted.ok());
  EXPECT_TRUE(restricted->empty());
}

TEST(MeetSet, AllowedPathsWhitelist) {
  auto doc = MustShred(data::PaperExampleXml());
  AssocSet bit = CdataSet(doc, {"Bit"});
  AssocSet ben = CdataSet(doc, {"Ben"});
  Oid author = FindElement(doc, "author");

  MeetOptions allow_author;
  allow_author.allowed_paths.insert(doc.path(author));
  auto results = MeetSet(doc, bit, ben, allow_author);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ(doc.tag((*results)[0].meet), "author");

  MeetOptions allow_title;
  allow_title.allowed_paths.insert(
      doc.path(FindElement(doc, "title")));
  auto none = MeetSet(doc, bit, ben, allow_title);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST(MeetSet, MaxDistanceFilters) {
  auto doc = MustShred(data::PaperExampleXml());
  AssocSet bit = CdataSet(doc, {"Bit"});
  AssocSet ben = CdataSet(doc, {"Ben"});
  MeetOptions tight;
  tight.max_distance = 3;  // Ben/Bit are 4 edges apart
  auto results = MeetSet(doc, bit, ben, tight);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());

  MeetOptions loose;
  loose.max_distance = 4;
  results = MeetSet(doc, bit, ben, loose);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 1u);
}

TEST(MeetSet, WitnessDistanceMatchesPairDistance) {
  auto doc = MustShred(data::PaperExampleXml());
  AssocSet bit = CdataSet(doc, {"Bit"});
  AssocSet ben = CdataSet(doc, {"Ben"});
  auto results = MeetSet(doc, bit, ben);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  int pair_distance =
      Distance(doc, bit.nodes[0], ben.nodes[0]).ValueOrDie();
  EXPECT_EQ((*results)[0].witness_distance, pair_distance);
}

// ---- Stats ------------------------------------------------------------

TEST(MeetSet, ReportsStats) {
  auto doc = MustShred(data::PaperExampleXml());
  AssocSet bit = CdataSet(doc, {"Bit"});
  AssocSet ben = CdataSet(doc, {"Ben"});
  MeetSetStats stats;
  auto results = MeetSet(doc, bit, ben, {}, &stats);
  ASSERT_TRUE(results.ok());
  EXPECT_GT(stats.rounds, 0);
  EXPECT_EQ(stats.joins, 4);  // == the pair distance
  EXPECT_GE(stats.pairs_peak, 2u);
}

// ---- Attribute association sets ----------------------------------------

TEST(MeetSet, AttributeSetsMeetLikeTheirArcs) {
  auto doc = MustShred(data::PaperExampleXml());
  // Left: the @key attribute arcs (owners = articles); right: the year
  // cdatas. Each article's key meets its own year at the article.
  PathId key_path = bat::kInvalidPathId;
  PathId year_path = bat::kInvalidPathId;
  for (PathId path : doc.string_paths()) {
    std::string name = doc.paths().ToString(path);
    if (name == "bibliography/institute/article/@key") key_path = path;
    if (name == "bibliography/institute/article/year/cdata") {
      year_path = path;
    }
  }
  ASSERT_NE(key_path, bat::kInvalidPathId);
  ASSERT_NE(year_path, bat::kInvalidPathId);

  AssocSet keys;
  keys.path = key_path;
  const auto& key_table = doc.StringsAt(key_path);
  for (size_t row = 0; row < key_table.size(); ++row) {
    keys.nodes.push_back(key_table.head(row));
  }
  AssocSet years;
  years.path = year_path;
  const auto& year_table = doc.StringsAt(year_path);
  for (size_t row = 0; row < year_table.size(); ++row) {
    years.nodes.push_back(year_table.head(row));
  }
  ASSERT_EQ(keys.nodes.size(), 2u);
  ASSERT_EQ(years.nodes.size(), 2u);

  auto results = MeetSet(doc, keys, years);
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results->size(), 2u);
  for (const SetMeet& meet : *results) {
    EXPECT_EQ(doc.tag(meet.meet), "article");
    // @key arc (1) + year/cdata (2) = 3 edges.
    EXPECT_EQ(meet.witness_distance, 3);
  }
}

TEST(MeetSet, SameAttributePathBothSides) {
  auto doc = MustShred(data::PaperExampleXml());
  PathId key_path = bat::kInvalidPathId;
  for (PathId path : doc.string_paths()) {
    if (doc.paths().ToString(path) ==
        "bibliography/institute/article/@key") {
      key_path = path;
    }
  }
  ASSERT_NE(key_path, bat::kInvalidPathId);
  AssocSet keys;
  keys.path = key_path;
  const auto& table = doc.StringsAt(key_path);
  for (size_t row = 0; row < table.size(); ++row) {
    keys.nodes.push_back(table.head(row));
  }
  auto results = MeetSet(doc, keys, keys);
  ASSERT_TRUE(results.ok());
  // Each owner intersects with itself: two meets at the two articles.
  ASSERT_EQ(results->size(), 2u);
  for (const SetMeet& meet : *results) {
    EXPECT_EQ(doc.tag(meet.meet), "article");
  }
}

// ---- Property: agreement with pairwise meets on random trees ----------

class MeetSetProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MeetSetProperty, SingletonSetsReduceToMeetPair) {
  data::RandomTreeOptions options;
  options.seed = GetParam();
  options.target_elements = 200;
  auto generated = data::GenerateRandomTree(options);
  ASSERT_TRUE(generated.ok());
  auto shredded = model::Shred(*generated);
  ASSERT_TRUE(shredded.ok());
  const model::StoredDocument& doc = *shredded;

  util::Rng rng(GetParam() * 13 + 1);
  for (int trial = 0; trial < 50; ++trial) {
    Oid a = static_cast<Oid>(rng.NextBelow(doc.node_count()));
    Oid b = static_cast<Oid>(rng.NextBelow(doc.node_count()));
    AssocSet sa{doc.path(a), {a}};
    AssocSet sb{doc.path(b), {b}};
    auto set_result = MeetSet(doc, sa, sb);
    auto pair_result = MeetPair(doc, a, b);
    ASSERT_TRUE(set_result.ok() && pair_result.ok());
    ASSERT_EQ(set_result->size(), 1u);
    EXPECT_EQ((*set_result)[0].meet, pair_result->meet);
    EXPECT_EQ((*set_result)[0].witness_distance, pair_result->joins);
  }
}

TEST_P(MeetSetProperty, EveryReportedMeetIsAnAncestorOfItsWitnesses) {
  data::RandomTreeOptions options;
  options.seed = GetParam() + 500;
  options.target_elements = 300;
  options.tag_vocabulary = 3;  // heavy path sharing
  auto generated = data::GenerateRandomTree(options);
  ASSERT_TRUE(generated.ok());
  auto shredded = model::Shred(*generated);
  ASSERT_TRUE(shredded.ok());
  const model::StoredDocument& doc = *shredded;

  // Two sets: all nodes of the two most populous paths.
  std::vector<std::pair<size_t, PathId>> sizes;
  for (PathId p : doc.edge_paths()) {
    sizes.push_back({doc.EdgesAt(p).size(), p});
  }
  std::sort(sizes.rbegin(), sizes.rend());
  ASSERT_GE(sizes.size(), 2u);
  auto make_set = [&](PathId p) {
    AssocSet set;
    set.path = p;
    const auto& edges = doc.EdgesAt(p);
    for (size_t row = 0; row < edges.size(); ++row) {
      set.nodes.push_back(edges.tail(row));
    }
    return set;
  };
  AssocSet s1 = make_set(sizes[0].second);
  AssocSet s2 = make_set(sizes[1].second);

  auto results = MeetSet(doc, s1, s2);
  ASSERT_TRUE(results.ok());
  for (const SetMeet& meet : *results) {
    EXPECT_FALSE(meet.left_witnesses.empty());
    EXPECT_FALSE(meet.right_witnesses.empty());
    for (Oid w : meet.left_witnesses) {
      EXPECT_TRUE(doc.IsAncestorOrSelf(meet.meet, w));
    }
    for (Oid w : meet.right_witnesses) {
      EXPECT_TRUE(doc.IsAncestorOrSelf(meet.meet, w));
    }
    // Minimality: the meet is exactly the LCA of at least one
    // cross-pair of its witnesses.
    bool exact = false;
    for (Oid l : meet.left_witnesses) {
      for (Oid r : meet.right_witnesses) {
        if (ReferenceLca(doc, l, r) == meet.meet) exact = true;
      }
    }
    EXPECT_TRUE(exact) << "meet " << meet.meet
                       << " is not the LCA of any witness pair";
  }

  // Each input node appears in at most one result (pairs are consumed).
  std::vector<Oid> seen_left;
  for (const SetMeet& meet : *results) {
    for (Oid w : meet.left_witnesses) seen_left.push_back(w);
  }
  std::sort(seen_left.begin(), seen_left.end());
  EXPECT_TRUE(std::adjacent_find(seen_left.begin(), seen_left.end()) ==
              seen_left.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeetSetProperty,
                         ::testing::Values(3, 14, 159, 2653));

}  // namespace
}  // namespace core
}  // namespace meetxml
