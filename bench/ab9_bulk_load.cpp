// AB9 — ablation: the parallel bulk-load pipeline and persisted text
// indexes (the two halves of the MXM2 work).
//
// Part 1 measures parse+shred wall time: sequential streaming shredder
// vs. the parallel pipeline at 1/2/4/8 threads on the ab3 corpus
// shape. Expected shape: near-linear speedup with threads until the
// sequential merge pass dominates (Amdahl); the thread-1 pipeline run
// shows the splitter+merge overhead in isolation. (On a single-core
// machine all variants collapse to sequential speed.)
//
// Part 2 measures what a query process pays before its first text
// predicate: rebuilding the inverted/trigram indexes from the document
// vs. decoding them from the MXM2 TIDX section, and the end-to-end
// executor paths (image bytes -> executor with a hot index). Expected
// shape: decode beats rebuild by >5x — it never tokenizes a string.

#include <benchmark/benchmark.h>

#include <string>

#include "data/dblp_gen.h"
#include "model/bulk_load.h"
#include "model/shredder.h"
#include "model/storage_io.h"
#include "query/executor.h"
#include "text/index_io.h"
#include "text/search.h"
#include "xml/serializer.h"

using namespace meetxml;

namespace {

const std::string& SharedXml() {
  static std::string* xml_text = [] {
    data::DblpOptions options;
    options.icde_papers_per_year = 50;
    options.other_papers_per_year = 150;
    options.journal_articles_per_year = 50;
    auto generated = data::GenerateDblp(options);
    MEETXML_CHECK_OK(generated.status());
    xml::SerializeOptions serialize_options;
    serialize_options.indent = 1;
    return new std::string(xml::Serialize(*generated, serialize_options));
  }();
  return *xml_text;
}

const model::StoredDocument& SharedDoc() {
  static model::StoredDocument* doc = [] {
    auto shredded = model::ShredXmlTextStreaming(SharedXml());
    MEETXML_CHECK_OK(shredded.status());
    return new model::StoredDocument(std::move(*shredded));
  }();
  return *doc;
}

const text::InvertedIndex& SharedIndex() {
  static text::InvertedIndex* index = [] {
    auto built = text::InvertedIndex::Build(SharedDoc());
    MEETXML_CHECK_OK(built.status());
    return new text::InvertedIndex(std::move(*built));
  }();
  return *index;
}

// Image with the document only (the rebuild-from-scratch path).
const std::string& DocImage() {
  static std::string* bytes = [] {
    auto saved = text::SaveStoreToBytes(SharedDoc(), nullptr);
    MEETXML_CHECK_OK(saved.status());
    return new std::string(std::move(*saved));
  }();
  return *bytes;
}

// Image with the persisted TIDX section.
const std::string& IndexedImage() {
  static std::string* bytes = [] {
    auto saved = text::SaveStoreToBytes(SharedDoc(), &SharedIndex());
    MEETXML_CHECK_OK(saved.status());
    return new std::string(std::move(*saved));
  }();
  return *bytes;
}

// ---- Part 1: shred throughput -------------------------------------------

void BM_ShredSequential(benchmark::State& state) {
  const std::string& xml_text = SharedXml();
  size_t nodes = 0;
  for (auto _ : state) {
    auto doc = model::ShredXmlTextStreaming(xml_text);
    MEETXML_CHECK_OK(doc.status());
    nodes = doc->node_count();
    benchmark::DoNotOptimize(doc);
  }
  state.counters["xml_MB"] = static_cast<double>(xml_text.size()) / 1e6;
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_ShredSequential)->Unit(benchmark::kMillisecond);

void BM_ShredParallel(benchmark::State& state) {
  const std::string& xml_text = SharedXml();
  model::BulkLoadOptions options;
  options.threads = static_cast<unsigned>(state.range(0));
  options.min_parallel_bytes = 0;
  for (auto _ : state) {
    auto doc = model::BulkShredXmlText(xml_text, options);
    MEETXML_CHECK_OK(doc.status());
    benchmark::DoNotOptimize(doc);
  }
  state.counters["threads"] = static_cast<double>(options.threads);
}
BENCHMARK(BM_ShredParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// ---- Part 2: index rebuild vs. persisted decode -------------------------

void BM_IndexRebuild(benchmark::State& state) {
  const model::StoredDocument& doc = SharedDoc();
  for (auto _ : state) {
    auto index = text::InvertedIndex::Build(doc);
    MEETXML_CHECK_OK(index.status());
    benchmark::DoNotOptimize(index);
  }
  state.counters["postings"] =
      static_cast<double>(SharedIndex().posting_count());
}
BENCHMARK(BM_IndexRebuild)->Unit(benchmark::kMillisecond);

void BM_IndexDeserialize(benchmark::State& state) {
  static const std::string* bytes =
      new std::string(text::SerializeIndex(SharedIndex()));
  for (auto _ : state) {
    auto index = text::DeserializeIndex(*bytes);
    MEETXML_CHECK_OK(index.status());
    benchmark::DoNotOptimize(index);
  }
  state.counters["tidx_MB"] = static_cast<double>(bytes->size()) / 1e6;
}
BENCHMARK(BM_IndexDeserialize)->Unit(benchmark::kMillisecond);

// End-to-end: image bytes -> executor whose text index is hot. The
// rebuild path loads a doc-only image and pays InvertedIndex::Build;
// the persisted path decodes the TIDX section instead.
void BM_ExecutorFromImageRebuild(benchmark::State& state) {
  const std::string& bytes = DocImage();
  for (auto _ : state) {
    auto store = text::LoadStoreFromBytes(bytes);
    MEETXML_CHECK_OK(store.status());
    auto search = text::FullTextSearch::Build(store->doc);
    MEETXML_CHECK_OK(search.status());
    auto executor = query::Executor::Build(store->doc, std::move(*search));
    MEETXML_CHECK_OK(executor.status());
    benchmark::DoNotOptimize(executor);
  }
}
BENCHMARK(BM_ExecutorFromImageRebuild)->Unit(benchmark::kMillisecond);

void BM_ExecutorFromImagePersisted(benchmark::State& state) {
  const std::string& bytes = IndexedImage();
  for (auto _ : state) {
    auto store = text::LoadStoreFromBytes(bytes);
    MEETXML_CHECK_OK(store.status());
    auto executor = query::Executor::Build(
        store->doc,
        text::FullTextSearch::WithIndex(store->doc,
                                        std::move(*store->index)));
    MEETXML_CHECK_OK(executor.status());
    benchmark::DoNotOptimize(executor);
  }
}
BENCHMARK(BM_ExecutorFromImagePersisted)->Unit(benchmark::kMillisecond);

// Lazy executors make pure-structural workloads free of the index tax
// entirely; this pins the build cost that remains.
void BM_ExecutorBuildLazy(benchmark::State& state) {
  const model::StoredDocument& doc = SharedDoc();
  for (auto _ : state) {
    auto executor = query::Executor::Build(doc);
    MEETXML_CHECK_OK(executor.status());
    benchmark::DoNotOptimize(executor);
  }
}
BENCHMARK(BM_ExecutorBuildLazy)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
