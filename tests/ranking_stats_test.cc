// Tests for result ranking (paper §4) and document statistics.

#include <gtest/gtest.h>

#include "core/meet_general.h"
#include "core/ranking.h"
#include "data/dblp_gen.h"
#include "data/paper_example.h"
#include "model/shredder.h"
#include "model/stats.h"
#include "tests/test_util.h"
#include "text/search.h"

namespace meetxml {
namespace core {
namespace {

using meetxml::testing::FindCdataNode;
using meetxml::testing::MustShred;

std::vector<GeneralMeet> MeetsFor(const model::StoredDocument& doc,
                                  const std::vector<std::string>& terms) {
  auto search = text::FullTextSearch::Build(doc);
  EXPECT_TRUE(search.ok());
  auto matches = search->SearchAll(terms, text::MatchMode::kContains);
  EXPECT_TRUE(matches.ok());
  auto meets = MeetGeneral(
      doc, text::FullTextSearch::ToMeetInput(*matches));
  EXPECT_TRUE(meets.ok());
  return std::move(*meets);
}

TEST(Ranking, TighterMeetsRankFirst) {
  auto doc = MustShred(
      "<r><deep><x>aa</x><x>bb</x></deep>"
      "<l><m>aa</m></l><n><o>bb</o></n></r>");
  auto meets = MeetsFor(doc, {"aa", "bb"});
  ASSERT_EQ(meets.size(), 2u);
  auto ranked = RankMeets(doc, std::move(meets));
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(doc.tag(ranked[0].meet.meet), "deep");
  EXPECT_LT(ranked[0].score, ranked[1].score);
}

TEST(Ranking, SourceCoverageBeatsSameDistance) {
  // Two meets with equal witness distance; the one covering both terms
  // outranks the intra-term convergence.
  auto doc = MustShred(
      "<r><p><x>aa</x><y>bb</y></p><q><x>aa</x><x>aa</x></q></r>");
  auto meets = MeetsFor(doc, {"aa", "bb"});
  ASSERT_EQ(meets.size(), 2u);
  auto ranked = RankMeets(doc, std::move(meets));
  EXPECT_EQ(ranked[0].sources_covered, 2u);
  EXPECT_EQ(ranked[1].sources_covered, 1u);
}

TEST(Ranking, ComputesDocumentSpan) {
  auto doc = MustShred(data::PaperExampleXml());
  auto meets = MeetsFor(doc, {"Ben", "Bit"});
  ASSERT_EQ(meets.size(), 1u);
  Oid ben = FindCdataNode(doc, "Ben");
  Oid bit = FindCdataNode(doc, "Bit");
  auto ranked = RankMeets(doc, std::move(meets));
  EXPECT_EQ(ranked[0].document_span, bit > ben ? bit - ben : ben - bit);
}

TEST(Ranking, FilterBySourceCoverage) {
  auto doc = MustShred(
      "<r><p><x>aa</x><y>bb</y></p><q><x>aa</x><x>aa</x></q></r>");
  auto ranked = RankMeets(doc, MeetsFor(doc, {"aa", "bb"}));
  auto filtered = FilterBySourceCoverage(std::move(ranked), 2);
  ASSERT_EQ(filtered.size(), 1u);
  EXPECT_EQ(doc.tag(filtered[0].meet.meet), "p");
}

TEST(Ranking, EmptyInputYieldsEmpty) {
  auto doc = MustShred("<a/>");
  EXPECT_TRUE(RankMeets(doc, {}).empty());
  EXPECT_TRUE(FilterBySourceCoverage({}, 1).empty());
}

TEST(Ranking, CustomWeights) {
  auto doc = MustShred(data::PaperExampleXml());
  auto meets = MeetsFor(doc, {"Ben", "Bit"});
  RankingOptions heavy_distance;
  heavy_distance.witness_distance_weight = 100.0;
  auto ranked = RankMeets(doc, std::move(meets), heavy_distance);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_GT(ranked[0].score, 100.0);  // distance 4 * weight 100 dominates
}

}  // namespace
}  // namespace core

namespace model {
namespace {

using meetxml::testing::MustShred;

TEST(Stats, PaperExampleNumbers) {
  auto doc = MustShred(data::PaperExampleXml());
  auto stats = ComputeStats(doc);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->node_count, 19u);
  EXPECT_EQ(stats->element_count, 12u);
  EXPECT_EQ(stats->cdata_count, 7u);
  EXPECT_EQ(stats->string_count, 9u);
  EXPECT_EQ(stats->path_count, 14u);
  EXPECT_EQ(stats->max_depth, 6u);  // .../author/firstname/cdata
  EXPECT_GT(stats->avg_depth, 1.0);
  EXPECT_GE(stats->max_fanout, 3u);  // article has author+title+year
}

TEST(Stats, PathEntriesCoverEveryPath) {
  auto doc = MustShred(data::PaperExampleXml());
  auto stats = ComputeStats(doc);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->paths.size(), doc.paths().size());
  size_t nodes = 0;
  size_t strings = 0;
  for (const PathStats& entry : stats->paths) {
    nodes += entry.node_count;
    strings += entry.string_count;
  }
  EXPECT_EQ(nodes, doc.node_count());
  EXPECT_EQ(strings, doc.string_count());
}

TEST(Stats, StringBytesCounted) {
  auto doc = MustShred("<a><b>hello</b><b>world!</b></a>");
  auto stats = ComputeStats(doc);
  ASSERT_TRUE(stats.ok());
  size_t bytes = 0;
  for (const PathStats& entry : stats->paths) {
    bytes += entry.total_bytes;
  }
  EXPECT_EQ(bytes, 5u + 6u);
}

TEST(Stats, RenderListsLargestRelationsFirst) {
  data::DblpOptions options;
  options.end_year = 1985;
  auto generated = data::GenerateDblp(options);
  ASSERT_TRUE(generated.ok());
  auto doc = Shred(*generated);
  ASSERT_TRUE(doc.ok());
  auto stats = ComputeStats(*doc);
  ASSERT_TRUE(stats.ok());
  std::string text = RenderStats(*stats, 5);
  EXPECT_NE(text.find("nodes="), std::string::npos);
  EXPECT_NE(text.find("more relations"), std::string::npos);
  // The first listed relation is at least as big as the last.
  std::string full = RenderStats(*stats, 0);
  EXPECT_EQ(full.find("more relations"), std::string::npos);
}

TEST(Stats, RejectsUnfinalized) {
  StoredDocument doc;
  EXPECT_FALSE(ComputeStats(doc).ok());
}

}  // namespace
}  // namespace model
}  // namespace meetxml
