// Wall-clock timing for the benchmark harnesses.

#ifndef MEETXML_UTIL_TIMER_H_
#define MEETXML_UTIL_TIMER_H_

#include <chrono>

namespace meetxml {
namespace util {

/// \brief Simple steady-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// \brief Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// \brief Elapsed time since construction or last Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// \brief Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// \brief Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace util
}  // namespace meetxml

#endif  // MEETXML_UTIL_TIMER_H_
