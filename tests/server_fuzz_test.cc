// Fuzz-style robustness tests for the meetxmld wire path: truncated
// frames, oversized and zero length prefixes, garbage payload bytes,
// single-byte flips and pipelined/interleaved requests. The contract
// (server/tcp_server.h): a malformed request earns an error response,
// never a crash — and whatever the bytes were, no session leaks. The
// CI sanitize (ASan/UBSan) job runs this suite, so an out-of-bounds
// decode or a leaked session object fails loudly.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "server/protocol.h"
#include "server/service.h"
#include "server/tcp_server.h"
#include "store/catalog.h"
#include "tests/test_util.h"
#include "util/byte_io.h"
#include "util/net.h"

namespace meetxml {
namespace server {
namespace {

using meetxml::testing::MustShred;
using util::Result;

const store::Catalog& FuzzCatalog() {
  static store::Catalog* catalog = [] {
    auto* out = new store::Catalog;
    EXPECT_TRUE(
        out->Add("lib", MustShred("<doc><entry><title>corpus number one"
                                  "</title><year>1995</year></entry>"
                                  "</doc>"))
            .ok());
    return out;
  }();
  return *catalog;
}

// Every request the protocol can express, valid form.
std::vector<std::string> ValidPayloads() {
  std::vector<std::string> payloads;
  Request hello;
  hello.opcode = Opcode::kHello;
  hello.protocol_version = kProtocolVersion;
  payloads.push_back(EncodeRequest(hello));
  Request query;
  query.opcode = Opcode::kQuery;
  query.scope = "*";
  query.query = "SELECT COUNT(a) FROM *//cdata a";
  payloads.push_back(EncodeRequest(query));
  Request ping;
  ping.opcode = Opcode::kPing;
  payloads.push_back(EncodeRequest(ping));
  Request stats;
  stats.opcode = Opcode::kStats;
  payloads.push_back(EncodeRequest(stats));
  Request bye;
  bye.opcode = Opcode::kBye;
  payloads.push_back(EncodeRequest(bye));
  Request dump;
  dump.opcode = Opcode::kDump;
  payloads.push_back(EncodeRequest(dump));
  return payloads;
}

// One dispatch through the real path; the response must always decode.
void ExpectCleanResponse(QueryService::Connection* connection,
                         std::string_view payload) {
  std::string response_payload = connection->HandlePayload(payload);
  auto response = DecodeResponse(response_payload);
  EXPECT_TRUE(response.ok())
      << "server emitted an undecodable response: " << response.status();
}

TEST(ServerFuzz, EveryPayloadTruncationAnswersAnError) {
  QueryService service(&FuzzCatalog());
  for (const std::string& payload : ValidPayloads()) {
    auto connection = service.Connect();
    ASSERT_TRUE(connection.ok());
    for (size_t cut = 0; cut < payload.size(); ++cut) {
      std::string_view truncated(payload.data(), cut);
      ExpectCleanResponse(connection->get(), truncated);
    }
  }
  EXPECT_EQ(service.stats().sessions_active, 0u) << "leaked sessions";
}

TEST(ServerFuzz, EveryByteFlipAnswersSomethingDecodable) {
  QueryService service(&FuzzCatalog());
  for (const std::string& payload : ValidPayloads()) {
    for (uint8_t mask : {0x01, 0x40, 0xff}) {
      auto connection = service.Connect();
      ASSERT_TRUE(connection.ok());
      for (size_t at = 0; at < payload.size(); ++at) {
        std::string corrupt = payload;
        corrupt[at] = static_cast<char>(corrupt[at] ^ mask);
        // A flip may still be a well-formed request (e.g. a scope
        // byte) — the invariant is only "decodable response, no
        // crash, no leak".
        ExpectCleanResponse(connection->get(), corrupt);
        // Whatever session state the flip produced, BYE resets it so
        // the leak check below stays exact.
        Request bye;
        bye.opcode = Opcode::kBye;
        ExpectCleanResponse(connection->get(), EncodeRequest(bye));
      }
    }
  }
  EXPECT_EQ(service.stats().sessions_active, 0u) << "leaked sessions";
}

TEST(ServerFuzz, PseudoRandomGarbageNeverCrashes) {
  QueryService service(&FuzzCatalog());
  auto connection = service.Connect();
  ASSERT_TRUE(connection.ok());
  uint64_t state = 0x9e3779b97f4a7c15ULL;
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<uint8_t>(state >> 56);
  };
  for (int round = 0; round < 200; ++round) {
    std::string garbage(next() % 64, '\0');
    for (char& byte : garbage) byte = static_cast<char>(next());
    ExpectCleanResponse(connection->get(), garbage);
  }
  connection->reset();
  EXPECT_EQ(service.stats().sessions_active, 0u) << "leaked sessions";
}

TEST(ServerFuzz, FrameBufferRejectsHostileLengthPrefixes) {
  // Zero-length frame: framing error.
  {
    FrameBuffer frames;
    frames.Append(std::string(4, '\0'));
    auto next = frames.Next();
    EXPECT_FALSE(next.ok());
  }
  // Oversized length prefix: rejected before any allocation.
  {
    FrameBuffer frames;
    util::ByteWriter out;
    out.U32(kMaxFrameBytes + 1);
    frames.Append(out.Take());
    auto next = frames.Next();
    EXPECT_FALSE(next.ok());
    EXPECT_TRUE(next.status().IsResourceExhausted());
  }
  // 0xffffffff: the classic length-bomb.
  {
    FrameBuffer frames;
    frames.Append("\xff\xff\xff\xff");
    EXPECT_FALSE(frames.Next().ok());
  }
  // Largest legal frame passes intact.
  {
    FrameBuffer frames;
    std::string payload(kMaxFrameBytes, 'x');
    frames.Append(EncodeFrame(payload));
    auto next = frames.Next();
    ASSERT_TRUE(next.ok()) << next.status();
    ASSERT_TRUE(next->has_value());
    EXPECT_EQ(**next, payload);
  }
}

TEST(ServerFuzz, FrameBufferReassemblesDribbledAndPipelinedFrames) {
  std::vector<std::string> payloads = ValidPayloads();
  std::string wire;
  for (const std::string& payload : payloads) {
    wire += EncodeFrame(payload);
  }
  // Deliver the whole pipeline one byte at a time; the decoded frames
  // must come out intact and in order.
  FrameBuffer frames;
  std::vector<std::string> decoded;
  for (char byte : wire) {
    frames.Append(std::string_view(&byte, 1));
    for (;;) {
      auto next = frames.Next();
      ASSERT_TRUE(next.ok()) << next.status();
      if (!next->has_value()) break;
      decoded.push_back(**next);
    }
  }
  ASSERT_EQ(decoded.size(), payloads.size());
  for (size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(decoded[i], payloads[i]) << "frame " << i;
  }
  EXPECT_EQ(frames.buffered(), 0u);
}

TEST(ServerFuzz, ProtocolRoundTripsEveryOpcode) {
  for (const std::string& payload : ValidPayloads()) {
    auto request = DecodeRequest(payload);
    ASSERT_TRUE(request.ok()) << request.status();
    EXPECT_EQ(EncodeRequest(*request), payload);
  }
  // Responses: ok and error forms for each opcode.
  for (Opcode opcode : {Opcode::kHello, Opcode::kQuery, Opcode::kPing,
                        Opcode::kStats, Opcode::kBye, Opcode::kDump}) {
    Response ok_response;
    ok_response.ok = true;
    ok_response.opcode = opcode;
    ok_response.session_id = 7;
    ok_response.banner = "meetxmld/1";
    ok_response.row_count = 3;
    ok_response.table = "doc meet\n";
    ok_response.stats.queries_served = 11;
    std::string encoded = EncodeResponse(ok_response);
    auto decoded = DecodeResponse(encoded);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(EncodeResponse(*decoded), encoded);

    std::string error_encoded = EncodeErrorResponse(
        opcode, util::Status::InvalidArgument("fuzz"));
    auto error_decoded = DecodeResponse(error_encoded);
    ASSERT_TRUE(error_decoded.ok()) << error_decoded.status();
    EXPECT_FALSE(error_decoded->ok);
    EXPECT_EQ(error_decoded->message, "fuzz");
  }
  // Trailing bytes are rejected on both sides.
  std::string trailing = ValidPayloads()[2] + "x";
  EXPECT_FALSE(DecodeRequest(trailing).ok());
}

// The v2 surfaces under hostile bytes: a histogram-bearing kStats body
// and a kDump body are truncated at every prefix and bit-flipped at
// every byte. The decoder must answer cleanly (ok or error, never a
// crash — ASan/UBSan police the rest). Anything it does accept must
// canonicalize in one re-encode (a flip can pad a varint into a
// non-minimal form, so the corrupt bytes themselves need not be
// canonical — but the decoded value's encoding is a fixed point).
TEST(ServerFuzz, StatsV2AndDumpResponsesSurviveHostileBytes) {
  std::vector<Response> responses;
  Response v2;
  v2.ok = true;
  v2.opcode = Opcode::kStats;
  v2.stats.version = 2;
  v2.stats.sessions_active = 3;
  v2.stats.queries_served = 1000;
  v2.stats.request_errors = 17;
  v2.stats.sessions_evicted = 2;
  v2.stats.histograms.push_back(StatsHistogramEntry{
      "meetxml_server_request_us{op=\"query\"}", 1000, 123456, 63, 255,
      1023});
  v2.stats.histograms.push_back(StatsHistogramEntry{
      "meetxml_query_stage_us{stage=\"decode\"}", 2, 40000, 16383, 32767,
      32767});
  responses.push_back(v2);
  Response v1 = v2;
  v1.stats.version = 1;
  v1.stats.histograms.clear();
  responses.push_back(v1);
  Response dump;
  dump.ok = true;
  dump.opcode = Opcode::kDump;
  dump.dump =
      "# TYPE meetxml_server_queries_total counter\n"
      "meetxml_server_queries_total 1000\n"
      "# querylog when_ms=5 session=1 ok=1 slow=0 total_us=40"
      " rows=2 scope=\"*\" query=\"SELECT \\\"q\\\"\"\n";
  responses.push_back(dump);

  auto expect_canonical_fixed_point = [](const Response& accepted) {
    std::string canonical = EncodeResponse(accepted);
    auto again = DecodeResponse(canonical);
    ASSERT_TRUE(again.ok()) << again.status();
    EXPECT_EQ(EncodeResponse(*again), canonical);
  };
  for (const Response& response : responses) {
    std::string encoded = EncodeResponse(response);
    auto decoded = DecodeResponse(encoded);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(EncodeResponse(*decoded), encoded);
    for (size_t cut = 0; cut < encoded.size(); ++cut) {
      auto truncated =
          DecodeResponse(std::string_view(encoded.data(), cut));
      if (truncated.ok()) expect_canonical_fixed_point(*truncated);
    }
    for (uint8_t mask : {0x01, 0x40, 0xff}) {
      for (size_t at = 0; at < encoded.size(); ++at) {
        std::string corrupt = encoded;
        corrupt[at] = static_cast<char>(corrupt[at] ^ mask);
        auto flipped = DecodeResponse(corrupt);
        if (flipped.ok()) expect_canonical_fixed_point(*flipped);
      }
    }
  }
}

// The v2 busy frame (status byte 2, the shed reply) under the same
// hostile-bytes contract: truncations at every prefix and bit flips at
// every byte must decode cleanly or be rejected, and anything accepted
// must canonicalize in one re-encode. The v1 shape of the same shed —
// EncodeBusyResponse with a negotiated version below 2 — must never
// emit status byte 2 at all (a v1 decoder would reject the frame).
TEST(ServerFuzz, BusyResponsesSurviveHostileBytes) {
  std::string encoded = EncodeBusyResponse(
      Opcode::kQuery, /*retry_after_ms=*/250,
      "server overloaded: admission queue is full",
      /*negotiated_version=*/2);
  ASSERT_FALSE(encoded.empty());
  EXPECT_EQ(static_cast<uint8_t>(encoded[0]), 2u);
  auto decoded = DecodeResponse(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->busy);
  EXPECT_FALSE(decoded->ok);
  EXPECT_EQ(decoded->retry_after_ms, 250u);
  EXPECT_EQ(decoded->code, util::StatusCode::kUnavailable);
  EXPECT_EQ(EncodeResponse(*decoded), encoded);

  auto expect_canonical_fixed_point = [](const Response& accepted) {
    std::string canonical = EncodeResponse(accepted);
    auto again = DecodeResponse(canonical);
    ASSERT_TRUE(again.ok()) << again.status();
    EXPECT_EQ(EncodeResponse(*again), canonical);
  };
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    auto truncated = DecodeResponse(std::string_view(encoded.data(), cut));
    if (truncated.ok()) expect_canonical_fixed_point(*truncated);
  }
  for (uint8_t mask : {0x01, 0x40, 0xff}) {
    for (size_t at = 0; at < encoded.size(); ++at) {
      std::string corrupt = encoded;
      corrupt[at] = static_cast<char>(corrupt[at] ^ mask);
      auto flipped = DecodeResponse(corrupt);
      if (flipped.ok()) expect_canonical_fixed_point(*flipped);
    }
  }

  // The v1 fallback: a plain error frame with the hint folded into the
  // message — never status byte 2.
  std::string legacy = EncodeBusyResponse(
      Opcode::kQuery, /*retry_after_ms=*/250, "server overloaded",
      /*negotiated_version=*/1);
  ASSERT_FALSE(legacy.empty());
  EXPECT_EQ(static_cast<uint8_t>(legacy[0]), 1u);
  auto legacy_decoded = DecodeResponse(legacy);
  ASSERT_TRUE(legacy_decoded.ok()) << legacy_decoded.status();
  EXPECT_FALSE(legacy_decoded->ok);
  EXPECT_FALSE(legacy_decoded->busy);
  EXPECT_NE(legacy_decoded->message.find("retry in ~250ms"),
            std::string::npos);
}

// Version negotiation under the same no-crash contract: a v1 client on
// a v2 server only ever sees the legacy four-varint stats body, and a
// from-the-future HELLO is refused without touching the connection.
TEST(ServerFuzz, VersionSkewNeverLeaksTheV2Extension) {
  QueryService service(&FuzzCatalog());
  auto connection = service.Connect();
  ASSERT_TRUE(connection.ok());

  Request hello;
  hello.opcode = Opcode::kHello;
  hello.protocol_version = kProtocolVersion + 1;  // the future
  auto refused = DecodeResponse(
      (*connection)->HandlePayload(EncodeRequest(hello)));
  ASSERT_TRUE(refused.ok());
  EXPECT_FALSE(refused->ok);
  EXPECT_EQ((*connection)->protocol_version(), 1u);

  hello.protocol_version = 1;  // an old client
  auto greeted = DecodeResponse(
      (*connection)->HandlePayload(EncodeRequest(hello)));
  ASSERT_TRUE(greeted.ok());
  ASSERT_TRUE(greeted->ok);

  Request stats;
  stats.opcode = Opcode::kStats;
  std::string payload = (*connection)->HandlePayload(EncodeRequest(stats));
  auto decoded = DecodeResponse(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_TRUE(decoded->ok);
  EXPECT_EQ(decoded->stats.version, 1u);
  EXPECT_TRUE(decoded->stats.histograms.empty());
  // Byte-exact: the payload IS the legacy encoding of what it carries.
  Response expected;
  expected.ok = true;
  expected.opcode = Opcode::kStats;
  expected.stats = decoded->stats;
  EXPECT_EQ(payload, EncodeResponse(expected));
}

TEST(ServerFuzz, TcpGarbageGetsOneErrorThenTheSessionIsReleased) {
  store::Catalog catalog;
  ASSERT_TRUE(
      catalog.Add("lib", MustShred("<doc><t>x</t></doc>")).ok());
  QueryService service(&catalog);
  auto server = TcpServer::Start(&service);
  ASSERT_TRUE(server.ok()) << server.status();

  // A client that greets properly, then turns hostile: the server
  // answers the garbage frame with one framed error and hangs up,
  // releasing the session.
  auto fd = util::ConnectTcp("localhost", (*server)->port());
  ASSERT_TRUE(fd.ok());
  Request hello;
  hello.opcode = Opcode::kHello;
  hello.protocol_version = kProtocolVersion;
  ASSERT_TRUE(
      util::WriteFull(*fd, EncodeFrame(EncodeRequest(hello))).ok());
  uint32_t length = 0;
  ASSERT_TRUE(util::ReadFull(*fd, &length, sizeof(length)).ok());
  std::string greeting(length, '\0');
  ASSERT_TRUE(util::ReadFull(*fd, greeting.data(), length).ok());
  ASSERT_EQ(service.stats().sessions_active, 1u);

  ASSERT_TRUE(util::WriteFull(*fd, "\xff\xff\xff\xffgarbage").ok());
  ASSERT_TRUE(util::ReadFull(*fd, &length, sizeof(length)).ok());
  std::string error_payload(length, '\0');
  ASSERT_TRUE(
      util::ReadFull(*fd, error_payload.data(), length).ok());
  auto error_response = DecodeResponse(error_payload);
  ASSERT_TRUE(error_response.ok()) << error_response.status();
  EXPECT_FALSE(error_response->ok);

  // The connection is dead; once the server reaps it, the session is
  // gone. Stop() forces that synchronously.
  util::CloseSocket(*fd);
  (*server)->Stop();
  EXPECT_EQ(service.stats().sessions_active, 0u) << "leaked session";
}

}  // namespace
}  // namespace server
}  // namespace meetxml
