// Answer presentation: turning meet results into browsable answers.
//
// Paper §4: "a good approach is to combine the meet operator with
// fulltext search and use the results as a starting point for
// displaying and browsing." This module builds the display form: the
// context path from the root (the user's orientation in an unknown
// schema), a truncated XML snippet of the concept, and a helper to
// climb from a deep meet node to the enclosing domain concept (e.g.
// the publication element containing a matched title cdata).

#ifndef MEETXML_CORE_BROWSE_H_
#define MEETXML_CORE_BROWSE_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "core/meet_general.h"
#include "util/result.h"

namespace meetxml {
namespace core {

/// \brief Presentation knobs.
struct BrowseOptions {
  /// Snippets longer than this many bytes are cut with an ellipsis.
  size_t max_snippet_bytes = 400;
  /// Pretty-print indentation of snippets (0 = compact).
  int snippet_indent = 2;
  /// Stop after this many answers (0 = all).
  size_t max_answers = 0;
};

/// \brief One displayable answer.
struct Answer {
  Oid node;
  /// Tags from the root to the node, e.g. {"bibliography",
  /// "institute", "article"} — the user's breadcrumb.
  std::vector<std::string> context;
  /// Truncated serialized subtree.
  std::string snippet;
  bool snippet_truncated = false;
  int witness_distance = 0;
  size_t witness_count = 0;
};

/// \brief Builds answers from meet results, in the given order.
util::Result<std::vector<Answer>> BuildAnswers(
    const StoredDocument& doc, const std::vector<GeneralMeet>& meets,
    const BrowseOptions& options = {});

/// \brief Climbs from `node` to the nearest ancestor-or-self whose tag
/// is in `concept_tags`; returns the root if none matches. The helper
/// for "show me the publication, not the matched cdata".
Oid EnclosingConcept(const StoredDocument& doc, Oid node,
                     const std::unordered_set<std::string>& concept_tags);

/// \brief Renders an answer as display text:
///   bibliography > institute > article   (distance 5, 2 witnesses)
///   <article key="BB99">...
std::string RenderAnswer(const Answer& answer);

}  // namespace core
}  // namespace meetxml

#endif  // MEETXML_CORE_BROWSE_H_
