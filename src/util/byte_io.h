// Little-endian byte codec shared by the binary persistence layers
// (model/storage_io, text/index_io): fixed-width integers, LEB128
// varints, and length-prefixed strings over one bounds-checked cursor,
// so framing fixes land in exactly one place.

#ifndef MEETXML_UTIL_BYTE_IO_H_
#define MEETXML_UTIL_BYTE_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.h"

namespace meetxml {
namespace util {

/// \brief Append-only encoder. Integers are little-endian; Varint is
/// LEB128; strings carry an explicit length prefix (u32 or varint —
/// pick one per format and stick with it).
class ByteWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) {
    // Explicit little-endian shifts, not a memcpy of the host
    // representation — the format stays as documented on any host.
    const char bytes[4] = {
        static_cast<char>(v), static_cast<char>(v >> 8),
        static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
    out_.append(bytes, sizeof(bytes));
  }
  void U64(uint64_t v) {
    const char bytes[8] = {
        static_cast<char>(v),       static_cast<char>(v >> 8),
        static_cast<char>(v >> 16), static_cast<char>(v >> 24),
        static_cast<char>(v >> 32), static_cast<char>(v >> 40),
        static_cast<char>(v >> 48), static_cast<char>(v >> 56)};
    out_.append(bytes, sizeof(bytes));
  }
  void Varint(uint64_t v) {
    while (v >= 0x80) {
      U8(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    U8(static_cast<uint8_t>(v));
  }
  void StrU32(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }
  void StrVarint(std::string_view s) {
    Varint(s.size());
    out_.append(s.data(), s.size());
  }
  /// \brief Appends raw bytes with no framing — the caller's format
  /// carries the length. The columnar payloads emit whole integer
  /// columns this way, one append per column.
  void Bytes(std::string_view s) { out_.append(s.data(), s.size()); }
  /// \brief Zero-pads to the next 4-byte boundary (relative to the
  /// start of this writer's output). The aligned columnar payload
  /// emits this before raw u32 columns so a mapped image can serve
  /// them as typed views without misaligned loads.
  void AlignTo4() {
    while (out_.size() % 4 != 0) out_.push_back('\0');
  }
  size_t size() const { return out_.size(); }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// \brief Bounds-checked decoder over a borrowed byte range. Every
/// read reports a clean UnexpectedEof instead of running off the end.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  Result<uint8_t> U8() {
    MEETXML_RETURN_NOT_OK(Need(1));
    return static_cast<uint8_t>(bytes_[pos_++]);
  }
  Result<uint32_t> U32() {
    MEETXML_RETURN_NOT_OK(Need(4));
    const auto* p =
        reinterpret_cast<const unsigned char*>(bytes_.data() + pos_);
    uint32_t v = static_cast<uint32_t>(p[0]) |
                 static_cast<uint32_t>(p[1]) << 8 |
                 static_cast<uint32_t>(p[2]) << 16 |
                 static_cast<uint32_t>(p[3]) << 24;
    pos_ += 4;
    return v;
  }
  Result<uint64_t> U64() {
    MEETXML_RETURN_NOT_OK(Need(8));
    const auto* p =
        reinterpret_cast<const unsigned char*>(bytes_.data() + pos_);
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = v << 8 | p[i];
    pos_ += 8;
    return v;
  }
  Result<uint64_t> Varint() {
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      MEETXML_ASSIGN_OR_RETURN(uint8_t byte, U8());
      v |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return v;
    }
    return Status::InvalidArgument("corrupt payload: varint overflow");
  }
  Result<std::string> StrU32() {
    MEETXML_ASSIGN_OR_RETURN(uint32_t size, U32());
    return Chars(size);
  }
  Result<std::string> StrVarint() {
    MEETXML_ASSIGN_OR_RETURN(uint64_t size, Varint());
    return Chars(size);
  }
  /// \brief Zero-copy StrU32: the view borrows from the underlying
  /// bytes, so it stays valid only as long as they do. Lets decoders
  /// skip the per-string allocation StrU32 pays.
  Result<std::string_view> StrViewU32() {
    MEETXML_ASSIGN_OR_RETURN(uint32_t size, U32());
    return View(size);
  }
  /// \brief Borrows the next `n` bytes and advances — the bulk read
  /// behind memcpy-decodable integer columns.
  Result<std::string_view> View(uint64_t n) {
    MEETXML_RETURN_NOT_OK(Need(n));
    std::string_view out = bytes_.substr(pos_, static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return out;
  }

  /// \brief Consumes the padding ByteWriter::AlignTo4 emitted. The
  /// bytes must be zero — anything else is corruption, and letting it
  /// slide would break the image byte-determinism the round-trip
  /// tests pin.
  Status AlignTo4() {
    while (pos_ % 4 != 0) {
      MEETXML_ASSIGN_OR_RETURN(uint8_t byte, U8());
      if (byte != 0) {
        return Status::InvalidArgument(
            "corrupt payload: nonzero alignment padding at offset ",
            pos_ - 1);
      }
    }
    return Status::OK();
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }
  size_t pos() const { return pos_; }
  size_t remaining() const { return bytes_.size() - pos_; }
  std::string_view bytes() const { return bytes_; }
  /// \brief Repositions the cursor after an external fast-path decode
  /// over bytes(); `pos` must not exceed the underlying size.
  void set_pos(size_t pos) { pos_ = pos <= bytes_.size() ? pos : pos_; }

  Status Need(uint64_t n) {
    if (n > bytes_.size() - pos_) {
      return Status::UnexpectedEof("truncated payload at offset ", pos_);
    }
    return Status::OK();
  }

 private:
  Result<std::string> Chars(uint64_t size) {
    MEETXML_RETURN_NOT_OK(Need(size));
    std::string out(bytes_.substr(pos_, static_cast<size_t>(size)));
    pos_ += static_cast<size_t>(size);
    return out;
  }

  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace util
}  // namespace meetxml

#endif  // MEETXML_UTIL_BYTE_IO_H_
