// Full-text search facade: turns search terms into the uniformly-typed
// association sets the meet operators consume.

#ifndef MEETXML_TEXT_SEARCH_H_
#define MEETXML_TEXT_SEARCH_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/input_set.h"
#include "text/inverted_index.h"
#include "util/result.h"

namespace meetxml {
namespace text {

/// \brief How a term matches a stored string.
enum class MatchMode {
  /// Case-sensitive substring — the paper's `contains` predicate.
  kContains,
  /// Case-insensitive substring.
  kContainsIgnoreCase,
  /// Whole word (tokenized, case-folded).
  kWord,
  /// Consecutive words, case-folded and punctuation-insensitive:
  /// "how to hack" matches the title "How to Hack". Resolved by
  /// intersecting the word postings of every phrase token, then
  /// verifying adjacency against the stored strings.
  kPhrase,
};

/// \brief All matches of one term, grouped by schema path — exactly the
/// input shape of meet (paper §3.2: results of a full-text query "may be
/// distributed over a large number of relations").
struct TermMatches {
  std::string term;
  std::vector<core::AssocSet> sets;

  size_t total() const {
    size_t n = 0;
    for (const auto& set : sets) n += set.nodes.size();
    return n;
  }
};

/// \brief Full-text search engine over one stored document.
class FullTextSearch {
 public:
  /// \brief Builds the word and trigram indexes over `doc`. The document
  /// must outlive this object.
  static util::Result<FullTextSearch> Build(const StoredDocument& doc,
                                            const IndexOptions& options = {});

  /// \brief Wraps a pre-built index — e.g. one deserialized from an
  /// MXM2 image (text/index_io.h) — skipping construction entirely.
  /// The index must have been built over `doc` (or validated against
  /// it); the document must outlive this object.
  static FullTextSearch WithIndex(const StoredDocument& doc,
                                  InvertedIndex index) {
    return FullTextSearch(&doc, std::move(index));
  }

  /// \brief Matches of one term under the given mode. Sets are grouped
  /// by path, each with sorted, unique node OIDs.
  util::Result<TermMatches> Search(std::string_view term,
                                   MatchMode mode) const;

  /// \brief Searches several terms; the result vector is parallel to
  /// `terms`. Feeding all sets of all terms into MeetGeneral computes the
  /// paper's "meet of full-text results" queries.
  util::Result<std::vector<TermMatches>> SearchAll(
      const std::vector<std::string>& terms, MatchMode mode) const;

  /// \brief Flattens term matches into MeetGeneral input, with each
  /// term's sets carrying a distinct source range.
  static std::vector<core::AssocSet> ToMeetInput(
      const std::vector<TermMatches>& matches);

  /// \brief Like ToMeetInput, and also fills `source_terms` with the
  /// index of the originating term for every flattened set — the
  /// `source_groups` mapping RankMeets uses to count term coverage.
  static std::vector<core::AssocSet> ToMeetInput(
      const std::vector<TermMatches>& matches,
      std::vector<size_t>* source_terms);

  const InvertedIndex& index() const { return index_; }

 private:
  FullTextSearch(const StoredDocument* doc, InvertedIndex index)
      : doc_(doc), index_(std::move(index)) {}

  /// Scans every string BAT with a substring predicate (the fallback
  /// when the trigram index cannot prune).
  std::vector<Posting> ScanContains(std::string_view needle,
                                    bool ignore_case) const;

  /// Groups verified postings into per-path association sets.
  static std::vector<core::AssocSet> GroupByPath(
      std::vector<Posting> postings);

  const StoredDocument* doc_;
  InvertedIndex index_;
};

}  // namespace text
}  // namespace meetxml

#endif  // MEETXML_TEXT_SEARCH_H_
