// TAB1 — reproduces the paper's introduction comparison (the implicit
// table of §1/§3.2): the answer-set cardinality of the regular-path-
// expression baseline (every match combination implies all its common
// ancestors) versus the meet operator, on the Figure 1 document and on
// growing DBLP-shaped bibliographies.
//
// Expected shape: the meet answer is a small, strict subset; the
// baseline grows multiplicatively with match counts ("a combinatorial
// explosion of the result size", §1) while the meet stays proportional
// to the number of genuinely related concepts.

#include <cstdio>
#include <string>

#include "data/dblp_gen.h"
#include "data/paper_example.h"
#include "model/shredder.h"
#include "query/executor.h"

using namespace meetxml;

namespace {

void RunComparison(const query::Executor& executor, const char* label,
                   const std::string& from_clause,
                   const std::string& term_a, const std::string& term_b,
                   const std::string& exclude) {
  std::string where = " where o1 contains '" + term_a +
                      "' and o2 contains '" + term_b + "'";
  auto baseline = executor.ExecuteText(
      "select ancestors(o1, o2) from " + from_clause + where + " limit 0");
  MEETXML_CHECK_OK(baseline.status());
  auto meet = executor.ExecuteText("select meet(o1, o2) from " +
                                   from_clause + where + exclude);
  MEETXML_CHECK_OK(meet.status());

  double reduction =
      baseline->total_ancestor_rows == 0
          ? 0.0
          : static_cast<double>(baseline->total_ancestor_rows) /
                std::max<size_t>(1, meet->meets.size());
  std::printf("%-28s  %10s %10s  %12llu  %11zu  %9.1fx\n", label,
              term_a.c_str(), term_b.c_str(),
              static_cast<unsigned long long>(
                  baseline->total_ancestor_rows),
              meet->meets.size(), reduction);
}

}  // namespace

int main() {
  std::printf("# TAB1: answer-set reduction, regular-path-expression "
              "baseline vs meet\n");
  std::printf("%-28s  %10s %10s  %12s  %11s  %10s\n", "# document",
              "term1", "term2", "baseline", "meet", "reduction");

  {
    auto doc = model::ShredXmlText(data::PaperExampleXml());
    MEETXML_CHECK_OK(doc.status());
    auto executor = query::Executor::Build(*doc);
    MEETXML_CHECK_OK(executor.status());
    RunComparison(*executor, "paper-fig1", "bibliography//cdata o1, "
                  "bibliography//cdata o2", "Bit", "1999", "");
  }

  for (int icde : {10, 30, 60}) {
    data::DblpOptions options;
    options.icde_papers_per_year = icde;
    options.other_papers_per_year = icde * 2;
    options.journal_articles_per_year = icde;
    options.end_year = 1994;
    auto generated = data::GenerateDblp(options);
    MEETXML_CHECK_OK(generated.status());
    auto doc = model::Shred(*generated);
    MEETXML_CHECK_OK(doc.status());
    auto executor = query::Executor::Build(*doc);
    MEETXML_CHECK_OK(executor.status());

    std::string label = "dblp-" + std::to_string(doc->node_count());
    RunComparison(*executor, label.c_str(),
                  "dblp//cdata o1, dblp//cdata o2", "ICDE", "1990",
                  " exclude dblp");
  }

  std::printf("# expected shape: meet answers are a small strict subset; "
              "reduction grows with document size\n");
  return 0;
}
