// Per-query stage tracing and the ring-buffered query log.
//
// A QueryTrace rides along one query dispatch and collects where the
// time went, in the stages of the multi-document pipeline
// (store/multi_executor.h): parse -> route/scope match -> per-document
// lazy decode -> per-document executor/index build -> per-document
// execute -> global merge/re-rank. The decode and index-build stages
// surface the lazy-open debt a query pays on first touch
// (store/catalog.h's PendingDecode): after a lazy open, the first
// query against a document carries nonzero decode time and later ones
// carry none — exactly the breakdown "where did this query's 40 ms
// go?" needs.
//
// The trace carries its own microsecond clock so tests inject a fake
// and pin stage times exactly (no wall-clock sleeps). Stage
// accumulators are atomics because the per-document stages run on the
// fan-out pool; per-document slots are pre-sized before the fan-out
// and each worker writes only its own index, so the vector itself
// needs no lock (the ParallelFor join publishes the writes).
//
// Finished traces land in a QueryLog — a fixed-capacity ring of the
// most recent queries with a slow-query flag — which kDump renders so
// a live server's recent history is one opcode away.

#ifndef MEETXML_OBS_TRACE_H_
#define MEETXML_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace meetxml {
namespace obs {

/// \brief The stages of one multi-document query dispatch.
enum class Stage : uint8_t {
  kParse = 0,
  kRoute = 1,
  kDecode = 2,
  kIndexBuild = 3,
  kExecute = 4,
  kMerge = 5,
};
inline constexpr size_t kStageCount = 6;

/// \brief Exposition label of a stage ("parse", "route", "decode",
/// "index_build", "execute", "merge").
std::string_view StageName(Stage stage);

/// \brief One document's share of a traced query. Each fan-out worker
/// owns exactly one slot (no locking; see the class comment).
struct DocTrace {
  std::string name;
  uint64_t decode_us = 0;
  uint64_t index_build_us = 0;
  uint64_t execute_us = 0;
  uint64_t rows = 0;
  /// Top-k pruning breakdown (store/multi_executor.h): answers this
  /// document materialized vs. qualifying answers it skipped via limit
  /// pushdown, the bounded heap, or the shared distance ceiling.
  uint64_t rows_examined = 0;
  uint64_t rows_pruned = 0;
};

/// \brief Collects stage timings for one query dispatch.
class QueryTrace {
 public:
  /// Null clock means MonotonicMicros. Tests inject a stepping fake.
  explicit QueryTrace(std::function<uint64_t()> clock_us = {})
      : clock_us_(std::move(clock_us)) {}

  uint64_t Now() const {
    return clock_us_ ? clock_us_() : MonotonicMicros();
  }

  /// \brief Attributes `us` to a stage. Callable from fan-out workers.
  void Add(Stage stage, uint64_t us) {
    stage_us_[static_cast<size_t>(stage)].fetch_add(
        us, std::memory_order_relaxed);
  }

  uint64_t stage_us(Stage stage) const {
    return stage_us_[static_cast<size_t>(stage)].load(
        std::memory_order_relaxed);
  }

  /// \brief Sum of every stage accumulator.
  uint64_t TotalStageUs() const;

  /// \brief Pre-sizes the per-document slots (one per routed
  /// document). Call before the fan-out; workers then fill slot i for
  /// document i only.
  void SetDocs(const std::vector<std::string>& names);
  DocTrace* doc(size_t index) { return &docs_[index]; }
  const std::vector<DocTrace>& docs() const { return docs_; }

 private:
  std::function<uint64_t()> clock_us_;
  std::atomic<uint64_t> stage_us_[kStageCount] = {};
  std::vector<DocTrace> docs_;
};

/// \brief RAII span: measures from construction to Stop()/destruction
/// on the trace's clock and attributes the elapsed time to `stage` —
/// and, when `also` is given, to a per-document slot field. Null trace
/// makes the span free (no clock reads). Spans nest: a child span's
/// time is also inside its enclosing span's wall time, so sibling
/// stages decompose their parent.
class TraceSpan {
 public:
  TraceSpan(QueryTrace* trace, Stage stage, uint64_t* also = nullptr)
      : trace_(trace), stage_(stage), also_(also),
        start_(trace ? trace->Now() : 0) {}
  ~TraceSpan() { Stop(); }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// \brief Ends the span early; idempotent. Returns the elapsed
  /// microseconds (0 for a null trace).
  uint64_t Stop();

 private:
  QueryTrace* trace_;
  Stage stage_;
  uint64_t* also_;
  uint64_t start_;
  bool stopped_ = false;
  uint64_t elapsed_ = 0;
};

/// \brief One finished query in the log.
struct QueryLogEntry {
  uint64_t when_ms = 0;
  uint64_t session_id = 0;
  std::string scope;
  std::string query;  // truncated to a display budget by the pusher
  uint64_t total_us = 0;
  uint64_t stage_us[kStageCount] = {};
  uint64_t rows = 0;
  bool ok = false;
  bool slow = false;
};

/// \brief Fixed-capacity ring of the most recent queries. Push is one
/// short mutex hold per finished query (not per hot-path event);
/// Snapshot returns oldest-first.
class QueryLog {
 public:
  explicit QueryLog(size_t capacity = 256)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void Push(QueryLogEntry entry);
  std::vector<QueryLogEntry> Snapshot() const;
  /// \brief Total entries ever pushed (>= Snapshot().size()).
  uint64_t total_pushed() const;
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<QueryLogEntry> entries_;
  uint64_t total_pushed_ = 0;
};

/// \brief Records a finished trace's stage breakdown into `registry`
/// as `meetxml_query_stage_us{stage="…"}` histograms (one sample per
/// non-empty stage; per-document stages one sample per document) and
/// bumps `meetxml_query_rows_total`. Shared by the service dispatch
/// and the interactive shell so both expose the same series.
void RecordStageHistograms(MetricsRegistry* registry,
                           const QueryTrace& trace, uint64_t rows);

}  // namespace obs
}  // namespace meetxml

#endif  // MEETXML_OBS_TRACE_H_
