// StoredDocument: the Monet transform of an XML document (paper
// Definition 4) — the physical data model the meet operators run on.
//
// Two complementary views of the same data are kept:
//  * Per-path BAT relations (edges and string leaves), named by their
//    schema path — the relational view the set-at-a-time algorithms join
//    over.
//  * Dense per-OID arrays (parent, path, rank) — MonetDB-style positional
//    columns; `parent()` is the paper's O(1) "hash look-up" used by the
//    pairwise meet.
//
// OIDs are assigned in depth-first document order by the shredder, so
// `a < b` implies a precedes b in document order.

#ifndef MEETXML_MODEL_DOCUMENT_H_
#define MEETXML_MODEL_DOCUMENT_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "bat/bat.h"
#include "bat/oid.h"
#include "model/path_summary.h"
#include "util/result.h"

namespace meetxml {
namespace model {

using bat::kInvalidOid;
using bat::Oid;
using bat::OidIntBat;
using bat::OidOidBat;
using bat::OidStrBat;

/// \brief A string-valued association: (owner node, value) at a path.
///
/// For attribute paths the owner is the element carrying the attribute;
/// for cdata paths the owner is the cdata node itself.
struct StringAssociation {
  PathId path;
  Oid owner;
  std::string value;
};

/// \brief How much validation the column-adoption calls run inline.
///
/// kFull re-checks every deep invariant at adoption time (the default,
/// and the only safe choice for untrusted bytes that will be read
/// before EnsureValidated). kFramingOnly keeps the cheap O(1) framing
/// checks — lengths, path ranges, blob-size consistency — and defers
/// the O(rows) scans (owner bounds, offset monotonicity) to the
/// document's lazy validation gate; loaders that MarkUnvalidated()e the
/// document may use it to make decode cost independent of corpus size.
enum class ColumnChecks {
  kFull,
  kFramingOnly,
};

/// \brief One persisted per-path edge relation: (parent, node) rows of
/// every node with this schema path, in document order.
struct DerivedEdgeGroup {
  PathId path;
  std::span<const Oid> heads;  ///< parents (kInvalidOid for the root)
  std::span<const Oid> tails;  ///< node OIDs, strictly increasing
};

/// \brief The derived structures Finalize() would build, precomputed
/// (by the writer) and handed to AdoptDerivedColumns instead: children
/// CSR, per-path edge relations, and the per-string-relation
/// sortedness flags. Spans may borrow from a mapped image (the caller
/// pins the backing, as for the raw column views).
struct DerivedColumnsView {
  std::span<const uint32_t> child_offsets;  ///< node_count + 1 entries
  std::span<const Oid> child_list;          ///< node_count - 1 entries
  /// Edge groups in first-appearance (document) order of their paths.
  std::vector<DerivedEdgeGroup> edges;
  /// Parallel to string_paths(): 1 if that relation's owner column is
  /// sorted (binary-search probes), 0 if it needs the hash index.
  std::vector<uint8_t> sorted;
};

/// \brief The Monet transform of one XML document.
class StoredDocument {
 public:
  StoredDocument() = default;

  // Not copyable (relations can be large); movable.
  StoredDocument(const StoredDocument&) = delete;
  StoredDocument& operator=(const StoredDocument&) = delete;
  StoredDocument(StoredDocument&&) = default;
  StoredDocument& operator=(StoredDocument&&) = default;

  // --- Instance (per-OID) view -------------------------------------

  /// \brief Number of nodes (elements + cdata nodes).
  size_t node_count() const { return parent_.size(); }

  /// \brief The root element's OID (always 0 after shredding).
  Oid root() const { return 0; }

  /// \brief Parent node; kInvalidOid for the root.
  Oid parent(Oid node) const { return parent_[node]; }

  /// \brief Schema path of the node.
  PathId path(Oid node) const { return path_[node]; }

  /// \brief Sibling rank (Definition 1's rank function).
  int rank(Oid node) const { return rank_[node]; }

  /// \brief Tree depth == path depth (root is 1).
  uint32_t depth(Oid node) const { return paths_.depth(path_[node]); }

  /// \brief Tag of an element node / "cdata" for cdata nodes.
  const std::string& tag(Oid node) const {
    return paths_.label(path_[node]);
  }

  /// \brief True for character-data nodes.
  bool is_cdata(Oid node) const {
    return paths_.kind(path_[node]) == StepKind::kCdata;
  }

  /// \brief Children of a node in sibling order. Available after
  /// Finalize().
  std::vector<Oid> children(Oid node) const;

  /// \brief True if `ancestor` lies on the root path of `node`
  /// (equality counts) — Definition 5's ⊑ on instances.
  bool IsAncestorOrSelf(Oid ancestor, Oid node) const;

  const PathSummary& paths() const { return paths_; }
  PathSummary* mutable_paths() { return &paths_; }

  // --- Relational (per-path BAT) view ------------------------------

  /// \brief (parent, child) edge BAT of all nodes with this path.
  /// Empty BAT for attribute paths (attributes have no own node).
  const OidOidBat& EdgesAt(PathId path) const;

  /// \brief (owner, string) BAT of a leaf path (attribute or cdata).
  const OidStrBat& StringsAt(PathId path) const;

  /// \brief All paths that own a non-empty string relation — the scan
  /// list for full-text search.
  const std::vector<PathId>& string_paths() const { return string_paths_; }

  /// \brief All paths that own a non-empty edge relation.
  const std::vector<PathId>& edge_paths() const { return edge_paths_; }

  /// \brief Total number of string associations.
  size_t string_count() const { return string_count_; }

  /// \brief Looks up the string value(s) attached to `owner` at `path`.
  std::vector<std::string_view> StringValuesAt(PathId path,
                                               Oid owner) const;

  /// \brief Attribute values of an element, in (path, insertion) order:
  /// pairs of (attribute path, value row index into StringsAt(path)).
  std::vector<StringAssociation> AttributesOf(Oid element) const;

  /// \brief Text of a cdata node; empty view if none recorded.
  std::string_view CdataValue(Oid cdata_node) const;

  /// \brief All string associations in their original append (document)
  /// order — the order that reassembly uses to restore per-element
  /// attribute order. Used by persistence. Views borrow from the
  /// per-path arenas and stay valid until the relations are mutated.
  std::vector<std::tuple<PathId, Oid, std::string_view>>
  StringsInAppendOrder() const;

  /// \brief The global append sequence of every row of StringsAt(path),
  /// parallel to that relation — the permutation column the columnar
  /// image formats persist. (u32: the global string count is u32-framed
  /// on disk, so the wider in-memory type bought nothing but bytes.)
  std::span<const uint32_t> StringSeqAt(PathId path) const;

  // --- Builder interface (used by the shredder) ---------------------

  /// \brief Adds a node; OIDs must be appended densely (DFS order).
  Oid AppendNode(PathId path, Oid parent, int rank);

  /// \brief Pre-sizes the per-OID columns (bulk loaders know the node
  /// count up front).
  void ReserveNodes(size_t count);

  /// \brief Adds a string association (attribute value or cdata text);
  /// the value bytes are copied into the relation's arena.
  void AppendString(PathId path, Oid owner, std::string_view value);

  // --- Column-level bulk ingestion (used by the image loaders) ------
  //
  // The columnar load path moves whole columns in instead of replaying
  // one Append per row — by value (Adopt*, the copy-mode path) or by
  // borrowing spans straight out of a mapped image (Adopt*Views, the
  // view-mode zero-copy path). All calls validate the structural
  // invariants the append path establishes implicitly and reject bad
  // columns without mutating the document. Mixing the two interfaces
  // is allowed only in the order append-after-adopt never runs:
  // adoption requires pristine (empty) targets.
  //
  // View-mode lifetime contract: the borrowed spans must stay valid
  // for the life of the document (or until EnsureOwned promotes it).
  // Loaders pin the backing mapping into the document with PinBacking
  // so the contract holds by construction.

  /// \brief Installs the three per-OID columns at once and (by
  /// default) derives the per-path edge relations. Requires an empty
  /// document, equal column lengths, a parentless node 0 and
  /// parents[i] < i for i > 0 (DFS order); every path id must be
  /// interned in paths(). Pass derive_edges = false when a persisted
  /// DRV1 section will supply the edge relations via
  /// AdoptDerivedColumns instead.
  util::Status AdoptNodeColumns(std::vector<Oid> parents,
                                std::vector<PathId> paths,
                                std::vector<int> ranks,
                                bool derive_edges = true);

  /// \brief View-mode AdoptNodeColumns: same validation, but the
  /// columns borrow from the caller's bytes instead of copying.
  util::Status AdoptNodeColumnViews(std::span<const Oid> parents,
                                    std::span<const PathId> paths,
                                    std::span<const int> ranks,
                                    bool derive_edges = true);

  /// \brief Installs one path's entire string relation: owner column,
  /// cumulative value end-offsets, the concatenated value blob, and
  /// the global append-sequence column (see StringSeqAt). Requires the
  /// nodes to be present (owners are bounds-checked), a path with no
  /// strings yet, matching column lengths, non-decreasing ends with
  /// ends.back() == blob.size(). Seq values are validated globally by
  /// the caller (they must form a permutation across all relations).
  util::Status AdoptStringRelation(PathId path, std::vector<Oid> owners,
                                   std::vector<uint32_t> ends,
                                   std::string blob,
                                   std::vector<uint32_t> seq,
                                   ColumnChecks checks = ColumnChecks::kFull);

  /// \brief View-mode AdoptStringRelation: same validation, borrowed
  /// columns.
  util::Status AdoptStringRelationViews(
      PathId path, std::span<const Oid> owners,
      std::span<const uint32_t> ends, std::string_view blob,
      std::span<const uint32_t> seq,
      ColumnChecks checks = ColumnChecks::kFull);

  /// \brief Installs precomputed derived structures (children CSR,
  /// per-path edge relations, string sortedness) in place of
  /// Finalize() — the DRV1 fast path. Requires node columns already
  /// adopted with derive_edges = false and every string relation
  /// already in place. Only O(1) framing is verified here (span
  /// lengths, path ranges, row totals); the deep cross-checks —
  /// CSR inversion, exactly-once coverage, group ordering — live in
  /// ValidateDerivedStructures (model/validate.h), which loaders run
  /// inline (eager) or hang on the validation gate (deferred). With
  /// copy = false the spans are borrowed (caller pins the backing);
  /// with copy = true they are copied into owned storage. On success
  /// the document is finalized.
  util::Status AdoptDerivedColumns(const DerivedColumnsView& derived,
                                   bool copy);

  /// \brief Builds derived structures (children CSR, string indexes).
  /// Must be called once after shredding, before queries.
  util::Status Finalize();

  bool finalized() const { return finalized_; }

  // --- Derived-structure access (persistence + validation) ----------

  /// \brief Children CSR offsets (node_count + 1 entries; available
  /// after Finalize or AdoptDerivedColumns).
  std::span<const uint32_t> child_offsets() const {
    return child_offsets_.span();
  }
  /// \brief Children CSR payload (node_count - 1 entries, every
  /// non-root node grouped under its parent in sibling order).
  std::span<const Oid> child_list() const { return child_list_.span(); }
  /// \brief True when StringsAt(path) has a sorted owner column (probes
  /// binary-search; otherwise they use the per-path hash index).
  bool StringRelationSorted(PathId path) const {
    return path < string_sorted_.size() && string_sorted_[path] != 0;
  }

  // --- Lazy validation gate -----------------------------------------
  //
  // Loaders that skip the deep O(rows) checks at decode time
  // (LoadOptions::defer_validation) call MarkUnvalidated(); the first
  // consumer that needs full invariants — executor construction,
  // EnsureOwned — calls EnsureValidated(), which runs the complete
  // check suite exactly once (thread-safe, once-latched) and returns
  // its sticky verdict. Documents built through the shredder or the
  // eager load path have no gate and EnsureValidated is a no-op.

  /// \brief Runs the deferred deep validation once; subsequent calls
  /// (from any thread) return the same sticky status without
  /// re-scanning.
  util::Status EnsureValidated() const;

  /// \brief True when no deferred validation is pending or it already
  /// ran (regardless of verdict).
  bool validated() const {
    return validation_gate_ == nullptr ||
           validation_gate_->done.load(std::memory_order_acquire);
  }

  /// \brief Arms the lazy validation gate (called by deferring
  /// loaders right after decode).
  void MarkUnvalidated();

  // --- Ownership (view-backed documents) ----------------------------

  /// \brief True while any column or relation still borrows from the
  /// image it was loaded from. Mutating APIs promote the structures
  /// they touch; EnsureOwned promotes everything.
  bool view_backed() const;

  /// \brief Promotes every view-backed column and relation to owned
  /// storage and releases the pinned backing. After this call the
  /// document is self-contained regardless of how it was loaded.
  void EnsureOwned();

  /// \brief Pins the object that owns this document's borrowed bytes
  /// (a shared util::MmapFile, or any image buffer). Held until
  /// destruction or EnsureOwned, so view-backed columns can never
  /// dangle.
  void PinBacking(std::shared_ptr<const void> backing) {
    backing_ = std::move(backing);
  }
  const std::shared_ptr<const void>& backing() const { return backing_; }

  // --- Raw column access (used by persistence) ----------------------

  std::span<const Oid> parent_column() const { return parent_.span(); }
  std::span<const PathId> path_column() const { return path_.span(); }
  std::span<const int> rank_column() const { return rank_.span(); }

 private:
  // Once-latch for deferred deep validation: the first EnsureValidated
  // runs the checks under `mu`, publishes the verdict in `status`, and
  // release-stores `done`; later callers acquire-load `done` and read
  // the sticky status lock-free. (std::once_flag is not movable, and
  // StoredDocument is; a heap latch keeps the document movable.)
  struct ValidationGate {
    std::mutex mu;
    std::atomic<bool> done{false};
    util::Status status = util::Status::OK();
  };

  util::Status CheckNodeColumns(std::span<const Oid> parents,
                                std::span<const PathId> paths,
                                size_t rank_count) const;
  void DeriveEdgeRelations();
  util::Status CheckStringRelation(PathId path, std::span<const Oid> owners,
                                   std::span<const uint32_t> ends,
                                   size_t blob_size, size_t seq_count,
                                   ColumnChecks checks) const;
  void GrowStringTables(PathId path);

  PathSummary paths_;

  // Dense per-OID columns; owned after shredding, possibly borrowed
  // from a pinned image after a view-mode load.
  bat::Column<Oid> parent_;
  bat::Column<PathId> path_;
  bat::Column<int> rank_;

  // Per-path relations, indexed by PathId (resized lazily).
  std::vector<OidOidBat> edges_;
  std::vector<OidStrBat> strings_;
  // Global append sequence per string-relation row, parallel to
  // strings_[p]; restores per-element attribute order on reassembly.
  std::vector<bat::Column<uint32_t>> string_seq_;
  std::vector<PathId> string_paths_;
  std::vector<PathId> edge_paths_;
  size_t string_count_ = 0;

  // Derived: children CSR — built by Finalize (owned) or adopted from
  // a persisted DRV1 section (possibly view-backed, like the raw
  // columns).
  bat::Column<uint32_t> child_offsets_;
  bat::Column<Oid> child_list_;

  // Derived: owner look-up for string relations. Relations built in
  // document order have non-decreasing owner columns (the shredder
  // and the image loaders both append that way), so Finalize marks
  // them sorted and owner probes binary-search the head column
  // directly — no index to build on the cold-start path. Relations
  // appended out of order (possible through the public builder API)
  // fall back to a per-path owner -> rows hash index.
  std::vector<uint8_t> string_sorted_;
  std::vector<std::unordered_map<Oid, std::vector<uint32_t>>> string_index_;

  // Keep-alive for view-backed columns: the mapped image (or byte
  // buffer) the spans borrow from. Type-erased so documents can pin a
  // util::MmapFile, a std::string, or anything else that owns bytes.
  std::shared_ptr<const void> backing_;

  // Null unless a deferring loader armed the lazy validation gate.
  mutable std::shared_ptr<ValidationGate> validation_gate_;

  bool finalized_ = false;
};

}  // namespace model
}  // namespace meetxml

#endif  // MEETXML_MODEL_DOCUMENT_H_
