#include "query/executor.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "core/meet_pair.h"
#include "core/restrictions.h"
#include "model/reassembly.h"
#include "obs/metrics.h"
#include "query/parser.h"
#include "query/path_match.h"
#include "text/tokenizer.h"
#include "util/failpoint.h"
#include "util/strings.h"
#include "util/timer.h"

namespace meetxml {
namespace query {

using bat::Oid;
using bat::PathId;
using core::Assoc;
using core::AssocSet;
using model::StepKind;
using model::StoredDocument;
using util::Result;
using util::Status;

namespace {

// Tuple-enumeration guard for the ANCESTORS baseline: beyond this many
// combinations the executor reports truncation instead of spinning —
// which is itself the point the paper makes about the baseline.
constexpr uint64_t kMaxAncestorTuples = 1000000;

// Pair cap for GMEET (each pair runs a bounded bidirectional BFS).
constexpr uint64_t kMaxGraphMeetPairs = 10000;

// Default reach of the GMEET BFS when no WITHIN/DISTANCE bound is set.
constexpr int kDefaultGraphMeetReach = 64;

bool ValueSatisfies(const Predicate& predicate, std::string_view value,
                    const text::Thesaurus& thesaurus) {
  switch (predicate.kind) {
    case Predicate::Kind::kSynonym:
      for (const std::string& synonym :
           thesaurus.Expand(predicate.literal)) {
        if (util::ContainsIgnoreCase(value, synonym)) return true;
      }
      return false;
    case Predicate::Kind::kContains:
      return util::Contains(value, predicate.literal);
    case Predicate::Kind::kIcontains:
      return util::ContainsIgnoreCase(value, predicate.literal);
    case Predicate::Kind::kEquals:
      return value == predicate.literal;
    case Predicate::Kind::kWord: {
      text::TokenizerOptions options;
      std::vector<std::string> tokens = text::Tokenize(value, options);
      std::string needle = util::ToLowerAscii(predicate.literal);
      return std::find(tokens.begin(), tokens.end(), needle) !=
             tokens.end();
    }
    case Predicate::Kind::kPhrase:
      return text::MatchesPhrase(value,
                                 text::Tokenize(predicate.literal));
    case Predicate::Kind::kDistanceLe:
      return true;  // handled at projection level
  }
  return false;
}

// Evaluates a single-variable boolean predicate tree on one string
// value.
bool ExprSatisfies(const BoolExpr& expr, std::string_view value,
                   const text::Thesaurus& thesaurus) {
  switch (expr.op) {
    case BoolExpr::Op::kLeaf:
      return ValueSatisfies(expr.leaf, value, thesaurus);
    case BoolExpr::Op::kNot:
      return !ExprSatisfies(expr.children.front(), value, thesaurus);
    case BoolExpr::Op::kAnd:
      for (const BoolExpr& child : expr.children) {
        if (!ExprSatisfies(child, value, thesaurus)) return false;
      }
      return true;
    case BoolExpr::Op::kOr:
      for (const BoolExpr& child : expr.children) {
        if (ExprSatisfies(child, value, thesaurus)) return true;
      }
      return false;
  }
  return false;
}

// The variable a (checked, single-variable) conjunct tree tests.
const std::string& ConjunctVariable(const BoolExpr& expr) {
  const BoolExpr* cur = &expr;
  while (cur->op != BoolExpr::Op::kLeaf) cur = &cur->children.front();
  return cur->leaf.var;
}

bool IsDistanceConjunct(const BoolExpr& expr) {
  return expr.op == BoolExpr::Op::kLeaf &&
         expr.leaf.kind == Predicate::Kind::kDistanceLe;
}

std::string FormatOid(Oid oid) {
  // append instead of operator+("o", ...): the rvalue-string overload
  // trips a GCC 12 -Wrestrict false positive under heavy inlining.
  std::string out = "o";
  out += std::to_string(oid);
  return out;
}

}  // namespace

std::string RenderTable(const std::vector<std::string>& columns,
                        const std::vector<std::vector<std::string>>& rows,
                        bool truncated) {
  std::vector<size_t> widths(columns.size());
  for (size_t c = 0; c < columns.size(); ++c) widths[c] = columns[c].size();
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += "  ";
      out += row[c];
      out.append(widths[c] - row[c].size(), ' ');
    }
    out += "\n";
  };
  emit_row(columns);
  std::string rule;
  for (size_t c = 0; c < columns.size(); ++c) {
    if (c > 0) rule += "  ";
    rule.append(widths[c], '-');
  }
  out += rule + "\n";
  for (const auto& row : rows) emit_row(row);
  if (truncated) out += "(truncated)\n";
  return out;
}

std::string QueryResult::ToText() const {
  return RenderTable(columns, rows, truncated);
}

Result<Executor> Executor::Build(const StoredDocument& doc) {
  // Deep validation latches once per document here — the single gate
  // every deferred-validation load (lazy catalog open) funnels
  // through before query code walks the columns.
  MEETXML_RETURN_NOT_OK(doc.EnsureValidated());
  MEETXML_ASSIGN_OR_RETURN(core::IdrefGraph idrefs,
                           core::IdrefGraph::Build(doc));
  return Executor(&doc, std::move(idrefs), std::make_unique<LazySearch>());
}

Result<Executor> Executor::Build(const StoredDocument& doc,
                                 text::FullTextSearch search) {
  MEETXML_RETURN_NOT_OK(doc.EnsureValidated());
  MEETXML_ASSIGN_OR_RETURN(core::IdrefGraph idrefs,
                           core::IdrefGraph::Build(doc));
  auto lazy = std::make_unique<LazySearch>();
  lazy->search = std::move(search);
  return Executor(&doc, std::move(idrefs), std::move(lazy));
}

Result<const text::FullTextSearch*> Executor::EnsureSearch() const {
  std::lock_guard<std::mutex> lock(lazy_->mu);
  if (!lazy_->search.has_value()) {
    // First-touch index build — worth a series of its own: the cost
    // hides inside whichever query happens to hit the cold index.
    static obs::Histogram* build_us = &obs::MetricsRegistry::Global()
                                           .histogram(
                                               "meetxml_text_index_build_us");
    static obs::Counter* builds =
        &obs::MetricsRegistry::Global().counter(
            "meetxml_text_index_builds_total");
    util::Timer build_timer;
    MEETXML_ASSIGN_OR_RETURN(text::FullTextSearch built,
                             text::FullTextSearch::Build(*doc_));
    lazy_->search = std::move(built);
    builds->Add(1);
    build_us->Record(static_cast<uint64_t>(build_timer.ElapsedMicros()));
  }
  return &*lazy_->search;
}

bool Executor::text_index_built() const {
  std::lock_guard<std::mutex> lock(lazy_->mu);
  return lazy_->search.has_value();
}

const text::InvertedIndex* Executor::text_index() const {
  std::lock_guard<std::mutex> lock(lazy_->mu);
  return lazy_->search.has_value() ? &lazy_->search->index() : nullptr;
}

void Executor::InstallTextSearch(text::FullTextSearch search) {
  std::lock_guard<std::mutex> lock(lazy_->mu);
  if (!lazy_->search.has_value()) lazy_->search = std::move(search);
}

Result<std::vector<AssocSet>> Executor::EvaluateBinding(
    const Query& query, const Binding& binding) const {
  const StoredDocument& doc = *doc_;
  MEETXML_ASSIGN_OR_RETURN(std::vector<PathId> paths,
                           MatchPattern(doc.paths(), binding.pattern));

  // String-predicate trees bound to this variable.
  std::vector<const BoolExpr*> string_preds;
  for (const BoolExpr& conjunct : query.where) {
    if (IsDistanceConjunct(conjunct)) continue;
    if (ConjunctVariable(conjunct) == binding.var) {
      string_preds.push_back(&conjunct);
    }
  }

  // Index anchor: when some conjunct is a bare CONTAINS leaf, its
  // trigram-accelerated match set is a superset of the binding — probe
  // the index and verify the remaining predicates on the (few)
  // candidates instead of scanning every string relation.
  const Predicate* anchor = nullptr;
  for (const BoolExpr* conjunct : string_preds) {
    if (conjunct->op == BoolExpr::Op::kLeaf &&
        conjunct->leaf.kind == Predicate::Kind::kContains) {
      anchor = &conjunct->leaf;
      break;
    }
  }
  std::unordered_map<PathId, std::vector<Oid>> anchor_hits;
  if (anchor != nullptr) {
    MEETXML_ASSIGN_OR_RETURN(const text::FullTextSearch* search,
                             EnsureSearch());
    MEETXML_ASSIGN_OR_RETURN(
        text::TermMatches matches,
        search->Search(anchor->literal, text::MatchMode::kContains));
    for (core::AssocSet& set : matches.sets) {
      anchor_hits.emplace(set.path, std::move(set.nodes));
    }
  }

  std::vector<AssocSet> sets;
  for (PathId path : paths) {
    StepKind kind = doc.paths().kind(path);
    if (!string_preds.empty() && kind == StepKind::kElement) {
      // String predicates apply to string-valued associations; element
      // paths in the pattern's match set simply contribute nothing
      // (bind //cdata or @attr to search text).
      continue;
    }
    AssocSet set;
    set.path = path;
    auto passes = [this, &string_preds](std::string_view value) {
      for (const BoolExpr* predicate : string_preds) {
        if (!ExprSatisfies(*predicate, value, thesaurus_)) return false;
      }
      return true;
    };
    if (kind == StepKind::kAttribute || kind == StepKind::kCdata) {
      if (anchor != nullptr) {
        // Verify the anchor's candidates for this path.
        auto it = anchor_hits.find(path);
        if (it != anchor_hits.end()) {
          for (Oid owner : it->second) {
            for (std::string_view value :
                 doc.StringValuesAt(path, owner)) {
              if (passes(value)) {
                set.nodes.push_back(owner);
                break;
              }
            }
          }
        }
      } else {
        const model::OidStrBat& table = doc.StringsAt(path);
        for (size_t row = 0; row < table.size(); ++row) {
          if (passes(table.tail(row))) {
            set.nodes.push_back(table.head(row));
          }
        }
        if (kind == StepKind::kAttribute) {
          std::sort(set.nodes.begin(), set.nodes.end());
          set.nodes.erase(
              std::unique(set.nodes.begin(), set.nodes.end()),
              set.nodes.end());
        }
      }
    } else {
      const model::OidOidBat& edges = doc.EdgesAt(path);
      for (size_t row = 0; row < edges.size(); ++row) {
        set.nodes.push_back(edges.tail(row));
      }
    }
    if (!set.nodes.empty()) sets.push_back(std::move(set));
  }
  return sets;
}

Result<QueryResult> Executor::Execute(const Query& query,
                                      const ExecuteOptions& options) const {
  // Wall-clock per-document execute latency, recorded on every exit
  // path (errors included — a failing query still costs its time).
  struct ExecuteRecord {
    util::Timer timer;
    ~ExecuteRecord() {
      static obs::Histogram* execute_us =
          &obs::MetricsRegistry::Global().histogram(
              "meetxml_query_execute_us");
      execute_us->Record(static_cast<uint64_t>(timer.ElapsedMicros()));
    }
  } record;
  const StoredDocument& doc = *doc_;
  if (query.projections.size() != 1) {
    return Status::NotImplemented(
        "exactly one projection per query is supported");
  }
  const Projection& projection = query.projections.front();

  // Evaluate every binding once.
  std::unordered_map<std::string, std::vector<AssocSet>> bound;
  for (const Binding& binding : query.bindings) {
    MEETXML_ASSIGN_OR_RETURN(bound[binding.var],
                             EvaluateBinding(query, binding));
  }

  // Distance predicates: translated to the d-meet bound for MEET, and
  // to per-tuple filters for ANCESTORS.
  std::vector<const Predicate*> distance_preds;
  for (const BoolExpr& conjunct : query.where) {
    if (IsDistanceConjunct(conjunct)) {
      distance_preds.push_back(&conjunct.leaf);
    }
  }

  size_t row_cap = options.max_rows;
  if (query.limit.has_value()) {
    row_cap = std::min(row_cap, static_cast<size_t>(*query.limit));
  }
  if (options.limit_hint > 0) {
    row_cap = std::min(row_cap, options.limit_hint);
  }

  QueryResult result;
  switch (projection.kind) {
    case Projection::Kind::kMeet: {
      core::MeetOptions meet_options;
      for (const PathPattern& exclude : query.excludes) {
        MEETXML_ASSIGN_OR_RETURN(std::vector<PathId> excluded,
                                 MatchPattern(doc.paths(), exclude));
        meet_options.excluded_paths.insert(excluded.begin(),
                                           excluded.end());
      }
      if (query.within.has_value()) {
        meet_options.max_distance = *query.within;
      }
      for (const Predicate* predicate : distance_preds) {
        meet_options.max_distance =
            std::min(meet_options.max_distance, predicate->bound);
      }
      result.columns = {"meet", "path", "oid", "distance", "witnesses"};
      // LIMIT 0 is an empty answer, not "unlimited" — max_results uses
      // 0 as the no-bound sentinel, so short-circuit before it would be
      // misread. MeetGeneral never runs, so the pre-cap answer count is
      // unknown: rows_found stays 0 as a lower bound only.
      if (row_cap == 0) {
        result.rows_found_exact = false;
        break;
      }
      meet_options.max_results = row_cap;
      meet_options.materialize_all = options.materialized_merge;
      meet_options.shared_max_distance = options.rank_ceiling;

      std::vector<AssocSet> inputs;
      for (const std::string& var : projection.vars) {
        for (const AssocSet& set : bound[var]) inputs.push_back(set);
      }
      MEETXML_ASSIGN_OR_RETURN(
          result.meets,
          core::MeetGeneral(doc, inputs, meet_options,
                            &result.meet_stats));
      result.rows.reserve(result.meets.size());
      for (const core::GeneralMeet& meet : result.meets) {
        result.rows.push_back(
            {doc.tag(meet.meet), doc.paths().ToString(meet.meet_path),
             FormatOid(meet.meet), std::to_string(meet.witness_distance),
             std::to_string(meet.witnesses.size())});
      }
      result.rows_found = result.meet_stats.meets_found;
      result.truncated = result.rows_found > result.rows.size();
      break;
    }

    case Projection::Kind::kGraphMeet: {
      // Reference-aware proximity meet over the tree + IDREF graph
      // (paper §7 future work). Pairwise over the two bindings' match
      // sets, deduplicated by meet node keeping the tightest distance.
      int reach = kDefaultGraphMeetReach;
      if (query.within.has_value()) reach = *query.within;
      for (const Predicate* predicate : distance_preds) {
        reach = std::min(reach, predicate->bound);
      }
      std::vector<Assoc> left;
      std::vector<Assoc> right;
      for (const AssocSet& set : bound[projection.vars[0]]) {
        for (Oid node : set.nodes) left.push_back(Assoc{set.path, node});
      }
      for (const AssocSet& set : bound[projection.vars[1]]) {
        for (Oid node : set.nodes) right.push_back(Assoc{set.path, node});
      }
      std::unordered_map<Oid, int> best;
      uint64_t pairs = 0;
      for (const Assoc& a : left) {
        for (const Assoc& b : right) {
          if (++pairs > kMaxGraphMeetPairs) {
            result.truncated = true;
            result.rows_found_exact = false;
            break;
          }
          auto meet = core::GraphMeet(doc, idrefs_, a.node, b.node, reach);
          if (!meet.ok()) continue;  // out of reach
          int distance = meet->distance_a + meet->distance_b;
          auto it = best.find(meet->meet);
          if (it == best.end() || distance < it->second) {
            best[meet->meet] = distance;
          }
        }
        if (result.truncated) break;
      }
      std::vector<std::pair<int, Oid>> ordered;
      ordered.reserve(best.size());
      for (const auto& [node, distance] : best) {
        ordered.emplace_back(distance, node);
      }
      std::sort(ordered.begin(), ordered.end());
      result.columns = {"meet", "path", "oid", "distance"};
      result.rows_found = ordered.size();
      for (const auto& [distance, node] : ordered) {
        if (result.rows.size() >= row_cap) {
          result.truncated = true;
          break;
        }
        result.rows.push_back(
            {doc.tag(node), doc.paths().ToString(doc.path(node)),
             FormatOid(node), std::to_string(distance)});
      }
      break;
    }

    case Projection::Kind::kAncestors: {
      // The §1 baseline: every combination of matches implies all the
      // common ancestors of that combination.
      std::vector<std::vector<Assoc>> flat(projection.vars.size());
      for (size_t v = 0; v < projection.vars.size(); ++v) {
        for (const AssocSet& set : bound[projection.vars[v]]) {
          for (Oid node : set.nodes) {
            flat[v].push_back(Assoc{set.path, node});
          }
        }
      }
      // Index of each projected var for distance predicates.
      std::unordered_map<std::string, size_t> var_index;
      for (size_t v = 0; v < projection.vars.size(); ++v) {
        var_index[projection.vars[v]] = v;
      }
      for (const Predicate* predicate : distance_preds) {
        if (!var_index.count(predicate->var) ||
            !var_index.count(predicate->var2)) {
          return Status::NotImplemented(
              "DISTANCE variables must appear in the ANCESTORS "
              "projection");
        }
      }

      result.columns = {"result", "path", "oid"};
      uint64_t tuples = 1;
      for (const auto& list : flat) {
        if (list.empty()) {
          tuples = 0;
          break;
        }
        tuples *= list.size();
        if (tuples > kMaxAncestorTuples) {
          result.truncated = true;
          result.rows_found_exact = false;
          tuples = kMaxAncestorTuples;
          break;
        }
      }

      std::vector<size_t> cursor(flat.size(), 0);
      uint64_t enumerated = 0;
      bool done = tuples == 0;
      while (!done && enumerated < kMaxAncestorTuples) {
        ++enumerated;
        // Distance filters.
        bool pass = true;
        for (const Predicate* predicate : distance_preds) {
          const Assoc& a = flat[var_index[predicate->var]]
                               [cursor[var_index[predicate->var]]];
          const Assoc& b = flat[var_index[predicate->var2]]
                               [cursor[var_index[predicate->var2]]];
          MEETXML_ASSIGN_OR_RETURN(int distance,
                                   core::Distance(doc, a, b));
          if (distance > predicate->bound) {
            pass = false;
            break;
          }
        }
        if (pass) {
          // LCA of the whole tuple, then every ancestor up to the root
          // is an implied answer.
          Assoc lca = flat[0][cursor[0]];
          for (size_t v = 1; v < flat.size(); ++v) {
            MEETXML_ASSIGN_OR_RETURN(
                core::PairMeet meet,
                core::MeetPair(doc, lca, flat[v][cursor[v]]));
            lca = core::AssocForNode(doc, meet.meet);
          }
          // For an attribute/cdata association the LCA position is a
          // node already (AssocForNode above); count it and all its
          // ancestors.
          Oid node = lca.node;
          result.total_ancestor_rows += doc.depth(node);
          while (true) {
            ++result.rows_found;
            if (result.rows.size() < row_cap) {
              result.rows.push_back(
                  {doc.tag(node), doc.paths().ToString(doc.path(node)),
                   FormatOid(node)});
            } else {
              result.truncated = true;
            }
            if (node == doc.root()) break;
            node = doc.parent(node);
          }
        }
        // Advance the tuple cursor (odometer).
        size_t v = 0;
        while (v < flat.size()) {
          if (++cursor[v] < flat[v].size()) break;
          cursor[v] = 0;
          ++v;
        }
        if (v == flat.size()) done = true;
      }
      if (!done) {
        result.truncated = true;
        result.rows_found_exact = false;
      }
      break;
    }

    case Projection::Kind::kVar:
    case Projection::Kind::kTag:
    case Projection::Kind::kPath:
    case Projection::Kind::kXml:
    case Projection::Kind::kCount: {
      if (!distance_preds.empty()) {
        return Status::NotImplemented(
            "DISTANCE predicates require a MEET or ANCESTORS projection");
      }
      const std::vector<AssocSet>& sets = bound[projection.vars.front()];
      if (projection.kind == Projection::Kind::kCount) {
        size_t count = 0;
        for (const AssocSet& set : sets) count += set.nodes.size();
        result.columns = {"count"};
        result.rows_found = 1;
        if (row_cap > 0) {
          result.rows.push_back({std::to_string(count)});
        }
        break;
      }
      if (projection.kind == Projection::Kind::kTag ||
          projection.kind == Projection::Kind::kPath) {
        std::vector<std::string> values;
        for (const AssocSet& set : sets) {
          std::string value =
              projection.kind == Projection::Kind::kTag
                  ? doc.paths().label(set.path)
                  : doc.paths().ToString(set.path);
          values.push_back(std::move(value));
        }
        std::sort(values.begin(), values.end());
        values.erase(std::unique(values.begin(), values.end()),
                     values.end());
        result.columns = {projection.kind == Projection::Kind::kTag
                              ? "tag"
                              : "path"};
        result.rows_found = values.size();
        for (std::string& value : values) {
          if (result.rows.size() >= row_cap) {
            result.truncated = true;
            break;
          }
          result.rows.push_back({std::move(value)});
        }
        break;
      }
      // kVar / kXml: one row per bound node. Limit pushdown: the exact
      // cardinality is known from the match sets, so stop producing
      // rows at the cap — for kXml that skips the whole subtree
      // reassembly of every row past it, not just the copy-out.
      result.columns = projection.kind == Projection::Kind::kXml
                           ? std::vector<std::string>{"xml"}
                           : std::vector<std::string>{"result", "path",
                                                      "oid"};
      for (const AssocSet& set : sets) {
        result.rows_found += set.nodes.size();
      }
      result.truncated = result.rows_found > row_cap;
      result.rows.reserve(std::min<uint64_t>(result.rows_found, row_cap));
      for (const AssocSet& set : sets) {
        if (result.rows.size() >= row_cap) break;
        for (Oid node : set.nodes) {
          if (result.rows.size() >= row_cap) break;
          if (projection.kind == Projection::Kind::kXml) {
            MEETXML_ASSIGN_OR_RETURN(std::string xml_text,
                                     model::ReassembleToXml(doc, node, 0));
            result.rows.push_back({std::move(xml_text)});
          } else {
            result.rows.push_back({doc.paths().label(set.path),
                                   doc.paths().ToString(set.path),
                                   FormatOid(node)});
          }
        }
      }
      break;
    }
  }
  return result;
}

Result<QueryResult> Executor::ExecuteText(
    std::string_view text, const ExecuteOptions& options) const {
  MEETXML_ASSIGN_OR_RETURN(Query query, ParseQuery(text));
  return Execute(query, options);
}

Result<RankedCursor> Executor::ExecuteRanked(
    const Query& query, const ExecuteOptions& options) const {
  // Fault-injection site: one document of a streaming fan-out failing
  // must surface as a clean error for the whole merge, never a partial
  // answer.
  MEETXML_FAILPOINT("query.cursor");
  MEETXML_ASSIGN_OR_RETURN(QueryResult result, Execute(query, options));
  return RankedCursor(std::move(result));
}

namespace {

const char* ProjectionName(Projection::Kind kind) {
  switch (kind) {
    case Projection::Kind::kVar: return "bindings";
    case Projection::Kind::kTag: return "distinct tags";
    case Projection::Kind::kPath: return "distinct paths";
    case Projection::Kind::kXml: return "reassembled XML";
    case Projection::Kind::kCount: return "count";
    case Projection::Kind::kMeet: return "meet (nearest concepts)";
    case Projection::Kind::kAncestors:
      return "ancestors (regular-path-expression baseline)";
    case Projection::Kind::kGraphMeet:
      return "graph meet (tree + IDREF proximity)";
  }
  return "?";
}

}  // namespace

Result<std::string> Executor::Explain(const Query& query) const {
  const StoredDocument& doc = *doc_;
  std::string out;
  char line[512];

  for (const Binding& binding : query.bindings) {
    MEETXML_ASSIGN_OR_RETURN(std::vector<PathId> paths,
                             MatchPattern(doc.paths(), binding.pattern));
    MEETXML_ASSIGN_OR_RETURN(std::vector<AssocSet> filtered,
                             EvaluateBinding(query, binding));
    size_t raw = 0;
    for (PathId path : paths) {
      raw += doc.EdgesAt(path).size() + (doc.paths().kind(path) ==
                                                 model::StepKind::kAttribute
                                             ? doc.StringsAt(path).size()
                                             : 0);
    }
    size_t kept = 0;
    for (const AssocSet& set : filtered) kept += set.nodes.size();
    std::snprintf(line, sizeof(line),
                  "binding %s: pattern '%s' -> %zu paths, %zu "
                  "associations, %zu after predicates\n",
                  binding.var.c_str(), binding.pattern.text.c_str(),
                  paths.size(), raw, kept);
    out += line;
    for (PathId path : paths) {
      std::snprintf(line, sizeof(line), "    %s\n",
                    doc.paths().ToString(path).c_str());
      out += line;
    }
  }

  for (const PathPattern& exclude : query.excludes) {
    MEETXML_ASSIGN_OR_RETURN(std::vector<PathId> excluded,
                             MatchPattern(doc.paths(), exclude));
    std::snprintf(line, sizeof(line),
                  "exclude '%s' -> %zu result paths suppressed\n",
                  exclude.text.c_str(), excluded.size());
    out += line;
  }
  if (query.within.has_value()) {
    std::snprintf(line, sizeof(line), "within %d edges\n", *query.within);
    out += line;
  }
  if (query.limit.has_value()) {
    std::snprintf(line, sizeof(line), "limit %d rows\n", *query.limit);
    out += line;
  }
  if (!query.projections.empty()) {
    std::snprintf(line, sizeof(line), "projection: %s\n",
                  ProjectionName(query.projections.front().kind));
    out += line;
  }
  return out;
}

Result<std::string> Executor::ExplainText(std::string_view text) const {
  MEETXML_ASSIGN_OR_RETURN(Query query, ParseQuery(text));
  return Explain(query);
}

}  // namespace query
}  // namespace meetxml
