#include "core/idref.h"

#include <algorithm>
#include <cctype>
#include <deque>

#include "util/strings.h"

namespace meetxml {
namespace core {

using util::Result;
using util::Status;

namespace {

const std::vector<Oid> kNoRefs;

bool NameMatches(const std::vector<std::string>& names,
                 const std::string& label) {
  return std::find(names.begin(), names.end(), label) != names.end();
}

// Splits an IDREFS value on ASCII whitespace.
std::vector<std::string_view> SplitIdrefs(std::string_view value) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < value.size()) {
    while (i < value.size() &&
           std::isspace(static_cast<unsigned char>(value[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < value.size() &&
           !std::isspace(static_cast<unsigned char>(value[i]))) {
      ++i;
    }
    if (i > start) out.push_back(value.substr(start, i - start));
  }
  return out;
}

}  // namespace

Result<IdrefGraph> IdrefGraph::Build(const StoredDocument& doc,
                                     const IdrefOptions& options) {
  if (!doc.finalized()) {
    return Status::InvalidArgument("document is not finalized");
  }
  IdrefGraph graph;
  const model::PathSummary& paths = doc.paths();

  // Pass 1: collect IDs.
  for (PathId path : doc.string_paths()) {
    if (paths.kind(path) != model::StepKind::kAttribute) continue;
    if (!NameMatches(options.id_attributes, paths.label(path))) continue;
    const model::OidStrBat& table = doc.StringsAt(path);
    for (size_t row = 0; row < table.size(); ++row) {
      // First declaration wins (XML requires IDs unique; be lenient).
      graph.ids_.emplace(table.tail(row), table.head(row));
    }
  }

  // Pass 2: resolve references.
  for (PathId path : doc.string_paths()) {
    if (paths.kind(path) != model::StepKind::kAttribute) continue;
    if (!NameMatches(options.idref_attributes, paths.label(path))) {
      continue;
    }
    const model::OidStrBat& table = doc.StringsAt(path);
    for (size_t row = 0; row < table.size(); ++row) {
      Oid source = table.head(row);
      for (std::string_view ref : SplitIdrefs(table.tail(row))) {
        auto it = graph.ids_.find(std::string(ref));
        if (it == graph.ids_.end()) {
          ++graph.dangling_count_;
          continue;
        }
        graph.out_[source].push_back(it->second);
        graph.in_[it->second].push_back(source);
        ++graph.edge_count_;
      }
    }
  }
  return graph;
}

const std::vector<Oid>& IdrefGraph::OutRefs(Oid node) const {
  auto it = out_.find(node);
  return it == out_.end() ? kNoRefs : it->second;
}

const std::vector<Oid>& IdrefGraph::InRefs(Oid node) const {
  auto it = in_.find(node);
  return it == in_.end() ? kNoRefs : it->second;
}

Oid IdrefGraph::Resolve(std::string_view id) const {
  auto it = ids_.find(std::string(id));
  return it == ids_.end() ? bat::kInvalidOid : it->second;
}

namespace {

// Bounded BFS over tree + reference edges; fills dist (-1 = unreached).
Status Bfs(const StoredDocument& doc, const IdrefGraph& graph, Oid start,
           int max_distance, std::unordered_map<Oid, int>* dist) {
  if (start >= doc.node_count()) {
    return Status::NotFound("GraphMeet: OID out of range: ", start);
  }
  std::deque<Oid> queue;
  (*dist)[start] = 0;
  queue.push_back(start);
  while (!queue.empty()) {
    Oid cur = queue.front();
    queue.pop_front();
    int d = (*dist)[cur];
    if (d >= max_distance) continue;
    auto visit = [&](Oid next) {
      if (next == bat::kInvalidOid) return;
      if (dist->count(next)) return;
      (*dist)[next] = d + 1;
      queue.push_back(next);
    };
    visit(doc.parent(cur));
    for (Oid child : doc.children(cur)) visit(child);
    for (Oid ref : graph.OutRefs(cur)) visit(ref);
    for (Oid ref : graph.InRefs(cur)) visit(ref);
  }
  return Status::OK();
}

}  // namespace

Result<ProximityMeet> GraphMeet(const StoredDocument& doc,
                                const IdrefGraph& graph, Oid a, Oid b,
                                int max_distance) {
  if (max_distance < 0) {
    return Status::InvalidArgument("max_distance must be >= 0");
  }
  std::unordered_map<Oid, int> dist_a;
  std::unordered_map<Oid, int> dist_b;
  MEETXML_RETURN_NOT_OK(Bfs(doc, graph, a, max_distance, &dist_a));
  MEETXML_RETURN_NOT_OK(Bfs(doc, graph, b, max_distance, &dist_b));

  bool found = false;
  ProximityMeet best{bat::kInvalidOid, 0, 0};
  long best_sum = 0;
  for (const auto& [node, da] : dist_a) {
    auto it = dist_b.find(node);
    if (it == dist_b.end()) continue;
    long sum = static_cast<long>(da) + it->second;
    if (sum > max_distance) continue;
    // Prefer the smallest sum; break ties toward the shallowest node —
    // on a pure tree every node on the a-b path ties on the sum, and
    // the shallowest of them is exactly the LCA. Lower OID breaks the
    // remaining ties deterministically.
    bool better =
        !found || sum < best_sum ||
        (sum == best_sum &&
         (doc.depth(node) < doc.depth(best.meet) ||
          (doc.depth(node) == doc.depth(best.meet) && node < best.meet)));
    if (better) {
      found = true;
      best_sum = sum;
      best = ProximityMeet{node, da, it->second};
    }
  }
  if (!found) {
    return Status::NotFound("no connecting node within distance ",
                            max_distance);
  }
  return best;
}

Result<int> GraphDistance(const StoredDocument& doc,
                          const IdrefGraph& graph, Oid a, Oid b,
                          int max_distance) {
  MEETXML_ASSIGN_OR_RETURN(ProximityMeet meet,
                           GraphMeet(doc, graph, a, b, max_distance));
  return meet.distance_a + meet.distance_b;
}

}  // namespace core
}  // namespace meetxml
