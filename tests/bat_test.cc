// Unit tests for the BAT kernel: the binary association tables and the
// MIL-like relational operations the meet algorithms execute.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bat/bat.h"
#include "bat/ops.h"
#include "util/rng.h"

namespace meetxml {
namespace bat {
namespace {

OidOidBat MakeBat(std::initializer_list<std::pair<Oid, Oid>> rows) {
  OidOidBat out;
  for (const auto& [h, t] : rows) out.Append(h, t);
  return out;
}

// ---- Bat basics -----------------------------------------------------

TEST(Bat, AppendAndAccess) {
  OidStrBat table;
  table.Append(1, "one");
  table.Append(2, "two");
  ASSERT_EQ(table.size(), 2u);
  EXPECT_EQ(table.head(0), 1u);
  EXPECT_EQ(table.tail(1), "two");
  EXPECT_FALSE(table.empty());
}

TEST(StrBat, ArenaBackedColumns) {
  StrBat table;
  table.Append(1, "ab");
  table.Append(2, "");  // empty values are legal rows
  table.Append(3, "xyz");
  ASSERT_EQ(table.size(), 3u);
  EXPECT_EQ(table.tail(0), "ab");
  EXPECT_EQ(table.tail(1), "");
  EXPECT_EQ(table.tail(2), "xyz");
  // One arena, cumulative end offsets.
  EXPECT_EQ(table.tail_blob(), "abxyz");
  EXPECT_TRUE(std::ranges::equal(table.tail_ends(),
                                 std::vector<uint32_t>{2, 2, 5}));
}

TEST(StrBat, AdoptColumnsMatchesAppend) {
  StrBat appended;
  appended.Append(1, "ab");
  appended.Append(2, "xyz");
  StrBat adopted;
  adopted.AdoptColumns({1, 2}, {2, 5}, "abxyz");
  EXPECT_EQ(adopted, appended);
  EXPECT_EQ(adopted.tail(1), "xyz");
}

// ---- Owning vs. view storage (the zero-copy primitives) ---------------

TEST(Column, ViewReadsBorrowedValuesWithoutCopying) {
  std::vector<Oid> backing = {7, 8, 9};
  Column<Oid> column;
  column.SetView(backing);
  ASSERT_TRUE(column.is_view());
  ASSERT_EQ(column.size(), 3u);
  EXPECT_EQ(column[1], 8u);
  // The span aliases the backing storage — zero copies.
  EXPECT_EQ(column.span().data(), backing.data());
}

TEST(Column, EnsureOwnedDetachesFromBacking) {
  std::vector<Oid> backing = {1, 2};
  Column<Oid> column;
  column.SetView(backing);
  column.EnsureOwned();
  EXPECT_FALSE(column.is_view());
  backing.assign({9, 9});  // mutating the old backing must not show
  EXPECT_EQ(column[0], 1u);
  EXPECT_EQ(column[1], 2u);
}

TEST(Column, MutationPromotesAView) {
  std::vector<Oid> backing = {1, 2};
  Column<Oid> column;
  column.SetView(backing);
  column.push_back(3);  // copy-on-write
  EXPECT_FALSE(column.is_view());
  ASSERT_EQ(column.size(), 3u);
  EXPECT_EQ(column[2], 3u);
  EXPECT_EQ(backing.size(), 2u);  // the backing is untouched
}

TEST(Column, MoveKeepsOwnedDataValid) {
  Column<Oid> source;
  source.push_back(5);
  source.push_back(6);
  Column<Oid> moved = std::move(source);
  ASSERT_EQ(moved.size(), 2u);
  EXPECT_EQ(moved[1], 6u);
  EXPECT_EQ(source.size(), 0u);  // NOLINT(bugprone-use-after-move)
}

TEST(Column, ViewAndOwnedCompareByValue) {
  std::vector<Oid> backing = {4, 5};
  Column<Oid> view;
  view.SetView(backing);
  Column<Oid> owned;
  owned.Adopt({4, 5});
  EXPECT_TRUE(view == owned);
}

TEST(StrBat, AdoptColumnViewsBorrowsAndMatchesOwned) {
  StrBat owned;
  owned.Append(1, "ab");
  owned.Append(2, "xyz");

  std::vector<Oid> heads = {1, 2};
  std::vector<uint32_t> ends = {2, 5};
  std::string blob = "abxyz";
  StrBat view;
  view.AdoptColumnViews(heads, ends, blob);
  ASSERT_TRUE(view.is_view());
  EXPECT_EQ(view.tail(0), "ab");
  EXPECT_EQ(view.tail(1), "xyz");
  // Borrowed, not copied: the arena view aliases the backing blob.
  EXPECT_EQ(view.tail_blob().data(), blob.data());
  // View- and owned-backed relations with equal rows compare equal.
  EXPECT_EQ(view, owned);
}

TEST(StrBat, AppendPromotesViewBackedRelation) {
  std::vector<Oid> heads = {1};
  std::vector<uint32_t> ends = {2};
  std::string blob = "ab";
  StrBat table;
  table.AdoptColumnViews(heads, ends, blob);
  ASSERT_TRUE(table.is_view());
  table.Append(2, "cd");  // copy-on-write promotion
  EXPECT_FALSE(table.is_view());
  ASSERT_EQ(table.size(), 2u);
  EXPECT_EQ(table.tail(0), "ab");
  EXPECT_EQ(table.tail(1), "cd");
  // The backing is unchanged and no longer referenced.
  blob.assign("zz");
  EXPECT_EQ(table.tail(0), "ab");
}

TEST(StrBat, EnsureOwnedDetachesAllColumns) {
  std::vector<Oid> heads = {3};
  std::vector<uint32_t> ends = {1};
  std::string blob = "q";
  StrBat table;
  table.AdoptColumnViews(heads, ends, blob);
  table.EnsureOwned();
  EXPECT_FALSE(table.is_view());
  blob.assign("x");
  EXPECT_EQ(table.tail(0), "q");
}

TEST(Bat, ReverseSwapsColumns) {
  OidOidBat table = MakeBat({{1, 10}, {2, 20}});
  OidOidBat reversed = table.Reversed();
  EXPECT_EQ(reversed.head(0), 10u);
  EXPECT_EQ(reversed.tail(0), 1u);
  // Move-reverse too.
  OidOidBat moved = std::move(table).Reverse();
  EXPECT_EQ(moved, reversed);
}

TEST(Bat, SortOrdersByHeadThenTail) {
  OidOidBat table = MakeBat({{2, 1}, {1, 9}, {2, 0}, {1, 3}});
  table.Sort();
  EXPECT_EQ(std::vector<Oid>(table.heads().begin(), table.heads().end()),
            (std::vector<Oid>{1, 1, 2, 2}));
  EXPECT_EQ(std::vector<Oid>(table.tails().begin(), table.tails().end()),
            (std::vector<Oid>{3, 9, 0, 1}));
}

TEST(Bat, SortUniqueRemovesDuplicates) {
  OidOidBat table = MakeBat({{1, 2}, {1, 2}, {3, 4}, {1, 2}});
  table.SortUnique();
  ASSERT_EQ(table.size(), 2u);
  EXPECT_EQ(table.head(0), 1u);
  EXPECT_EQ(table.head(1), 3u);
}

TEST(Bat, EqualityComparesRows) {
  EXPECT_EQ(MakeBat({{1, 2}}), MakeBat({{1, 2}}));
  EXPECT_FALSE(MakeBat({{1, 2}}) == MakeBat({{2, 1}}));
}

// ---- HeadIndex --------------------------------------------------------

TEST(HeadIndex, FindsAllRows) {
  OidOidBat table = MakeBat({{1, 10}, {2, 20}, {1, 11}});
  HeadIndex<Oid, Oid> index(table);
  EXPECT_EQ(index.Lookup(1).size(), 2u);
  EXPECT_EQ(index.Lookup(2).size(), 1u);
  EXPECT_TRUE(index.Lookup(99).empty());
  EXPECT_TRUE(index.Contains(2));
  EXPECT_FALSE(index.Contains(3));
}

// ---- Join -------------------------------------------------------------

TEST(Ops, JoinComposesAssociations) {
  // (o1,o2) join (o2,o3) = (o1,o3) — the paper's parent() shortcut.
  OidOidBat left = MakeBat({{1, 10}, {2, 20}, {3, 10}});
  OidOidBat right = MakeBat({{10, 100}, {20, 200}});
  OidOidBat joined = Join(left, right);
  joined.Sort();
  EXPECT_EQ(joined, MakeBat({{1, 100}, {2, 200}, {3, 100}}));
}

TEST(Ops, JoinProducesAllMatchCombinations) {
  OidOidBat left = MakeBat({{1, 10}});
  OidOidBat right = MakeBat({{10, 100}, {10, 101}});
  OidOidBat joined = Join(left, right);
  EXPECT_EQ(joined.size(), 2u);
}

TEST(Ops, JoinWithEmptyIsEmpty) {
  OidOidBat left = MakeBat({{1, 10}});
  OidOidBat empty;
  EXPECT_TRUE(Join(left, empty).empty());
  EXPECT_TRUE(Join(empty, left).empty());
}

TEST(Ops, JoinIndexedMatchesJoin) {
  OidOidBat left = MakeBat({{1, 10}, {2, 20}});
  OidOidBat right = MakeBat({{10, 100}, {20, 200}, {30, 300}});
  HeadIndex<Oid, Oid> index(right);
  EXPECT_EQ(JoinIndexed(left, right, index), Join(left, right));
}

// ---- Semijoins ---------------------------------------------------------

TEST(Ops, SemijoinKeepsMatchingHeads) {
  OidOidBat left = MakeBat({{1, 10}, {2, 20}, {3, 30}});
  OidOidBat right = MakeBat({{1, 0}, {3, 0}});
  OidOidBat out = Semijoin(left, right);
  EXPECT_EQ(out, MakeBat({{1, 10}, {3, 30}}));
}

TEST(Ops, SemijoinKeysAndAntijoinKeysPartition) {
  OidOidBat table = MakeBat({{1, 10}, {2, 20}, {3, 30}});
  std::unordered_set<Oid> keys = {2};
  OidOidBat in = SemijoinKeys(table, keys);
  OidOidBat out = AntijoinKeys(table, keys);
  EXPECT_EQ(in.size() + out.size(), table.size());
  EXPECT_EQ(in, MakeBat({{2, 20}}));
  EXPECT_EQ(out, MakeBat({{1, 10}, {3, 30}}));
}

// ---- Union / intersect ---------------------------------------------------

TEST(Ops, UnionConcatenates) {
  OidOidBat a = MakeBat({{1, 10}});
  OidOidBat b = MakeBat({{2, 20}});
  EXPECT_EQ(Union(a, b), MakeBat({{1, 10}, {2, 20}}));
}

TEST(Ops, IntersectHeads) {
  OidOidBat a = MakeBat({{1, 0}, {2, 0}, {3, 0}});
  OidOidBat b = MakeBat({{2, 9}, {4, 9}, {3, 9}});
  auto common = IntersectHeads(a, b);
  EXPECT_EQ(common, (std::unordered_set<Oid>{2, 3}));
}

TEST(Ops, IntersectHeadsDisjoint) {
  OidOidBat a = MakeBat({{1, 0}});
  OidOidBat b = MakeBat({{2, 0}});
  EXPECT_TRUE(IntersectHeads(a, b).empty());
}

// ---- Select / mirror -------------------------------------------------------

TEST(Ops, SelectTailFiltersStrings) {
  OidStrBat table;
  table.Append(1, "Ben Bit");
  table.Append(2, "Bob Byte");
  table.Append(3, "1999");
  auto hits = SelectTail<Oid>(table, [](std::string_view s) {
    return s.find("B") != std::string_view::npos;
  });
  EXPECT_EQ(hits.size(), 2u);
}

TEST(Ops, MirrorPairsHeadsWithThemselves) {
  OidOidBat table = MakeBat({{5, 50}, {6, 60}});
  OidOidBat mirrored = Mirror(table);
  EXPECT_EQ(mirrored, MakeBat({{5, 5}, {6, 6}}));
}

TEST(Ops, MirrorValues) {
  OidOidBat mirrored = MirrorValues<Oid>({7, 8});
  EXPECT_EQ(mirrored, MakeBat({{7, 7}, {8, 8}}));
}

// ---- Property: join associativity over random chains ----------------------

class JoinProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinProperty, JoinIsAssociativeOnChains) {
  util::Rng rng(GetParam());
  auto random_bat = [&](Oid head_bound, Oid tail_bound, size_t rows) {
    OidOidBat out;
    for (size_t i = 0; i < rows; ++i) {
      out.Append(static_cast<Oid>(rng.NextBelow(head_bound)),
                 static_cast<Oid>(rng.NextBelow(tail_bound)));
    }
    return out;
  };
  OidOidBat a = random_bat(20, 15, 40);
  OidOidBat b = random_bat(15, 10, 40);
  OidOidBat c = random_bat(10, 25, 40);

  OidOidBat left_first = Join(Join(a, b), c);
  OidOidBat right_first = Join(a, Join(b, c));
  left_first.SortUnique();
  right_first.SortUnique();
  EXPECT_EQ(left_first, right_first);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinProperty,
                         ::testing::Values(1, 7, 19, 55, 131));

}  // namespace
}  // namespace bat
}  // namespace meetxml
