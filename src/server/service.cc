#include "server/service.h"

#include <utility>

#include "util/net.h"

namespace meetxml {
namespace server {

using util::Result;
using util::Status;

namespace {

// Scoped in-flight accounting: Shutdown() waits for the count to hit
// zero, so every dispatch must decrement on every path out.
class InFlight {
 public:
  InFlight(std::atomic<uint64_t>* count, std::mutex* mu,
           std::condition_variable* cv)
      : count_(count), mu_(mu), cv_(cv) {
    count_->fetch_add(1, std::memory_order_acq_rel);
  }
  ~InFlight() {
    if (count_->fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Pairs with the predicate re-check in Shutdown(); the lock
      // makes the decrement-then-notify atomic against its wait.
      std::lock_guard<std::mutex> lock(*mu_);
      cv_->notify_all();
    }
  }

 private:
  std::atomic<uint64_t>* count_;
  std::mutex* mu_;
  std::condition_variable* cv_;
};

// The opcode echoed on errors for requests too mangled to decode.
constexpr Opcode kFallbackOpcode = Opcode::kPing;

Opcode EchoOpcode(std::string_view payload) {
  if (!payload.empty()) {
    uint8_t raw = static_cast<uint8_t>(payload.front());
    if (raw >= static_cast<uint8_t>(Opcode::kHello) &&
        raw <= static_cast<uint8_t>(Opcode::kBye)) {
      return static_cast<Opcode>(raw);
    }
  }
  return kFallbackOpcode;
}

}  // namespace

QueryService::QueryService(const store::Catalog* catalog,
                           ServiceOptions options)
    : catalog_(catalog),
      executor_(catalog),
      options_(std::move(options)),
      sessions_(options_.session) {}

uint64_t QueryService::NowMs() const {
  return options_.clock ? options_.clock() : util::MonotonicMillis();
}

Result<std::unique_ptr<QueryService::Connection>> QueryService::Connect() {
  if (draining()) {
    return Status::Unavailable("server is shutting down");
  }
  return std::unique_ptr<Connection>(new Connection(this));
}

QueryService::Connection::~Connection() {
  if (session_id_ != 0) {
    // Ignore NotFound: eviction may have beaten the disconnect.
    service_->sessions_.Close(session_id_).ok();
  }
}

std::string QueryService::Connection::HandlePayload(
    std::string_view payload) {
  InFlight guard(&service_->in_flight_, &service_->drain_mu_,
                 &service_->drain_cv_);
  if (service_->draining()) {
    service_->request_errors_.fetch_add(1, std::memory_order_relaxed);
    return EncodeErrorResponse(
        EchoOpcode(payload), Status::Unavailable("server is shutting down"));
  }
  Result<Request> request = DecodeRequest(payload);
  if (!request.ok()) {
    service_->request_errors_.fetch_add(1, std::memory_order_relaxed);
    return EncodeErrorResponse(EchoOpcode(payload), request.status());
  }
  return service_->Dispatch(this, *request);
}

std::string QueryService::Dispatch(Connection* connection,
                                   const Request& request) {
  uint64_t now = NowMs();
  Response response;
  response.ok = true;
  response.opcode = request.opcode;
  auto error = [&](const Status& status) {
    request_errors_.fetch_add(1, std::memory_order_relaxed);
    return EncodeErrorResponse(request.opcode, status);
  };

  switch (request.opcode) {
    case Opcode::kHello: {
      if (request.protocol_version != kProtocolVersion) {
        return error(Status::InvalidArgument(
            "unsupported protocol version ", request.protocol_version,
            " (this server speaks ", kProtocolVersion, ")"));
      }
      uint64_t existing = connection->session_id_.load();
      if (existing != 0 && sessions_.Contains(existing)) {
        return error(Status::InvalidArgument(
            "connection already carries session ", existing));
      }
      Result<uint64_t> id = sessions_.Open(now);
      if (!id.ok()) return error(id.status());
      connection->session_id_ = *id;
      response.session_id = *id;
      response.banner = options_.banner;
      return EncodeResponse(response);
    }
    case Opcode::kQuery:
      return HandleQuery(connection, request);
    case Opcode::kPing:
      // Sessionless pings are a health check; with a session they
      // double as keep-alive.
      if (connection->session_id_ != 0) {
        sessions_.Touch(connection->session_id_, now).ok();
      }
      return EncodeResponse(response);
    case Opcode::kStats: {
      ServiceStats stats = this->stats();
      response.stats.sessions_active = stats.sessions_active;
      response.stats.queries_served = stats.queries_served;
      response.stats.request_errors = stats.request_errors;
      response.stats.sessions_evicted = stats.sessions_evicted;
      return EncodeResponse(response);
    }
    case Opcode::kBye:
      if (connection->session_id_ != 0) {
        sessions_.Close(connection->session_id_).ok();
        connection->session_id_ = 0;
      }
      return EncodeResponse(response);
  }
  return error(Status::Internal("unhandled opcode"));
}

std::string QueryService::HandleQuery(Connection* connection,
                                      const Request& request) {
  auto error = [&](const Status& status) {
    request_errors_.fetch_add(1, std::memory_order_relaxed);
    return EncodeErrorResponse(Opcode::kQuery, status);
  };
  if (connection->session_id_ == 0) {
    return error(
        Status::InvalidArgument("no session — send HELLO first"));
  }
  Status touched = sessions_.Touch(connection->session_id_, NowMs());
  if (!touched.ok()) {
    // Evicted under us: the session is gone for good; the client must
    // HELLO again.
    uint64_t expired = connection->session_id_;
    connection->session_id_ = 0;
    return error(Status::NotFound("session ", expired,
                                  " expired (idle timeout)"));
  }
  Result<store::MultiResult> result =
      executor_.ExecuteText(request.scope, request.query,
                            options_.execute);
  if (!result.ok()) return error(result.status());

  Response response;
  response.ok = true;
  response.opcode = Opcode::kQuery;
  response.row_count = result->rows.size();
  response.truncated = result->truncated;
  response.table = result->ToText();
  uint64_t cap = sessions_.options().max_result_bytes;
  // Clamp to the frame budget: whatever the session policy says, an
  // answer this path approves must encode into one response frame, or
  // the TCP front-end would bounce what the in-process transport
  // delivered.
  if (cap == 0 || cap > kMaxQueryTableBytes) cap = kMaxQueryTableBytes;
  if (response.table.size() > cap) {
    // The per-session result-memory bound: the rendered answer is
    // dropped here, an error goes back, the session lives on.
    return error(Status::ResourceExhausted(
        "result of ", response.table.size(),
        " bytes exceeds the per-session cap of ", cap,
        " bytes; narrow the query or add LIMIT"));
  }
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  return EncodeResponse(response);
}

std::vector<uint64_t> QueryService::EvictIdle() {
  return sessions_.EvictIdle(NowMs());
}

void QueryService::BeginShutdown() {
  draining_.store(true, std::memory_order_release);
}

void QueryService::Shutdown() {
  BeginShutdown();
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

ServiceStats QueryService::stats() const {
  ServiceStats stats;
  stats.sessions_active = sessions_.size();
  stats.queries_served = queries_served_.load(std::memory_order_relaxed);
  stats.request_errors = request_errors_.load(std::memory_order_relaxed);
  stats.sessions_evicted = sessions_.total_evicted();
  return stats;
}

Result<InProcessClient> InProcessClient::Connect(QueryService* service) {
  MEETXML_ASSIGN_OR_RETURN(
      std::unique_ptr<QueryService::Connection> connection,
      service->Connect());
  return InProcessClient(std::move(connection));
}

Result<Response> InProcessClient::Roundtrip(const Request& request) {
  // The full wire path minus the wire: encode, frame, unframe, decode
  // on both sides, so the in-process transport exercises exactly the
  // bytes TCP clients send.
  FrameBuffer frames;
  frames.Append(EncodeFrame(EncodeRequest(request)));
  MEETXML_ASSIGN_OR_RETURN(std::optional<std::string> payload,
                           frames.Next());
  if (!payload.has_value()) {
    return Status::Internal("encoder produced a partial frame");
  }
  std::string response_payload = connection_->HandlePayload(*payload);
  return DecodeResponse(response_payload);
}

Result<uint64_t> InProcessClient::Hello() {
  Request request;
  request.opcode = Opcode::kHello;
  request.protocol_version = kProtocolVersion;
  MEETXML_ASSIGN_OR_RETURN(Response response, Roundtrip(request));
  if (!response.ok) {
    return Status(response.code, response.message);
  }
  return response.session_id;
}

Result<Response> InProcessClient::Query(std::string_view scope,
                                        std::string_view query_text) {
  Request request;
  request.opcode = Opcode::kQuery;
  request.scope = std::string(scope);
  request.query = std::string(query_text);
  return Roundtrip(request);
}

Status InProcessClient::Bye() {
  Request request;
  request.opcode = Opcode::kBye;
  MEETXML_ASSIGN_OR_RETURN(Response response, Roundtrip(request));
  if (!response.ok) {
    return Status(response.code, response.message);
  }
  return Status::OK();
}

}  // namespace server
}  // namespace meetxml
