#include "util/mmap_file.h"

#include <cerrno>
#include <cstring>

#include "util/failpoint.h"
#include "util/file_io.h"

#if defined(__unix__) || defined(__APPLE__)
#define MEETXML_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace meetxml {
namespace util {

namespace {

// errno rendered for error messages; strerror is not re-entrant on
// every libc, but the loaders only open files from one thread at a
// time and a garbled message is the worst possible outcome.
std::string ErrnoText(int err) {
  const char* text = std::strerror(err);
  return text != nullptr ? std::string(text) : std::string("unknown error");
}

}  // namespace

Result<MmapFile> MmapFile::Open(const std::string& path, Advice advice) {
  MEETXML_FAILPOINT("mmap.open");
#if defined(MEETXML_HAVE_MMAP)
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open ", path, ": ", ErrnoText(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
    if (st.st_size == 0) {
      ::close(fd);
      return Status::InvalidArgument("cannot map ", path,
                                     ": file is empty");
    }
    MmapFile file;
    void* mapped = ::mmap(nullptr, static_cast<size_t>(st.st_size),
                          PROT_READ, MAP_PRIVATE, fd, 0);
    // The mapping keeps its own reference; the descriptor is done
    // either way.
    ::close(fd);
    if (mapped != MAP_FAILED && MEETXML_FAILPOINT_TRIGGERED("mmap.map")) {
      // Injected map failure: unmap and take the buffered fallback, so
      // tests can prove the degraded path serves the same bytes.
      ::munmap(mapped, static_cast<size_t>(st.st_size));
      mapped = MAP_FAILED;
    }
    if (mapped != MAP_FAILED) {
      file.mapped_ = mapped;
      file.mapped_size_ = static_cast<size_t>(st.st_size);
      file.Advise(advice);
      return file;
    }
    // mmap refused (exotic filesystem, resource limits): fall through
    // to the buffered read below.
  } else {
    // Not a regular file (fifo, directory, device): the buffered
    // reader gets to try — it reports its own error when it can't.
    ::close(fd);
  }
#endif
  MEETXML_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  if (content.empty()) {
    return Status::InvalidArgument("cannot map ", path, ": file is empty");
  }
  MmapFile file;
  file.buffer_ = std::move(content);
  return file;
}

Result<std::shared_ptr<const MmapFile>> MmapFile::OpenShared(
    const std::string& path, Advice advice) {
  MEETXML_ASSIGN_OR_RETURN(MmapFile file, Open(path, advice));
  return std::make_shared<const MmapFile>(std::move(file));
}

void MmapFile::Advise(Advice advice) const {
#if defined(MEETXML_HAVE_MMAP) && defined(POSIX_MADV_NORMAL)
  if (mapped_ == nullptr) return;
  int hint = POSIX_MADV_NORMAL;
  switch (advice) {
    case Advice::kNormal:
      hint = POSIX_MADV_NORMAL;
      break;
    case Advice::kWillNeed:
      hint = POSIX_MADV_WILLNEED;
      break;
    case Advice::kRandom:
      hint = POSIX_MADV_RANDOM;
      break;
    case Advice::kSequential:
      hint = POSIX_MADV_SEQUENTIAL;
      break;
  }
  // Best-effort by contract: the result is deliberately dropped.
  (void)::posix_madvise(mapped_, mapped_size_, hint);
#else
  (void)advice;
#endif
}

void MmapFile::Release() {
#if defined(MEETXML_HAVE_MMAP)
  if (mapped_ != nullptr) {
    ::munmap(mapped_, mapped_size_);
  }
#endif
  mapped_ = nullptr;
  mapped_size_ = 0;
  buffer_.clear();
}

}  // namespace util
}  // namespace meetxml
