// Result restrictions for the meet operator (paper §4): type (path)
// restrictions meet_X, the distance bound of d-meet, and ranking.

#ifndef MEETXML_CORE_RESTRICTIONS_H_
#define MEETXML_CORE_RESTRICTIONS_H_

#include <atomic>
#include <limits>
#include <unordered_set>

#include "bat/oid.h"
#include "model/document.h"

namespace meetxml {
namespace core {

/// \brief Options applied to set-at-a-time meet results.
struct MeetOptions {
  /// Paths whose nodes may not be reported as meets (the paper's set X;
  /// typically the document root, "by setting X to {bibliography} we can
  /// filter out uninteresting matches").
  std::unordered_set<bat::PathId> excluded_paths;

  /// If non-empty, only these paths may be reported as meets (the
  /// complementary whitelist form; the paper phrases meet_X as a
  /// blacklist, a whitelist implements "restricting the result types ...
  /// can be used to implement keyword search as a special case").
  std::unordered_set<bat::PathId> allowed_paths;

  /// Maximum witness span in edges: a meet is dropped when its two
  /// farthest witnesses are more than this many edges apart (d-meet).
  int max_distance = std::numeric_limits<int>::max();

  /// Stop after this many results (0 = unlimited). A bounded run keeps a
  /// size-k heap instead of the full result vector, so memory is O(k)
  /// and candidates provably outside the top k skip witness
  /// materialization entirely.
  size_t max_results = 0;

  /// Collect every qualifying meet and only trim to max_results after
  /// the final sort — the pre-heap behaviour, kept selectable so the
  /// streaming-vs-materialized benches compare real work, not flags.
  bool materialize_all = false;

  /// Optional distance ceiling shared across a multi-document fan-out:
  /// candidates strictly farther than the loaded value are pruned
  /// before witness materialization. Relaxed loads only — the bound is
  /// a monotone hint, and a stale read merely materializes a candidate
  /// the global merge would discard anyway, so the merged answer stays
  /// exact.
  const std::atomic<int>* shared_max_distance = nullptr;

  /// \brief True if a node at `path` may be reported.
  bool PathAllowed(bat::PathId path) const {
    if (excluded_paths.count(path)) return false;
    if (!allowed_paths.empty() && !allowed_paths.count(path)) return false;
    return true;
  }
};

/// \brief Convenience: options that exclude the document root — the
/// configuration of the paper's DBLP case study (§5).
inline MeetOptions ExcludeRootOptions(const model::StoredDocument& doc) {
  MeetOptions options;
  options.excluded_paths.insert(doc.path(doc.root()));
  return options;
}

}  // namespace core
}  // namespace meetxml

#endif  // MEETXML_CORE_RESTRICTIONS_H_
