#include "core/meet_general_relational.h"

#include <algorithm>
#include <unordered_map>

#include "bat/ops.h"

namespace meetxml {
namespace core {

using bat::Bat;
using util::Result;
using util::Status;

namespace {

struct Witness {
  Assoc assoc;
  size_t source;
};

// An item relation row: (current node, item id). Items carry one or
// more witnesses (several after duplicate-association merging).
using ItemBat = Bat<Oid, uint32_t>;

Status ValidateInput(const StoredDocument& doc, const AssocSet& set,
                     size_t index) {
  if (set.path >= doc.paths().size()) {
    return Status::NotFound("meet input set ", index, ": unknown path id ",
                            set.path);
  }
  bool is_attr =
      doc.paths().kind(set.path) == model::StepKind::kAttribute;
  PathId node_path = is_attr ? doc.paths().parent(set.path) : set.path;
  for (Oid node : set.nodes) {
    if (node >= doc.node_count()) {
      return Status::NotFound("meet input set ", index,
                              ": no node with OID ", node);
    }
    if (doc.path(node) != node_path) {
      return Status::InvalidArgument(
          "meet input set ", index, ": node OID ", node,
          " does not match the set's path (sets must be uniformly typed)");
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<GeneralMeet>> MeetGeneralRelational(
    const StoredDocument& doc, const std::vector<AssocSet>& inputs,
    const MeetOptions& options, RelationalMeetStats* stats) {
  if (!doc.finalized()) {
    return Status::InvalidArgument("document is not finalized");
  }
  RelationalMeetStats local_stats;
  RelationalMeetStats* st = stats != nullptr ? stats : &local_stats;
  *st = RelationalMeetStats{};

  const model::PathSummary& paths = doc.paths();

  // Seed: identical duplicate-merging to MeetGeneral's (one item per
  // distinct association; witnesses accumulate).
  std::vector<Witness> witnesses;
  std::vector<std::vector<uint32_t>> item_witnesses;  // item -> wids
  std::vector<ItemBat> buckets(paths.size());
  {
    std::unordered_map<uint64_t, uint32_t> seen;  // (path,node) -> item
    for (size_t i = 0; i < inputs.size(); ++i) {
      MEETXML_RETURN_NOT_OK(ValidateInput(doc, inputs[i], i));
      for (Oid node : inputs[i].nodes) {
        Assoc assoc{inputs[i].path, node};
        uint32_t wid = static_cast<uint32_t>(witnesses.size());
        witnesses.push_back(Witness{assoc, i});
        uint64_t key =
            (static_cast<uint64_t>(inputs[i].path) << 32) | node;
        auto it = seen.find(key);
        if (it != seen.end()) {
          item_witnesses[it->second].push_back(wid);
          continue;
        }
        uint32_t item = static_cast<uint32_t>(item_witnesses.size());
        item_witnesses.push_back({wid});
        seen.emplace(key, item);
        buckets[inputs[i].path].Append(node, item);
      }
    }
  }

  std::vector<GeneralMeet> results;

  // Roll up, children before parents (path ids are topological).
  for (size_t p = paths.size(); p-- > 0;) {
    PathId pid = static_cast<PathId>(p);
    ItemBat relation = std::move(buckets[pid]);
    if (relation.empty()) continue;
    ++st->paths_touched;

    const bool is_attr = paths.kind(pid) == model::StepKind::kAttribute;
    const uint32_t node_depth =
        is_attr ? paths.depth(pid) - 1 : paths.depth(pid);

    // Group by current node (sort — the relational grouping).
    relation.Sort();
    ItemBat survivors;
    size_t row = 0;
    while (row < relation.size()) {
      size_t end = row;
      while (end < relation.size() &&
             relation.head(end) == relation.head(row)) {
        ++end;
      }
      Oid node = relation.head(row);
      bool merged_duplicate =
          end - row == 1 &&
          item_witnesses[relation.tail(row)].size() >= 2;
      if (end - row >= 2 || merged_duplicate) {
        GeneralMeet meet;
        meet.meet = node;
        meet.meet_path = doc.path(node);
        int largest = 0;
        int second = 0;
        for (size_t r = row; r < end; ++r) {
          for (uint32_t wid : item_witnesses[relation.tail(r)]) {
            const Witness& w = witnesses[wid];
            int dist = w.assoc.path == pid
                           ? 0
                           : static_cast<int>(AssocDepth(doc, w.assoc)) -
                                 static_cast<int>(node_depth);
            meet.witnesses.push_back(MeetWitness{w.assoc, w.source, dist});
            if (dist >= largest) {
              second = largest;
              largest = dist;
            } else if (dist > second) {
              second = dist;
            }
          }
        }
        meet.witness_distance = largest + second;
        if (options.PathAllowed(meet.meet_path) &&
            meet.witness_distance <= options.max_distance) {
          std::sort(meet.witnesses.begin(), meet.witnesses.end(),
                    [](const MeetWitness& a, const MeetWitness& b) {
                      if (a.assoc.node != b.assoc.node) {
                        return a.assoc.node < b.assoc.node;
                      }
                      return a.assoc.path < b.assoc.path;
                    });
          results.push_back(std::move(meet));
        }
      } else {
        survivors.Append(relation.head(row), relation.tail(row));
      }
      row = end;
    }

    // Lift survivors one level: the paper's parent() join.
    PathId parent_path = paths.parent(pid);
    if (parent_path == bat::kInvalidPathId || survivors.empty()) {
      continue;
    }
    ItemBat lifted;
    if (is_attr) {
      lifted = std::move(survivors);  // arc collapses onto the owner
    } else {
      // edges: (parent, child); survivors: (child, item) ->
      // join yields (parent, item).
      lifted = bat::Join(doc.EdgesAt(pid), survivors);
      ++st->joins;
      st->join_rows += lifted.size();
    }
    ItemBat& target = buckets[parent_path];
    for (size_t r = 0; r < lifted.size(); ++r) {
      target.Append(lifted.head(r), lifted.tail(r));
    }
  }

  std::sort(results.begin(), results.end(),
            [](const GeneralMeet& a, const GeneralMeet& b) {
              if (a.witness_distance != b.witness_distance) {
                return a.witness_distance < b.witness_distance;
              }
              return a.meet < b.meet;
            });
  if (options.max_results > 0 && results.size() > options.max_results) {
    results.resize(options.max_results);
  }
  return results;
}

}  // namespace core
}  // namespace meetxml
