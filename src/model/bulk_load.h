// Parallel bulk-load pipeline: the multi-threaded Monet transform.
//
// The paper's case study bulk-loads hundreds of megabytes (the 200 MB
// feature corpus, the full DBLP) before a single query runs, and
// shredding was the one stage of this reproduction that stayed
// single-threaded. This module splits a corpus into shard units at
// top-level element boundaries with a lexical scan (no parse), shreds
// the shards on a thread pool — each worker runs the same streaming
// ShredSink as the sequential path, into a thread-local builder — and
// merges the shards with a deterministic OID-rebase/path-re-intern
// replay. The merged document is bit-identical to the output of
// ShredXmlText / ShredXmlTextStreaming (the equivalence is pinned by
// byte-comparing storage images in tests/bulk_load_test.cc), so callers
// can switch freely between the paths.
//
// Inputs whose top-level structure the splitter cannot chunk safely
// (a childless root, fewer units than would pay for a thread, or any
// structural anomaly) fall back to the sequential streaming shredder,
// which also produces the authoritative error message for malformed
// documents.

#ifndef MEETXML_MODEL_BULK_LOAD_H_
#define MEETXML_MODEL_BULK_LOAD_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "model/shredder.h"
#include "util/result.h"

namespace meetxml {
namespace model {

/// \brief Knobs for the parallel bulk load.
struct BulkLoadOptions {
  /// Shredding options, forwarded to every shard worker.
  ShredOptions shred;
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  unsigned threads = 0;
  /// Target XML bytes per shard. Shards are whole top-level subtrees,
  /// so actual shards can exceed this when a single subtree is larger.
  size_t target_chunk_bytes = size_t{1} << 20;
  /// Inputs smaller than this skip the pipeline entirely: thread
  /// start-up would cost more than it saves.
  size_t min_parallel_bytes = size_t{256} << 10;
};

/// \brief Parses and shreds `xml_text` on a thread pool. The result is
/// finalized and bit-identical to ShredXmlText's.
util::Result<StoredDocument> BulkShredXmlText(
    std::string_view xml_text, const BulkLoadOptions& options = {});

/// \brief Convenience: read file + parallel parse + shred.
util::Result<StoredDocument> BulkShredXmlFile(
    const std::string& path, const BulkLoadOptions& options = {});

namespace internal {

/// \brief One top-level shard unit boundary layout, produced by the
/// lexical splitter. Offsets index into the original input.
struct CorpusSplit {
  /// End of the root start tag (exclusive) — `[0, root_open_end)` is
  /// prolog + the root's own tag and attributes.
  size_t root_open_end = 0;
  /// Content region between the root tags.
  size_t content_begin = 0;
  size_t content_end = 0;
  /// Root element tag (prefix-verbatim, like the parser keeps it).
  std::string root_tag;
  /// Start offset of every top-level unit. A unit runs to the next
  /// start (or content_end) and begins at a top-level element start
  /// tag, except the first, which begins at content_begin and may
  /// carry leading character data. Splitting only at element starts
  /// guarantees no merged text run spans a shard boundary.
  std::vector<size_t> unit_starts;
};

/// \brief Lexically locates the top-level unit boundaries of `xml_text`
/// without parsing: comments, CDATA sections, processing instructions,
/// DOCTYPE internal subsets and quoted attribute values are skipped,
/// depth is tracked, and the root close tag is verified. Returns an
/// error for inputs whose structure cannot be chunked safely; callers
/// fall back to the sequential shredder (which re-diagnoses malformed
/// input with proper line/column positions).
util::Result<CorpusSplit> SplitTopLevel(std::string_view xml_text);

}  // namespace internal

}  // namespace model
}  // namespace meetxml

#endif  // MEETXML_MODEL_BULK_LOAD_H_
