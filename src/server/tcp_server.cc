#include "server/tcp_server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/net.h"

namespace meetxml {
namespace server {

using util::Result;
using util::Status;

TcpServer::TcpServer(QueryService* service, const TcpServerOptions& options)
    : service_(service), options_(options) {
  inbox_gauge_ = &service_->metrics().gauge("meetxml_server_inbox_frames");
}

Result<std::unique_ptr<TcpServer>> TcpServer::Start(
    QueryService* service, const TcpServerOptions& options) {
  std::unique_ptr<TcpServer> server(new TcpServer(service, options));
  MEETXML_ASSIGN_OR_RETURN(server->listen_fd_,
                           util::ListenTcp(options.port));
  Result<uint16_t> port = util::LocalPort(server->listen_fd_);
  if (!port.ok()) {
    util::CloseSocket(server->listen_fd_);
    return port.status();
  }
  server->port_ = *port;
  // The pool measures queue wait and execute time on the service's
  // clock, into the service's registry — the one kDump renders.
  WorkerPoolOptions pool_options;
  pool_options.threads = options.workers;
  pool_options.metrics =
      service->options().observe ? &service->metrics() : nullptr;
  pool_options.clock_us = [service] { return service->NowUs(); };
  server->pool_ = std::make_unique<WorkerPool>(std::move(pool_options));
  server->accept_thread_ = std::thread([s = server.get()] {
    s->AcceptLoop();
  });
  server->maintenance_thread_ = std::thread([s = server.get()] {
    s->MaintenanceLoop();
  });
  return server;
}

TcpServer::~TcpServer() { Stop(); }

void TcpServer::AcceptLoop() {
  for (;;) {
    Result<int> fd = util::AcceptConnection(listen_fd_);
    if (stopping_.load(std::memory_order_acquire)) {
      if (fd.ok()) util::CloseSocket(*fd);
      return;
    }
    if (!fd.ok()) {
      // The listener broke outside of Stop() — nothing to accept on
      // anymore; the server keeps serving existing connections.
      return;
    }
    Result<std::unique_ptr<QueryService::Connection>> service_conn =
        service_->Connect();
    if (!service_conn.ok()) {
      // Draining: refuse politely with one framed error, then close.
      util::WriteFull(*fd, EncodeFrame(EncodeErrorResponse(
                               Opcode::kHello, service_conn.status())))
          .ok();
      util::CloseSocket(*fd);
      continue;
    }
    auto conn = std::make_shared<Conn>();
    conn->fd = *fd;
    conn->service_conn = std::move(*service_conn);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(conn);
    }
    conn->reader = std::thread([this, conn] { ReaderLoop(conn); });
  }
}

void TcpServer::ReaderLoop(std::shared_ptr<Conn> conn) {
  FrameBuffer frames;
  char buffer[16384];
  while (!conn->dead.load(std::memory_order_acquire)) {
    Result<size_t> n = util::ReadSome(conn->fd, buffer, sizeof(buffer));
    if (!n.ok() || *n == 0) break;
    frames.Append(std::string_view(buffer, *n));
    for (;;) {
      Result<std::optional<std::string>> next = frames.Next();
      if (!next.ok()) {
        // Framing is unrecoverable: answer once, stop reading. Frames
        // already queued still answer (per-request error contract).
        std::string error_frame =
            EncodeFrame(EncodeErrorResponse(Opcode::kPing, next.status()));
        {
          std::lock_guard<std::mutex> lock(conn->write_mu);
          util::WriteFull(conn->fd, error_frame).ok();
        }
        conn->dead.store(true, std::memory_order_release);
        break;
      }
      if (!next->has_value()) break;
      Enqueue(conn, std::move(**next));
    }
  }
  util::ShutdownRead(conn->fd);
  conn->reader_done.store(true, std::memory_order_release);
}

void TcpServer::Enqueue(const std::shared_ptr<Conn>& conn,
                        std::string payload) {
  bool schedule = false;
  {
    std::unique_lock<std::mutex> lock(conn->mu);
    // Backpressure: park this connection's reader (and with it the
    // client's TCP window) while the inbox sits at its bound, instead
    // of queueing without limit. Pump signals every pop; a dying or
    // stopping connection signals too, and its frame dies with it.
    conn->inbox_cv.wait(lock, [&] {
      return (conn->inbox.size() < options_.max_inbox_frames &&
              conn->inbox_bytes < options_.max_inbox_bytes) ||
             conn->dead.load(std::memory_order_acquire) ||
             stopping_.load(std::memory_order_acquire);
    });
    if (conn->dead.load(std::memory_order_acquire) ||
        stopping_.load(std::memory_order_acquire)) {
      return;
    }
    InboxItem item;
    item.payload = std::move(payload);
    // Admission happens at enqueue, not dispatch, so the service-level
    // cap bounds the whole backlog across connections. A refused query
    // is shed right here — but its busy reply rides the inbox like any
    // frame, keeping responses in strict request order.
    if (!item.payload.empty() &&
        static_cast<uint8_t>(item.payload.front()) ==
            static_cast<uint8_t>(Opcode::kQuery)) {
      if (service_->TryAcquireQuerySlot()) {
        item.holds_slot = true;
        item.admitted_ms = service_->NowMs();
      } else {
        item.payload = service_->MakeBusyResponse(
            conn->service_conn->protocol_version(), false);
        item.ready_reply = true;
      }
    }
    conn->inbox_bytes += item.payload.size();
    conn->inbox.push_back(std::move(item));
    inbox_gauge_->Add(1);
    if (!conn->running) {
      conn->running = true;
      schedule = true;
    }
  }
  if (schedule) {
    pool_->Submit([this, conn] { Pump(conn); });
  }
}

void TcpServer::Pump(std::shared_ptr<Conn> conn) {
  for (;;) {
    InboxItem item;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->inbox.empty()) {
        conn->running = false;
        return;
      }
      item = std::move(conn->inbox.front());
      conn->inbox.pop_front();
      conn->inbox_bytes -= item.payload.size();
      inbox_gauge_->Add(-1);
    }
    conn->inbox_cv.notify_one();
    std::string response;
    if (item.ready_reply) {
      response = std::move(item.payload);
    } else {
      RequestContext ctx;
      ctx.admitted_ms = item.admitted_ms;
      ctx.pre_admitted = item.holds_slot;
      response = conn->service_conn->HandlePayload(item.payload, ctx);
    }
    if (response.size() > kMaxFrameBytes) {
      // Pure safety net: HandleQuery clamps rendered tables to
      // kMaxQueryTableBytes, so no encoder should ever get here; if
      // one does, send the bound violation, not an unreadable frame.
      response = EncodeErrorResponse(
          Opcode::kQuery,
          Status::ResourceExhausted(
              "response of ", response.size(), " bytes exceeds the ",
              kMaxFrameBytes, "-byte frame limit; add LIMIT"));
    }
    std::string frame = EncodeFrame(response);
    bool write_failed;
    {
      std::lock_guard<std::mutex> lock(conn->write_mu);
      write_failed = !util::WriteFull(conn->fd, frame).ok();
    }
    if (write_failed) {
      conn->dead.store(true, std::memory_order_release);
      util::ShutdownSocket(conn->fd);
      // The empty critical section orders the store against the
      // reader's predicate check, so a reader parked in Enqueue cannot
      // miss this wakeup.
      { std::lock_guard<std::mutex> state_lock(conn->mu); }
      conn->inbox_cv.notify_all();
    }
  }
}

void TcpServer::MaintenanceLoop() {
  std::unique_lock<std::mutex> lock(maintenance_mu_);
  while (!stopping_.load(std::memory_order_acquire)) {
    maintenance_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.maintenance_interval_ms),
        [this] { return stopping_.load(std::memory_order_acquire); });
    if (stopping_.load(std::memory_order_acquire)) return;
    lock.unlock();
    std::vector<uint64_t> evicted = service_->EvictIdle();
    if (!evicted.empty()) {
      std::lock_guard<std::mutex> conns_lock(conns_mu_);
      for (const std::shared_ptr<Conn>& conn : conns_) {
        uint64_t session = conn->service_conn->session_id();
        if (session != 0 && std::find(evicted.begin(), evicted.end(),
                                      session) != evicted.end()) {
          // The session is gone; hang up so the client notices now
          // instead of at its next request.
          util::ShutdownSocket(conn->fd);
        }
      }
    }
    Reap();
    lock.lock();
  }
}

void TcpServer::Reap() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    Conn& conn = **it;
    // Order matters: observe reader_done BEFORE snapshotting idleness.
    // Once the reader has finished, no further Enqueue can set
    // `running`, so an idle snapshot taken afterwards stays true and
    // the teardown below cannot race a queued Pump. The reverse order
    // would let the reader's final frame land between the two reads
    // and Pump would then dereference the reset service_conn.
    if (!conn.reader_done.load(std::memory_order_acquire)) {
      ++it;
      continue;
    }
    bool idle;
    {
      std::lock_guard<std::mutex> conn_lock(conn.mu);
      idle = !conn.running && conn.inbox.empty();
    }
    if (idle) {
      if (conn.reader.joinable()) conn.reader.join();
      util::CloseSocket(conn.fd);
      conn.service_conn.reset();  // releases the session
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void TcpServer::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  // 1. Stop intake: wake the accept loop (shutdown on a listening
  //    socket fails accept with EINVAL on Linux), join, release.
  util::ShutdownSocket(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  util::CloseSocket(listen_fd_);
  listen_fd_ = -1;
  maintenance_cv_.notify_all();
  if (maintenance_thread_.joinable()) maintenance_thread_.join();
  // 2. Stop reading new requests; already-queued dispatches keep their
  //    write side, so in-flight queries still answer. Readers parked
  //    on a full inbox see stopping_ and bail (the empty critical
  //    section orders the flag against their predicate check).
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const std::shared_ptr<Conn>& conn : conns_) {
      util::ShutdownRead(conn->fd);
      { std::lock_guard<std::mutex> state_lock(conn->mu); }
      conn->inbox_cv.notify_all();
    }
  }
  // 3. Drain the pool: every queued dispatch runs to completion and
  //    its response is delivered before any socket closes.
  if (pool_ != nullptr) pool_->Shutdown();
  // 4. Tear down: join readers, close sockets, release sessions.
  std::vector<std::shared_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (const std::shared_ptr<Conn>& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
    util::ShutdownSocket(conn->fd);
    util::CloseSocket(conn->fd);
    // Frames still in the inbox die with the connection — the gauge
    // must not keep counting them, and admission slots they hold must
    // go back (a leaked slot would shrink the cap forever).
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      inbox_gauge_->Add(-static_cast<int64_t>(conn->inbox.size()));
      for (const InboxItem& item : conn->inbox) {
        if (item.holds_slot) service_->ReleaseQuerySlot();
      }
      conn->inbox.clear();
    }
    conn->service_conn.reset();
  }
}

size_t TcpServer::connection_count() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  return conns_.size();
}

}  // namespace server
}  // namespace meetxml
