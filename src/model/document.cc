#include "model/document.h"

#include <algorithm>
#include <span>

#include "model/validate.h"

namespace meetxml {
namespace model {

using util::Status;

namespace {
const OidOidBat kEmptyEdges;
const OidStrBat kEmptyStrings;
}  // namespace

std::vector<Oid> StoredDocument::children(Oid node) const {
  std::vector<Oid> out;
  if (!finalized_ || node >= parent_.size()) return out;
  uint32_t begin = child_offsets_[node];
  uint32_t end = child_offsets_[node + 1];
  out.assign(child_list_.begin() + begin, child_list_.begin() + end);
  return out;
}

util::Status StoredDocument::EnsureValidated() const {
  std::shared_ptr<ValidationGate> gate = validation_gate_;
  if (gate == nullptr) return Status::OK();
  if (gate->done.load(std::memory_order_acquire)) return gate->status;
  std::lock_guard<std::mutex> lock(gate->mu);
  if (!gate->done.load(std::memory_order_relaxed)) {
    // Order matters: the storage-column and derived-structure checks
    // establish the bounds ValidateDocument's traversals (children(),
    // IsAncestorOrSelf) rely on, so they must pass first.
    util::Status status = ValidateStorageColumns(*this);
    if (status.ok()) status = ValidateDerivedStructures(*this);
    if (status.ok()) status = ValidateDocument(*this);
    gate->status = std::move(status);
    gate->done.store(true, std::memory_order_release);
  }
  return gate->status;
}

void StoredDocument::MarkUnvalidated() {
  validation_gate_ = std::make_shared<ValidationGate>();
}

bool StoredDocument::IsAncestorOrSelf(Oid ancestor, Oid node) const {
  // Steered by depth: walk `node` up exactly to ancestor's depth.
  uint32_t target = depth(ancestor);
  Oid cur = node;
  while (depth(cur) > target) cur = parent_[cur];
  return cur == ancestor;
}

const OidOidBat& StoredDocument::EdgesAt(PathId path) const {
  if (path >= edges_.size()) return kEmptyEdges;
  return edges_[path];
}

const OidStrBat& StoredDocument::StringsAt(PathId path) const {
  if (path >= strings_.size()) return kEmptyStrings;
  return strings_[path];
}

std::vector<std::string_view> StoredDocument::StringValuesAt(
    PathId path, Oid owner) const {
  std::vector<std::string_view> out;
  if (path >= string_sorted_.size()) return out;
  const OidStrBat& table = strings_[path];
  if (string_sorted_[path]) {
    std::span<const Oid> heads = table.heads();
    auto range = std::equal_range(heads.begin(), heads.end(), owner);
    for (auto it = range.first; it != range.second; ++it) {
      out.push_back(table.tail(static_cast<size_t>(it - heads.begin())));
    }
    return out;
  }
  auto it = string_index_[path].find(owner);
  if (it == string_index_[path].end()) return out;
  for (uint32_t row : it->second) out.push_back(table.tail(row));
  return out;
}

std::vector<StringAssociation> StoredDocument::AttributesOf(
    Oid element) const {
  // Collect (global append sequence, association) so that the original
  // per-element attribute order is restored even when different elements
  // of the same path interned their attribute names in different orders.
  std::vector<std::pair<uint64_t, StringAssociation>> collected;
  PathId element_path = path_[element];
  for (PathId child : paths_.children(element_path)) {
    if (paths_.kind(child) != StepKind::kAttribute) continue;
    if (child >= string_sorted_.size()) continue;
    const OidStrBat& table = strings_[child];
    auto emit = [&](uint32_t row) {
      collected.emplace_back(
          string_seq_[child][row],
          StringAssociation{child, element,
                            std::string(table.tail(row))});
    };
    if (string_sorted_[child]) {
      std::span<const Oid> heads = table.heads();
      auto range = std::equal_range(heads.begin(), heads.end(), element);
      for (auto it = range.first; it != range.second; ++it) {
        emit(static_cast<uint32_t>(it - heads.begin()));
      }
    } else {
      auto it = string_index_[child].find(element);
      if (it == string_index_[child].end()) continue;
      for (uint32_t row : it->second) emit(row);
    }
  }
  std::sort(collected.begin(), collected.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<StringAssociation> out;
  out.reserve(collected.size());
  for (auto& [seq, assoc] : collected) out.push_back(std::move(assoc));
  return out;
}

std::string_view StoredDocument::CdataValue(Oid cdata_node) const {
  auto values = StringValuesAt(path_[cdata_node], cdata_node);
  return values.empty() ? std::string_view() : values.front();
}

std::vector<std::tuple<PathId, Oid, std::string_view>>
StoredDocument::StringsInAppendOrder() const {
  std::vector<std::tuple<PathId, Oid, std::string_view>> out(
      string_count_);
  for (PathId p = 0; p < strings_.size(); ++p) {
    const OidStrBat& table = strings_[p];
    for (size_t row = 0; row < table.size(); ++row) {
      out[string_seq_[p][row]] =
          std::make_tuple(p, table.head(row), table.tail(row));
    }
  }
  return out;
}

std::span<const uint32_t> StoredDocument::StringSeqAt(PathId path) const {
  if (path >= string_seq_.size()) return {};
  return string_seq_[path].span();
}

Oid StoredDocument::AppendNode(PathId path, Oid parent, int rank) {
  Oid oid = static_cast<Oid>(parent_.size());
  parent_.push_back(parent);
  path_.push_back(path);
  rank_.push_back(rank);
  if (path >= edges_.size()) edges_.resize(path + 1);
  if (edges_[path].empty()) edge_paths_.push_back(path);
  edges_[path].Append(parent, oid);
  finalized_ = false;
  return oid;
}

void StoredDocument::ReserveNodes(size_t count) {
  parent_.reserve(count);
  path_.reserve(count);
  rank_.reserve(count);
}

void StoredDocument::AppendString(PathId path, Oid owner,
                                  std::string_view value) {
  if (path >= strings_.size()) {
    strings_.resize(path + 1);
    string_seq_.resize(path + 1);
  }
  if (strings_[path].empty()) string_paths_.push_back(path);
  strings_[path].Append(owner, value);
  string_seq_[path].push_back(static_cast<uint32_t>(string_count_));
  ++string_count_;
  finalized_ = false;
}

util::Status StoredDocument::CheckNodeColumns(
    std::span<const Oid> parents, std::span<const PathId> paths,
    size_t rank_count) const {
  if (!parent_.empty()) {
    return Status::InvalidArgument(
        "node columns can only be adopted into an empty document");
  }
  if (parents.size() != paths.size() || parents.size() != rank_count) {
    return Status::InvalidArgument("node column lengths differ");
  }
  if (parents.empty()) {
    return Status::InvalidArgument("cannot adopt zero nodes");
  }
  if (parents[0] != kInvalidOid) {
    return Status::InvalidArgument("node 0 must be the parentless root");
  }
  for (size_t i = 1; i < parents.size(); ++i) {
    if (parents[i] >= i) {
      return Status::InvalidArgument(
          "parent OIDs must precede children (DFS order)");
    }
  }
  for (PathId path : paths) {
    if (path >= paths_.size()) {
      return Status::InvalidArgument("node path id out of range");
    }
  }
  return Status::OK();
}

void StoredDocument::DeriveEdgeRelations() {
  // Derive the per-path edge relations in one counted pass instead of
  // a push_back per node; edge_paths_ keeps first-appearance order,
  // exactly what the append path would have produced. (The edges are
  // derived structures, so they are always owned — view-backed
  // documents only borrow the raw columns they were decoded from.)
  std::vector<uint32_t> per_path(paths_.size(), 0);
  PathId max_path = 0;
  for (size_t i = 0; i < path_.size(); ++i) {
    if (per_path[path_[i]]++ == 0) edge_paths_.push_back(path_[i]);
    max_path = std::max(max_path, path_[i]);
  }
  edges_.resize(max_path + 1);
  for (PathId p : edge_paths_) edges_[p].Reserve(per_path[p]);
  for (size_t i = 0; i < path_.size(); ++i) {
    edges_[path_[i]].Append(parent_[i], static_cast<Oid>(i));
  }
  finalized_ = false;
}

util::Status StoredDocument::AdoptNodeColumns(std::vector<Oid> parents,
                                              std::vector<PathId> paths,
                                              std::vector<int> ranks,
                                              bool derive_edges) {
  MEETXML_RETURN_NOT_OK(CheckNodeColumns(parents, paths, ranks.size()));
  parent_.Adopt(std::move(parents));
  path_.Adopt(std::move(paths));
  rank_.Adopt(std::move(ranks));
  if (derive_edges) DeriveEdgeRelations();
  return Status::OK();
}

util::Status StoredDocument::AdoptNodeColumnViews(
    std::span<const Oid> parents, std::span<const PathId> paths,
    std::span<const int> ranks, bool derive_edges) {
  MEETXML_RETURN_NOT_OK(CheckNodeColumns(parents, paths, ranks.size()));
  parent_.SetView(parents);
  path_.SetView(paths);
  rank_.SetView(ranks);
  if (derive_edges) DeriveEdgeRelations();
  return Status::OK();
}

util::Status StoredDocument::CheckStringRelation(
    PathId path, std::span<const Oid> owners,
    std::span<const uint32_t> ends, size_t blob_size, size_t seq_count,
    ColumnChecks checks) const {
  if (path >= paths_.size()) {
    return Status::InvalidArgument("string path id out of range");
  }
  if (owners.size() != ends.size() || owners.size() != seq_count) {
    return Status::InvalidArgument("string column lengths differ");
  }
  if (owners.empty()) {
    return Status::InvalidArgument(
        "string relations are never empty; do not adopt one");
  }
  if (path < strings_.size() && !strings_[path].empty()) {
    return Status::InvalidArgument("string relation adopted twice");
  }
  if (checks == ColumnChecks::kFull) {
    // The O(rows) scans — deferrable to ValidateStorageColumns when
    // the loader arms the lazy validation gate.
    for (Oid owner : owners) {
      if (owner >= parent_.size()) {
        return Status::InvalidArgument("string owner out of range");
      }
    }
    uint32_t previous = 0;
    for (uint32_t end : ends) {
      if (end < previous) {
        return Status::InvalidArgument("string offsets not monotonic");
      }
      previous = end;
    }
  }
  if (ends.back() != blob_size) {
    return Status::InvalidArgument(
        "string blob size does not match the last offset");
  }
  return Status::OK();
}

void StoredDocument::GrowStringTables(PathId path) {
  if (path >= strings_.size()) {
    strings_.resize(path + 1);
    string_seq_.resize(path + 1);
  }
  string_paths_.push_back(path);
  finalized_ = false;
}

util::Status StoredDocument::AdoptStringRelation(
    PathId path, std::vector<Oid> owners, std::vector<uint32_t> ends,
    std::string blob, std::vector<uint32_t> seq, ColumnChecks checks) {
  MEETXML_RETURN_NOT_OK(CheckStringRelation(path, owners, ends, blob.size(),
                                            seq.size(), checks));
  GrowStringTables(path);
  string_count_ += owners.size();
  strings_[path].AdoptColumns(std::move(owners), std::move(ends),
                              std::move(blob));
  string_seq_[path].Adopt(std::move(seq));
  return Status::OK();
}

util::Status StoredDocument::AdoptStringRelationViews(
    PathId path, std::span<const Oid> owners,
    std::span<const uint32_t> ends, std::string_view blob,
    std::span<const uint32_t> seq, ColumnChecks checks) {
  MEETXML_RETURN_NOT_OK(CheckStringRelation(path, owners, ends, blob.size(),
                                            seq.size(), checks));
  GrowStringTables(path);
  string_count_ += owners.size();
  strings_[path].AdoptColumnViews(owners, ends, blob);
  string_seq_[path].SetView(seq);
  return Status::OK();
}

util::Status StoredDocument::AdoptDerivedColumns(
    const DerivedColumnsView& derived, bool copy) {
  size_t n = parent_.size();
  if (n == 0) {
    return Status::InvalidArgument(
        "derived columns require node columns to be adopted first");
  }
  if (finalized_) {
    return Status::InvalidArgument(
        "derived columns adopted into a finalized document");
  }
  if (!edge_paths_.empty()) {
    return Status::InvalidArgument(
        "edge relations already derived; adopt node columns with "
        "derive_edges = false to use persisted derived columns");
  }
  if (derived.child_offsets.size() != n + 1) {
    return Status::InvalidArgument("children CSR offset count mismatch");
  }
  if (derived.child_list.size() != n - 1) {
    return Status::InvalidArgument("children CSR list length mismatch");
  }
  if (derived.sorted.size() != string_paths_.size()) {
    return Status::InvalidArgument(
        "string sortedness flag count mismatch");
  }
  std::vector<uint8_t> group_seen(paths_.size(), 0);
  size_t total_rows = 0;
  for (const DerivedEdgeGroup& group : derived.edges) {
    if (group.path >= paths_.size()) {
      return Status::InvalidArgument("edge group path out of range");
    }
    if (group_seen[group.path]) {
      return Status::InvalidArgument("duplicate edge group path");
    }
    group_seen[group.path] = 1;
    if (group.heads.size() != group.tails.size()) {
      return Status::InvalidArgument("edge group column lengths differ");
    }
    if (group.heads.empty()) {
      return Status::InvalidArgument("empty edge group");
    }
    total_rows += group.heads.size();
  }
  if (total_rows != n) {
    return Status::InvalidArgument(
        "edge group rows do not cover every node exactly once");
  }
  for (PathId p : string_paths_) {
    if (strings_[p].offsets_overflowed()) {
      return Status::InvalidArgument(
          "string relation at path ", p,
          " exceeds the 4 GiB value-arena limit");
    }
  }

  // All framing holds — install. Deep cross-checks (CSR inversion,
  // per-row parent match, group ordering, flag correctness) are
  // ValidateDerivedStructures' job.
  PathId max_path = 0;
  for (const DerivedEdgeGroup& group : derived.edges) {
    max_path = std::max(max_path, group.path);
  }
  edges_.resize(max_path + 1);
  edge_paths_.reserve(derived.edges.size());
  for (const DerivedEdgeGroup& group : derived.edges) {
    edge_paths_.push_back(group.path);
    if (copy) {
      edges_[group.path].AdoptColumns(
          std::vector<Oid>(group.heads.begin(), group.heads.end()),
          std::vector<Oid>(group.tails.begin(), group.tails.end()));
    } else {
      edges_[group.path].AdoptColumnViews(group.heads, group.tails);
    }
  }
  if (copy) {
    child_offsets_.Adopt(std::vector<uint32_t>(
        derived.child_offsets.begin(), derived.child_offsets.end()));
    child_list_.Adopt(std::vector<Oid>(derived.child_list.begin(),
                                       derived.child_list.end()));
  } else {
    child_offsets_.SetView(derived.child_offsets);
    child_list_.SetView(derived.child_list);
  }
  string_sorted_.assign(strings_.size(), 1);
  string_index_.assign(strings_.size(), {});
  for (size_t i = 0; i < string_paths_.size(); ++i) {
    PathId p = string_paths_[i];
    string_sorted_[p] = derived.sorted[i] ? 1 : 0;
    if (derived.sorted[i]) continue;
    const OidStrBat& table = strings_[p];
    auto& index = string_index_[p];
    index.reserve(table.size());
    std::span<const Oid> heads = table.heads();
    for (size_t row = 0; row < table.size(); ++row) {
      index[heads[row]].push_back(static_cast<uint32_t>(row));
    }
  }
  finalized_ = true;
  return Status::OK();
}

bool StoredDocument::view_backed() const {
  if (parent_.is_view() || path_.is_view() || rank_.is_view()) return true;
  if (child_offsets_.is_view() || child_list_.is_view()) return true;
  for (const OidOidBat& table : edges_) {
    if (table.is_view()) return true;
  }
  for (const OidStrBat& table : strings_) {
    if (table.is_view()) return true;
  }
  for (const bat::Column<uint32_t>& seq : string_seq_) {
    if (seq.is_view()) return true;
  }
  return false;
}

void StoredDocument::EnsureOwned() {
  // Promotion is a first-touch event: run the deferred validation
  // before detaching from the image. The verdict stays sticky in the
  // gate for consumers that check it; promotion itself is memory-safe
  // either way (all spans were bounds-framed at decode).
  (void)EnsureValidated();
  parent_.EnsureOwned();
  path_.EnsureOwned();
  rank_.EnsureOwned();
  child_offsets_.EnsureOwned();
  child_list_.EnsureOwned();
  for (OidOidBat& table : edges_) table.EnsureOwned();
  for (OidStrBat& table : strings_) table.EnsureOwned();
  for (bat::Column<uint32_t>& seq : string_seq_) seq.EnsureOwned();
  backing_.reset();
}

Status StoredDocument::Finalize() {
  if (parent_.empty()) {
    return Status::InvalidArgument("cannot finalize an empty document");
  }
  if (parent_[0] != kInvalidOid) {
    return Status::Internal("node 0 must be the root");
  }

  // Children CSR via counting sort on the parent column; `child_list`
  // ends up in OID (== document) order per parent, which is sibling
  // order because the shredder emits children in order.
  size_t n = parent_.size();
  std::vector<uint32_t> child_offsets(n + 1, 0);
  for (size_t i = 1; i < n; ++i) {
    if (parent_[i] == kInvalidOid) {
      return Status::Internal("non-root node ", i, " has no parent");
    }
    if (parent_[i] >= i) {
      return Status::Internal("node ", i,
                              " has parent with a later OID; shredder must "
                              "assign DFS order");
    }
    ++child_offsets[parent_[i] + 1];
  }
  for (size_t i = 1; i <= n; ++i) child_offsets[i] += child_offsets[i - 1];
  std::vector<Oid> child_list(n - 1);
  std::vector<uint32_t> cursor(child_offsets.begin(),
                               child_offsets.end() - 1);
  for (size_t i = 1; i < n; ++i) {
    child_list[cursor[parent_[i]]++] = static_cast<Oid>(i);
  }
  child_offsets_.Adopt(std::move(child_offsets));
  child_list_.Adopt(std::move(child_list));

  // Owner look-ups for reassembly and value probes: document-order
  // relations have sorted owner columns and binary-search in place
  // (nothing to build — the common case and the whole cold-start
  // path); anything else gets the hash index.
  string_sorted_.assign(strings_.size(), 1);
  string_index_.assign(strings_.size(), {});
  for (PathId p = 0; p < strings_.size(); ++p) {
    const OidStrBat& table = strings_[p];
    if (table.offsets_overflowed()) {
      return Status::InvalidArgument(
          "string relation at path ", p,
          " exceeds the 4 GiB value-arena limit");
    }
    std::span<const Oid> heads = table.heads();
    bool sorted = std::is_sorted(heads.begin(), heads.end());
    if (sorted) continue;
    string_sorted_[p] = 0;
    auto& index = string_index_[p];
    index.reserve(table.size());
    for (size_t row = 0; row < table.size(); ++row) {
      index[heads[row]].push_back(static_cast<uint32_t>(row));
    }
  }

  finalized_ = true;
  return Status::OK();
}

}  // namespace model
}  // namespace meetxml
