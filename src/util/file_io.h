// Whole-file reads for the loaders (XML parse, storage images): one
// open/read/error-report path instead of a copy per call site.

#ifndef MEETXML_UTIL_FILE_IO_H_
#define MEETXML_UTIL_FILE_IO_H_

#include <fstream>
#include <iterator>
#include <string>

#include "util/result.h"

namespace meetxml {
namespace util {

/// \brief Reads a file's entire contents into memory (binary mode).
inline Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open file: ", path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  if (in.bad()) return Status::Internal("read failed: ", path);
  return content;
}

}  // namespace util
}  // namespace meetxml

#endif  // MEETXML_UTIL_FILE_IO_H_
