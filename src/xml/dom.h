// A minimal owned DOM for parsed XML documents.
//
// The DOM is the hand-off format between the parser (xml/parser.h) and the
// Monet-transform shredder (model/shredder.h); it is deliberately simple —
// no namespaces resolution, no DTD — matching the paper's data model
// (Definition 1): elements with attributes, character data, and sibling
// order.

#ifndef MEETXML_XML_DOM_H_
#define MEETXML_XML_DOM_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace meetxml {
namespace xml {

/// \brief Kind of a DOM node.
enum class NodeKind {
  kElement,
  kText,     // character data (PCDATA and CDATA sections, merged)
  kComment,  // kept so serialization can round-trip
  kProcessingInstruction,
};

/// \brief One attribute (name="value"), in document order.
struct Attribute {
  std::string name;
  std::string value;
};

/// \brief A DOM node. Element nodes own their children.
class Node {
 public:
  /// \brief Creates an element node with the given tag name.
  static std::unique_ptr<Node> MakeElement(std::string tag);
  /// \brief Creates a text (character data) node.
  static std::unique_ptr<Node> MakeText(std::string text);
  /// \brief Creates a comment node (content without `<!--`/`-->`).
  static std::unique_ptr<Node> MakeComment(std::string text);
  /// \brief Creates a processing-instruction node.
  static std::unique_ptr<Node> MakeProcessingInstruction(std::string target,
                                                         std::string data);

  NodeKind kind() const { return kind_; }
  bool is_element() const { return kind_ == NodeKind::kElement; }
  bool is_text() const { return kind_ == NodeKind::kText; }

  /// \brief Element tag name; empty for non-elements.
  const std::string& tag() const { return tag_; }
  /// \brief Text content for text/comment nodes; PI data for PIs.
  const std::string& text() const { return text_; }
  /// \brief PI target; empty otherwise.
  const std::string& pi_target() const { return tag_; }

  const std::vector<Attribute>& attributes() const { return attributes_; }
  const std::vector<std::unique_ptr<Node>>& children() const {
    return children_;
  }
  /// \brief Mutable access for builders (parser, generators).
  std::vector<std::unique_ptr<Node>>* mutable_children() {
    return &children_;
  }
  /// \brief Replaces the text content of a text/comment node.
  void set_text(std::string text) { text_ = std::move(text); }

  /// \brief Appends an attribute; does not check for duplicates (the
  /// parser does).
  void AddAttribute(std::string name, std::string value);

  /// \brief Looks up an attribute value; nullptr if absent.
  const std::string* FindAttribute(std::string_view name) const;

  /// \brief Appends a child, transferring ownership; returns a raw
  /// pointer for convenient chaining.
  Node* AddChild(std::unique_ptr<Node> child);

  /// \brief Convenience: adds `<tag>` element child.
  Node* AddElement(std::string tag);
  /// \brief Convenience: adds a text child.
  Node* AddText(std::string text);
  /// \brief Convenience: adds `<tag>text</tag>` and returns the element.
  Node* AddElementWithText(std::string tag, std::string text);

  /// \brief Number of element children.
  size_t CountElementChildren() const;

  /// \brief First element child with the given tag; nullptr if none.
  const Node* FindChild(std::string_view tag) const;

  /// \brief Concatenation of all descendant text, in document order.
  std::string CollectText() const;

  /// \brief Total number of nodes in this subtree (all kinds).
  size_t SubtreeSize() const;

 private:
  explicit Node(NodeKind kind) : kind_(kind) {}

  NodeKind kind_;
  std::string tag_;   // element tag or PI target
  std::string text_;  // text/comment content or PI data
  std::vector<Attribute> attributes_;
  std::vector<std::unique_ptr<Node>> children_;
};

/// \brief A parsed XML document: optional declaration data plus the single
/// root element.
struct Document {
  /// The root element. Always an element node after a successful parse.
  std::unique_ptr<Node> root;
  /// Raw content of the XML declaration (between `<?xml` and `?>`), if any.
  std::string declaration;
  /// True if a DOCTYPE was present (its content is skipped, not stored).
  bool had_doctype = false;
};

}  // namespace xml
}  // namespace meetxml

#endif  // MEETXML_XML_DOM_H_
