// Tests for the SAX (event-based) parsing interface.

#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xml/sax.h"

namespace meetxml {
namespace xml {
namespace {

using util::Status;

// Records every event as a compact trace string.
class TraceHandler : public SaxHandler {
 public:
  Status StartDocument() override {
    trace_ += "[doc ";
    return Status::OK();
  }
  Status EndDocument() override {
    trace_ += "doc]";
    return Status::OK();
  }
  Status StartElement(std::string tag,
                      std::vector<Attribute> attributes) override {
    trace_ += "<" + tag;
    for (const Attribute& attribute : attributes) {
      trace_ += " " + attribute.name + "=" + attribute.value;
    }
    trace_ += "> ";
    return Status::OK();
  }
  Status EndElement(std::string_view tag) override {
    trace_ += "</" + std::string(tag) + "> ";
    return Status::OK();
  }
  Status Text(std::string text) override {
    trace_ += "'" + text + "' ";
    return Status::OK();
  }
  Status Comment(std::string text) override {
    trace_ += "#" + text + "# ";
    return Status::OK();
  }
  Status ProcessingInstruction(std::string target,
                               std::string data) override {
    trace_ += "?" + target + ":" + data + "? ";
    return Status::OK();
  }

  const std::string& trace() const { return trace_; }

 private:
  std::string trace_;
};

TEST(Sax, EmitsWellNestedEvents) {
  TraceHandler handler;
  MEETXML_CHECK_OK(ParseSax("<a><b>hi</b><c x=\"1\"/></a>", &handler));
  EXPECT_EQ(handler.trace(),
            "[doc <a> <b> 'hi' </b> <c x=1> </c> </a> doc]");
}

TEST(Sax, MergesAdjacentTextRuns) {
  TraceHandler handler;
  MEETXML_CHECK_OK(
      ParseSax("<a>one <![CDATA[two]]> three</a>", &handler));
  EXPECT_EQ(handler.trace(), "[doc <a> 'one two three' </a> doc]");
}

TEST(Sax, DroppedCommentDoesNotSplitText) {
  TraceHandler handler;
  MEETXML_CHECK_OK(ParseSax("<a>one<!-- x -->two</a>", &handler));
  EXPECT_EQ(handler.trace(), "[doc <a> 'onetwo' </a> doc]");
}

TEST(Sax, KeptCommentSplitsText) {
  ParseOptions options;
  options.keep_comments = true;
  TraceHandler handler;
  MEETXML_CHECK_OK(ParseSax("<a>one<!-- x -->two</a>", &handler, options));
  EXPECT_EQ(handler.trace(), "[doc <a> 'one' # x # 'two' </a> doc]");
}

TEST(Sax, ReportsProcessingInstructionsWhenKept) {
  ParseOptions options;
  options.keep_processing_instructions = true;
  TraceHandler handler;
  MEETXML_CHECK_OK(ParseSax("<a><?p data?></a>", &handler, options));
  EXPECT_EQ(handler.trace(), "[doc <a> ?p:data? </a> doc]");
}

TEST(Sax, PropagatesParseErrors) {
  TraceHandler handler;
  Status status = ParseSax("<a><b></a>", &handler);
  EXPECT_FALSE(status.ok());
}

// A handler abort must stop the parse and surface the handler's status.
class AbortingHandler : public SaxHandler {
 public:
  Status StartElement(std::string tag,
                      std::vector<Attribute> attributes) override {
    (void)attributes;
    ++elements_;
    if (tag == "poison") {
      return Status::ResourceExhausted("handler gave up");
    }
    return Status::OK();
  }
  int elements() const { return elements_; }

 private:
  int elements_ = 0;
};

TEST(Sax, HandlerCanAbortTheParse) {
  AbortingHandler handler;
  Status status = ParseSax("<a><ok/><poison/><never/></a>", &handler);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsResourceExhausted());
  EXPECT_EQ(handler.elements(), 3);  // a, ok, poison — never unreached
}

TEST(Sax, WhitespaceTextControlledByOptions) {
  {
    TraceHandler handler;
    MEETXML_CHECK_OK(ParseSax("<a>  <b/>  </a>", &handler));
    EXPECT_EQ(handler.trace(), "[doc <a> <b> </b> </a> doc]");
  }
  {
    ParseOptions options;
    options.discard_whitespace_text = false;
    TraceHandler handler;
    MEETXML_CHECK_OK(ParseSax("<a> <b/> </a>", &handler, options));
    EXPECT_EQ(handler.trace(), "[doc <a> ' ' <b> </b> ' ' </a> doc]");
  }
}

TEST(Sax, SelfClosingRootProducesBalancedEvents) {
  TraceHandler handler;
  MEETXML_CHECK_OK(ParseSax("<a/>", &handler));
  EXPECT_EQ(handler.trace(), "[doc <a> </a> doc]");
}

TEST(Sax, DeepDocumentsStreamWithoutRecursion) {
  std::string text;
  for (int i = 0; i < 3000; ++i) text += "<d>";
  for (int i = 0; i < 3000; ++i) text += "</d>";
  SaxHandler noop;
  MEETXML_CHECK_OK(ParseSax(text, &noop));
}

}  // namespace
}  // namespace xml
}  // namespace meetxml
