#include "text/inverted_index.h"

#include <algorithm>

namespace meetxml {
namespace text {

using util::Result;
using util::Status;

namespace {

// Packs three raw bytes into the trigram key. Trigrams are
// case-sensitive: they accelerate the paper's case-sensitive `contains`.
inline uint32_t TrigramKey(std::string_view s, size_t i) {
  return (static_cast<uint32_t>(static_cast<unsigned char>(s[i])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(s[i + 1])) << 8) |
         static_cast<uint32_t>(static_cast<unsigned char>(s[i + 2]));
}

void SortUniquePostings(std::vector<Posting>* postings) {
  std::sort(postings->begin(), postings->end());
  postings->erase(std::unique(postings->begin(), postings->end()),
                  postings->end());
}

std::vector<Posting> IntersectSorted(const std::vector<Posting>& a,
                                     const std::vector<Posting>& b) {
  std::vector<Posting> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace

Result<InvertedIndex> InvertedIndex::Build(const StoredDocument& doc,
                                           const IndexOptions& options) {
  if (!doc.finalized()) {
    return Status::InvalidArgument("document is not finalized");
  }
  InvertedIndex index;
  index.tokenizer_options_ = options.tokenizer;
  index.has_trigrams_ = options.build_trigrams;

  // Sizing heuristics: a bibliography-style corpus runs a few distinct
  // words per string association and saturates the trigram key space
  // quickly. Capped so a huge corpus cannot commit bucket arrays far
  // beyond the distinct-key population (trigram keys top out at 2^24;
  // vocabularies plateau long before that).
  index.words_.reserve(
      std::min<size_t>(doc.string_count() * 2, size_t{1} << 20));
  if (options.build_trigrams) {
    index.trigrams_.reserve(
        std::min<size_t>(doc.string_count() * 4, size_t{1} << 22));
  }

  // All postings for one string are appended back to back, so a
  // same-as-last check removes the bulk of within-string repetition
  // (repeated words, overlapping repeated trigrams) at append time;
  // cross-string duplicates cannot exist because each (path, row) is
  // its own posting. The finalize pass below restores the global
  // sorted/unique invariant in one sort+unique per list — cheaper than
  // the per-string set semantics TokenizeUnique used to impose.
  auto append = [](std::vector<Posting>* postings, Posting posting) {
    if (postings->empty() || !(postings->back() == posting)) {
      postings->push_back(posting);
    }
  };

  for (PathId path : doc.string_paths()) {
    const model::OidStrBat& table = doc.StringsAt(path);
    for (size_t row = 0; row < table.size(); ++row) {
      Posting posting{path, table.head(row)};
      std::string_view value = table.tail(row);
      for (const std::string& token : Tokenize(value, options.tokenizer)) {
        append(&index.words_[token], posting);
      }
      if (options.build_trigrams && value.size() >= 3) {
        for (size_t i = 0; i + 3 <= value.size(); ++i) {
          append(&index.trigrams_[TrigramKey(value, i)], posting);
        }
      }
    }
  }

  for (auto& [word, postings] : index.words_) {
    SortUniquePostings(&postings);
    index.posting_count_ += postings.size();
  }
  for (auto& [key, postings] : index.trigrams_) {
    SortUniquePostings(&postings);
  }
  return index;
}

InvertedIndex InvertedIndex::Restore(WordMap words, TrigramMap trigrams,
                                     TokenizerOptions tokenizer_options,
                                     bool has_trigrams) {
  InvertedIndex index;
  index.words_ = std::move(words);
  index.trigrams_ = std::move(trigrams);
  index.tokenizer_options_ = tokenizer_options;
  index.has_trigrams_ = has_trigrams;
  for (const auto& [word, postings] : index.words_) {
    index.posting_count_ += postings.size();
  }
  return index;
}

const std::vector<Posting>& InvertedIndex::LookupWord(
    std::string_view word) const {
  static const std::vector<Posting> kEmpty;
  std::string key(word);
  if (tokenizer_options_.fold_case) {
    for (char& c : key) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
  }
  auto it = words_.find(key);
  return it == words_.end() ? kEmpty : it->second;
}

std::optional<std::vector<Posting>> InvertedIndex::TrigramCandidates(
    std::string_view needle) const {
  if (!has_trigrams_ || needle.size() < 3) return std::nullopt;
  // Probe rarest-first would be nicer; with a handful of trigrams the
  // straight left-to-right intersection is fine.
  std::vector<Posting> candidates;
  bool first = true;
  for (size_t i = 0; i + 3 <= needle.size(); ++i) {
    auto it = trigrams_.find(TrigramKey(needle, i));
    if (it == trigrams_.end()) return std::vector<Posting>();
    if (first) {
      candidates = it->second;
      first = false;
    } else {
      candidates = IntersectSorted(candidates, it->second);
      if (candidates.empty()) return candidates;
    }
  }
  return candidates;
}

}  // namespace text
}  // namespace meetxml
