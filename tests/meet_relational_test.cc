// Cross-validation of the two general-meet execution strategies: the
// dense-array roll-up (MeetGeneral) and the BAT-join relational
// execution (MeetGeneralRelational) must produce identical results on
// every input.

#include <gtest/gtest.h>

#include "core/meet_general.h"
#include "core/meet_general_relational.h"
#include "core/restrictions.h"
#include "data/dblp_gen.h"
#include "data/paper_example.h"
#include "data/random_tree.h"
#include "model/shredder.h"
#include "tests/test_util.h"
#include "text/search.h"
#include "util/rng.h"

namespace meetxml {
namespace core {
namespace {

using meetxml::testing::MustShred;

void ExpectIdentical(const std::vector<GeneralMeet>& a,
                     const std::vector<GeneralMeet>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].meet, b[i].meet) << "result " << i;
    EXPECT_EQ(a[i].meet_path, b[i].meet_path);
    EXPECT_EQ(a[i].witness_distance, b[i].witness_distance);
    ASSERT_EQ(a[i].witnesses.size(), b[i].witnesses.size());
    for (size_t w = 0; w < a[i].witnesses.size(); ++w) {
      EXPECT_EQ(a[i].witnesses[w].assoc, b[i].witnesses[w].assoc);
      EXPECT_EQ(a[i].witnesses[w].distance, b[i].witnesses[w].distance);
    }
  }
}

TEST(MeetRelational, AgreesOnPaperExample) {
  auto doc = MustShred(data::PaperExampleXml());
  auto search = text::FullTextSearch::Build(doc);
  ASSERT_TRUE(search.ok());
  for (auto terms : {std::vector<std::string>{"Bit", "1999"},
                     std::vector<std::string>{"Ben", "Bit"},
                     std::vector<std::string>{"Bob", "Byte"},
                     std::vector<std::string>{"1999"}}) {
    auto matches = search->SearchAll(terms, text::MatchMode::kContains);
    ASSERT_TRUE(matches.ok());
    auto inputs = text::FullTextSearch::ToMeetInput(*matches);
    auto array_result = MeetGeneral(doc, inputs);
    auto relational_result = MeetGeneralRelational(doc, inputs);
    ASSERT_TRUE(array_result.ok() && relational_result.ok());
    ExpectIdentical(*array_result, *relational_result);
  }
}

TEST(MeetRelational, AgreesWithOptions) {
  auto doc = MustShred(data::PaperExampleXml());
  auto search = text::FullTextSearch::Build(doc);
  ASSERT_TRUE(search.ok());
  auto matches =
      search->SearchAll({"Bit", "Bob", "1999"}, text::MatchMode::kContains);
  ASSERT_TRUE(matches.ok());
  auto inputs = text::FullTextSearch::ToMeetInput(*matches);

  MeetOptions options = ExcludeRootOptions(doc);
  options.max_distance = 6;
  auto array_result = MeetGeneral(doc, inputs, options);
  auto relational_result = MeetGeneralRelational(doc, inputs, options);
  ASSERT_TRUE(array_result.ok() && relational_result.ok());
  ExpectIdentical(*array_result, *relational_result);
}

TEST(MeetRelational, ReportsJoinStats) {
  auto doc = MustShred(data::PaperExampleXml());
  auto search = text::FullTextSearch::Build(doc);
  ASSERT_TRUE(search.ok());
  auto matches =
      search->SearchAll({"Ben", "Bit"}, text::MatchMode::kContains);
  ASSERT_TRUE(matches.ok());
  RelationalMeetStats stats;
  auto result = MeetGeneralRelational(
      doc, text::FullTextSearch::ToMeetInput(*matches), {}, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(stats.joins, 0u);
  EXPECT_GT(stats.paths_touched, 0u);
}

class MeetRelationalProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MeetRelationalProperty, AgreesOnRandomTreesAndSamples) {
  data::RandomTreeOptions options;
  options.seed = GetParam();
  options.target_elements = 250;
  options.tag_vocabulary = 4;
  auto generated = data::GenerateRandomTree(options);
  ASSERT_TRUE(generated.ok());
  auto shredded = model::Shred(*generated);
  ASSERT_TRUE(shredded.ok());
  const model::StoredDocument& doc = *shredded;

  util::Rng rng(GetParam() * 31 + 17);
  for (int trial = 0; trial < 10; ++trial) {
    // Random sample grouped into uniformly-typed sets.
    std::map<PathId, AssocSet> grouped;
    int n = 5 + static_cast<int>(rng.NextBelow(60));
    for (int i = 0; i < n; ++i) {
      Oid node = static_cast<Oid>(rng.NextBelow(doc.node_count()));
      auto& set = grouped[doc.path(node)];
      set.path = doc.path(node);
      set.nodes.push_back(node);
    }
    std::vector<AssocSet> inputs;
    for (auto& [path, set] : grouped) inputs.push_back(std::move(set));

    auto array_result = MeetGeneral(doc, inputs);
    auto relational_result = MeetGeneralRelational(doc, inputs);
    ASSERT_TRUE(array_result.ok() && relational_result.ok());
    ExpectIdentical(*array_result, *relational_result);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeetRelationalProperty,
                         ::testing::Values(7, 77, 777, 7777));

TEST(MeetRelational, AgreesOnDblpCaseStudy) {
  data::DblpOptions options;
  options.end_year = 1990;
  options.icde_papers_per_year = 12;
  options.other_papers_per_year = 30;
  options.journal_articles_per_year = 10;
  auto generated = data::GenerateDblp(options);
  ASSERT_TRUE(generated.ok());
  auto doc = model::Shred(*generated);
  ASSERT_TRUE(doc.ok());
  auto search = text::FullTextSearch::Build(*doc);
  ASSERT_TRUE(search.ok());
  auto matches =
      search->SearchAll({"ICDE", "1989"}, text::MatchMode::kContains);
  ASSERT_TRUE(matches.ok());
  auto inputs = text::FullTextSearch::ToMeetInput(*matches);
  auto array_result =
      MeetGeneral(*doc, inputs, ExcludeRootOptions(*doc));
  auto relational_result =
      MeetGeneralRelational(*doc, inputs, ExcludeRootOptions(*doc));
  ASSERT_TRUE(array_result.ok() && relational_result.ok());
  ExpectIdentical(*array_result, *relational_result);
  EXPECT_GT(array_result->size(), 0u);
}

}  // namespace
}  // namespace core
}  // namespace meetxml
