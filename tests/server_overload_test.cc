// Graceful degradation under overload, proven sleep-free.
//
// The admission cap (ServiceOptions::queue_cap), queue deadline and
// busy replies are pinned on injected clocks and promise latches — no
// wall-clock sleeps, no timing assumptions. The central scenario: a
// 1-slot service with one query held in flight (latched inside its
// dispatch on the injected microsecond clock) must shed the next query
// with a busy reply carrying the configured retry-after hint, while
// the in-flight query still answers byte-correctly once released and
// a retry after release succeeds. The suite also covers the queue
// deadline, v1-shaped shedding, the WorkerPool's TrySubmit bound, the
// TCP front-end's enqueue-time shedding (in strict response order),
// and the server.admit failpoint.

#include <atomic>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/protocol.h"
#include "server/service.h"
#include "server/tcp_server.h"
#include "server/worker_pool.h"
#include "store/catalog.h"
#include "store/multi_executor.h"
#include "tests/test_util.h"
#include "util/failpoint.h"
#include "util/net.h"

namespace meetxml {
namespace server {
namespace {

using meetxml::testing::MustShred;
using util::FailPoints;
using util::FailPointSpec;
using util::Result;
using util::Status;
using util::StatusCode;

std::string LibraryXml(int n) {
  std::string xml = "<doc>";
  for (int entry = 0; entry < 3; ++entry) {
    xml += "<entry><title>corpus " + std::to_string(n) + " entry " +
           std::to_string(entry) + "</title><year>" +
           std::to_string(1990 + (n + entry) % 8) + "</year></entry>";
  }
  xml += "</doc>";
  return xml;
}

constexpr char kScope[] = "*";
constexpr char kQueryText[] = "SELECT COUNT(a) FROM *//cdata a";

class ServerOverloadTest : public ::testing::Test {
 protected:
  ServerOverloadTest() {
    for (int i = 0; i < 3; ++i) {
      auto added = catalog_.Add("lib_" + std::to_string(i),
                                MustShred(LibraryXml(i)));
      EXPECT_TRUE(added.ok()) << added.status();
    }
  }

  void TearDown() override { FailPoints::Reset(); }

  ServiceOptions BaseOptions() {
    ServiceOptions options;
    options.clock = [this] { return now_ms_.load(); };
    options.clock_us = [this] { return now_ms_.load() * 1000; };
    return options;
  }

  std::string SerialAnswer() {
    store::MultiExecutor executor(&catalog_);
    auto result = executor.ExecuteText(kScope, kQueryText);
    EXPECT_TRUE(result.ok()) << result.status();
    return result.ok() ? result->ToText() : std::string();
  }

  static std::string QueryPayload() {
    Request request;
    request.opcode = Opcode::kQuery;
    request.scope = kScope;
    request.query = kQueryText;
    return EncodeRequest(request);
  }

  store::Catalog catalog_;
  std::atomic<uint64_t> now_ms_{1000};
};

// The tentpole scenario: cap 1, one query latched mid-dispatch, the
// next one shed with the hint — and both eventually answer right.
TEST_F(ServerOverloadTest, SaturatedServiceShedsWithRetryHint) {
  const std::string expected_table = SerialAnswer();

  // Latch machinery: the in-flight query blocks on its 2nd injected
  // clock_us read. The 1st read is HandlePayload's start timestamp
  // (before admission); every later one happens inside the dispatch,
  // with the admission slot held — exactly the window the cap must
  // protect. countdown==0 therefore means "the query is latched inside
  // its slot", which the main thread spins on (no sleeps).
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::atomic<int> latch_countdown{0};

  ServiceOptions options = BaseOptions();
  options.queue_cap = 1;
  options.busy_retry_after_ms = 250;
  options.clock_us = [this, &latch_countdown, released] {
    if (latch_countdown.load(std::memory_order_acquire) > 0 &&
        latch_countdown.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      released.wait();
    }
    return now_ms_.load() * 1000;
  };
  QueryService service(&catalog_, options);

  auto in_flight = InProcessClient::Connect(&service);
  ASSERT_TRUE(in_flight.ok());
  ASSERT_TRUE(in_flight->Hello().ok());
  auto shed = InProcessClient::Connect(&service);
  ASSERT_TRUE(shed.ok());
  ASSERT_TRUE(shed->Hello().ok());

  latch_countdown.store(2, std::memory_order_release);
  Result<Response> in_flight_response = Status::Internal("not yet run");
  std::thread query_thread([&] {
    in_flight_response = in_flight->Query(kScope, kQueryText);
  });
  while (latch_countdown.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  ASSERT_EQ(service.admitted_queries(), 1u);

  // The (cap+1)-th query: shed busy, with the configured hint, while
  // the first still executes.
  auto busy = shed->Query(kScope, kQueryText);
  ASSERT_TRUE(busy.ok()) << busy.status();
  EXPECT_FALSE(busy->ok);
  EXPECT_TRUE(busy->busy);
  EXPECT_EQ(busy->retry_after_ms, 250u);
  EXPECT_EQ(busy->code, StatusCode::kUnavailable);
  EXPECT_NE(busy->message.find("overloaded"), std::string::npos);

  // Release the latch: the in-flight query answers byte-correctly —
  // shedding its sibling never corrupted it.
  release.set_value();
  query_thread.join();
  ASSERT_TRUE(in_flight_response.ok()) << in_flight_response.status();
  ASSERT_TRUE(in_flight_response->ok) << in_flight_response->message;
  EXPECT_EQ(in_flight_response->table, expected_table);

  // The slot is back: the retry the hint asked for now succeeds.
  EXPECT_EQ(service.admitted_queries(), 0u);
  auto retry = shed->Query(kScope, kQueryText);
  ASSERT_TRUE(retry.ok());
  ASSERT_TRUE(retry->ok) << retry->message;
  EXPECT_EQ(retry->table, expected_table);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queries_shed, 1u);
  EXPECT_EQ(stats.queries_served, 2u);
}

TEST_F(ServerOverloadTest, QueueDeadlineShedsStaleQueries) {
  ServiceOptions options = BaseOptions();
  options.queue_deadline_ms = 50;
  QueryService service(&catalog_, options);
  uint64_t deadline_before =
      service.metrics()
          .counter("meetxml_server_deadline_exceeded_total")
          .Value();

  auto client = InProcessClient::Connect(&service);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Hello().ok());

  // A fresh pre-admitted request (front-end shape) dispatches fine.
  ASSERT_TRUE(service.TryAcquireQuerySlot());
  RequestContext fresh;
  fresh.admitted_ms = now_ms_.load();
  fresh.pre_admitted = true;
  auto fresh_response = DecodeResponse(
      client->connection()->HandlePayload(QueryPayload(), fresh));
  ASSERT_TRUE(fresh_response.ok());
  EXPECT_TRUE(fresh_response->ok) << fresh_response->message;

  // The same request after 100 injected ms in the queue: shed, with
  // the deadline counter (not just the shed counter) bumped.
  ASSERT_TRUE(service.TryAcquireQuerySlot());
  RequestContext stale;
  stale.admitted_ms = now_ms_.load();
  stale.pre_admitted = true;
  now_ms_.fetch_add(100);
  auto stale_response = DecodeResponse(
      client->connection()->HandlePayload(QueryPayload(), stale));
  ASSERT_TRUE(stale_response.ok());
  EXPECT_FALSE(stale_response->ok);
  EXPECT_TRUE(stale_response->busy);
  EXPECT_NE(stale_response->message.find("deadline"), std::string::npos);
  EXPECT_EQ(service.metrics()
                    .counter("meetxml_server_deadline_exceeded_total")
                    .Value() -
                deadline_before,
            1u);
  EXPECT_EQ(service.stats().queries_shed, 1u);

  // Slots were released on both paths (RAII, not the happy path only).
  EXPECT_EQ(service.admitted_queries(), 0u);

  // The in-process transport (no queue, admitted_ms == 0) is never
  // deadline-shed, however far the clock advanced.
  now_ms_.fetch_add(1000);
  auto direct = client->Query(kScope, kQueryText);
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(direct->ok) << direct->message;
}

TEST_F(ServerOverloadTest, V1ConnectionsAreShedWithAPlainError) {
  ServiceOptions options = BaseOptions();
  options.queue_cap = 1;
  QueryService service(&catalog_, options);

  auto client = InProcessClient::Connect(&service);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Hello(/*version=*/1).ok());

  ASSERT_TRUE(service.TryAcquireQuerySlot());  // saturate the cap
  auto response = client->Query(kScope, kQueryText);
  service.ReleaseQuerySlot();
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_FALSE(response->ok);
  // No status-2 frame on a v1 connection: the shed arrives as a plain
  // kUnavailable error with the hint folded into the message.
  EXPECT_FALSE(response->busy);
  EXPECT_EQ(response->retry_after_ms, 0u);
  EXPECT_EQ(response->code, StatusCode::kUnavailable);
  EXPECT_NE(response->message.find("retry in ~"), std::string::npos);
}

TEST_F(ServerOverloadTest, WorkerPoolTrySubmitBoundsTheQueue) {
  WorkerPoolOptions options;
  options.threads = 1;
  options.max_queue = 1;
  WorkerPool pool(options);

  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::atomic<bool> started{false};
  std::atomic<int> ran{0};
  pool.Submit([&] {
    started.store(true, std::memory_order_release);
    released.wait();
  });
  while (!started.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }

  // The lone worker is latched, the queue is empty: one bounded submit
  // fits, the next is refused.
  EXPECT_TRUE(pool.TrySubmit([&] { ran.fetch_add(1); }));
  EXPECT_FALSE(pool.TrySubmit([&] { ran.fetch_add(1); }));
  EXPECT_EQ(pool.queue_depth(), 1u);

  // Plain Submit ignores the bound: strand wakeups must never drop,
  // or a connection's inbox would strand forever.
  pool.Submit([&] { ran.fetch_add(1); });
  EXPECT_EQ(pool.queue_depth(), 2u);

  release.set_value();
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 2);
}

TEST_F(ServerOverloadTest, TcpFrontEndShedsAtEnqueueInResponseOrder) {
  ServiceOptions options = BaseOptions();
  options.queue_cap = 1;
  options.busy_retry_after_ms = 75;
  QueryService service(&catalog_, options);
  const std::string expected_table = SerialAnswer();
  auto server = TcpServer::Start(&service);
  ASSERT_TRUE(server.ok()) << server.status();

  auto fd = util::ConnectTcp("localhost", (*server)->port());
  ASSERT_TRUE(fd.ok()) << fd.status();
  Request hello;
  hello.opcode = Opcode::kHello;
  hello.protocol_version = kProtocolVersion;
  ASSERT_TRUE(util::WriteFull(
                  *fd, EncodeFrame(EncodeRequest(hello)))
                  .ok());
  auto read_response = [&]() -> Result<Response> {
    char prefix[4];
    MEETXML_RETURN_NOT_OK(util::ReadFull(*fd, prefix, sizeof(prefix)));
    uint32_t length = DecodeFrameLength(prefix);
    std::string payload(length, '\0');
    MEETXML_RETURN_NOT_OK(util::ReadFull(*fd, payload.data(), length));
    return DecodeResponse(payload);
  };
  auto greeted = read_response();
  ASSERT_TRUE(greeted.ok()) << greeted.status();
  ASSERT_TRUE(greeted->ok);

  // Saturate the cap from outside, then pipeline PING | QUERY | PING
  // in one write. The query is shed at enqueue, but its busy reply
  // must ride the strand like any frame: responses arrive strictly as
  // ping, busy, ping.
  ASSERT_TRUE(service.TryAcquireQuerySlot());
  Request ping;
  ping.opcode = Opcode::kPing;
  Request query;
  query.opcode = Opcode::kQuery;
  query.scope = kScope;
  query.query = kQueryText;
  std::string burst = EncodeFrame(EncodeRequest(ping)) +
                      EncodeFrame(EncodeRequest(query)) +
                      EncodeFrame(EncodeRequest(ping));
  ASSERT_TRUE(util::WriteFull(*fd, burst).ok());

  auto first = read_response();
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_TRUE(first->ok);
  EXPECT_EQ(first->opcode, Opcode::kPing);

  auto second = read_response();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_FALSE(second->ok);
  EXPECT_TRUE(second->busy);
  EXPECT_EQ(second->opcode, Opcode::kQuery);
  EXPECT_EQ(second->retry_after_ms, 75u);

  auto third = read_response();
  ASSERT_TRUE(third.ok()) << third.status();
  EXPECT_TRUE(third->ok);
  EXPECT_EQ(third->opcode, Opcode::kPing);

  // Release the external hold: the retry goes through and answers
  // exactly what a serial run answers.
  service.ReleaseQuerySlot();
  ASSERT_TRUE(util::WriteFull(
                  *fd, EncodeFrame(EncodeRequest(query)))
                  .ok());
  auto retry = read_response();
  ASSERT_TRUE(retry.ok()) << retry.status();
  ASSERT_TRUE(retry->ok) << retry->message;
  EXPECT_EQ(retry->table, expected_table);

  EXPECT_GE(service.stats().queries_shed, 1u);
  util::CloseSocket(*fd);
  (*server)->Stop();
  EXPECT_EQ(service.admitted_queries(), 0u);
}

TEST_F(ServerOverloadTest, AdmitFailpointForcesTheShedPath) {
  if (!FailPoints::enabled()) {
    GTEST_SKIP() << "failpoint sites are compiled out in this build";
  }
  QueryService service(&catalog_, BaseOptions());  // cap 0 = unbounded
  auto client = InProcessClient::Connect(&service);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Hello().ok());

  ASSERT_TRUE(FailPoints::ArmFromSpec("server.admit=error").ok());
  auto shed = client->Query(kScope, kQueryText);
  FailPoints::Reset();
  ASSERT_TRUE(shed.ok()) << shed.status();
  EXPECT_FALSE(shed->ok);
  EXPECT_TRUE(shed->busy);

  auto after = client->Query(kScope, kQueryText);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->ok) << after->message;
}

}  // namespace
}  // namespace server
}  // namespace meetxml
