// Lexer for the query language.

#ifndef MEETXML_QUERY_LEXER_H_
#define MEETXML_QUERY_LEXER_H_

#include <string_view>
#include <vector>

#include "query/token.h"
#include "util/result.h"

namespace meetxml {
namespace query {

/// \brief Lexes a whole query; the last token is always kEof.
util::Result<std::vector<Token>> Lex(std::string_view text);

}  // namespace query
}  // namespace meetxml

#endif  // MEETXML_QUERY_LEXER_H_
