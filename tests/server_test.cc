// The meetxmld service, proven correct under threads.
//
// Everything here drives the REAL dispatch path — protocol bytes
// through QueryService::Connection::HandlePayload — via the in-process
// transport (no sockets, no sleeps), so the concurrency suite is
// deterministic: N client threads of mixed structural/text/meet/
// cross-scope queries must produce answers byte-identical to a
// single-threaded MultiExecutor run over an identical catalog. The
// session-lifecycle tests use an injected clock, so idle eviction is
// exact, not timing-dependent. A final set of smoke tests covers the
// TCP front-end: framing, pipelining, graceful stop.

#include "server/service.h"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/protocol.h"
#include "server/session.h"
#include "server/tcp_server.h"
#include "server/worker_pool.h"
#include "store/catalog.h"
#include "store/multi_executor.h"
#include "tests/test_util.h"
#include "util/net.h"

namespace meetxml {
namespace server {
namespace {

using meetxml::testing::MustShred;
using util::Result;
using util::Status;
using util::StatusCode;

// ---- corpus -------------------------------------------------------------

// One small bibliography-shaped document per "library": shared
// vocabulary (corpus/survey/Author) so cross-scope queries hit every
// document, a per-document token so answers differ per document.
std::string LibraryXml(int n) {
  std::string tag = "lib" + std::to_string(n);
  std::string xml = "<doc>";
  for (int entry = 0; entry < 4; ++entry) {
    int year = 1990 + (n + entry) % 8;
    xml += "<entry><title>corpus number " + std::to_string(n) + " " +
           tag + " entry " + std::to_string(entry) +
           "</title><year>" + std::to_string(year) +
           "</year><author>Author " + std::to_string((n + entry) % 5) +
           "</author></entry>";
  }
  xml += "<entry><title>survey of meet operators</title>"
         "<year>1995</year><author>Author 9</author></entry></doc>";
  return xml;
}

constexpr int kLibraries = 8;

// Save an 8-document catalog to a file and reopen it view-backed —
// the serving configuration (one pinned image, borrowed columns).
std::string CatalogImagePath() {
  static std::string* path = [] {
    store::Catalog catalog;
    for (int i = 0; i < kLibraries; ++i) {
      auto added = catalog.Add("lib_" + std::to_string(i),
                               MustShred(LibraryXml(i)));
      EXPECT_TRUE(added.ok()) << added.status();
    }
    auto* out = new std::string(::testing::TempDir() +
                                "/server_test_catalog.mxm");
    EXPECT_TRUE(catalog.SaveToFile(*out).ok());
    return out;
  }();
  return *path;
}

store::Catalog OpenViewCatalog() {
  store::CatalogLoadOptions options;
  options.mode = model::LoadMode::kView;
  auto catalog = store::Catalog::LoadFromFile(CatalogImagePath(), options);
  EXPECT_TRUE(catalog.ok()) << catalog.status();
  return std::move(*catalog);
}

// The mixed workload: structural counts, full-text meets, scoped and
// fan-out queries, plus one deliberate error per kind (bad scope, bad
// syntax) — errors must also be deterministic and byte-identical.
struct QueryCase {
  std::string scope;
  std::string query;
};

const std::vector<QueryCase>& MixedQueries() {
  static const std::vector<QueryCase>* cases = new std::vector<QueryCase>{
      {"*", "SELECT COUNT(a) FROM *//cdata a"},
      {"*",
       "SELECT MEET(a, b) FROM *//cdata a, *//cdata b "
       "WHERE a CONTAINS 'corpus' AND b CONTAINS '1995'"},
      {"lib_3",
       "SELECT MEET(a, b) FROM *//cdata a, *//cdata b "
       "WHERE a CONTAINS 'Author' AND b CONTAINS 'survey' LIMIT 3"},
      {"lib_*",
       "SELECT MEET(a, b) FROM *//title/cdata a, *//year/cdata b "
       "WHERE a CONTAINS 'entry' AND b CONTAINS '1993' LIMIT 10"},
      {"lib_5", "SELECT COUNT(a) FROM *//author/cdata a"},
      {"nope*", "SELECT COUNT(a) FROM *//cdata a"},
      {"*", "SELECT MEET(a FROM nonsense"},
  };
  return *cases;
}

// What one request must answer, computed by a serial MultiExecutor.
struct Expected {
  bool ok = false;
  std::string table;       // ok: rendered answer
  uint64_t row_count = 0;  // ok: rows
  bool truncated = false;  // ok: LIMIT hit
  StatusCode code = StatusCode::kOk;  // error: code
  std::string message;                // error: text
};

std::vector<Expected> SerialExpectations(const store::Catalog& catalog) {
  store::MultiExecutor executor(&catalog);
  std::vector<Expected> expected;
  for (const QueryCase& query_case : MixedQueries()) {
    Expected e;
    auto result = executor.ExecuteText(query_case.scope, query_case.query);
    e.ok = result.ok();
    if (result.ok()) {
      e.table = result->ToText();
      e.row_count = result->rows.size();
      e.truncated = result->truncated;
    } else {
      e.code = result.status().code();
      e.message = std::string(result.status().message());
    }
    expected.push_back(std::move(e));
  }
  return expected;
}

void ExpectMatches(const Response& response, const Expected& expected) {
  ASSERT_EQ(response.ok, expected.ok) << response.message;
  if (expected.ok) {
    EXPECT_EQ(response.table, expected.table);
    EXPECT_EQ(response.row_count, expected.row_count);
    EXPECT_EQ(response.truncated, expected.truncated);
  } else {
    EXPECT_EQ(response.code, expected.code);
    EXPECT_EQ(response.message, expected.message);
  }
}

// ---- the concurrency pin ------------------------------------------------

TEST(ServerConcurrency, EightThreadsMatchSerialByteForByte) {
  // Expectations come from a separate catalog instance over the same
  // image, so the serving catalog's executors and text indexes are
  // built lazily UNDER the contending threads — the hardest path.
  store::Catalog reference = OpenViewCatalog();
  std::vector<Expected> expected = SerialExpectations(reference);

  store::Catalog catalog = OpenViewCatalog();
  QueryService service(&catalog);

  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 200;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto client = InProcessClient::Connect(&service);
      ASSERT_TRUE(client.ok()) << client.status();
      ASSERT_TRUE(client->Hello().ok());
      for (int i = 0; i < kQueriesPerThread; ++i) {
        size_t at = static_cast<size_t>(t * 7 + i) % MixedQueries().size();
        const QueryCase& query_case = MixedQueries()[at];
        auto response = client->Query(query_case.scope, query_case.query);
        ASSERT_TRUE(response.ok()) << response.status();
        const Expected& e = expected[at];
        if (response->ok != e.ok || response->table != e.table ||
            response->row_count != e.row_count ||
            response->truncated != e.truncated ||
            response->message != e.message) {
          mismatches.fetch_add(1);
        }
      }
      ASSERT_TRUE(client->Bye().ok());
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0)
      << "concurrent responses diverged from the serial run";

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.sessions_active, 0u);
  // 5 of the 7 mixed queries succeed; each thread's share served.
  EXPECT_GT(stats.queries_served, 0u);
  EXPECT_GT(stats.request_errors, 0u);
}

// ---- service behavior (deterministic, injected clock) -------------------

class ServerServiceTest : public ::testing::Test {
 protected:
  ServerServiceTest() : catalog_(OpenViewCatalog()) {}

  QueryService MakeService(ServiceOptions options = {}) {
    options.clock = [this] { return now_ms_.load(); };
    return QueryService(&catalog_, std::move(options));
  }

  store::Catalog catalog_;
  std::atomic<uint64_t> now_ms_{1000};
};

TEST_F(ServerServiceTest, HelloQueryByeHappyPath) {
  QueryService service = MakeService();
  auto client = InProcessClient::Connect(&service);
  ASSERT_TRUE(client.ok());

  auto session = client->Hello();
  ASSERT_TRUE(session.ok()) << session.status();
  EXPECT_GT(*session, 0u);
  EXPECT_EQ(client->session_id(), *session);

  store::MultiExecutor serial(&catalog_);
  auto direct = serial.ExecuteText("*", MixedQueries()[1].query);
  ASSERT_TRUE(direct.ok());

  auto response = client->Query("*", MixedQueries()[1].query);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->ok) << response->message;
  EXPECT_EQ(response->table, direct->ToText());
  EXPECT_EQ(response->row_count, direct->rows.size());

  EXPECT_TRUE(client->Bye().ok());
  EXPECT_EQ(service.stats().sessions_active, 0u);
  EXPECT_EQ(service.stats().queries_served, 1u);
}

TEST_F(ServerServiceTest, QueryWithoutHelloIsRejected) {
  QueryService service = MakeService();
  auto client = InProcessClient::Connect(&service);
  ASSERT_TRUE(client.ok());
  auto response = client->Query("*", MixedQueries()[0].query);
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->ok);
  EXPECT_EQ(response->code, StatusCode::kInvalidArgument);
  EXPECT_NE(response->message.find("HELLO"), std::string::npos);
}

TEST_F(ServerServiceTest, WrongProtocolVersionIsRefused) {
  QueryService service = MakeService();
  auto client = InProcessClient::Connect(&service);
  ASSERT_TRUE(client.ok());
  Request hello;
  hello.opcode = Opcode::kHello;
  hello.protocol_version = kProtocolVersion + 1;
  auto response = client->Roundtrip(hello);
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->ok);
  EXPECT_EQ(response->code, StatusCode::kInvalidArgument);
}

TEST_F(ServerServiceTest, SecondHelloOnALiveSessionIsRejected) {
  QueryService service = MakeService();
  auto client = InProcessClient::Connect(&service);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Hello().ok());
  EXPECT_TRUE(client->Hello().status().IsInvalidArgument());
  // After BYE the connection may HELLO again, with a fresh id.
  ASSERT_TRUE(client->Bye().ok());
  auto again = client->Hello();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(service.stats().sessions_active, 1u);
}

TEST_F(ServerServiceTest, IdleSessionsAreEvictedAndCanRejoin) {
  ServiceOptions options;
  options.session.idle_timeout_ms = 5000;
  QueryService service = MakeService(options);
  auto client = InProcessClient::Connect(&service);
  ASSERT_TRUE(client.ok());
  auto first = client->Hello();
  ASSERT_TRUE(first.ok());

  // Activity within the window keeps the session alive (PING is
  // keep-alive), even across several eviction sweeps.
  for (int i = 0; i < 3; ++i) {
    now_ms_ += 4000;
    EXPECT_TRUE(service.EvictIdle().empty());
    Request ping;
    ping.opcode = Opcode::kPing;
    ASSERT_TRUE(client->Roundtrip(ping).ok());
  }
  EXPECT_EQ(service.stats().sessions_active, 1u);

  // Then it goes idle past the timeout: evicted exactly once.
  now_ms_ += 5001;
  std::vector<uint64_t> evicted = service.EvictIdle();
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], *first);
  EXPECT_EQ(service.stats().sessions_evicted, 1u);

  // The next query reports the expiry (NotFound names the session)...
  auto stale = client->Query("*", MixedQueries()[0].query);
  ASSERT_TRUE(stale.ok());
  EXPECT_FALSE(stale->ok);
  EXPECT_EQ(stale->code, StatusCode::kNotFound);
  EXPECT_NE(stale->message.find("expired"), std::string::npos);

  // ...and a fresh HELLO rejoins with a new, never-reused id.
  auto second = client->Hello();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_GT(*second, *first);
  auto retry = client->Query("*", MixedQueries()[0].query);
  ASSERT_TRUE(retry.ok());
  EXPECT_TRUE(retry->ok);
}

TEST_F(ServerServiceTest, ResultCapIsAnErrorNotAnOom) {
  ServiceOptions options;
  options.session.max_result_bytes = 64;  // far below any meet table
  QueryService service = MakeService(options);
  auto client = InProcessClient::Connect(&service);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Hello().ok());

  auto big = client->Query("*", MixedQueries()[1].query);
  ASSERT_TRUE(big.ok());
  EXPECT_FALSE(big->ok);
  EXPECT_EQ(big->code, StatusCode::kResourceExhausted);
  EXPECT_NE(big->message.find("LIMIT"), std::string::npos);

  // The session survives the refusal: a small answer still works.
  auto small = client->Query("lib_0", "SELECT COUNT(a) FROM *//cdata a");
  ASSERT_TRUE(small.ok());
  EXPECT_TRUE(small->ok) << small->message;
  EXPECT_EQ(service.stats().sessions_active, 1u);
}

TEST_F(ServerServiceTest, SessionCapRefusesTheOverflowClient) {
  ServiceOptions options;
  options.session.max_sessions = 2;
  QueryService service = MakeService(options);
  auto a = InProcessClient::Connect(&service);
  auto b = InProcessClient::Connect(&service);
  auto c = InProcessClient::Connect(&service);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(a->Hello().ok());
  ASSERT_TRUE(b->Hello().ok());
  EXPECT_TRUE(c->Hello().status().IsUnavailable());
  ASSERT_TRUE(a->Bye().ok());
  EXPECT_TRUE(c->Hello().ok());
}

TEST_F(ServerServiceTest, StatsRoundTripOverTheProtocol) {
  QueryService service = MakeService();
  auto client = InProcessClient::Connect(&service);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Hello().ok());
  ASSERT_TRUE(client->Query("*", MixedQueries()[0].query).ok());

  Request stats_request;
  stats_request.opcode = Opcode::kStats;
  auto response = client->Roundtrip(stats_request);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->ok);
  EXPECT_EQ(response->stats.sessions_active, 1u);
  EXPECT_EQ(response->stats.queries_served, 1u);
  EXPECT_EQ(response->stats.request_errors, 0u);
  EXPECT_EQ(response->stats.sessions_evicted, 0u);
}

TEST_F(ServerServiceTest, GracefulShutdownDrainsInFlightQueries) {
  QueryService service = MakeService();
  constexpr int kThreads = 4;
  std::atomic<bool> started{false};
  std::atomic<int> hard_failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto client = InProcessClient::Connect(&service);
      if (!client.ok()) return;  // raced past BeginShutdown: fine
      if (!client->Hello().ok()) return;
      started.store(true);
      for (int i = 0; i < 50; ++i) {
        auto response = client->Query("*", MixedQueries()[1].query);
        if (!response.ok()) {
          hard_failures.fetch_add(1);
          return;
        }
        // Each answer is either the real result or a clean
        // "shutting down" refusal — never garbage, never a crash.
        if (!response->ok &&
            response->code != StatusCode::kUnavailable) {
          hard_failures.fetch_add(1);
        }
      }
    });
  }
  while (!started.load()) std::this_thread::yield();
  service.Shutdown();  // returns only once in-flight dispatches drained

  // After Shutdown no dispatch is running; new connects are refused.
  EXPECT_TRUE(InProcessClient::Connect(&service).status().IsUnavailable());
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(hard_failures.load(), 0);
}

// ---- observability -------------------------------------------------------

// The introspection surface end to end: a LAZILY opened catalog, a
// private registry, and a stepping microsecond clock — so the first
// query against a document demonstrably pays the deferred decode and
// the executor/text-index build, the second demonstrably pays neither,
// and kDump/kStats v2 expose the decomposition. No sleeps anywhere.
class ServerObservabilityTest : public ::testing::Test {
 protected:
  ServerObservabilityTest() {
    store::CatalogLoadOptions options;
    options.mode = model::LoadMode::kView;
    options.lazy = true;
    auto catalog =
        store::Catalog::LoadFromFile(CatalogImagePath(), options);
    EXPECT_TRUE(catalog.ok()) << catalog.status();
    catalog_ = std::move(*catalog);
  }

  QueryService MakeService(ServiceOptions options = {}) {
    options.clock = [this] { return now_ms_.load(); };
    // Every clock read advances time, so every span is nonzero and
    // deterministic in shape (gated spans stay exactly zero).
    options.clock_us = [this] { return now_us_.fetch_add(step_us_); };
    options.metrics = &registry_;
    return QueryService(&catalog_, std::move(options));
  }

  static constexpr const char* kTextQuery =
      "SELECT MEET(a, b) FROM *//cdata a, *//cdata b "
      "WHERE a CONTAINS 'corpus' AND b CONTAINS '1995'";

  store::Catalog catalog_;
  obs::MetricsRegistry registry_;
  std::atomic<uint64_t> now_ms_{1000};
  std::atomic<uint64_t> now_us_{0};
  uint64_t step_us_ = 5;
};

TEST_F(ServerObservabilityTest, DumpDecomposesLazyFirstTouchCosts) {
  QueryService service = MakeService();
  auto client = InProcessClient::Connect(&service);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Hello().ok());

  auto first = client->Query("lib_2", kTextQuery);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->ok) << first->message;

  // First touch: the query itself paid the deferred decode and the
  // executor/text-index build, and its trace says so.
  std::vector<obs::QueryLogEntry> log = service.query_log().Snapshot();
  ASSERT_EQ(log.size(), 1u);
  const obs::QueryLogEntry& cold = log[0];
  EXPECT_TRUE(cold.ok);
  EXPECT_EQ(cold.scope, "lib_2");
  EXPECT_EQ(cold.query, kTextQuery);
  EXPECT_GT(cold.stage_us[size_t(obs::Stage::kParse)], 0u);
  EXPECT_GT(cold.stage_us[size_t(obs::Stage::kRoute)], 0u);
  EXPECT_GT(cold.stage_us[size_t(obs::Stage::kDecode)], 0u);
  EXPECT_GT(cold.stage_us[size_t(obs::Stage::kIndexBuild)], 0u);
  EXPECT_GT(cold.stage_us[size_t(obs::Stage::kExecute)], 0u);
  EXPECT_GT(cold.stage_us[size_t(obs::Stage::kMerge)], 0u);

  // Same query again: the document is warm, so decode and index build
  // are exactly zero — the spans are gated off, not merely fast (every
  // clock read in this fixture advances time).
  auto second = client->Query("lib_2", kTextQuery);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->ok);
  log = service.query_log().Snapshot();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[1].stage_us[size_t(obs::Stage::kDecode)], 0u);
  EXPECT_EQ(log[1].stage_us[size_t(obs::Stage::kIndexBuild)], 0u);
  EXPECT_GT(log[1].stage_us[size_t(obs::Stage::kExecute)], 0u);

  // kStats v2 carries the histogram summaries: two request samples on
  // the query opcode, exactly one first-touch decode sample.
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->version, 2u);
  EXPECT_EQ(stats->queries_served, 2u);
  bool saw_query_op = false;
  bool saw_decode = false;
  for (const StatsHistogramEntry& entry : stats->histograms) {
    if (entry.name == "meetxml_server_request_us{op=\"query\"}") {
      saw_query_op = true;
      EXPECT_EQ(entry.count, 2u);
      EXPECT_GT(entry.sum, 0u);
    }
    if (entry.name == "meetxml_query_stage_us{stage=\"decode\"}") {
      saw_decode = true;
      EXPECT_EQ(entry.count, 1u);
    }
  }
  EXPECT_TRUE(saw_query_op);
  EXPECT_TRUE(saw_decode);

  // And the dump renders the whole story in one scrape: the series and
  // both query-log lines (a warm line shows decode_us=0 explicitly).
  auto dump = client->Dump();
  ASSERT_TRUE(dump.ok()) << dump.status();
  EXPECT_NE(dump->find("meetxml_server_queries_total 2"),
            std::string::npos);
  EXPECT_NE(dump->find(
                "meetxml_query_stage_us{stage=\"decode\",quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(dump->find("# querylog capacity=256 total=2 (oldest first)"),
            std::string::npos);
  EXPECT_NE(dump->find(" decode_us=0 "), std::string::npos);
  EXPECT_NE(dump->find("scope=\"lib_2\""), std::string::npos);
}

TEST_F(ServerObservabilityTest, SlowQueriesAreCountedAndFlagged) {
  step_us_ = 300;  // every span costs >= 300 us on this clock
  ServiceOptions options;
  options.slow_query_ms = 1;
  QueryService service = MakeService(std::move(options));
  auto client = InProcessClient::Connect(&service);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Hello().ok());
  auto response = client->Query("lib_0", kTextQuery);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->ok);
  EXPECT_EQ(
      registry_.counter("meetxml_server_slow_queries_total").Value(), 1u);
  std::vector<obs::QueryLogEntry> log = service.query_log().Snapshot();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_TRUE(log[0].slow);
  EXPECT_GE(log[0].total_us, 1000u);
  auto dump = client->Dump();
  ASSERT_TRUE(dump.ok());
  EXPECT_NE(dump->find(" slow=1 "), std::string::npos);
}

TEST_F(ServerObservabilityTest, V1NegotiatedStatsBodyIsByteIdentical) {
  QueryService service = MakeService();
  auto client = InProcessClient::Connect(&service);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Hello(/*version=*/1).ok());
  auto response = client->Query("lib_1", kTextQuery);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->ok);

  // A v1-negotiated connection must get the legacy four-varint body,
  // byte for byte — v2's histogram extension never leaks backwards.
  Request stats_request;
  stats_request.opcode = Opcode::kStats;
  std::string payload =
      client->connection()->HandlePayload(EncodeRequest(stats_request));
  Response expected;
  expected.ok = true;
  expected.opcode = Opcode::kStats;
  expected.stats.version = 1;
  expected.stats.sessions_active = 1;
  expected.stats.queries_served = 1;
  expected.stats.request_errors = 0;
  expected.stats.sessions_evicted = 0;
  EXPECT_EQ(payload, EncodeResponse(expected));
  auto decoded = DecodeResponse(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->stats.version, 1u);
  EXPECT_TRUE(decoded->stats.histograms.empty());

  // Pre-HELLO connections are v1 too: scrapers that never negotiated
  // must keep parsing what they always parsed.
  auto fresh = InProcessClient::Connect(&service);
  ASSERT_TRUE(fresh.ok());
  auto fresh_stats = fresh->Stats();
  ASSERT_TRUE(fresh_stats.ok());
  EXPECT_EQ(fresh_stats->version, 1u);
}

TEST_F(ServerObservabilityTest, ObserveOffKeepsCountsButRecordsNoTimings) {
  ServiceOptions options;
  options.observe = false;
  QueryService service = MakeService(std::move(options));
  auto client = InProcessClient::Connect(&service);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Hello().ok());
  auto response = client->Query("lib_0", kTextQuery);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->ok);
  // Exact counting survives; the timing surfaces stay empty (no clock
  // reads, no trace, no log entry) — the overhead bench's baseline.
  EXPECT_EQ(service.stats().queries_served, 1u);
  EXPECT_EQ(service.query_log().total_pushed(), 0u);
  EXPECT_EQ(registry_
                .histogram("meetxml_server_request_us", "op=\"query\"")
                .Summary()
                .count,
            0u);
  auto dump = client->Dump();
  ASSERT_TRUE(dump.ok());
  EXPECT_NE(dump->find("meetxml_server_queries_total 1"),
            std::string::npos);
}

// ---- session table ------------------------------------------------------

TEST(ServerSessionTable, OpenTouchCloseLifecycle) {
  SessionTable table(SessionOptions{});
  auto id = table.Open(100);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 1u);
  EXPECT_TRUE(table.Contains(*id));
  EXPECT_EQ(table.size(), 1u);
  EXPECT_TRUE(table.Touch(*id, 200).ok());
  EXPECT_TRUE(table.Close(*id).ok());
  EXPECT_TRUE(table.Close(*id).IsNotFound());
  EXPECT_TRUE(table.Touch(*id, 300).IsNotFound());
  EXPECT_EQ(table.size(), 0u);
}

TEST(ServerSessionTable, IdsAreNeverReused) {
  SessionTable table(SessionOptions{});
  auto first = table.Open(0);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(table.Close(*first).ok());
  auto second = table.Open(0);
  ASSERT_TRUE(second.ok());
  EXPECT_GT(*second, *first);
}

TEST(ServerSessionTable, EvictsExactlyTheIdleSessions) {
  SessionOptions options;
  options.idle_timeout_ms = 1000;
  SessionTable table(options);
  auto stale = table.Open(0);
  auto fresh = table.Open(0);
  ASSERT_TRUE(stale.ok() && fresh.ok());
  ASSERT_TRUE(table.Touch(*fresh, 800).ok());

  std::vector<uint64_t> evicted = table.EvictIdle(1500);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], *stale);
  EXPECT_FALSE(table.Contains(*stale));
  EXPECT_TRUE(table.Contains(*fresh));
  EXPECT_EQ(table.total_evicted(), 1u);

  // Timeout 0 disables eviction entirely.
  SessionTable forever(SessionOptions{.idle_timeout_ms = 0});
  ASSERT_TRUE(forever.Open(0).ok());
  EXPECT_TRUE(forever.EvictIdle(1u << 30).empty());
}

TEST(ServerSessionTable, FullTableRefusesWithUnavailable) {
  SessionOptions options;
  options.max_sessions = 1;
  SessionTable table(options);
  ASSERT_TRUE(table.Open(0).ok());
  EXPECT_TRUE(table.Open(0).status().IsUnavailable());
}

// ---- worker pool --------------------------------------------------------

TEST(ServerWorkerPool, RunsEveryJobAcrossWorkers) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ServerWorkerPool, ShutdownDrainsThenDropsLateJobs) {
  WorkerPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) pool.Submit([&ran] { ran.fetch_add(1); });
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 50);  // everything queued before Shutdown ran
  pool.Submit([&ran] { ran.fetch_add(1); });
  pool.Shutdown();  // idempotent
  EXPECT_EQ(ran.load(), 50);  // the late job was dropped, not lost-run
}

// ---- TCP front-end ------------------------------------------------------

Result<Response> ReadResponse(int fd) {
  char prefix[4];
  MEETXML_RETURN_NOT_OK(util::ReadFull(fd, prefix, sizeof(prefix)));
  uint32_t length = DecodeFrameLength(prefix);
  std::string payload(length, '\0');
  MEETXML_RETURN_NOT_OK(util::ReadFull(fd, payload.data(), length));
  return DecodeResponse(payload);
}

Result<Response> TcpRoundtrip(int fd, const Request& request) {
  MEETXML_RETURN_NOT_OK(
      util::WriteFull(fd, EncodeFrame(EncodeRequest(request))));
  return ReadResponse(fd);
}

TEST(ServerTcp, ServesTheSameBytesAsTheInProcessPath) {
  store::Catalog catalog = OpenViewCatalog();
  std::vector<Expected> expected = SerialExpectations(catalog);
  QueryService service(&catalog);
  auto server = TcpServer::Start(&service);
  ASSERT_TRUE(server.ok()) << server.status();
  ASSERT_GT((*server)->port(), 0);

  auto fd = util::ConnectTcp("localhost", (*server)->port());
  ASSERT_TRUE(fd.ok()) << fd.status();

  Request hello;
  hello.opcode = Opcode::kHello;
  hello.protocol_version = kProtocolVersion;
  auto greeted = TcpRoundtrip(*fd, hello);
  ASSERT_TRUE(greeted.ok()) << greeted.status();
  ASSERT_TRUE(greeted->ok);
  EXPECT_GT(greeted->session_id, 0u);
  EXPECT_EQ(greeted->banner, "meetxmld/1");

  for (size_t i = 0; i < MixedQueries().size(); ++i) {
    Request request;
    request.opcode = Opcode::kQuery;
    request.scope = MixedQueries()[i].scope;
    request.query = MixedQueries()[i].query;
    auto response = TcpRoundtrip(*fd, request);
    ASSERT_TRUE(response.ok()) << response.status();
    ExpectMatches(*response, expected[i]);
  }

  Request bye;
  bye.opcode = Opcode::kBye;
  ASSERT_TRUE(TcpRoundtrip(*fd, bye).ok());
  util::CloseSocket(*fd);
  (*server)->Stop();
  EXPECT_EQ(service.stats().sessions_active, 0u);
}

TEST(ServerTcp, PipelinedRequestsAnswerInOrder) {
  store::Catalog catalog = OpenViewCatalog();
  std::vector<Expected> expected = SerialExpectations(catalog);
  QueryService service(&catalog);
  auto server = TcpServer::Start(&service);
  ASSERT_TRUE(server.ok());

  auto fd = util::ConnectTcp("localhost", (*server)->port());
  ASSERT_TRUE(fd.ok());

  // One write: HELLO plus every mixed query back to back. The strand
  // must answer them strictly in submission order.
  Request hello;
  hello.opcode = Opcode::kHello;
  hello.protocol_version = kProtocolVersion;
  std::string burst = EncodeFrame(EncodeRequest(hello));
  for (const QueryCase& query_case : MixedQueries()) {
    Request request;
    request.opcode = Opcode::kQuery;
    request.scope = query_case.scope;
    request.query = query_case.query;
    burst += EncodeFrame(EncodeRequest(request));
  }
  ASSERT_TRUE(util::WriteFull(*fd, burst).ok());

  auto greeted = ReadResponse(*fd);
  ASSERT_TRUE(greeted.ok()) << greeted.status();
  ASSERT_TRUE(greeted->ok);
  for (size_t i = 0; i < MixedQueries().size(); ++i) {
    auto response = ReadResponse(*fd);
    ASSERT_TRUE(response.ok()) << response.status();
    ASSERT_EQ(response->opcode, Opcode::kQuery);
    ExpectMatches(*response, expected[i]);
  }
  util::CloseSocket(*fd);
  (*server)->Stop();
}

TEST(ServerTcp, BoundedInboxBackpressuresPipelinedBursts) {
  store::Catalog catalog = OpenViewCatalog();
  QueryService service(&catalog);
  TcpServerOptions options;
  options.max_inbox_frames = 2;  // far below the burst
  options.max_inbox_bytes = 256;
  auto server = TcpServer::Start(&service, options);
  ASSERT_TRUE(server.ok()) << server.status();

  auto fd = util::ConnectTcp("localhost", (*server)->port());
  ASSERT_TRUE(fd.ok());

  // HELLO plus 64 pipelined pings in one write: the reader must park
  // on the 2-frame inbox (TCP backpressure) rather than queue them
  // all, and every frame still answers in order.
  Request hello;
  hello.opcode = Opcode::kHello;
  hello.protocol_version = kProtocolVersion;
  std::string burst = EncodeFrame(EncodeRequest(hello));
  Request ping;
  ping.opcode = Opcode::kPing;
  constexpr int kPings = 64;
  for (int i = 0; i < kPings; ++i) {
    burst += EncodeFrame(EncodeRequest(ping));
  }
  ASSERT_TRUE(util::WriteFull(*fd, burst).ok());

  auto greeted = ReadResponse(*fd);
  ASSERT_TRUE(greeted.ok()) << greeted.status();
  EXPECT_TRUE(greeted->ok);
  for (int i = 0; i < kPings; ++i) {
    auto response = ReadResponse(*fd);
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_TRUE(response->ok);
    EXPECT_EQ(response->opcode, Opcode::kPing);
  }
  util::CloseSocket(*fd);
  (*server)->Stop();
}

TEST(ServerProtocol, MaxQueryTableAlwaysFitsOneFrame) {
  // The session default must sit at or under the frame budget, and a
  // worst-case QUERY response at that budget must still encode into
  // one legal frame — the invariant that keeps TCP and in-process
  // transports byte-identical.
  EXPECT_LE(SessionOptions{}.max_result_bytes, kMaxQueryTableBytes);
  Response response;
  response.ok = true;
  response.opcode = Opcode::kQuery;
  response.row_count = ~0ull;
  response.truncated = true;
  response.table.assign(kMaxQueryTableBytes, 'x');
  EXPECT_LE(EncodeResponse(response).size(), kMaxFrameBytes);
}

TEST(ServerTcp, StopRefusesNewConnectionsAndReleasesSessions) {
  store::Catalog catalog = OpenViewCatalog();
  QueryService service(&catalog);
  auto server = TcpServer::Start(&service);
  ASSERT_TRUE(server.ok());
  uint16_t port = (*server)->port();

  auto fd = util::ConnectTcp("localhost", port);
  ASSERT_TRUE(fd.ok());
  Request hello;
  hello.opcode = Opcode::kHello;
  hello.protocol_version = kProtocolVersion;
  ASSERT_TRUE(TcpRoundtrip(*fd, hello).ok());
  ASSERT_EQ(service.stats().sessions_active, 1u);

  (*server)->Stop();  // idempotent; drains and releases the session
  (*server)->Stop();
  EXPECT_EQ(service.stats().sessions_active, 0u);
  EXPECT_EQ((*server)->connection_count(), 0u);
  util::CloseSocket(*fd);

  // The listener is gone: a fresh connect must fail.
  EXPECT_FALSE(util::ConnectTcp("localhost", port).ok());
}

}  // namespace
}  // namespace server
}  // namespace meetxml
