// Tests for cross-document concept lookup (paper §4: "whether a
// certain bibliographical item ... also lives in another bibliography").

#include <gtest/gtest.h>

#include "text/cross_document.h"
#include "data/paper_example.h"
#include "model/shredder.h"
#include "tests/test_util.h"

namespace meetxml {
namespace text {
namespace {

using meetxml::testing::FindElement;
using meetxml::testing::MustShred;

// The same two publications as Figure 1, but marked up completely
// differently: flat <entry> records with attributes and different tag
// names.
constexpr const char* kOtherBibliographyXml = R"(
<records>
  <entry kind="article" when="1999">
    <heading>How to Hack</heading>
    <people><person>Ben Bit</person></people>
  </entry>
  <entry kind="article" when="1999">
    <heading>Hacking and RSI</heading>
    <people><person>Bob Byte</person></people>
  </entry>
  <entry kind="book" when="1998">
    <heading>Unrelated Volume</heading>
    <people><person>Carol Coder</person></people>
  </entry>
</records>)";

class CrossDocumentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    source_ = MustShred(data::PaperExampleXml());
    target_ = MustShred(kOtherBibliographyXml);
    auto search = FullTextSearch::Build(target_);
    ASSERT_TRUE(search.ok());
    search_ = std::make_unique<FullTextSearch>(std::move(*search));
  }

  model::StoredDocument source_;
  model::StoredDocument target_;
  std::unique_ptr<FullTextSearch> search_;
};

TEST_F(CrossDocumentTest, ExtractsLongestStringsAsProbes) {
  bat::Oid article = FindElement(source_, "article");  // Ben Bit's
  auto probes = ExtractProbeStrings(source_, article);
  ASSERT_FALSE(probes.empty());
  // "How to Hack" is the longest string in that subtree.
  EXPECT_EQ(probes[0], "How to Hack");
  // Short strings ("Ben", "Bit", "1999") are filtered by default.
  for (const std::string& probe : probes) {
    EXPECT_GE(probe.size(), 4u);
  }
}

TEST_F(CrossDocumentTest, FindsTheItemUnderDifferentMarkup) {
  bat::Oid article = FindElement(source_, "article");  // How to Hack
  CrossFindOptions options;
  options.min_probes_covered = 1;
  auto found = FindInOtherDocument(source_, article, target_, *search_,
                                   options);
  ASSERT_TRUE(found.ok()) << found.status();
  ASSERT_FALSE(found->empty());
  // The best hit sits inside the first <entry> (title + nothing else
  // matches the unrelated records).
  bat::Oid top = (*found)[0].meet;
  bat::Oid cur = top;
  while (cur != target_.root() && target_.tag(cur) != "entry") {
    cur = target_.parent(cur);
  }
  ASSERT_EQ(target_.tag(cur), "entry");
  bat::Oid first_entry = FindElement(target_, "entry", 0);
  EXPECT_EQ(cur, first_entry);
}

TEST_F(CrossDocumentTest, CoverageRequirementFiltersWeakEvidence) {
  bat::Oid article = FindElement(source_, "article");
  CrossFindOptions strict;
  strict.min_probes_covered = 3;  // more probes than can co-occur
  auto found =
      FindInOtherDocument(source_, article, target_, *search_, strict);
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(found->empty());
}

TEST_F(CrossDocumentTest, RejectsBadSubtree) {
  EXPECT_FALSE(
      FindInOtherDocument(source_, 9999, target_, *search_).ok());
}

TEST_F(CrossDocumentTest, RejectsProbelessSubtree) {
  // A subtree whose strings are all too short.
  auto source = MustShred("<a><b>xy</b></a>");
  auto found = FindInOtherDocument(
      source, meetxml::testing::FindElement(source, "b"), target_,
      *search_);
  EXPECT_FALSE(found.ok());
  EXPECT_TRUE(found.status().IsInvalidArgument());
}

TEST_F(CrossDocumentTest, SelfLookupFindsTheOriginal) {
  // Probing the source document with its own item: the meet lands on
  // (or inside) the original article.
  auto search = FullTextSearch::Build(source_);
  ASSERT_TRUE(search.ok());
  bat::Oid article = FindElement(source_, "article");
  CrossFindOptions options;
  options.min_probes_covered = 1;
  auto found =
      FindInOtherDocument(source_, article, source_, *search, options);
  ASSERT_TRUE(found.ok()) << found.status();
  ASSERT_FALSE(found->empty());
  EXPECT_TRUE(source_.IsAncestorOrSelf(article, (*found)[0].meet) ||
              source_.IsAncestorOrSelf((*found)[0].meet, article));
}

}  // namespace
}  // namespace text
}  // namespace meetxml
