// Tests for the ID/IDREF overlay graph and the proximity meet (the
// paper's §7 future-work generalization to graphs).

#include <gtest/gtest.h>

#include "core/idref.h"
#include "core/meet_pair.h"
#include "data/random_tree.h"
#include "model/shredder.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace meetxml {
namespace core {
namespace {

using meetxml::testing::FindCdataNode;
using meetxml::testing::FindElement;
using meetxml::testing::MustShred;

// A bibliography where a citation references another publication by id:
//   pub A (id=a) cites pub B (id=b). In the tree, A's cite and B are far
//   apart; through the reference they are adjacent.
constexpr const char* kCitingXml = R"(
<bib>
  <pub id="a">
    <title>alpha</title>
    <cite ref="b"/>
  </pub>
  <pub id="b">
    <title>beta</title>
  </pub>
</bib>)";

TEST(IdrefGraph, BuildsEdges) {
  auto doc = MustShred(kCitingXml);
  auto graph = IdrefGraph::Build(doc);
  ASSERT_TRUE(graph.ok()) << graph.status();
  EXPECT_EQ(graph->edge_count(), 1u);
  EXPECT_EQ(graph->id_count(), 2u);
  EXPECT_EQ(graph->dangling_count(), 0u);

  Oid pub_a = graph->Resolve("a");
  Oid pub_b = graph->Resolve("b");
  ASSERT_NE(pub_a, bat::kInvalidOid);
  ASSERT_NE(pub_b, bat::kInvalidOid);
  EXPECT_EQ(doc.tag(pub_a), "pub");

  Oid cite = FindElement(doc, "cite");
  EXPECT_EQ(graph->OutRefs(cite), (std::vector<Oid>{pub_b}));
  EXPECT_EQ(graph->InRefs(pub_b), (std::vector<Oid>{cite}));
}

TEST(IdrefGraph, CountsDanglingReferences) {
  auto doc = MustShred(R"(<a><b ref="nowhere"/></a>)");
  auto graph = IdrefGraph::Build(doc);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->edge_count(), 0u);
  EXPECT_EQ(graph->dangling_count(), 1u);
}

TEST(IdrefGraph, SplitsIdrefsLists) {
  auto doc = MustShred(
      R"(<a><x id="p"/><x id="q"/><y idref="p  q"/></a>)");
  auto graph = IdrefGraph::Build(doc);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->edge_count(), 2u);
}

TEST(IdrefGraph, CustomAttributeNames) {
  auto doc = MustShred(
      R"(<a><x key="p"/><y target="p"/></a>)");
  IdrefOptions options;
  options.id_attributes = {"key"};
  options.idref_attributes = {"target"};
  auto graph = IdrefGraph::Build(doc, options);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->edge_count(), 1u);
}

TEST(IdrefGraph, UnknownIdResolvesToInvalid) {
  auto doc = MustShred("<a/>");
  auto graph = IdrefGraph::Build(doc);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->Resolve("zz"), bat::kInvalidOid);
}

// ---- GraphMeet -------------------------------------------------------------

TEST(GraphMeet, ReferencesShortcutTheTree) {
  auto doc = MustShred(kCitingXml);
  auto graph = IdrefGraph::Build(doc);
  ASSERT_TRUE(graph.ok());

  Oid alpha = FindCdataNode(doc, "alpha");
  Oid beta = FindCdataNode(doc, "beta");

  // Tree distance: alpha(cdata->title->pubA) .. beta = 3 + 3 = 6? The
  // tree route is cdata-title-pubA-bib-pubB-title-cdata = 6 edges. Via
  // the reference: cdata-title-pubA-cite-pubB-title-cdata = 6 as well;
  // check against the pure tree distance first.
  int tree_distance = Distance(doc, alpha, beta).ValueOrDie();

  auto meet = GraphMeet(doc, *graph, alpha, beta);
  ASSERT_TRUE(meet.ok()) << meet.status();
  EXPECT_LE(meet->distance_a + meet->distance_b, tree_distance);
}

TEST(GraphMeet, EqualsLcaOnReferenceFreeTrees) {
  data::RandomTreeOptions options;
  options.seed = 9090;
  options.target_elements = 150;
  options.attribute_prob = 0.0;  // no attributes -> no references
  auto generated = data::GenerateRandomTree(options);
  ASSERT_TRUE(generated.ok());
  auto shredded = model::Shred(*generated);
  ASSERT_TRUE(shredded.ok());
  const model::StoredDocument& doc = *shredded;
  auto graph = IdrefGraph::Build(doc);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->edge_count(), 0u);

  util::Rng rng(31);
  for (int trial = 0; trial < 60; ++trial) {
    Oid a = static_cast<Oid>(rng.NextBelow(doc.node_count()));
    Oid b = static_cast<Oid>(rng.NextBelow(doc.node_count()));
    auto proximity = GraphMeet(doc, *graph, a, b);
    auto tree = MeetPair(doc, a, b);
    ASSERT_TRUE(proximity.ok() && tree.ok());
    EXPECT_EQ(proximity->meet, tree->meet)
        << "pair (" << a << ", " << b << ")";
    EXPECT_EQ(proximity->distance_a + proximity->distance_b,
              tree->joins);
  }
}

TEST(GraphMeet, RespectsDistanceCap) {
  auto doc = MustShred(kCitingXml);
  auto graph = IdrefGraph::Build(doc);
  ASSERT_TRUE(graph.ok());
  Oid alpha = FindCdataNode(doc, "alpha");
  Oid beta = FindCdataNode(doc, "beta");
  auto blocked = GraphMeet(doc, *graph, alpha, beta, /*max_distance=*/2);
  EXPECT_FALSE(blocked.ok());
  EXPECT_TRUE(blocked.status().IsNotFound());
}

TEST(GraphMeet, HandlesReferenceCycles) {
  // a references b, b references a: the BFS must terminate.
  auto doc = MustShred(
      R"(<g><n id="a" ref="b"><t>one</t></n>
           <n id="b" ref="a"><t>two</t></n></g>)");
  auto graph = IdrefGraph::Build(doc);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->edge_count(), 2u);
  Oid one = FindCdataNode(doc, "one");
  Oid two = FindCdataNode(doc, "two");
  auto meet = GraphMeet(doc, *graph, one, two);
  ASSERT_TRUE(meet.ok());
  // Route via the reference: cdata-t-nA -ref- nB-t-cdata = 5 edges;
  // via the tree root it is 6.
  EXPECT_EQ(meet->distance_a + meet->distance_b, 5);
}

TEST(GraphMeet, SelfMeetIsZero) {
  auto doc = MustShred("<a><b>x</b></a>");
  auto graph = IdrefGraph::Build(doc);
  ASSERT_TRUE(graph.ok());
  auto meet = GraphMeet(doc, *graph, 1, 1);
  ASSERT_TRUE(meet.ok());
  EXPECT_EQ(meet->meet, 1u);
  EXPECT_EQ(meet->distance_a + meet->distance_b, 0);
}

TEST(GraphDistance, MatchesMeetSum) {
  auto doc = MustShred(kCitingXml);
  auto graph = IdrefGraph::Build(doc);
  ASSERT_TRUE(graph.ok());
  Oid alpha = FindCdataNode(doc, "alpha");
  Oid beta = FindCdataNode(doc, "beta");
  auto distance = GraphDistance(doc, *graph, alpha, beta);
  auto meet = GraphMeet(doc, *graph, alpha, beta);
  ASSERT_TRUE(distance.ok() && meet.ok());
  EXPECT_EQ(*distance, meet->distance_a + meet->distance_b);
}

TEST(GraphMeet, RejectsBadInput) {
  auto doc = MustShred("<a/>");
  auto graph = IdrefGraph::Build(doc);
  ASSERT_TRUE(graph.ok());
  EXPECT_FALSE(GraphMeet(doc, *graph, 5, 0).ok());
  EXPECT_FALSE(GraphMeet(doc, *graph, 0, 0, -1).ok());
}

}  // namespace
}  // namespace core
}  // namespace meetxml
