// Recursive-descent parser for the query language.

#ifndef MEETXML_QUERY_PARSER_H_
#define MEETXML_QUERY_PARSER_H_

#include <string_view>

#include "query/ast.h"
#include "util/result.h"

namespace meetxml {
namespace query {

/// \brief Parses a query; returns a semantic-checked AST (all variables
/// referenced in SELECT/WHERE are declared in FROM, no duplicate
/// variables, non-empty patterns).
util::Result<Query> ParseQuery(std::string_view text);

/// \brief Parses just a path pattern (used by EXCLUDE and the API).
util::Result<PathPattern> ParsePathPattern(std::string_view text);

}  // namespace query
}  // namespace meetxml

#endif  // MEETXML_QUERY_PARSER_H_
