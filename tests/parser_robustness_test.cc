// Robustness / failure-injection tests: mutated, truncated and
// adversarial inputs must produce Status errors (or valid parses),
// never crashes, hangs or invariant violations downstream.

#include <gtest/gtest.h>

#include "data/dblp_gen.h"
#include "data/paper_example.h"
#include "model/shredder.h"
#include "model/storage_io.h"
#include "util/rng.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace meetxml {
namespace {

// ---- Byte-level mutation fuzzing of the XML parser --------------------

class ParserMutationFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserMutationFuzz, MutatedDocumentsNeverCrash) {
  std::string base = data::PaperExampleXml();
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = base;
    int mutations = 1 + static_cast<int>(rng.NextBelow(4));
    for (int m = 0; m < mutations; ++m) {
      size_t pos = rng.NextBelow(mutated.size());
      switch (rng.NextBelow(4)) {
        case 0:  // flip a byte
          mutated[pos] = static_cast<char>(rng.NextBelow(256));
          break;
        case 1:  // delete a byte
          mutated.erase(pos, 1);
          break;
        case 2:  // duplicate a byte
          mutated.insert(pos, 1, mutated[pos]);
          break;
        case 3:  // insert a metacharacter
          mutated.insert(pos, 1, "<>&'\"/"[rng.NextBelow(6)]);
          break;
      }
      if (mutated.empty()) break;
    }
    // Must not crash; if it parses, the shredder must accept the DOM
    // and the result must round-trip through the serializer.
    auto parsed = xml::Parse(mutated);
    if (!parsed.ok()) continue;
    auto shredded = model::Shred(*parsed);
    if (!shredded.ok()) continue;
    auto reparsed = xml::Parse(xml::Serialize(*parsed));
    EXPECT_TRUE(reparsed.ok())
        << "serializer produced unparseable output for a valid parse";
  }
}

TEST_P(ParserMutationFuzz, TruncationsNeverCrash) {
  std::string base = data::PaperExampleXml();
  util::Rng rng(GetParam() * 3 + 1);
  for (int trial = 0; trial < 100; ++trial) {
    size_t cut = rng.NextBelow(base.size());
    auto parsed = xml::Parse(base.substr(0, cut));
    // Any outcome but a crash is fine; almost all cuts must fail.
    (void)parsed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserMutationFuzz,
                         ::testing::Values(1000, 2000, 3000, 4000));

// ---- Adversarial shapes ------------------------------------------------

TEST(ParserAdversarial, ManyAttributes) {
  std::string text = "<a";
  for (int i = 0; i < 5000; ++i) {
    text += " x" + std::to_string(i) + "=\"v\"";
  }
  text += "/>";
  auto parsed = xml::Parse(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->root->attributes().size(), 5000u);
}

TEST(ParserAdversarial, HugeSingleTextNode) {
  std::string text = "<a>" + std::string(1 << 20, 'x') + "</a>";
  auto parsed = xml::Parse(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->root->children()[0]->text().size(), 1u << 20);
}

TEST(ParserAdversarial, ManySiblings) {
  std::string text = "<a>";
  for (int i = 0; i < 50000; ++i) text += "<b/>";
  text += "</a>";
  auto parsed = xml::Parse(text);
  ASSERT_TRUE(parsed.ok());
  auto shredded = model::Shred(*parsed);
  ASSERT_TRUE(shredded.ok());
  EXPECT_EQ(shredded->node_count(), 50001u);
}

TEST(ParserAdversarial, EntityBombIsLinear) {
  // No DTD entities -> no expansion: a million character references
  // decode to a million characters, not exponential growth.
  std::string text = "<a>";
  for (int i = 0; i < 100000; ++i) text += "&#65;";
  text += "</a>";
  auto parsed = xml::Parse(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->root->children()[0]->text().size(), 100000u);
}

TEST(ParserAdversarial, DeepAttributeQuotesMix) {
  auto parsed = xml::Parse(R"(<a x="it's" y='say "hi"'/>)");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed->root->FindAttribute("x"), "it's");
  EXPECT_EQ(*parsed->root->FindAttribute("y"), "say \"hi\"");
}

// ---- Storage image mutation fuzzing ------------------------------------

class StorageMutationFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StorageMutationFuzz, MutatedImagesNeverCrash) {
  auto doc = model::ShredXmlText(data::PaperExampleXml());
  ASSERT_TRUE(doc.ok());
  auto bytes = model::SaveToBytes(*doc);
  ASSERT_TRUE(bytes.ok());

  util::Rng rng(GetParam());
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = *bytes;
    size_t pos = rng.NextBelow(mutated.size());
    mutated[pos] = static_cast<char>(rng.NextBelow(256));
    auto loaded = model::LoadFromBytes(mutated);
    // The checksum catches payload flips; header flips fail earlier.
    // Either way: a Status, never UB. If (vanishingly unlikely) the
    // flip restores the original byte, the load may succeed.
    if (loaded.ok()) {
      EXPECT_EQ(loaded->node_count(), doc->node_count());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorageMutationFuzz,
                         ::testing::Values(11, 22, 33));

// ---- Generator parameter validation -------------------------------------

TEST(GeneratorValidation, RejectsBadOptions) {
  data::DblpOptions dblp;
  dblp.start_year = 2000;
  dblp.end_year = 1990;
  EXPECT_FALSE(data::GenerateDblp(dblp).ok());

  data::DblpOptions negative;
  negative.icde_papers_per_year = -1;
  EXPECT_FALSE(data::GenerateDblp(negative).ok());
}

}  // namespace
}  // namespace meetxml
