#include "util/threads.h"

#include <algorithm>
#include <thread>

namespace meetxml {
namespace util {

unsigned ResolveThreads(unsigned requested) {
  if (requested != 0) return requested;
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace util
}  // namespace meetxml
