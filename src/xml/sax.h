// Event-based (SAX-style) parsing interface.
//
// The DOM parser (xml/parser.h) is a thin sink over this event stream;
// bulk loaders that do not need a DOM — like the streaming Monet
// transform in model/shredder.h — consume the events directly and never
// materialize the tree, which roughly halves peak memory for large
// documents.

#ifndef MEETXML_XML_SAX_H_
#define MEETXML_XML_SAX_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "xml/dom.h"

namespace meetxml {
namespace xml {

/// \brief Receiver of parse events. Every callback may return a non-OK
/// Status to abort the parse; the status is propagated to the caller.
///
/// Guarantees: events are well nested (EndElement always matches the
/// innermost open StartElement; tags are verified by the parser);
/// adjacent PCDATA and CDATA runs are merged into a single Text event;
/// whitespace-only text is dropped when the parse options say so.
class SaxHandler {
 public:
  virtual ~SaxHandler() = default;

  /// \brief Called once before any other event.
  virtual util::Status StartDocument() { return util::Status::OK(); }
  /// \brief Called once after the root element closed.
  virtual util::Status EndDocument() { return util::Status::OK(); }

  /// \brief An element opened. `attributes` are decoded and
  /// duplicate-free; ownership moves to the handler.
  virtual util::Status StartElement(std::string tag,
                                    std::vector<Attribute> attributes) {
    (void)tag;
    (void)attributes;
    return util::Status::OK();
  }

  /// \brief The innermost open element closed.
  virtual util::Status EndElement(std::string_view tag) {
    (void)tag;
    return util::Status::OK();
  }

  /// \brief A merged character-data run inside the current element.
  virtual util::Status Text(std::string text) {
    (void)text;
    return util::Status::OK();
  }

  /// \brief A comment (only when ParseOptions::keep_comments).
  virtual util::Status Comment(std::string text) {
    (void)text;
    return util::Status::OK();
  }

  /// \brief A processing instruction (only when
  /// ParseOptions::keep_processing_instructions).
  virtual util::Status ProcessingInstruction(std::string target,
                                             std::string data) {
    (void)target;
    (void)data;
    return util::Status::OK();
  }
};

}  // namespace xml
}  // namespace meetxml

#endif  // MEETXML_XML_SAX_H_
