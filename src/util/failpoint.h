// Failpoints: named fault-injection sites threaded through the I/O and
// serving layers (file_io, mmap_file, storage_io append, net, server
// admission), so tests can prove what happens when a write, an fsync,
// a rename, a recv or an admission fails — or when the process dies —
// at any specific boundary.
//
// A site is one macro invocation naming the boundary it guards:
//
//   MEETXML_FAILPOINT("file_io.atomic.rename");          // Status flow
//   if (MEETXML_FAILPOINT_TRIGGERED("server.admit")) ... // bool flow
//
// Sites compile to nothing unless the tree is built with
// -DMEETXML_FAILPOINTS=ON (the CMake option defines MEETXML_FAILPOINTS
// for the whole tree), so production binaries pay zero overhead — the
// ab14 <2% dispatch-overhead contract never sees a failpoint. In a
// failpoints build an unarmed site costs one relaxed atomic increment.
//
// Arming is scriptable two ways:
//   * from tests: FailPoints::Arm("storage.append.*", spec) with
//     countdown (skip/count), probability and error-code triggers, or
//     FailPoints::ArmFromSpec("file_io.atomic.rename=error:1:1");
//   * from the environment: the MEETXML_FAILPOINTS variable holds the
//     same comma-separated spec text and is parsed on the first hit,
//     so a stock binary can run under injected faults with no code.
//
// Spec text grammar (comma-separated terms):
//   <glob-pattern>=<action>[:<skip>[:<count>[:<probability>]]]
// where <action> is one of
//   error        fire util::StatusCode::kInternal
//   notfound     fire kNotFound
//   unavailable  fire kUnavailable
//   exhausted    fire kResourceExhausted
//   crash        std::_Exit(FailPoints::kCrashExitCode) — the crash
//                matrix's "power cut at this boundary"
// A fired site skips its first <skip> matching hits, then fires
// <count> times (default: forever), each with <probability> (default
// 1.0). Patterns are util::GlobMatch globs, so "*" arms every site —
// "*=crash:7:1" is "die at the 7th I/O boundary", which is exactly how
// the storage crash matrix enumerates every kill point of a save.
//
// Thread safety: sites may be hit from any thread. The unarmed fast
// path is a single relaxed atomic (no lock, no synchronization edge —
// a failpoints build does not mask races from TSan); armed evaluation
// takes one global mutex, which only instrumented test runs pay.

#ifndef MEETXML_UTIL_FAILPOINT_H_
#define MEETXML_UTIL_FAILPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace meetxml {
namespace util {

/// \brief What an armed site does when it fires.
struct FailPointSpec {
  enum class Action {
    /// Return an injected error Status from the guarded operation.
    kError,
    /// std::_Exit(kCrashExitCode) — the process dies at the boundary
    /// with no cleanup, destructors or buffer flushes, which is how
    /// the crash-matrix tests simulate a kill between two I/O calls.
    kCrash,
  };
  Action action = Action::kError;
  /// Code of the injected Status (kError only).
  StatusCode code = StatusCode::kInternal;
  /// Matching hits to let pass before the site starts firing.
  uint64_t skip = 0;
  /// How many times to fire before going quiet; UINT64_MAX = forever.
  uint64_t count = UINT64_MAX;
  /// Chance that an eligible hit actually fires (deterministic
  /// xorshift stream seeded by `seed`).
  double probability = 1.0;
  uint64_t seed = 0x9e3779b97f4a7c15ull;
};

/// \brief The process-wide failpoint registry. All methods are static
/// and thread-safe; they exist (and are callable) in every build, but
/// only a -DMEETXML_FAILPOINTS=ON build compiles the sites that feed
/// them — enabled() reports which world this binary lives in.
class FailPoints {
 public:
  /// Exit code of Action::kCrash, chosen so a crash-matrix parent can
  /// tell an injected kill from an ordinary child failure.
  static constexpr int kCrashExitCode = 42;

  /// \brief True when MEETXML_FAILPOINT sites are compiled in.
  static bool enabled() {
#if defined(MEETXML_FAILPOINTS)
    return true;
#else
    return false;
#endif
  }

  /// \brief Arms every site matching `pattern` (a util::GlobMatch
  /// glob). Patterns stack: a site matching several armed entries
  /// fires on the first eligible one, in arming order.
  static Status Arm(std::string_view pattern, FailPointSpec spec);

  /// \brief Arms from spec text (grammar in the header comment) — the
  /// same parser the MEETXML_FAILPOINTS environment variable feeds.
  static Status ArmFromSpec(std::string_view spec_text);

  /// \brief Disarms every entry whose pattern string equals `pattern`.
  static void Disarm(std::string_view pattern);

  /// \brief Disarms everything and resets every counter — the
  /// test-fixture reset.
  static void Reset();

  /// \brief Total site hits since the last Reset (counted armed or
  /// not; the crash matrix uses the delta across one save to learn how
  /// many kill points the save has).
  static uint64_t TotalHits();

  /// \brief Hits observed at one exact site name since the last
  /// Reset. Only maintained while at least one entry is armed (the
  /// unarmed fast path counts nothing but the total).
  static uint64_t HitCount(std::string_view site);

  /// \brief The injection point behind the macros. Returns the
  /// injected Status when an armed entry fires (or never returns, for
  /// Action::kCrash); OK otherwise.
  static Status Hit(std::string_view site);
};

}  // namespace util
}  // namespace meetxml

#if defined(MEETXML_FAILPOINTS)
/// Status-flow site: returns the injected Status out of the enclosing
/// function (which must return util::Status or util::Result<T>).
#define MEETXML_FAILPOINT(site)                                        \
  do {                                                                 \
    ::meetxml::util::Status _meetxml_fp_status =                       \
        ::meetxml::util::FailPoints::Hit(site);                        \
    if (!_meetxml_fp_status.ok()) return _meetxml_fp_status;           \
  } while (0)
/// Bool-flow site: evaluates to true when the site fires, so callers
/// weave the injected failure into their own error handling.
#define MEETXML_FAILPOINT_TRIGGERED(site) \
  (!::meetxml::util::FailPoints::Hit(site).ok())
#else
#define MEETXML_FAILPOINT(site) \
  do {                          \
  } while (0)
#define MEETXML_FAILPOINT_TRIGGERED(site) false
#endif

#endif  // MEETXML_UTIL_FAILPOINT_H_
