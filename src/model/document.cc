#include "model/document.h"

#include <algorithm>

namespace meetxml {
namespace model {

using util::Status;

namespace {
const OidOidBat kEmptyEdges;
const OidStrBat kEmptyStrings;
}  // namespace

std::vector<Oid> StoredDocument::children(Oid node) const {
  std::vector<Oid> out;
  if (!finalized_ || node >= parent_.size()) return out;
  uint32_t begin = child_offsets_[node];
  uint32_t end = child_offsets_[node + 1];
  out.assign(child_list_.begin() + begin, child_list_.begin() + end);
  return out;
}

bool StoredDocument::IsAncestorOrSelf(Oid ancestor, Oid node) const {
  // Steered by depth: walk `node` up exactly to ancestor's depth.
  uint32_t target = depth(ancestor);
  Oid cur = node;
  while (depth(cur) > target) cur = parent_[cur];
  return cur == ancestor;
}

const OidOidBat& StoredDocument::EdgesAt(PathId path) const {
  if (path >= edges_.size()) return kEmptyEdges;
  return edges_[path];
}

const OidStrBat& StoredDocument::StringsAt(PathId path) const {
  if (path >= strings_.size()) return kEmptyStrings;
  return strings_[path];
}

std::vector<std::string_view> StoredDocument::StringValuesAt(
    PathId path, Oid owner) const {
  std::vector<std::string_view> out;
  if (path >= string_index_.size()) return out;
  auto it = string_index_[path].find(owner);
  if (it == string_index_[path].end()) return out;
  const OidStrBat& table = strings_[path];
  for (uint32_t row : it->second) out.push_back(table.tail(row));
  return out;
}

std::vector<StringAssociation> StoredDocument::AttributesOf(
    Oid element) const {
  // Collect (global append sequence, association) so that the original
  // per-element attribute order is restored even when different elements
  // of the same path interned their attribute names in different orders.
  std::vector<std::pair<uint64_t, StringAssociation>> collected;
  PathId element_path = path_[element];
  for (PathId child : paths_.children(element_path)) {
    if (paths_.kind(child) != StepKind::kAttribute) continue;
    if (child >= string_index_.size()) continue;
    auto it = string_index_[child].find(element);
    if (it == string_index_[child].end()) continue;
    const OidStrBat& table = strings_[child];
    for (uint32_t row : it->second) {
      collected.emplace_back(
          string_seq_[child][row],
          StringAssociation{child, element, table.tail(row)});
    }
  }
  std::sort(collected.begin(), collected.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<StringAssociation> out;
  out.reserve(collected.size());
  for (auto& [seq, assoc] : collected) out.push_back(std::move(assoc));
  return out;
}

std::string_view StoredDocument::CdataValue(Oid cdata_node) const {
  auto values = StringValuesAt(path_[cdata_node], cdata_node);
  return values.empty() ? std::string_view() : values.front();
}

std::vector<std::tuple<PathId, Oid, std::string_view>>
StoredDocument::StringsInAppendOrder() const {
  std::vector<std::tuple<PathId, Oid, std::string_view>> out(
      string_count_);
  for (PathId p = 0; p < strings_.size(); ++p) {
    const OidStrBat& table = strings_[p];
    for (size_t row = 0; row < table.size(); ++row) {
      out[string_seq_[p][row]] =
          std::make_tuple(p, table.head(row),
                          std::string_view(table.tail(row)));
    }
  }
  return out;
}

std::vector<std::tuple<PathId, Oid, std::string>>
StoredDocument::TakeStringsInAppendOrder() && {
  std::vector<std::tuple<PathId, Oid, std::string>> out(string_count_);
  for (PathId p = 0; p < strings_.size(); ++p) {
    OidStrBat& table = strings_[p];
    for (size_t row = 0; row < table.size(); ++row) {
      out[string_seq_[p][row]] =
          std::make_tuple(p, table.head(row),
                          std::move(table.mutable_tail(row)));
    }
  }
  return out;
}

Oid StoredDocument::AppendNode(PathId path, Oid parent, int rank) {
  Oid oid = static_cast<Oid>(parent_.size());
  parent_.push_back(parent);
  path_.push_back(path);
  rank_.push_back(rank);
  if (path >= edges_.size()) edges_.resize(path + 1);
  if (edges_[path].empty()) edge_paths_.push_back(path);
  edges_[path].Append(parent, oid);
  finalized_ = false;
  return oid;
}

void StoredDocument::AppendString(PathId path, Oid owner,
                                  std::string value) {
  if (path >= strings_.size()) {
    strings_.resize(path + 1);
    string_seq_.resize(path + 1);
  }
  if (strings_[path].empty()) string_paths_.push_back(path);
  strings_[path].Append(owner, std::move(value));
  string_seq_[path].push_back(string_count_);
  ++string_count_;
  finalized_ = false;
}

Status StoredDocument::Finalize() {
  if (parent_.empty()) {
    return Status::InvalidArgument("cannot finalize an empty document");
  }
  if (parent_[0] != kInvalidOid) {
    return Status::Internal("node 0 must be the root");
  }

  // Children CSR via counting sort on the parent column; `child_list_`
  // ends up in OID (== document) order per parent, which is sibling
  // order because the shredder emits children in order.
  size_t n = parent_.size();
  child_offsets_.assign(n + 1, 0);
  for (size_t i = 1; i < n; ++i) {
    if (parent_[i] == kInvalidOid) {
      return Status::Internal("non-root node ", i, " has no parent");
    }
    if (parent_[i] >= i) {
      return Status::Internal("node ", i,
                              " has parent with a later OID; shredder must "
                              "assign DFS order");
    }
    ++child_offsets_[parent_[i] + 1];
  }
  for (size_t i = 1; i <= n; ++i) child_offsets_[i] += child_offsets_[i - 1];
  child_list_.resize(n - 1);
  std::vector<uint32_t> cursor(child_offsets_.begin(),
                               child_offsets_.end() - 1);
  for (size_t i = 1; i < n; ++i) {
    child_list_[cursor[parent_[i]]++] = static_cast<Oid>(i);
  }

  // Per-path string indexes for reassembly and value look-ups.
  string_index_.assign(strings_.size(), {});
  for (PathId p = 0; p < strings_.size(); ++p) {
    const OidStrBat& table = strings_[p];
    for (size_t row = 0; row < table.size(); ++row) {
      string_index_[p][table.head(row)].push_back(
          static_cast<uint32_t>(row));
    }
  }

  finalized_ = true;
  return Status::OK();
}

}  // namespace model
}  // namespace meetxml
