// AB3 — ablation: XML parse + Monet-transform (shred) throughput and
// storage profile versus document size.
//
// The paper bulk-loads DBLP into Monet XML "as described in [19]"; this
// harness shows our substrate does the same job at scale: parse and
// shred times should grow linearly with document size, and the path
// summary (relation catalog) stays tiny and roughly constant once the
// schema is saturated.

#include <cstdio>

#include "data/dblp_gen.h"
#include "model/shredder.h"
#include "util/timer.h"
#include "xml/parser.h"
#include "xml/serializer.h"

using namespace meetxml;

int main() {
  std::printf("# AB3: parse + shred scaling on DBLP-shaped documents\n");
  std::printf("# %-10s %10s %10s %10s %10s %10s %10s %12s\n", "papers/yr",
              "xml_MB", "nodes", "paths", "parse_ms", "shred_ms",
              "stream_ms", "knodes/sec");

  for (int scale : {5, 15, 50, 150, 400}) {
    data::DblpOptions options;
    options.icde_papers_per_year = scale;
    options.other_papers_per_year = scale * 3;
    options.journal_articles_per_year = scale;
    auto generated = data::GenerateDblp(options);
    MEETXML_CHECK_OK(generated.status());
    xml::SerializeOptions serialize_options;
    serialize_options.indent = 1;
    std::string xml_text = xml::Serialize(*generated, serialize_options);

    util::Timer parse_timer;
    auto parsed = xml::Parse(xml_text);
    MEETXML_CHECK_OK(parsed.status());
    double parse_ms = parse_timer.ElapsedMillis();

    util::Timer shred_timer;
    auto shredded = model::Shred(*parsed);
    MEETXML_CHECK_OK(shredded.status());
    double shred_ms = shred_timer.ElapsedMillis();

    // Streaming path: parse + shred fused, no DOM.
    util::Timer stream_timer;
    auto streamed = model::ShredXmlTextStreaming(xml_text);
    MEETXML_CHECK_OK(streamed.status());
    double stream_ms = stream_timer.ElapsedMillis();

    double knodes_per_sec =
        static_cast<double>(streamed->node_count()) /
        (stream_ms / 1000.0) / 1000.0;
    std::printf("  %-10d %10.1f %10zu %10zu %10.1f %10.1f %10.1f %12.0f\n",
                scale, static_cast<double>(xml_text.size()) / 1e6,
                shredded->node_count(), shredded->paths().size(),
                parse_ms, shred_ms, stream_ms, knodes_per_sec);
  }
  std::printf("# expected shape: parse+shred linear in size; path count "
              "saturates at the schema size\n");
  return 0;
}
