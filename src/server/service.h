// QueryService: the meetxmld dispatch core — sessions, limits, and
// query execution against one shared view-backed store::Catalog.
//
// Every transport funnels into the same path: a connection feeds one
// decoded frame payload to Connection::HandlePayload and gets the
// response payload back. The TCP front-end (server/tcp_server.h) calls
// it from its worker pool; the in-process transport below calls it
// straight from test threads — same protocol bytes, same sessions,
// same limits, no sockets — which is what lets the concurrency suite
// pin server answers byte-identical to a serial MultiExecutor run.
//
// Concurrency contract: the catalog is read-only while a service
// exists (store/catalog.h's concurrent read path); any number of
// connections may dispatch simultaneously. Results are deterministic,
// so concurrent responses are byte-identical to serial ones.

#ifndef MEETXML_SERVER_SERVICE_H_
#define MEETXML_SERVER_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/executor.h"
#include "server/protocol.h"
#include "server/session.h"
#include "store/catalog.h"
#include "store/multi_executor.h"
#include "util/result.h"

namespace meetxml {
namespace server {

/// \brief Service policy knobs.
struct ServiceOptions {
  SessionOptions session;
  /// Per-query execution limits (max_rows is the row-count safety
  /// valve; the byte-level bound is session.max_result_bytes).
  query::ExecuteOptions execute;
  /// Monotonic clock, milliseconds. Tests inject a fake; production
  /// leaves it null for util::MonotonicMillis.
  std::function<uint64_t()> clock;
  /// Monotonic clock, microseconds, driving stage traces and request
  /// latency histograms. Null falls back to `clock` (scaled by 1000)
  /// when that is set, else obs::MonotonicMicros — so a test that
  /// injects either clock gets deterministic latencies.
  std::function<uint64_t()> clock_us;
  /// Metrics sink; null means obs::MetricsRegistry::Global(). Service
  /// counters are registry counters (kDump shows process-wide totals);
  /// stats() reports them relative to this service's construction, so
  /// ServiceStats keeps per-service semantics either way.
  obs::MetricsRegistry* metrics = nullptr;
  /// Queries whose total stage time reaches this many milliseconds are
  /// flagged slow: counted in meetxml_server_slow_queries_total and
  /// marked in the query log. 0 flags nothing.
  uint64_t slow_query_ms = 0;
  /// Ring capacity of the recent-query log kDump renders.
  size_t query_log_capacity = 256;
  /// Master switch for per-query tracing, stage histograms and the
  /// query log. Off, dispatch reads no clocks beyond the session
  /// timestamps (the ab14 overhead bench's baseline); kStats v2 and
  /// kDump still answer from whatever was recorded.
  bool observe = true;
  /// Banner carried by the HELLO response.
  std::string banner = "meetxmld/1";
  /// Admission cap: queries admitted (queued or dispatching) at once,
  /// across every transport. The query that would exceed it is shed
  /// with a busy reply instead of queueing unboundedly. 0 = unbounded.
  uint64_t queue_cap = 0;
  /// Per-request queue deadline on the service clock: a query that
  /// waited longer than this between front-end admission
  /// (RequestContext::admitted_ms) and dispatch is shed busy without
  /// executing — its answer would arrive too late to matter. 0 = off.
  uint64_t queue_deadline_ms = 0;
  /// Retry-after hint carried by busy replies.
  uint64_t busy_retry_after_ms = 100;
};

/// \brief Service counters (monotonic except sessions_active).
struct ServiceStats {
  uint64_t sessions_active = 0;
  uint64_t queries_served = 0;
  uint64_t request_errors = 0;
  uint64_t sessions_evicted = 0;
  /// Queries refused with a busy reply (admission cap or deadline).
  uint64_t queries_shed = 0;
};

/// \brief Per-request transport context handed to HandlePayload: when
/// and whether the front-end already admitted the request. The
/// default-constructed context means "admit here, no queueing history"
/// — the in-process transport's shape.
struct RequestContext {
  /// Service-clock time the front-end queued the request; 0 = unknown
  /// (the queue-deadline check only runs when it is set).
  uint64_t admitted_ms = 0;
  /// True when the front-end already holds an admission slot for this
  /// request (TryAcquireQuerySlot at enqueue, the TCP path). Dispatch
  /// then releases that slot when the request finishes, on every path.
  bool pre_admitted = false;
};

/// \brief The dispatch core shared by every transport.
class QueryService {
 public:
  /// The catalog must outlive the service and stay unmutated while it
  /// serves (concurrent reads are fine — see store/catalog.h).
  explicit QueryService(const store::Catalog* catalog,
                        ServiceOptions options = {});

  /// \brief One client connection: owns at most one session (opened by
  /// HELLO, closed by BYE, eviction or destruction). Each connection
  /// belongs to one client thread at a time; distinct connections may
  /// dispatch concurrently.
  class Connection {
   public:
    ~Connection();
    Connection(const Connection&) = delete;
    Connection& operator=(const Connection&) = delete;

    /// \brief The real dispatch path: one decoded request-frame
    /// payload in, one response payload out. Never fails — protocol
    /// and execution errors come back as error responses, overload as
    /// busy replies.
    std::string HandlePayload(std::string_view payload);

    /// \brief HandlePayload with transport context: front-ends that
    /// queue requests pass when they admitted them (queue-deadline
    /// enforcement) and whether they already hold the admission slot.
    std::string HandlePayload(std::string_view payload,
                              const RequestContext& ctx);

    /// \brief The connection's live session id; 0 when none. Readable
    /// from any thread (the TCP maintenance loop matches evicted
    /// sessions to connections while workers dispatch).
    uint64_t session_id() const {
      return session_id_.load(std::memory_order_acquire);
    }

    /// \brief The protocol version HELLO negotiated; 1 before any
    /// HELLO, so sessionless kStats replies stay byte-compatible with
    /// v1 clients.
    uint64_t protocol_version() const {
      return protocol_version_.load(std::memory_order_acquire);
    }

   private:
    friend class QueryService;
    explicit Connection(QueryService* service) : service_(service) {}

    QueryService* service_;
    std::atomic<uint64_t> session_id_{0};
    std::atomic<uint64_t> protocol_version_{1};
  };

  /// \brief Opens a transport connection (no session yet — that is
  /// HELLO's job). Refused while shutting down.
  util::Result<std::unique_ptr<Connection>> Connect();

  /// \brief Evicts idle sessions; returns their ids so the front-end
  /// can close the matching connections.
  std::vector<uint64_t> EvictIdle();

  /// \brief Takes one admission slot for a query, against
  /// ServiceOptions::queue_cap. False means the backlog is full and the
  /// caller must shed the request (MakeBusyResponse); true obliges the
  /// caller to route the request into dispatch with
  /// RequestContext::pre_admitted (which releases the slot) or call
  /// ReleaseQuerySlot itself. Front-ends call this at enqueue so the
  /// cap covers queued work, not just executing work.
  bool TryAcquireQuerySlot();
  /// \brief Returns a slot TryAcquireQuerySlot granted (only for
  /// requests that never reached dispatch).
  void ReleaseQuerySlot();
  /// \brief Admission slots currently held (queued + dispatching).
  uint64_t admitted_queries() const {
    return admitted_.load(std::memory_order_acquire);
  }

  /// \brief The shed reply for one refused query, shaped for the
  /// connection's negotiated protocol version; counts it in
  /// meetxml_server_shed_total (and the deadline counter when
  /// `deadline_exceeded`).
  std::string MakeBusyResponse(uint64_t negotiated_version,
                               bool deadline_exceeded);

  /// \brief Stops taking new requests; in-flight dispatches finish and
  /// deliver their responses, later ones earn Unavailable errors.
  void BeginShutdown();
  /// \brief BeginShutdown, then blocks until every in-flight dispatch
  /// drained — the graceful half of process exit.
  void Shutdown();
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  ServiceStats stats() const;
  uint64_t NowMs() const;
  /// \brief The microsecond clock dispatch measures with (see
  /// ServiceOptions::clock_us for the fallback chain).
  uint64_t NowUs() const;
  const store::Catalog& catalog() const { return *catalog_; }
  const ServiceOptions& options() const { return options_; }
  obs::MetricsRegistry& metrics() const { return *metrics_; }
  const obs::QueryLog& query_log() const { return query_log_; }

 private:
  std::string Dispatch(Connection* connection, const Request& request);
  std::string HandleQuery(Connection* connection, const Request& request);
  std::string HandleDump();
  /// Point-in-time gauges refreshed before every exposition render.
  void RefreshGauges() const;

  const store::Catalog* catalog_;
  store::MultiExecutor executor_;
  ServiceOptions options_;
  SessionTable sessions_;

  obs::MetricsRegistry* metrics_;
  mutable obs::QueryLog query_log_;
  // Hot-path metric handles, resolved once — the registry lookup takes
  // a mutex that dispatch must never contend on.
  obs::Counter* queries_counter_;
  obs::Counter* errors_counter_;
  obs::Counter* slow_counter_;
  obs::Counter* shed_counter_;
  obs::Counter* deadline_counter_;
  obs::Counter* sessions_opened_counter_;
  obs::Counter* sessions_evicted_counter_;
  obs::Gauge* sessions_gauge_;
  obs::Histogram* request_us_[6];  // indexed by opcode - 1
  // stats() reports counters relative to this service's construction,
  // so a shared (Global) registry still yields per-service numbers.
  uint64_t queries_baseline_ = 0;
  uint64_t errors_baseline_ = 0;
  uint64_t shed_baseline_ = 0;

  std::atomic<uint64_t> admitted_{0};
  std::atomic<bool> draining_{false};
  std::atomic<uint64_t> in_flight_{0};
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
};

/// \brief In-process client: drives a QueryService through the full
/// protocol codec (encode request → frame → unframe → dispatch →
/// decode response) with no sockets in between. The transport of the
/// deterministic concurrency tests and the ab12 closed-loop bench.
class InProcessClient {
 public:
  /// Fails (like a refused TCP connect) once the service is draining.
  static util::Result<InProcessClient> Connect(QueryService* service);

  /// \brief Full round trip for an arbitrary request.
  util::Result<Response> Roundtrip(const Request& request);

  /// \brief HELLO; returns the session id. `version` lets tests act
  /// as an older client (kStats bodies follow the negotiated version).
  util::Result<uint64_t> Hello(uint64_t version = kProtocolVersion);
  /// \brief QUERY; returns the decoded response (ok or error).
  util::Result<Response> Query(std::string_view scope,
                               std::string_view query_text);
  /// \brief STATS; the body shape follows the negotiated version.
  util::Result<StatsBody> Stats();
  /// \brief DUMP; the Prometheus-style exposition text.
  util::Result<std::string> Dump();
  /// \brief BYE; closes the session.
  util::Status Bye();

  uint64_t session_id() const { return connection_->session_id(); }
  QueryService::Connection* connection() { return connection_.get(); }

 private:
  explicit InProcessClient(
      std::unique_ptr<QueryService::Connection> connection)
      : connection_(std::move(connection)) {}

  std::unique_ptr<QueryService::Connection> connection_;
};

}  // namespace server
}  // namespace meetxml

#endif  // MEETXML_SERVER_SERVICE_H_
