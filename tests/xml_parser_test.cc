// Unit tests for the XML parser, DOM and serializer.

#include <gtest/gtest.h>

#include "xml/dom.h"
#include "xml/escape.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace meetxml {
namespace xml {
namespace {

TEST(XmlParser, ParsesMinimalDocument) {
  auto result = Parse("<a/>");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->root->tag(), "a");
  EXPECT_TRUE(result->root->children().empty());
}

TEST(XmlParser, ParsesNestedElements) {
  auto result = Parse("<a><b><c/></b><d/></a>");
  ASSERT_TRUE(result.ok()) << result.status();
  const Node& root = *result->root;
  ASSERT_EQ(root.children().size(), 2u);
  EXPECT_EQ(root.children()[0]->tag(), "b");
  EXPECT_EQ(root.children()[1]->tag(), "d");
  ASSERT_EQ(root.children()[0]->children().size(), 1u);
  EXPECT_EQ(root.children()[0]->children()[0]->tag(), "c");
}

TEST(XmlParser, ParsesAttributes) {
  auto result = Parse(R"(<a x="1" y='two' z="a&amp;b"/>)");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(*result->root->FindAttribute("x"), "1");
  EXPECT_EQ(*result->root->FindAttribute("y"), "two");
  EXPECT_EQ(*result->root->FindAttribute("z"), "a&b");
  EXPECT_EQ(result->root->FindAttribute("missing"), nullptr);
}

TEST(XmlParser, ParsesText) {
  auto result = Parse("<a>hello world</a>");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->root->children().size(), 1u);
  EXPECT_TRUE(result->root->children()[0]->is_text());
  EXPECT_EQ(result->root->children()[0]->text(), "hello world");
}

TEST(XmlParser, DecodesPredefinedEntities) {
  auto result = Parse("<a>&lt;x&gt; &amp; &quot;y&quot; &apos;z&apos;</a>");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->root->children()[0]->text(), "<x> & \"y\" 'z'");
}

TEST(XmlParser, DecodesNumericCharacterReferences) {
  auto result = Parse("<a>&#65;&#x42;&#x20AC;</a>");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->root->children()[0]->text(), "AB\xE2\x82\xAC");
}

TEST(XmlParser, MergesCdataSectionWithText) {
  auto result = Parse("<a>one <![CDATA[<two> & three]]> four</a>");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->root->children().size(), 1u);
  EXPECT_EQ(result->root->children()[0]->text(),
            "one <two> & three four");
}

TEST(XmlParser, DiscardsWhitespaceTextByDefault) {
  auto result = Parse("<a>\n  <b/>\n  <c/>\n</a>");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->root->children().size(), 2u);
}

TEST(XmlParser, KeepsWhitespaceTextWhenAsked) {
  ParseOptions options;
  options.discard_whitespace_text = false;
  auto result = Parse("<a> <b/> </a>", options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->root->children().size(), 3u);
}

TEST(XmlParser, SkipsCommentsByDefault) {
  auto result = Parse("<a><!-- hidden --><b/></a>");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->root->children().size(), 1u);
  EXPECT_EQ(result->root->children()[0]->tag(), "b");
}

TEST(XmlParser, KeepsCommentsWhenAsked) {
  ParseOptions options;
  options.keep_comments = true;
  auto result = Parse("<a><!--note--></a>", options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->root->children().size(), 1u);
  EXPECT_EQ(result->root->children()[0]->kind(), NodeKind::kComment);
  EXPECT_EQ(result->root->children()[0]->text(), "note");
}

TEST(XmlParser, ParsesXmlDeclarationAndDoctype) {
  auto result = Parse(
      "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      "<!DOCTYPE a SYSTEM \"a.dtd\">\n"
      "<a/>");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->had_doctype);
  EXPECT_NE(result->declaration.find("version"), std::string::npos);
}

TEST(XmlParser, SkipsDoctypeWithInternalSubset) {
  auto result = Parse("<!DOCTYPE a [ <!ELEMENT a (#PCDATA)> ]><a>x</a>");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->root->tag(), "a");
}

TEST(XmlParser, ParsesProcessingInstructions) {
  ParseOptions options;
  options.keep_processing_instructions = true;
  auto result = Parse("<a><?target some data?></a>", options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->root->children().size(), 1u);
  EXPECT_EQ(result->root->children()[0]->pi_target(), "target");
  EXPECT_EQ(result->root->children()[0]->text(), "some data");
}

TEST(XmlParser, HandlesDeepNestingIteratively) {
  // 3000 levels: would overflow a recursive parser's stack.
  std::string text;
  for (int i = 0; i < 3000; ++i) text += "<d>";
  text += "x";
  for (int i = 0; i < 3000; ++i) text += "</d>";
  auto result = Parse(text);
  ASSERT_TRUE(result.ok()) << result.status();
}

TEST(XmlParser, EnforcesDepthLimit) {
  ParseOptions options;
  options.max_depth = 10;
  std::string text;
  for (int i = 0; i < 20; ++i) text += "<d>";
  for (int i = 0; i < 20; ++i) text += "</d>";
  auto result = Parse(text, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted());
}

// ---- Error cases ---------------------------------------------------

struct BadInput {
  const char* name;
  const char* text;
};

class XmlParserErrorTest : public ::testing::TestWithParam<BadInput> {};

TEST_P(XmlParserErrorTest, RejectsMalformedInput) {
  auto result = Parse(GetParam().text);
  EXPECT_FALSE(result.ok()) << "input: " << GetParam().text;
  if (!result.ok()) {
    EXPECT_TRUE(result.status().IsInvalidArgument() ||
                result.status().IsUnexpectedEof())
        << result.status();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, XmlParserErrorTest,
    ::testing::Values(
        BadInput{"empty", ""},
        BadInput{"text_only", "hello"},
        BadInput{"unclosed_root", "<a>"},
        BadInput{"mismatched_tags", "<a><b></a></b>"},
        BadInput{"wrong_close", "<a></b>"},
        BadInput{"two_roots", "<a/><b/>"},
        BadInput{"stray_close", "</a>"},
        BadInput{"unterminated_comment", "<a><!-- x</a>"},
        BadInput{"double_dash_comment", "<a><!-- x -- y --></a>"},
        BadInput{"unterminated_cdata", "<a><![CDATA[x</a>"},
        BadInput{"bad_entity", "<a>&nosuch;</a>"},
        BadInput{"unterminated_entity", "<a>&amp</a>"},
        BadInput{"bad_char_ref", "<a>&#xZZ;</a>"},
        BadInput{"char_ref_out_of_range", "<a>&#x110000;</a>"},
        BadInput{"duplicate_attribute", "<a x='1' x='2'/>"},
        BadInput{"unquoted_attribute", "<a x=1/>"},
        BadInput{"attr_missing_value", "<a x/>"},
        BadInput{"lt_in_attribute", "<a x='<'/>"},
        BadInput{"bad_name_start", "<1a/>"},
        BadInput{"content_after_root", "<a/>junk"},
        BadInput{"unterminated_attr", "<a x='1/>"},
        BadInput{"unterminated_pi", "<a><?pi x</a>"}),
    [](const ::testing::TestParamInfo<BadInput>& info) {
      return info.param.name;
    });

TEST(XmlParser, ReportsLineAndColumn) {
  auto result = Parse("<a>\n<b>\n</c>\n</a>");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos)
      << result.status();
}

// ---- Escaping ------------------------------------------------------

TEST(XmlEscape, EscapesTextSpecials) {
  EXPECT_EQ(EscapeText("a<b>&c"), "a&lt;b&gt;&amp;c");
}

TEST(XmlEscape, EscapesAttributeSpecials) {
  EXPECT_EQ(EscapeAttribute("\"x\"\n"), "&quot;x&quot;&#10;");
}

TEST(XmlEscape, DecodeRejectsLoneAmpersand) {
  EXPECT_FALSE(DecodeEntities("a & b").ok());
}

TEST(XmlEscape, Utf8EncodingBoundaries) {
  std::string out;
  ASSERT_TRUE(AppendUtf8(0x7F, &out));
  ASSERT_TRUE(AppendUtf8(0x80, &out));
  ASSERT_TRUE(AppendUtf8(0x7FF, &out));
  ASSERT_TRUE(AppendUtf8(0x800, &out));
  ASSERT_TRUE(AppendUtf8(0xFFFF, &out));
  ASSERT_TRUE(AppendUtf8(0x10000, &out));
  ASSERT_TRUE(AppendUtf8(0x10FFFF, &out));
  EXPECT_FALSE(AppendUtf8(0x110000, &out));
  EXPECT_FALSE(AppendUtf8(0xD800, &out));  // surrogate
  EXPECT_EQ(out.size(), 1u + 2u + 2u + 3u + 3u + 4u + 4u);
}

TEST(XmlEscape, ValidatesNames) {
  EXPECT_TRUE(IsValidName("tag"));
  EXPECT_TRUE(IsValidName("ns:tag"));
  EXPECT_TRUE(IsValidName("_x-1.2"));
  EXPECT_FALSE(IsValidName(""));
  EXPECT_FALSE(IsValidName("1tag"));
  EXPECT_FALSE(IsValidName("-tag"));
  EXPECT_FALSE(IsValidName("a b"));
}

// ---- Round-trips ---------------------------------------------------

class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, ParseSerializeParseIsStable) {
  auto first = Parse(GetParam());
  ASSERT_TRUE(first.ok()) << first.status();
  std::string text1 = Serialize(*first);
  auto second = Parse(text1);
  ASSERT_TRUE(second.ok()) << second.status();
  std::string text2 = Serialize(*second);
  EXPECT_EQ(text1, text2);
}

INSTANTIATE_TEST_SUITE_P(
    Documents, RoundTripTest,
    ::testing::Values(
        "<a/>",
        "<a x=\"1\"><b>text</b><c/></a>",
        "<a>&amp;&lt;&gt;</a>",
        "<a><b>x</b>mixed<b>y</b></a>",
        "<a attr=\"&quot;quoted&quot;\"/>",
        "<bib><e k=\"v\"><t>Hacking &amp; RSI</t></e></bib>"));

TEST(XmlSerializer, PrettyPrintsElementChildren) {
  auto doc = Parse("<a><b><c/></b></a>");
  ASSERT_TRUE(doc.ok());
  SerializeOptions options;
  options.indent = 2;
  std::string out = Serialize(*doc->root, options);
  EXPECT_EQ(out, "<a>\n  <b>\n    <c/>\n  </b>\n</a>");
}

TEST(XmlSerializer, KeepsTextGluedToTags) {
  auto doc = Parse("<a><b>text</b></a>");
  ASSERT_TRUE(doc.ok());
  SerializeOptions options;
  options.indent = 2;
  std::string out = Serialize(*doc->root, options);
  EXPECT_NE(out.find("<b>text</b>"), std::string::npos) << out;
}

// ---- DOM helpers ---------------------------------------------------

TEST(Dom, CollectTextConcatenatesInDocumentOrder) {
  auto doc = Parse("<a>x<b>y</b>z</a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->CollectText(), "xyz");
}

TEST(Dom, SubtreeSizeCountsAllNodes) {
  auto doc = Parse("<a><b>t</b><c/></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->SubtreeSize(), 4u);  // a, b, text, c
}

TEST(Dom, FindChildReturnsFirstMatch) {
  auto doc = Parse("<a><b i=\"1\"/><c/><b i=\"2\"/></a>");
  ASSERT_TRUE(doc.ok());
  const Node* b = doc->root->FindChild("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(*b->FindAttribute("i"), "1");
  EXPECT_EQ(doc->root->FindChild("nope"), nullptr);
}

}  // namespace
}  // namespace xml
}  // namespace meetxml
