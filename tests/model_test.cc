// Unit tests for the path summary, the Monet transform (shredder),
// StoredDocument invariants, and object reassembly.

#include <gtest/gtest.h>

#include "data/paper_example.h"
#include "data/random_tree.h"
#include "model/path_summary.h"
#include "model/reassembly.h"
#include "model/shredder.h"
#include "tests/test_util.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace meetxml {
namespace model {
namespace {

using meetxml::testing::MustShred;

// ---- PathSummary ----------------------------------------------------

TEST(PathSummary, InternIsIdempotent) {
  PathSummary paths;
  PathId a = paths.Intern(bat::kInvalidPathId, StepKind::kElement, "a");
  PathId b = paths.Intern(a, StepKind::kElement, "b");
  EXPECT_EQ(paths.Intern(bat::kInvalidPathId, StepKind::kElement, "a"), a);
  EXPECT_EQ(paths.Intern(a, StepKind::kElement, "b"), b);
  EXPECT_EQ(paths.size(), 2u);
}

TEST(PathSummary, DistinguishesKinds) {
  PathSummary paths;
  PathId a = paths.Intern(bat::kInvalidPathId, StepKind::kElement, "a");
  PathId elem = paths.Intern(a, StepKind::kElement, "x");
  PathId attr = paths.Intern(a, StepKind::kAttribute, "x");
  EXPECT_NE(elem, attr);
}

TEST(PathSummary, DepthCountsSteps) {
  PathSummary paths;
  PathId a = paths.Intern(bat::kInvalidPathId, StepKind::kElement, "a");
  PathId b = paths.Intern(a, StepKind::kElement, "b");
  PathId c = paths.Intern(b, StepKind::kCdata, "cdata");
  EXPECT_EQ(paths.depth(a), 1u);
  EXPECT_EQ(paths.depth(b), 2u);
  EXPECT_EQ(paths.depth(c), 3u);
}

TEST(PathSummary, PrefixOrder) {
  PathSummary paths;
  PathId a = paths.Intern(bat::kInvalidPathId, StepKind::kElement, "a");
  PathId b = paths.Intern(a, StepKind::kElement, "b");
  PathId c = paths.Intern(b, StepKind::kElement, "c");
  PathId d = paths.Intern(a, StepKind::kElement, "d");
  EXPECT_TRUE(paths.IsPrefixOf(a, c));
  EXPECT_TRUE(paths.IsPrefixOf(b, c));
  EXPECT_TRUE(paths.IsPrefixOf(c, c));  // equality counts (Definition 5)
  EXPECT_FALSE(paths.IsPrefixOf(c, b));
  EXPECT_FALSE(paths.IsPrefixOf(d, c));
}

TEST(PathSummary, CommonPrefix) {
  PathSummary paths;
  PathId a = paths.Intern(bat::kInvalidPathId, StepKind::kElement, "a");
  PathId b = paths.Intern(a, StepKind::kElement, "b");
  PathId c = paths.Intern(b, StepKind::kElement, "c");
  PathId d = paths.Intern(a, StepKind::kElement, "d");
  EXPECT_EQ(paths.CommonPrefix(c, d), a);
  EXPECT_EQ(paths.CommonPrefix(c, b), b);
  EXPECT_EQ(paths.CommonPrefix(a, a), a);
}

TEST(PathSummary, ToStringRendersAttributesAndCdata) {
  PathSummary paths;
  PathId a = paths.Intern(bat::kInvalidPathId, StepKind::kElement, "bib");
  PathId b = paths.Intern(a, StepKind::kElement, "article");
  PathId key = paths.Intern(b, StepKind::kAttribute, "key");
  PathId cd = paths.Intern(b, StepKind::kCdata, "cdata");
  EXPECT_EQ(paths.ToString(key), "bib/article/@key");
  EXPECT_EQ(paths.ToString(cd), "bib/article/cdata");
}

TEST(PathSummary, FindByLabel) {
  PathSummary paths;
  PathId a = paths.Intern(bat::kInvalidPathId, StepKind::kElement, "a");
  PathId b = paths.Intern(a, StepKind::kElement, "x");
  PathId c = paths.Intern(b, StepKind::kElement, "x");
  auto hits = paths.FindByLabel(StepKind::kElement, "x");
  EXPECT_EQ(hits.size(), 2u);
  EXPECT_EQ(paths.FindByLabel(StepKind::kElement, "zz").size(), 0u);
  (void)c;
}

TEST(PathSummary, ParentsInternedBeforeChildren) {
  // The general meet relies on id order == topological order.
  PathSummary paths;
  PathId a = paths.Intern(bat::kInvalidPathId, StepKind::kElement, "a");
  PathId b = paths.Intern(a, StepKind::kElement, "b");
  PathId c = paths.Intern(b, StepKind::kElement, "c");
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

// ---- Shredder / StoredDocument --------------------------------------

TEST(Shredder, PaperExampleCounts) {
  StoredDocument doc = MustShred(data::PaperExampleXml());
  // Figure 1: bibliography, institute, 2 articles, 2 authors,
  // firstname, lastname, 2 titles, 2 years = 12 elements,
  // plus 7 cdata nodes (Ben, Bit, Bob Byte, 2 titles, 2 years) = 19.
  EXPECT_EQ(doc.node_count(), 19u);
  // 2 key attributes + 7 cdata strings.
  EXPECT_EQ(doc.string_count(), 9u);
}

TEST(Shredder, RootIsOidZeroWithDfsOrder) {
  StoredDocument doc = MustShred("<a><b><c/></b><d/></a>");
  EXPECT_EQ(doc.root(), 0u);
  EXPECT_EQ(doc.tag(0), "a");
  EXPECT_EQ(doc.tag(1), "b");
  EXPECT_EQ(doc.tag(2), "c");
  EXPECT_EQ(doc.tag(3), "d");
  EXPECT_EQ(doc.parent(1), 0u);
  EXPECT_EQ(doc.parent(2), 1u);
  EXPECT_EQ(doc.parent(3), 0u);
  EXPECT_EQ(doc.parent(0), bat::kInvalidOid);
}

TEST(Shredder, DepthsMatchPathDepths) {
  StoredDocument doc = MustShred("<a><b><c>t</c></b></a>");
  EXPECT_EQ(doc.depth(doc.root()), 1u);
  for (bat::Oid oid = 0; oid < doc.node_count(); ++oid) {
    if (oid == doc.root()) continue;
    EXPECT_EQ(doc.depth(oid), doc.depth(doc.parent(oid)) + 1);
  }
}

TEST(Shredder, EdgeRelationsArePartitionedByPath) {
  StoredDocument doc = MustShred(data::PaperExampleXml());
  size_t total_edges = 0;
  for (PathId path : doc.edge_paths()) {
    const auto& edges = doc.EdgesAt(path);
    total_edges += edges.size();
    for (size_t row = 0; row < edges.size(); ++row) {
      EXPECT_EQ(doc.path(edges.tail(row)), path);
      if (edges.tail(row) != doc.root()) {
        EXPECT_EQ(doc.parent(edges.tail(row)), edges.head(row));
      }
    }
  }
  // Every node occurs in exactly one edge relation.
  EXPECT_EQ(total_edges, doc.node_count());
}

TEST(Shredder, AttributesHaveNoOwnNodes) {
  StoredDocument doc = MustShred("<a x=\"1\" y=\"2\"><b/></a>");
  EXPECT_EQ(doc.node_count(), 2u);  // a and b only
  auto attrs = doc.AttributesOf(doc.root());
  ASSERT_EQ(attrs.size(), 2u);
  EXPECT_EQ(attrs[0].value, "1");
  EXPECT_EQ(attrs[1].value, "2");
}

TEST(Shredder, CdataNodesCarryStrings) {
  StoredDocument doc = MustShred("<a><b>hello</b></a>");
  bat::Oid cdata = meetxml::testing::FindCdataNode(doc, "hello");
  EXPECT_TRUE(doc.is_cdata(cdata));
  EXPECT_EQ(doc.CdataValue(cdata), "hello");
  EXPECT_EQ(doc.tag(doc.parent(cdata)), "b");
}

TEST(Shredder, ChildrenInSiblingOrder) {
  StoredDocument doc = MustShred("<a><b/><c/><d/></a>");
  auto kids = doc.children(doc.root());
  ASSERT_EQ(kids.size(), 3u);
  EXPECT_EQ(doc.tag(kids[0]), "b");
  EXPECT_EQ(doc.tag(kids[1]), "c");
  EXPECT_EQ(doc.tag(kids[2]), "d");
  EXPECT_LT(doc.rank(kids[0]), doc.rank(kids[1]));
  EXPECT_LT(doc.rank(kids[1]), doc.rank(kids[2]));
}

TEST(Shredder, RecursiveTagsGetDistinctPaths) {
  StoredDocument doc = MustShred("<a><a><a/></a></a>");
  EXPECT_EQ(doc.paths().size(), 3u);
  EXPECT_NE(doc.path(0), doc.path(1));
  EXPECT_NE(doc.path(1), doc.path(2));
}

TEST(Shredder, IsAncestorOrSelf) {
  StoredDocument doc = MustShred("<a><b><c/></b><d/></a>");
  EXPECT_TRUE(doc.IsAncestorOrSelf(0, 2));
  EXPECT_TRUE(doc.IsAncestorOrSelf(1, 2));
  EXPECT_TRUE(doc.IsAncestorOrSelf(2, 2));
  EXPECT_FALSE(doc.IsAncestorOrSelf(2, 1));
  EXPECT_FALSE(doc.IsAncestorOrSelf(3, 2));
}

TEST(Shredder, RejectsEmptyDocument) {
  xml::Document empty;
  auto result = Shred(empty);
  EXPECT_FALSE(result.ok());
}

TEST(Shredder, MonetTransformMatchesPaperRelations) {
  // Spot-check relation names and cardinalities against Figure 2.
  StoredDocument doc = MustShred(data::PaperExampleXml());
  const PathSummary& paths = doc.paths();

  auto require_path = [&](const std::string& name) {
    for (PathId p = 0; p < paths.size(); ++p) {
      if (paths.ToString(p) == name) return p;
    }
    ADD_FAILURE() << "missing relation " << name;
    return bat::kInvalidPathId;
  };

  PathId article =
      require_path("bibliography/institute/article");
  EXPECT_EQ(doc.EdgesAt(article).size(), 2u);

  PathId key = require_path("bibliography/institute/article/@key");
  EXPECT_EQ(doc.StringsAt(key).size(), 2u);

  PathId year_cdata =
      require_path("bibliography/institute/article/year/cdata");
  EXPECT_EQ(doc.StringsAt(year_cdata).size(), 2u);

  PathId firstname_cdata = require_path(
      "bibliography/institute/article/author/firstname/cdata");
  ASSERT_EQ(doc.StringsAt(firstname_cdata).size(), 1u);
  EXPECT_EQ(doc.StringsAt(firstname_cdata).tail(0), "Ben");
}

// ---- Streaming shredder -----------------------------------------------

TEST(StreamingShredder, AgreesWithDomShredderOnPaperExample) {
  auto dom = ShredXmlText(data::PaperExampleXml());
  auto streamed = ShredXmlTextStreaming(data::PaperExampleXml());
  ASSERT_TRUE(dom.ok() && streamed.ok());
  ASSERT_EQ(streamed->node_count(), dom->node_count());
  ASSERT_EQ(streamed->string_count(), dom->string_count());
  ASSERT_EQ(streamed->paths().size(), dom->paths().size());
  for (bat::Oid oid = 0; oid < dom->node_count(); ++oid) {
    EXPECT_EQ(streamed->parent(oid), dom->parent(oid));
    EXPECT_EQ(streamed->path(oid), dom->path(oid));
    EXPECT_EQ(streamed->rank(oid), dom->rank(oid));
  }
  auto dom_xml = ReassembleToXml(*dom, dom->root(), 0);
  auto streamed_xml = ReassembleToXml(*streamed, streamed->root(), 0);
  ASSERT_TRUE(dom_xml.ok() && streamed_xml.ok());
  EXPECT_EQ(*streamed_xml, *dom_xml);
}

TEST(StreamingShredder, PropagatesParseErrors) {
  auto result = ShredXmlTextStreaming("<a><b></a>");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

class StreamingAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StreamingAgreement, RandomTreesShredIdentically) {
  data::RandomTreeOptions options;
  options.seed = GetParam() * 7 + 3;
  options.target_elements = 300;
  auto generated = data::GenerateRandomTree(options);
  ASSERT_TRUE(generated.ok());
  std::string xml_text = xml::Serialize(*generated->root);

  auto dom = ShredXmlText(xml_text);
  auto streamed = ShredXmlTextStreaming(xml_text);
  ASSERT_TRUE(dom.ok() && streamed.ok());
  auto dom_xml = ReassembleToXml(*dom, dom->root(), 0);
  auto streamed_xml = ReassembleToXml(*streamed, streamed->root(), 0);
  ASSERT_TRUE(dom_xml.ok() && streamed_xml.ok());
  EXPECT_EQ(*streamed_xml, *dom_xml);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingAgreement,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ---- Reassembly ------------------------------------------------------

TEST(Reassembly, RoundTripsTheWholeDocument) {
  std::string xml_text = data::PaperExampleXml();
  auto parsed = xml::Parse(xml_text);
  ASSERT_TRUE(parsed.ok());
  StoredDocument doc = MustShred(xml_text);

  auto rebuilt = Reassemble(doc, doc.root());
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  EXPECT_EQ(xml::Serialize(**rebuilt), xml::Serialize(*parsed->root));
}

TEST(Reassembly, RebuildsASubtree) {
  StoredDocument doc = MustShred(data::PaperExampleXml());
  bat::Oid article = meetxml::testing::FindElement(doc, "article");
  auto rebuilt = ReassembleToXml(doc, article, /*indent=*/0);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  EXPECT_NE(rebuilt->find("key=\"BB99\""), std::string::npos);
  EXPECT_NE(rebuilt->find("<firstname>Ben</firstname>"),
            std::string::npos);
  EXPECT_EQ(rebuilt->find("Bob Byte"), std::string::npos);
}

TEST(Reassembly, RebuildsACdataNode) {
  StoredDocument doc = MustShred("<a><b>hi</b></a>");
  bat::Oid cdata = meetxml::testing::FindCdataNode(doc, "hi");
  auto rebuilt = Reassemble(doc, cdata);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_TRUE((*rebuilt)->is_text());
  EXPECT_EQ((*rebuilt)->text(), "hi");
}

TEST(Reassembly, RejectsUnknownOid) {
  StoredDocument doc = MustShred("<a/>");
  EXPECT_FALSE(Reassemble(doc, 999).ok());
}

TEST(Reassembly, DescribeNode) {
  StoredDocument doc = MustShred(data::PaperExampleXml());
  bat::Oid article = meetxml::testing::FindElement(doc, "article");
  EXPECT_EQ(DescribeNode(doc, article),
            "article <bibliography/institute/article>");
}

// ---- Property: shred/reassemble round-trip on random trees ----------

class RandomTreeRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomTreeRoundTrip, ShredReassembleIsIdentity) {
  data::RandomTreeOptions options;
  options.seed = GetParam();
  options.target_elements = 150 + static_cast<int>(GetParam() % 100);
  auto generated = data::GenerateRandomTree(options);
  ASSERT_TRUE(generated.ok());

  auto shredded = Shred(*generated);
  ASSERT_TRUE(shredded.ok()) << shredded.status();
  auto rebuilt = Reassemble(*shredded, shredded->root());
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  EXPECT_EQ(xml::Serialize(**rebuilt), xml::Serialize(*generated->root));
}

TEST_P(RandomTreeRoundTrip, StructuralInvariantsHold) {
  data::RandomTreeOptions options;
  options.seed = GetParam() * 31 + 7;
  auto generated = data::GenerateRandomTree(options);
  ASSERT_TRUE(generated.ok());
  auto shredded = Shred(*generated);
  ASSERT_TRUE(shredded.ok());
  const StoredDocument& doc = *shredded;

  for (bat::Oid oid = 1; oid < doc.node_count(); ++oid) {
    // DFS order: parents precede children.
    EXPECT_LT(doc.parent(oid), oid);
    // Path parent mirrors node parent.
    EXPECT_EQ(doc.paths().parent(doc.path(oid)),
              doc.path(doc.parent(oid)));
  }
  // children() inverts parent().
  size_t child_total = 0;
  for (bat::Oid oid = 0; oid < doc.node_count(); ++oid) {
    for (bat::Oid kid : doc.children(oid)) {
      EXPECT_EQ(doc.parent(kid), oid);
      ++child_total;
    }
  }
  EXPECT_EQ(child_total, doc.node_count() - 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTreeRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace model
}  // namespace meetxml
