// Deterministic pseudo-random number generation for data generators,
// property tests and benchmarks. All randomness in this project flows
// through Rng so that every experiment is reproducible from a seed.

#ifndef MEETXML_UTIL_RNG_H_
#define MEETXML_UTIL_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace meetxml {
namespace util {

/// \brief SplitMix64-seeded xoshiro256** generator.
///
/// Chosen over std::mt19937_64 for speed and a tiny, portable state; the
/// exact stream is stable across platforms, which keeps generated datasets
/// byte-identical between runs and machines.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  /// \brief Re-seeds the generator deterministically.
  void Seed(uint64_t seed);

  /// \brief Next 64 uniformly random bits.
  uint64_t Next64();

  /// \brief Uniform integer in [0, bound); bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  /// \brief Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// \brief Uniform double in [0, 1).
  double NextDouble();

  /// \brief Bernoulli draw with probability p of true.
  bool NextBool(double p = 0.5);

  /// \brief Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    return items[NextBelow(items.size())];
  }

  /// \brief Random lowercase ASCII word of length in [min_len, max_len].
  std::string NextWord(int min_len, int max_len);

  /// \brief Geometric-ish draw: counts trials until NextBool(p) fails,
  /// capped at `cap`. Used by generators for skewed fan-outs.
  int NextGeometric(double p, int cap);

 private:
  uint64_t state_[4];
};

}  // namespace util
}  // namespace meetxml

#endif  // MEETXML_UTIL_RNG_H_
