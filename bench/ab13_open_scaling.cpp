// AB13 — ablation: catalog open scaling and the incremental save.
//
// The lazy open makes catalog startup O(directory): the open verifies
// the image framing and the CTLG section, parks every document behind
// its section checksums, and pays decode + validation per document on
// first touch. This bench pins the two claims that justify it:
//
// Part 1 — open scaling: BM_CatalogOpenLazy vs. BM_CatalogOpenEagerView
// over 8 / 64 / 256 / 1000 documents (view mode, file-backed mmap
// both). Expected shape: the eager series grows linearly with the
// corpus while the lazy series stays flat — on the 1000-document store
// the lazy open is >= 100x faster.
//
// Part 2 — time to first answer: open-plus-one-query, lazy vs. the
// warm serving model (eager open + Warm() building every executor up
// front). Lazy pays one document's materialization under the first
// query and nothing for the other 999; warm pays the whole corpus
// before answering. Expected shape: lazy first-answer latency is
// near-constant in corpus size.
//
// Part 3 — incremental save: replacing one document of a 65-document
// store and saving. The in-place save appends the changed document's
// DOC2 + DRV1 and a fresh CTLG + directory, keeping everything else
// verbatim; the full rewrite re-serializes all sixty-five. Expected
// shape: the in-place save is >= 10x faster per changed document.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <utility>

#include "model/shredder.h"
#include "model/storage_io.h"
#include "store/catalog.h"
#include "store/multi_executor.h"

using namespace meetxml;

namespace {

// A bibliography-shaped document (~4800 nodes): big enough that eager
// decode + validation dominates an open, small enough that a
// 1000-document store still builds in seconds. The lazy open never
// touches document payloads, so its cost tracks the directory alone;
// sizing the documents up widens the gap the eager series pays.
std::string DocXml(int n) {
  std::string xml = "<doc>";
  for (int e = 0; e < 800; ++e) {
    xml += "<entry><title>token" + std::to_string((n * 31 + e) % 97) +
           " study " + std::to_string(e) + "</title><year>" +
           std::to_string(1980 + (n + e) % 40) + "</year></entry>";
  }
  xml += "</doc>";
  return xml;
}

model::StoredDocument MustShred(const std::string& xml) {
  auto doc = model::ShredXmlText(xml);
  MEETXML_CHECK_OK(doc.status());
  return std::move(*doc);
}

// One store file per document count, built once and reused across
// series so every bench opens the very same image.
const std::string& StorePath(int count) {
  static std::map<int, std::string>* cache =
      new std::map<int, std::string>();
  auto it = cache->find(count);
  if (it != cache->end()) return it->second;
  std::string path = (std::filesystem::temp_directory_path() /
                      ("meetxml_ab13_" + std::to_string(count) + ".mxm"))
                         .string();
  store::Catalog catalog;
  for (int i = 0; i < count; ++i) {
    MEETXML_CHECK_OK(
        catalog.Add("doc_" + std::to_string(i), MustShred(DocXml(i)))
            .status());
  }
  MEETXML_CHECK_OK(catalog.SaveToFile(path));
  return (*cache)[count] = path;
}

// ---- Part 1: open scaling ------------------------------------------------

void CatalogOpen(benchmark::State& state, bool lazy) {
  const std::string& path = StorePath(static_cast<int>(state.range(0)));
  store::CatalogLoadOptions options;
  options.mode = model::LoadMode::kView;
  options.lazy = lazy;
  for (auto _ : state) {
    auto catalog = store::Catalog::LoadFromFile(path, options);
    MEETXML_CHECK_OK(catalog.status());
    benchmark::DoNotOptimize(catalog);
  }
  // Stats collection allocates per document; gather it once outside
  // the timed loop so the counters describe the open without taxing it.
  store::CatalogLoadStats stats;
  options.stats = &stats;
  MEETXML_CHECK_OK(store::Catalog::LoadFromFile(path, options).status());
  state.counters["docs"] = static_cast<double>(state.range(0));
  state.counters["deferred"] =
      static_cast<double>(stats.deferred_documents);
  state.counters["checksums_verified"] =
      static_cast<double>(stats.sections_verified);
}

void BM_CatalogOpenLazy(benchmark::State& state) {
  CatalogOpen(state, /*lazy=*/true);
}
BENCHMARK(BM_CatalogOpenLazy)
    ->Arg(8)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_CatalogOpenEagerView(benchmark::State& state) {
  CatalogOpen(state, /*lazy=*/false);
}
BENCHMARK(BM_CatalogOpenEagerView)
    ->Arg(8)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// ---- Part 2: open + first answer -----------------------------------------

void FirstQuery(const store::Catalog& catalog, int count) {
  store::MultiExecutor multi(&catalog);
  auto result = multi.ExecuteText(
      "doc_" + std::to_string(count / 2),
      "SELECT a FROM *//cdata a WHERE a CONTAINS 'token' LIMIT 5", {});
  MEETXML_CHECK_OK(result.status());
  benchmark::DoNotOptimize(result);
}

void BM_CatalogOpenLazyFirstQuery(benchmark::State& state) {
  int count = static_cast<int>(state.range(0));
  const std::string& path = StorePath(count);
  store::CatalogLoadOptions options;
  options.mode = model::LoadMode::kView;
  options.lazy = true;
  for (auto _ : state) {
    auto catalog = store::Catalog::LoadFromFile(path, options);
    MEETXML_CHECK_OK(catalog.status());
    FirstQuery(*catalog, count);
  }
  state.counters["docs"] = static_cast<double>(count);
}
BENCHMARK(BM_CatalogOpenLazyFirstQuery)
    ->Arg(8)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_CatalogOpenWarmFirstQuery(benchmark::State& state) {
  int count = static_cast<int>(state.range(0));
  const std::string& path = StorePath(count);
  store::CatalogLoadOptions options;
  options.mode = model::LoadMode::kView;
  for (auto _ : state) {
    auto catalog = store::Catalog::LoadFromFile(path, options);
    MEETXML_CHECK_OK(catalog.status());
    MEETXML_CHECK_OK(catalog->Warm());
    FirstQuery(*catalog, count);
  }
  state.counters["docs"] = static_cast<double>(count);
}
BENCHMARK(BM_CatalogOpenWarmFirstQuery)
    ->Arg(8)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// ---- Part 3: incremental vs. full save -----------------------------------

// Steady-state maintenance of a 65-document store: each iteration
// replaces one document ("hot") and saves. The replacement itself is
// excluded from the timing; the save is the measured unit.

store::Catalog* SaveCorpus(const std::string& path) {
  auto* catalog = new store::Catalog();
  for (int i = 0; i < 64; ++i) {
    MEETXML_CHECK_OK(
        catalog->Add("doc_" + std::to_string(i), MustShred(DocXml(i)))
            .status());
  }
  MEETXML_CHECK_OK(catalog->Add("hot", MustShred(DocXml(99))).status());
  MEETXML_CHECK_OK(catalog->SaveToFile(path));
  return catalog;
}

void ReplaceHot(store::Catalog* catalog, int round) {
  MEETXML_CHECK_OK(catalog->Remove("hot"));
  MEETXML_CHECK_OK(
      catalog->Add("hot", MustShred(DocXml(100 + round % 7))).status());
}

void BM_CatalogSaveInPlace(benchmark::State& state) {
  std::string path = (std::filesystem::temp_directory_path() /
                      "meetxml_ab13_inplace.mxm")
                         .string();
  store::Catalog* catalog = SaveCorpus(path);
  store::CatalogSaveStats stats;
  store::CatalogSaveOptions save;
  save.in_place = true;
  // Let dead space ride: this series measures the append, and the
  // compaction economics are reported via the counters below.
  save.compact_threshold = 0.98;
  save.stats = &stats;
  int round = 0;
  size_t appends = 0;
  size_t rewrites = 0;
  uint64_t appended_bytes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    ReplaceHot(catalog, round++);
    state.ResumeTiming();
    MEETXML_CHECK_OK(catalog->SaveToFile(path, save));
    stats.in_place ? ++appends : ++rewrites;
    appended_bytes += stats.bytes_appended;
  }
  state.counters["appends"] = static_cast<double>(appends);
  state.counters["rewrites"] = static_cast<double>(rewrites);
  state.counters["appended_KB_per_save"] =
      appends != 0
          ? static_cast<double>(appended_bytes) / 1e3 / appends
          : 0;
  state.counters["file_KB"] = static_cast<double>(stats.file_size) / 1e3;
  state.counters["dead_KB"] = static_cast<double>(stats.dead_bytes) / 1e3;
  delete catalog;
  std::remove(path.c_str());
}
BENCHMARK(BM_CatalogSaveInPlace)->Unit(benchmark::kMillisecond);

void BM_CatalogSaveFullRewrite(benchmark::State& state) {
  std::string path = (std::filesystem::temp_directory_path() /
                      "meetxml_ab13_full.mxm")
                         .string();
  store::Catalog* catalog = SaveCorpus(path);
  int round = 0;
  for (auto _ : state) {
    state.PauseTiming();
    ReplaceHot(catalog, round++);
    state.ResumeTiming();
    MEETXML_CHECK_OK(catalog->SaveToFile(path));
  }
  delete catalog;
  std::remove(path.c_str());
}
BENCHMARK(BM_CatalogSaveFullRewrite)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
