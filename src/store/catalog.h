// Multi-document store catalog: many named documents, one image.
//
// The paper's DBLP case study (§5) runs nearest-concept queries over a
// *collection* of bibliographic documents, and §4 combines the meet
// with full-text search to find a concept from one bibliography inside
// another. Until now the persistence layer could hold exactly one
// StoredDocument per image, so every multi-corpus workload re-shredded
// its XML on start-up. The catalog closes that gap: it manages a set
// of named documents (add/remove/rename/get, stable document ids) and
// persists all of them — each with its optional full-text index — in a
// single MXM2 image.
//
// Image layout:
//   CTLG section: the catalog directory (codec below)
//   per document, one document section — aligned columnar DOC2 by
//   default, DOC1/DOC0 when pinned (model/storage_io.h payloads) —
//   its persisted derived columns (DRV1, written by default with
//   DOC2), and, when an index exists, one TIDX section
//   (text/index_io.h payload)
// Minor stamp: 6 when DRV1 sections are aboard (the default), 5 when
// any document section is aligned columnar (DOC2) without them, 4 for
// unaligned columnar (DOC1), otherwise 3 for multi-document images
// and 2 for one-document images (which legacy single-document readers
// can still open).
//
// Zero-copy open: CatalogLoadOptions::mode == kView decodes every
// DOC2 section as a view-backed document borrowing straight from the
// image bytes (model/storage_io.h's lifetime contract).
// Catalog::LoadFromFile pins the shared file mapping into each
// borrowing document, so the catalog keeps the mapping alive for
// exactly as long as any of its documents needs it — including across
// a SaveToFile to a different path, and across SaveToFile to the
// *same* path (saves are atomic temp-file + rename; the borrowers
// keep the old inode's mapping).
//
// CTLG payload (little-endian, varints are LEB128):
//   u8 codec version (1 or 2)
//   varint next_doc_id
//   varint entry count, then per entry in ascending id order:
//     varint doc id | name (varint length + bytes)
//     varint doc section index (position in the image directory)
//     varint index section index + 1 (0 = the document has no TIDX)
//     codec >= 2 only: varint derived section index + 1 (0 = none)
// The writer stays on codec 1 when no entry carries a DRV1 section,
// so rollback images remain readable by older binaries. Every
// document/TIDX/DRV1 section must be referenced by exactly one entry;
// dangling or doubly-referenced sections are rejected. Legacy MXM1 and
// single-document MXM2 images (no CTLG section) load as a one-entry
// catalog named after the document's root tag.
//
// Loading decodes the per-document sections in parallel on a thread
// pool (the checksummed sections are independent by construction), so
// a multi-document store opens in roughly the time of its largest
// document; CatalogLoadOptions::threads pins the pool size and the
// first failing entry, in directory order, wins error reporting.
//
// Lazy open (CatalogLoadOptions::lazy): the open verifies only the
// image framing and the CTLG section's checksum, then parks every
// entry as an undecoded pending record — open time is O(directory),
// independent of corpus size. An entry's sections are
// checksum-verified and decoded on first touch (Get / ExecutorFor /
// EnsureIndex / Save), under the entry's lazy mutex; deep structural
// validation is latched once per document behind
// StoredDocument::EnsureValidated, which Get and Executor::Build run
// before handing anything out. A corrupt entry therefore fails at its
// checksum gate or its first validation, never later, and never takes
// the other entries down. Warm() forces everything eagerly.
//
// Incremental save (CatalogSaveOptions::in_place): when the catalog
// still sits on the minor-6 file it was loaded from, SaveToFile
// appends only the sections that changed (plus a fresh CTLG and
// directory) and repoints the header's directory offset — a
// single-word commit, crash-safe on both sides. Superseded sections
// become dead space; once dead bytes would exceed compact_threshold
// of the projected file, the save falls back to a full atomic
// rewrite.

#ifndef MEETXML_STORE_CATALOG_H_
#define MEETXML_STORE_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "model/document.h"
#include "model/storage_io.h"
#include "obs/trace.h"
#include "query/executor.h"
#include "text/inverted_index.h"
#include "util/result.h"

namespace meetxml {
namespace store {

/// \brief Per-load observability: how long each document's sections
/// took to decode and which payload codec they used. Filled when a
/// CatalogLoadOptions::stats pointer is supplied (the query shell's
/// `\open` report).
struct CatalogLoadStats {
  struct DocumentStats {
    std::string name;
    /// Wall time decoding this document's sections (document + index),
    /// measured on the decoding worker.
    double decode_ms = 0;
    /// True when the document section was columnar (DOC1 or DOC2).
    bool columnar = false;
    /// True when a persisted TIDX section was decoded alongside.
    bool indexed = false;
    /// What actually happened to this document's columns: kView only
    /// for DOC2 sections decoded under CatalogLoadOptions::mode ==
    /// kView; everything else copies.
    model::LoadMode mode = model::LoadMode::kCopy;
    /// Image bytes memcpy'd into owned columns (near zero on the
    /// zero-copy path) vs. borrowed as views over the mapping.
    uint64_t bytes_copied = 0;
    uint64_t bytes_viewed = 0;
  };
  std::vector<DocumentStats> documents;
  /// End-to-end LoadFromBytes wall time.
  double total_ms = 0;
  /// Decode workers actually used (1 for legacy/serial loads).
  unsigned threads_used = 1;
  /// Entries a lazy open left undecoded (0 for eager loads).
  size_t deferred_documents = 0;
  /// Section checksums verified during the open itself.
  size_t sections_verified = 0;
  /// Section checksums deferred to first touch.
  size_t sections_deferred = 0;
};

/// \brief Knobs for Catalog::LoadFromBytes / LoadFromFile.
struct CatalogLoadOptions {
  /// Decode workers; 0 means std::thread::hardware_concurrency(),
  /// 1 pins the serial path.
  unsigned threads = 0;
  /// When non-null, receives per-document decode timings.
  CatalogLoadStats* stats = nullptr;
  /// kView borrows DOC2 columns from the image instead of copying
  /// them (model/storage_io.h's lifetime contract; non-DOC2 sections
  /// fall back to copying). LoadFromFile pins the file mapping
  /// automatically; byte-level view loads either set `backing` or
  /// leave the caller responsible for the bytes' lifetime.
  model::LoadMode mode = model::LoadMode::kCopy;
  /// Optional keep-alive pinned into every view-backed document.
  std::shared_ptr<const void> backing;
  /// Defers per-entry checksum verification and decoding to first
  /// touch: the open validates only the image framing and the CTLG
  /// section, so it costs O(directory) regardless of corpus size.
  /// LoadFromFile keeps the file mapping pinned for the pending
  /// entries; a lazy LoadFromBytes requires `backing` (or the caller
  /// keeping `bytes` alive for the catalog's lifetime). Ignored for
  /// legacy images without a CTLG section, which decode eagerly.
  bool lazy = false;
  /// Graceful degradation for eager opens: an entry whose sections fail
  /// their checksum or decode is *quarantined* — parked behind a sticky
  /// per-entry error (every Get / ExecutorFor on it reports the same
  /// quarantine status) instead of failing the whole open, and counted
  /// in meetxml_catalog_quarantined. Image framing and the CTLG
  /// directory are still validated strictly; corruption there fails
  /// the open as before. Quarantined entries carry no placements, so
  /// saving a catalog that still holds one errors loudly rather than
  /// silently re-persisting bytes nobody could read. Lazy opens already
  /// degrade per entry and ignore this flag.
  bool quarantine_corrupt = false;
};

/// \brief Per-save observability for Catalog::SaveToFile.
struct CatalogSaveStats {
  /// True when the save appended to the existing image instead of
  /// rewriting it.
  bool in_place = false;
  /// True when an in-place save was requested but dead space tripped
  /// the compaction threshold, forcing the full rewrite.
  bool compacted = false;
  uint64_t bytes_appended = 0;
  uint64_t file_size = 0;
  /// Superseded bytes the image still carries (0 after a rewrite).
  uint64_t dead_bytes = 0;
  size_t sections_appended = 0;
  size_t sections_kept = 0;
};

/// \brief Knobs for Catalog::SaveToFile.
struct CatalogSaveOptions {
  /// Document codec — aligned columnar DOC2 (default), or DOC1/DOC0
  /// for rollback images.
  model::DocumentPayloadFormat payload_format =
      model::DocumentPayloadFormat::kColumnar;
  /// Persist derived columns (DRV1) next to each DOC2 section so the
  /// next open skips rebuilding them. Off, or with a non-DOC2
  /// payload_format, the image stays on the previous minors.
  bool derived_sections = true;
  /// Append changed sections to the existing minor-6 image (loaded
  /// from or last saved to the same path) instead of rewriting it;
  /// silently falls back to the full rewrite when the image does not
  /// qualify.
  bool in_place = false;
  /// In-place saves fall back to a full rewrite once dead bytes would
  /// exceed this fraction of the projected file size.
  double compact_threshold = 0.5;
  /// When non-null, receives what the save actually did.
  CatalogSaveStats* stats = nullptr;
};

/// \brief Where an entry's sections sit in the origin image file
/// (trailing-directory images only) — the incremental writer's
/// keep-list.
struct SectionPlacements {
  std::optional<model::SectionPlacement> doc;
  std::optional<model::SectionPlacement> derived;
  std::optional<model::SectionPlacement> index;
};

/// \brief Stable identifier of a catalog document. Ids are assigned
/// once at Add and survive save/load, rename and the removal of other
/// documents; they are never reused.
using DocId = uint32_t;
inline constexpr DocId kInvalidDocId = 0xffffffffu;

/// \brief One named document of the catalog.
struct NamedDocument {
  NamedDocument();
  ~NamedDocument();
  NamedDocument(const NamedDocument&) = delete;
  NamedDocument& operator=(const NamedDocument&) = delete;

  DocId id = kInvalidDocId;
  std::string name;
  /// The decoded document. Under a lazy open this is empty until the
  /// entry's first touch — go through Catalog::Get / ExecutorFor,
  /// which materialize (and validate) it, rather than reading the
  /// field of a possibly-pending entry directly. Mutable because
  /// materialization is logically const, guarded by `lazy_mu` and
  /// published through `materialized`.
  mutable model::StoredDocument doc;
  /// Full-text index handed to Add / loaded from the image; moved into
  /// the executor on first ExecutorFor (retrieve it back through
  /// Executor::text_index()). Mutable (with `executor`) because the
  /// lazy executor build is logically const: guarded by `lazy_mu`.
  mutable std::optional<text::InvertedIndex> index;
  /// Lazily built per-document executor, cached across queries.
  mutable std::unique_ptr<query::Executor> executor;
  /// Serializes the lazy build so concurrent readers (the meetxmld
  /// worker pool) race safely to one executor per document. Behind a
  /// unique_ptr to keep the entry movable.
  std::unique_ptr<std::mutex> lazy_mu = std::make_unique<std::mutex>();
  /// Undecoded lazy-open state (internals live in catalog.cc); null
  /// once the entry is materialized. Guarded by `lazy_mu`.
  struct PendingDecode;
  mutable std::unique_ptr<PendingDecode> pending;
  /// Lock-free fast-path flag for the pending check: true when `doc`
  /// is safe to read (release-published by the materializing thread).
  mutable std::atomic<bool> materialized{true};
  /// This entry's sections in the origin image; the in-place save
  /// keeps sections with a placement verbatim and appends the rest.
  mutable SectionPlacements placed;
};

/// \brief A set of named documents behind one store image.
///
/// Entries live behind stable pointers: Add/Remove/Rename of one
/// document never invalidates another entry's document or executor.
/// Not thread-safe for mutation (Add/Remove/Rename/EnsureIndex/Save
/// need external synchronization against everything else), but the
/// whole read path is: Find/Get/MatchNames/ExecutorFor and query
/// execution through the returned executors may run from any number
/// of threads at once — ExecutorFor's lazy build is per-entry
/// mutex-guarded, and query::Executor::Execute is const with its own
/// race-free lazy text index. Warm() pre-builds everything so serving
/// threads never even contend on the lazy path.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;

  /// \brief Adds a finalized document under a unique, non-empty name.
  /// Names must not contain the glob metacharacters '*' and '?', which
  /// are reserved for scope patterns (multi_executor.h).
  util::Result<DocId> Add(std::string name, model::StoredDocument doc);

  /// \brief Adds a document along with its pre-built full-text index
  /// (validated against the document).
  util::Result<DocId> Add(std::string name, model::StoredDocument doc,
                          text::InvertedIndex index);

  /// \brief Removes a document; its id is retired, never reused.
  util::Status Remove(std::string_view name);

  /// \brief Renames a document; the id is unchanged.
  util::Status Rename(std::string_view from, std::string to);

  /// \brief The entry with this name; nullptr when absent.
  const NamedDocument* Find(std::string_view name) const;
  /// \brief The entry with this id; nullptr when absent.
  const NamedDocument* FindById(DocId id) const;

  /// \brief The document behind `name`, as an error-carrying lookup.
  /// Materializes a lazily-opened entry (checksum gate + decode) and
  /// runs its once-latched deep validation, so the returned document
  /// is always safe to traverse; corrupt entries surface here.
  util::Result<const model::StoredDocument*> Get(
      std::string_view name) const;

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// \brief Every entry in ascending id (== insertion) order.
  std::vector<const NamedDocument*> entries() const;

  /// \brief Names matching a glob scope (util::GlobMatch), in ascending
  /// id order. "*" selects everything.
  std::vector<std::string> MatchNames(std::string_view glob) const;

  /// \brief The cached executor for one document, built on first use —
  /// around the persisted index when the entry has one, lazily
  /// index-building otherwise. Logically const and safe to call
  /// concurrently: racing callers serialize on the entry's build mutex
  /// and all observe the same executor.
  util::Result<const query::Executor*> ExecutorFor(
      std::string_view name) const;

  /// \brief ExecutorFor with per-query attribution: first-touch decode
  /// time lands on Stage::kDecode and executor/index construction on
  /// Stage::kIndexBuild, measured on the trace's injected clock. Either
  /// pointer may be null; a warm entry records nothing (no clock reads).
  util::Result<const query::Executor*> ExecutorFor(
      std::string_view name, obs::QueryTrace* trace,
      obs::DocTrace* doc_trace) const;

  /// \brief Pre-builds every document's executor — and, when
  /// `build_text_indexes`, its full-text engine — in parallel
  /// (util::ResolveThreads(threads) workers), so a serving catalog
  /// pays no lazy-build latency or lock contention on first queries.
  util::Status Warm(bool build_text_indexes = false,
                    unsigned threads = 0) const;

  /// \brief Builds (and caches) the full-text index of one document so
  /// the next Save persists it. No-op when an index already exists,
  /// either on the entry or inside its executor.
  util::Status EnsureIndex(std::string_view name);

  /// \brief Serializes the whole catalog into one image. Documents
  /// whose index exists (persisted, EnsureIndex'd, or lazily built by
  /// an executor) carry a TIDX section; the rest rebuild lazily after
  /// load. `payload_format` picks the document codec — aligned
  /// columnar DOC2 (default), or DOC1/DOC0 for rollback images.
  /// View-backed documents serialize fine (reads never promote), and
  /// pending entries are materialized first. `derived_sections`
  /// persists DRV1 alongside each DOC2 section (minor 6, CTLG codec
  /// 2); turning it off reproduces the previous minors for rollback.
  util::Result<std::string> SaveToBytes(
      model::DocumentPayloadFormat payload_format =
          model::DocumentPayloadFormat::kColumnar,
      bool derived_sections = true) const;

  /// \brief Loads a catalog image — or any legacy MXM1/MXM2
  /// single-document image, which becomes a one-entry catalog named
  /// after its root tag. Per-document sections decode in parallel
  /// (first error in directory order wins); see CatalogLoadOptions.
  static util::Result<Catalog> LoadFromBytes(
      std::string_view bytes, const CatalogLoadOptions& options = {});

  /// \brief File variants; loading decodes from a memory-mapped image
  /// (pinned into the documents in view mode), saving is atomic
  /// (temp file + rename), so saving over the image a view-backed
  /// catalog was loaded from is safe.
  util::Status SaveToFile(const std::string& path) const;
  /// \brief SaveToFile with knobs: document codec, DRV1 emission, and
  /// the in-place append mode (see CatalogSaveOptions).
  util::Status SaveToFile(const std::string& path,
                          const CatalogSaveOptions& options) const;
  static util::Result<Catalog> LoadFromFile(
      const std::string& path, const CatalogLoadOptions& options = {});

 private:
  NamedDocument* FindMutable(std::string_view name);

  /// First-touch gate for a lazily-opened entry: verifies the entry's
  /// section checksums and decodes it (validation stays deferred to
  /// StoredDocument::EnsureValidated). Sticky on failure. The Locked
  /// variant assumes the entry's lazy_mu is held.
  util::Status Materialize(const NamedDocument* entry) const;
  util::Status MaterializeLocked(const NamedDocument* entry) const;

  /// Shared writer for SaveToBytes and the full-rewrite save path;
  /// when `mapping` is non-null it records, per entry, the image
  /// directory positions of its sections (SIZE_MAX = absent).
  struct EntrySectionMap {
    size_t doc_at = SIZE_MAX;
    size_t derived_at = SIZE_MAX;
    size_t index_at = SIZE_MAX;
  };
  util::Result<std::string> SerializeImage(
      model::DocumentPayloadFormat payload_format, bool derived_sections,
      std::vector<EntrySectionMap>* mapping) const;

  /// Attempts the in-place append; returns false when the image does
  /// not qualify (wrong path/minor/format) or compaction is due, in
  /// which case the caller runs the full rewrite.
  util::Result<bool> TrySaveInPlace(const std::string& path,
                                    const CatalogSaveOptions& options) const;

  /// The file image this catalog's placements refer to. Tracked for
  /// trailing-directory (minor >= 6) images only; reset whenever the
  /// catalog is saved elsewhere or in a non-appendable format.
  struct OriginImage {
    std::string path;
    uint32_t minor = 0;
    uint64_t file_size = 0;
    uint64_t dir_offset = 0;
  };
  mutable std::optional<OriginImage> origin_;

  // unique_ptr keeps entry addresses stable across vector growth, so
  // executors (which point at their documents) survive Add/Remove of
  // sibling entries.
  std::vector<std::unique_ptr<NamedDocument>> entries_;
  DocId next_id_ = 0;
};

}  // namespace store
}  // namespace meetxml

#endif  // MEETXML_STORE_CATALOG_H_
