#include "model/storage_io.h"

#include <bit>
#include <cstdio>
#include <cstring>
#include <span>

#include "model/validate.h"
#include "util/byte_io.h"
#include "util/failpoint.h"
#include "util/file_io.h"
#include "util/mmap_file.h"

namespace meetxml {
namespace model {

using util::ByteReader;
using util::ByteWriter;
using util::Result;
using util::Status;

namespace {

constexpr char kMagicV1[4] = {'M', 'X', 'M', '1'};
constexpr char kMagicV2[4] = {'M', 'X', 'M', '2'};
constexpr uint32_t kMinorV1 = 1;
constexpr uint32_t kMinorV2 = 2;
// The minor revision unaligned columnar (DOC1) document sections
// require.
constexpr uint32_t kMinorV2Columnar = 4;
// The minor revision aligned columnar (DOC2) sections require; also
// the first minor whose container aligns section payloads to 4-byte
// file offsets.
constexpr uint32_t kMinorV2AlignedColumnar = 5;
// The minor revision DRV1 derived-columns sections require; also the
// first minor with the trailing, patchable directory (in-place
// incremental rewrite).
constexpr uint32_t kMinorV2Derived = 6;
// Newest MXM2 minor a reader accepts; 3 added multi-document catalog
// images (several document sections + a CTLG directory,
// store/catalog.h), 4 added the columnar DOC1 payload, 5 added the
// aligned DOC2 payload and container section alignment, 6 added DRV1
// derived-columns sections and the trailing directory.
constexpr uint32_t kMaxMinorV2 = 6;
// Fixed header size of a minor-6 container: magic + u32 version +
// u64 dir_offset. Sections start at or after this offset.
constexpr uint64_t kHeaderSizeV6 = 16;
// Corruption guard: a directory claiming more sections than this is
// rejected before any allocation happens. Sized for catalogs of a few
// ten-thousand documents (3 sections each: DOC2 + DRV1 + TIDX); at 28
// directory bytes per section the worst-case pre-validation allocation
// stays under 2 MB.
constexpr uint32_t kMaxSections = 65536;

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t Fnv1a(std::string_view bytes) {
  uint64_t hash = kFnvOffset;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= kFnvPrime;
  }
  return hash;
}

// Section checksum for minor >= 4 images: FNV-1a steps over 8-byte
// chunks in four interleaved lanes, lanes folded and the tail absorbed
// byte-wise. Byte-serial FNV-1a is latency-bound at one multiply per
// byte (~0.5 GB/s) and was costing more than the columnar decode it
// guards; the four independent lanes run at memory speed while any
// flipped chunk still lands in its lane and survives the fold into the
// final 64-bit compare. Images up to minor 3 keep the byte-serial
// checksum so every existing image verifies unchanged.
uint64_t Fnv1aLanes(std::string_view bytes) {
  uint64_t lanes[4] = {kFnvOffset, kFnvOffset ^ 1, kFnvOffset ^ 2,
                       kFnvOffset ^ 3};
  const char* data = bytes.data();
  size_t size = bytes.size();
  size_t at = 0;
  for (; at + 32 <= size; at += 32) {
    for (int lane = 0; lane < 4; ++lane) {
      uint64_t chunk;
      std::memcpy(&chunk, data + at + lane * 8, 8);
      lanes[lane] = (lanes[lane] ^ chunk) * kFnvPrime;
    }
  }
  uint64_t hash = kFnvOffset;
  for (uint64_t lane : lanes) hash = (hash ^ lane) * kFnvPrime;
  for (; at < size; ++at) {
    hash ^= static_cast<unsigned char>(data[at]);
    hash *= kFnvPrime;
  }
  return hash;
}

uint64_t SectionChecksum(uint32_t minor, std::string_view bytes) {
  return minor >= kMinorV2Columnar ? Fnv1aLanes(bytes) : Fnv1a(bytes);
}

// The columnar codecs memcpy (or view) whole integer columns; these
// pin the in-memory element widths and byte order the raw
// little-endian arrays assume (big-endian hosts would need byte swaps
// here).
static_assert(sizeof(Oid) == 4 && sizeof(PathId) == 4 && sizeof(int) == 4,
              "columnar payloads assume 4-byte node columns");
static_assert(std::endian::native == std::endian::little,
              "columnar payloads memcpy little-endian columns");

// Reinterprets an integer column as its raw byte image (the writer
// side of the memcpy-decodable columnar arrays).
template <typename T>
std::string_view ColumnBytes(std::span<const T> column) {
  return std::string_view(reinterpret_cast<const char*>(column.data()),
                          column.size() * sizeof(T));
}

// Reads `count` little-endian u32 values into a 4-byte-element vector
// with a single bounds check and a single memcpy.
template <typename T>
Result<std::vector<T>> ReadU32Column(ByteReader* reader, size_t count) {
  MEETXML_ASSIGN_OR_RETURN(std::string_view raw, reader->View(count * 4));
  std::vector<T> column(count);
  std::memcpy(column.data(), raw.data(), raw.size());
  return column;
}

// Reinterprets the next `count` u32 values as a typed span over the
// image — the zero-copy read. Callers guarantee 4-byte alignment
// (DOC2 pads for it; CanViewPayload checks the base pointer).
template <typename T>
Result<std::span<const T>> ViewU32Column(ByteReader* reader, size_t count) {
  MEETXML_ASSIGN_OR_RETURN(std::string_view raw, reader->View(count * 4));
  return std::span<const T>(reinterpret_cast<const T*>(raw.data()), count);
}

// --- Path summary (shared by all payload codecs) ----------------------

void SerializePathSummary(const PathSummary& paths, ByteWriter* payload) {
  // In id order (parents first by construction).
  payload->U32(static_cast<uint32_t>(paths.size()));
  for (PathId id = 0; id < paths.size(); ++id) {
    payload->U32(paths.parent(id));
    payload->U8(static_cast<uint8_t>(paths.kind(id)));
    payload->StrU32(paths.label(id));
  }
}

Result<uint32_t> ParsePathSummary(ByteReader* reader, StoredDocument* doc) {
  PathSummary* paths = doc->mutable_paths();
  MEETXML_ASSIGN_OR_RETURN(uint32_t path_count, reader->U32());
  for (uint32_t i = 0; i < path_count; ++i) {
    MEETXML_ASSIGN_OR_RETURN(uint32_t parent, reader->U32());
    MEETXML_ASSIGN_OR_RETURN(uint8_t kind, reader->U8());
    MEETXML_ASSIGN_OR_RETURN(std::string_view label, reader->StrViewU32());
    if (parent != bat::kInvalidPathId && parent >= i) {
      return Status::InvalidArgument(
          "corrupt image: path parent out of order");
    }
    if (kind > static_cast<uint8_t>(StepKind::kCdata)) {
      return Status::InvalidArgument("corrupt image: bad step kind");
    }
    PathId interned =
        paths->Intern(parent, static_cast<StepKind>(kind), label);
    if (interned != i) {
      return Status::InvalidArgument(
          "corrupt image: duplicate path entry");
    }
  }
  return path_count;
}

// --- DOC0: row-oriented payload ---------------------------------------

std::string SerializeRowDocumentPayload(const StoredDocument& doc) {
  ByteWriter payload;
  SerializePathSummary(doc.paths(), &payload);
  // Node columns.
  payload.U32(static_cast<uint32_t>(doc.node_count()));
  for (Oid oid = 0; oid < doc.node_count(); ++oid) {
    payload.U32(doc.parent(oid));
  }
  for (Oid oid = 0; oid < doc.node_count(); ++oid) {
    payload.U32(doc.path(oid));
  }
  for (Oid oid = 0; oid < doc.node_count(); ++oid) {
    payload.U32(static_cast<uint32_t>(doc.rank(oid)));
  }
  // String associations, in global append order (preserves per-element
  // attribute order on reload).
  auto strings = doc.StringsInAppendOrder();
  payload.U32(static_cast<uint32_t>(strings.size()));
  for (const auto& [path, owner, value] : strings) {
    payload.U32(path);
    payload.U32(owner);
    payload.StrU32(value);
  }
  return payload.Take();
}

Result<StoredDocument> ParseRowDocumentPayload(std::string_view payload,
                                               const LoadOptions& options) {
  ByteReader reader(payload);
  StoredDocument doc;
  MEETXML_ASSIGN_OR_RETURN(uint32_t path_count,
                           ParsePathSummary(&reader, &doc));

  MEETXML_ASSIGN_OR_RETURN(uint32_t node_count, reader.U32());
  if (node_count > reader.remaining() / 4) {
    return Status::InvalidArgument("corrupt image: node count");
  }
  std::vector<Oid> parents(node_count);
  std::vector<PathId> node_paths(node_count);
  std::vector<uint32_t> ranks(node_count);
  for (uint32_t i = 0; i < node_count; ++i) {
    MEETXML_ASSIGN_OR_RETURN(parents[i], reader.U32());
  }
  for (uint32_t i = 0; i < node_count; ++i) {
    MEETXML_ASSIGN_OR_RETURN(node_paths[i], reader.U32());
    if (node_paths[i] >= path_count) {
      return Status::InvalidArgument("corrupt image: node path id");
    }
  }
  for (uint32_t i = 0; i < node_count; ++i) {
    MEETXML_ASSIGN_OR_RETURN(ranks[i], reader.U32());
  }
  doc.ReserveNodes(node_count);
  for (uint32_t i = 0; i < node_count; ++i) {
    if (i > 0 && parents[i] >= i) {
      return Status::InvalidArgument(
          "corrupt image: parent OIDs must precede children");
    }
    doc.AppendNode(node_paths[i], parents[i],
                   static_cast<int>(ranks[i]));
  }

  MEETXML_ASSIGN_OR_RETURN(uint32_t string_count, reader.U32());
  uint64_t value_bytes = 0;
  for (uint32_t i = 0; i < string_count; ++i) {
    MEETXML_ASSIGN_OR_RETURN(uint32_t path, reader.U32());
    if (path >= path_count) {
      return Status::InvalidArgument("corrupt image: string path id");
    }
    MEETXML_ASSIGN_OR_RETURN(uint32_t owner, reader.U32());
    MEETXML_ASSIGN_OR_RETURN(std::string_view value, reader.StrViewU32());
    if (owner >= node_count) {
      return Status::InvalidArgument("corrupt image: string owner");
    }
    value_bytes += value.size();
    doc.AppendString(path, owner, value);
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in storage image");
  }

  MEETXML_RETURN_NOT_OK(doc.Finalize());
  if (options.stats != nullptr) {
    // Rows replay through the append path: every column value and
    // string byte is copied out of the image.
    options.stats->bytes_copied +=
        uint64_t{12} * node_count + uint64_t{8} * string_count + value_bytes;
    options.stats->mode_used = LoadMode::kCopy;
  }
  return doc;
}

// --- DOC1/DOC2: columnar payloads -------------------------------------

std::string SerializeColumnarDocumentPayload(const StoredDocument& doc,
                                             bool aligned) {
  ByteWriter payload;
  SerializePathSummary(doc.paths(), &payload);
  // DOC2 pads so every raw u32 column below lands on a 4-byte payload
  // offset (the container aligns the payload itself); after the path
  // summary and after each variable-length blob are the only two spots
  // where alignment can break.
  if (aligned) payload.AlignTo4();
  // Node columns as raw arrays — the reader memcpys (or views) them.
  payload.U32(static_cast<uint32_t>(doc.node_count()));
  payload.Bytes(ColumnBytes(doc.parent_column()));
  payload.Bytes(ColumnBytes(doc.path_column()));
  payload.Bytes(ColumnBytes(doc.rank_column()));
  // String relations grouped by path, in first-append order so a
  // loaded document re-serializes byte-identically.
  payload.U32(static_cast<uint32_t>(doc.string_count()));
  payload.U32(static_cast<uint32_t>(doc.string_paths().size()));
  for (PathId path : doc.string_paths()) {
    const bat::StrBat& table = doc.StringsAt(path);
    payload.U32(path);
    payload.U32(static_cast<uint32_t>(table.size()));
    payload.Bytes(ColumnBytes(table.heads()));
    // The append-order permutation column.
    payload.Bytes(ColumnBytes(doc.StringSeqAt(path)));
    payload.Bytes(ColumnBytes(table.tail_ends()));
    payload.Bytes(table.tail_blob());
    if (aligned) payload.AlignTo4();
  }
  return payload.Take();
}

// True when a view-mode decode can actually borrow: the payload must
// be the aligned codec and sit on a 4-byte base address (the framed
// offsets take care of the rest). In-memory buffers and mapped files
// are always suitably aligned in practice; the check is the safety
// net that turns an exotic caller into a silent copy instead of
// undefined behavior.
bool CanViewPayload(std::string_view payload, bool aligned,
                    const LoadOptions& options) {
  return aligned && options.mode == LoadMode::kView &&
         reinterpret_cast<uintptr_t>(payload.data()) % 4 == 0;
}

// Parses a DRV1 payload (spans over `payload`) and adopts it into
// `doc`, which must already hold its node columns (adopted with
// derive_edges = false) and string relations. `view` requests
// borrowed adoption; an unaligned payload base silently downgrades to
// copy (mirroring CanViewPayload's safety net — all-u32 framing keeps
// every interior offset aligned once the base is).
Status AdoptDerivedFromPayload(std::string_view payload, bool view,
                               StoredDocument* doc, uint64_t* viewed,
                               uint64_t* copied) {
  std::vector<uint32_t> scratch;
  if (reinterpret_cast<uintptr_t>(payload.data()) % 4 != 0) {
    if (payload.size() % 4 != 0) {
      return Status::InvalidArgument(
          "corrupt image: derived section size not a multiple of 4");
    }
    scratch.resize(payload.size() / 4);
    std::memcpy(scratch.data(), payload.data(), payload.size());
    payload = std::string_view(
        reinterpret_cast<const char*>(scratch.data()), payload.size());
    view = false;  // the scratch dies with this call
  }
  ByteReader reader(payload);
  MEETXML_ASSIGN_OR_RETURN(uint32_t node_count, reader.U32());
  if (node_count != doc->node_count()) {
    return Status::InvalidArgument(
        "corrupt image: derived section node count mismatch");
  }
  // Guard before the big column views: offsets + list alone need
  // 2 * node_count u32s.
  if (uint64_t{node_count} * 8 > reader.remaining()) {
    return Status::InvalidArgument("corrupt image: derived node count");
  }
  DerivedColumnsView derived;
  MEETXML_ASSIGN_OR_RETURN(
      derived.child_offsets,
      ViewU32Column<uint32_t>(&reader, size_t{node_count} + 1));
  MEETXML_ASSIGN_OR_RETURN(
      derived.child_list, ViewU32Column<Oid>(&reader, node_count - 1));
  MEETXML_ASSIGN_OR_RETURN(uint32_t edge_group_count, reader.U32());
  if (edge_group_count > reader.remaining() / 8) {
    return Status::InvalidArgument(
        "corrupt image: derived edge group count");
  }
  derived.edges.reserve(edge_group_count);
  for (uint32_t g = 0; g < edge_group_count; ++g) {
    DerivedEdgeGroup group;
    MEETXML_ASSIGN_OR_RETURN(group.path, reader.U32());
    MEETXML_ASSIGN_OR_RETURN(uint32_t rows, reader.U32());
    if (rows == 0 || rows > reader.remaining() / 8) {
      return Status::InvalidArgument(
          "corrupt image: derived edge row count");
    }
    MEETXML_ASSIGN_OR_RETURN(group.heads, ViewU32Column<Oid>(&reader, rows));
    MEETXML_ASSIGN_OR_RETURN(group.tails, ViewU32Column<Oid>(&reader, rows));
    derived.edges.push_back(group);
  }
  MEETXML_ASSIGN_OR_RETURN(uint32_t string_group_count, reader.U32());
  if (string_group_count != doc->string_paths().size()) {
    return Status::InvalidArgument(
        "corrupt image: derived string group count mismatch");
  }
  derived.sorted.reserve(string_group_count);
  for (uint32_t i = 0; i < string_group_count; ++i) {
    MEETXML_ASSIGN_OR_RETURN(uint32_t path, reader.U32());
    MEETXML_ASSIGN_OR_RETURN(uint32_t flag, reader.U32());
    if (path != doc->string_paths()[i]) {
      return Status::InvalidArgument(
          "corrupt image: derived string group order mismatch");
    }
    if (flag > 1) {
      return Status::InvalidArgument(
          "corrupt image: derived sortedness flag");
    }
    derived.sorted.push_back(static_cast<uint8_t>(flag));
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in derived section");
  }
  Status adopted = doc->AdoptDerivedColumns(derived, /*copy=*/!view);
  if (!adopted.ok()) {
    return Status::InvalidArgument("corrupt image: ", adopted.message());
  }
  *(view ? viewed : copied) += payload.size();
  return Status::OK();
}

Result<StoredDocument> ParseColumnarDocumentPayload(
    std::string_view payload, bool aligned, const LoadOptions& options,
    const std::string_view* derived_payload = nullptr) {
  bool view = CanViewPayload(payload, aligned, options);
  bool defer = options.defer_validation;
  uint64_t borrowed = 0;  // column/blob bytes served as views
  uint64_t copied = 0;    // column/blob bytes memcpy'd out of the image
  ByteReader reader(payload);
  StoredDocument doc;
  MEETXML_ASSIGN_OR_RETURN(uint32_t path_count,
                           ParsePathSummary(&reader, &doc));
  (void)path_count;  // the adopt calls re-check against paths().
  if (aligned) MEETXML_RETURN_NOT_OK(reader.AlignTo4());

  MEETXML_ASSIGN_OR_RETURN(uint32_t node_count, reader.U32());
  // Guard before allocating: three 4-byte columns per node.
  if (node_count > reader.remaining() / 12) {
    return Status::InvalidArgument("corrupt image: node count");
  }
  // When a DRV1 section supplies the edge relations, the decode skips
  // deriving them from the parent column.
  bool derive_edges = derived_payload == nullptr;
  Status adopted = Status::OK();
  if (view) {
    MEETXML_ASSIGN_OR_RETURN(std::span<const Oid> parents,
                             ViewU32Column<Oid>(&reader, node_count));
    MEETXML_ASSIGN_OR_RETURN(std::span<const PathId> node_paths,
                             ViewU32Column<PathId>(&reader, node_count));
    MEETXML_ASSIGN_OR_RETURN(std::span<const int> ranks,
                             ViewU32Column<int>(&reader, node_count));
    adopted = doc.AdoptNodeColumnViews(parents, node_paths, ranks,
                                       derive_edges);
    borrowed += uint64_t{12} * node_count;
  } else {
    MEETXML_ASSIGN_OR_RETURN(std::vector<Oid> parents,
                             ReadU32Column<Oid>(&reader, node_count));
    MEETXML_ASSIGN_OR_RETURN(std::vector<PathId> node_paths,
                             ReadU32Column<PathId>(&reader, node_count));
    MEETXML_ASSIGN_OR_RETURN(std::vector<int> ranks,
                             ReadU32Column<int>(&reader, node_count));
    adopted = doc.AdoptNodeColumns(std::move(parents), std::move(node_paths),
                                   std::move(ranks), derive_edges);
    copied += uint64_t{12} * node_count;
  }
  if (!adopted.ok()) {
    return Status::InvalidArgument("corrupt image: ", adopted.message());
  }

  MEETXML_ASSIGN_OR_RETURN(uint32_t total_strings, reader.U32());
  MEETXML_ASSIGN_OR_RETURN(uint32_t group_count, reader.U32());
  // Every string row costs at least 12 bytes across its three columns,
  // every group at least 8 bytes of framing; reject impossible counts
  // before the permutation bitmap allocates.
  if (total_strings > reader.remaining() / 12 ||
      group_count > reader.remaining() / 8) {
    return Status::InvalidArgument("corrupt image: string counts");
  }
  // The append-order permutation scan — the deep per-row check a
  // deferring load hangs on the validation gate instead.
  std::vector<bool> seq_seen(defer ? 0 : total_strings, false);
  uint64_t rows_total = 0;
  for (uint32_t g = 0; g < group_count; ++g) {
    MEETXML_ASSIGN_OR_RETURN(uint32_t path, reader.U32());
    MEETXML_ASSIGN_OR_RETURN(uint32_t rows, reader.U32());
    if (rows == 0 || rows > reader.remaining() / 12) {
      return Status::InvalidArgument("corrupt image: string row count");
    }
    // The three columns and the blob are framed identically in both
    // modes; view the ranges first, validate the permutation, then
    // either borrow them outright or copy them into owned storage.
    MEETXML_ASSIGN_OR_RETURN(std::string_view owners_raw,
                             reader.View(uint64_t{rows} * 4));
    MEETXML_ASSIGN_OR_RETURN(std::string_view seq_raw,
                             reader.View(uint64_t{rows} * 4));
    MEETXML_ASSIGN_OR_RETURN(std::string_view ends_raw,
                             reader.View(uint64_t{rows} * 4));
    uint32_t blob_size;
    std::memcpy(&blob_size, ends_raw.data() + (uint64_t{rows} - 1) * 4, 4);
    MEETXML_ASSIGN_OR_RETURN(std::string_view blob,
                             reader.View(blob_size));
    if (aligned) MEETXML_RETURN_NOT_OK(reader.AlignTo4());
    if (!defer) {
      for (uint32_t r = 0; r < rows; ++r) {
        uint32_t seq;
        std::memcpy(&seq, seq_raw.data() + uint64_t{r} * 4, 4);
        if (seq >= total_strings || seq_seen[seq]) {
          return Status::InvalidArgument(
              "corrupt image: string order is not a permutation");
        }
        seq_seen[seq] = true;
      }
    }
    ColumnChecks checks =
        defer ? ColumnChecks::kFramingOnly : ColumnChecks::kFull;
    Status adopted_strings = Status::OK();
    if (view) {
      adopted_strings = doc.AdoptStringRelationViews(
          path,
          std::span<const Oid>(
              reinterpret_cast<const Oid*>(owners_raw.data()), rows),
          std::span<const uint32_t>(
              reinterpret_cast<const uint32_t*>(ends_raw.data()), rows),
          blob,
          std::span<const uint32_t>(
              reinterpret_cast<const uint32_t*>(seq_raw.data()), rows),
          checks);
      borrowed += uint64_t{12} * rows + blob.size();
    } else {
      std::vector<Oid> owners(rows);
      std::memcpy(owners.data(), owners_raw.data(), owners_raw.size());
      std::vector<uint32_t> seq(rows);
      std::memcpy(seq.data(), seq_raw.data(), seq_raw.size());
      std::vector<uint32_t> ends(rows);
      std::memcpy(ends.data(), ends_raw.data(), ends_raw.size());
      adopted_strings = doc.AdoptStringRelation(
          path, std::move(owners), std::move(ends), std::string(blob),
          std::move(seq), checks);
      copied += uint64_t{12} * rows + blob.size();
    }
    if (!adopted_strings.ok()) {
      return Status::InvalidArgument("corrupt image: ",
                                     adopted_strings.message());
    }
    rows_total += rows;
  }
  if (rows_total != total_strings) {
    return Status::InvalidArgument(
        "corrupt image: string order is not a permutation");
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in storage image");
  }

  if (derived_payload != nullptr) {
    MEETXML_RETURN_NOT_OK(AdoptDerivedFromPayload(*derived_payload, view,
                                                  &doc, &borrowed, &copied));
    // Eagerly cross-check the adopted structures unless deferred —
    // the one deep scan the persisted-derived fast path keeps, so a
    // default (eager) load stays exactly as corruption-proof as the
    // rebuild path it replaces.
    if (!defer) {
      Status valid = ValidateDerivedStructures(doc);
      if (!valid.ok()) {
        return Status::InvalidArgument("corrupt image: ", valid.message());
      }
    }
  } else {
    MEETXML_RETURN_NOT_OK(doc.Finalize());
  }
  if (defer) doc.MarkUnvalidated();
  if (view) doc.PinBacking(options.backing);
  if (options.stats != nullptr) {
    options.stats->bytes_copied += copied;
    options.stats->bytes_viewed += borrowed;
    options.stats->mode_used = view ? LoadMode::kView : LoadMode::kCopy;
  }
  return doc;
}

std::string SerializeDocumentPayload(const StoredDocument& doc,
                                     DocumentPayloadFormat format) {
  switch (format) {
    case DocumentPayloadFormat::kRowOriented:
      return SerializeRowDocumentPayload(doc);
    case DocumentPayloadFormat::kColumnarUnaligned:
      return SerializeColumnarDocumentPayload(doc, /*aligned=*/false);
    case DocumentPayloadFormat::kColumnar:
      break;
  }
  return SerializeColumnarDocumentPayload(doc, /*aligned=*/true);
}

uint32_t MinorForPayloadFormat(DocumentPayloadFormat format) {
  switch (format) {
    case DocumentPayloadFormat::kRowOriented:
      return kMinorV2;
    case DocumentPayloadFormat::kColumnarUnaligned:
      return kMinorV2Columnar;
    case DocumentPayloadFormat::kColumnar:
      break;
  }
  return kMinorV2AlignedColumnar;
}

// Serializes a minor-6 directory (count + entries, without its
// trailing checksum field) — shared by the full writer and the
// in-place appender so the two always publish identical framing.
std::string SerializeDirectoryV6(const std::vector<SectionPlacement>& entries) {
  ByteWriter dir;
  dir.U32(static_cast<uint32_t>(entries.size()));
  for (const SectionPlacement& entry : entries) {
    dir.U32(entry.id);
    dir.U64(entry.offset);
    dir.U64(entry.size);
    dir.U64(entry.checksum);
  }
  return dir.Take();
}

// Shared v2 container writer; takes pointers so callers can mix owned
// and borrowed sections without copying payloads.
Result<std::string> WriteContainer(
    const std::vector<const ImageSection*>& sections, uint32_t minor) {
  if (minor < kMinorV2 || minor > kMaxMinorV2) {
    return Status::InvalidArgument("unknown MXM2 minor revision ", minor);
  }
  if (sections.empty() || sections.size() > kMaxSections) {
    return Status::InvalidArgument("bad section count: ", sections.size());
  }
  if (minor >= kMinorV2Derived) {
    // Trailing-directory layout: header with a directory pointer,
    // 4-aligned payloads, then the checksummed directory. The pointer
    // is patched last — the same single-word commit an in-place
    // rewrite uses.
    ByteWriter header;
    for (char c : kMagicV2) header.U8(static_cast<uint8_t>(c));
    header.U32(minor);
    header.U64(0);  // dir_offset, patched below
    std::string image = header.Take();
    std::vector<SectionPlacement> placements;
    placements.reserve(sections.size());
    for (const ImageSection* section : sections) {
      while (image.size() % 4 != 0) image.push_back('\0');
      placements.push_back(SectionPlacement{
          section->id, image.size(), section->bytes.size(),
          SectionChecksum(minor, section->bytes)});
      image += section->bytes;
    }
    while (image.size() % 4 != 0) image.push_back('\0');
    uint64_t dir_offset = image.size();
    std::string dir_bytes = SerializeDirectoryV6(placements);
    image += dir_bytes;
    ByteWriter tail;
    tail.U64(SectionChecksum(minor, dir_bytes));
    image += tail.Take();
    std::memcpy(image.data() + 8, &dir_offset, 8);
    return image;
  }
  ByteWriter out;
  for (char c : kMagicV2) out.U8(static_cast<uint8_t>(c));
  out.U32(minor);
  out.U32(static_cast<uint32_t>(sections.size()));
  for (const ImageSection* section : sections) {
    out.U32(section->id);
    out.U64(section->bytes.size());
    out.U64(SectionChecksum(minor, section->bytes));
  }
  std::string image = out.Take();
  for (const ImageSection* section : sections) {
    // Minor >= 5 containers start every payload on a 4-byte file
    // offset so aligned (DOC2) payloads stay aligned after the
    // variable-length sections before them.
    if (minor >= kMinorV2AlignedColumnar) {
      while (image.size() % 4 != 0) image.push_back('\0');
    }
    image += section->bytes;
  }
  return image;
}

}  // namespace

uint32_t DocumentSectionIdFor(DocumentPayloadFormat format) {
  switch (format) {
    case DocumentPayloadFormat::kRowOriented:
      return kDocumentSectionId;
    case DocumentPayloadFormat::kColumnarUnaligned:
      return kColumnarDocumentSectionId;
    case DocumentPayloadFormat::kColumnar:
      break;
  }
  return kAlignedColumnarDocumentSectionId;
}

Result<std::string> SerializeDocumentSection(const StoredDocument& doc,
                                             DocumentPayloadFormat format) {
  if (!doc.finalized()) {
    return Status::InvalidArgument(
        "only finalized documents can be saved");
  }
  return SerializeDocumentPayload(doc, format);
}

Result<std::string> SerializeDerivedSection(const StoredDocument& doc) {
  if (!doc.finalized()) {
    return Status::InvalidArgument(
        "only finalized documents can be saved");
  }
  ByteWriter payload;
  payload.U32(static_cast<uint32_t>(doc.node_count()));
  payload.Bytes(ColumnBytes(doc.child_offsets()));
  payload.Bytes(ColumnBytes(doc.child_list()));
  payload.U32(static_cast<uint32_t>(doc.edge_paths().size()));
  for (PathId path : doc.edge_paths()) {
    const bat::OidOidBat& edges = doc.EdgesAt(path);
    payload.U32(path);
    payload.U32(static_cast<uint32_t>(edges.size()));
    payload.Bytes(ColumnBytes(edges.heads()));
    payload.Bytes(ColumnBytes(edges.tails()));
  }
  payload.U32(static_cast<uint32_t>(doc.string_paths().size()));
  for (PathId path : doc.string_paths()) {
    payload.U32(path);
    payload.U32(doc.StringRelationSorted(path) ? 1 : 0);
  }
  return payload.Take();
}

Result<StoredDocument> ParseDocumentSection(std::string_view payload,
                                            const LoadOptions& options) {
  return ParseRowDocumentPayload(payload, options);
}

Result<StoredDocument> ParseColumnarDocumentSection(
    std::string_view payload, const LoadOptions& options) {
  return ParseColumnarDocumentPayload(payload, /*aligned=*/false, options);
}

Result<StoredDocument> ParseAlignedColumnarDocumentSection(
    std::string_view payload, const LoadOptions& options) {
  return ParseColumnarDocumentPayload(payload, /*aligned=*/true, options);
}

Result<StoredDocument> ParseAnyDocumentSection(uint32_t section_id,
                                               std::string_view payload,
                                               const LoadOptions& options) {
  if (section_id == kAlignedColumnarDocumentSectionId) {
    return ParseColumnarDocumentPayload(payload, /*aligned=*/true, options);
  }
  if (section_id == kColumnarDocumentSectionId) {
    return ParseColumnarDocumentPayload(payload, /*aligned=*/false,
                                        options);
  }
  if (section_id == kDocumentSectionId) {
    return ParseRowDocumentPayload(payload, options);
  }
  return Status::InvalidArgument("not a document section id: ",
                                 section_id);
}

Result<StoredDocument> ParseDocumentWithDerived(uint32_t section_id,
                                                std::string_view payload,
                                                std::string_view derived_payload,
                                                const LoadOptions& options) {
  if (section_id != kAlignedColumnarDocumentSectionId) {
    // DRV1 spans the document payload's column layout; only the
    // aligned columnar codec guarantees it.
    return Status::InvalidArgument(
        "derived sections pair only with aligned columnar document "
        "sections");
  }
  return ParseColumnarDocumentPayload(payload, /*aligned=*/true, options,
                                      &derived_payload);
}

Result<std::string> SaveSectionsToBytes(
    const std::vector<ImageSection>& sections, uint32_t minor) {
  std::vector<const ImageSection*> pointers;
  pointers.reserve(sections.size());
  for (const ImageSection& section : sections) pointers.push_back(&section);
  return WriteContainer(pointers, minor);
}

Result<std::string> SaveToBytes(const StoredDocument& doc,
                                const SaveOptions& options) {
  if (!doc.finalized()) {
    return Status::InvalidArgument(
        "only finalized documents can be saved");
  }
  if (options.format_version != 1 && options.format_version != 2) {
    return Status::InvalidArgument("unknown storage format version ",
                                   options.format_version);
  }

  // Reject images the loader itself would refuse: too many sections, a
  // stray document section or duplicate ids must fail at write time,
  // not at the next restart.
  if (options.extra_sections.size() > kMaxSections - 1) {
    return Status::InvalidArgument("too many sections: ",
                                   options.extra_sections.size() + 1);
  }
  for (size_t i = 0; i < options.extra_sections.size(); ++i) {
    if (IsDocumentSectionId(options.extra_sections[i].id)) {
      return Status::InvalidArgument(
          "extra sections cannot use a document section id");
    }
    if (options.extra_sections[i].id == kDerivedSectionId) {
      return Status::InvalidArgument(
          "extra sections cannot use the derived section id");
    }
    for (size_t j = 0; j < i; ++j) {
      if (options.extra_sections[j].id == options.extra_sections[i].id) {
        return Status::InvalidArgument("duplicate section id ",
                                       options.extra_sections[i].id);
      }
    }
  }

  if (options.format_version == 1) {
    if (!options.extra_sections.empty()) {
      return Status::InvalidArgument(
          "MXM1 images cannot carry extra sections");
    }
    // MXM1 predates the columnar payloads; its single payload is
    // always row-oriented, whatever payload_format says.
    std::string body =
        SerializeDocumentPayload(doc, DocumentPayloadFormat::kRowOriented);
    ByteWriter header;
    for (char c : kMagicV1) header.U8(static_cast<uint8_t>(c));
    header.U32(kMinorV1);
    header.U64(body.size());
    header.U64(Fnv1a(body));
    std::string out = header.Take();
    out += body;
    return out;
  }

  // DRV1 only describes the aligned columnar layout; other payload
  // formats (kept for rollback) write the previous minors unchanged.
  bool with_derived =
      options.derived_section &&
      options.payload_format == DocumentPayloadFormat::kColumnar;
  std::string body = SerializeDocumentPayload(doc, options.payload_format);
  std::vector<const ImageSection*> pointers;
  pointers.reserve(2 + options.extra_sections.size());
  ImageSection document_section{DocumentSectionIdFor(options.payload_format),
                                std::move(body)};
  pointers.push_back(&document_section);
  ImageSection derived_section{kDerivedSectionId, std::string()};
  if (with_derived) {
    MEETXML_ASSIGN_OR_RETURN(derived_section.bytes,
                             SerializeDerivedSection(doc));
    pointers.push_back(&derived_section);
  }
  for (const ImageSection& section : options.extra_sections) {
    pointers.push_back(&section);
  }
  uint32_t minor = with_derived ? kMinorV2Derived
                                : MinorForPayloadFormat(options.payload_format);
  return WriteContainer(pointers, minor);
}

Result<SectionImage> LoadSectionsFromBytes(std::string_view bytes) {
  return LoadSectionsFromBytes(bytes, SectionScanOptions{});
}

Result<SectionImage> LoadSectionsFromBytes(
    std::string_view bytes, const SectionScanOptions& options) {
  ByteReader reader(bytes);
  char magic[4];
  for (char& c : magic) {
    MEETXML_ASSIGN_OR_RETURN(uint8_t byte, reader.U8());
    c = static_cast<char>(byte);
  }

  if (std::memcmp(magic, kMagicV1, 4) == 0) {
    MEETXML_ASSIGN_OR_RETURN(uint32_t version, reader.U32());
    // Policy: accept every minor up to the newest we know (minors are
    // backward compatible); MXM1 minors start at 1.
    if (version < 1 || version > kMinorV1) {
      return Status::InvalidArgument("unsupported storage version ",
                                     version);
    }
    MEETXML_ASSIGN_OR_RETURN(uint64_t payload_size, reader.U64());
    MEETXML_ASSIGN_OR_RETURN(uint64_t checksum, reader.U64());
    size_t header_size = reader.pos();
    if (payload_size != bytes.size() - header_size) {
      return Status::InvalidArgument("storage image size mismatch");
    }
    std::string_view payload = bytes.substr(header_size);
    if (options.verify_checksums && Fnv1a(payload) != checksum) {
      return Status::InvalidArgument("storage image checksum mismatch");
    }
    SectionImage image;
    image.minor = kMinorV1;
    image.sections.push_back(
        SectionView{kDocumentSectionId, payload, header_size, checksum});
    return image;
  }

  if (std::memcmp(magic, kMagicV2, 4) != 0) {
    return Status::InvalidArgument("not a meetxml storage image");
  }
  MEETXML_ASSIGN_OR_RETURN(uint32_t version, reader.U32());
  // Policy: accept every minor up to the newest we know (minors are
  // backward compatible); MXM2 minors start at 2.
  if (version < kMinorV2 || version > kMaxMinorV2) {
    return Status::InvalidArgument("unsupported storage version ",
                                   version);
  }

  if (version >= kMinorV2Derived) {
    // Trailing-directory layout: seek to the directory, verify its
    // own checksum (the one framing check that always runs — the scan
    // never trusts unchecked structure), then bounds-check every
    // entry. Gaps between payloads and bytes after the directory are
    // dead space by design (alignment padding, superseded sections of
    // an in-place rewrite, an interrupted append) and carry no
    // checksum.
    MEETXML_ASSIGN_OR_RETURN(uint64_t dir_offset, reader.U64());
    if (dir_offset < kHeaderSizeV6 || dir_offset % 4 != 0 ||
        dir_offset > bytes.size() || bytes.size() - dir_offset < 12) {
      return Status::InvalidArgument(
          "corrupt image: bad directory offset");
    }
    ByteReader dir(bytes);
    dir.set_pos(static_cast<size_t>(dir_offset));
    MEETXML_ASSIGN_OR_RETURN(uint32_t section_count, dir.U32());
    if (section_count == 0 || section_count > kMaxSections) {
      return Status::InvalidArgument("corrupt image: section count ",
                                     section_count);
    }
    std::vector<SectionPlacement> directory(section_count);
    for (SectionPlacement& entry : directory) {
      MEETXML_ASSIGN_OR_RETURN(entry.id, dir.U32());
      MEETXML_ASSIGN_OR_RETURN(entry.offset, dir.U64());
      MEETXML_ASSIGN_OR_RETURN(entry.size, dir.U64());
      MEETXML_ASSIGN_OR_RETURN(entry.checksum, dir.U64());
    }
    size_t dir_end = dir.pos();
    MEETXML_ASSIGN_OR_RETURN(uint64_t dir_checksum, dir.U64());
    std::string_view dir_bytes =
        bytes.substr(static_cast<size_t>(dir_offset), dir_end - dir_offset);
    if (SectionChecksum(version, dir_bytes) != dir_checksum) {
      return Status::InvalidArgument(
          "corrupt image: directory checksum mismatch");
    }
    SectionImage image;
    image.minor = version;
    image.dir_offset = dir_offset;
    image.sections.reserve(section_count);
    for (const SectionPlacement& entry : directory) {
      if (entry.offset < kHeaderSizeV6 || entry.offset % 4 != 0 ||
          entry.offset > dir_offset ||
          entry.size > dir_offset - entry.offset) {
        return Status::InvalidArgument("corrupt image: section overruns");
      }
      std::string_view payload = bytes.substr(
          static_cast<size_t>(entry.offset),
          static_cast<size_t>(entry.size));
      if (options.verify_checksums &&
          SectionChecksum(version, payload) != entry.checksum) {
        return Status::InvalidArgument("storage image checksum mismatch");
      }
      image.sections.push_back(
          SectionView{entry.id, payload, entry.offset, entry.checksum});
    }
    return image;
  }

  MEETXML_ASSIGN_OR_RETURN(uint32_t section_count, reader.U32());
  if (section_count == 0 || section_count > kMaxSections) {
    return Status::InvalidArgument("corrupt image: section count ",
                                   section_count);
  }
  struct DirEntry {
    uint32_t id;
    uint64_t size;
    uint64_t checksum;
  };
  std::vector<DirEntry> directory(section_count);
  for (DirEntry& entry : directory) {
    MEETXML_ASSIGN_OR_RETURN(entry.id, reader.U32());
    MEETXML_ASSIGN_OR_RETURN(entry.size, reader.U64());
    MEETXML_ASSIGN_OR_RETURN(entry.checksum, reader.U64());
  }

  // Walk the payloads: for minor >= 5 every payload starts at the
  // next 4-byte file offset (the padding must be zero); the payloads
  // plus padding must tile the rest of the image exactly.
  SectionImage image;
  image.minor = version;
  image.sections.reserve(section_count);
  uint64_t offset = reader.pos();
  for (const DirEntry& entry : directory) {
    if (version >= kMinorV2AlignedColumnar) {
      while (offset % 4 != 0) {
        if (offset >= bytes.size() || bytes[offset] != '\0') {
          return Status::InvalidArgument(
              "corrupt image: bad section alignment padding");
        }
        ++offset;
      }
    }
    if (entry.size > bytes.size() - offset) {
      return Status::InvalidArgument("corrupt image: section overruns");
    }
    std::string_view payload =
        bytes.substr(offset, static_cast<size_t>(entry.size));
    if (options.verify_checksums &&
        SectionChecksum(version, payload) != entry.checksum) {
      return Status::InvalidArgument("storage image checksum mismatch");
    }
    image.sections.push_back(
        SectionView{entry.id, payload, offset, entry.checksum});
    offset += entry.size;
  }
  if (offset != bytes.size()) {
    return Status::InvalidArgument("storage image size mismatch");
  }
  return image;
}

Status VerifySectionChecksum(uint32_t minor, const SectionView& section) {
  if (SectionChecksum(minor, section.bytes) != section.checksum) {
    return Status::InvalidArgument("storage image checksum mismatch");
  }
  return Status::OK();
}

Result<LoadedImage> LoadImageFromBytes(std::string_view bytes,
                                       const LoadOptions& options) {
  MEETXML_ASSIGN_OR_RETURN(SectionImage raw, LoadSectionsFromBytes(bytes));
  LoadedImage image;
  image.format_version = raw.minor == kMinorV1 ? 1 : 2;
  const SectionView* doc_section = nullptr;
  const SectionView* drv_section = nullptr;
  for (const SectionView& section : raw.sections) {
    if (IsDocumentSectionId(section.id)) {
      if (doc_section != nullptr) {
        return Status::InvalidArgument(
            "corrupt image: duplicate document section");
      }
      doc_section = &section;
    } else if (section.id == kDerivedSectionId) {
      if (drv_section != nullptr) {
        return Status::InvalidArgument(
            "corrupt image: duplicate derived section");
      }
      drv_section = &section;
    } else {
      // Forward compatibility: unknown sections are preserved verbatim
      // for higher layers (or newer readers) to interpret.
      image.extra_sections.push_back(
          ImageSection{section.id, std::string(section.bytes)});
    }
  }
  if (doc_section == nullptr) {
    return Status::InvalidArgument("corrupt image: no document section");
  }
  if (drv_section != nullptr) {
    MEETXML_ASSIGN_OR_RETURN(
        image.doc,
        ParseDocumentWithDerived(doc_section->id, doc_section->bytes,
                                 drv_section->bytes, options));
  } else {
    MEETXML_ASSIGN_OR_RETURN(
        image.doc,
        ParseAnyDocumentSection(doc_section->id, doc_section->bytes,
                                options));
  }
  return image;
}

Result<StoredDocument> LoadFromBytes(std::string_view bytes,
                                     const LoadOptions& options) {
  MEETXML_ASSIGN_OR_RETURN(LoadedImage image,
                           LoadImageFromBytes(bytes, options));
  return std::move(image.doc);
}

Status SaveToFile(const StoredDocument& doc, const std::string& path,
                  const SaveOptions& options) {
  MEETXML_ASSIGN_OR_RETURN(std::string bytes, SaveToBytes(doc, options));
  return util::WriteFileAtomic(path, bytes);
}

Result<StoredDocument> LoadFromFile(const std::string& path,
                                    const LoadOptions& options) {
  MEETXML_ASSIGN_OR_RETURN(LoadedImage image,
                           LoadImageFromFile(path, options));
  return std::move(image.doc);
}

Result<AppendStats> AppendSectionsToFile(
    const std::string& path, uint64_t expected_size,
    uint64_t expected_dir_offset,
    const std::vector<PendingSection>& sections) {
  if (sections.empty() || sections.size() > kMaxSections) {
    return Status::InvalidArgument("bad section count: ", sections.size());
  }
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  if (file == nullptr) {
    return Status::NotFound("cannot open storage image: ", path);
  }
  auto fail = [&file](Status status) {
    std::fclose(file);
    return status;
  };
  // Crash-matrix boundary "opened, nothing appended yet": a kill here
  // must reopen as the unmodified old image.
  if (MEETXML_FAILPOINT_TRIGGERED("storage.append.begin")) {
    return fail(Status::Internal("injected failure opening ", path));
  }
  // Fence: the on-disk image must still be exactly the one the caller
  // planned against — magic, a trailing-directory minor, the directory
  // pointer, and the file size all verbatim — so kept placements and
  // the commit patch stay valid.
  char header[kHeaderSizeV6];
  if (std::fread(header, 1, sizeof header, file) != sizeof header) {
    return fail(Status::InvalidArgument("storage image truncated: ", path));
  }
  if (std::memcmp(header, kMagicV2, 4) != 0) {
    return fail(Status::InvalidArgument("bad magic in ", path));
  }
  uint32_t minor;
  std::memcpy(&minor, header + 4, 4);
  if (minor < kMinorV2Derived || minor > kMaxMinorV2) {
    return fail(Status::InvalidArgument(
        "storage minor ", minor, " has no trailing directory"));
  }
  uint64_t dir_offset;
  std::memcpy(&dir_offset, header + 8, 8);
  if (dir_offset != expected_dir_offset) {
    return fail(Status::InvalidArgument(
        "storage image changed since it was planned against"));
  }
  if (std::fseek(file, 0, SEEK_END) != 0) {
    return fail(Status::Internal("seek failed on ", path));
  }
  long end = std::ftell(file);
  if (end < 0 || static_cast<uint64_t>(end) != expected_size) {
    return fail(Status::InvalidArgument(
        "storage image changed since it was planned against"));
  }

  // Stage the whole append in memory: new payloads on 4-aligned file
  // offsets, then the new directory and its checksum. Nothing below
  // expected_size is touched until the blob is durable.
  AppendStats stats;
  stats.placements.reserve(sections.size());
  std::string blob;
  auto cursor = [&] { return expected_size + blob.size(); };
  for (const PendingSection& section : sections) {
    if (section.keep.has_value()) {
      const SectionPlacement& keep = *section.keep;
      if (keep.id != section.id || keep.offset < kHeaderSizeV6 ||
          keep.offset % 4 != 0 || keep.size > expected_size ||
          keep.offset > expected_size - keep.size) {
        return fail(Status::InvalidArgument(
            "kept section placement does not fit the existing image"));
      }
      stats.placements.push_back(keep);
      continue;
    }
    while (cursor() % 4 != 0) blob.push_back('\0');
    stats.placements.push_back(SectionPlacement{
        section.id, cursor(), section.bytes.size(),
        SectionChecksum(minor, section.bytes)});
    blob += section.bytes;
  }
  while (cursor() % 4 != 0) blob.push_back('\0');
  uint64_t new_dir_offset = cursor();
  std::string dir_bytes = SerializeDirectoryV6(stats.placements);
  blob += dir_bytes;
  ByteWriter tail;
  tail.U64(SectionChecksum(minor, dir_bytes));
  blob += tail.Take();

  // Each failpoint fires *after* the operation it names, so a
  // crash-armed site kills the save with exactly that much on disk:
  // write   — blob flushed past stdio but maybe not durable
  // sync_blob — blob durable, header still pointing at the old dir
  // patch   — new directory pointer written, not yet durable
  // sync_commit — fully committed new image
  if (std::fwrite(blob.data(), 1, blob.size(), file) != blob.size() ||
      std::fflush(file) != 0 ||
      MEETXML_FAILPOINT_TRIGGERED("storage.append.write")) {
    return fail(Status::Internal("short write appending to ", path));
  }
#if defined(MEETXML_HAVE_FSYNC)
  if (::fsync(::fileno(file)) != 0 ||
      MEETXML_FAILPOINT_TRIGGERED("storage.append.sync_blob")) {
    return fail(Status::Internal("fsync failed on ", path));
  }
#endif
  // Single-word commit: repoint the header at the new directory. A
  // crash on either side of this write leaves a fully valid image —
  // the old one before, the new one after.
  if (std::fseek(file, 8, SEEK_SET) != 0 ||
      std::fwrite(&new_dir_offset, 1, 8, file) != 8 ||
      std::fflush(file) != 0 ||
      MEETXML_FAILPOINT_TRIGGERED("storage.append.patch")) {
    return fail(Status::Internal("directory patch failed on ", path));
  }
#if defined(MEETXML_HAVE_FSYNC)
  if (::fsync(::fileno(file)) != 0 ||
      MEETXML_FAILPOINT_TRIGGERED("storage.append.sync_commit")) {
    return fail(Status::Internal("fsync failed on ", path));
  }
#endif
  std::fclose(file);
  stats.file_size = expected_size + blob.size();
  stats.dir_offset = new_dir_offset;
  stats.bytes_appended = blob.size();
  return stats;
}

Result<LoadedImage> LoadImageFromFile(const std::string& path,
                                      const LoadOptions& options) {
  if (options.mode == LoadMode::kView) {
    // Zero-copy open: the shared mapping is pinned into the decoded
    // document, which owns the last word on when it unmaps.
    MEETXML_ASSIGN_OR_RETURN(
        std::shared_ptr<const util::MmapFile> file,
        util::MmapFile::OpenShared(path,
                                   util::MmapFile::Advice::kWillNeed));
    LoadOptions pinned = options;
    pinned.backing = file;
    return LoadImageFromBytes(file->bytes(), pinned);
  }
  // Decode straight out of the mapping (page cache) instead of copying
  // the whole image into a string first; everything LoadedImage keeps
  // is owned, so the mapping can end with this scope.
  MEETXML_ASSIGN_OR_RETURN(
      util::MmapFile file,
      util::MmapFile::Open(path, util::MmapFile::Advice::kSequential));
  return LoadImageFromBytes(file.bytes(), options);
}

}  // namespace model
}  // namespace meetxml
