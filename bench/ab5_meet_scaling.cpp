// AB5 — ablation: linear scaling of the general meet.
//
// The paper claims the set-oriented meet "scales well, i.e., linear,
// with respect to the cardinality of the input sets" (§5). This harness
// feeds the general meet growing slices of a large bibliography's year
// matches + ICDE matches and reports time per input item, which should
// stay roughly constant.

#include <algorithm>
#include <cstdio>

#include "core/meet_general.h"
#include "core/restrictions.h"
#include "data/dblp_gen.h"
#include "model/shredder.h"
#include "text/search.h"
#include "util/timer.h"

using namespace meetxml;

int main() {
  data::DblpOptions options;
  options.icde_papers_per_year = 250;
  options.other_papers_per_year = 500;
  options.journal_articles_per_year = 200;
  auto generated = data::GenerateDblp(options);
  MEETXML_CHECK_OK(generated.status());
  auto doc_result = model::Shred(*generated);
  MEETXML_CHECK_OK(doc_result.status());
  const model::StoredDocument& doc = *doc_result;

  auto search_result = text::FullTextSearch::Build(doc);
  MEETXML_CHECK_OK(search_result.status());

  // A large mixed input: every "19" substring match (all years, plus
  // year-like pages) and all ICDE matches.
  auto years = search_result->Search("19", text::MatchMode::kContains);
  auto icde = search_result->Search("ICDE", text::MatchMode::kContains);
  MEETXML_CHECK_OK(years.status());
  MEETXML_CHECK_OK(icde.status());
  std::vector<core::AssocSet> all_inputs =
      text::FullTextSearch::ToMeetInput({*icde, *years});
  size_t total = 0;
  for (const core::AssocSet& set : all_inputs) total += set.size();

  std::printf("# AB5: general meet scaling (document: %zu nodes, full "
              "input: %zu associations)\n",
              doc.node_count(), total);
  std::printf("# %10s %12s %12s %14s %10s\n", "input_n", "meets",
              "meet_ms", "us_per_item", "lifts");

  core::MeetOptions meet_options = core::ExcludeRootOptions(doc);
  for (double fraction : {0.01, 0.03, 0.1, 0.3, 0.6, 1.0}) {
    // Take a prefix slice of every input set.
    std::vector<core::AssocSet> inputs;
    size_t n = 0;
    for (const core::AssocSet& set : all_inputs) {
      size_t take = std::max<size_t>(
          1, static_cast<size_t>(set.size() * fraction));
      take = std::min(take, set.size());
      inputs.push_back(core::AssocSet{
          set.path, {set.nodes.begin(), set.nodes.begin() + take}});
      n += take;
    }
    core::MeetGeneralStats stats;
    util::Timer timer;
    auto meets = core::MeetGeneral(doc, inputs, meet_options, &stats);
    MEETXML_CHECK_OK(meets.status());
    double ms = timer.ElapsedMillis();
    std::printf("  %10zu %12zu %12.2f %14.3f %10zu\n", n, meets->size(),
                ms, ms * 1000.0 / static_cast<double>(n), stats.lifts);
  }
  std::printf("# expected shape: us_per_item roughly constant -> linear "
              "scaling, as the paper claims\n");
  return 0;
}
