#include "util/net.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include "util/failpoint.h"

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>
#define MEETXML_HAVE_SOCKETS 1
#endif

namespace meetxml {
namespace util {

uint64_t MonotonicMillis() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#if defined(MEETXML_HAVE_SOCKETS)

namespace {

Status Errno(std::string_view what) {
  return Status::Internal(what, ": ", std::strerror(errno));
}

}  // namespace

Result<int> ListenTcp(uint16_t port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Errno("bind");
    ::close(fd);
    return st;
  }
  if (::listen(fd, backlog) != 0) {
    Status st = Errno("listen");
    ::close(fd);
    return st;
  }
  return fd;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<int> AcceptConnection(int listen_fd) {
  for (;;) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

Result<int> ConnectTcp(const std::string& host, uint16_t port) {
  return ConnectTcp(host, port, 0);
}

Result<int> ConnectTcp(const std::string& host, uint16_t port,
                       uint64_t connect_timeout_ms) {
  MEETXML_FAILPOINT("net.connect");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const char* name = host == "localhost" ? "127.0.0.1" : host.c_str();
  if (::inet_pton(AF_INET, name, &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: ", host);
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  if (connect_timeout_ms == 0) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Status st = Errno("connect");
      ::close(fd);
      return st;
    }
  } else {
    // Nonblocking connect + poll: the only portable way to put a
    // deadline on the TCP handshake (a blocking connect to a blackholed
    // host otherwise waits on the kernel's minutes-long SYN retries).
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
      Status st = Errno("fcntl");
      ::close(fd);
      return st;
    }
    int rc =
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
      Status st = Errno("connect");
      ::close(fd);
      return st;
    }
    if (rc != 0) {
      uint64_t deadline = MonotonicMillis() + connect_timeout_ms;
      for (;;) {
        uint64_t now = MonotonicMillis();
        if (now >= deadline) {
          ::close(fd);
          return Status::Unavailable("connect to ", host, ":", port,
                                     " timed out after ",
                                     connect_timeout_ms, "ms");
        }
        pollfd waiter{};
        waiter.fd = fd;
        waiter.events = POLLOUT;
        int ready = ::poll(&waiter, 1, static_cast<int>(deadline - now));
        if (ready > 0) break;
        if (ready == 0) continue;  // re-check the deadline, then report
        if (errno == EINTR) continue;
        Status st = Errno("poll");
        ::close(fd);
        return st;
      }
      int err = 0;
      socklen_t err_len = sizeof(err);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len);
      if (err != 0) {
        ::close(fd);
        return Status::Internal("connect: ", std::strerror(err));
      }
    }
    if (::fcntl(fd, F_SETFL, flags) != 0) {
      Status st = Errno("fcntl");
      ::close(fd);
      return st;
    }
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status SetRecvTimeoutMs(int fd, uint64_t ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(SO_RCVTIMEO)");
  }
  return Status::OK();
}

Status SetSendTimeoutMs(int fd, uint64_t ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  if (::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(SO_SNDTIMEO)");
  }
  return Status::OK();
}

Status ReadFull(int fd, void* data, size_t size) {
  MEETXML_FAILPOINT("net.recv");
  char* at = static_cast<char*>(data);
  size_t got = 0;
  while (got < size) {
    ssize_t n = ::read(fd, at + got, size - got);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      return Status::UnexpectedEof("peer closed after ", got, " of ",
                                   size, " bytes");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // SO_RCVTIMEO expired (SetRecvTimeoutMs): a stalled peer, not a
      // transient hiccup — name it so callers can report "timed out".
      return Status::Unavailable("read timed out after ", got, " of ",
                                 size, " bytes");
    }
    return Errno("read");
  }
  return Status::OK();
}

Result<size_t> ReadSome(int fd, void* data, size_t cap) {
  MEETXML_FAILPOINT("net.recv");
  for (;;) {
    ssize_t n = ::read(fd, data, cap);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Unavailable("read timed out");
    }
    return Errno("read");
  }
}

Status WriteFull(int fd, std::string_view bytes) {
  MEETXML_FAILPOINT("net.send");
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
#if defined(MSG_NOSIGNAL)
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return Status::Unavailable("write timed out after ", sent, " of ",
                                 bytes.size(), " bytes");
    }
    return Errno("write");
  }
  return Status::OK();
}

void ShutdownRead(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RD);
}

void ShutdownSocket(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void CloseSocket(int fd) {
  if (fd >= 0) ::close(fd);
}

#else  // !MEETXML_HAVE_SOCKETS

namespace {
Status NoSockets() {
  return Status::NotImplemented("sockets are not available on this platform");
}
}  // namespace

Result<int> ListenTcp(uint16_t, int) { return NoSockets(); }
Result<uint16_t> LocalPort(int) { return NoSockets(); }
Result<int> AcceptConnection(int) { return NoSockets(); }
Result<int> ConnectTcp(const std::string&, uint16_t) { return NoSockets(); }
Result<int> ConnectTcp(const std::string&, uint16_t, uint64_t) {
  return NoSockets();
}
Status SetRecvTimeoutMs(int, uint64_t) { return NoSockets(); }
Status SetSendTimeoutMs(int, uint64_t) { return NoSockets(); }
Status ReadFull(int, void*, size_t) { return NoSockets(); }
Result<size_t> ReadSome(int, void*, size_t) { return NoSockets(); }
Status WriteFull(int, std::string_view) { return NoSockets(); }
void ShutdownRead(int) {}
void ShutdownSocket(int) {}
void CloseSocket(int) {}

#endif  // MEETXML_HAVE_SOCKETS

}  // namespace util
}  // namespace meetxml
