// Streaming top-k merge (store/multi_executor.h): equivalence pins
// against the legacy materialized path, heap edge cases, the
// early-termination proof via the rows-pruned accounting, the new
// truncated semantics, and the query.cursor failpoint.
//
// The determinism contract under test: a bounded ranked query's merged
// rows are byte-identical whether they come from the streaming
// k-bounded heap or the materialize-then-sort path, at any thread
// count — the streaming pipeline is a pure execution strategy, never a
// semantics change.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/dblp_gen.h"
#include "data/random_tree.h"
#include "model/shredder.h"
#include "obs/metrics.h"
#include "query/executor.h"
#include "query/parser.h"
#include "store/catalog.h"
#include "store/multi_executor.h"
#include "util/failpoint.h"
#include "xml/serializer.h"

namespace meetxml {
namespace {

using query::ExecuteOptions;
using store::Catalog;
using store::MultiExecutor;
using store::MultiResult;
using util::FailPoints;
using util::FailPointSpec;

// Eight DBLP-shaped bibliographies with distinct year ranges (the ab10
// corpus shape, smaller): plenty of meets per document, selective
// predicates available via venue/year strings.
Catalog DblpCatalog(int docs) {
  Catalog catalog;
  for (int i = 0; i < docs; ++i) {
    data::DblpOptions options;
    options.seed = 42 + static_cast<uint64_t>(i);
    options.start_year = 1980 + i;
    options.end_year = options.start_year + 1;
    options.icde_papers_per_year = 8;
    options.other_papers_per_year = 12;
    options.journal_articles_per_year = 6;
    auto generated = data::GenerateDblp(options);
    EXPECT_TRUE(generated.ok()) << generated.status();
    auto doc = model::Shred(*generated);
    EXPECT_TRUE(doc.ok()) << doc.status();
    auto added =
        catalog.Add("dblp_" + std::to_string(i), std::move(*doc));
    EXPECT_TRUE(added.ok()) << added.status();
  }
  return catalog;
}

// Random-tree corpus: irregular schemas, duplicate-ish text, meets at
// many identical distances — the tie-break stress case.
Catalog RandomTreeCatalog(int docs, uint64_t seed) {
  Catalog catalog;
  for (int i = 0; i < docs; ++i) {
    data::RandomTreeOptions options;
    options.seed = seed + static_cast<uint64_t>(i);
    options.target_elements = 300;
    options.tag_vocabulary = 5;
    options.text_prob = 0.6;
    auto generated = data::GenerateRandomTree(options);
    EXPECT_TRUE(generated.ok()) << generated.status();
    auto doc = model::Shred(*generated);
    EXPECT_TRUE(doc.ok()) << doc.status();
    auto added =
        catalog.Add("tree_" + std::to_string(i), std::move(*doc));
    EXPECT_TRUE(added.ok()) << added.status();
  }
  return catalog;
}

const char kDblpMeetQuery[] =
    "SELECT MEET(a, b) FROM dblp//cdata a, dblp//cdata b "
    "WHERE a CONTAINS 'ICDE' AND b CONTAINS '198' EXCLUDE dblp";

// ICONTAINS avoids the trigram anchor, so the predicate works on the
// random trees' generated words (single letters are common).
const char kTreeMeetQuery[] =
    "SELECT MEET(a, b) FROM *//cdata a, *//cdata b "
    "WHERE a ICONTAINS 'a' AND b ICONTAINS 'e'";

MultiResult MustExecute(const MultiExecutor& multi, const std::string& text,
                        const ExecuteOptions& options) {
  auto result = multi.ExecuteText("*", text, options);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? std::move(*result) : MultiResult{};
}

// The equivalence pin: streaming rows at 1/2/8 merge threads must be
// byte-identical to the materialized path's rows, flags included.
void ExpectStreamingMatchesMaterialized(const Catalog& catalog,
                                        const std::string& query) {
  MultiExecutor multi(&catalog);
  ExecuteOptions materialized;
  materialized.materialized_merge = true;
  materialized.merge_threads = 1;
  MultiResult reference = MustExecute(multi, query, materialized);

  for (unsigned threads : {1u, 2u, 8u}) {
    ExecuteOptions streaming;
    streaming.merge_threads = threads;
    MultiResult answer = MustExecute(multi, query, streaming);
    ASSERT_EQ(answer.columns, reference.columns) << threads << " threads";
    ASSERT_EQ(answer.rows, reference.rows) << threads << " threads";
    EXPECT_EQ(answer.truncated, reference.truncated)
        << threads << " threads";
    EXPECT_EQ(answer.rows_found, reference.rows_found)
        << threads << " threads";
  }
}

TEST(TopKEquivalence, StreamingMatchesMaterializedOnDblp) {
  Catalog catalog = DblpCatalog(8);
  for (int k : {1, 10, 100, 1000}) {
    ExpectStreamingMatchesMaterialized(
        catalog,
        std::string(kDblpMeetQuery) + " LIMIT " + std::to_string(k));
  }
}

TEST(TopKEquivalence, StreamingMatchesMaterializedOnRandomTrees) {
  for (uint64_t seed : {7u, 99u}) {
    Catalog catalog = RandomTreeCatalog(4, seed);
    for (int k : {1, 5, 50}) {
      ExpectStreamingMatchesMaterialized(
          catalog,
          std::string(kTreeMeetQuery) + " LIMIT " + std::to_string(k));
    }
  }
}

TEST(TopKEquivalence, DistanceBoundMatchesAcrossPathsAndThreads) {
  // WITHIN composes with the streaming merge: the d-meet bound filters
  // per-document candidates (including over-distance items that must
  // still consume their partners at unreported meets) while the shared
  // ceiling prunes globally. Rows, counts and flags must stay
  // byte-identical to the materialized path on deep irregular trees.
  Catalog catalog = RandomTreeCatalog(4, 7);
  for (int within : {4, 8}) {
    ExpectStreamingMatchesMaterialized(
        catalog, std::string(kTreeMeetQuery) + " WITHIN " +
                     std::to_string(within) + " LIMIT 25");
  }
}

TEST(TopKEquivalence, LimitHintBoundsARankedQueryWithoutLimit) {
  // The server-side shape: no LIMIT in the text, the byte cap arrives
  // as a hint. The streaming answer must match the materialized one
  // under the same hint.
  Catalog catalog = DblpCatalog(4);
  MultiExecutor multi(&catalog);

  ExecuteOptions materialized;
  materialized.materialized_merge = true;
  materialized.limit_hint = 7;
  MultiResult reference =
      MustExecute(multi, kDblpMeetQuery, materialized);

  ExecuteOptions streaming;
  streaming.limit_hint = 7;
  for (unsigned threads : {1u, 8u}) {
    streaming.merge_threads = threads;
    MultiResult answer = MustExecute(multi, kDblpMeetQuery, streaming);
    ASSERT_EQ(answer.rows, reference.rows) << threads << " threads";
    EXPECT_EQ(answer.rows.size(), 7u);
    // Hint truncation is real truncation: the answer is incomplete
    // relative to what the user asked for.
    EXPECT_TRUE(answer.truncated);
  }
}

TEST(TopKHeap, LimitZeroIsAnEmptyCompleteAnswer) {
  // LIMIT 0 used to leak through max_results' 0-means-unlimited
  // sentinel and return every meet; it must yield no rows.
  Catalog catalog = DblpCatalog(2);
  MultiExecutor multi(&catalog);
  auto result =
      multi.ExecuteText("*", std::string(kDblpMeetQuery) + " LIMIT 0");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->rows.empty());
  EXPECT_FALSE(result->truncated);
  // The short-circuit skips MeetGeneral entirely, so the per-document
  // answer counts are lower bounds only, never reported as exact.
  for (const store::DocumentResult& entry : result->per_document) {
    EXPECT_FALSE(entry.result.rows_found_exact);
  }
}

TEST(TopKHeap, LimitOneYieldsTheGlobalBestRow) {
  Catalog catalog = DblpCatalog(4);
  MultiExecutor multi(&catalog);
  ExecuteOptions materialized;
  materialized.materialized_merge = true;
  MultiResult reference = MustExecute(
      multi, std::string(kDblpMeetQuery) + " LIMIT 1000", materialized);
  ASSERT_FALSE(reference.rows.empty());

  auto best =
      multi.ExecuteText("*", std::string(kDblpMeetQuery) + " LIMIT 1");
  ASSERT_TRUE(best.ok()) << best.status();
  ASSERT_EQ(best->rows.size(), 1u);
  EXPECT_EQ(best->rows.front(), reference.rows.front());
}

TEST(TopKHeap, LimitBeyondTotalRowsIsCompleteAndUntruncated) {
  Catalog catalog = DblpCatalog(2);
  MultiExecutor multi(&catalog);
  auto result = multi.ExecuteText(
      "*", std::string(kDblpMeetQuery) + " LIMIT 100000");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_FALSE(result->rows.empty());
  EXPECT_EQ(result->rows.size(), result->rows_found);
  EXPECT_EQ(result->rows_found, result->rows_examined);
  EXPECT_EQ(result->rows_pruned, 0u);
  EXPECT_FALSE(result->truncated);
}

TEST(TopKHeap, DuplicateDistancesKeepTheDeterministicTieBreak) {
  // Random trees produce many meets at equal witness distances; the
  // pin is that ties resolve by (document index, row index) — the
  // legacy stable sort's order — at every thread count and exactly at
  // a k that cuts through a run of equal distances.
  Catalog catalog = RandomTreeCatalog(4, 21);
  MultiExecutor multi(&catalog);
  ExecuteOptions materialized;
  materialized.materialized_merge = true;
  MultiResult full = MustExecute(
      multi, std::string(kTreeMeetQuery) + " LIMIT 100000", materialized);
  ASSERT_GT(full.rows.size(), 4u);

  // Find a k that splits a duplicate-distance run (distance is column
  // 4 of the merged row: doc, meet, path, oid, distance, witnesses).
  size_t split = 0;
  for (size_t i = 1; i < full.rows.size(); ++i) {
    if (full.rows[i][4] == full.rows[i - 1][4]) {
      split = i;  // k = i cuts between two equal-distance rows
      break;
    }
  }
  ASSERT_GT(split, 0u) << "corpus produced no duplicate distances";

  for (unsigned threads : {1u, 2u, 8u}) {
    ExecuteOptions streaming;
    streaming.merge_threads = threads;
    MultiResult answer = MustExecute(
        multi,
        std::string(kTreeMeetQuery) + " LIMIT " + std::to_string(split),
        streaming);
    ASSERT_EQ(answer.rows.size(), split);
    for (size_t i = 0; i < split; ++i) {
      EXPECT_EQ(answer.rows[i], full.rows[i]) << "row " << i;
    }
  }
}

TEST(TopKEarlyTermination, SelectiveQueryExaminesStrictlyFewerRows) {
  // The pruning proof over 8 documents: with LIMIT 10, the streaming
  // path must materialize strictly fewer answers than full enumeration
  // finds, the difference must show up as rows_pruned, and the global
  // counter must advance by the same amount. Single merge thread keeps
  // the per-document pruning deterministic for the exact-delta check.
  Catalog catalog = DblpCatalog(8);
  MultiExecutor multi(&catalog);
  const std::string query = std::string(kDblpMeetQuery) + " LIMIT 10";

  ExecuteOptions materialized;
  materialized.materialized_merge = true;
  MultiResult full = MustExecute(multi, query, materialized);
  ASSERT_EQ(full.rows.size(), 10u);
  ASSERT_GT(full.rows_found, 10u)
      << "corpus too small to demonstrate pruning";
  EXPECT_EQ(full.rows_examined, full.rows_found);

  obs::Counter& pruned_total = obs::MetricsRegistry::Global().counter(
      "meetxml_query_rows_pruned_total");
  uint64_t before = pruned_total.Value();

  ExecuteOptions streaming;
  streaming.merge_threads = 1;
  MultiResult streamed = MustExecute(multi, query, streaming);
  ASSERT_EQ(streamed.rows, full.rows);
  EXPECT_EQ(streamed.rows_found, full.rows_found);
  EXPECT_LT(streamed.rows_examined, full.rows_examined);
  EXPECT_GT(streamed.rows_pruned, 0u);
  EXPECT_EQ(streamed.rows_found,
            streamed.rows_examined + streamed.rows_pruned);
  EXPECT_EQ(pruned_total.Value() - before, streamed.rows_pruned);
}

TEST(TopKPushdown, UnrankedLimitStopsRowProduction) {
  // Unranked projections get plain limit pushdown: the exact
  // cardinality is still reported, but only k rows are materialized
  // per document, and a satisfied LIMIT is not truncation.
  Catalog catalog = DblpCatalog(4);
  MultiExecutor multi(&catalog);
  auto result =
      multi.ExecuteText("*", "SELECT a FROM dblp//cdata a LIMIT 5");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows.size(), 5u);
  EXPECT_FALSE(result->truncated);
  EXPECT_GT(result->rows_found, 5u);
  for (const store::DocumentResult& entry : result->per_document) {
    EXPECT_LE(entry.result.rows.size(), 5u);
    EXPECT_TRUE(entry.result.rows_found_exact);
  }
  EXPECT_GT(result->rows_pruned, 0u);
}

TEST(TopKPushdown, PerDocumentCursorIsOrderedAndOwnsItsRows) {
  // The query-layer contract the store merge builds on: ExecuteRanked
  // yields rows in ascending distance, and TakeRow moves ownership.
  Catalog catalog = DblpCatalog(1);
  auto executor = catalog.ExecutorFor("dblp_0");
  ASSERT_TRUE(executor.ok());
  auto parsed =
      query::ParseQuery(std::string(kDblpMeetQuery) + " LIMIT 20");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  auto cursor = (*executor)->ExecuteRanked(*parsed);
  ASSERT_TRUE(cursor.ok()) << cursor.status();
  int last = -1;
  size_t rows = 0;
  while (!cursor->Done()) {
    EXPECT_GE(cursor->distance(), last);
    last = cursor->distance();
    std::vector<std::string> row = cursor->TakeRow();
    ASSERT_EQ(row.size(), 5u);
    ++rows;
  }
  EXPECT_GT(rows, 0u);
  EXPECT_LE(rows, 20u);
  query::QueryResult rest = std::move(*cursor).Consume();
  EXPECT_TRUE(rest.rows.empty());
  EXPECT_GE(rest.rows_found, rows);
}

class TopKFailPointTest : public ::testing::Test {
 protected:
  void SetUp() override { FailPoints::Reset(); }
  void TearDown() override { FailPoints::Reset(); }
};

TEST_F(TopKFailPointTest, CursorErrorMidStreamIsCleanNotPartial) {
  // One document failing partway through a streaming fan-out must
  // surface as a whole-query error — never a partial merged answer.
  Catalog catalog = DblpCatalog(4);
  MultiExecutor multi(&catalog);
  const std::string query = std::string(kDblpMeetQuery) + " LIMIT 10";

  FailPointSpec spec;
  spec.code = util::StatusCode::kUnavailable;
  spec.skip = 1;   // first document's cursor opens fine...
  spec.count = 1;  // ...the second errors mid-stream
  ASSERT_TRUE(FailPoints::Arm("query.cursor", spec).ok());

  ExecuteOptions streaming;
  streaming.merge_threads = 1;
  auto result = multi.ExecuteText("*", query, streaming);
  if (!FailPoints::enabled()) {
    // Production build: sites compile to nothing; the query succeeds.
    EXPECT_TRUE(result.ok()) << result.status();
    GTEST_SKIP() << "failpoint sites not compiled in";
  }
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kUnavailable);
  EXPECT_NE(result.status().message().find("query.cursor"),
            std::string::npos);

  // Disarmed, the same query completes and matches the materialized
  // answer — the failure left no state behind.
  FailPoints::Reset();
  ExecuteOptions materialized;
  materialized.materialized_merge = true;
  MultiResult reference = MustExecute(multi, query, materialized);
  MultiResult retry = MustExecute(multi, query, streaming);
  EXPECT_EQ(retry.rows, reference.rows);
}

}  // namespace
}  // namespace meetxml
