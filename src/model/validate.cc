#include "model/validate.h"

#include <algorithm>
#include <span>
#include <vector>

namespace meetxml {
namespace model {

using util::Status;

Status ValidateStorageColumns(const StoredDocument& doc) {
  size_t n = doc.node_count();
  if (n == 0) {
    return Status::InvalidArgument("document has no nodes");
  }
  // Append-sequence permutation bitmap: every string row's global
  // sequence number in [0, string_count), no duplicates.
  std::vector<bool> seq_seen(doc.string_count(), false);
  for (PathId path : doc.string_paths()) {
    const OidStrBat& table = doc.StringsAt(path);
    std::span<const Oid> owners = table.heads();
    for (Oid owner : owners) {
      if (owner >= n) {
        return Status::InvalidArgument("string relation ", path,
                                       ": owner OID out of range");
      }
    }
    std::span<const uint32_t> ends = table.tail_ends();
    uint32_t previous = 0;
    for (uint32_t end : ends) {
      if (end < previous) {
        return Status::InvalidArgument("string relation ", path,
                                       ": end offsets not monotonic");
      }
      previous = end;
    }
    if (!ends.empty() && ends.back() != table.tail_blob().size()) {
      return Status::InvalidArgument(
          "string relation ", path,
          ": blob size does not match the last offset");
    }
    for (uint32_t seq : doc.StringSeqAt(path)) {
      if (seq >= seq_seen.size()) {
        return Status::InvalidArgument("string relation ", path,
                                       ": sequence value out of range");
      }
      if (seq_seen[seq]) {
        return Status::InvalidArgument("string relation ", path,
                                       ": duplicate sequence value ", seq);
      }
      seq_seen[seq] = true;
    }
  }
  return Status::OK();
}

Status ValidateDerivedStructures(const StoredDocument& doc) {
  if (!doc.finalized()) {
    return Status::InvalidArgument("document is not finalized");
  }
  size_t n = doc.node_count();
  if (n == 0) {
    return Status::InvalidArgument("document has no nodes");
  }

  // --- Children CSR, against the raw spans ---------------------------
  std::span<const uint32_t> offsets = doc.child_offsets();
  std::span<const Oid> list = doc.child_list();
  if (offsets.size() != n + 1 || list.size() != n - 1) {
    return Status::InvalidArgument("children CSR has wrong frame sizes");
  }
  if (offsets[0] != 0 || offsets[n] != n - 1) {
    return Status::InvalidArgument("children CSR offsets do not span "
                                   "the child list");
  }
  std::vector<bool> child_seen(n, false);
  for (size_t node = 0; node < n; ++node) {
    uint32_t begin = offsets[node];
    uint32_t end = offsets[node + 1];
    if (end < begin || end > list.size()) {
      return Status::InvalidArgument("children CSR offsets not monotonic");
    }
    Oid previous = 0;
    for (uint32_t idx = begin; idx < end; ++idx) {
      Oid child = list[idx];
      if (child == 0 || child >= n) {
        return Status::InvalidArgument("children CSR lists OID ", child,
                                       " out of range");
      }
      if (doc.parent(child) != static_cast<Oid>(node)) {
        return Status::InvalidArgument("children CSR lists ", child,
                                       " under a node that is not its "
                                       "parent");
      }
      if (idx > begin && child <= previous) {
        // Finalize's counting sort emits each parent's children in
        // ascending OID (document) order; anything else would
        // re-serialize differently than it loaded.
        return Status::InvalidArgument("children CSR not in document "
                                       "order under node ", node);
      }
      previous = child;
      if (child_seen[child]) {
        return Status::InvalidArgument("children CSR lists ", child,
                                       " twice");
      }
      child_seen[child] = true;
    }
  }
  for (Oid oid = 1; oid < n; ++oid) {
    if (!child_seen[oid]) {
      return Status::InvalidArgument("children CSR misses node ", oid);
    }
  }

  // --- Per-path edge relations ---------------------------------------
  std::vector<bool> edge_seen(n, false);
  size_t edge_total = 0;
  Oid previous_first = 0;
  bool have_previous_first = false;
  for (PathId path : doc.edge_paths()) {
    const bat::OidOidBat& edges = doc.EdgesAt(path);
    if (edges.empty()) {
      return Status::InvalidArgument("edge relation ", path, " is empty");
    }
    std::span<const Oid> heads = edges.heads();
    std::span<const Oid> tails = edges.tails();
    if (have_previous_first && tails[0] <= previous_first) {
      // edge_paths_ is first-appearance order, and tails are document
      // order, so group first-OIDs must strictly ascend.
      return Status::InvalidArgument(
          "edge relations not in first-appearance order");
    }
    previous_first = tails[0];
    have_previous_first = true;
    for (size_t row = 0; row < tails.size(); ++row) {
      Oid child = tails[row];
      if (child >= n) {
        return Status::InvalidArgument("edge relation ", path,
                                       ": node OID out of range");
      }
      if (row > 0 && child <= tails[row - 1]) {
        return Status::InvalidArgument("edge relation ", path,
                                       ": rows not in document order");
      }
      if (doc.path(child) != path) {
        return Status::InvalidArgument("edge relation ", path,
                                       ": node has a different path");
      }
      if (heads[row] != doc.parent(child)) {
        return Status::InvalidArgument("edge relation ", path,
                                       ": head is not the node's parent");
      }
      if (edge_seen[child]) {
        return Status::InvalidArgument("node ", child,
                                       " appears in two edge relations");
      }
      edge_seen[child] = true;
      ++edge_total;
    }
  }
  if (edge_total != n) {
    return Status::InvalidArgument("edge relations cover ", edge_total,
                                   " nodes, expected ", n);
  }

  // --- String sortedness flags ---------------------------------------
  for (PathId path : doc.string_paths()) {
    std::span<const Oid> owners = doc.StringsAt(path).heads();
    bool sorted = std::is_sorted(owners.begin(), owners.end());
    if (doc.StringRelationSorted(path) != sorted) {
      return Status::InvalidArgument(
          "string relation ", path,
          ": persisted sortedness flag does not match the owner column");
    }
  }
  return Status::OK();
}

Status ValidateDocument(const StoredDocument& doc) {
  if (!doc.finalized()) {
    return Status::InvalidArgument("document is not finalized");
  }
  if (doc.node_count() == 0) {
    return Status::InvalidArgument("document has no nodes");
  }
  const PathSummary& paths = doc.paths();

  // --- Path summary ----------------------------------------------------
  for (PathId id = 0; id < paths.size(); ++id) {
    PathId parent = paths.parent(id);
    if (parent == bat::kInvalidPathId) {
      if (paths.depth(id) != 1) {
        return Status::Internal("path ", id, ": root path with depth ",
                                paths.depth(id));
      }
      continue;
    }
    if (parent >= id) {
      return Status::Internal("path ", id,
                              ": parent not interned before child");
    }
    if (paths.depth(id) != paths.depth(parent) + 1) {
      return Status::Internal("path ", id, ": depth mismatch");
    }
    if (paths.kind(parent) != StepKind::kElement) {
      return Status::Internal("path ", id,
                              ": parent path is not an element path");
    }
  }

  // --- Node columns ------------------------------------------------------
  if (doc.parent(doc.root()) != bat::kInvalidOid) {
    return Status::Internal("root node has a parent");
  }
  for (Oid oid = 1; oid < doc.node_count(); ++oid) {
    Oid parent = doc.parent(oid);
    if (parent == bat::kInvalidOid || parent >= oid) {
      return Status::Internal("node ", oid,
                              ": parent OID does not precede it");
    }
    if (paths.parent(doc.path(oid)) != doc.path(parent)) {
      return Status::Internal("node ", oid,
                              ": path parent does not match node parent");
    }
    if (doc.depth(oid) != doc.depth(parent) + 1) {
      return Status::Internal("node ", oid, ": depth mismatch");
    }
  }

  // --- Children CSR --------------------------------------------------------
  size_t child_total = 0;
  for (Oid oid = 0; oid < doc.node_count(); ++oid) {
    int last_rank = -1;
    for (Oid kid : doc.children(oid)) {
      if (kid >= doc.node_count() || doc.parent(kid) != oid) {
        return Status::Internal("node ", oid, ": stray child ", kid);
      }
      if (doc.rank(kid) < last_rank) {
        return Status::Internal("node ", oid,
                                ": children out of rank order");
      }
      last_rank = doc.rank(kid);
      ++child_total;
    }
  }
  if (child_total != doc.node_count() - 1) {
    return Status::Internal("children CSR covers ", child_total,
                            " nodes, expected ", doc.node_count() - 1);
  }

  // --- Edge relations --------------------------------------------------------
  std::vector<bool> seen(doc.node_count(), false);
  for (PathId path : doc.edge_paths()) {
    if (paths.kind(path) == StepKind::kAttribute) {
      return Status::Internal("attribute path ", path,
                              " owns an edge relation");
    }
    const OidOidBat& edges = doc.EdgesAt(path);
    for (size_t row = 0; row < edges.size(); ++row) {
      Oid child = edges.tail(row);
      if (child >= doc.node_count()) {
        return Status::Internal("edge relation ", path,
                                ": child OID out of range");
      }
      if (doc.path(child) != path) {
        return Status::Internal("edge relation ", path,
                                ": child has a different path");
      }
      if (edges.head(row) != doc.parent(child)) {
        return Status::Internal("edge relation ", path,
                                ": head is not the child's parent");
      }
      if (seen[child]) {
        return Status::Internal("node ", child,
                                " appears in two edge relations");
      }
      seen[child] = true;
    }
  }
  for (Oid oid = 0; oid < doc.node_count(); ++oid) {
    if (!seen[oid]) {
      return Status::Internal("node ", oid, " missing from edge relations");
    }
  }

  // --- String relations ---------------------------------------------------------
  std::vector<int> cdata_strings(doc.node_count(), 0);
  size_t string_total = 0;
  for (PathId path : doc.string_paths()) {
    StepKind kind = paths.kind(path);
    if (kind == StepKind::kElement) {
      return Status::Internal("element path ", path,
                              " owns a string relation");
    }
    const OidStrBat& table = doc.StringsAt(path);
    for (size_t row = 0; row < table.size(); ++row) {
      Oid owner = table.head(row);
      if (owner >= doc.node_count()) {
        return Status::Internal("string relation ", path,
                                ": owner OID out of range");
      }
      if (kind == StepKind::kCdata) {
        if (doc.path(owner) != path) {
          return Status::Internal("string relation ", path,
                                  ": cdata string owned by foreign node");
        }
        ++cdata_strings[owner];
      } else {  // attribute
        if (doc.path(owner) != paths.parent(path)) {
          return Status::Internal(
              "string relation ", path,
              ": attribute owned by node of a different element path");
        }
      }
      ++string_total;
    }
  }
  if (string_total != doc.string_count()) {
    return Status::Internal("string relations hold ", string_total,
                            " rows, expected ", doc.string_count());
  }
  for (Oid oid = 0; oid < doc.node_count(); ++oid) {
    if (doc.is_cdata(oid) && cdata_strings[oid] != 1) {
      return Status::Internal("cdata node ", oid, " has ",
                              cdata_strings[oid],
                              " string associations, expected 1");
    }
  }
  return Status::OK();
}

}  // namespace model
}  // namespace meetxml
