// Word tokenizer for the full-text index.

#ifndef MEETXML_TEXT_TOKENIZER_H_
#define MEETXML_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace meetxml {
namespace text {

/// \brief Tokenization knobs.
struct TokenizerOptions {
  /// Tokens shorter than this are dropped (after case folding).
  size_t min_token_length = 1;
  /// Fold ASCII upper case to lower case.
  bool fold_case = true;
};

/// \brief Splits `s` into maximal runs of ASCII alphanumeric characters.
/// Everything else (punctuation, whitespace, non-ASCII bytes) separates
/// tokens. "Hacking & RSI" -> {"hacking", "rsi"}.
std::vector<std::string> Tokenize(std::string_view s,
                                  const TokenizerOptions& options = {});

/// \brief Tokenizes and deduplicates (set-of-words semantics, the form
/// the inverted index stores).
std::vector<std::string> TokenizeUnique(std::string_view s,
                                        const TokenizerOptions& options = {});

/// \brief True when the default-folded tokens of `value` contain
/// `phrase_tokens` as a consecutive run (phrase-match semantics).
bool MatchesPhrase(std::string_view value,
                   const std::vector<std::string>& phrase_tokens);

}  // namespace text
}  // namespace meetxml

#endif  // MEETXML_TEXT_TOKENIZER_H_
