// Persistent store: bulk-load once, query forever.
//
// Demonstrates the storage_io module: generates a bibliography, shreds
// it, saves the binary image, reloads it, and shows that reload is far
// cheaper than re-parsing the XML — the workflow of the paper's case
// study ("We prepared the bibliography by bulk loading it into Monet
// XML") made durable.
//
// Run:  ./persistent_store [store.mxm]

#include <cstdio>
#include <string>

#include "data/dblp_gen.h"
#include "model/shredder.h"
#include "model/stats.h"
#include "model/storage_io.h"
#include "query/executor.h"
#include "util/timer.h"
#include "xml/serializer.h"

using namespace meetxml;  // example code; the library itself never does this

int main(int argc, char** argv) {
  std::string store_path = argc > 1 ? argv[1] : "/tmp/meetxml_store.mxm";

  // 1. Generate the corpus and its XML text.
  data::DblpOptions options;
  options.icde_papers_per_year = 40;
  options.other_papers_per_year = 120;
  options.journal_articles_per_year = 40;
  auto generated = data::GenerateDblp(options);
  MEETXML_CHECK_OK(generated.status());
  xml::SerializeOptions serialize_options;
  serialize_options.indent = 1;
  std::string xml_text = xml::Serialize(*generated, serialize_options);

  // 2. Bulk load from XML (the expensive path).
  util::Timer timer;
  auto doc = model::ShredXmlText(xml_text);
  MEETXML_CHECK_OK(doc.status());
  double parse_ms = timer.ElapsedMillis();

  // 3. Persist.
  timer.Reset();
  MEETXML_CHECK_OK(model::SaveToFile(*doc, store_path));
  double save_ms = timer.ElapsedMillis();

  // 4. Reload (the cheap path).
  timer.Reset();
  auto reloaded = model::LoadFromFile(store_path);
  MEETXML_CHECK_OK(reloaded.status());
  double load_ms = timer.ElapsedMillis();

  std::printf("XML size:      %.1f MB\n",
              static_cast<double>(xml_text.size()) / 1e6);
  std::printf("parse+shred:   %.1f ms\n", parse_ms);
  std::printf("save image:    %.1f ms -> %s\n", save_ms,
              store_path.c_str());
  std::printf("reload image:  %.1f ms (%.1fx faster than re-parsing)\n\n",
              load_ms, parse_ms / load_ms);

  // 5. The reloaded store answers queries.
  auto stats = model::ComputeStats(*reloaded);
  MEETXML_CHECK_OK(stats.status());
  std::printf("Reloaded store catalog (top relations):\n%s\n",
              model::RenderStats(*stats, 5).c_str());

  auto executor = query::Executor::Build(*reloaded);
  MEETXML_CHECK_OK(executor.status());
  auto result = executor->ExecuteText(
      "SELECT MEET(a, b) FROM dblp//cdata a, dblp//cdata b "
      "WHERE a CONTAINS 'ICDE' AND b CONTAINS '1995' "
      "EXCLUDE dblp LIMIT 5");
  MEETXML_CHECK_OK(result.status());
  std::printf("Query against the reloaded store:\n%s",
              result->ToText().c_str());
  return 0;
}
