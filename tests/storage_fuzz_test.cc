// Fuzz-style corruption tests for the storage image loader: every
// truncation, every single-byte flip and a battery of crafted headers
// must be rejected cleanly (no crash, no partially applied document)
// for both MXM1 and MXM2 images — the teeth behind the versioning
// policy documented in model/storage_io.h.

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/paper_example.h"
#include "model/storage_io.h"
#include "store/catalog.h"
#include "util/byte_io.h"
#include "util/file_io.h"
#include "text/index_io.h"
#include "text/inverted_index.h"
#include "tests/test_util.h"

namespace meetxml {
namespace model {
namespace {

using meetxml::testing::MustShred;

// Fuzz parameter: the low byte is the image flavor — 1 = MXM1, 2 =
// MXM2 with the row-oriented DOC0 payload, 4 = MXM2 with the unaligned
// columnar DOC1 payload, 5 = MXM2 with the aligned columnar DOC2
// payload, 6 = MXM2 with DOC2 plus the persisted DRV1 derived section
// and the trailing directory (the low byte doubles as the expected
// minor revision of the emitted image). The kViewMode bit runs the
// same sweep through a zero-copy (kView) load: a corrupt image must
// fail decode in view mode exactly as in copy mode — never yield a
// span past the mapping.
constexpr uint32_t kViewMode = 0x100;

std::string Image(uint32_t param) {
  uint32_t flavor = param & 0xff;
  StoredDocument doc = MustShred(data::PaperExampleXml());
  SaveOptions options;
  options.format_version = flavor == 1 ? 1 : 2;
  options.payload_format =
      flavor >= 5   ? DocumentPayloadFormat::kColumnar
      : flavor == 4 ? DocumentPayloadFormat::kColumnarUnaligned
                    : DocumentPayloadFormat::kRowOriented;
  options.derived_section = flavor == 6;
  auto bytes = SaveToBytes(doc, options);
  EXPECT_TRUE(bytes.ok()) << bytes.status();
  return *bytes;
}

util::Result<StoredDocument> Load(uint32_t param, std::string_view bytes) {
  LoadOptions options;
  if ((param & kViewMode) != 0) options.mode = LoadMode::kView;
  return LoadFromBytes(bytes, options);
}

class StorageFuzz : public ::testing::TestWithParam<uint32_t> {};

TEST_P(StorageFuzz, EveryTruncationFails) {
  std::string bytes = Image(GetParam());
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    auto loaded =
        Load(GetParam(), std::string_view(bytes).substr(0, cut));
    EXPECT_FALSE(loaded.ok()) << "cut at " << cut << " of " << bytes.size();
  }
}

TEST_P(StorageFuzz, EveryByteFlipFails) {
  // In a doc-only image every byte is load-bearing: magic, version and
  // directory flips trip structural checks, payload flips trip the
  // section checksum. Flip every byte through three masks. The one
  // legal exception: an MXM2 image's minor-field flip can land on
  // another accepted minor (2 <-> 3, 4 <-> 5 — minors are backward
  // compatible by policy and a single-section image tiles identically
  // under both), in which case the load must succeed with the
  // document fully intact.
  StoredDocument original = MustShred(data::PaperExampleXml());
  std::string bytes = Image(GetParam());
  for (uint8_t mask : {0x01, 0x40, 0xff}) {
    for (size_t at = 0; at < bytes.size(); ++at) {
      std::string corrupt = bytes;
      corrupt[at] = static_cast<char>(corrupt[at] ^ mask);
      auto loaded = Load(GetParam(), corrupt);
      bool minor_field =
          (GetParam() & 0xff) != 1 && at >= 4 && at < 8;
      if (loaded.ok()) {
        EXPECT_TRUE(minor_field)
            << "flip mask " << int(mask) << " at " << at;
        EXPECT_EQ(loaded->node_count(), original.node_count());
        EXPECT_EQ(loaded->string_count(), original.string_count());
      }
    }
  }
}

TEST_P(StorageFuzz, PseudoRandomMutationsNeverCrash) {
  // Deterministic LCG mutations: multi-byte scribbles anywhere in the
  // image. Anything but a clean error is a bug; loads must never
  // crash, hang or hand back a half-built document.
  std::string bytes = Image(GetParam());
  uint64_t state = 0x9e3779b97f4a7c15ULL + GetParam();
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  for (int round = 0; round < 500; ++round) {
    std::string corrupt = bytes;
    size_t edits = 1 + next() % 8;
    for (size_t e = 0; e < edits; ++e) {
      corrupt[next() % corrupt.size()] =
          static_cast<char>(next() & 0xff);
    }
    auto loaded = Load(GetParam(), corrupt);
    if (loaded.ok()) {
      // Only reachable if the scribbles reproduced the original bytes;
      // a loaded document is always fully finalized.
      EXPECT_TRUE(loaded->finalized());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Formats, StorageFuzz,
    ::testing::Values(1u, 2u, 4u, 5u, 6u, kViewMode | 4u, kViewMode | 5u,
                      kViewMode | 6u),
    [](const auto& info) -> std::string {
      uint32_t flavor = info.param & 0xff;
      std::string name = flavor == 1   ? "MXM1"
                         : flavor == 2 ? "MXM2DOC0"
                         : flavor == 4 ? "MXM2DOC1"
                         : flavor == 5 ? "MXM2DOC2"
                                       : "MXM2DRV1";
      if ((info.param & kViewMode) != 0) name += "View";
      return name;
    });

TEST(StorageFuzzCrafted, BadMagicAndHeaders) {
  EXPECT_FALSE(LoadFromBytes("").ok());
  EXPECT_FALSE(LoadFromBytes("MXM").ok());
  EXPECT_FALSE(LoadFromBytes("MXM3????????????").ok());
  EXPECT_FALSE(LoadFromBytes(std::string("MXM2") +
                             std::string(8, '\0'))
                   .ok());  // version 0
  std::string zero_sections = "MXM2";
  zero_sections += std::string{2, 0, 0, 0};  // version 2
  zero_sections += std::string(4, '\0');     // zero sections
  EXPECT_FALSE(LoadFromBytes(zero_sections).ok());
  // Huge section count must be rejected before any allocation.
  std::string huge = "MXM2";
  huge += std::string{2, 0, 0, 0};              // version 2
  huge += std::string{'\xff', '\xff', '\xff', '\xff'};  // section count
  EXPECT_FALSE(LoadFromBytes(huge).ok());
}

TEST(StorageFuzzCrafted, WriterRejectsUnloadableSectionSets) {
  // Images the loader would refuse must fail at save time, not at the
  // next restart. Both document section ids are off-limits as extras.
  StoredDocument doc = MustShred("<a><b>x</b></a>");
  SaveOptions dup_doc;
  dup_doc.extra_sections.push_back(ImageSection{kDocumentSectionId, "x"});
  EXPECT_FALSE(SaveToBytes(doc, dup_doc).ok());

  SaveOptions dup_columnar;
  dup_columnar.extra_sections.push_back(
      ImageSection{kColumnarDocumentSectionId, "x"});
  EXPECT_FALSE(SaveToBytes(doc, dup_columnar).ok());

  SaveOptions dup_id;
  dup_id.extra_sections.push_back(ImageSection{kTextIndexSectionId, "x"});
  dup_id.extra_sections.push_back(ImageSection{kTextIndexSectionId, "y"});
  EXPECT_FALSE(SaveToBytes(doc, dup_id).ok());
}

// --- Crafted DOC1/DOC2 payload corruptions ----------------------------
//
// The columnar codecs trust nothing: every field below is handcrafted
// so one structural invariant at a time can be broken — offsets out of
// bounds, blobs shorter than the last offset, an append-order column
// that is not a permutation — and the loader must reject each image
// cleanly, never applying it partially. Each corruption is pushed
// through both codecs (DOC1 unaligned, DOC2 aligned) and both load
// modes (copy and zero-copy view): a bad image must fail identically
// everywhere, and a view-mode decode must never hand out a span past
// the mapping.

// A two-node document (<a>xyz</a>): element path 0, cdata path 1, one
// string. Every knob overrides one field of the valid encoding.
struct Doc1Knobs {
  std::vector<uint32_t> parents{0xffffffffu, 0};
  std::vector<uint32_t> node_paths{0, 1};
  std::vector<uint32_t> ranks{0, 0};
  uint32_t total_strings = 1;
  uint32_t group_count = 1;
  std::vector<uint32_t> group_paths{1};
  std::vector<std::vector<uint32_t>> owners{{1}};
  std::vector<std::vector<uint32_t>> seqs{{0}};
  std::vector<std::vector<uint32_t>> ends{{3}};
  std::vector<std::string> blobs{"xyz"};
  std::string trailing;
};

std::string CraftColumnarImage(const Doc1Knobs& knobs, bool aligned) {
  util::ByteWriter payload;
  // Path summary: 0 = element "a" (root), 1 = cdata below it.
  payload.U32(2);
  payload.U32(0xffffffffu);
  payload.U8(0);  // StepKind::kElement
  payload.StrU32("a");
  payload.U32(0);
  payload.U8(2);  // StepKind::kCdata
  payload.StrU32("cdata");
  if (aligned) payload.AlignTo4();
  // Node columns.
  payload.U32(static_cast<uint32_t>(knobs.parents.size()));
  for (uint32_t v : knobs.parents) payload.U32(v);
  for (uint32_t v : knobs.node_paths) payload.U32(v);
  for (uint32_t v : knobs.ranks) payload.U32(v);
  // String groups.
  payload.U32(knobs.total_strings);
  payload.U32(knobs.group_count);
  for (size_t g = 0; g < knobs.group_paths.size(); ++g) {
    payload.U32(knobs.group_paths[g]);
    payload.U32(static_cast<uint32_t>(knobs.owners[g].size()));
    for (uint32_t v : knobs.owners[g]) payload.U32(v);
    for (uint32_t v : knobs.seqs[g]) payload.U32(v);
    for (uint32_t v : knobs.ends[g]) payload.U32(v);
    payload.Bytes(knobs.blobs[g]);
    if (aligned) payload.AlignTo4();
  }
  payload.Bytes(knobs.trailing);
  auto image = SaveSectionsToBytes(
      {ImageSection{aligned ? kAlignedColumnarDocumentSectionId
                            : kColumnarDocumentSectionId,
                    payload.Take()}},
      aligned ? 5 : 4);
  EXPECT_TRUE(image.ok()) << image.status();
  return *image;
}

// The corruption must be rejected by both codecs in both load modes.
void ExpectCraftedRejected(const Doc1Knobs& knobs, const char* what) {
  for (bool aligned : {false, true}) {
    std::string image = CraftColumnarImage(knobs, aligned);
    for (LoadMode mode : {LoadMode::kCopy, LoadMode::kView}) {
      LoadOptions options;
      options.mode = mode;
      EXPECT_FALSE(LoadFromBytes(image, options).ok())
          << what << " (aligned=" << aligned
          << ", view=" << (mode == LoadMode::kView) << ")";
    }
  }
}

TEST(StorageFuzzCrafted, CraftedColumnarBaselinesLoad) {
  // The untampered encodings must load — otherwise the corruption
  // cases below would pass for the wrong reason.
  for (bool aligned : {false, true}) {
    for (LoadMode mode : {LoadMode::kCopy, LoadMode::kView}) {
      LoadOptions options;
      options.mode = mode;
      std::string image = CraftColumnarImage(Doc1Knobs{}, aligned);
      auto loaded = LoadFromBytes(image, options);
      ASSERT_TRUE(loaded.ok()) << loaded.status();
      EXPECT_EQ(loaded->node_count(), 2u);
      EXPECT_EQ(loaded->string_count(), 1u);
      EXPECT_EQ(loaded->CdataValue(1), "xyz");
    }
  }

  // And each is bit-identical to what the writer emits for the same
  // document, pinning the crafted encodings to the real codecs.
  SaveOptions unaligned_options;
  unaligned_options.payload_format =
      DocumentPayloadFormat::kColumnarUnaligned;
  auto written_doc1 = SaveToBytes(MustShred("<a>xyz</a>"), unaligned_options);
  ASSERT_TRUE(written_doc1.ok());
  EXPECT_EQ(CraftColumnarImage(Doc1Knobs{}, false), *written_doc1);
  SaveOptions doc2_options;  // plain DOC2 without the DRV1 companion
  doc2_options.derived_section = false;
  auto written_doc2 = SaveToBytes(MustShred("<a>xyz</a>"), doc2_options);
  ASSERT_TRUE(written_doc2.ok());
  EXPECT_EQ(CraftColumnarImage(Doc1Knobs{}, true), *written_doc2);
}

TEST(StorageFuzzCrafted, ColumnarRejectsBadNodeColumns) {
  {
    Doc1Knobs knobs;  // non-root node whose parent does not precede it
    knobs.parents = {0xffffffffu, 1};
    ExpectCraftedRejected(knobs, "parent after child");
  }
  {
    Doc1Knobs knobs;  // node 0 with a parent
    knobs.parents = {0, 0};
    ExpectCraftedRejected(knobs, "rooted root");
  }
  {
    Doc1Knobs knobs;  // node path beyond the path summary
    knobs.node_paths = {0, 9};
    ExpectCraftedRejected(knobs, "node path out of range");
  }
}

TEST(StorageFuzzCrafted, ColumnarRejectsBadStringColumns) {
  {
    Doc1Knobs knobs;  // owner beyond the node count
    knobs.owners = {{5}};
    ExpectCraftedRejected(knobs, "owner out of range");
  }
  {
    Doc1Knobs knobs;  // group path beyond the path summary
    knobs.group_paths = {7};
    ExpectCraftedRejected(knobs, "group path out of range");
  }
  {
    Doc1Knobs knobs;  // empty group
    knobs.owners = {{}};
    knobs.seqs = {{}};
    knobs.ends = {{}};
    knobs.blobs = {""};
    ExpectCraftedRejected(knobs, "empty group");
  }
  {
    Doc1Knobs knobs;  // the same path adopted by two groups
    knobs.total_strings = 2;
    knobs.group_count = 2;
    knobs.group_paths = {1, 1};
    knobs.owners = {{1}, {1}};
    knobs.seqs = {{0}, {1}};
    knobs.ends = {{3}, {3}};
    knobs.blobs = {"xyz", "xyz"};
    ExpectCraftedRejected(knobs, "path adopted twice");
  }
}

TEST(StorageFuzzCrafted, ColumnarRejectsBadOffsets) {
  {
    Doc1Knobs knobs;  // offsets run out of the payload: blob shorter
    knobs.ends = {{100}};  // than the last offset claims
    ExpectCraftedRejected(knobs, "blob shorter than last offset");
  }
  {
    Doc1Knobs knobs;  // offsets not monotonic
    knobs.total_strings = 2;
    knobs.owners = {{1, 1}};
    knobs.seqs = {{0, 1}};
    knobs.ends = {{2, 1}};
    knobs.blobs = {"x"};
    ExpectCraftedRejected(knobs, "non-monotonic offsets");
  }
}

TEST(StorageFuzzCrafted, ColumnarRejectsBrokenPermutation) {
  {
    Doc1Knobs knobs;  // seq beyond the global string count
    knobs.seqs = {{4}};
    ExpectCraftedRejected(knobs, "seq out of range");
  }
  {
    Doc1Knobs knobs;  // duplicate seq value
    knobs.total_strings = 2;
    knobs.owners = {{1, 1}};
    knobs.seqs = {{0, 0}};
    knobs.ends = {{1, 2}};
    knobs.blobs = {"ab"};
    ExpectCraftedRejected(knobs, "duplicate seq");
  }
  {
    Doc1Knobs knobs;  // declared count larger than the rows delivered
    knobs.total_strings = 2;
    ExpectCraftedRejected(knobs, "undelivered rows");
  }
}

TEST(StorageFuzzCrafted, ColumnarRejectsTrailingPayloadBytes) {
  Doc1Knobs knobs;
  knobs.trailing.push_back('x');
  ExpectCraftedRejected(knobs, "trailing payload bytes");
}

TEST(StorageFuzzCrafted, Doc2RejectsNonzeroAlignmentPadding) {
  // DOC2's padding bytes are part of the checksummed payload, so they
  // must be byte-deterministic: a nonzero pad is corruption. Craft the
  // aligned baseline and scribble on the padding after the final blob
  // (the 3-byte "xyz" blob leaves exactly one pad byte at the end of
  // the payload).
  std::string image = CraftColumnarImage(Doc1Knobs{}, /*aligned=*/true);
  auto sections = LoadSectionsFromBytes(image);
  ASSERT_TRUE(sections.ok());
  ASSERT_EQ(sections->sections.size(), 1u);
  std::string payload(sections->sections[0].bytes);
  ASSERT_EQ(payload.size() % 4, 0u);
  ASSERT_EQ(payload.back(), '\0');
  payload.back() = 'x';
  auto tampered = SaveSectionsToBytes(
      {ImageSection{kAlignedColumnarDocumentSectionId, payload}}, 5);
  ASSERT_TRUE(tampered.ok());
  for (LoadMode mode : {LoadMode::kCopy, LoadMode::kView}) {
    LoadOptions options;
    options.mode = mode;
    EXPECT_FALSE(LoadFromBytes(*tampered, options).ok());
  }
}

TEST(StorageFuzzCrafted, BadSectionLengths) {
  StoredDocument doc = MustShred(data::PaperExampleXml());
  auto index = text::InvertedIndex::Build(doc);
  ASSERT_TRUE(index.ok());
  auto bytes = text::SaveStoreToBytes(doc, &*index);
  ASSERT_TRUE(bytes.ok());

  // The DOC0 size field lives at offset 4+4+4+4 = 16 (u64). Growing or
  // shrinking it must fail: either the payloads no longer tile the
  // image or a checksum breaks.
  for (int64_t delta : {-1000, -1, 1, 1000}) {
    std::string corrupt = *bytes;
    uint64_t size;
    std::memcpy(&size, corrupt.data() + 16, 8);
    size = static_cast<uint64_t>(static_cast<int64_t>(size) + delta);
    std::memcpy(corrupt.data() + 16, &size, 8);
    EXPECT_FALSE(LoadFromBytes(corrupt).ok()) << "delta " << delta;
    EXPECT_FALSE(text::LoadStoreFromBytes(corrupt).ok());
  }
}

TEST(StorageFuzzCrafted, WithIndexSectionFlipsNeverCrash) {
  // With a TIDX section aboard, a flip can land in the section id and
  // legally degrade the image to doc-only (unknown sections are
  // skipped by design). So: never crash, and when the load succeeds
  // the document — and the index, if still recognized — are intact.
  StoredDocument doc = MustShred(data::PaperExampleXml());
  auto index = text::InvertedIndex::Build(doc);
  ASSERT_TRUE(index.ok());
  auto bytes = text::SaveStoreToBytes(doc, &*index);
  ASSERT_TRUE(bytes.ok());

  for (size_t at = 0; at < bytes->size(); ++at) {
    std::string corrupt = *bytes;
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0x40);
    auto store = text::LoadStoreFromBytes(corrupt);
    if (store.ok()) {
      EXPECT_TRUE(store->doc.finalized());
      EXPECT_EQ(store->doc.node_count(), doc.node_count());
      if (store->index.has_value()) {
        EXPECT_EQ(store->index->posting_count(), index->posting_count());
      }
    }
  }
}

// --- Catalog (CTLG) images --------------------------------------------

std::string CatalogImage() {
  store::Catalog catalog;
  StoredDocument first = MustShred(data::PaperExampleXml());
  auto index = text::InvertedIndex::Build(first);
  EXPECT_TRUE(index.ok());
  EXPECT_TRUE(
      catalog.Add("paper", std::move(first), std::move(*index)).ok());
  EXPECT_TRUE(
      catalog.Add("tiny", MustShred("<a><b>x</b><b>y</b></a>")).ok());
  auto bytes = catalog.SaveToBytes();
  EXPECT_TRUE(bytes.ok()) << bytes.status();
  return *bytes;
}

TEST(CatalogFuzz, EveryTruncationFails) {
  std::string bytes = CatalogImage();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    auto loaded =
        store::Catalog::LoadFromBytes(std::string_view(bytes).substr(0, cut));
    EXPECT_FALSE(loaded.ok()) << "cut at " << cut << " of " << bytes.size();
  }
}

TEST(CatalogFuzz, ByteFlipsNeverCrashAndPreserveEntries) {
  // A flip in any *covered* byte of a catalog image fails cleanly: the
  // header is fenced, the directory and every CTLG/DOC2/DRV1/TIDX
  // payload are checksummed. Minor-6 images align payloads to 4 bytes,
  // so the pad bytes between sections are dead space no checksum
  // covers — a flip there must load the whole catalog intact.
  std::string bytes = CatalogImage();
  auto image = LoadSectionsFromBytes(bytes);
  ASSERT_TRUE(image.ok()) << image.status();
  ASSERT_NE(image->dir_offset, 0u);  // default save is minor 6
  std::vector<bool> covered(bytes.size(), false);
  for (size_t at = 0; at < 16; ++at) covered[at] = true;  // header fence
  for (const SectionView& section : image->sections) {
    for (uint64_t at = section.offset;
         at < section.offset + section.bytes.size(); ++at) {
      covered[at] = true;
    }
  }
  for (size_t at = image->dir_offset; at < bytes.size(); ++at) {
    covered[at] = true;
  }
  for (uint8_t mask : {0x01, 0x40, 0xff}) {
    for (size_t at = 0; at < bytes.size(); ++at) {
      std::string corrupt = bytes;
      corrupt[at] = static_cast<char>(corrupt[at] ^ mask);
      auto loaded = store::Catalog::LoadFromBytes(corrupt);
      EXPECT_EQ(loaded.ok(), !covered[at])
          << "flip mask " << int(mask) << " at " << at;
      if (loaded.ok()) {
        ASSERT_EQ(loaded->size(), 2u);
        EXPECT_NE(loaded->Find("paper"), nullptr);
        EXPECT_NE(loaded->Find("tiny"), nullptr);
      }
    }
  }
}

TEST(CatalogFuzz, PseudoRandomMutationsNeverCrash) {
  std::string bytes = CatalogImage();
  uint64_t state = 0x243f6a8885a308d3ULL;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  for (int round = 0; round < 500; ++round) {
    std::string corrupt = bytes;
    size_t edits = 1 + next() % 8;
    for (size_t e = 0; e < edits; ++e) {
      corrupt[next() % corrupt.size()] = static_cast<char>(next() & 0xff);
    }
    auto loaded = store::Catalog::LoadFromBytes(corrupt);
    if (loaded.ok()) {
      for (const store::NamedDocument* entry : loaded->entries()) {
        EXPECT_TRUE(entry->doc.finalized());
      }
    }
  }
}

TEST(CatalogFuzz, DanglingSectionsAreRejected) {
  // An unreferenced DOC0 (or TIDX) alongside a CTLG directory is
  // writer corruption, not forward compatibility; the loader must say
  // so instead of silently dropping a document.
  store::Catalog catalog;
  EXPECT_TRUE(catalog.Add("only", MustShred("<a><b>x</b></a>")).ok());
  auto image = catalog.SaveToBytes();
  ASSERT_TRUE(image.ok());
  auto sections = LoadSectionsFromBytes(*image);
  ASSERT_TRUE(sections.ok());
  std::vector<ImageSection> tampered;
  for (const SectionView& section : sections->sections) {
    tampered.push_back(
        ImageSection{section.id, std::string(section.bytes)});
  }
  tampered.push_back(tampered.back());  // duplicate the DOC0 section
  auto rewritten = SaveSectionsToBytes(tampered, 3);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_FALSE(store::Catalog::LoadFromBytes(*rewritten).ok());
}

// --- Crafted DRV1 corruptions -----------------------------------------
//
// The derived section is checksummed like any other, so random flips
// die at the gate (the flavor-6 sweep above). These cases instead keep
// every checksum *valid* — the image is re-serialized after the
// corruption — so the structural validator is the only line of
// defense: an eager load must reject the image outright, and a
// deferred-validation load must fail at EnsureValidated — never hand
// out a document navigating a bad CSR or edge BAT.

std::string ImageWithDerivedWords(
    const std::function<void(std::vector<uint32_t>&)>& mutate) {
  auto image = SaveToBytes(MustShred("<a><b>x</b><b>y</b></a>"),
                           SaveOptions{});  // default: DOC2 + DRV1
  EXPECT_TRUE(image.ok()) << image.status();
  auto sections = LoadSectionsFromBytes(*image);
  EXPECT_TRUE(sections.ok()) << sections.status();
  std::string doc_payload;
  std::string drv_payload;
  for (const SectionView& section : sections->sections) {
    if (section.id == kAlignedColumnarDocumentSectionId) {
      doc_payload = std::string(section.bytes);
    } else if (section.id == kDerivedSectionId) {
      drv_payload = std::string(section.bytes);
    }
  }
  EXPECT_FALSE(doc_payload.empty());
  EXPECT_FALSE(drv_payload.empty());
  std::vector<uint32_t> words(drv_payload.size() / 4);
  std::memcpy(words.data(), drv_payload.data(), drv_payload.size());
  mutate(words);
  drv_payload.assign(reinterpret_cast<const char*>(words.data()),
                     words.size() * 4);
  auto rewritten = SaveSectionsToBytes(
      {ImageSection{kAlignedColumnarDocumentSectionId, doc_payload},
       ImageSection{kDerivedSectionId, drv_payload}},
      6);
  EXPECT_TRUE(rewritten.ok()) << rewritten.status();
  return *rewritten;
}

void ExpectDerivedCorruptionCaught(
    const std::function<void(std::vector<uint32_t>&)>& mutate,
    const char* what) {
  std::string image = ImageWithDerivedWords(mutate);
  for (LoadMode mode : {LoadMode::kCopy, LoadMode::kView}) {
    LoadOptions eager;
    eager.mode = mode;
    EXPECT_FALSE(LoadFromBytes(image, eager).ok())
        << what << " (view=" << (mode == LoadMode::kView) << ")";
    // Deferring validation may accept the framing, but the corruption
    // must then surface at the EnsureValidated gate — queries never
    // run over it.
    LoadOptions deferred = eager;
    deferred.defer_validation = true;
    auto loaded = LoadFromBytes(image, deferred);
    if (loaded.ok()) {
      EXPECT_FALSE(loaded->EnsureValidated().ok())
          << what << " (deferred, view=" << (mode == LoadMode::kView)
          << ")";
    }
  }
}

TEST(StorageFuzzCrafted, DerivedBaselineLoads) {
  // The untampered re-serialization must load — otherwise the cases
  // below would pass for the wrong reason.
  std::string image = ImageWithDerivedWords([](std::vector<uint32_t>&) {});
  for (LoadMode mode : {LoadMode::kCopy, LoadMode::kView}) {
    LoadOptions options;
    options.mode = mode;
    auto loaded = LoadFromBytes(image, options);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    EXPECT_EQ(loaded->node_count(), 5u);
  }
}

TEST(StorageFuzzCrafted, DerivedRejectsBadCsr) {
  ExpectDerivedCorruptionCaught(
      [](std::vector<uint32_t>& w) { w[0] += 1; },
      "node count mismatch with DOC2");
  ExpectDerivedCorruptionCaught(
      [](std::vector<uint32_t>& w) { w[1] = 100; },
      "child offset out of bounds");
  ExpectDerivedCorruptionCaught(
      [](std::vector<uint32_t>& w) {
        uint32_t n = w[0];
        w[1 + (n + 1)] = 0;  // first child slot names the root
      },
      "child list breaks parent inversion");
}

TEST(StorageFuzzCrafted, DerivedRejectsBadEdgeGroupsAndFlags) {
  ExpectDerivedCorruptionCaught(
      [](std::vector<uint32_t>& w) {
        uint32_t n = w[0];
        size_t group_count_at = 1 + (n + 1) + (n - 1);
        // group_count | path | rows | heads... — poison the first head.
        w[group_count_at + 3] = 0xffffu;
      },
      "edge head out of range");
  ExpectDerivedCorruptionCaught(
      [](std::vector<uint32_t>& w) { w.back() ^= 1; },
      "string sorted flag flipped");
}

// --- Appended (in-place) catalog images -------------------------------
//
// An in-place save appends the changed sections plus a fresh directory
// and then patches the 8-byte directory pointer in the header; the old
// directory and any superseded sections stay behind as dead space. The
// fuzz contract: live bytes are never rewritten, a torn append is
// recoverable by restoring the old pointer, and the dead bytes are the
// only place a flip may land silently.

struct AppendedImage {
  std::string before;  // full-rewrite image: paper + tiny
  std::string after;   // the same file after one in-place append
};

AppendedImage MakeAppendedImage() {
  namespace fs = std::filesystem;
  std::string path =
      (fs::temp_directory_path() / "meetxml_fuzz_append.mxm").string();
  store::Catalog catalog;
  StoredDocument paper = MustShred(data::PaperExampleXml());
  auto index = text::InvertedIndex::Build(paper);
  EXPECT_TRUE(index.ok());
  EXPECT_TRUE(
      catalog.Add("paper", std::move(paper), std::move(*index)).ok());
  EXPECT_TRUE(
      catalog.Add("tiny", MustShred("<a><b>x</b><b>y</b></a>")).ok());
  EXPECT_TRUE(catalog.SaveToFile(path).ok());
  AppendedImage out;
  auto before = util::ReadFileToString(path);
  EXPECT_TRUE(before.ok()) << before.status();
  out.before = *before;

  EXPECT_TRUE(catalog.Add("extra", MustShred("<z><w>q</w></z>")).ok());
  store::CatalogSaveStats stats;
  store::CatalogSaveOptions save;
  save.in_place = true;
  save.stats = &stats;
  EXPECT_TRUE(catalog.SaveToFile(path, save).ok());
  EXPECT_TRUE(stats.in_place);  // the scenario must actually append
  auto after = util::ReadFileToString(path);
  EXPECT_TRUE(after.ok()) << after.status();
  out.after = *after;
  fs::remove(path);
  return out;
}

TEST(CatalogFuzzAppended, AppendNeverRewritesLiveBytes) {
  AppendedImage image = MakeAppendedImage();
  ASSERT_GT(image.after.size(), image.before.size());
  // Only the header's directory pointer changes; everything the old
  // image owned — old directory included — survives byte-identical.
  EXPECT_EQ(image.after.substr(0, 8), image.before.substr(0, 8));
  EXPECT_EQ(image.after.substr(16, image.before.size() - 16),
            image.before.substr(16));

  auto loaded = store::Catalog::LoadFromBytes(image.after);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->size(), 3u);
  EXPECT_NE(loaded->Find("paper"), nullptr);
  EXPECT_NE(loaded->Find("tiny"), nullptr);
  EXPECT_NE(loaded->Find("extra"), nullptr);
}

TEST(CatalogFuzzAppended, StaleDirectoryRestoresPreAppendCatalog) {
  // A crash between the appended-data fsync and the pointer patch
  // leaves the old pointer in place — exactly this image. It must load
  // the pre-append catalog intact, trailing bytes and all.
  AppendedImage image = MakeAppendedImage();
  std::string torn = image.after;
  torn.replace(8, 8, image.before, 8, 8);
  auto loaded = store::Catalog::LoadFromBytes(torn);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_NE(loaded->Find("paper"), nullptr);
  EXPECT_NE(loaded->Find("tiny"), nullptr);
  EXPECT_EQ(loaded->Find("extra"), nullptr);
}

TEST(CatalogFuzzAppended, EveryTruncationFails) {
  // The patched pointer names the appended directory, so any cut —
  // including cuts that leave the whole pre-append image — must fail:
  // the pointer now dangles past the end.
  AppendedImage image = MakeAppendedImage();
  for (size_t cut = 0; cut < image.after.size(); ++cut) {
    auto loaded = store::Catalog::LoadFromBytes(
        std::string_view(image.after).substr(0, cut));
    EXPECT_FALSE(loaded.ok())
        << "cut at " << cut << " of " << image.after.size();
  }
}

TEST(CatalogFuzzAppended, GarbageDirectoryPointerFailsCleanly) {
  AppendedImage image = MakeAppendedImage();
  for (uint64_t garbage :
       {uint64_t{0}, uint64_t{7}, uint64_t{15},
        static_cast<uint64_t>(image.after.size()),
        static_cast<uint64_t>(image.after.size()) - 1,
        ~uint64_t{0} / 2}) {
    std::string corrupt = image.after;
    for (int i = 0; i < 8; ++i) {
      corrupt[8 + i] = static_cast<char>((garbage >> (8 * i)) & 0xff);
    }
    EXPECT_FALSE(store::Catalog::LoadFromBytes(corrupt).ok())
        << "dir_offset " << garbage;
  }
}

TEST(CatalogFuzzAppended, ByteFlipsRespectChecksumCoverage) {
  // Same contract as the fresh-image sweep, on the appended layout:
  // a flip in any covered byte fails cleanly; a flip in dead space
  // (the superseded directory and CTLG payload, alignment pads) loads
  // the post-append catalog fully intact.
  AppendedImage image = MakeAppendedImage();
  const std::string& bytes = image.after;
  auto sections = LoadSectionsFromBytes(bytes);
  ASSERT_TRUE(sections.ok()) << sections.status();
  ASSERT_NE(sections->dir_offset, 0u);
  std::vector<bool> covered(bytes.size(), false);
  for (size_t at = 0; at < 16; ++at) covered[at] = true;
  for (const SectionView& section : sections->sections) {
    for (uint64_t at = section.offset;
         at < section.offset + section.bytes.size(); ++at) {
      covered[at] = true;
    }
  }
  for (size_t at = sections->dir_offset; at < bytes.size(); ++at) {
    covered[at] = true;
  }
  for (size_t at = 0; at < bytes.size(); ++at) {
    std::string corrupt = bytes;
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0x40);
    auto loaded = store::Catalog::LoadFromBytes(corrupt);
    EXPECT_EQ(loaded.ok(), !covered[at]) << "flip at " << at;
    if (loaded.ok()) {
      EXPECT_EQ(loaded->size(), 3u);
      EXPECT_NE(loaded->Find("extra"), nullptr);
    }
  }
}

}  // namespace
}  // namespace model
}  // namespace meetxml
